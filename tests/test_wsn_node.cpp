// WSN node/network layer: power breakdowns, lifetime arithmetic, duty-
// cycle effects, greedy routing and relay hot-spots.
#include <gtest/gtest.h>

#include "core/models.hpp"
#include "wsn/network.hpp"
#include "wsn/node.hpp"

namespace wsn::node {
namespace {

NodeConfig BaseConfig() {
  NodeConfig cfg;
  cfg.cpu.arrival_rate = 1.0;
  cfg.cpu.service_rate = 10.0;
  cfg.cpu.power_down_threshold = 0.1;
  cfg.cpu.power_up_delay = 0.001;
  cfg.cpu_power = energy::Pxa271();
  cfg.sample_bits = 256;
  cfg.report_distance_m = 40.0;
  cfg.listen_duty_cycle = 0.01;
  return cfg;
}

TEST(SensorNode, PowerBreakdownPositiveAndOrdered) {
  const SensorNode node(BaseConfig());
  const core::MarkovCpuModel cpu_model;
  const NodePowerBreakdown p = node.AveragePower(cpu_model);
  EXPECT_GT(p.cpu_mw, 0.0);
  EXPECT_GT(p.radio_tx_mw, 0.0);
  EXPECT_GT(p.Total(), p.cpu_mw);
}

TEST(SensorNode, LifetimeMatchesBatteryArithmetic) {
  const SensorNode node(BaseConfig());
  const core::MarkovCpuModel cpu_model;
  const double power_mw = node.AveragePower(cpu_model).Total();
  const double expected =
      energy::Battery(2500.0, 3.0).LifetimeSeconds(power_mw);
  EXPECT_NEAR(node.LifetimeSeconds(cpu_model), expected, 1e-6);
}

TEST(SensorNode, HigherSamplingShortensLifetime) {
  NodeConfig busy = BaseConfig();
  busy.cpu.arrival_rate = 5.0;
  const core::MarkovCpuModel cpu_model;
  EXPECT_LT(SensorNode(busy).LifetimeSeconds(cpu_model),
            SensorNode(BaseConfig()).LifetimeSeconds(cpu_model));
}

TEST(SensorNode, RelayLoadIncreasesPower) {
  SensorNode relay(BaseConfig());
  const core::MarkovCpuModel cpu_model;
  const double base_power = relay.AveragePower(cpu_model).Total();
  relay.SetRelayLoad(10.0);
  EXPECT_GT(relay.AveragePower(cpu_model).Total(), base_power);
}

TEST(SensorNode, AggregationReducesRadioEnergy) {
  NodeConfig all = BaseConfig();
  NodeConfig tenth = BaseConfig();
  tenth.report_fraction = 0.1;
  const core::MarkovCpuModel cpu_model;
  EXPECT_LT(SensorNode(tenth).AveragePower(cpu_model).radio_tx_mw,
            SensorNode(all).AveragePower(cpu_model).radio_tx_mw);
}

TEST(SensorNode, ConfigValidation) {
  NodeConfig bad = BaseConfig();
  bad.listen_duty_cycle = 1.5;
  EXPECT_THROW(SensorNode{bad}, util::InvalidArgument);
  NodeConfig bad2 = BaseConfig();
  bad2.sample_bits = 0;
  EXPECT_THROW(SensorNode{bad2}, util::InvalidArgument);
}

TEST(Network, GridPositions) {
  const auto grid = MakeGrid(3, 2, 10.0);
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_DOUBLE_EQ(grid[0].x, 10.0);
  EXPECT_DOUBLE_EQ(grid[5].x, 30.0);
  EXPECT_DOUBLE_EQ(grid[5].y, 20.0);
}

TEST(Network, DirectHopWhenInRange) {
  NetworkConfig cfg;
  cfg.node = BaseConfig();
  cfg.sink = {0.0, 0.0};
  cfg.max_hop_m = 100.0;
  const Network net(cfg, {{50.0, 0.0}});
  EXPECT_EQ(net.NextHop(0), 0u);  // direct to sink
}

TEST(Network, MultiHopChainRoutesTowardSink) {
  NetworkConfig cfg;
  cfg.node = BaseConfig();
  cfg.sink = {0.0, 0.0};
  cfg.max_hop_m = 60.0;
  // Chain at x = 50, 100, 150: node 2 -> node 1 -> node 0 -> sink.
  const Network net(cfg, {{50.0, 0.0}, {100.0, 0.0}, {150.0, 0.0}});
  EXPECT_EQ(net.NextHop(0), 0u);
  EXPECT_EQ(net.NextHop(1), 0u);
  EXPECT_EQ(net.NextHop(2), 1u);
}

TEST(Network, SingleNodeAtTheSinkRoutesDirect) {
  NetworkConfig cfg;
  cfg.node = BaseConfig();
  cfg.sink = {10.0, 10.0};
  cfg.max_hop_m = 60.0;
  // One node exactly on the sink: zero distance, trivially in range.
  const Network net(cfg, {{10.0, 10.0}});
  EXPECT_EQ(net.NextHop(0), 0u);
}

TEST(Network, UnreachableNodeFallsBackToOwnIndex) {
  NetworkConfig cfg;
  cfg.node = BaseConfig();
  cfg.sink = {0.0, 0.0};
  cfg.max_hop_m = 60.0;
  // Node 1 is beyond hop range of both the sink and node 0: the greedy
  // dead end maps to its own index (documented "direct to sink" long
  // shot), which Evaluate then prices at the full sink distance.
  const Network net(cfg, {{50.0, 0.0}, {500.0, 0.0}});
  EXPECT_EQ(net.NextHop(1), 1u);
  const core::MarkovCpuModel cpu_model;
  const NetworkReport report = net.Evaluate(cpu_model);
  EXPECT_NEAR(report.nodes[0].relay_packets_per_second, 0.0, 1e-12);
  // The stranded node burns far more TX power than the connected one.
  EXPECT_GT(report.nodes[1].average_power_mw,
            report.nodes[0].average_power_mw);
}

TEST(Network, EquidistantNeighboursTieBreakToLowestIndex) {
  NetworkConfig cfg;
  cfg.node = BaseConfig();
  cfg.sink = {0.0, 0.0};
  cfg.max_hop_m = 60.0;
  // Node 0 at (100, 0) sees two relays mirrored about the x-axis, both
  // 58.3 m away and both 58.3 m from the sink: the strict < in the scan
  // keeps the first (lowest-index) candidate.
  const Network net(cfg, {{100.0, 0.0}, {50.0, 30.0}, {50.0, -30.0}});
  EXPECT_EQ(net.NextHop(0), 1u);

  // Same geometry with the candidates' indices swapped: still the
  // lowest index, proving the choice is order-stable, not positional.
  const Network swapped(cfg, {{100.0, 0.0}, {50.0, -30.0}, {50.0, 30.0}});
  EXPECT_EQ(swapped.NextHop(0), 1u);
}

TEST(Network, RelayLoadAccumulatesOnHotPath) {
  NetworkConfig cfg;
  cfg.node = BaseConfig();
  cfg.sink = {0.0, 0.0};
  cfg.max_hop_m = 60.0;
  const Network net(cfg, {{50.0, 0.0}, {100.0, 0.0}, {150.0, 0.0}});
  const core::MarkovCpuModel cpu_model;
  const NetworkReport report = net.Evaluate(cpu_model);
  // Node 0 relays traffic of nodes 1 and 2; node 1 relays node 2's.
  EXPECT_NEAR(report.nodes[0].relay_packets_per_second, 2.0, 1e-9);
  EXPECT_NEAR(report.nodes[1].relay_packets_per_second, 1.0, 1e-9);
  EXPECT_NEAR(report.nodes[2].relay_packets_per_second, 0.0, 1e-9);
  // The hottest relay dies first.
  EXPECT_EQ(report.bottleneck_node, 0u);
  EXPECT_DOUBLE_EQ(report.network_lifetime_seconds,
                   report.nodes[0].lifetime_seconds);
}

TEST(Network, LifetimeIsMinOverNodes) {
  NetworkConfig cfg;
  cfg.node = BaseConfig();
  cfg.max_hop_m = 1000.0;
  const Network net(cfg, MakeGrid(3, 3, 20.0));
  const core::MarkovCpuModel cpu_model;
  const NetworkReport report = net.Evaluate(cpu_model);
  for (const NodeReport& n : report.nodes) {
    EXPECT_GE(n.lifetime_seconds, report.network_lifetime_seconds);
  }
}

}  // namespace
}  // namespace wsn::node
