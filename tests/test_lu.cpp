// LU factorization, linear solve residuals on random systems, determinant,
// and stationary-vector helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wsn::linalg {
namespace {

TEST(Lu, SolvesHandComputedSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const auto x = SolveDense(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolvesSystemNeedingPivoting) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = SolveDense(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, Determinant) {
  EXPECT_NEAR(LuDecomposition(Matrix{{2.0, 0.0}, {0.0, 3.0}}).Determinant(),
              6.0, 1e-12);
  // Swapped rows flip the sign.
  EXPECT_NEAR(LuDecomposition(Matrix{{0.0, 1.0}, {1.0, 0.0}}).Determinant(),
              -1.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuDecomposition{a}, util::NumericalError);
}

TEST(Lu, NonSquareRejected) {
  EXPECT_THROW(LuDecomposition{Matrix(2, 3)}, util::InvalidArgument);
}

// Property: random diagonally dominant systems solve with tiny residual.
class LuRandomSystems : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomSystems, ResidualSmall) {
  const std::size_t n = GetParam();
  util::Rng rng(1000 + n);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = util::UniformDouble(rng) * 2.0 - 1.0;
      row_sum += std::abs(a(r, c));
    }
    a(r, r) += row_sum + 1.0;  // dominance ensures non-singularity
  }
  std::vector<double> b(n);
  for (auto& v : b) v = util::UniformDouble(rng) * 10.0 - 5.0;

  const auto x = SolveDense(a, b);
  const auto ax = a.Apply(x);
  EXPECT_LT(NormInf(Subtract(ax, b)), 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSystems,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60, 120));

TEST(Stationary, TwoStateGenerator) {
  // 0 -> 1 at rate 2, 1 -> 0 at rate 1: pi = (1/3, 2/3).
  const Matrix q{{-2.0, 2.0}, {1.0, -1.0}};
  const auto pi = StationaryFromGenerator(q);
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-12);
}

TEST(Stationary, ThreeStateCycle) {
  // Uniform cycle: stationary is uniform.
  const Matrix q{{-1.0, 1.0, 0.0}, {0.0, -1.0, 1.0}, {1.0, 0.0, -1.0}};
  const auto pi = StationaryFromGenerator(q);
  for (double p : pi) EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
}

TEST(Stationary, StochasticMatrix) {
  // DTMC: p(0->1)=.5, p(1->0)=.25 => pi ~ (1/3, 2/3).
  const Matrix p{{0.5, 0.5}, {0.25, 0.75}};
  const auto pi = StationaryFromStochastic(p);
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-12);
}

TEST(Stationary, ProbabilitiesSumToOneAndNonNegative) {
  util::Rng rng(9);
  const std::size_t n = 12;
  Matrix q(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      q(i, j) = util::UniformDouble(rng) * 2.0 + 0.01;  // irreducible
      q(i, i) -= q(i, j);
    }
  }
  const auto pi = StationaryFromGenerator(q);
  double sum = 0.0;
  for (double p : pi) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Verify pi Q = 0.
  const auto residual = q.ApplyTransposed(pi);
  EXPECT_LT(NormInf(residual), 1e-10);
}

}  // namespace
}  // namespace wsn::linalg
