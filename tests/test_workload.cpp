// Workload generators: open renewal processes (rate recovery), closed
// think-time semantics, trace replay and the trace recorder.
#include <gtest/gtest.h>

#include "des/trace.hpp"
#include "des/workload.hpp"
#include "util/error.hpp"
#include "util/statistics.hpp"

namespace wsn::des {
namespace {

TEST(OpenWorkload, PoissonRateRecovered) {
  auto w = MakePoissonWorkload(2.0);
  util::Rng rng(1);
  double now = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto t = w->NextArrival(now, rng);
    ASSERT_TRUE(t.has_value());
    ASSERT_GT(*t, now);
    now = *t;
  }
  // n arrivals in `now` seconds: empirical rate ~ 2.
  EXPECT_NEAR(static_cast<double>(n) / now, 2.0, 0.05);
  EXPECT_TRUE(w->IsOpen());
}

TEST(OpenWorkload, DeterministicInterarrivals) {
  OpenWorkload w{util::Distribution(util::Deterministic{0.5})};
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(*w.NextArrival(0.0, rng), 0.5);
  EXPECT_DOUBLE_EQ(*w.NextArrival(0.5, rng), 1.0);
}

TEST(OpenWorkload, DescribeMentionsDistribution) {
  OpenWorkload w{util::Distribution(util::Exponential{1.0})};
  EXPECT_NE(w.Describe().find("open"), std::string::npos);
  EXPECT_NE(w.Describe().find("Exp"), std::string::npos);
}

TEST(ClosedWorkload, OneJobOutstandingAtATime) {
  ClosedWorkload w{util::Distribution(util::Deterministic{1.0})};
  util::Rng rng(1);
  const auto first = w.NextArrival(0.0, rng);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(*first, 1.0);  // thinks 1s before the first job
  // While the job is outstanding no new arrival is generated.
  EXPECT_FALSE(w.NextArrival(2.0, rng).has_value());
  // After completion at t=5 the next job comes one think-time later.
  w.OnCompletion(5.0);
  const auto second = w.NextArrival(5.0, rng);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(*second, 6.0);
  EXPECT_FALSE(w.IsOpen());
}

TEST(ClosedWorkload, ThroughputBoundedByCycleTime) {
  // With think time 1s and instantaneous queries, at most 1 job/s.
  ClosedWorkload w{util::Distribution(util::Deterministic{1.0})};
  util::Rng rng(2);
  double now = 0.0;
  int jobs = 0;
  while (now < 1000.0) {
    const auto t = w.NextArrival(now, rng);
    if (!t.has_value()) break;
    now = *t;
    ++jobs;
    w.OnCompletion(now);  // zero service time
  }
  EXPECT_NEAR(static_cast<double>(jobs) / now, 1.0, 0.01);
}

TEST(TraceWorkload, ReplaysInOrder) {
  TraceWorkload w({1.0, 2.5, 7.0});
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(*w.NextArrival(0.0, rng), 1.0);
  EXPECT_DOUBLE_EQ(*w.NextArrival(1.0, rng), 2.5);
  EXPECT_DOUBLE_EQ(*w.NextArrival(2.5, rng), 7.0);
  EXPECT_FALSE(w.NextArrival(7.0, rng).has_value());
}

TEST(TraceWorkload, SkipsPastArrivals) {
  TraceWorkload w({1.0, 2.0, 3.0});
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(*w.NextArrival(2.5, rng), 3.0);
}

TEST(TraceWorkload, RejectsUnsortedTrace) {
  EXPECT_THROW(TraceWorkload({2.0, 1.0}), util::InvalidArgument);
  EXPECT_THROW(TraceWorkload({-1.0, 1.0}), util::InvalidArgument);
}

TEST(MakePoissonWorkload, RejectsNonPositiveRate) {
  EXPECT_THROW(MakePoissonWorkload(0.0), util::InvalidArgument);
}

TEST(StateTrace, RecordsAndCollapsesDuplicates) {
  StateTrace trace;
  trace.Record(0.0, "a");
  trace.Record(1.0, "a");  // duplicate state: collapsed
  trace.Record(2.0, "b");
  EXPECT_EQ(trace.Size(), 2u);
  EXPECT_EQ(trace.Entries()[1].state, "b");
}

TEST(StateTrace, TimeInState) {
  StateTrace trace;
  trace.Record(0.0, "a");
  trace.Record(3.0, "b");
  trace.Record(5.0, "a");
  EXPECT_DOUBLE_EQ(trace.TimeIn("a", 10.0), 3.0 + 5.0);
  EXPECT_DOUBLE_EQ(trace.TimeIn("b", 10.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.TimeIn("a", 2.0), 2.0);  // clipped horizon
}

TEST(StateTrace, RejectsTimeTravel) {
  StateTrace trace;
  trace.Record(5.0, "a");
  EXPECT_THROW(trace.Record(4.0, "b"), util::InvalidArgument);
}

TEST(StateTrace, RenderShowsTransitions) {
  StateTrace trace;
  trace.Record(0.0, "x");
  trace.Record(1.5, "y");
  EXPECT_NE(trace.Render().find("x"), std::string::npos);
  EXPECT_NE(trace.Render().find("->"), std::string::npos);
}

}  // namespace
}  // namespace wsn::des
