// MMPP and batch-renewal workloads: rate recovery, burstiness properties
// and their effect on the CPU power model.
#include <gtest/gtest.h>

#include <cmath>

#include "des/bursty_workload.hpp"
#include "des/cpu_model.hpp"
#include "util/error.hpp"
#include "util/statistics.hpp"

namespace wsn::des {
namespace {

MmppWorkload TwoPhaseBursty() {
  // Quiet phase (rate 0.1) and storm phase (rate 5), mean dwell 10 s each.
  return MmppWorkload({0.1, 5.0}, {{-0.1, 0.1}, {0.1, -0.1}});
}

TEST(Mmpp, ValidatesGenerator) {
  EXPECT_THROW(MmppWorkload({1.0}, {{-1.0, 1.0}}), util::InvalidArgument);
  EXPECT_THROW(MmppWorkload({1.0, 1.0}, {{-1.0, 0.5}, {1.0, -1.0}}),
               util::InvalidArgument);
  EXPECT_THROW(MmppWorkload({-1.0, 1.0}, {{-1.0, 1.0}, {1.0, -1.0}}),
               util::InvalidArgument);
  EXPECT_THROW(MmppWorkload({1.0, 1.0}, {{-1.0, 1.0}, {1.0, -1.0}}, 5),
               util::InvalidArgument);
}

TEST(Mmpp, MeanRateMatchesStationaryMixture) {
  const MmppWorkload w = TwoPhaseBursty();
  // Symmetric switching: pi = (1/2, 1/2); mean rate 2.55.
  EXPECT_NEAR(w.MeanRate(), 2.55, 1e-9);
}

TEST(Mmpp, EmpiricalRateMatchesMeanRate) {
  MmppWorkload w = TwoPhaseBursty();
  util::Rng rng(11);
  double now = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto t = w.NextArrival(now, rng);
    ASSERT_TRUE(t.has_value());
    ASSERT_GE(*t, now);
    now = *t;
  }
  EXPECT_NEAR(static_cast<double>(n) / now, 2.55, 0.08);
}

TEST(Mmpp, DegeneratesToPoissonWithEqualRates) {
  MmppWorkload w({2.0, 2.0}, {{-1.0, 1.0}, {1.0, -1.0}});
  util::Rng rng(3);
  util::RunningStats gaps;
  double now = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const auto t = w.NextArrival(now, rng);
    gaps.Add(*t - now);
    now = *t;
  }
  EXPECT_NEAR(gaps.Mean(), 0.5, 0.01);
  // Exponential gaps: SCV = 1.
  EXPECT_NEAR(gaps.Variance() / (gaps.Mean() * gaps.Mean()), 1.0, 0.05);
}

TEST(Mmpp, BurstyTrafficHasHighInterarrivalVariance) {
  MmppWorkload w = TwoPhaseBursty();
  util::Rng rng(5);
  util::RunningStats gaps;
  double now = 0.0;
  for (int i = 0; i < 200000; ++i) {
    const auto t = w.NextArrival(now, rng);
    gaps.Add(*t - now);
    now = *t;
  }
  const double scv = gaps.Variance() / (gaps.Mean() * gaps.Mean());
  EXPECT_GT(scv, 2.0);  // far burstier than Poisson's 1
}

TEST(Batch, FixedBatchesArriveTogether) {
  BatchRenewalWorkload w(util::Distribution(util::Deterministic{1.0}), 3);
  util::Rng rng(1);
  // First batch at t = 1: three arrivals at the same instant.
  EXPECT_DOUBLE_EQ(*w.NextArrival(0.0, rng), 1.0);
  EXPECT_DOUBLE_EQ(*w.NextArrival(1.0, rng), 1.0);
  EXPECT_DOUBLE_EQ(*w.NextArrival(1.0, rng), 1.0);
  // Then the next renewal.
  EXPECT_DOUBLE_EQ(*w.NextArrival(1.0, rng), 2.0);
}

TEST(Batch, GeometricBatchMeanRecovered) {
  BatchRenewalWorkload w(util::Distribution(util::Exponential{1.0}), 0, 4.0);
  util::Rng rng(7);
  double now = 0.0;
  int arrivals = 0;
  int renewals = 0;
  double last_batch_time = -1.0;
  for (int i = 0; i < 200000; ++i) {
    const auto t = w.NextArrival(now, rng);
    ASSERT_TRUE(t.has_value());
    if (*t != last_batch_time) {
      ++renewals;
      last_batch_time = *t;
    }
    ++arrivals;
    now = *t;
  }
  EXPECT_NEAR(static_cast<double>(arrivals) / renewals, 4.0, 0.1);
}

TEST(Batch, ValidatesParameters) {
  EXPECT_THROW(
      BatchRenewalWorkload(util::Distribution(util::Exponential{1.0}), 0),
      util::InvalidArgument);
  EXPECT_THROW(BatchRenewalWorkload(
                   util::Distribution(util::Exponential{1.0}), 0, 0.5),
               util::InvalidArgument);
}

TEST(Batch, CpuModelRunsUnderBatchTraffic) {
  // Same mean rate as the paper's Poisson workload but arriving in bursts
  // of 4: the CPU stays in standby longer between batches and queues
  // deeper within them.
  CpuModelConfig cfg;
  cfg.arrival_rate = 1.0;  // documentation only; workload overrides
  cfg.mean_service_time = 0.1;
  cfg.power_down_threshold = 0.1;
  cfg.power_up_delay = 0.001;
  cfg.sim_time = 20000.0;

  CpuSimulation bursty(
      cfg, 3,
      std::make_unique<BatchRenewalWorkload>(
          util::Distribution(util::Exponential{0.25}), 4));
  const CpuRunResult rb = bursty.Run();

  CpuSimulation smooth(cfg, 3, MakePoissonWorkload(1.0));
  const CpuRunResult rs = smooth.Run();

  // Comparable served load...
  EXPECT_NEAR(static_cast<double>(rb.jobs_completed),
              static_cast<double>(rs.jobs_completed),
              0.1 * static_cast<double>(rs.jobs_completed));
  // ...but burstier arrivals leave more uninterrupted standby time and
  // longer queues.
  EXPECT_GT(rb.FractionStandby(), rs.FractionStandby());
  EXPECT_GT(rb.jobs_in_system.Mean(), rs.jobs_in_system.Mean());
}

TEST(Mmpp, CpuSpendsMoreTimeStandbyUnderBurstyTraffic) {
  CpuModelConfig cfg;
  cfg.mean_service_time = 0.1;
  cfg.power_down_threshold = 0.2;
  cfg.power_up_delay = 0.01;
  cfg.sim_time = 20000.0;

  CpuSimulation bursty(cfg, 9, std::make_unique<MmppWorkload>(
                                   TwoPhaseBursty()));
  CpuSimulation smooth(cfg, 9, MakePoissonWorkload(2.55));
  const CpuRunResult rb = bursty.Run();
  const CpuRunResult rs = smooth.Run();
  EXPECT_GT(rb.FractionStandby(), rs.FractionStandby());
}

}  // namespace
}  // namespace wsn::des
