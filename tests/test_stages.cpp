// Method-of-stages CTMC baseline: normalization, k=1 equals the naive
// exponential-delay chain, convergence as k grows, and degenerate delays.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/stages.hpp"
#include "util/error.hpp"

namespace wsn::markov {
namespace {

TEST(Stages, SharesSumToOne) {
  const StagesCpuModel m(1.0, 10.0, 0.1, 0.3, 5, 5);
  const StagesResult r = m.Evaluate();
  EXPECT_NEAR(r.p_standby + r.p_powerup + r.p_idle + r.p_active, 1.0, 1e-9);
  EXPECT_GT(r.states, 0u);
}

TEST(Stages, ActiveShareNearRho) {
  const StagesCpuModel m(1.0, 10.0, 0.2, 0.05, 10, 10);
  const StagesResult r = m.Evaluate();
  // Work conservation: active fraction is within a small band above rho
  // (power-up stalls add backlog bursts but work done per job is fixed).
  EXPECT_NEAR(r.p_active, 0.1, 0.02);
}

TEST(Stages, ZeroThresholdSkipsIdle) {
  const StagesCpuModel m(1.0, 10.0, 0.0, 0.1, 4, 4);
  const StagesResult r = m.Evaluate();
  EXPECT_DOUBLE_EQ(r.p_idle, 0.0);
  EXPECT_GT(r.p_standby, 0.0);
}

TEST(Stages, ZeroDelaySkipsPowerup) {
  const StagesCpuModel m(1.0, 10.0, 0.1, 0.0, 4, 4);
  const StagesResult r = m.Evaluate();
  EXPECT_DOUBLE_EQ(r.p_powerup, 0.0);
}

TEST(Stages, MoreStagesMoveSharesMonotonically) {
  // As k grows the Erlang approximation sharpens toward the deterministic
  // delays; successive solutions must converge (Cauchy-style check).
  const double lambda = 1.0, mu = 10.0, T = 0.3, D = 0.3;
  double prev_idle = -1.0;
  double prev_delta = 1.0;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    const StagesCpuModel m(lambda, mu, T, D, k, k);
    const double idle = m.Evaluate().p_idle;
    if (prev_idle >= 0.0) {
      const double delta = std::abs(idle - prev_idle);
      EXPECT_LT(delta, prev_delta + 1e-9) << "k=" << k;
      prev_delta = delta;
    }
    prev_idle = idle;
  }
}

TEST(Stages, LargeKStabilizes) {
  const StagesCpuModel a(1.0, 10.0, 0.2, 0.1, 24, 24);
  const StagesCpuModel b(1.0, 10.0, 0.2, 0.1, 32, 32);
  const auto ra = a.Evaluate();
  const auto rb = b.Evaluate();
  EXPECT_NEAR(ra.p_idle, rb.p_idle, 0.01);
  EXPECT_NEAR(ra.p_standby, rb.p_standby, 0.01);
}

TEST(Stages, StateCountGrowsWithK) {
  const StagesCpuModel small(1.0, 10.0, 0.1, 0.1, 1, 1, 50);
  const StagesCpuModel large(1.0, 10.0, 0.1, 0.1, 8, 8, 50);
  EXPECT_GT(large.Evaluate().states, small.Evaluate().states);
}

TEST(Stages, AutoTruncationScalesWithPowerUpLoad) {
  const StagesCpuModel short_d(1.0, 10.0, 0.1, 0.1, 2, 2);
  const StagesCpuModel long_d(1.0, 10.0, 0.1, 50.0, 2, 2);
  EXPECT_GT(long_d.MaxJobs(), short_d.MaxJobs());
}

TEST(Stages, MeanJobsPositiveUnderLoad) {
  const StagesCpuModel m(1.0, 2.0, 0.5, 1.0, 4, 4);
  EXPECT_GT(m.Evaluate().mean_jobs, 0.4);  // at least ~rho
}

TEST(Stages, DomainChecks) {
  EXPECT_THROW(StagesCpuModel(1.0, 1.0, 0.1, 0.1, 2, 2),
               util::InvalidArgument);  // unstable
  EXPECT_THROW(StagesCpuModel(1.0, 2.0, 0.1, 0.1, 0, 2),
               util::InvalidArgument);  // zero stages
  EXPECT_THROW(StagesCpuModel(-1.0, 2.0, 0.1, 0.1, 2, 2),
               util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::markov
