// End-to-end integration: a scaled-down version of the paper's full
// pipeline (PDT sweep at three PUDs, three models, energy via Eq. 25)
// asserting the qualitative conclusions of Figs. 4-5 and Tables 4-5.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/models.hpp"
#include "energy/power_state.hpp"

namespace wsn::core {
namespace {

TEST(Integration, PaperPipelineQualitativeConclusions) {
  EvalConfig cfg;
  cfg.sim_time = 1500.0;
  cfg.replications = 12;
  cfg.seed = 2008;  // the paper's year, for luck

  const SimulationCpuModel sim(cfg);
  const MarkovCpuModel markov;
  const PetriNetCpuModel pn(cfg);

  CpuParams base;  // paper Table 2 defaults
  const auto grid = PaperPdtGrid(5);
  const DeltaTables tables =
      ComputeDeltaTables(sim, markov, pn, base, {0.001, 0.3, 10.0}, grid,
                         energy::Pxa271(), 1000.0);

  ASSERT_EQ(tables.share_deltas.size(), 3u);

  // Table 4 shape: at PUD = 10 s, Markov error explodes while the Petri
  // net stays near the simulation.
  const DeltaRow& small = tables.share_deltas[0];
  const DeltaRow& large = tables.share_deltas[2];
  EXPECT_LT(small.sim_markov, 1.5);  // pct points
  EXPECT_LT(small.sim_pn, 1.5);
  EXPECT_GT(large.sim_markov, 5.0 * large.sim_pn);
  EXPECT_GT(large.sim_markov, 10.0);  // paper: ~29 pp mean per state

  // Table 5 shape: same story in joules.
  const DeltaRow& esmall = tables.energy_deltas[0];
  const DeltaRow& elarge = tables.energy_deltas[2];
  EXPECT_LT(esmall.sim_markov, 1.0);
  EXPECT_LT(esmall.sim_pn, 1.0);
  EXPECT_GT(elarge.sim_markov, 3.0 * elarge.sim_pn);
}

TEST(Integration, Figure4SeriesShapes) {
  EvalConfig cfg;
  cfg.sim_time = 2000.0;
  cfg.replications = 12;
  const PetriNetCpuModel pn(cfg);
  CpuParams base;
  base.power_up_delay = 0.001;
  const auto grid = PaperPdtGrid(5);
  const SweepSeries s =
      SweepPowerDownThreshold(pn, base, grid, energy::Pxa271(), 1000.0);

  // Idle rises, standby falls, active ~constant (= rho), powerup small.
  for (std::size_t i = 1; i < s.points.size(); ++i) {
    EXPECT_GT(s.points[i].eval.shares.idle + 0.02,
              s.points[i - 1].eval.shares.idle);
    EXPECT_LT(s.points[i].eval.shares.standby,
              s.points[i - 1].eval.shares.standby + 0.02);
  }
  for (const SweepPoint& p : s.points) {
    EXPECT_NEAR(p.eval.shares.active, 0.1, 0.03);
    EXPECT_LT(p.eval.shares.powerup, 0.01);
  }
}

TEST(Integration, Figure5EnergyMonotoneForAllModels) {
  EvalConfig cfg;
  cfg.sim_time = 2000.0;
  cfg.replications = 10;
  const auto grid = PaperPdtGrid(4);
  CpuParams base;
  for (const auto& model : MakePaperModels(cfg)) {
    const SweepSeries s = SweepPowerDownThreshold(
        *model, base, grid, energy::Pxa271(), 1000.0);
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      EXPECT_GT(s.points[i].energy_joules,
                s.points[i - 1].energy_joules - 0.3)
          << model->Name();
    }
    // Sanity band: between all-standby (17 J) and all-active (193 J).
    EXPECT_GT(s.points.front().energy_joules, 17.0);
    EXPECT_LT(s.points.back().energy_joules, 193.0);
  }
}

}  // namespace
}  // namespace wsn::core
