// Enabling semantics: multiplicities, inhibitor arcs, firing, conflict
// sets with priorities and weighted sampling.
#include <gtest/gtest.h>

#include "petri/enabling.hpp"
#include "util/error.hpp"

namespace wsn::petri {
namespace {

TEST(Enabling, InputMultiplicity) {
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 0);
  const TransitionId t = net.AddExponentialTransition("t", 1.0);
  net.AddInputArc(t, p, 3);

  Marking m{2};
  EXPECT_FALSE(IsEnabled(net, t, m));
  m[0] = 3;
  EXPECT_TRUE(IsEnabled(net, t, m));
}

TEST(Enabling, InhibitorBlocksAtThreshold) {
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 0);
  const PlaceId src = net.AddPlace("src", 1);
  const TransitionId t = net.AddExponentialTransition("t", 1.0);
  net.AddInputArc(t, src);
  net.AddInhibitorArc(t, p, 2);

  EXPECT_TRUE(IsEnabled(net, t, {0, 1}));
  EXPECT_TRUE(IsEnabled(net, t, {1, 1}));
  EXPECT_FALSE(IsEnabled(net, t, {2, 1}));
  EXPECT_FALSE(IsEnabled(net, t, {5, 1}));
}

TEST(Enabling, FireMovesTokens) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 0);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId t = net.AddExponentialTransition("t", 1.0);
  net.AddInputArc(t, a, 2);
  net.AddOutputArc(t, b, 3);

  const Marking next = Fire(net, t, {5, 1});
  EXPECT_EQ(next[a], 3u);
  EXPECT_EQ(next[b], 4u);
}

TEST(Enabling, FireDisabledThrows) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 0);
  const TransitionId t = net.AddExponentialTransition("t", 1.0);
  net.AddInputArc(t, a);
  EXPECT_THROW(Fire(net, t, {0}), util::InvalidArgument);
}

TEST(Enabling, SelfLoopKeepsToken) {
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const PlaceId out = net.AddPlace("out", 0);
  const TransitionId t = net.AddExponentialTransition("t", 1.0);
  net.AddInputArc(t, p);
  net.AddOutputArc(t, p);
  net.AddOutputArc(t, out);
  const Marking next = Fire(net, t, net.InitialMarking());
  EXPECT_EQ(next[p], 1u);
  EXPECT_EQ(next[out], 1u);
}

TEST(ConflictSet, HighestPriorityWins) {
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const TransitionId low = net.AddImmediateTransition("low", 1);
  const TransitionId high = net.AddImmediateTransition("high", 5);
  const TransitionId timed = net.AddExponentialTransition("timed", 1.0);
  net.AddInputArc(low, p);
  net.AddInputArc(high, p);
  net.AddInputArc(timed, p);

  const auto conflict = EnabledImmediateConflictSet(net, {1});
  ASSERT_EQ(conflict.size(), 1u);
  EXPECT_EQ(conflict[0], high);
  EXPECT_FALSE(IsTangible(net, {1}));
  EXPECT_TRUE(IsTangible(net, {0}));
}

TEST(ConflictSet, EqualPriorityGroups) {
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const TransitionId a = net.AddImmediateTransition("a", 2, 1.0);
  const TransitionId b = net.AddImmediateTransition("b", 2, 3.0);
  const TransitionId c = net.AddImmediateTransition("c", 1, 1.0);
  net.AddInputArc(a, p);
  net.AddInputArc(b, p);
  net.AddInputArc(c, p);

  const auto conflict = EnabledImmediateConflictSet(net, {1});
  ASSERT_EQ(conflict.size(), 2u);
  EXPECT_EQ(conflict[0], a);
  EXPECT_EQ(conflict[1], b);
}

TEST(ConflictSet, WeightedSamplingMatchesProportions) {
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const TransitionId a = net.AddImmediateTransition("a", 1, 1.0);
  const TransitionId b = net.AddImmediateTransition("b", 1, 3.0);
  net.AddInputArc(a, p);
  net.AddInputArc(b, p);

  util::Rng rng(77);
  const std::vector<TransitionId> conflict{a, b};
  int picked_b = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (SampleByWeight(net, conflict, rng) == b) ++picked_b;
  }
  EXPECT_NEAR(static_cast<double>(picked_b) / n, 0.75, 0.01);
}

TEST(EnabledLists, TimedVsImmediate) {
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const TransitionId imm = net.AddImmediateTransition("imm", 1);
  const TransitionId exp = net.AddExponentialTransition("exp", 1.0);
  net.AddInputArc(imm, p);
  net.AddInputArc(exp, p);

  const auto all = EnabledTransitions(net, {1});
  EXPECT_EQ(all.size(), 2u);
  const auto timed = EnabledTimedTransitions(net, {1});
  ASSERT_EQ(timed.size(), 1u);
  EXPECT_EQ(timed[0], exp);
  EXPECT_TRUE(EnabledTransitions(net, {0}).empty());
}

}  // namespace
}  // namespace wsn::petri
