// P/T-invariant computation (Farkas) and invariant-based validation of
// the standard nets and reachability sets.
#include <gtest/gtest.h>

#include "petri/invariants.hpp"
#include "petri/reachability.hpp"
#include "petri/standard_nets.hpp"

namespace wsn::petri {
namespace {

TEST(PlaceInvariants, PingPongConservesToken) {
  const PetriNet net = MakePingPongNet(1.0, 1.0);
  const auto invs = PlaceInvariants(net);
  ASSERT_EQ(invs.size(), 1u);
  EXPECT_EQ(invs[0], (InvariantVector{1, 1}));
  EXPECT_TRUE(IsCoveredByPlaceInvariants(net, invs));
}

TEST(PlaceInvariants, HoldOnEveryReachableMarking) {
  const PetriNet net = MakeProducerConsumerNet(1.0, 2.0, 3);
  const auto invs = PlaceInvariants(net);
  ASSERT_FALSE(invs.empty());
  const ReachabilityGraph g = ExploreReachability(net);
  const Marking m0 = net.InitialMarking();
  for (const auto& inv : invs) {
    const long expected = InvariantTokenSum(inv, m0);
    for (const Marking& m : g.markings) {
      EXPECT_EQ(InvariantTokenSum(inv, m), expected);
    }
  }
}

TEST(PlaceInvariants, BufferSlotInvariant) {
  // In producer/consumer, slots + items is constant (= buffer size).
  const PetriNet net = MakeProducerConsumerNet(1.0, 1.0, 4);
  const auto invs = PlaceInvariants(net);
  const PlaceId slots = net.PlaceByName("slots");
  const PlaceId items = net.PlaceByName("items");
  bool found = false;
  for (const auto& inv : invs) {
    if (inv[slots] > 0 && inv[items] > 0) {
      bool others_zero = true;
      for (std::size_t p = 0; p < inv.size(); ++p) {
        if (p != slots && p != items && inv[p] != 0) others_zero = false;
      }
      if (others_zero) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PlaceInvariants, OpenNetHasNoFullCover) {
  // M/M/1/K's queue place is not conserved (arrivals create tokens).
  const PetriNet net = MakeMm1kNet(1.0, 1.0, 3);
  const auto invs = PlaceInvariants(net);
  EXPECT_FALSE(IsCoveredByPlaceInvariants(net, invs));
}

TEST(TransitionInvariants, PingPongCycle) {
  const PetriNet net = MakePingPongNet(1.0, 1.0);
  const auto invs = TransitionInvariants(net);
  ASSERT_EQ(invs.size(), 1u);
  EXPECT_EQ(invs[0], (InvariantVector{1, 1}));  // fire both once: cycle
}

TEST(TransitionInvariants, Mm1kArriveServeBalance) {
  const PetriNet net = MakeMm1kNet(1.0, 1.0, 3);
  const auto invs = TransitionInvariants(net);
  // arrive + serve returns to the same marking.
  ASSERT_EQ(invs.size(), 1u);
  EXPECT_EQ(invs[0], (InvariantVector{1, 1}));
}

TEST(Invariants, WeightedConservation) {
  // t consumes 2 of a, produces 1 of b; reverse consumes 1 b produces 2 a.
  // Invariant: 1*a + 2*b.
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 4);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId t1 = net.AddExponentialTransition("t1", 1.0);
  net.AddInputArc(t1, a, 2);
  net.AddOutputArc(t1, b, 1);
  const TransitionId t2 = net.AddExponentialTransition("t2", 1.0);
  net.AddInputArc(t2, b, 1);
  net.AddOutputArc(t2, a, 2);

  const auto invs = PlaceInvariants(net);
  ASSERT_EQ(invs.size(), 1u);
  EXPECT_EQ(invs[0], (InvariantVector{1, 2}));
}

TEST(Invariants, TokenSumHelper) {
  const InvariantVector inv{1, 2, 0};
  EXPECT_EQ(InvariantTokenSum(inv, Marking{3, 4, 7}), 11);
}

TEST(Invariants, ForkJoinCovered) {
  const PetriNet net = MakeForkJoinNet(3, 1.0);
  const auto invs = PlaceInvariants(net);
  EXPECT_TRUE(IsCoveredByPlaceInvariants(net, invs));
}

}  // namespace
}  // namespace wsn::petri
