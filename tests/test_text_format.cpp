// .spn text format: serialization round-trips, parse errors with line
// numbers, and solving a net straight from text.
#include <gtest/gtest.h>

#include <sstream>

#include "core/cpu_petri_net.hpp"
#include "markov/mm1.hpp"
#include "petri/ctmc_solver.hpp"
#include "petri/standard_nets.hpp"
#include "petri/text_format.hpp"
#include "util/error.hpp"

namespace wsn::petri {
namespace {

void ExpectNetsEquivalent(const PetriNet& a, const PetriNet& b) {
  ASSERT_EQ(a.PlaceCount(), b.PlaceCount());
  ASSERT_EQ(a.TransitionCount(), b.TransitionCount());
  EXPECT_EQ(a.InitialMarking(), b.InitialMarking());
  for (std::size_t p = 0; p < a.PlaceCount(); ++p) {
    EXPECT_EQ(a.GetPlace(p).name, b.GetPlace(p).name);
  }
  for (std::size_t t = 0; t < a.TransitionCount(); ++t) {
    const Transition& ta = a.GetTransition(t);
    const Transition& tb = b.GetTransition(t);
    EXPECT_EQ(ta.name, tb.name);
    EXPECT_EQ(ta.kind, tb.kind);
    EXPECT_EQ(ta.priority, tb.priority);
    EXPECT_DOUBLE_EQ(ta.weight, tb.weight);
    ASSERT_EQ(ta.arcs.size(), tb.arcs.size());
    for (std::size_t k = 0; k < ta.arcs.size(); ++k) {
      EXPECT_EQ(ta.arcs[k].kind, tb.arcs[k].kind);
      EXPECT_EQ(ta.arcs[k].place, tb.arcs[k].place);
      EXPECT_EQ(ta.arcs[k].multiplicity, tb.arcs[k].multiplicity);
    }
    if (ta.kind == TransitionKind::kTimed) {
      EXPECT_EQ(ta.delay->Describe(), tb.delay->Describe());
    }
  }
}

TEST(TextFormat, RoundTripMm1k) {
  const PetriNet net = MakeMm1kNet(0.8, 1.0, 5);
  ExpectNetsEquivalent(net, ParseNet(SerializeNet(net)));
}

TEST(TextFormat, RoundTripProducerConsumer) {
  const PetriNet net = MakeProducerConsumerNet(1.0, 2.0, 3);
  ExpectNetsEquivalent(net, ParseNet(SerializeNet(net)));
}

TEST(TextFormat, RoundTripCpuNet) {
  core::CpuParams params;
  const PetriNet net = core::BuildCpuPetriNet(params);
  ExpectNetsEquivalent(net, ParseNet(SerializeNet(net)));
}

TEST(TextFormat, DoubleRoundTripIsIdempotent) {
  const PetriNet net = MakeSharedResourceNet(2, 1.0, 2.0);
  const std::string once = SerializeNet(net);
  const std::string twice = SerializeNet(ParseNet(once));
  EXPECT_EQ(once, twice);
}

TEST(TextFormat, ParsedNetSolvesCorrectly) {
  const std::string text = R"(
# M/M/1/4 written by hand
place queue
transition arrive exp 0.5
transition serve exp 1.0
arc out arrive queue
arc inhibit arrive queue 4
arc in serve queue
)";
  const PetriNet net = ParseNet(text);
  const SpnSteadyState ss = SolveSteadyState(net);
  const markov::Mm1k ref{0.5, 1.0, 4};
  EXPECT_NEAR(ss.mean_tokens[net.PlaceByName("queue")], ref.MeanJobs(),
              1e-10);
}

TEST(TextFormat, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# header\n\nplace p 1   # trailing comment\n"
      "transition t exp 2.0\narc in t p\narc out t p\n";
  const PetriNet net = ParseNet(text);
  EXPECT_EQ(net.PlaceCount(), 1u);
  EXPECT_EQ(net.InitialMarking()[0], 1u);
}

TEST(TextFormat, ImmediateAttributesParsed) {
  const std::string text =
      "place p 1\nplace q\n"
      "transition t immediate priority=7 weight=2.5\n"
      "arc in t p\narc out t q\n"
      "transition back exp 1.0\narc in back q\narc out back p\n";
  const PetriNet net = ParseNet(text);
  const Transition& t = net.GetTransition(net.TransitionByName("t"));
  EXPECT_EQ(t.priority, 7);
  EXPECT_DOUBLE_EQ(t.weight, 2.5);
}

TEST(TextFormat, ErlangAndUniformKinds) {
  const std::string text =
      "place p 1\n"
      "transition e erlang 3 2.0\narc in e p\narc out e p\n"
      "transition u uniform 0.5 1.5\narc in u p\narc out u p\n";
  const PetriNet net = ParseNet(text);
  EXPECT_EQ(net.GetTransition(0).delay->Describe(), "Erlang(k=3,rate=2)");
  EXPECT_EQ(net.GetTransition(1).delay->Describe(), "Uniform[0.5,1.5]");
}

TEST(TextFormat, ErrorsCarryLineNumbers) {
  try {
    ParseNet("place p 1\nbogus directive\n");
    FAIL() << "expected parse error";
  } catch (const util::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TextFormat, RejectsMalformedInput) {
  EXPECT_THROW(ParseNet("place\n"), util::InvalidArgument);
  EXPECT_THROW(ParseNet("place p x\n"), util::InvalidArgument);
  EXPECT_THROW(ParseNet("transition t exp\n"), util::InvalidArgument);
  EXPECT_THROW(ParseNet("transition t warp 1.0\n"), util::InvalidArgument);
  EXPECT_THROW(ParseNet("place p 1\ntransition t exp 1.0\n"
                        "arc sideways t p\n"),
               util::InvalidArgument);
  EXPECT_THROW(ParseNet("place p 1\ntransition t exp 1.0\narc in t ghost\n"),
               util::InvalidArgument);
  // Validation still applies to the assembled net.
  EXPECT_THROW(ParseNet("place p 1\n"), util::ModelError);
}

TEST(TextFormat, StreamWrappers) {
  const PetriNet net = MakePingPongNet(1.0, 2.0);
  std::stringstream ss;
  WriteNet(ss, net);
  ExpectNetsEquivalent(net, ReadNet(ss));
}

}  // namespace
}  // namespace wsn::petri
