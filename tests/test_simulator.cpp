// DES kernel: clock semantics, scheduling order, cancellation, horizons
// and event chains.
#include <gtest/gtest.h>

#include <vector>

#include "des/simulator.hpp"
#include "util/error.hpp"

namespace wsn::des {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.ProcessedEvents(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(1.0, [&] { order.push_back(2); });
  sim.ScheduleAt(1.0, [&] { order.push_back(3); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.ScheduleAt(5.0, [&] {
    sim.ScheduleAfter(2.5, [&] { fired_at = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(sim.Cancel(id));  // already gone
}

TEST(Simulator, CancelFromWithinEvent) {
  Simulator sim;
  bool second_fired = false;
  const EventId victim =
      sim.ScheduleAt(2.0, [&] { second_fired = true; });
  sim.ScheduleAt(1.0, [&] { EXPECT_TRUE(sim.Cancel(victim)); });
  sim.RunToCompletion();
  EXPECT_FALSE(second_fired);
}

TEST(Simulator, RunUntilStopsAtHorizonAndClampsClock) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(10.0, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.RunUntil(20.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.Now(), 20.0);
}

TEST(Simulator, EventAtHorizonBoundaryFires) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(5.0, [&] { fired = true; });
  sim.RunUntil(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, ZeroDelayChainProcessesInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(1.0, [&] {
    order.push_back(1);
    sim.ScheduleAfter(0.0, [&] {
      order.push_back(2);
      sim.ScheduleAfter(0.0, [&] { order.push_back(3); });
    });
  });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 1.0);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.ScheduleAt(2.0, [] {});
  sim.RunUntil(2.0);
  EXPECT_THROW(sim.ScheduleAt(1.0, [] {}), util::InvalidArgument);
  EXPECT_THROW(sim.ScheduleAfter(-0.5, [] {}), util::InvalidArgument);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 25; ++i) {
    sim.ScheduleAt(static_cast<double>(i), [] {});
  }
  sim.RunToCompletion();
  EXPECT_EQ(sim.ProcessedEvents(), 25u);
}

TEST(Simulator, StepReturnsFalseWhenDrained) {
  Simulator sim;
  sim.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(Simulator, WorksWithAllQueueKinds) {
  for (QueueKind kind : {QueueKind::kBinaryHeap, QueueKind::kSortedList,
                         QueueKind::kCalendar}) {
    Simulator sim(kind);
    std::vector<int> order;
    sim.ScheduleAt(2.0, [&] { order.push_back(2); });
    sim.ScheduleAt(1.0, [&] { order.push_back(1); });
    sim.RunToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
  }
}

}  // namespace
}  // namespace wsn::des
