// DES kernel: clock semantics, scheduling order, cancellation, horizons,
// event chains, the event-record slab (generation-checked reuse) and the
// InlineAction small-buffer-optimized callable.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "des/action.hpp"
#include "des/simulator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wsn::des {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.ProcessedEvents(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(1.0, [&] { order.push_back(2); });
  sim.ScheduleAt(1.0, [&] { order.push_back(3); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.ScheduleAt(5.0, [&] {
    sim.ScheduleAfter(2.5, [&] { fired_at = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(sim.Cancel(id));  // already gone
}

TEST(Simulator, CancelFromWithinEvent) {
  Simulator sim;
  bool second_fired = false;
  const EventId victim =
      sim.ScheduleAt(2.0, [&] { second_fired = true; });
  sim.ScheduleAt(1.0, [&] { EXPECT_TRUE(sim.Cancel(victim)); });
  sim.RunToCompletion();
  EXPECT_FALSE(second_fired);
}

TEST(Simulator, RunUntilStopsAtHorizonAndClampsClock) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(10.0, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.RunUntil(20.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.Now(), 20.0);
}

TEST(Simulator, EventAtHorizonBoundaryFires) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(5.0, [&] { fired = true; });
  sim.RunUntil(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, ZeroDelayChainProcessesInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(1.0, [&] {
    order.push_back(1);
    sim.ScheduleAfter(0.0, [&] {
      order.push_back(2);
      sim.ScheduleAfter(0.0, [&] { order.push_back(3); });
    });
  });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 1.0);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.ScheduleAt(2.0, [] {});
  sim.RunUntil(2.0);
  EXPECT_THROW(sim.ScheduleAt(1.0, [] {}), util::InvalidArgument);
  EXPECT_THROW(sim.ScheduleAfter(-0.5, [] {}), util::InvalidArgument);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 25; ++i) {
    sim.ScheduleAt(static_cast<double>(i), [] {});
  }
  sim.RunToCompletion();
  EXPECT_EQ(sim.ProcessedEvents(), 25u);
}

TEST(Simulator, StepReturnsFalseWhenDrained) {
  Simulator sim;
  sim.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(Simulator, PendingEventsExcludesCancelledUnpoppedHeapEntries) {
  // The default binary heap deletes lazily: a cancelled event's entry
  // stays queued until it would surface.  PendingEvents is counted by
  // the kernel itself, so the zombies must never show up.
  Simulator sim(QueueKind::kBinaryHeap);
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sim.ScheduleAt(1.0 + i, [] {}));
  }
  EXPECT_EQ(sim.PendingEvents(), 10u);
  for (int i = 5; i < 10; ++i) {
    EXPECT_TRUE(sim.Cancel(ids[i]));
  }
  EXPECT_EQ(sim.PendingEvents(), 5u);  // far-future entries still unpopped
  sim.RunToCompletion();
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.ProcessedEvents(), 5u);
}

TEST(Simulator, CancelOfReservedNullIdIsAlwaysFalse) {
  // 0 is the "no pending event" sentinel callers store (netsim's death
  // timer); it must never match a freed slab record's cleared id.
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(0));  // before any slot exists
  sim.ScheduleAt(1.0, [] {});
  sim.RunToCompletion();        // slot 0 now sits freed on the free list
  EXPECT_FALSE(sim.Cancel(0));
  EXPECT_EQ(sim.PendingEvents(), 0u);
  sim.ScheduleAt(2.0, [] {});   // the recycled slot must still be usable
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.RunToCompletion();
  EXPECT_EQ(sim.ProcessedEvents(), 2u);
}

TEST(Simulator, CancelAfterFireReturnsFalseEvenAfterSlotReuse) {
  Simulator sim;
  const EventId first = sim.ScheduleAt(1.0, [] {});
  sim.RunUntil(2.0);
  EXPECT_FALSE(sim.Cancel(first));  // already fired
  // The next event reuses the freed slab slot; the stale handle must
  // keep failing while the fresh one works.
  const EventId second = sim.ScheduleAt(3.0, [] {});
  EXPECT_EQ(EventSlotOf(first), EventSlotOf(second));
  EXPECT_NE(first, second);
  EXPECT_FALSE(sim.Cancel(first));
  EXPECT_TRUE(sim.Cancel(second));
}

TEST(Simulator, FifoTieBreakSurvivesSlotReuse) {
  // Slot indices recycle but sequence numbers never do, so simultaneous
  // events still fire in schedule order even when a later event occupies
  // a lower (reused) slot.
  Simulator sim;
  std::vector<int> order;
  const EventId a = sim.ScheduleAt(5.0, [&] { order.push_back(1); });
  sim.ScheduleAt(5.0, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.Cancel(a));
  const EventId c = sim.ScheduleAt(5.0, [&] { order.push_back(3); });
  EXPECT_EQ(EventSlotOf(c), EventSlotOf(a));  // reused the freed slot
  EXPECT_GT(c, a);                            // but with a later sequence
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(Simulator, SlabReuseStressNoStaleCallbackFires) {
  // 100k mixed schedule/cancel/fire operations: every callback must fire
  // exactly once or not at all (if cancelled), stale handles must never
  // cancel a successor, and the slab must stay bounded by the peak
  // pending count (slots are recycled, not leaked).
  struct Cell {
    int state = 0;  // 0 = pending, 1 = fired, 2 = cancelled
  };
  Simulator sim;
  util::Rng rng(99);
  std::deque<Cell> cells;
  std::vector<std::pair<EventId, Cell*>> pending;
  std::size_t peak_pending = 0;
  EventId last_id = 0;
  std::uint64_t scheduled = 0;

  const auto schedule_one = [&] {
    cells.emplace_back();
    Cell* cell = &cells.back();
    const double t = sim.Now() + util::UniformDouble(rng) * 10.0;
    const EventId id = sim.ScheduleAt(t, [cell] {
      EXPECT_EQ(cell->state, 0) << "stale or double callback fired";
      cell->state = 1;
    });
    EXPECT_GT(id, last_id) << "event ids must stay strictly monotone";
    last_id = id;
    pending.push_back({id, cell});
    ++scheduled;
    peak_pending = std::max(peak_pending, sim.PendingEvents());
  };

  for (int i = 0; i < 100000; ++i) {
    const double op = util::UniformDouble(rng);
    if (op < 0.5 || pending.empty()) {
      schedule_one();
    } else if (op < 0.7) {
      const std::size_t pick = util::UniformBelow(rng, pending.size());
      auto [id, cell] = pending[pick];
      EXPECT_TRUE(sim.Cancel(id));
      EXPECT_FALSE(sim.Cancel(id)) << "double cancel must fail";
      cell->state = 2;
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      sim.Step();
      // Firing pops some pending entry; prune fired ones lazily.
      std::erase_if(pending, [&](const auto& entry) {
        if (entry.second->state != 1) return false;
        EXPECT_FALSE(sim.Cancel(entry.first)) << "cancel-after-fire";
        return true;
      });
    }
    ASSERT_EQ(sim.PendingEvents(), pending.size());
  }
  sim.RunToCompletion();

  std::uint64_t fired = 0, cancelled = 0;
  for (const Cell& cell : cells) {
    EXPECT_NE(cell.state, 0) << "event neither fired nor cancelled";
    if (cell.state == 1) ++fired;
    if (cell.state == 2) ++cancelled;
  }
  EXPECT_EQ(fired + cancelled, scheduled);
  EXPECT_EQ(sim.ProcessedEvents(), fired);
  EXPECT_LE(sim.SlabSlots(), peak_pending) << "slab slots not recycled";
}

TEST(InlineAction, SmallCaptureStaysInlineAndInvokes) {
  int hits = 0;
  InlineAction a([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(a));
  EXPECT_TRUE(a.IsInline());
  a();
  EXPECT_EQ(hits, 1);
}

TEST(InlineAction, OversizeCaptureFallsBackToHeapBox) {
  std::array<char, 2 * kActionInlineCapacity> big{};
  big[0] = 7;
  int out = 0;
  InlineAction a([big, &out] { out = big[0]; });
  EXPECT_FALSE(a.IsInline());
  a();
  EXPECT_EQ(out, 7);
}

TEST(InlineAction, MoveTransfersOwnership) {
  int hits = 0;
  InlineAction a([&hits] { ++hits; });
  InlineAction b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(hits, 1);
  InlineAction c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(Simulator, OversizeActionSchedulesAndFires) {
  // Closures past the inline budget are boxed, not rejected.
  Simulator sim;
  std::array<double, 16> payload{};
  payload[15] = 42.0;
  double seen = 0.0;
  sim.ScheduleAt(1.0, [payload, &seen] { seen = payload[15]; });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(Simulator, WorksWithAllQueueKinds) {
  for (QueueKind kind : {QueueKind::kBinaryHeap, QueueKind::kSortedList,
                         QueueKind::kCalendar}) {
    Simulator sim(kind);
    std::vector<int> order;
    sim.ScheduleAt(2.0, [&] { order.push_back(2); });
    sim.ScheduleAt(1.0, [&] { order.push_back(1); });
    sim.RunToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
  }
}

}  // namespace
}  // namespace wsn::des
