// The paper's supplementary-variable Markov model (Eqs. 11-24):
// normalization, limiting behaviour, monotonicity across parameter sweeps
// and agreement with M/M/1 where the power logic vanishes.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/mm1.hpp"
#include "markov/supplementary.hpp"
#include "util/error.hpp"

namespace wsn::markov {
namespace {

struct ParamCase {
  double lambda, mu, T, D;
};

class SupplementaryProperties : public ::testing::TestWithParam<ParamCase> {};

TEST_P(SupplementaryProperties, ProbabilitiesSumToOne) {
  const auto& c = GetParam();
  const SupplementaryVariableModel m(c.lambda, c.mu, c.T, c.D);
  const SupplementaryResult r = m.Evaluate();
  EXPECT_NEAR(r.probability_sum, 1.0, 1e-12);
  EXPECT_GE(r.p_standby, 0.0);
  EXPECT_GE(r.p_powerup, 0.0);
  EXPECT_GE(r.p_idle, 0.0);
  EXPECT_GE(r.p_active, 0.0);
}

TEST_P(SupplementaryProperties, ActiveShareAtLeastRho) {
  // The server must work at least a fraction rho of the time to keep up;
  // power-up stalls can only increase the backlog-serving share.
  const auto& c = GetParam();
  const SupplementaryVariableModel m(c.lambda, c.mu, c.T, c.D);
  EXPECT_GE(m.Evaluate().p_active, c.lambda / c.mu - 1e-9);
}

TEST_P(SupplementaryProperties, LatencyRespectsLittlesLaw) {
  const auto& c = GetParam();
  const SupplementaryVariableModel m(c.lambda, c.mu, c.T, c.D);
  const auto r = m.Evaluate();
  EXPECT_NEAR(r.mean_latency, r.mean_jobs / c.lambda, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SupplementaryProperties,
    ::testing::Values(ParamCase{1.0, 10.0, 0.1, 0.001},
                      ParamCase{1.0, 10.0, 0.5, 0.3},
                      ParamCase{1.0, 10.0, 1.0, 10.0},
                      ParamCase{0.5, 2.0, 0.2, 0.05},
                      ParamCase{2.0, 3.0, 0.01, 0.2},
                      ParamCase{1.0, 10.0, 0.0, 0.0},
                      ParamCase{0.1, 1.0, 2.0, 1.0}));

TEST(Supplementary, PaperEquation17DenominatorStructure) {
  // Hand-check Eq. 17 at lambda=1, mu=10, T=.5, D=.2.
  const double lambda = 1.0, mu = 10.0, T = 0.5, D = 0.2;
  const SupplementaryVariableModel m(lambda, mu, T, D);
  const auto r = m.Evaluate();
  const double rho = lambda / mu;
  const double denom = std::exp(lambda * T) +
                       (1.0 - rho) * (1.0 - std::exp(-lambda * D)) +
                       rho * lambda * D;
  EXPECT_NEAR(r.p_standby, (1.0 - rho) / denom, 1e-14);
  EXPECT_NEAR(r.p_powerup,
              (1.0 - rho) * (1.0 - std::exp(-lambda * D)) / denom, 1e-14);
  EXPECT_NEAR(r.p_idle, (std::exp(lambda * T) - 1.0) * r.p_standby, 1e-14);
  EXPECT_NEAR(r.p_active,
              rho * (std::exp(lambda * T) + lambda * D) / denom, 1e-14);
}

TEST(Supplementary, ZeroDelaysReduceTowardMm1WithSleep) {
  // T = D = 0: the CPU sleeps the instant it idles and wakes for free, so
  // idle and powerup shares vanish; active = rho, standby = 1 - rho.
  const SupplementaryVariableModel m(1.0, 10.0, 0.0, 0.0);
  const auto r = m.Evaluate();
  EXPECT_NEAR(r.p_idle, 0.0, 1e-12);
  EXPECT_NEAR(r.p_powerup, 0.0, 1e-12);
  EXPECT_NEAR(r.p_active, 0.1, 1e-12);
  EXPECT_NEAR(r.p_standby, 0.9, 1e-12);
  // And the queue reduces exactly to M/M/1.
  const Mm1 mm1{1.0, 10.0};
  EXPECT_NEAR(r.mean_jobs, mm1.MeanJobs(), 1e-12);
}

TEST(Supplementary, LargeThresholdNeverSleeps) {
  // T -> inf: p_standby, p_powerup -> 0; idle -> 1 - rho; active -> rho.
  const SupplementaryVariableModel m(1.0, 10.0, 30.0, 0.5);
  const auto r = m.Evaluate();
  EXPECT_NEAR(r.p_standby, 0.0, 1e-9);
  EXPECT_NEAR(r.p_powerup, 0.0, 1e-9);
  EXPECT_NEAR(r.p_idle, 0.9, 1e-8);
  EXPECT_NEAR(r.p_active, 0.1, 1e-8);
}

TEST(Supplementary, IdleShareIncreasesWithThreshold) {
  double prev = -1.0;
  for (double T : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const SupplementaryVariableModel m(1.0, 10.0, T, 0.001);
    const double idle = m.Evaluate().p_idle;
    EXPECT_GT(idle, prev) << "T=" << T;
    prev = idle;
  }
}

TEST(Supplementary, StandbyShareDecreasesWithThreshold) {
  double prev = 2.0;
  for (double T : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const SupplementaryVariableModel m(1.0, 10.0, T, 0.001);
    const double standby = m.Evaluate().p_standby;
    EXPECT_LT(standby, prev) << "T=" << T;
    prev = standby;
  }
}

TEST(Supplementary, MeanJobsGrowsWithPowerUpDelay) {
  double prev = -1.0;
  for (double D : {0.0, 0.1, 1.0, 5.0, 10.0}) {
    const SupplementaryVariableModel m(1.0, 10.0, 0.1, D);
    const double jobs = m.Evaluate().mean_jobs;
    EXPECT_GT(jobs, prev) << "D=" << D;
    prev = jobs;
  }
}

TEST(Supplementary, TotalTimeAndEnergyEquations) {
  const SupplementaryVariableModel m(1.0, 10.0, 0.1, 0.001);
  const auto r = m.Evaluate();
  const std::size_t n_jobs = 1000;
  // Eq. 23.
  const double expected_time =
      (static_cast<double>(n_jobs) + r.mean_jobs * r.mean_jobs) / 1.0;
  EXPECT_NEAR(m.TotalRunningTime(n_jobs), expected_time, 1e-9);
  // Eq. 24 with the paper's PXA271 draws.
  const double weighted = r.p_idle * 88.0 + r.p_standby * 17.0 +
                          r.p_powerup * 192.442 + r.p_active * 193.0;
  EXPECT_NEAR(m.TotalEnergyForJobs(n_jobs, 88.0, 17.0, 192.442, 193.0),
              weighted * expected_time, 1e-6);
}

TEST(Supplementary, DomainChecks) {
  EXPECT_THROW(SupplementaryVariableModel(0.0, 1.0, 0.1, 0.1),
               util::InvalidArgument);
  EXPECT_THROW(SupplementaryVariableModel(1.0, 0.0, 0.1, 0.1),
               util::InvalidArgument);
  EXPECT_THROW(SupplementaryVariableModel(1.0, 1.0, 0.1, 0.1),
               util::InvalidArgument);  // rho = 1
  EXPECT_THROW(SupplementaryVariableModel(2.0, 1.0, 0.1, 0.1),
               util::InvalidArgument);  // rho > 1
  EXPECT_THROW(SupplementaryVariableModel(1.0, 2.0, -0.1, 0.1),
               util::InvalidArgument);
  EXPECT_THROW(SupplementaryVariableModel(1.0, 2.0, 0.1, -0.1),
               util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::markov
