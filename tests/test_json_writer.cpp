// JSON writer: escaping, number policy (NaN/Inf -> null), nesting, and
// the ResultSet json sink built on top of it.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "scenario/result.hpp"
#include "util/json.hpp"

namespace wsn::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesAndBackslash) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape(std::string{'a', '\x01', 'b'}), "a\\u0001b");
}

TEST(JsonEscape, Utf8PassesThrough) {
  const std::string s = "\xc3\xa9\xe2\x82\xac";  // é€
  EXPECT_EQ(JsonEscape(s), s);
}

TEST(JsonNumber, NanAndInfSerializeAsNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumber, IntegralValuesHaveNoDecimalPoint) {
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(0.0), "0");
}

TEST(JsonNumber, FractionalValuesRoundTrip) {
  const double v = 0.1234567890123;
  EXPECT_DOUBLE_EQ(std::stod(JsonNumber(v)), v);
}

TEST(JsonWriter, CompactObjectAndArray) {
  JsonWriter w(0);
  w.BeginObject()
      .Key("a").Int(1)
      .Key("b").BeginArray().String("x").Bool(true).Null().EndArray()
      .EndObject();
  EXPECT_EQ(w.Str(), "{\"a\":1,\"b\":[\"x\",true,null]}");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter w(0);
  w.BeginArray()
      .Number(std::numeric_limits<double>::quiet_NaN())
      .Number(std::numeric_limits<double>::infinity())
      .Number(1.5)
      .EndArray();
  EXPECT_EQ(w.Str(), "[null,null,1.5]");
}

TEST(JsonWriter, EscapesKeysAndValues) {
  JsonWriter w(0);
  w.BeginObject().Key("we\"ird").String("line\nbreak").EndObject();
  EXPECT_EQ(w.Str(), "{\"we\\\"ird\":\"line\\nbreak\"}");
}

TEST(JsonWriter, IndentedOutputIsStable) {
  JsonWriter w(2);
  w.BeginObject().Key("k").BeginArray().Int(1).Int(2).EndArray().EndObject();
  EXPECT_EQ(w.Str(), "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
}

TEST(ResultSetJson, EmitsScenarioMetaTablesNotes) {
  scenario::ResultSet results("demo");
  results.SetMeta("seed", "2008");
  scenario::ResultTable& t = results.AddTable("main", {"x", "y"});
  t.AddRow({"1", "2"});
  results.AddNote("a note");
  const std::string json = results.RenderJson();
  EXPECT_NE(json.find("\"scenario\": \"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": \"2008\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"main\""), std::string::npos);
  EXPECT_NE(json.find("\"a note\""), std::string::npos);
}

TEST(ResultSetJson, EscapesCellsWithQuotesAndNewlines) {
  scenario::ResultSet results("demo");
  scenario::ResultTable& t = results.AddTable("main", {"h"});
  t.AddRow({"cell \"quoted\"\nsecond line"});
  const std::string json = results.RenderJson();
  EXPECT_NE(json.find("cell \\\"quoted\\\"\\nsecond line"),
            std::string::npos);
}

}  // namespace
}  // namespace wsn::util
