// Distribution sampling: every supported distribution's sample mean and
// variance must converge to the analytical values (parameterized property
// sweep), plus domain validation.
#include <gtest/gtest.h>

#include <cmath>

#include "util/distributions.hpp"
#include "util/error.hpp"
#include "util/statistics.hpp"

namespace wsn::util {
namespace {

struct DistCase {
  const char* label;
  Distribution dist;
};

class DistributionMoments : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionMoments, SampleMomentsMatchAnalytical) {
  const Distribution& d = GetParam().dist;
  Rng rng(0xabcdef);
  RunningStats stats;
  const int n = 400000;
  for (int i = 0; i < n; ++i) stats.Add(d.Sample(rng));

  const double mean = d.Mean();
  const double sd = std::sqrt(d.Variance());
  // Standard error of the mean; 5 sigma tolerance keeps flakiness ~0.
  const double mean_tol =
      5.0 * sd / std::sqrt(static_cast<double>(n)) + 1e-12;
  EXPECT_NEAR(stats.Mean(), mean, mean_tol) << GetParam().label;
  if (d.Variance() > 0.0) {
    EXPECT_NEAR(stats.Variance(), d.Variance(), 0.05 * d.Variance() + 1e-12)
        << GetParam().label;
  } else {
    EXPECT_NEAR(stats.Variance(), 0.0, 1e-12) << GetParam().label;
  }
}

TEST_P(DistributionMoments, SamplesNonNegative) {
  const Distribution& d = GetParam().dist;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(d.Sample(rng), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DistributionMoments,
    ::testing::Values(
        DistCase{"exp1", Distribution(Exponential{1.0})},
        DistCase{"exp10", Distribution(Exponential{10.0})},
        DistCase{"det0", Distribution(Deterministic{0.0})},
        DistCase{"det2_5", Distribution(Deterministic{2.5})},
        DistCase{"unif", Distribution(Uniform{0.5, 1.5})},
        DistCase{"erlang3", Distribution(Erlang{3, 2.0})},
        DistCase{"erlang20", Distribution(Erlang{20, 20.0})},
        DistCase{"weibull2", Distribution(Weibull{2.0, 1.0})},
        DistCase{"lognorm", Distribution(LogNormal{0.0, 0.5})},
        DistCase{"hyperexp",
                 Distribution(HyperExponential{{0.3, 0.7}, {0.5, 5.0}})}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(Distribution, ExponentialScvIsOne) {
  EXPECT_NEAR(Distribution(Exponential{3.0}).Scv(), 1.0, 1e-12);
}

TEST(Distribution, DeterministicScvIsZero) {
  EXPECT_EQ(Distribution(Deterministic{4.0}).Scv(), 0.0);
}

TEST(Distribution, ErlangScvIsOneOverK) {
  EXPECT_NEAR(Distribution(Erlang{4, 1.0}).Scv(), 0.25, 1e-12);
}

TEST(Distribution, HyperExponentialScvExceedsOne) {
  const Distribution d(HyperExponential{{0.9, 0.1}, {10.0, 0.1}});
  EXPECT_GT(d.Scv(), 1.0);
}

TEST(Distribution, MemorylessOnlyForExponential) {
  EXPECT_TRUE(Distribution(Exponential{1.0}).IsMemoryless());
  EXPECT_FALSE(Distribution(Deterministic{1.0}).IsMemoryless());
  EXPECT_FALSE(Distribution(Erlang{2, 1.0}).IsMemoryless());
}

TEST(Distribution, DeterministicFlag) {
  EXPECT_TRUE(Distribution(Deterministic{1.0}).IsDeterministic());
  EXPECT_FALSE(Distribution(Exponential{1.0}).IsDeterministic());
}

TEST(Distribution, RejectsBadParameters) {
  EXPECT_THROW(Distribution(Exponential{0.0}), InvalidArgument);
  EXPECT_THROW(Distribution(Exponential{-1.0}), InvalidArgument);
  EXPECT_THROW(Distribution(Deterministic{-0.1}), InvalidArgument);
  EXPECT_THROW(Distribution(Uniform{2.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Distribution(Erlang{0, 1.0}), InvalidArgument);
  EXPECT_THROW(Distribution(Weibull{0.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Distribution(LogNormal{0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(Distribution(HyperExponential{{0.5, 0.4}, {1.0, 2.0}}),
               InvalidArgument);
  EXPECT_THROW(Distribution(HyperExponential{{1.0}, {1.0, 2.0}}),
               InvalidArgument);
}

TEST(Distribution, DescribeMentionsKind) {
  EXPECT_NE(Distribution(Exponential{2.0}).Describe().find("Exp"),
            std::string::npos);
  EXPECT_NE(Distribution(Deterministic{2.0}).Describe().find("Det"),
            std::string::npos);
}

TEST(Distribution, ErlangEqualsSumOfExponentialsInDistribution) {
  // Compare Erlang(5, 2) sample CDF at a few quantile points against the
  // empirical CDF of summed exponentials.
  Rng rng(99);
  const Distribution erlang(Erlang{5, 2.0});
  int below = 0;
  const int n = 200000;
  const double x = 2.5;  // mean
  for (int i = 0; i < n; ++i) {
    if (erlang.Sample(rng) <= x) ++below;
  }
  // P(Erlang(5,2) <= 2.5) = gammainc; reference value ~0.559507.
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5595, 0.01);
}

TEST(SampleStandardNormal, MomentsMatch) {
  Rng rng(123);
  RunningStats stats;
  for (int i = 0; i < 300000; ++i) stats.Add(SampleStandardNormal(rng));
  EXPECT_NEAR(stats.Mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.Variance(), 1.0, 0.02);
}

}  // namespace
}  // namespace wsn::util
