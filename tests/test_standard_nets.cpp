// The classic-net fixtures themselves: structure, boundedness and basic
// steady-state sanity via the solver.
#include <gtest/gtest.h>

#include "petri/ctmc_solver.hpp"
#include "petri/reachability.hpp"
#include "petri/standard_nets.hpp"
#include "util/error.hpp"

namespace wsn::petri {
namespace {

TEST(StandardNets, AllValidate) {
  EXPECT_NO_THROW(MakeMm1kNet(1.0, 2.0, 5).Validate());
  EXPECT_NO_THROW(MakePingPongNet(1.0, 1.0).Validate());
  EXPECT_NO_THROW(MakeProducerConsumerNet(1.0, 1.0, 2).Validate());
  EXPECT_NO_THROW(MakeForkJoinNet(3, 1.0).Validate());
  EXPECT_NO_THROW(MakeSharedResourceNet(3, 1.0, 2.0).Validate());
}

TEST(StandardNets, ParameterValidation) {
  EXPECT_THROW(MakeMm1kNet(0.0, 1.0, 5), util::InvalidArgument);
  EXPECT_THROW(MakeMm1kNet(1.0, 1.0, 0), util::InvalidArgument);
  EXPECT_THROW(MakeProducerConsumerNet(1.0, 1.0, 0), util::InvalidArgument);
  EXPECT_THROW(MakeForkJoinNet(0, 1.0), util::InvalidArgument);
  EXPECT_THROW(MakeSharedResourceNet(0, 1.0, 1.0), util::InvalidArgument);
}

TEST(StandardNets, ProducerConsumerBounded) {
  const PetriNet net = MakeProducerConsumerNet(2.0, 1.0, 4);
  const ReachabilityGraph g = ExploreReachability(net);
  EXPECT_LE(g.MaxTokens(), 4u);
  EXPECT_TRUE(g.DeadMarkings(net).empty());
}

TEST(StandardNets, ProducerConsumerBufferNeverOverflows) {
  const PetriNet net = MakeProducerConsumerNet(5.0, 0.5, 2);
  const ReachabilityGraph g = ExploreReachability(net);
  const PlaceId items = net.PlaceByName("items");
  for (const Marking& m : g.markings) {
    EXPECT_LE(m[items], 2u);
  }
}

TEST(StandardNets, ForkJoinStateSpace) {
  // 3 branches: start + done + each branch in {running, finished}:
  // 1 (start) + 2^3 (branch combos) + 1 (done) = 10 markings.
  const PetriNet net = MakeForkJoinNet(3, 1.0);
  const ReachabilityGraph g = ExploreReachability(net);
  EXPECT_EQ(g.Size(), 10u);
}

TEST(StandardNets, ForkJoinThroughputMatchesHarmonicExpectation) {
  // Expected fork-to-join makespan for n iid Exp(1) branches is H_n;
  // cycle time adds the Exp(1) reset: throughput = 1/(H_3 + 1).
  const PetriNet net = MakeForkJoinNet(3, 1.0);
  const SpnSteadyState ss = SolveSteadyState(net);
  const double h3 = 1.0 + 0.5 + 1.0 / 3.0;
  EXPECT_NEAR(ss.throughput[net.TransitionByName("reset")],
              1.0 / (h3 + 1.0), 1e-9);
}

TEST(StandardNets, SharedResourceMutualExclusion) {
  const PetriNet net = MakeSharedResourceNet(3, 1.0, 1.0);
  const ReachabilityGraph g = ExploreReachability(net);
  // At most one user holds the resource in every reachable marking.
  for (const Marking& m : g.markings) {
    std::uint32_t holders = 0;
    for (std::uint32_t u = 0; u < 3; ++u) {
      holders += m[net.PlaceByName("using_" + std::to_string(u))];
    }
    EXPECT_LE(holders, 1u);
  }
}

TEST(StandardNets, Mm1kStateSpaceScalesWithCapacity) {
  for (std::uint32_t k : {1u, 3u, 9u}) {
    const ReachabilityGraph g =
        ExploreReachability(MakeMm1kNet(1.0, 1.0, k));
    EXPECT_EQ(g.Size(), static_cast<std::size_t>(k) + 1);
  }
}

}  // namespace
}  // namespace wsn::petri
