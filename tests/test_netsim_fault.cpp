// Fault-injection engine (ISSUE 8): randomized crash/recover churn
// pinning RoutingTable::RepairAfterRecovery (and RepairAfterDeath) to
// the full and legacy recompute oracles after every event; end-to-end
// simulator equivalence across routing-update and head-assignment modes
// under churn; scripted partition-heal semantics; exponential-backoff
// timing; the packet-conservation invariant; jam and sink-outage
// observables; fault-plan determinism and config validation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "netsim/fault.hpp"
#include "netsim/mac.hpp"
#include "netsim/netsim.hpp"
#include "netsim/replication.hpp"
#include "netsim/routing.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wsn/network.hpp"

namespace wsn::netsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void ExpectTablesEqual(const RoutingTable& a, const RoutingTable& b,
                       const char* what) {
  ASSERT_EQ(a.Size(), b.Size());
  EXPECT_EQ(a.UnroutedAlive(), b.UnroutedAlive()) << what;
  for (std::size_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(a.NextHop(i), b.NextHop(i)) << what << ": node " << i;
    EXPECT_DOUBLE_EQ(a.HopDistance(i), b.HopDistance(i))
        << what << ": node " << i;
  }
}

std::vector<node::Position> RandomDeployment(util::Rng& rng, std::size_t n,
                                             double extent) {
  std::vector<node::Position> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back({util::UniformDouble(rng) * extent,
                   util::UniformDouble(rng) * extent});
  }
  return pos;
}

// The randomized churn-equivalence suite: 210 random chained
// crash/recover schedules across several sizes and sink counts.  After
// EVERY event — crash or recovery — the incrementally maintained table
// must match both the grid-accelerated full recompute and the faithful
// legacy all-pairs recompute, route for route and counter for counter.
TEST(FaultChurnEquivalence, RecoveryRepairMatchesRecomputeOverChurn) {
  util::Rng rng(4242);
  const std::size_t kSequences = 210;
  for (std::size_t seq = 0; seq < kSequences; ++seq) {
    const std::size_t n = 2 + (rng() % 60);
    const double extent = 100.0 + util::UniformDouble(rng) * 200.0;
    const double hop = 30.0 + util::UniformDouble(rng) * 40.0;
    util::Rng topo_rng(rng());
    const std::vector<node::Position> pos =
        RandomDeployment(topo_rng, n, extent);

    std::vector<node::Position> sinks{{0.0, 0.0}};
    if (seq % 3 == 1) sinks.push_back({extent, extent});
    if (seq % 3 == 2) sinks.push_back({extent, 0.0});

    RoutingTable incremental(sinks, hop, pos);
    RoutingTable full(sinks, hop, pos);
    RoutingTable legacy(sinks, hop, pos);

    std::vector<bool> alive(n, true);
    std::vector<std::uint32_t> down;
    std::size_t alive_count = n;
    // Chained churn: each step crashes a random alive node or revives a
    // random down one, biased toward crashes so the down set grows and
    // recoveries happen from genuinely degraded states.
    const std::size_t steps = 2 * n;
    for (std::size_t step = 0; step < steps; ++step) {
      const bool can_crash = alive_count > 1;
      const bool crash =
          !down.empty() ? (can_crash && rng() % 3 != 0) : true;
      if (crash && !can_crash) continue;
      if (crash) {
        std::size_t victim = rng() % n;
        while (!alive[victim]) victim = (victim + 1) % n;
        alive[victim] = false;
        --alive_count;
        down.push_back(static_cast<std::uint32_t>(victim));
        incremental.RepairAfterDeath(victim, alive);
      } else {
        const std::size_t pick = rng() % down.size();
        const std::size_t revived = down[pick];
        down[pick] = down.back();
        down.pop_back();
        alive[revived] = true;
        ++alive_count;
        incremental.RepairAfterRecovery(revived, alive);
      }
      full.Recompute(alive);
      legacy.RecomputeLegacy(alive);
      ExpectTablesEqual(incremental, full, "incremental vs full");
      ExpectTablesEqual(incremental, legacy, "incremental vs legacy");
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << "divergence in sequence " << seq << " after step " << step;
      }
    }
  }
}

TEST(FaultChurnEquivalence, RecoveryOfIsolatedAndGatewayNodes) {
  // Hand-built line: sink - a - b - c, hop 40, spacing 30.  Killing and
  // reviving the middle node must exactly restore the original table.
  const std::vector<node::Position> pos{{30.0, 0.0}, {60.0, 0.0},
                                        {90.0, 0.0}};
  RoutingTable table({0.0, 0.0}, 40.0, pos);
  const RoutingTable pristine({0.0, 0.0}, 40.0, pos);
  std::vector<bool> alive(3, true);

  alive[1] = false;
  table.RepairAfterDeath(1, alive);
  EXPECT_EQ(table.NextHop(2), RoutingTable::kNoRoute);
  EXPECT_EQ(table.UnroutedAlive(), 1u);

  alive[1] = true;
  table.RepairAfterRecovery(1, alive);
  ExpectTablesEqual(table, pristine, "revived gateway");
  EXPECT_EQ(table.UnroutedAlive(), 0u);
}

// ---------------------------------------------------------------------
// Fault plan generation: determinism and validation.

TEST(FaultPlan, DeterministicPerSeedAndSorted) {
  FaultConfig cfg;
  cfg.crash_rate_hz = 0.002;
  cfg.mean_outage_s = 120.0;
  cfg.jam_windows = 3;
  cfg.jam_radius_m = 50.0;
  cfg.jam_duration_s = 200.0;
  cfg.jam_p_loss = 0.4;
  cfg.sink_outages = 2;
  cfg.sink_outage_s = 150.0;
  util::Rng topo(7);
  const std::vector<node::Position> pos = RandomDeployment(topo, 40, 300.0);

  const FaultPlan a = FaultPlan::Generate(cfg, pos, 2, 5000.0, util::Rng(9));
  const FaultPlan b = FaultPlan::Generate(cfg, pos, 2, 5000.0, util::Rng(9));
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_FALSE(a.events.empty());
  for (std::size_t k = 0; k < a.events.size(); ++k) {
    EXPECT_EQ(a.events[k].t, b.events[k].t);
    EXPECT_EQ(a.events[k].kind, b.events[k].kind);
    EXPECT_EQ(a.events[k].node, b.events[k].node);
    if (k > 0) EXPECT_LE(a.events[k - 1].t, a.events[k].t);
  }
  ASSERT_EQ(a.jams.size(), 3u);
  ASSERT_EQ(a.sink_outages.size(), 2u);
  EXPECT_EQ(a.sink_outages[0].sink, 0u);  // round-robin over the sink set
  EXPECT_EQ(a.sink_outages[1].sink, 1u);
  for (std::size_t k = 0; k < a.jams.size(); ++k) {
    EXPECT_EQ(a.jams[k].start_s, b.jams[k].start_s);
    EXPECT_EQ(a.jams[k].center.x, b.jams[k].center.x);
  }

  const FaultPlan other =
      FaultPlan::Generate(cfg, pos, 2, 5000.0, util::Rng(10));
  bool differs = other.events.size() != a.events.size();
  for (std::size_t k = 0; !differs && k < a.events.size(); ++k) {
    differs = other.events[k].t != a.events[k].t;
  }
  EXPECT_TRUE(differs) << "different seeds must give different plans";
}

TEST(FaultPlan, ScriptedEventsMergeSortedAndValidate) {
  FaultConfig cfg;
  cfg.scripted = {{300.0, FaultEventKind::kCrash, 1},
                  {100.0, FaultEventKind::kCrash, 0},
                  {500.0, FaultEventKind::kRecover, 1}};
  const std::vector<node::Position> pos{{10.0, 0.0}, {20.0, 0.0}};
  const FaultPlan plan =
      FaultPlan::Generate(cfg, pos, 1, 1000.0, util::Rng(1));
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].node, 0u);  // sorted by time
  EXPECT_EQ(plan.events[1].node, 1u);
  EXPECT_EQ(plan.events[2].kind, FaultEventKind::kRecover);

  FaultConfig bad;
  bad.scripted = {{100.0, FaultEventKind::kCrash, 7}};
  EXPECT_THROW(FaultPlan::Generate(bad, pos, 1, 1000.0, util::Rng(1)),
               util::InvalidArgument);
}

TEST(FaultConfig, ValidationRejectsInconsistentKnobs) {
  {
    FaultConfig c;
    c.crash_rate_hz = 0.01;  // crashes without an outage length
    EXPECT_THROW(c.Validate(), util::InvalidArgument);
  }
  {
    FaultConfig c;
    c.crash_rate_hz = -1.0;
    EXPECT_THROW(c.Validate(), util::InvalidArgument);
  }
  {
    FaultConfig c;
    c.jam_windows = 1;  // jam without radius/duration/p_loss
    EXPECT_THROW(c.Validate(), util::InvalidArgument);
  }
  {
    FaultConfig c;
    c.jam_windows = 1;
    c.jam_radius_m = 10.0;
    c.jam_duration_s = 10.0;
    c.jam_p_loss = 1.5;
    EXPECT_THROW(c.Validate(), util::InvalidArgument);
  }
  {
    FaultConfig c;
    c.sink_outages = 1;  // outages without a window length
    EXPECT_THROW(c.Validate(), util::InvalidArgument);
  }
  {
    FaultConfig c;
    c.scripted = {{-1.0, FaultEventKind::kCrash, 0}};
    EXPECT_THROW(c.Validate(), util::InvalidArgument);
  }
  FaultConfig ok;
  EXPECT_FALSE(ok.Enabled());
  EXPECT_NO_THROW(ok.Validate());
}

TEST(FaultEngine, JamWindowsCombineAndRespectBounds) {
  FaultPlan plan;
  plan.jams.push_back({{50.0, 50.0}, 30.0, 100.0, 200.0, 0.5});
  plan.jams.push_back({{60.0, 50.0}, 30.0, 150.0, 250.0, 0.5});
  const FaultEngine engine(std::move(plan));

  const node::Position inside{55.0, 50.0};  // covered by both discs
  EXPECT_DOUBLE_EQ(engine.JamExtraLoss(inside, 50.0), 0.0);   // too early
  EXPECT_DOUBLE_EQ(engine.JamExtraLoss(inside, 120.0), 0.5);  // first only
  EXPECT_DOUBLE_EQ(engine.JamExtraLoss(inside, 180.0), 0.75);  // overlap
  EXPECT_DOUBLE_EQ(engine.JamExtraLoss(inside, 220.0), 0.5);  // second only
  EXPECT_DOUBLE_EQ(engine.JamExtraLoss(inside, 250.0), 0.0);  // end excl.
  EXPECT_DOUBLE_EQ(engine.JamExtraLoss({500.0, 500.0}, 180.0), 0.0);
}

TEST(FaultEngine, SinkDownWindowsAreHalfOpenAndPerSink) {
  FaultPlan plan;
  plan.sink_outages.push_back({0, 100.0, 200.0});
  const FaultEngine engine(std::move(plan));
  EXPECT_FALSE(engine.SinkDown(0, 99.9));
  EXPECT_TRUE(engine.SinkDown(0, 100.0));
  EXPECT_TRUE(engine.SinkDown(0, 199.9));
  EXPECT_FALSE(engine.SinkDown(0, 200.0));
  EXPECT_FALSE(engine.SinkDown(1, 150.0));  // other sinks unaffected
}

// ---------------------------------------------------------------------
// End-to-end simulator churn equivalence.

NetSimConfig ChurnConfig(std::size_t cols, std::size_t rows) {
  NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = 2.0;
  cfg.network.node.cpu.service_rate = 20.0;
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 40.0;
  cfg.positions = node::MakeGrid(cols, rows, 15.0);
  cfg.horizon_s = 1200.0;
  cfg.faults.crash_rate_hz = 0.001;
  cfg.faults.mean_outage_s = 150.0;
  cfg.faults.jam_windows = 2;
  cfg.faults.jam_radius_m = 45.0;
  cfg.faults.jam_duration_s = 200.0;
  cfg.faults.jam_p_loss = 0.5;
  cfg.faults.sink_outages = 1;
  cfg.faults.sink_outage_s = 150.0;
  return cfg;
}

NetSimReport RunOne(const NetSimConfig& cfg, std::uint64_t seed) {
  const core::MarkovCpuModel model;
  NetworkSimulator sim(cfg, CpuAveragePowerMw(cfg, model),
                       util::Rng(seed).MakeStream(0));
  return sim.Run();
}

void ExpectReportsEqual(const NetSimReport& a, const NetSimReport& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.packets.generated, b.packets.generated);
  EXPECT_EQ(a.packets.delivered, b.packets.delivered);
  EXPECT_EQ(a.packets.forwarded, b.packets.forwarded);
  EXPECT_EQ(a.packets.dropped, b.packets.dropped);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.in_flight, b.in_flight);
  EXPECT_DOUBLE_EQ(a.first_death_s, b.first_death_s);
  EXPECT_DOUBLE_EQ(a.partition_s, b.partition_s);
  EXPECT_DOUBLE_EQ(a.heal_s, b.heal_s);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.nodes[i].remaining_j, b.nodes[i].remaining_j) << i;
    EXPECT_EQ(a.nodes[i].alive, b.nodes[i].alive) << i;
    EXPECT_EQ(a.nodes[i].delivered, b.nodes[i].delivered) << i;
  }
}

TEST(FaultSimulator, ChurnIdenticalAcrossRoutingUpdateModes) {
  NetSimConfig cfg = ChurnConfig(8, 6);
  cfg.routing_update = RoutingUpdateMode::kIncremental;
  const NetSimReport inc = RunOne(cfg, 321);
  EXPECT_GT(inc.crashes, 0u) << "test must exercise churn";
  EXPECT_GT(inc.recoveries, 0u);
  EXPECT_TRUE(inc.Conserved());

  cfg.routing_update = RoutingUpdateMode::kFull;
  const NetSimReport full = RunOne(cfg, 321);
  cfg.routing_update = RoutingUpdateMode::kLegacy;
  const NetSimReport legacy = RunOne(cfg, 321);
  ExpectReportsEqual(inc, full);
  ExpectReportsEqual(inc, legacy);
}

TEST(FaultSimulator, ClusteredChurnIdenticalAcrossAssignModes) {
  NetSimConfig cfg = ChurnConfig(8, 6);
  cfg.cluster.protocol = ClusterProtocolKind::kLeach;
  cfg.cluster.head_fraction = 0.15;
  cfg.cluster.round_s = 200.0;
  cfg.cluster.aggregation = 4;

  cfg.cluster.assign = HeadAssignMode::kGrid;
  const NetSimReport grid = RunOne(cfg, 654);
  EXPECT_GT(grid.crashes, 0u) << "test must exercise churn";
  EXPECT_GT(grid.recoveries, 0u);
  EXPECT_TRUE(grid.Conserved());

  cfg.cluster.assign = HeadAssignMode::kAllPairs;
  const NetSimReport allpairs = RunOne(cfg, 654);
  ExpectReportsEqual(grid, allpairs);
}

TEST(FaultSimulator, FaultFreeConfigBuildsNoFaultMachinery) {
  // A default FaultConfig must leave the run bit-identical to one built
  // before the fault engine existed: same events, same RNG stream
  // consumption, zero crash bookkeeping.
  NetSimConfig cfg = ChurnConfig(6, 4);
  cfg.faults = FaultConfig{};
  const NetSimReport report = RunOne(cfg, 777);
  EXPECT_EQ(report.crashes, 0u);
  EXPECT_EQ(report.recoveries, 0u);
  EXPECT_EQ(report.jam_windows, 0u);
  EXPECT_EQ(report.sink_outage_windows, 0u);
  EXPECT_EQ(report.heal_s, kInf);
  EXPECT_TRUE(report.Conserved());
}

// ---------------------------------------------------------------------
// Scripted churn: partition heal, crash semantics, battery freezing.

NetSimConfig ChainConfig() {
  // sink(0,0) - n0(30,0) - n1(60,0) - n2(90,0), hop 40: node 2 reaches
  // the sink only through node 1 — the cut vertex.
  NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = 2.0;
  cfg.network.node.cpu.service_rate = 20.0;
  cfg.network.node.sample_bits = 512;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 40.0;
  cfg.positions = {{30.0, 0.0}, {60.0, 0.0}, {90.0, 0.0}};
  cfg.horizon_s = 600.0;
  return cfg;
}

TEST(FaultSimulator, ScriptedCrashPartitionsAndRecoveryHeals) {
  NetSimConfig cfg = ChainConfig();
  cfg.faults.scripted = {{100.0, FaultEventKind::kCrash, 1},
                         {300.0, FaultEventKind::kRecover, 1}};
  const NetSimReport report = RunOne(cfg, 42);

  EXPECT_EQ(report.crashes, 1u);
  EXPECT_EQ(report.recoveries, 1u);
  EXPECT_DOUBLE_EQ(report.partition_s, 100.0);  // node 2 lost its route
  EXPECT_DOUBLE_EQ(report.heal_s, 300.0);       // the revival closed it
  // A crash is not a battery death: nothing died, nothing latched.
  EXPECT_EQ(report.first_death_s, kInf);
  EXPECT_TRUE(report.nodes[1].alive);
  EXPECT_DOUBLE_EQ(report.end_s, 600.0);
  EXPECT_TRUE(report.Conserved());

  // Delivery resumes after the heal: against a crash-only twin (no
  // recovery), node 2 must land strictly more samples at the sink.
  NetSimConfig crash_only = ChainConfig();
  crash_only.faults.scripted = {{100.0, FaultEventKind::kCrash, 1}};
  const NetSimReport severed = RunOne(crash_only, 42);
  EXPECT_EQ(severed.heal_s, kInf);
  EXPECT_GT(report.nodes[2].delivered, severed.nodes[2].delivered);
  EXPECT_GT(report.nodes[2].delivered, 0u);
  EXPECT_TRUE(severed.Conserved());
}

TEST(FaultSimulator, StopAtPartitionSemanticsUnchangedUnderFaults) {
  NetSimConfig cfg = ChainConfig();
  cfg.stop_at_partition = true;
  cfg.faults.scripted = {{100.0, FaultEventKind::kCrash, 1},
                         {300.0, FaultEventKind::kRecover, 1}};
  const NetSimReport report = RunOne(cfg, 42);
  EXPECT_DOUBLE_EQ(report.partition_s, 100.0);
  EXPECT_DOUBLE_EQ(report.end_s, 100.0);  // stopped at the cut, as ever
  EXPECT_EQ(report.heal_s, kInf);         // never ran long enough to heal
  EXPECT_TRUE(report.Conserved());
}

TEST(FaultSimulator, CrashIsNotAFirstDeathAndFreezesTheBattery) {
  // Zero traffic isolates the baseline drain: a node down for 200 of
  // 600 s must spend exactly 400/600 of the fault-free twin's energy —
  // no drain accrues during the outage, and it rejoins with its
  // remaining charge.
  NetSimConfig cfg = ChainConfig();
  cfg.network.node.report_fraction = 0.0;
  cfg.stop_at_first_death = true;  // must NOT trip on the crash
  cfg.faults.scripted = {{100.0, FaultEventKind::kCrash, 1},
                         {300.0, FaultEventKind::kRecover, 1}};
  const NetSimReport faulty = RunOne(cfg, 5);
  EXPECT_EQ(faulty.first_death_s, kInf);
  EXPECT_DOUBLE_EQ(faulty.end_s, 600.0);

  NetSimConfig twin = ChainConfig();
  twin.network.node.report_fraction = 0.0;
  const NetSimReport clean = RunOne(twin, 5);
  EXPECT_GT(clean.nodes[1].energy_used_j, 0.0);
  EXPECT_NEAR(faulty.nodes[1].energy_used_j,
              clean.nodes[1].energy_used_j * (400.0 / 600.0),
              clean.nodes[1].energy_used_j * 1e-9);
  // The other nodes never crashed: identical spend to the twin.
  EXPECT_DOUBLE_EQ(faulty.nodes[0].energy_used_j,
                   clean.nodes[0].energy_used_j);
}

TEST(FaultSimulator, CrashOfABatteryDeadNodeIsANoOp) {
  // Node 1 is battery-starved to die early; the scripted crash/recover
  // pair lands after its death and must not resurrect it.
  NetSimConfig cfg = ChainConfig();
  cfg.battery_mah_override = {50.0, 0.0001, 50.0};
  cfg.faults.scripted = {{500.0, FaultEventKind::kCrash, 1},
                         {550.0, FaultEventKind::kRecover, 1}};
  const NetSimReport report = RunOne(cfg, 8);
  ASSERT_LT(report.first_death_s, 500.0);
  EXPECT_EQ(report.first_dead_node, 1u);
  EXPECT_EQ(report.crashes, 0u);      // nothing left to crash
  EXPECT_EQ(report.recoveries, 0u);   // the paired recover no-ops too
  EXPECT_FALSE(report.nodes[1].alive);
  EXPECT_TRUE(report.Conserved());
}

// ---------------------------------------------------------------------
// Jam windows and sink outages, observably.

TEST(FaultSimulator, JamWindowsCauseLinkLossWithLosslessMac) {
  // Base p_loss = 0: every link-loss drop and retransmission must come
  // from the jam (total jam coverage, p = 1, over the first half).
  NetSimConfig cfg = ChainConfig();
  cfg.mac.p_loss = 0.0;
  cfg.mac.max_retries = 1;
  cfg.faults.jam_windows = 6;
  cfg.faults.jam_radius_m = 500.0;  // covers the whole chain
  cfg.faults.jam_duration_s = 300.0;
  cfg.faults.jam_p_loss = 1.0;
  const NetSimReport jammed = RunOne(cfg, 13);
  EXPECT_GT(jammed.packets.retransmissions, 0u);
  EXPECT_GT(jammed.packets.Dropped(DropReason::kLinkLoss), 0u);
  EXPECT_TRUE(jammed.Conserved());

  NetSimConfig calm = ChainConfig();
  calm.mac.p_loss = 0.0;
  const NetSimReport control = RunOne(calm, 13);
  EXPECT_EQ(control.packets.Dropped(DropReason::kLinkLoss), 0u);
  EXPECT_GT(control.packets.delivered, jammed.packets.delivered);
}

TEST(FaultSimulator, SinkOutagesRejectDeliveriesWithLosslessMac) {
  NetSimConfig cfg = ChainConfig();
  cfg.mac.p_loss = 0.0;
  cfg.mac.max_retries = 1;
  cfg.faults.sink_outages = 3;
  cfg.faults.sink_outage_s = 250.0;
  const NetSimReport outage = RunOne(cfg, 21);
  EXPECT_EQ(outage.sink_outage_windows, 3u);
  EXPECT_GT(outage.packets.Dropped(DropReason::kLinkLoss), 0u);
  EXPECT_TRUE(outage.Conserved());

  NetSimConfig calm = ChainConfig();
  calm.mac.p_loss = 0.0;
  const NetSimReport control = RunOne(calm, 21);
  EXPECT_GT(control.packets.delivered, outage.packets.delivered);
}

// ---------------------------------------------------------------------
// Packet conservation across regimes.

TEST(FaultSimulator, ConservationHoldsAcrossRegimes) {
  {
    NetSimConfig cfg = ChainConfig();  // lossless baseline
    const NetSimReport r = RunOne(cfg, 1);
    EXPECT_GT(r.packets.generated, 0u);
    EXPECT_TRUE(r.Conserved());
  }
  {
    NetSimConfig cfg = ChainConfig();  // lossy links
    cfg.mac.p_loss = 0.3;
    cfg.mac.max_retries = 1;
    const NetSimReport r = RunOne(cfg, 2);
    EXPECT_GT(r.packets.Dropped(DropReason::kLinkLoss), 0u);
    EXPECT_TRUE(r.Conserved());
  }
  {
    NetSimConfig cfg = ChainConfig();  // queue overflow
    cfg.mac.max_queue = 1;
    cfg.network.node.cpu.arrival_rate = 50.0;
    cfg.network.node.cpu.service_rate = 500.0;
    const NetSimReport r = RunOne(cfg, 3);
    EXPECT_GT(r.packets.Dropped(DropReason::kQueueOverflow), 0u);
    EXPECT_TRUE(r.Conserved());
  }
  {
    NetSimConfig cfg = ChurnConfig(6, 6);  // clustered aggregation + churn
    cfg.cluster.protocol = ClusterProtocolKind::kLeach;
    cfg.cluster.head_fraction = 0.15;
    cfg.cluster.round_s = 200.0;
    cfg.cluster.aggregation = 8;
    const NetSimReport r = RunOne(cfg, 4);
    EXPECT_GT(r.crashes, 0u);
    EXPECT_TRUE(r.Conserved());
  }
}

// ---------------------------------------------------------------------
// MAC exponential backoff.

TEST(MacBackoff, GrowthWidensRetryWindowsExactly) {
  MacConfig mc;
  mc.backoff_window_s = 0.004;
  mc.backoff_growth = 3.0;
  util::Rng ctor_rng(1);
  const DutyCycledMac mac(mc, 1, ctor_rng);

  for (const std::uint32_t attempt : {0u, 1u, 2u, 5u}) {
    util::Rng rng(99 + attempt);
    util::Rng probe = rng;  // same stream: reproduce the draw
    const double u = util::UniformDouble(probe);
    double window = mc.backoff_window_s;
    if (attempt > 0) {
      window *= std::pow(mc.backoff_growth, static_cast<double>(attempt));
    }
    const double now = 10.0;
    const double start = now + u * window;
    const double expected =
        now + ((start - now) + 1000.0 / mc.bitrate_bps);
    const DutyCycledMac::TxTiming tx =
        mac.TxFinish(now, 1000, DutyCycledMac::kSinkReceiver, rng, attempt);
    EXPECT_DOUBLE_EQ(tx.finish_s, expected) << "attempt " << attempt;
    EXPECT_FALSE(tx.slotted);
  }
}

TEST(MacBackoff, DefaultGrowthIsBitIdenticalToConstantWindow) {
  MacConfig mc;  // backoff_growth = 1.0 (the historical constant window)
  util::Rng ctor_rng(1);
  const DutyCycledMac mac(mc, 1, ctor_rng);
  util::Rng a(7);
  util::Rng b(7);
  const DutyCycledMac::TxTiming first =
      mac.TxFinish(2.0, 512, DutyCycledMac::kSinkReceiver, a, 0);
  const DutyCycledMac::TxTiming retry =
      mac.TxFinish(2.0, 512, DutyCycledMac::kSinkReceiver, b, 7);
  EXPECT_EQ(first.finish_s, retry.finish_s);  // attempt index ignored
}

TEST(MacBackoff, GrowthBelowOneRejected) {
  MacConfig mc;
  mc.backoff_growth = 0.5;
  EXPECT_THROW(mc.Validate(), util::InvalidArgument);
  mc.backoff_growth = 1.0;
  EXPECT_NO_THROW(mc.Validate());
}

// ---------------------------------------------------------------------
// Config validation: named battery-override errors.

TEST(NetSimValidation, BatteryOverrideArityErrorNamesTheCounts) {
  NetSimConfig cfg = ChainConfig();
  cfg.battery_mah_override = {50.0, 50.0};  // 2 entries, 3 nodes
  try {
    cfg.Validate();
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("battery_mah_override has 2 entries for 3 nodes"),
              std::string::npos)
        << msg;
  }
  EXPECT_THROW(PerNodeConfigs(cfg), util::InvalidArgument);
}

TEST(NetSimValidation, BatteryOverrideNegativeEntryNamesTheIndex) {
  NetSimConfig cfg = ChainConfig();
  cfg.battery_mah_override = {50.0, -2.0, 50.0};
  try {
    cfg.Validate();
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("battery_mah_override[1]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("positive"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------
// Replication-level determinism with faults enabled.

TEST(FaultReplication, ThreadCountInvariantWithFaults) {
  NetSimConfig cfg = ChurnConfig(6, 4);
  const core::MarkovCpuModel model;
  ReplicationConfig rep;
  rep.replications = 4;
  rep.seed = 2008;
  rep.keep_reports = true;

  rep.threads = 1;
  const ReplicationSummary serial = RunReplications(cfg, model, rep);
  rep.threads = 4;
  const ReplicationSummary parallel = RunReplications(cfg, model, rep);

  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  std::uint64_t total_crashes = 0;
  for (std::size_t r = 0; r < serial.reports.size(); ++r) {
    ExpectReportsEqual(serial.reports[r], parallel.reports[r]);
    EXPECT_TRUE(serial.reports[r].Conserved()) << "replication " << r;
    total_crashes += serial.reports[r].crashes;
  }
  EXPECT_GT(total_crashes, 0u) << "test must exercise churn";
}

}  // namespace
}  // namespace wsn::netsim
