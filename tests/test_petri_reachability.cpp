// Reachability: state counts on known nets, tangible/vanishing
// classification, dead markings, unboundedness guards and vanishing
// resolution distributions.
#include <gtest/gtest.h>

#include "petri/reachability.hpp"
#include "petri/standard_nets.hpp"
#include "util/error.hpp"

namespace wsn::petri {
namespace {

TEST(Reachability, PingPongHasTwoMarkings) {
  const PetriNet net = MakePingPongNet(1.0, 1.0);
  const ReachabilityGraph g = ExploreReachability(net);
  EXPECT_EQ(g.Size(), 2u);
  EXPECT_EQ(g.edges.size(), 2u);
  EXPECT_TRUE(g.complete);
  EXPECT_TRUE(g.tangible[0]);
  EXPECT_TRUE(g.tangible[1]);
  EXPECT_TRUE(g.DeadMarkings(net).empty());
}

TEST(Reachability, Mm1kHasCapacityPlusOneMarkings) {
  const PetriNet net = MakeMm1kNet(1.0, 2.0, 7);
  const ReachabilityGraph g = ExploreReachability(net);
  EXPECT_EQ(g.Size(), 8u);  // 0..7 jobs
  EXPECT_EQ(g.MaxTokens(), 7u);
}

TEST(Reachability, DetectsDeadMarking) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId t = net.AddExponentialTransition("t", 1.0);
  net.AddInputArc(t, a);
  net.AddOutputArc(t, b);
  const ReachabilityGraph g = ExploreReachability(net);
  EXPECT_EQ(g.Size(), 2u);
  const auto dead = g.DeadMarkings(net);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(g.markings[dead[0]][b], 1u);
}

TEST(Reachability, UnboundedNetTriggersGuard) {
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 0);
  const PlaceId gen = net.AddPlace("gen", 1);
  const TransitionId t = net.AddExponentialTransition("t", 1.0);
  net.AddInputArc(t, gen);
  net.AddOutputArc(t, gen);
  net.AddOutputArc(t, p);  // p grows forever

  ReachabilityOptions opts;
  opts.max_tokens_per_place = 50;
  EXPECT_THROW(ExploreReachability(net, opts), util::ModelError);
}

TEST(Reachability, MarkingCapTriggersGuard) {
  const PetriNet net = MakeMm1kNet(1.0, 2.0, 100);
  ReachabilityOptions opts;
  opts.max_markings = 10;
  EXPECT_THROW(ExploreReachability(net, opts), util::ModelError);
}

TEST(Reachability, VanishingClassification) {
  const PetriNet net = MakeProducerConsumerNet(1.0, 1.0, 2);
  const ReachabilityGraph g = ExploreReachability(net);
  // A token in "produced" enables the immediate deposit — and makes the
  // marking vanishing — iff a buffer slot is free; with the buffer full
  // the producer blocks in a tangible marking.
  const PlaceId produced = net.PlaceByName("produced");
  const PlaceId slots = net.PlaceByName("slots");
  bool saw_vanishing = false;
  for (std::size_t i = 0; i < g.Size(); ++i) {
    if (g.markings[i][produced] > 0) {
      const bool expect_vanishing = g.markings[i][slots] > 0;
      EXPECT_EQ(g.tangible[i], !expect_vanishing);
      saw_vanishing = saw_vanishing || expect_vanishing;
    }
  }
  EXPECT_TRUE(saw_vanishing);
}

TEST(VanishingResolution, TangibleMarkingIsIdentity) {
  const PetriNet net = MakePingPongNet(1.0, 1.0);
  const Marking m = net.InitialMarking();
  const auto dist = ResolveVanishingDistribution(net, m);
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_DOUBLE_EQ(dist.at(m), 1.0);
}

TEST(VanishingResolution, WeightedBranchProbabilities) {
  // One token, two immediate transitions with weights 1 and 3 leading to
  // distinct tangible markings.
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const PlaceId a = net.AddPlace("a", 0);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId ta = net.AddImmediateTransition("ta", 1, 1.0);
  const TransitionId tb = net.AddImmediateTransition("tb", 1, 3.0);
  net.AddInputArc(ta, p);
  net.AddOutputArc(ta, a);
  net.AddInputArc(tb, p);
  net.AddOutputArc(tb, b);
  // A timed transition so tangible markings aren't dead-ends structurally.
  const TransitionId back = net.AddExponentialTransition("back", 1.0);
  net.AddInputArc(back, a);
  net.AddOutputArc(back, p);

  const auto dist = ResolveVanishingDistribution(net, net.InitialMarking());
  ASSERT_EQ(dist.size(), 2u);
  Marking ma{0, 1, 0}, mb{0, 0, 1};
  EXPECT_NEAR(dist.at(ma), 0.25, 1e-12);
  EXPECT_NEAR(dist.at(mb), 0.75, 1e-12);
}

TEST(VanishingResolution, MultiStepChain) {
  // p -> q -> r through two immediates: resolves straight to r's marking.
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const PlaceId q = net.AddPlace("q", 0);
  const PlaceId r = net.AddPlace("r", 0);
  const TransitionId t1 = net.AddImmediateTransition("t1", 1);
  const TransitionId t2 = net.AddImmediateTransition("t2", 1);
  net.AddInputArc(t1, p);
  net.AddOutputArc(t1, q);
  net.AddInputArc(t2, q);
  net.AddOutputArc(t2, r);
  const TransitionId timed = net.AddExponentialTransition("timed", 1.0);
  net.AddInputArc(timed, r);
  net.AddOutputArc(timed, p);

  const auto dist = ResolveVanishingDistribution(net, net.InitialMarking());
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_DOUBLE_EQ(dist.at(Marking{0, 0, 1}), 1.0);
}

TEST(VanishingResolution, LoopThrows) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId ab = net.AddImmediateTransition("ab", 1);
  const TransitionId ba = net.AddImmediateTransition("ba", 1);
  net.AddInputArc(ab, a);
  net.AddOutputArc(ab, b);
  net.AddInputArc(ba, b);
  net.AddOutputArc(ba, a);
  EXPECT_THROW(ResolveVanishingDistribution(net, net.InitialMarking()),
               util::ModelError);
}

TEST(TangibleGraph, PingPong) {
  const PetriNet net = MakePingPongNet(2.0, 5.0);
  const TangibleGraph g = BuildTangibleGraph(net);
  EXPECT_EQ(g.markings.size(), 2u);
  ASSERT_EQ(g.edges.size(), 2u);
  double total_rate = 0.0;
  for (const auto& e : g.edges) total_rate += e.rate;
  EXPECT_NEAR(total_rate, 7.0, 1e-12);
  EXPECT_NEAR(g.initial_distribution[0] + g.initial_distribution[1], 1.0,
              1e-12);
}

TEST(TangibleGraph, FoldsVanishingChains) {
  const PetriNet net = MakeProducerConsumerNet(1.0, 2.0, 3);
  const TangibleGraph g = BuildTangibleGraph(net);
  // The deposit immediate is folded into the produce edges: a token can
  // only linger in "produced" when the buffer is full (deposit disabled).
  for (const Marking& m : g.markings) {
    if (m[net.PlaceByName("produced")] > 0) {
      EXPECT_EQ(m[net.PlaceByName("slots")], 0u);
    }
  }
  EXPECT_GT(g.edges.size(), 0u);
}

TEST(TangibleGraph, RejectsDeterministicNets) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const TransitionId t = net.AddDeterministicTransition("t", 1.0);
  net.AddInputArc(t, a);
  net.AddOutputArc(t, a);
  EXPECT_THROW(BuildTangibleGraph(net), util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::petri
