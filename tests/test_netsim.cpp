// Packet-level network simulator: routing over the live set, per-(seed,
// replication) determinism, convergence to the analytic lifetime, death-
// triggered re-routing and partition detection.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/models.hpp"
#include "des/bursty_workload.hpp"
#include "netsim/netsim.hpp"
#include "netsim/replication.hpp"
#include "netsim/routing.hpp"
#include "wsn/network.hpp"

namespace wsn::netsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A near-zero-power CPU table so the radio's per-packet energy dominates:
// this keeps replication-to-replication variance meaningful (the packet
// process, not a deterministic baseline, decides the death time).
energy::PowerStateTable TinyCpuTable() {
  energy::PowerStateTable t;
  t.name = "tiny";
  t.standby_mw = 0.005;
  t.idle_mw = 0.01;
  t.powerup_mw = 0.02;
  t.active_mw = 0.02;
  return t;
}

node::NodeConfig PacketDominatedNode() {
  node::NodeConfig cfg;
  cfg.cpu.arrival_rate = 15.0;
  cfg.cpu.service_rate = 150.0;
  cfg.cpu.power_down_threshold = 0.1;
  cfg.cpu.power_up_delay = 0.001;
  cfg.cpu_power = TinyCpuTable();
  cfg.sample_bits = 2048;
  cfg.listen_duty_cycle = 0.01;
  cfg.report_fraction = 1.0;
  cfg.battery_mah = 0.3;
  cfg.battery_volts = 3.0;
  return cfg;
}

/// The three-node chain from the static-estimator tests: 2 -> 1 -> 0 ->
/// sink, every hop 50 m.
NetSimConfig ChainConfig() {
  NetSimConfig cfg;
  cfg.network.node = PacketDominatedNode();
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 60.0;
  cfg.positions = {{50.0, 0.0}, {100.0, 0.0}, {150.0, 0.0}};
  return cfg;
}

TEST(RoutingTable, GreedyChainAndLiveSubset) {
  RoutingTable table({0.0, 0.0}, 60.0,
                     {{50.0, 0.0}, {100.0, 0.0}, {150.0, 0.0}});
  EXPECT_EQ(table.NextHop(0), RoutingTable::kSink);
  EXPECT_EQ(table.NextHop(1), 0u);
  EXPECT_EQ(table.NextHop(2), 1u);
  EXPECT_DOUBLE_EQ(table.HopDistance(2), 50.0);

  std::vector<bool> alive{true, false, true};
  table.Recompute(alive);
  EXPECT_EQ(table.NextHop(0), RoutingTable::kSink);
  EXPECT_EQ(table.NextHop(1), RoutingTable::kNoRoute);
  // Node 2 lost its only in-range relay: 100 m to node 0 is out of range.
  EXPECT_EQ(table.NextHop(2), RoutingTable::kNoRoute);
  EXPECT_TRUE(table.Connected(0, alive));
  EXPECT_FALSE(table.Connected(2, alive));
}

TEST(RoutingTable, StaleChainThroughDeadNodeDisconnects) {
  RoutingTable table({0.0, 0.0}, 60.0,
                     {{50.0, 0.0}, {100.0, 0.0}, {150.0, 0.0}});
  // No Recompute: the table still says 2 -> 1 -> 0, but node 1 is dead.
  std::vector<bool> alive{true, false, true};
  EXPECT_FALSE(table.Connected(2, alive));
  EXPECT_TRUE(table.Connected(0, alive));
}

TEST(NetSim, DeterministicForFixedSeedAndReplication) {
  NetSimConfig cfg = ChainConfig();
  cfg.horizon_s = 120.0;
  const core::MarkovCpuModel model;
  const double cpu_mw = CpuAveragePowerMw(cfg, model);
  const util::Rng master(1234);

  NetworkSimulator a(cfg, cpu_mw, master.MakeStream(3));
  NetworkSimulator b(cfg, cpu_mw, master.MakeStream(3));
  const NetSimReport ra = a.Run();
  const NetSimReport rb = b.Run();
  EXPECT_EQ(ra.packets.generated, rb.packets.generated);
  EXPECT_EQ(ra.packets.delivered, rb.packets.delivered);
  EXPECT_EQ(ra.events, rb.events);
  EXPECT_EQ(ra.first_death_s, rb.first_death_s);
  EXPECT_TRUE(ra.Conserved()) << "generated " << ra.packets.generated
                              << " != delivered + dropped + in flight";
  ASSERT_EQ(ra.nodes.size(), rb.nodes.size());
  for (std::size_t i = 0; i < ra.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.nodes[i].remaining_j, rb.nodes[i].remaining_j);
  }
}

TEST(NetSim, ReplicationResultsIndependentOfThreadCount) {
  NetSimConfig cfg = ChainConfig();
  cfg.horizon_s = 60.0;
  const core::MarkovCpuModel model;

  ReplicationConfig serial;
  serial.replications = 6;
  serial.seed = 77;
  serial.threads = 1;
  serial.keep_reports = true;
  ReplicationConfig parallel = serial;
  parallel.threads = 4;

  const ReplicationSummary rs = RunReplications(cfg, model, serial);
  const ReplicationSummary rp = RunReplications(cfg, model, parallel);
  ASSERT_EQ(rs.reports.size(), rp.reports.size());
  for (std::size_t r = 0; r < rs.reports.size(); ++r) {
    EXPECT_EQ(rs.reports[r].packets.delivered, rp.reports[r].packets.delivered)
        << "replication " << r;
    EXPECT_EQ(rs.reports[r].events, rp.reports[r].events);
    EXPECT_DOUBLE_EQ(rs.reports[r].first_death_s, rp.reports[r].first_death_s);
  }
  EXPECT_DOUBLE_EQ(rs.delivery_ratio.ci.mean, rp.delivery_ratio.ci.mean);
}

// Acceptance anchor: with re-routing disabled and steady traffic, the
// mean simulated time-to-first-death over >= 32 replications must agree
// with the static estimator on the same topology (analytic value inside
// the replications' 95% confidence interval).
TEST(NetSim, FirstDeathMatchesAnalyticLifetimeOnChain) {
  NetSimConfig cfg = ChainConfig();
  cfg.rerouting = false;
  cfg.stop_at_first_death = true;
  cfg.horizon_s = 5000.0;

  const core::MarkovCpuModel model;
  node::NetworkConfig net_cfg = cfg.network;
  const node::NetworkReport analytic =
      node::Network(net_cfg, cfg.positions).Evaluate(model);

  ReplicationConfig rep;
  rep.replications = 40;
  rep.seed = 2008;
  const ReplicationSummary summary = RunReplications(cfg, model, rep);

  ASSERT_EQ(summary.first_death_s.observed, rep.replications)
      << "every replication must reach a first death before the horizon";
  const util::ConfidenceInterval& ci = summary.first_death_s.ci;
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_TRUE(ci.Contains(analytic.network_lifetime_seconds))
      << "simulated " << ci.mean << " +- " << ci.half_width
      << " s vs analytic " << analytic.network_lifetime_seconds << " s";
  // The interval should be tight, not vacuously wide.
  EXPECT_LT(ci.half_width, 0.05 * ci.mean);
}

// Acceptance: a relay death triggers a re-route and delivery continues
// (ratio > 0) until the network partitions.
TEST(NetSim, DeathTriggersRerouteAndDeliveryContinuesUntilPartition) {
  NetSimConfig cfg;
  cfg.network.node = PacketDominatedNode();
  cfg.network.node.cpu.arrival_rate = 10.0;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 70.0;
  // Source out of sink range; relays A (preferred, tiny battery) and B
  // (fallback).  When A dies the source must fail over to B.
  cfg.positions = {{100.0, 0.0}, {48.0, 10.0}, {52.0, -10.0}};
  cfg.battery_mah_override = {1.0, 0.005, 0.02};
  cfg.horizon_s = 1.0e6;
  cfg.stop_at_partition = true;

  const core::MarkovCpuModel model;
  const double cpu_mw = CpuAveragePowerMw(cfg, model);
  const util::Rng master(99);

  NetworkSimulator with_reroute(cfg, cpu_mw, master.MakeStream(0));
  const NetSimReport report = with_reroute.Run();

  EXPECT_EQ(report.first_dead_node, 1u);  // A, the preferred relay
  ASSERT_TRUE(std::isfinite(report.partition_s));
  EXPECT_GT(report.partition_s, report.first_death_s)
      << "fallback relay B must keep the source connected after A dies";
  EXPECT_GT(report.DeliveryRatio(), 0.0);
  EXPECT_EQ(report.end_s, report.partition_s);
  EXPECT_TRUE(report.Conserved());

  NetSimConfig static_cfg = cfg;
  static_cfg.rerouting = false;
  NetworkSimulator without_reroute(static_cfg, cpu_mw, master.MakeStream(0));
  const NetSimReport static_report = without_reroute.Run();
  // Without re-routing the source is cut off the moment A dies.
  EXPECT_DOUBLE_EQ(static_report.partition_s, static_report.first_death_s);
  EXPECT_GT(report.packets.delivered, static_report.packets.delivered);
}

TEST(NetSim, InitiallyPartitionedDeploymentIsDetectedAtTimeZero) {
  NetSimConfig cfg;
  cfg.network.node = PacketDominatedNode();
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 50.0;
  cfg.positions = {{200.0, 0.0}};  // unreachable singleton
  cfg.horizon_s = 20.0;

  const core::MarkovCpuModel model;
  NetworkSimulator sim(cfg, CpuAveragePowerMw(cfg, model), util::Rng(5));
  const NetSimReport report = sim.Run();
  EXPECT_DOUBLE_EQ(report.partition_s, 0.0);
  EXPECT_EQ(report.packets.delivered, 0u);
  EXPECT_GT(report.packets.Dropped(DropReason::kNoRoute), 0u);
  EXPECT_DOUBLE_EQ(report.DeliveryRatio(), 0.0);
}

TEST(NetSim, EnergyTimelinesAreMonotoneNonIncreasing) {
  NetSimConfig cfg = ChainConfig();
  cfg.horizon_s = 30.0;
  cfg.timeline_interval_s = 5.0;

  const core::MarkovCpuModel model;
  NetworkSimulator sim(cfg, CpuAveragePowerMw(cfg, model), util::Rng(11));
  const NetSimReport report = sim.Run();
  for (const NodeSimStats& node : report.nodes) {
    ASSERT_GE(node.timeline.size(), 2u);
    for (std::size_t k = 1; k < node.timeline.size(); ++k) {
      EXPECT_GT(node.timeline[k].time_s, node.timeline[k - 1].time_s);
      EXPECT_LE(node.timeline[k].remaining_j,
                node.timeline[k - 1].remaining_j);
    }
  }
}

TEST(NetSim, BurstyTrafficRunsAndStaysDeterministic) {
  NetSimConfig cfg = ChainConfig();
  cfg.horizon_s = 80.0;
  // Quiet/storm MMPP phases instead of steady Poisson.
  cfg.traffic_factory = [](std::size_t) {
    return std::make_unique<des::MmppWorkload>(
        std::vector<double>{2.0, 40.0},
        std::vector<std::vector<double>>{{-0.2, 0.2}, {1.0, -1.0}});
  };

  const core::MarkovCpuModel model;
  const double cpu_mw = CpuAveragePowerMw(cfg, model);
  const util::Rng master(31);
  NetworkSimulator a(cfg, cpu_mw, master.MakeStream(0));
  NetworkSimulator b(cfg, cpu_mw, master.MakeStream(0));
  const NetSimReport ra = a.Run();
  const NetSimReport rb = b.Run();
  EXPECT_GT(ra.packets.generated, 0u);
  EXPECT_GT(ra.packets.delivered, 0u);
  EXPECT_EQ(ra.packets.generated, rb.packets.generated);
  EXPECT_EQ(ra.packets.delivered, rb.packets.delivered);
}

TEST(NetSim, LossyLinksPayRetransmissionEnergy) {
  NetSimConfig lossless = ChainConfig();
  lossless.horizon_s = 40.0;
  NetSimConfig lossy = lossless;
  lossy.mac.p_loss = 0.3;
  lossy.mac.max_retries = 5;

  const core::MarkovCpuModel model;
  const double cpu_mw = CpuAveragePowerMw(lossless, model);
  const util::Rng master(7);
  NetworkSimulator a(lossless, cpu_mw, master.MakeStream(0));
  NetworkSimulator b(lossy, cpu_mw, master.MakeStream(0));
  const NetSimReport clean = a.Run();
  const NetSimReport noisy = b.Run();
  EXPECT_EQ(clean.packets.retransmissions, 0u);
  EXPECT_GT(noisy.packets.retransmissions, 0u);
  // Retransmissions burn extra energy at the bottleneck relay.
  EXPECT_LT(noisy.nodes[0].remaining_j, clean.nodes[0].remaining_j);
  EXPECT_TRUE(clean.Conserved());
  EXPECT_TRUE(noisy.Conserved());
}

TEST(NetSim, ConfigValidation) {
  NetSimConfig cfg = ChainConfig();
  cfg.battery_mah_override = {1.0};  // wrong arity: 3 nodes
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);

  NetSimConfig bad_mac = ChainConfig();
  bad_mac.mac.bitrate_bps = 0.0;
  EXPECT_THROW(bad_mac.Validate(), util::InvalidArgument);

  NetSimConfig empty = ChainConfig();
  empty.positions.clear();
  EXPECT_THROW(empty.Validate(), util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::netsim
