// Birth–death closed forms and the M/M/1 / M/M/1/K reference formulas,
// cross-validated against the generic CTMC solver.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/birth_death.hpp"
#include "markov/ctmc.hpp"
#include "markov/mm1.hpp"
#include "util/error.hpp"

namespace wsn::markov {
namespace {

TEST(BirthDeath, TwoStateMatchesDetailedBalance) {
  const auto pi = BirthDeathStationary({2.0}, {1.0});
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-12);
}

TEST(BirthDeath, MatchesCtmcSolver) {
  const std::vector<double> birth{1.0, 2.0, 0.5, 3.0};
  const std::vector<double> death{2.0, 1.0, 4.0, 0.7};
  const auto closed = BirthDeathStationary(birth, death);

  Ctmc chain(5);
  for (std::size_t i = 0; i < 4; ++i) {
    chain.AddRate(i, i + 1, birth[i]);
    chain.AddRate(i + 1, i, death[i]);
  }
  const auto numeric = chain.StationaryDistribution();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(closed[i], numeric[i], 1e-10);
  }
}

TEST(BirthDeath, MeanState) {
  // Symmetric rates: uniform over {0,1}; mean 0.5.
  EXPECT_NEAR(BirthDeathMeanState({1.0}, {1.0}), 0.5, 1e-12);
}

TEST(BirthDeath, RejectsBadInput) {
  EXPECT_THROW(BirthDeathStationary({1.0}, {1.0, 2.0}),
               util::InvalidArgument);
  EXPECT_THROW(BirthDeathStationary({0.0}, {1.0}), util::InvalidArgument);
}

class Mm1Cases : public ::testing::TestWithParam<double> {};

TEST_P(Mm1Cases, ClassicalIdentities) {
  const double rho = GetParam();
  const Mm1 q{rho, 1.0};
  EXPECT_NEAR(q.Rho(), rho, 1e-12);
  EXPECT_NEAR(q.P0(), 1.0 - rho, 1e-12);
  EXPECT_NEAR(q.MeanJobs(), rho / (1.0 - rho), 1e-12);
  EXPECT_NEAR(q.MeanQueue(), q.MeanJobs() - rho, 1e-12);
  // Little's law consistency.
  EXPECT_NEAR(q.MeanLatency() * q.lambda, q.MeanJobs(), 1e-12);
  EXPECT_NEAR(q.MeanWait(), q.MeanLatency() - 1.0 / q.mu, 1e-12);
  // Pn is geometric and sums to 1.
  double sum = 0.0;
  for (std::size_t n = 0; n < 200; ++n) sum += q.Pn(n);
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Loads, Mm1Cases,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(Mm1, UnstableThrows) {
  const Mm1 q{2.0, 1.0};
  EXPECT_THROW(q.MeanJobs(), util::InvalidArgument);
}

TEST(Mm1k, DistributionSumsToOne) {
  const Mm1k q{1.0, 2.0, 5};
  double sum = 0.0;
  for (std::size_t n = 0; n <= 5; ++n) sum += q.Pn(n);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(q.Pn(6), 0.0);
}

TEST(Mm1k, CriticalLoadIsUniform) {
  const Mm1k q{1.0, 1.0, 4};
  for (std::size_t n = 0; n <= 4; ++n) {
    EXPECT_NEAR(q.Pn(n), 0.2, 1e-12);
  }
}

TEST(Mm1k, MatchesCtmc) {
  const double lambda = 0.8, mu = 1.0;
  const std::size_t k = 7;
  const Mm1k q{lambda, mu, k};

  Ctmc chain(k + 1);
  for (std::size_t n = 0; n < k; ++n) {
    chain.AddRate(n, n + 1, lambda);
    chain.AddRate(n + 1, n, mu);
  }
  const auto pi = chain.StationaryDistribution();
  double mean = 0.0;
  for (std::size_t n = 0; n <= k; ++n) {
    EXPECT_NEAR(q.Pn(n), pi[n], 1e-10);
    mean += static_cast<double>(n) * pi[n];
  }
  EXPECT_NEAR(q.MeanJobs(), mean, 1e-10);
  EXPECT_NEAR(q.BlockingProbability(), pi[k], 1e-10);
  EXPECT_NEAR(q.Utilization(), 1.0 - pi[0], 1e-10);
  EXPECT_NEAR(q.Throughput(), lambda * (1.0 - pi[k]), 1e-10);
}

TEST(Mm1k, ConvergesToMm1AsCapacityGrows) {
  const Mm1 unbounded{0.5, 1.0};
  const Mm1k bounded{0.5, 1.0, 60};
  EXPECT_NEAR(bounded.MeanJobs(), unbounded.MeanJobs(), 1e-9);
  EXPECT_LT(bounded.BlockingProbability(), 1e-15);
}

}  // namespace
}  // namespace wsn::markov
