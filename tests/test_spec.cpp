// Declarative scenario specs (ISSUE 9): the validation error catalog —
// every error class fails with an exact, path-qualified message — plus
// file loading, front-end mutual exclusion, and a small end-to-end run
// of the generic interpreter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/run_main.hpp"
#include "scenario/scenario.hpp"
#include "scenario/spec.hpp"
#include "util/error.hpp"
#include "util/executor.hpp"

namespace wsn::scenario {
namespace {

/// Parse `json` expecting rejection; return the exact error message.
std::string FailMessage(const std::string& json) {
  try {
    ParseScenarioSpec(json);
  } catch (const util::InvalidArgument& e) {
    return e.what();
  }
  ADD_FAILURE() << "spec unexpectedly valid: " << json;
  return "";
}

// ------------------------------------------------------ study dispatch

TEST(SpecErrors, RootMustBeAnObject) {
  EXPECT_EQ(FailMessage("[1, 2]"),
            "spec: expected a JSON object at $, got array");
}

TEST(SpecErrors, MissingStudyNamesTheChoices) {
  EXPECT_EQ(FailMessage("{}"),
            "spec: missing required key 'study' at $ (one of: clustered, "
            "faults, generic, heterogeneous, lifetime, throughput)");
}

TEST(SpecErrors, UnknownStudyNamesTheChoices) {
  EXPECT_EQ(FailMessage(R"({"study": "fig9"})"),
            "spec: $.study: unknown study 'fig9' (one of: clustered, faults, "
            "generic, heterogeneous, lifetime, throughput)");
}

TEST(SpecErrors, StudyMustBeAString) {
  EXPECT_EQ(FailMessage(R"({"study": 4})"),
            "spec: $.study: expected a string, got number");
}

// ------------------------------------- unknown keys name the JSON path

TEST(SpecErrors, UnknownRootKeyListsAcceptedKeysForTheStudy) {
  EXPECT_EQ(FailMessage(R"({"study": "lifetime", "cluster": {}})"),
            "spec: unknown key 'cluster' at $ (accepted for study "
            "'lifetime': node, run, study, topology, traffic)");
}

TEST(SpecErrors, UnknownSectionKeyListsAcceptedKeys) {
  EXPECT_EQ(FailMessage(
                R"({"study": "lifetime", "topology": {"sinks": 2}})"),
            "spec: unknown key 'sinks' at $.topology (accepted: cols, hop, "
            "rows, spacing)");
}

TEST(SpecErrors, SectionMustBeAnObject) {
  EXPECT_EQ(FailMessage(R"({"study": "lifetime", "node": 3})"),
            "spec: $.node: expected an object, got number");
}

// ------------------------------------------------- type + range errors

TEST(SpecErrors, WrongScalarTypeNamesTheActualType) {
  EXPECT_EQ(FailMessage(
                R"({"study": "lifetime", "topology": {"cols": "ten"}})"),
            "spec: $.topology.cols: expected a number, got string");
}

TEST(SpecErrors, NonIntegerCountNamesTheValue) {
  EXPECT_EQ(
      FailMessage(R"({"study": "lifetime", "topology": {"cols": 2.5}})"),
      "spec: $.topology.cols: expected an integer, got 2.5");
}

TEST(SpecErrors, CountBelowMinimumNamesBothBounds) {
  EXPECT_EQ(FailMessage(
                R"({"study": "lifetime", "run": {"replications": 0}})"),
            "spec: $.run.replications: must be >= 1 (got 0)");
}

TEST(SpecErrors, NonPositiveKnobNamesTheValue) {
  EXPECT_EQ(FailMessage(
                R"({"study": "lifetime", "topology": {"spacing": 0}})"),
            "spec: $.topology.spacing: must be > 0 (got 0)");
}

TEST(SpecErrors, UnknownChoiceListsTheVocabulary) {
  EXPECT_EQ(FailMessage(
                R"({"study": "lifetime", "traffic": {"kind": "fractal"}})"),
            "spec: $.traffic.kind: unknown value 'fractal' (one of: bursty, "
            "steady)");
}

TEST(SpecErrors, BoolKnobRejectsNumbers) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic", "routing": {"rerouting": 1}})"),
            "spec: $.routing.rerouting: expected a boolean, got number");
}

TEST(SpecErrors, LossProbabilityIsHalfOpen) {
  EXPECT_EQ(FailMessage(R"({"study": "generic", "mac": {"p_loss": 1}})"),
            "spec: $.mac.p_loss: must be in [0, 1) (got 1)");
}

TEST(SpecErrors, HeadFractionIsOpenLow) {
  EXPECT_EQ(
      FailMessage(
          R"({"study": "generic", "cluster": {"head_fraction": 0}})"),
      "spec: $.cluster.head_fraction: must be in (0, 1] (got 0)");
}

TEST(SpecErrors, SinksRangeIsNamed) {
  EXPECT_EQ(FailMessage(
                R"({"study": "clustered", "topology": {"sinks": 5}})"),
            "spec: $.topology.sinks: must be in 1..4 (got 5)");
}

// --------------------------------------------------- conflicting knobs

TEST(SpecErrors, NodesConflictsWithColsRows) {
  EXPECT_EQ(
      FailMessage(
          R"({"study": "generic", "topology": {"nodes": 20, "cols": 5}})"),
      "spec: $.topology: 'nodes' conflicts with 'cols'/'rows' (a 'nodes' "
      "deployment derives its own near-square grid)");
}

TEST(SpecErrors, CrashRateRequiresAnOutage) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic", "faults": {"crash_rate": 0.001}})"),
            "spec: $.faults: 'crash_rate' > 0 requires 'outage_s' > 0");
}

TEST(SpecErrors, ThroughputClusterSectionMustBeEmpty) {
  EXPECT_EQ(FailMessage(
                R"({"study": "throughput", "cluster": {"aggregation": 4}})"),
            "spec: $.cluster: study 'throughput' derives its cluster knobs "
            "(round = horizon/5, aggregation 4); pass an empty object to "
            "enable the clustered data path");
}

// ------------------------------------------------- array arity errors

TEST(SpecErrors, EmptyFaultArrayNamesTheCount) {
  EXPECT_EQ(FailMessage(
                R"({"study": "faults", "faults": {"crash_rates": []}})"),
            "spec: $.faults.crash_rates: needs at least 1 entry (got 0)");
}

TEST(SpecErrors, FaultArrayEntryErrorsNameTheIndex) {
  EXPECT_EQ(
      FailMessage(
          R"({"study": "faults", "faults": {"outages": [100, -1]}})"),
      "spec: $.faults.outages[1]: must be > 0 (got -1)");
}

// --------------------------------------------------------- sweep axes

TEST(SpecErrors, SweepMustBeAnArray) {
  EXPECT_EQ(FailMessage(R"({"study": "generic", "sweep": {}})"),
            "spec: $.sweep: expected an array of axis objects, got object");
}

TEST(SpecErrors, SweepIsCappedAtThreeAxes) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic", "sweep": [
                  {"key": "node.rate", "values": [1]},
                  {"key": "node.battery_mah", "values": [1]},
                  {"key": "topology.hop", "values": [50]},
                  {"key": "topology.spacing", "values": [10]}]})"),
            "spec: $.sweep: at most 3 axes (got 4)");
}

TEST(SpecErrors, SweepAxisRequiresKeyAndValues) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic", "sweep": [{"values": [1]}]})"),
            "spec: missing required key 'key' at $.sweep[0]");
  EXPECT_EQ(FailMessage(
                R"({"study": "generic", "sweep": [{"key": "node.rate"}]})"),
            "spec: missing required key 'values' at $.sweep[0]");
}

TEST(SpecErrors, NonSweepableKeyListsTheSweepables) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic",
                    "sweep": [{"key": "node.favorite_color",
                               "values": [1]}]})"),
            "spec: $.sweep[0].key: 'node.favorite_color' is not sweepable "
            "(sweepable: cluster.head_fraction, cluster.round_s, "
            "faults.crash_rate, faults.outage_s, mac.p_loss, "
            "node.battery_mah, node.rate, run.horizon_s, topology.hop, "
            "topology.spacing)");
}

TEST(SpecErrors, DuplicateSweepAxisIsNamed) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic", "sweep": [
                  {"key": "node.rate", "values": [1]},
                  {"key": "node.rate", "values": [2]}]})"),
            "spec: $.sweep[1].key: duplicate axis 'node.rate'");
}

TEST(SpecErrors, ClusterAxisRequiresAClusterSection) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic",
                    "sweep": [{"key": "cluster.head_fraction",
                               "values": [0.2]}]})"),
            "spec: $.sweep[0].key: 'cluster.head_fraction' requires a "
            "cluster section");
}

TEST(SpecErrors, SweepValuesRespectTheKnobRange) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic",
                    "sweep": [{"key": "mac.p_loss", "values": [1.5]}]})"),
            "spec: $.sweep[0].values[0]: must be in [0, 1) (got 1.5)");
}

TEST(SpecErrors, SweepCellCapNamesTheProduct) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic", "sweep": [
                  {"key": "node.rate", "values": [1, 2, 3, 4]},
                  {"key": "topology.hop", "values": [40, 50, 60, 70]},
                  {"key": "run.horizon_s",
                   "values": [100, 200, 300, 400, 500]}]})"),
            "spec: $.sweep: 80 cells exceed the 64-cell cap (axis lengths "
            "multiply)");
}

// ----------------------------------------------------- output columns

TEST(SpecErrors, UnknownColumnListsTheVocabulary) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic", "output": {"columns": ["latency"]}})"),
            "spec: $.output.columns[0]: unknown column 'latency' (available: "
            "conserved, crashes, delivered, delivery_ratio, dropped, events, "
            "first_death_s, generated, healed, in_flight, partition_s, "
            "recoveries)");
}

TEST(SpecErrors, DuplicateColumnIsNamed) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic",
                    "output": {"columns": ["generated", "generated"]}})"),
            "spec: $.output.columns[1]: duplicate column 'generated'");
}

// ------------------------------------------------ verify.analytic gate

TEST(SpecErrors, AnalyticConflictsWithClustering) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic", "cluster": {},
                    "verify": {"analytic": true}})"),
            "spec: $.verify.analytic: conflicts with the cluster section "
            "(the analytic estimator models flat greedy routing)");
}

TEST(SpecErrors, AnalyticConflictsWithRerouting) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic", "traffic": {"kind": "steady"},
                    "verify": {"analytic": true}})"),
            "spec: $.verify.analytic: conflicts with routing.rerouting true "
            "(disable rerouting so the simulated first death matches the "
            "static routes)");
}

TEST(SpecErrors, AnalyticConflictsWithForbiddenSweepAxes) {
  EXPECT_EQ(FailMessage(
                R"({"study": "generic",
                    "traffic": {"kind": "steady"},
                    "routing": {"rerouting": false},
                    "run": {"stop_at": "first_death"},
                    "sweep": [{"key": "mac.p_loss", "values": [0]}],
                    "verify": {"analytic": true}})"),
            "spec: $.verify.analytic: conflicts with sweep axis "
            "'mac.p_loss'");
}

// -------------------------------------------------------- file loading

TEST(SpecFiles, MissingFileIsNamed) {
  try {
    LoadScenarioSpecFile("/no/such/dir/exp.json");
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "spec: cannot read file '/no/such/dir/exp.json'");
  }
}

TEST(SpecFiles, ParseErrorsArePrefixedWithThePath) {
  const std::string path = testing::TempDir() + "bad_spec.json";
  std::ofstream(path) << R"({"study": "fig9"})";
  try {
    LoadScenarioSpecFile(path);
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    EXPECT_EQ(std::string(e.what()),
              path +
                  ": spec: $.study: unknown study 'fig9' (one of: clustered, "
                  "faults, generic, heterogeneous, lifetime, throughput)");
  }
  std::remove(path.c_str());
}

TEST(SpecFiles, CommittedPresetsAllValidate) {
  for (const char* name :
       {"netsim-lifetime", "netsim-throughput", "netsim-clustered",
        "netsim-heterogeneous", "netsim-faults"}) {
    const std::string path =
        std::string(WSN_SOURCE_DIR) + "/presets/" + name + ".json";
    EXPECT_NO_THROW(LoadScenarioSpecFile(path)) << path;
  }
}

// ----------------------------------------- front-end mutual exclusion

TEST(SpecFiles, WsnctlRejectsNameAndFileTogether) {
  const char* argv[] = {"wsnctl", "run", "netsim-lifetime",
                        "--file=presets/netsim-lifetime.json"};
  testing::internal::CaptureStderr();
  const int rc = WsnctlMain(4, argv);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 1);
  EXPECT_NE(err.find("wsnctl run: pass either a scenario name or "
                     "--file=<spec.json>, not both"),
            std::string::npos)
      << err;
}

// ------------------------------------------------- generic interpreter

/// Run `spec` on `threads` workers and render all three sinks.
std::string RunGeneric(const ScenarioSpec& spec, std::size_t threads) {
  const char* argv[] = {"test"};
  const util::CliArgs args(1, argv);
  util::ParallelExecutor executor(threads);
  ScenarioContext ctx;
  ctx.args = &args;
  ctx.executor = &executor;
  const ResultSet results = RunSpec(ctx, spec);
  return results.RenderText() + "\n#####\n" + results.RenderCsv() +
         "\n#####\n" + results.RenderJson();
}

TEST(SpecInterpreter, GenericSweepIsDeterministicAcrossThreadCounts) {
  const ScenarioSpec spec = ParseScenarioSpec(
      R"({"study": "generic",
          "topology": {"cols": 3, "rows": 2, "spacing": 12, "hop": 30},
          "node": {"rate": 1.0, "battery_mah": 0.02},
          "sweep": [{"key": "node.rate", "values": [0.5, 1.5]}],
          "run": {"horizon_s": 120, "replications": 2, "seed": 5},
          "verify": {"oracle": true}})");
  const std::string serial = RunGeneric(spec, 1);
  const std::string parallel = RunGeneric(spec, 4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("node.rate=0.5"), std::string::npos);
  EXPECT_NE(serial.find("node.rate=1.5"), std::string::npos);
  EXPECT_NE(serial.find("oracle"), std::string::npos);
}

TEST(SpecInterpreter, DefaultColumnsApplyWhenOutputIsOmitted) {
  const ScenarioSpec spec = ParseScenarioSpec(R"({"study": "generic"})");
  const std::vector<std::string> expect = {"generated",      "delivered",
                                           "dropped",        "delivery_ratio",
                                           "first_death_s",  "conserved"};
  EXPECT_EQ(spec.generic.columns, expect);
}

}  // namespace
}  // namespace wsn::scenario
