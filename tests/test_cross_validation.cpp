// Cross-solver property sweep: the exact DSPN solver, the Erlang
// stage-expansion solver, the method-of-stages CTMC and the closed-form
// supplementary-variable model are four independent code paths evaluating
// the same system.  Over a parameter grid they must agree with each other
// (to their documented tolerances) and with the analytical anchors.
#include <gtest/gtest.h>

#include <cmath>

#include "core/models.hpp"
#include "markov/supplementary.hpp"

namespace wsn::core {
namespace {

struct GridPoint {
  double lambda, mu, pdt, pud;
};

class SolverAgreement : public ::testing::TestWithParam<GridPoint> {};

double MaxShareDelta(const ModelEvaluation& a, const ModelEvaluation& b) {
  return std::max({std::abs(a.shares.standby - b.shares.standby),
                   std::abs(a.shares.powerup - b.shares.powerup),
                   std::abs(a.shares.idle - b.shares.idle),
                   std::abs(a.shares.active - b.shares.active)});
}

TEST_P(SolverAgreement, DspnExactVsStageExpansion) {
  const GridPoint& g = GetParam();
  CpuParams params;
  params.arrival_rate = g.lambda;
  params.service_rate = g.mu;
  params.power_down_threshold = g.pdt;
  params.power_up_delay = g.pud;

  const auto exact = DspnExactCpuModel().Evaluate(params);
  const auto stages = PetriSolverCpuModel(40).Evaluate(params);
  // Erlang-40 bias on these delay scales stays below a percentage point.
  EXPECT_LT(MaxShareDelta(exact, stages), 0.01);
}

TEST_P(SolverAgreement, StagesCtmcVsPetriStageSolver) {
  // Two structurally unrelated implementations of the same Erlang-k
  // approximation (hand-built chain vs net-derived chain): their results
  // must coincide to solver tolerance.
  const GridPoint& g = GetParam();
  CpuParams params;
  params.arrival_rate = g.lambda;
  params.service_rate = g.mu;
  params.power_down_threshold = g.pdt;
  params.power_up_delay = g.pud;

  const auto via_chain = StagesMarkovCpuModel(12).Evaluate(params);
  const auto via_net = PetriSolverCpuModel(12).Evaluate(params);
  EXPECT_LT(MaxShareDelta(via_chain, via_net), 1e-6);
}

TEST_P(SolverAgreement, SharesAreValidDistributions) {
  const GridPoint& g = GetParam();
  CpuParams params;
  params.arrival_rate = g.lambda;
  params.service_rate = g.mu;
  params.power_down_threshold = g.pdt;
  params.power_up_delay = g.pud;

  const DspnExactCpuModel dspn;
  const MarkovCpuModel markov;
  for (const CpuEnergyModel* model :
       {static_cast<const CpuEnergyModel*>(&dspn),
        static_cast<const CpuEnergyModel*>(&markov)}) {
    const auto eval = model->Evaluate(params);
    EXPECT_NO_THROW(eval.shares.Validate(1e-6)) << model->Name();
    EXPECT_GE(eval.mean_jobs, 0.0);
  }
}

TEST_P(SolverAgreement, ActiveShareIsWorkConserving) {
  // Every correct evaluator must put the active share at >= rho (all
  // arriving work is eventually served) and close to rho when the system
  // is stable and truncation loss is negligible.
  const GridPoint& g = GetParam();
  CpuParams params;
  params.arrival_rate = g.lambda;
  params.service_rate = g.mu;
  params.power_down_threshold = g.pdt;
  params.power_up_delay = g.pud;

  const auto exact = DspnExactCpuModel().Evaluate(params);
  const double rho = g.lambda / g.mu;
  EXPECT_GE(exact.shares.active, rho - 1e-6);
  EXPECT_NEAR(exact.shares.active, rho, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, SolverAgreement,
    ::testing::Values(GridPoint{1.0, 10.0, 0.1, 0.001},
                      GridPoint{1.0, 10.0, 0.5, 0.3},
                      GridPoint{1.0, 10.0, 1.0, 2.0},
                      GridPoint{0.5, 2.0, 0.3, 0.5},
                      GridPoint{2.0, 5.0, 0.2, 0.1},
                      GridPoint{0.2, 1.0, 1.5, 1.0}));

}  // namespace
}  // namespace wsn::core
