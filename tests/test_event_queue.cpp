// Pending-event set implementations: ordering, FIFO tie-breaks,
// cancellation, and cross-implementation equivalence on random workloads.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "des/event_queue.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wsn::des {
namespace {

using Factory = std::unique_ptr<EventQueue> (*)();

std::unique_ptr<EventQueue> Heap() { return MakeBinaryHeapQueue(); }
std::unique_ptr<EventQueue> List() { return MakeSortedListQueue(); }
std::unique_ptr<EventQueue> Calendar() { return MakeCalendarQueue(); }

class EventQueueContract : public ::testing::TestWithParam<Factory> {};

TEST_P(EventQueueContract, PopsInTimeOrder) {
  auto q = GetParam()();
  q->Push(3.0, 1);
  q->Push(1.0, 2);
  q->Push(2.0, 3);
  EXPECT_EQ(q->PopMin().id, 2u);
  EXPECT_EQ(q->PopMin().id, 3u);
  EXPECT_EQ(q->PopMin().id, 1u);
  EXPECT_TRUE(q->Empty());
}

TEST_P(EventQueueContract, FifoTieBreakByInsertionId) {
  auto q = GetParam()();
  q->Push(5.0, 10);
  q->Push(5.0, 11);
  q->Push(5.0, 12);
  EXPECT_EQ(q->PopMin().id, 10u);
  EXPECT_EQ(q->PopMin().id, 11u);
  EXPECT_EQ(q->PopMin().id, 12u);
}

TEST_P(EventQueueContract, PeekDoesNotRemove) {
  auto q = GetParam()();
  q->Push(1.0, 1);
  EXPECT_EQ(q->PeekMin().id, 1u);
  EXPECT_EQ(q->Size(), 1u);
  EXPECT_EQ(q->PopMin().id, 1u);
}

TEST_P(EventQueueContract, CancelRemovesEvent) {
  auto q = GetParam()();
  q->Push(1.0, 1);
  q->Push(2.0, 2);
  EXPECT_TRUE(q->Cancel(1));
  EXPECT_EQ(q->Size(), 1u);
  EXPECT_EQ(q->PopMin().id, 2u);
}

TEST_P(EventQueueContract, CancelUnknownReturnsFalse) {
  auto q = GetParam()();
  q->Push(1.0, 1);
  EXPECT_FALSE(q->Cancel(99));
  EXPECT_EQ(q->Size(), 1u);
}

TEST_P(EventQueueContract, CancelReservedNullIdReturnsFalse) {
  auto q = GetParam()();
  q->Push(1.0, 1);
  EXPECT_FALSE(q->Cancel(0));
  EXPECT_EQ(q->Size(), 1u);
  EXPECT_EQ(q->PopMin().id, 1u);
  EXPECT_FALSE(q->Cancel(0));  // nor after the slot's occupant is gone
}

TEST_P(EventQueueContract, DoubleCancelReturnsFalse) {
  auto q = GetParam()();
  q->Push(1.0, 1);
  EXPECT_TRUE(q->Cancel(1));
  EXPECT_FALSE(q->Cancel(1));
  EXPECT_TRUE(q->Empty());
}

TEST_P(EventQueueContract, PopOnEmptyThrows) {
  auto q = GetParam()();
  EXPECT_THROW(q->PopMin(), util::InvalidArgument);
  EXPECT_THROW(q->PeekMin(), util::InvalidArgument);
}

TEST_P(EventQueueContract, LargeRandomWorkloadStaysSorted) {
  auto q = GetParam()();
  util::Rng rng(31);
  EventId next_id = 1;
  for (int i = 0; i < 5000; ++i) {
    q->Push(util::UniformDouble(rng) * 1000.0, next_id++);
  }
  double last = -1.0;
  while (!q->Empty()) {
    const QueuedEvent e = q->PopMin();
    ASSERT_GE(e.time, last);
    last = e.time;
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, EventQueueContract,
                         ::testing::Values(&Heap, &List, &Calendar),
                         [](const auto& info) {
                           switch (info.index) {
                             case 0: return std::string("BinaryHeap");
                             case 1: return std::string("SortedList");
                             default: return std::string("Calendar");
                           }
                         });

TEST(EventQueueEquivalence, AllImplementationsAgreeOnMixedOps) {
  auto a = MakeBinaryHeapQueue();
  auto b = MakeSortedListQueue();
  auto c = MakeCalendarQueue();
  util::Rng rng(17);
  EventId next_id = 1;
  std::vector<EventId> live;

  for (int step = 0; step < 20000; ++step) {
    const double op = util::UniformDouble(rng);
    if (op < 0.55 || live.empty()) {
      const double t = util::UniformDouble(rng) * 100.0;
      const EventId id = next_id++;
      a->Push(t, id);
      b->Push(t, id);
      c->Push(t, id);
      live.push_back(id);
    } else if (op < 0.8) {
      if (a->Empty()) continue;
      const QueuedEvent ea = a->PopMin();
      const QueuedEvent eb = b->PopMin();
      const QueuedEvent ec = c->PopMin();
      ASSERT_EQ(ea.id, eb.id);
      ASSERT_EQ(ea.id, ec.id);
      ASSERT_DOUBLE_EQ(ea.time, eb.time);
      std::erase(live, ea.id);
    } else {
      const std::size_t pick = util::UniformBelow(rng, live.size());
      const EventId id = live[pick];
      ASSERT_EQ(a->Cancel(id), b->Cancel(id));
      ASSERT_TRUE(c->Cancel(id));
      std::erase(live, id);
    }
    ASSERT_EQ(a->Size(), b->Size());
    ASSERT_EQ(a->Size(), c->Size());
  }
}

TEST(CalendarQueueValidation, RejectsInvalidConstruction) {
  EXPECT_THROW(MakeCalendarQueue(0, 0.1), util::InvalidArgument);
  EXPECT_THROW(MakeCalendarQueue(64, 0.0), util::InvalidArgument);
  EXPECT_THROW(MakeCalendarQueue(64, -1.0), util::InvalidArgument);
  EXPECT_THROW(
      MakeCalendarQueue(64, std::numeric_limits<double>::infinity()),
      util::InvalidArgument);
  EXPECT_NO_THROW(MakeCalendarQueue(1, 0.5));
}

TEST(CalendarQueueValidation, ErrorsNameTheOffendingParameter) {
  try {
    MakeCalendarQueue(0, 0.1);
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("bucket"), std::string::npos);
  }
  try {
    MakeCalendarQueue(64, 0.0);
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("bucket_width"), std::string::npos);
  }
}

TEST(QueueFactory, MakeQueueByKind) {
  EXPECT_EQ(MakeQueue(QueueKind::kBinaryHeap)->Name(), "binary-heap");
  EXPECT_EQ(MakeQueue(QueueKind::kSortedList)->Name(), "sorted-list");
  EXPECT_EQ(MakeQueue(QueueKind::kCalendar)->Name(), "calendar");
}

}  // namespace
}  // namespace wsn::des
