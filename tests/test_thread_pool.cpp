// Thread pool: completion, result propagation, exception forwarding and
// parallel-for semantics under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace wsn::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ThreadCountAsRequested) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.ThreadCount(), 3u);
}

TEST(ThreadPool, DefaultUsesAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.ThreadCount(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(1000);
  ParallelFor(1000, [&](std::size_t i) { ++visits[i]; }, 8);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, WorksWithSingleItem) {
  int called = 0;
  ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++called;
  });
  EXPECT_EQ(called, 1);
}

TEST(ParallelFor, ZeroItemsIsNoop) {
  ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SumsMatchSequential) {
  std::vector<double> out(500);
  ParallelFor(500, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  }, 4);
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 499.0 * 500.0);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(100, [](std::size_t i) {
        if (i == 37) throw std::logic_error("fail at 37");
      }, 4),
      std::logic_error);
}

TEST(ParallelFor, ReusablePool) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  ParallelFor(pool, 50, [&](std::size_t) { ++counter; });
  ParallelFor(pool, 50, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace wsn::util
