// Thread pool: completion, result propagation, exception forwarding and
// parallel-for semantics under contention; ParallelExecutor: ordering,
// seeded streams and deterministic failure surfacing.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/executor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wsn::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ThreadCountAsRequested) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.ThreadCount(), 3u);
}

TEST(ThreadPool, DefaultUsesAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.ThreadCount(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(1000);
  ParallelFor(1000, [&](std::size_t i) { ++visits[i]; }, 8);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, WorksWithSingleItem) {
  int called = 0;
  ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++called;
  });
  EXPECT_EQ(called, 1);
}

TEST(ParallelFor, ZeroItemsIsNoop) {
  ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SumsMatchSequential) {
  std::vector<double> out(500);
  ParallelFor(500, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  }, 4);
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 499.0 * 500.0);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(100, [](std::size_t i) {
        if (i == 37) throw std::logic_error("fail at 37");
      }, 4),
      std::logic_error);
}

TEST(ParallelFor, ReusablePool) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  ParallelFor(pool, 50, [&](std::size_t) { ++counter; });
  ParallelFor(pool, 50, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitPropagatesExceptionsOfValueTasks) {
  // The exception travels through the returned future even when the task
  // has a non-void result type and other tasks succeed around it.
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return std::string("fine"); });
  auto bad = pool.Submit(
      []() -> std::string { throw std::invalid_argument("task failed"); });
  EXPECT_EQ(ok.get(), "fine");
  try {
    bad.get();
    FAIL() << "expected the future to rethrow";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
}

TEST(ParallelExecutor, MapKeepsIndexOrder) {
  ParallelExecutor executor(4);
  const std::vector<std::size_t> out =
      executor.Map(100, [](std::size_t i) { return i * 3; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 3);
}

TEST(ParallelExecutor, SerialWhenOneThread) {
  ParallelExecutor executor(1);
  EXPECT_TRUE(executor.Serial());
  EXPECT_EQ(executor.ThreadCount(), 1u);
  EXPECT_EQ(executor.Map(3, [](std::size_t i) { return i; }),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParallelExecutor, BorrowsAnExternalPool) {
  ThreadPool pool(3);
  ParallelExecutor executor(pool);
  EXPECT_EQ(executor.ThreadCount(), 3u);
  std::atomic<int> counter{0};
  executor.RunIndexed(20, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelExecutor, SeededStreamsMatchSerialAndParallel) {
  // The i-th job's randomness is a pure function of (seed, i): the draw
  // sequence must be identical whatever the thread count.
  const auto draw = [](ParallelExecutor& executor) {
    return executor.MapSeeded(
        16, 2008, [](std::size_t, Rng rng) { return rng(); });
  };
  ParallelExecutor serial(1);
  ParallelExecutor parallel(8);
  EXPECT_EQ(draw(serial), draw(parallel));
}

TEST(ParallelExecutor, SurfacesLowestIndexFailureDeterministically) {
  // Several jobs fail; no matter which thread hits its error first, the
  // rethrown exception is always the lowest failing index's.
  ParallelExecutor executor(8);
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      executor.RunIndexed(64, [](std::size_t i) {
        if (i == 7 || i == 23 || i == 55) {
          throw std::runtime_error("failed at " + std::to_string(i));
        }
      });
      FAIL() << "expected a failure to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failed at 7");
    }
  }
}

TEST(ParallelExecutor, RunsEveryJobDespiteFailures) {
  ParallelExecutor executor(4);
  std::atomic<int> started{0};
  EXPECT_THROW(executor.RunIndexed(32,
                                   [&](std::size_t i) {
                                     ++started;
                                     if (i % 2 == 0) {
                                       throw std::runtime_error("even");
                                     }
                                   }),
               std::runtime_error);
  EXPECT_EQ(started.load(), 32);
}

}  // namespace
}  // namespace wsn::util
