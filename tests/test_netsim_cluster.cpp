// Clustered / heterogeneous network simulation: node-class validation,
// multi-sink routing, LEACH head rotation and death-triggered
// re-election, aggregation bookkeeping, determinism across thread
// counts, and the policy ablation (rotation must beat static heads on
// first-node-death in the documented configuration).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "core/models.hpp"
#include "netsim/cluster.hpp"
#include "netsim/netsim.hpp"
#include "netsim/replication.hpp"
#include "netsim/routing.hpp"
#include "util/error.hpp"
#include "wsn/network.hpp"

namespace wsn::netsim {
namespace {

energy::PowerStateTable TinyCpuTable() {
  energy::PowerStateTable t;
  t.name = "tiny";
  t.standby_mw = 0.005;
  t.idle_mw = 0.01;
  t.powerup_mw = 0.02;
  t.active_mw = 0.02;
  return t;
}

/// Small grid with packet-dominated energy so protocol policy decides
/// lifetimes within a short horizon.
NetSimConfig GridConfig(std::size_t cols, std::size_t rows,
                        double battery_mah) {
  NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = 2.0;
  cfg.network.node.cpu.service_rate = 20.0;
  cfg.network.node.cpu_power = TinyCpuTable();
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = battery_mah;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 40.0;
  cfg.positions = node::MakeGrid(cols, rows, 15.0);
  return cfg;
}

NetSimConfig LeachConfig(std::size_t cols, std::size_t rows,
                         double battery_mah, double round_s) {
  NetSimConfig cfg = GridConfig(cols, rows, battery_mah);
  cfg.cluster.protocol = ClusterProtocolKind::kLeach;
  cfg.cluster.head_fraction = 0.2;
  cfg.cluster.round_s = round_s;
  cfg.cluster.aggregation = 4;
  return cfg;
}

TEST(NodeClassValidation, RejectsNegativeCapacityAndBadFields) {
  NodeClass cls;
  cls.name = "standard";
  cls.battery_mah = -1.0;
  EXPECT_THROW(cls.Validate(), util::InvalidArgument);
  cls.battery_mah = 100.0;
  cls.battery_volts = 0.0;
  EXPECT_THROW(cls.Validate(), util::InvalidArgument);
  cls.battery_volts = 3.0;
  cls.listen_duty_cycle = 1.5;
  EXPECT_THROW(cls.Validate(), util::InvalidArgument);
  cls.listen_duty_cycle = 0.01;
  cls.name.clear();
  EXPECT_THROW(cls.Validate(), util::InvalidArgument);
  cls.name = "standard";
  EXPECT_NO_THROW(cls.Validate());
}

TEST(NodeClassValidation, ConfigRejectsUnknownAndInconsistentClasses) {
  NetSimConfig cfg = GridConfig(2, 2, 0.1);
  NodeClass standard;
  standard.name = "standard";
  standard.battery_mah = 0.1;
  cfg.classes = {standard};

  cfg.node_class = {"standard", "advanced", "standard", "standard"};
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);  // unknown name

  cfg.node_class = {"standard", "standard"};
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);  // wrong arity

  cfg.node_class.assign(4, "standard");
  EXPECT_NO_THROW(cfg.Validate());

  NodeClass negative = standard;
  negative.name = "broken";
  negative.battery_mah = -5.0;
  cfg.classes.push_back(negative);
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);  // bad class

  cfg.classes = {standard, standard};  // duplicate name
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);

  NetSimConfig orphan = GridConfig(2, 2, 0.1);
  orphan.node_class.assign(4, "standard");  // names without classes
  EXPECT_THROW(orphan.Validate(), util::InvalidArgument);
}

TEST(NodeClassValidation, ClusterConfigKnobs) {
  NetSimConfig cfg = GridConfig(2, 2, 0.1);
  cfg.cluster.protocol = ClusterProtocolKind::kLeach;
  cfg.cluster.round_s = 0.0;  // clustering needs a round length
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);
  cfg.cluster.round_s = 10.0;
  cfg.cluster.aggregation = 0;
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);
  cfg.cluster.aggregation = 2;
  cfg.cluster.head_fraction = 1.5;
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);
  cfg.cluster.head_fraction = 0.25;
  EXPECT_NO_THROW(cfg.Validate());

  EXPECT_THROW(ParseClusterProtocolKind("votes"), util::InvalidArgument);
  EXPECT_EQ(ParseClusterProtocolKind("leach"), ClusterProtocolKind::kLeach);
}

TEST(PerNodeConfigsBridge, ClassOverridesAndBatteryPrecedence) {
  NetSimConfig cfg = GridConfig(2, 1, 0.1);
  NodeClass big;
  big.name = "big";
  big.battery_mah = 0.9;
  big.radio = cfg.network.node.radio;
  big.radio.listen_mw = 120.0;
  NodeClass small = big;
  small.name = "small";
  small.battery_mah = 0.2;
  cfg.classes = {big, small};
  cfg.node_class = {"big", "small"};

  std::vector<node::NodeConfig> per_node = PerNodeConfigs(cfg);
  ASSERT_EQ(per_node.size(), 2u);
  EXPECT_DOUBLE_EQ(per_node[0].battery_mah, 0.9);
  EXPECT_DOUBLE_EQ(per_node[1].battery_mah, 0.2);
  EXPECT_DOUBLE_EQ(per_node[0].radio.listen_mw, 120.0);

  // The explicit per-node override outranks the class battery.
  cfg.battery_mah_override = {0.5, 0.5};
  per_node = PerNodeConfigs(cfg);
  EXPECT_DOUBLE_EQ(per_node[0].battery_mah, 0.5);
  EXPECT_DOUBLE_EQ(per_node[1].battery_mah, 0.5);
}

TEST(MultiSinkRouting, NodesRouteTowardTheirNearestSink) {
  // Two nodes, each within direct range of a different sink; with only
  // the origin sink the far node would need a relay it does not have.
  const std::vector<node::Position> positions = {{30.0, 0.0}, {170.0, 0.0}};
  RoutingTable single({0.0, 0.0}, 40.0, positions);
  EXPECT_EQ(single.NextHop(0), RoutingTable::kSink);
  EXPECT_EQ(single.NextHop(1), RoutingTable::kNoRoute);

  RoutingTable dual({{0.0, 0.0}, {200.0, 0.0}}, 40.0, positions);
  EXPECT_EQ(dual.NextHop(0), RoutingTable::kSink);
  EXPECT_EQ(dual.NextHop(1), RoutingTable::kSink);
  EXPECT_DOUBLE_EQ(dual.DistanceToSink(1), 30.0);
  ASSERT_EQ(dual.Sinks().size(), 2u);
}

TEST(ClusteringProtocols, LeachElectsAndRotatesDeterministically) {
  const std::vector<node::Position> positions = node::MakeGrid(3, 3, 10.0);
  const std::vector<node::Position> sinks = {{0.0, 0.0}};
  const std::vector<bool> alive(positions.size(), true);
  const std::vector<double> energy(positions.size(), 1.0);
  ClusterView view{&positions, &sinks, &alive, &energy};

  LeachClustering a(0.3);
  LeachClustering b(0.3);
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  for (std::size_t round = 0; round < 6; ++round) {
    const ClusterAssignment ca = a.Elect(round, view, rng_a);
    const ClusterAssignment cb = b.Elect(round, view, rng_b);
    ASSERT_FALSE(ca.heads.empty()) << "round " << round;
    EXPECT_EQ(ca.heads, cb.heads) << "round " << round;
    EXPECT_EQ(ca.head_of, cb.head_of) << "round " << round;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      EXPECT_NE(ca.head_of[i], ClusterAssignment::kUnclustered);
    }
  }
}

TEST(ClusteringProtocols, StaticKeepsHeadsAndNeverReplacesDeadOnes) {
  const std::vector<node::Position> positions = node::MakeGrid(4, 1, 10.0);
  const std::vector<node::Position> sinks = {{0.0, 0.0}};
  std::vector<bool> alive(positions.size(), true);
  const std::vector<double> energy(positions.size(), 1.0);
  ClusterView view{&positions, &sinks, &alive, &energy};

  StaticClustering protocol(2);
  util::Rng rng(7);
  const ClusterAssignment first = protocol.Elect(0, view, rng);
  ASSERT_EQ(first.heads.size(), 2u);
  const ClusterAssignment later = protocol.Elect(5, view, rng);
  EXPECT_EQ(first.heads, later.heads);  // static: no rotation

  // Kill one head: repair keeps the survivor only.
  alive[first.heads[0]] = false;
  const ClusterAssignment repaired = protocol.Repair(later, 5, view, rng);
  ASSERT_EQ(repaired.heads.size(), 1u);
  EXPECT_EQ(repaired.heads[0], first.heads[1]);

  // Kill both: members stay unclustered — the static failure mode.
  alive[first.heads[1]] = false;
  const ClusterAssignment stranded = protocol.Repair(repaired, 6, view, rng);
  EXPECT_TRUE(stranded.heads.empty());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (alive[i]) {
      EXPECT_EQ(stranded.head_of[i], ClusterAssignment::kUnclustered);
    }
  }
}

TEST(ClusteredSim, HeadDeathTriggersReelectionAndDeliveryContinues) {
  // One never-ending round: every election beyond the initial one can
  // only come from a head-death repair.
  NetSimConfig cfg = LeachConfig(3, 2, 0.01, /*round_s=*/1.0e9);
  cfg.network.node.cpu.arrival_rate = 10.0;
  cfg.network.node.cpu.service_rate = 100.0;
  cfg.horizon_s = 400.0;

  const core::MarkovCpuModel model;
  NetworkSimulator sim(cfg, CpuAveragePowerMw(cfg, model), util::Rng(17));
  const NetSimReport report = sim.Run();

  ASSERT_TRUE(std::isfinite(report.first_death_s));
  EXPECT_EQ(report.rounds, 1u);
  EXPECT_GT(report.elections, report.rounds)
      << "a cluster-head death inside the round must trigger a repair "
         "election";
  std::set<std::size_t> heads;
  std::uint64_t delivered_by_late_sources = 0;
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    if (report.nodes[i].head_elections > 0) heads.insert(i);
    if (report.nodes[i].death_s > report.first_death_s) {
      delivered_by_late_sources += report.nodes[i].delivered;
    }
  }
  EXPECT_GE(heads.size(), 2u)
      << "the repair election must seat a different node as head";
  EXPECT_GT(delivered_by_late_sources, 0u)
      << "nodes surviving the first head must keep delivering";
}

TEST(ClusteredSim, AggregationFoldsMemberSamples) {
  NetSimConfig cfg = LeachConfig(3, 2, 1.0, /*round_s=*/50.0);
  cfg.horizon_s = 200.0;  // big battery: nobody dies, pure bookkeeping

  const core::MarkovCpuModel model;
  NetworkSimulator sim(cfg, CpuAveragePowerMw(cfg, model), util::Rng(23));
  const NetSimReport report = sim.Run();

  EXPECT_FALSE(std::isfinite(report.first_death_s));
  EXPECT_GT(report.packets.generated, 0u);
  EXPECT_GT(report.packets.delivered, 0u);
  // Delivered + dropped + still-buffered can never exceed generated.
  EXPECT_LE(report.packets.delivered + report.packets.TotalDropped(),
            report.packets.generated);
  // Heads really aggregated member samples.
  std::uint64_t aggregated = 0;
  for (const NodeSimStats& n : report.nodes) aggregated += n.aggregated;
  EXPECT_GT(aggregated, 0u);
  // Nearly everything should arrive on a healthy network.
  EXPECT_GT(report.DeliveryRatio(), 0.95);
  // Initial election plus one per boundary (the horizon instant counts).
  EXPECT_EQ(report.rounds, 5u);
}

TEST(ClusteredSim, ReplicationsIndependentOfThreadCount) {
  NetSimConfig cfg = LeachConfig(3, 3, 0.02, /*round_s=*/20.0);
  cfg.horizon_s = 150.0;

  const core::MarkovCpuModel model;
  ReplicationConfig serial;
  serial.replications = 4;
  serial.seed = 99;
  serial.threads = 1;
  serial.keep_reports = true;
  ReplicationConfig parallel = serial;
  parallel.threads = 4;

  const ReplicationSummary rs = RunReplications(cfg, model, serial);
  const ReplicationSummary rp = RunReplications(cfg, model, parallel);
  ASSERT_EQ(rs.reports.size(), rp.reports.size());
  for (std::size_t r = 0; r < rs.reports.size(); ++r) {
    EXPECT_EQ(rs.reports[r].packets.delivered, rp.reports[r].packets.delivered)
        << "replication " << r;
    EXPECT_EQ(rs.reports[r].events, rp.reports[r].events);
    EXPECT_EQ(rs.reports[r].elections, rp.reports[r].elections);
    EXPECT_DOUBLE_EQ(rs.reports[r].first_death_s, rp.reports[r].first_death_s);
  }
  EXPECT_DOUBLE_EQ(rs.first_death_s.ci.mean, rp.first_death_s.ci.mean);
}

// The cluster-ablation acceptance claim, pinned at test scale: with the
// documented configuration family (grid deployment, small batteries,
// frequent rounds) LEACH-style rotation outlives static heads on
// first-node-death.
TEST(ClusteredSim, LeachRotationBeatsStaticHeadsOnFirstDeath) {
  NetSimConfig leach = GridConfig(5, 5, 0.02);
  leach.cluster.protocol = ClusterProtocolKind::kLeach;
  leach.cluster.head_fraction = 0.1;
  leach.cluster.round_s = 15.0;
  leach.cluster.aggregation = 4;
  leach.horizon_s = 1000.0;

  NetSimConfig still = leach;
  still.cluster.protocol = ClusterProtocolKind::kStatic;

  const core::MarkovCpuModel model;
  ReplicationConfig rep;
  rep.replications = 6;
  rep.seed = 2008;
  rep.threads = 1;

  const ReplicationSummary leach_sum = RunReplications(leach, model, rep);
  const ReplicationSummary still_sum = RunReplications(still, model, rep);
  ASSERT_EQ(leach_sum.first_death_s.observed, rep.replications);
  ASSERT_EQ(still_sum.first_death_s.observed, rep.replications);
  EXPECT_GT(leach_sum.first_death_s.ci.mean,
            1.15 * still_sum.first_death_s.ci.mean)
      << "rotating the head role must spread the uplink cost";
}

// Heterogeneous counterpart of the analytic-convergence anchor: a chain
// whose bottleneck relay carries a triple battery must match the
// per-node analytic estimate.
TEST(HeterogeneousSim, FirstDeathMatchesPerNodeAnalyticEstimate) {
  NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = 15.0;
  cfg.network.node.cpu.service_rate = 150.0;
  cfg.network.node.cpu_power = TinyCpuTable();
  cfg.network.node.sample_bits = 2048;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = 0.3;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 60.0;
  cfg.positions = {{50.0, 0.0}, {100.0, 0.0}, {150.0, 0.0}};
  cfg.rerouting = false;
  cfg.stop_at_first_death = true;
  cfg.horizon_s = 20000.0;

  NodeClass standard;
  standard.name = "standard";
  standard.battery_mah = cfg.network.node.battery_mah;
  standard.radio = cfg.network.node.radio;
  NodeClass big = standard;
  big.name = "big";
  big.battery_mah = 3.0 * standard.battery_mah;
  cfg.classes = {standard, big};
  cfg.node_class = {"big", "standard", "standard"};  // big bottleneck relay

  const core::MarkovCpuModel model;
  const node::NetworkReport analytic =
      node::Network(cfg.network, cfg.positions)
          .Evaluate(model, PerNodeConfigs(cfg));

  ReplicationConfig rep;
  rep.replications = 32;
  rep.seed = 2008;
  const ReplicationSummary summary = RunReplications(cfg, model, rep);
  ASSERT_EQ(summary.first_death_s.observed, rep.replications);
  const util::ConfidenceInterval& ci = summary.first_death_s.ci;
  EXPECT_TRUE(ci.Contains(analytic.network_lifetime_seconds))
      << "simulated " << ci.mean << " +- " << ci.half_width
      << " s vs analytic " << analytic.network_lifetime_seconds << " s";
  // The tripled battery must actually move the bottleneck: the analytic
  // homogeneous lifetime has to be shorter.
  const node::NetworkReport homogeneous =
      node::Network(cfg.network, cfg.positions).Evaluate(model);
  EXPECT_GT(analytic.network_lifetime_seconds,
            1.5 * homogeneous.network_lifetime_seconds);
}

}  // namespace
}  // namespace wsn::netsim
