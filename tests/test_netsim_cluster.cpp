// Clustered / heterogeneous network simulation: node-class validation,
// multi-sink routing, LEACH head rotation and death-triggered
// re-election, aggregation bookkeeping, determinism across thread
// counts, and the policy ablation (rotation must beat static heads on
// first-node-death in the documented configuration).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "core/models.hpp"
#include "netsim/cluster.hpp"
#include "netsim/netsim.hpp"
#include "netsim/replication.hpp"
#include "netsim/routing.hpp"
#include "util/error.hpp"
#include "wsn/network.hpp"

namespace wsn::netsim {
namespace {

energy::PowerStateTable TinyCpuTable() {
  energy::PowerStateTable t;
  t.name = "tiny";
  t.standby_mw = 0.005;
  t.idle_mw = 0.01;
  t.powerup_mw = 0.02;
  t.active_mw = 0.02;
  return t;
}

/// Small grid with packet-dominated energy so protocol policy decides
/// lifetimes within a short horizon.
NetSimConfig GridConfig(std::size_t cols, std::size_t rows,
                        double battery_mah) {
  NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = 2.0;
  cfg.network.node.cpu.service_rate = 20.0;
  cfg.network.node.cpu_power = TinyCpuTable();
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = battery_mah;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 40.0;
  cfg.positions = node::MakeGrid(cols, rows, 15.0);
  return cfg;
}

/// Assignment-helper view over test-owned vectors (energies already
/// current, so no refresh hook; grid mode unless a test overrides).
ClusterView MakeView(const std::vector<node::Position>& positions,
                     const std::vector<node::Position>& sinks,
                     const std::vector<bool>& alive,
                     const std::vector<double>& energy) {
  ClusterView view;
  view.positions = &positions;
  view.sinks = &sinks;
  view.alive = &alive;
  view.energy_fraction = &energy;
  return view;
}

NetSimConfig LeachConfig(std::size_t cols, std::size_t rows,
                         double battery_mah, double round_s) {
  NetSimConfig cfg = GridConfig(cols, rows, battery_mah);
  cfg.cluster.protocol = ClusterProtocolKind::kLeach;
  cfg.cluster.head_fraction = 0.2;
  cfg.cluster.round_s = round_s;
  cfg.cluster.aggregation = 4;
  return cfg;
}

TEST(NodeClassValidation, RejectsNegativeCapacityAndBadFields) {
  NodeClass cls;
  cls.name = "standard";
  cls.battery_mah = -1.0;
  EXPECT_THROW(cls.Validate(), util::InvalidArgument);
  cls.battery_mah = 100.0;
  cls.battery_volts = 0.0;
  EXPECT_THROW(cls.Validate(), util::InvalidArgument);
  cls.battery_volts = 3.0;
  cls.listen_duty_cycle = 1.5;
  EXPECT_THROW(cls.Validate(), util::InvalidArgument);
  cls.listen_duty_cycle = 0.01;
  cls.name.clear();
  EXPECT_THROW(cls.Validate(), util::InvalidArgument);
  cls.name = "standard";
  EXPECT_NO_THROW(cls.Validate());
}

TEST(NodeClassValidation, ConfigRejectsUnknownAndInconsistentClasses) {
  NetSimConfig cfg = GridConfig(2, 2, 0.1);
  NodeClass standard;
  standard.name = "standard";
  standard.battery_mah = 0.1;
  cfg.classes = {standard};

  cfg.node_class = {"standard", "advanced", "standard", "standard"};
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);  // unknown name

  cfg.node_class = {"standard", "standard"};
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);  // wrong arity

  cfg.node_class.assign(4, "standard");
  EXPECT_NO_THROW(cfg.Validate());

  NodeClass negative = standard;
  negative.name = "broken";
  negative.battery_mah = -5.0;
  cfg.classes.push_back(negative);
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);  // bad class

  cfg.classes = {standard, standard};  // duplicate name
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);

  NetSimConfig orphan = GridConfig(2, 2, 0.1);
  orphan.node_class.assign(4, "standard");  // names without classes
  EXPECT_THROW(orphan.Validate(), util::InvalidArgument);
}

TEST(NodeClassValidation, ClusterConfigKnobs) {
  NetSimConfig cfg = GridConfig(2, 2, 0.1);
  cfg.cluster.protocol = ClusterProtocolKind::kLeach;
  cfg.cluster.round_s = 0.0;  // clustering needs a round length
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);
  cfg.cluster.round_s = 10.0;
  cfg.cluster.aggregation = 0;
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);
  cfg.cluster.aggregation = 2;
  cfg.cluster.head_fraction = 1.5;
  EXPECT_THROW(cfg.Validate(), util::InvalidArgument);
  cfg.cluster.head_fraction = 0.25;
  EXPECT_NO_THROW(cfg.Validate());

  EXPECT_THROW(ParseClusterProtocolKind("votes"), util::InvalidArgument);
  EXPECT_EQ(ParseClusterProtocolKind("leach"), ClusterProtocolKind::kLeach);
}

TEST(PerNodeConfigsBridge, ClassOverridesAndBatteryPrecedence) {
  NetSimConfig cfg = GridConfig(2, 1, 0.1);
  NodeClass big;
  big.name = "big";
  big.battery_mah = 0.9;
  big.radio = cfg.network.node.radio;
  big.radio.listen_mw = 120.0;
  NodeClass small = big;
  small.name = "small";
  small.battery_mah = 0.2;
  cfg.classes = {big, small};
  cfg.node_class = {"big", "small"};

  std::vector<node::NodeConfig> per_node = PerNodeConfigs(cfg);
  ASSERT_EQ(per_node.size(), 2u);
  EXPECT_DOUBLE_EQ(per_node[0].battery_mah, 0.9);
  EXPECT_DOUBLE_EQ(per_node[1].battery_mah, 0.2);
  EXPECT_DOUBLE_EQ(per_node[0].radio.listen_mw, 120.0);

  // The explicit per-node override outranks the class battery.
  cfg.battery_mah_override = {0.5, 0.5};
  per_node = PerNodeConfigs(cfg);
  EXPECT_DOUBLE_EQ(per_node[0].battery_mah, 0.5);
  EXPECT_DOUBLE_EQ(per_node[1].battery_mah, 0.5);
}

TEST(MultiSinkRouting, NodesRouteTowardTheirNearestSink) {
  // Two nodes, each within direct range of a different sink; with only
  // the origin sink the far node would need a relay it does not have.
  const std::vector<node::Position> positions = {{30.0, 0.0}, {170.0, 0.0}};
  RoutingTable single({0.0, 0.0}, 40.0, positions);
  EXPECT_EQ(single.NextHop(0), RoutingTable::kSink);
  EXPECT_EQ(single.NextHop(1), RoutingTable::kNoRoute);

  RoutingTable dual({{0.0, 0.0}, {200.0, 0.0}}, 40.0, positions);
  EXPECT_EQ(dual.NextHop(0), RoutingTable::kSink);
  EXPECT_EQ(dual.NextHop(1), RoutingTable::kSink);
  EXPECT_DOUBLE_EQ(dual.DistanceToSink(1), 30.0);
  ASSERT_EQ(dual.Sinks().size(), 2u);
}

TEST(ClusteringProtocols, LeachElectsAndRotatesDeterministically) {
  const std::vector<node::Position> positions = node::MakeGrid(3, 3, 10.0);
  const std::vector<node::Position> sinks = {{0.0, 0.0}};
  const std::vector<bool> alive(positions.size(), true);
  const std::vector<double> energy(positions.size(), 1.0);
  ClusterView view = MakeView(positions, sinks, alive, energy);

  LeachClustering a(0.3);
  LeachClustering b(0.3);
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  for (std::size_t round = 0; round < 6; ++round) {
    const ClusterAssignment ca = a.Elect(round, view, rng_a);
    const ClusterAssignment cb = b.Elect(round, view, rng_b);
    ASSERT_FALSE(ca.heads.empty()) << "round " << round;
    EXPECT_EQ(ca.heads, cb.heads) << "round " << round;
    EXPECT_EQ(ca.head_of, cb.head_of) << "round " << round;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      EXPECT_NE(ca.head_of[i], ClusterAssignment::kUnclustered);
    }
  }
}

TEST(ClusteringProtocols, StaticKeepsHeadsAndNeverReplacesDeadOnes) {
  const std::vector<node::Position> positions = node::MakeGrid(4, 1, 10.0);
  const std::vector<node::Position> sinks = {{0.0, 0.0}};
  std::vector<bool> alive(positions.size(), true);
  const std::vector<double> energy(positions.size(), 1.0);
  ClusterView view = MakeView(positions, sinks, alive, energy);

  StaticClustering protocol(2);
  util::Rng rng(7);
  const ClusterAssignment first = protocol.Elect(0, view, rng);
  ASSERT_EQ(first.heads.size(), 2u);
  const ClusterAssignment later = protocol.Elect(5, view, rng);
  EXPECT_EQ(first.heads, later.heads);  // static: no rotation

  // Kill one head: repair keeps the survivor only.
  alive[first.heads[0]] = false;
  const ClusterAssignment repaired = protocol.Repair(later, 5, view, rng);
  ASSERT_EQ(repaired.heads.size(), 1u);
  EXPECT_EQ(repaired.heads[0], first.heads[1]);

  // Kill both: members stay unclustered — the static failure mode.
  alive[first.heads[1]] = false;
  const ClusterAssignment stranded = protocol.Repair(repaired, 6, view, rng);
  EXPECT_TRUE(stranded.heads.empty());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (alive[i]) {
      EXPECT_EQ(stranded.head_of[i], ClusterAssignment::kUnclustered);
    }
  }
}

// ---------------------------------------------------------------------
// Grid-accelerated head assignment (ISSUE 7): the ring-search path must
// match the all-pairs oracle member for member, including tie-breaks.

void ExpectAssignmentsEqual(const ClusterAssignment& grid,
                            const ClusterAssignment& oracle,
                            const char* what) {
  EXPECT_EQ(grid.heads, oracle.heads) << what;
  ASSERT_EQ(grid.head_of.size(), oracle.head_of.size()) << what;
  for (std::size_t i = 0; i < grid.head_of.size(); ++i) {
    EXPECT_EQ(grid.head_of[i], oracle.head_of[i]) << what << ": node " << i;
  }
}

/// The in-place repair contract: heads and every *alive* row match the
/// full-reassign oracle; dead members' rows may keep their (never read)
/// last assignment.
void ExpectAssignmentsEquivalent(const ClusterAssignment& inplace,
                                 const ClusterAssignment& oracle,
                                 const std::vector<bool>& alive,
                                 const char* what) {
  EXPECT_EQ(inplace.heads, oracle.heads) << what;
  ASSERT_EQ(inplace.head_of.size(), oracle.head_of.size()) << what;
  for (std::size_t i = 0; i < inplace.head_of.size(); ++i) {
    if (!alive[i]) continue;
    EXPECT_EQ(inplace.head_of[i], oracle.head_of[i]) << what << ": node " << i;
  }
}

TEST(HeadAssignment, ModeNamesRoundTrip) {
  EXPECT_STREQ(HeadAssignModeName(HeadAssignMode::kGrid), "grid");
  EXPECT_STREQ(HeadAssignModeName(HeadAssignMode::kAllPairs), "all-pairs");
  EXPECT_EQ(ParseHeadAssignMode("grid"), HeadAssignMode::kGrid);
  EXPECT_EQ(ParseHeadAssignMode("all-pairs"), HeadAssignMode::kAllPairs);
  EXPECT_THROW(ParseHeadAssignMode("fast"), util::InvalidArgument);
}

TEST(HeadAssignment, GridMatchesAllPairsOverRandomKillAndElectionSequences) {
  // Random deployments, random head sets of every size (1 head through
  // ~a third of the nodes, well past the small-k all-pairs dispatch
  // cutoff), random interleaved member/head kills.  After every kill the
  // two strategies must agree exactly — argmin and lowest-head-index
  // tie-break both.
  util::Rng rng(20080101);
  for (int seq = 0; seq < 60; ++seq) {
    const std::size_t n = 6 + (rng() % 120);
    const double extent = 50.0 + util::UniformDouble(rng) * 400.0;
    std::vector<node::Position> positions;
    for (std::size_t i = 0; i < n; ++i) {
      // Snap half the sequences to a coarse lattice so exact distance
      // ties (equidistant heads) actually occur.
      double x = util::UniformDouble(rng) * extent;
      double y = util::UniformDouble(rng) * extent;
      if (seq % 2 == 0) {
        x = std::floor(x / 20.0) * 20.0;
        y = std::floor(y / 20.0) * 20.0;
      }
      positions.push_back({x, y});
    }
    const std::vector<node::Position> sinks = {{0.0, 0.0}};
    std::vector<bool> alive(n, true);
    std::vector<double> energy(n, 1.0);
    ClusterView view = MakeView(positions, sinks, alive, energy);

    for (int round = 0; round < 6; ++round) {
      // Fresh random head set over the survivors each "election".
      std::vector<std::size_t> heads;
      const std::size_t want = 1 + (rng() % (1 + n / 3));
      for (std::size_t i = 0; i < n && heads.size() < want; ++i) {
        if (alive[i] && (rng() % 3) == 0) heads.push_back(i);
      }
      if (heads.empty()) {
        for (std::size_t i = 0; i < n; ++i) {
          if (alive[i]) {
            heads.push_back(i);
            break;
          }
        }
      }
      if (heads.empty()) break;  // everyone dead
      ExpectAssignmentsEqual(AssignToNearestHeadGrid(view, heads),
                             AssignToNearestHeadAllPairs(view, heads),
                             "direct grid vs all-pairs");
      // The dispatcher must agree with the oracle in both modes.
      view.assign_mode = HeadAssignMode::kGrid;
      const ClusterAssignment via_grid = AssignToNearestHead(view, heads);
      view.assign_mode = HeadAssignMode::kAllPairs;
      const ClusterAssignment via_oracle = AssignToNearestHead(view, heads);
      ExpectAssignmentsEqual(via_grid, via_oracle, "dispatcher");
      view.assign_mode = HeadAssignMode::kGrid;
      // Kill a couple of random survivors before the next election.
      for (int k = 0; k < 2; ++k) {
        const std::size_t victim = rng() % n;
        alive[victim] = false;
      }
    }
  }
}

TEST(HeadAssignment, IncrementalRepairMatchesFullReassignAcrossChainedDeaths) {
  // The simulator repairs only on *head* deaths, so member deaths leave
  // stale entries in the current assignment (and its member lists) until
  // the next repair — and each repair's output feeds the next (induction
  // through the chain).  Run two protocol instances in lockstep: the
  // grid instance repairs in place (RepairInPlace, cached head grid),
  // the all-pairs instance does the faithful full re-assignment.  They
  // must agree exactly after every election and every repair.
  util::Rng rng(7072008);
  for (int seq = 0; seq < 40; ++seq) {
    const std::size_t n = 8 + (rng() % 100);
    const double extent = 60.0 + util::UniformDouble(rng) * 300.0;
    std::vector<node::Position> positions;
    for (std::size_t i = 0; i < n; ++i) {
      double x = util::UniformDouble(rng) * extent;
      double y = util::UniformDouble(rng) * extent;
      if (seq % 2 == 0) {  // lattice-snap half the sequences: exact ties
        x = std::floor(x / 20.0) * 20.0;
        y = std::floor(y / 20.0) * 20.0;
      }
      positions.push_back({x, y});
    }
    const std::vector<node::Position> sinks = {{0.0, 0.0}};
    std::vector<bool> alive(n, true);
    std::vector<double> energy(n, 1.0);
    ClusterView grid_view = MakeView(positions, sinks, alive, energy);
    grid_view.assign_mode = HeadAssignMode::kGrid;
    ClusterView oracle_view = grid_view;
    oracle_view.assign_mode = HeadAssignMode::kAllPairs;

    LeachClustering grid_proto(0.25);
    LeachClustering oracle_proto(0.25);
    util::Rng grid_rng(900 + seq);
    util::Rng oracle_rng(900 + seq);
    ClusterAssignment cur_g = grid_proto.Elect(0, grid_view, grid_rng);
    ClusterAssignment cur_o = oracle_proto.Elect(0, oracle_view, oracle_rng);
    ExpectAssignmentsEqual(cur_g, cur_o, "initial election");

    for (int step = 0; step < 30; ++step) {
      // Every third kill targets a head (all listed heads are alive:
      // head deaths repair immediately, member deaths never demote);
      // the rest hit random members and stay unrepaired.
      std::size_t victim = ClusterAssignment::kUnclustered;
      if (step % 3 == 0 && !cur_g.heads.empty()) {
        victim = cur_g.heads[rng() % cur_g.heads.size()];
      } else {
        for (std::size_t attempt = 0; attempt < 4 * n; ++attempt) {
          const std::size_t c = rng() % n;
          if (alive[c]) {
            victim = c;
            break;
          }
        }
      }
      if (victim == ClusterAssignment::kUnclustered) break;
      alive[victim] = false;
      if (cur_g.IsHead(victim)) {
        std::vector<std::uint32_t> reattached;
        if (cur_g.heads.size() > 1) {
          // A survivor exists: the in-place path must take it, and every
          // re-attached node must really be an alive ex-member of the
          // dead head.
          ASSERT_TRUE(grid_proto.RepairInPlace(cur_g, victim, grid_view,
                                               reattached));
          EXPECT_EQ(cur_g.head_of[victim], ClusterAssignment::kUnclustered);
          for (std::uint32_t m : reattached) {
            EXPECT_TRUE(alive[m]);
            EXPECT_NE(cur_g.head_of[m], ClusterAssignment::kUnclustered);
          }
        } else {
          // Last head standing: RepairInPlace declines so the protocol's
          // no-survivor policy (a fresh Elect) can run via Repair.
          EXPECT_FALSE(grid_proto.RepairInPlace(cur_g, victim, grid_view,
                                                reattached));
          EXPECT_TRUE(reattached.empty());
          cur_g = grid_proto.Repair(cur_g, 1, grid_view, grid_rng);
        }
        cur_o = oracle_proto.Repair(cur_o, 1, oracle_view, oracle_rng);
        ExpectAssignmentsEquivalent(cur_g, cur_o, alive, "chained repair");
      }
    }
  }
}

TEST(HeadAssignment, HeadsOnCellBoundariesAndCoincidentHeads) {
  // 25 heads on an exact lattice: the compacted-extent cell size puts
  // every head precisely on a cell boundary.  Members sit on boundaries
  // and midpoints; two heads coincide so the lowest-index tie-break is
  // exercised at zero distance too.
  std::vector<node::Position> positions;
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      positions.push_back({x * 25.0, y * 25.0});
    }
  }
  std::vector<std::size_t> heads;
  for (std::size_t i = 0; i < 25; ++i) heads.push_back(i);
  // Members between the heads, some equidistant to 2 or 4 heads.
  positions.push_back({12.5, 12.5});
  positions.push_back({12.5, 0.0});
  positions.push_back({50.0, 37.5});
  positions.push_back({100.0, 100.0});  // coincides with head 24
  positions.push_back({-40.0, 130.0});  // outside the heads' bounding box
  const std::vector<node::Position> sinks = {{0.0, 0.0}};
  const std::vector<bool> alive(positions.size(), true);
  const std::vector<double> energy(positions.size(), 1.0);
  const ClusterView view = MakeView(positions, sinks, alive, energy);
  ExpectAssignmentsEqual(AssignToNearestHeadGrid(view, heads),
                         AssignToNearestHeadAllPairs(view, heads),
                         "lattice boundary");

  // Coincident heads: both see identical distances everywhere; every
  // tie must resolve to the lower head index in both strategies.
  std::vector<node::Position> twin_pos = positions;
  twin_pos[7] = twin_pos[6];  // head 7 sits exactly on head 6
  const ClusterView twin_view = MakeView(twin_pos, sinks, alive, energy);
  const ClusterAssignment tg = AssignToNearestHeadGrid(twin_view, heads);
  const ClusterAssignment ta = AssignToNearestHeadAllPairs(twin_view, heads);
  ExpectAssignmentsEqual(tg, ta, "coincident heads");
}

TEST(HeadAssignment, EmptyHeadsAndAllHeadsDeadFallback) {
  // No heads at all: every alive node stays kUnclustered in both modes.
  const std::vector<node::Position> positions = node::MakeGrid(4, 3, 10.0);
  const std::vector<node::Position> sinks = {{0.0, 0.0}};
  std::vector<bool> alive(positions.size(), true);
  std::vector<double> energy(positions.size(), 1.0);
  ClusterView view = MakeView(positions, sinks, alive, energy);
  const ClusterAssignment none = AssignToNearestHead(view, {});
  EXPECT_TRUE(none.heads.empty());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(none.head_of[i], ClusterAssignment::kUnclustered);
  }

  // All current heads dead: the default Repair falls back to a fresh
  // election for the round, and the survivors end up clustered again
  // under the grid assignment path.
  LeachClustering protocol(0.3);
  util::Rng rng(11);
  const ClusterAssignment first = protocol.Elect(0, view, rng);
  ASSERT_FALSE(first.heads.empty());
  for (const std::size_t h : first.heads) {
    alive[h] = false;
    energy[h] = 0.0;
  }
  const ClusterAssignment repaired = protocol.Repair(first, 0, view, rng);
  ASSERT_FALSE(repaired.heads.empty());
  for (const std::size_t h : repaired.heads) {
    EXPECT_TRUE(alive[h]) << "re-elected head " << h << " must be alive";
  }
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (alive[i]) {
      EXPECT_NE(repaired.head_of[i], ClusterAssignment::kUnclustered) << i;
    }
  }
}

TEST(ClusteredSim, HeadDeathTriggersReelectionAndDeliveryContinues) {
  // One never-ending round: every election beyond the initial one can
  // only come from a head-death repair.
  NetSimConfig cfg = LeachConfig(3, 2, 0.01, /*round_s=*/1.0e9);
  cfg.network.node.cpu.arrival_rate = 10.0;
  cfg.network.node.cpu.service_rate = 100.0;
  cfg.horizon_s = 400.0;

  const core::MarkovCpuModel model;
  NetworkSimulator sim(cfg, CpuAveragePowerMw(cfg, model), util::Rng(17));
  const NetSimReport report = sim.Run();

  ASSERT_TRUE(std::isfinite(report.first_death_s));
  EXPECT_EQ(report.rounds, 1u);
  EXPECT_GT(report.elections, report.rounds)
      << "a cluster-head death inside the round must trigger a repair "
         "election";
  std::set<std::size_t> heads;
  std::uint64_t delivered_by_late_sources = 0;
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    if (report.nodes[i].head_elections > 0) heads.insert(i);
    if (report.nodes[i].death_s > report.first_death_s) {
      delivered_by_late_sources += report.nodes[i].delivered;
    }
  }
  EXPECT_GE(heads.size(), 2u)
      << "the repair election must seat a different node as head";
  EXPECT_GT(delivered_by_late_sources, 0u)
      << "nodes surviving the first head must keep delivering";
}

TEST(ClusteredSim, AggregationFoldsMemberSamples) {
  NetSimConfig cfg = LeachConfig(3, 2, 1.0, /*round_s=*/50.0);
  cfg.horizon_s = 200.0;  // big battery: nobody dies, pure bookkeeping

  const core::MarkovCpuModel model;
  NetworkSimulator sim(cfg, CpuAveragePowerMw(cfg, model), util::Rng(23));
  const NetSimReport report = sim.Run();

  EXPECT_FALSE(std::isfinite(report.first_death_s));
  EXPECT_GT(report.packets.generated, 0u);
  EXPECT_GT(report.packets.delivered, 0u);
  // Delivered + dropped + still-buffered can never exceed generated.
  EXPECT_LE(report.packets.delivered + report.packets.TotalDropped(),
            report.packets.generated);
  // Heads really aggregated member samples.
  std::uint64_t aggregated = 0;
  for (const NodeSimStats& n : report.nodes) aggregated += n.aggregated;
  EXPECT_GT(aggregated, 0u);
  // Nearly everything should arrive on a healthy network.
  EXPECT_GT(report.DeliveryRatio(), 0.95);
  // Initial election plus one per boundary (the horizon instant counts).
  EXPECT_EQ(report.rounds, 5u);
}

TEST(ClusteredSim, ReplicationsIndependentOfThreadCount) {
  NetSimConfig cfg = LeachConfig(3, 3, 0.02, /*round_s=*/20.0);
  cfg.horizon_s = 150.0;

  const core::MarkovCpuModel model;
  ReplicationConfig serial;
  serial.replications = 4;
  serial.seed = 99;
  serial.threads = 1;
  serial.keep_reports = true;
  ReplicationConfig parallel = serial;
  parallel.threads = 4;

  const ReplicationSummary rs = RunReplications(cfg, model, serial);
  const ReplicationSummary rp = RunReplications(cfg, model, parallel);
  ASSERT_EQ(rs.reports.size(), rp.reports.size());
  for (std::size_t r = 0; r < rs.reports.size(); ++r) {
    EXPECT_EQ(rs.reports[r].packets.delivered, rp.reports[r].packets.delivered)
        << "replication " << r;
    EXPECT_EQ(rs.reports[r].events, rp.reports[r].events);
    EXPECT_EQ(rs.reports[r].elections, rp.reports[r].elections);
    EXPECT_DOUBLE_EQ(rs.reports[r].first_death_s, rp.reports[r].first_death_s);
  }
  EXPECT_DOUBLE_EQ(rs.first_death_s.ci.mean, rp.first_death_s.ci.mean);
}

// The cluster-ablation acceptance claim, pinned at test scale: with the
// documented configuration family (grid deployment, small batteries,
// frequent rounds) LEACH-style rotation outlives static heads on
// first-node-death.
TEST(ClusteredSim, LeachRotationBeatsStaticHeadsOnFirstDeath) {
  NetSimConfig leach = GridConfig(5, 5, 0.02);
  leach.cluster.protocol = ClusterProtocolKind::kLeach;
  leach.cluster.head_fraction = 0.1;
  leach.cluster.round_s = 15.0;
  leach.cluster.aggregation = 4;
  leach.horizon_s = 1000.0;

  NetSimConfig still = leach;
  still.cluster.protocol = ClusterProtocolKind::kStatic;

  const core::MarkovCpuModel model;
  ReplicationConfig rep;
  rep.replications = 6;
  rep.seed = 2008;
  rep.threads = 1;

  const ReplicationSummary leach_sum = RunReplications(leach, model, rep);
  const ReplicationSummary still_sum = RunReplications(still, model, rep);
  ASSERT_EQ(leach_sum.first_death_s.observed, rep.replications);
  ASSERT_EQ(still_sum.first_death_s.observed, rep.replications);
  EXPECT_GT(leach_sum.first_death_s.ci.mean,
            1.15 * still_sum.first_death_s.ci.mean)
      << "rotating the head role must spread the uplink cost";
}

// Heterogeneous counterpart of the analytic-convergence anchor: a chain
// whose bottleneck relay carries a triple battery must match the
// per-node analytic estimate.
TEST(HeterogeneousSim, FirstDeathMatchesPerNodeAnalyticEstimate) {
  NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = 15.0;
  cfg.network.node.cpu.service_rate = 150.0;
  cfg.network.node.cpu_power = TinyCpuTable();
  cfg.network.node.sample_bits = 2048;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = 0.3;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 60.0;
  cfg.positions = {{50.0, 0.0}, {100.0, 0.0}, {150.0, 0.0}};
  cfg.rerouting = false;
  cfg.stop_at_first_death = true;
  cfg.horizon_s = 20000.0;

  NodeClass standard;
  standard.name = "standard";
  standard.battery_mah = cfg.network.node.battery_mah;
  standard.radio = cfg.network.node.radio;
  NodeClass big = standard;
  big.name = "big";
  big.battery_mah = 3.0 * standard.battery_mah;
  cfg.classes = {standard, big};
  cfg.node_class = {"big", "standard", "standard"};  // big bottleneck relay

  const core::MarkovCpuModel model;
  const node::NetworkReport analytic =
      node::Network(cfg.network, cfg.positions)
          .Evaluate(model, PerNodeConfigs(cfg));

  ReplicationConfig rep;
  rep.replications = 32;
  rep.seed = 2008;
  const ReplicationSummary summary = RunReplications(cfg, model, rep);
  ASSERT_EQ(summary.first_death_s.observed, rep.replications);
  const util::ConfidenceInterval& ci = summary.first_death_s.ci;
  EXPECT_TRUE(ci.Contains(analytic.network_lifetime_seconds))
      << "simulated " << ci.mean << " +- " << ci.half_width
      << " s vs analytic " << analytic.network_lifetime_seconds << " s";
  // The tripled battery must actually move the bottleneck: the analytic
  // homogeneous lifetime has to be shorter.
  const node::NetworkReport homogeneous =
      node::Network(cfg.network, cfg.positions).Evaluate(model);
  EXPECT_GT(analytic.network_lifetime_seconds,
            1.5 * homogeneous.network_lifetime_seconds);
}

}  // namespace
}  // namespace wsn::netsim
