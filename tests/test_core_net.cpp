// The Fig. 3 CPU net: structure per paper Table 1, token-flow walkthrough
// of the paper's steps 1-9, P-invariants, and reachability sanity.
#include <gtest/gtest.h>

#include "core/cpu_petri_net.hpp"
#include "petri/enabling.hpp"
#include "petri/invariants.hpp"
#include "petri/reachability.hpp"

namespace wsn::core {
namespace {

using petri::Marking;

CpuParams Defaults() {
  CpuParams p;
  p.arrival_rate = 1.0;
  p.service_rate = 10.0;
  p.power_down_threshold = 0.1;
  p.power_up_delay = 0.001;
  return p;
}

TEST(CpuNet, StructureMatchesTable1) {
  CpuNetLayout l;
  const petri::PetriNet net = BuildCpuPetriNet(Defaults(), &l);
  EXPECT_EQ(net.PlaceCount(), 9u);
  EXPECT_EQ(net.TransitionCount(), 8u);

  EXPECT_TRUE(net.GetTransition(l.ar).delay->IsMemoryless());
  EXPECT_TRUE(net.GetTransition(l.sr).delay->IsMemoryless());
  EXPECT_TRUE(net.GetTransition(l.put).delay->IsDeterministic());
  EXPECT_TRUE(net.GetTransition(l.pdt).delay->IsDeterministic());

  EXPECT_EQ(net.GetTransition(l.t1).priority, 4);
  EXPECT_EQ(net.GetTransition(l.t6).priority, 3);
  EXPECT_EQ(net.GetTransition(l.t5).priority, 2);
  EXPECT_EQ(net.GetTransition(l.t2).priority, 1);

  const Marking m0 = net.InitialMarking();
  EXPECT_EQ(m0[l.p0], 1u);
  EXPECT_EQ(m0[l.standby], 1u);
  EXPECT_EQ(m0[l.idle], 1u);
  EXPECT_EQ(m0[l.cpu_on], 0u);
}

TEST(CpuNet, PaperStepWalkthrough) {
  CpuNetLayout l;
  const petri::PetriNet net = BuildCpuPetriNet(Defaults(), &l);
  Marking m = net.InitialMarking();

  // Step 1: AR fires (job generated).
  ASSERT_TRUE(petri::IsEnabled(net, l.ar, m));
  petri::FireInPlace(net, l.ar, m);
  EXPECT_EQ(m[l.p1], 1u);

  // Step 2: T1 is the only enabled immediate and fans out three tokens.
  auto conflict = petri::EnabledImmediateConflictSet(net, m);
  ASSERT_EQ(conflict.size(), 1u);
  EXPECT_EQ(conflict[0], l.t1);
  petri::FireInPlace(net, l.t1, m);
  EXPECT_EQ(m[l.p0], 1u);
  EXPECT_EQ(m[l.p6], 1u);
  EXPECT_EQ(m[l.cpu_buffer], 1u);

  // Step 3: T6 moves StandBy -> PowerUp keeping P6.
  conflict = petri::EnabledImmediateConflictSet(net, m);
  ASSERT_EQ(conflict.size(), 1u);
  EXPECT_EQ(conflict[0], l.t6);
  petri::FireInPlace(net, l.t6, m);
  EXPECT_EQ(m[l.powerup], 1u);
  EXPECT_EQ(m[l.p6], 1u);
  EXPECT_EQ(m[l.standby], 0u);

  // Step 4: only the deterministic PUT is enabled now (tangible marking).
  EXPECT_TRUE(petri::IsTangible(net, m));
  ASSERT_TRUE(petri::IsEnabled(net, l.put, m));
  EXPECT_FALSE(petri::IsEnabled(net, l.pdt, m));
  petri::FireInPlace(net, l.put, m);
  EXPECT_EQ(m[l.cpu_on], 1u);
  EXPECT_EQ(m[l.p6], 0u);

  // Step 5: T2 admits the buffered job.
  conflict = petri::EnabledImmediateConflictSet(net, m);
  ASSERT_EQ(conflict.size(), 1u);
  EXPECT_EQ(conflict[0], l.t2);
  petri::FireInPlace(net, l.t2, m);
  EXPECT_EQ(m[l.active], 1u);
  EXPECT_EQ(m[l.cpu_on], 1u);
  EXPECT_EQ(m[l.idle], 0u);

  // PDT inhibited while Active has a token (step 9's inverse logic).
  EXPECT_FALSE(petri::IsEnabled(net, l.pdt, m));

  // Step 6: service completes.
  ASSERT_TRUE(petri::IsEnabled(net, l.sr, m));
  petri::FireInPlace(net, l.sr, m);
  EXPECT_EQ(m[l.idle], 1u);
  EXPECT_EQ(m[l.active], 0u);

  // Step 9: now PDT is enabled and fires back to StandBy.
  EXPECT_TRUE(petri::IsTangible(net, m));
  ASSERT_TRUE(petri::IsEnabled(net, l.pdt, m));
  petri::FireInPlace(net, l.pdt, m);
  EXPECT_EQ(m[l.standby], 1u);
  EXPECT_EQ(m[l.cpu_on], 0u);
}

TEST(CpuNet, Step7ArrivalWhileOnDrainsP6ViaT5) {
  CpuNetLayout l;
  const petri::PetriNet net = BuildCpuPetriNet(Defaults(), &l);
  // Construct the "CPU on and idle" marking directly.
  Marking m(net.PlaceCount(), 0);
  m[l.p0] = 1;
  m[l.cpu_on] = 1;
  m[l.idle] = 1;

  petri::FireInPlace(net, l.ar, m);
  petri::FireInPlace(net, l.t1, m);
  // T5 has priority 2 > T2's 1, so it drains P6 first.
  auto conflict = petri::EnabledImmediateConflictSet(net, m);
  ASSERT_EQ(conflict.size(), 1u);
  EXPECT_EQ(conflict[0], l.t5);
  petri::FireInPlace(net, l.t5, m);
  EXPECT_EQ(m[l.p6], 0u);
  EXPECT_EQ(m[l.cpu_on], 1u);
  // Then T2 admits the job.
  conflict = petri::EnabledImmediateConflictSet(net, m);
  ASSERT_EQ(conflict.size(), 1u);
  EXPECT_EQ(conflict[0], l.t2);
}

TEST(CpuNet, PlaceInvariantsCoverControlStructure) {
  CpuNetLayout l;
  const petri::PetriNet net = BuildCpuPetriNet(Defaults(), &l);
  const auto invs = petri::PlaceInvariants(net);

  // The CPU mode token: StandBy + PowerUp + CPU_ON = 1.
  bool mode_invariant = false;
  // The service token: Idle + Active = 1.
  bool service_invariant = false;
  for (const auto& inv : invs) {
    if (inv[l.standby] > 0 && inv[l.powerup] > 0 && inv[l.cpu_on] > 0 &&
        inv[l.idle] == 0 && inv[l.active] == 0 && inv[l.cpu_buffer] == 0) {
      mode_invariant = true;
    }
    if (inv[l.idle] > 0 && inv[l.active] > 0 && inv[l.standby] == 0 &&
        inv[l.cpu_buffer] == 0) {
      service_invariant = true;
    }
  }
  EXPECT_TRUE(mode_invariant);
  EXPECT_TRUE(service_invariant);
}

TEST(CpuNet, ModeInvariantHoldsAlongRandomWalks) {
  // The open workload makes the full reachability set unbounded, so the
  // invariant property is checked along long random firing walks instead.
  CpuNetLayout l;
  const petri::PetriNet net = BuildCpuPetriNet(Defaults(), &l);
  util::Rng rng(404);
  Marking m = net.InitialMarking();
  for (int step = 0; step < 20000; ++step) {
    // Respect priority semantics: immediates (highest priority) first.
    auto candidates = petri::EnabledImmediateConflictSet(net, m);
    if (candidates.empty()) {
      candidates = petri::EnabledTimedTransitions(net, m);
    }
    ASSERT_FALSE(candidates.empty()) << "CPU net must never deadlock";
    const auto pick = candidates[util::UniformBelow(rng, candidates.size())];
    petri::FireInPlace(net, pick, m);

    ASSERT_EQ(m[l.standby] + m[l.powerup] + m[l.cpu_on], 1u) << "step " << step;
    ASSERT_EQ(m[l.idle] + m[l.active], 1u) << "step " << step;
    ASSERT_LE(m[l.active], m[l.cpu_on]);  // Active implies CPU_ON
    ASSERT_LE(m[l.p0] + m[l.p1], 2u);     // workload cycle stays bounded
  }
}

TEST(CpuNet, ZeroDelaysBecomeImmediate) {
  CpuParams p = Defaults();
  p.power_down_threshold = 0.0;
  p.power_up_delay = 0.0;
  CpuNetLayout l;
  const petri::PetriNet net = BuildCpuPetriNet(p, &l);
  EXPECT_TRUE(net.GetTransition(l.put).IsImmediate());
  EXPECT_TRUE(net.GetTransition(l.pdt).IsImmediate());
  EXPECT_LT(net.GetTransition(l.put).priority,
            net.GetTransition(l.t2).priority);
}

TEST(CpuNet, RejectsBadParams) {
  CpuParams p = Defaults();
  p.arrival_rate = 0.0;
  EXPECT_THROW(BuildCpuPetriNet(p), util::InvalidArgument);
  CpuParams q = Defaults();
  q.power_up_delay = -1.0;
  EXPECT_THROW(BuildCpuPetriNet(q), util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::core
