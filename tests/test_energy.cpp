// Energy module: Eq. 25 arithmetic, preset tables, batteries and the
// radio model.
#include <gtest/gtest.h>

#include "energy/battery.hpp"
#include "energy/energy_model.hpp"
#include "energy/power_state.hpp"
#include "energy/radio.hpp"
#include "util/error.hpp"

namespace wsn::energy {
namespace {

TEST(PowerStateTable, PaperTable3Values) {
  const PowerStateTable t = Pxa271();
  EXPECT_DOUBLE_EQ(t.standby_mw, 17.0);
  EXPECT_DOUBLE_EQ(t.idle_mw, 88.0);
  EXPECT_DOUBLE_EQ(t.powerup_mw, 192.442);
  EXPECT_DOUBLE_EQ(t.active_mw, 193.0);
  EXPECT_NO_THROW(t.Validate());
}

TEST(PowerStateTable, PresetsAreOrdered) {
  EXPECT_NO_THROW(Msp430().Validate());
  EXPECT_NO_THROW(Atmega128L().Validate());
}

TEST(PowerStateTable, ValidationCatchesBadOrdering) {
  PowerStateTable bad{"bad", 100.0, 1.0, 1.0, 1.0};  // standby > idle
  EXPECT_THROW(bad.Validate(), util::InvalidArgument);
  PowerStateTable neg{"neg", -1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW(neg.Validate(), util::InvalidArgument);
}

TEST(StateShares, ValidationRules) {
  StateShares ok{0.5, 0.1, 0.2, 0.2};
  EXPECT_NO_THROW(ok.Validate());
  StateShares bad_sum{0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW(bad_sum.Validate(), util::InvalidArgument);
  StateShares negative{-0.2, 0.4, 0.4, 0.4};
  EXPECT_THROW(negative.Validate(), util::InvalidArgument);
}

TEST(EnergyModel, Equation25HandComputed) {
  // Paper Eq. 25 with PXA271 draws, all-standby: 17 mW for 1000 s = 17 J.
  const StateShares standby_only{1.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(TotalEnergyJoules(standby_only, Pxa271(), 1000.0), 17.0,
              1e-12);
  // Mixed case.
  const StateShares mixed{0.5, 0.0, 0.4, 0.1};
  const double avg = 0.5 * 17.0 + 0.4 * 88.0 + 0.1 * 193.0;
  EXPECT_NEAR(AveragePowerMilliwatts(mixed, Pxa271()), avg, 1e-12);
  EXPECT_NEAR(TotalEnergyJoules(mixed, Pxa271(), 500.0), avg * 0.5, 1e-12);
}

TEST(EnergyModel, FromExplicitTimes) {
  EXPECT_NEAR(
      EnergyFromTimesJoules(100.0, 0.0, 0.0, 0.0, Pxa271()), 1.7, 1e-12);
  EXPECT_THROW(EnergyFromTimesJoules(-1.0, 0.0, 0.0, 0.0, Pxa271()),
               util::InvalidArgument);
}

TEST(EnergyModel, MoreActiveTimeCostsMore) {
  const StateShares lazy{0.9, 0.0, 0.0, 0.1};
  const StateShares busy{0.1, 0.0, 0.0, 0.9};
  EXPECT_LT(TotalEnergyJoules(lazy, Pxa271(), 100.0),
            TotalEnergyJoules(busy, Pxa271(), 100.0));
}

TEST(Battery, CapacityConversion) {
  // 1000 mAh at 3 V = 3 Wh = 10800 J.
  const Battery b(1000.0, 3.0);
  EXPECT_NEAR(b.CapacityJoules(), 10800.0, 1e-9);
}

TEST(Battery, DrainAndDepletion) {
  Battery b(1.0, 1.0);  // 3.6 J
  EXPECT_TRUE(b.Drain(1.6));
  EXPECT_NEAR(b.Remaining(), 2.0, 1e-12);
  EXPECT_FALSE(b.Drain(5.0));
  EXPECT_TRUE(b.Depleted());
  EXPECT_DOUBLE_EQ(b.Remaining(), 0.0);
}

TEST(Battery, LifetimeAtConstantDraw) {
  const Battery b(1000.0, 3.0);  // 10800 J
  EXPECT_NEAR(b.LifetimeSeconds(10.0), 10800.0 / 0.01, 1e-6);
  EXPECT_THROW(b.LifetimeSeconds(0.0), util::InvalidArgument);
}

TEST(Radio, TransmitEnergyGrowsWithDistance) {
  const RadioModel r;
  const double near = r.TransmitEnergy(1000, 10.0);
  const double far = r.TransmitEnergy(1000, 80.0);
  const double very_far = r.TransmitEnergy(1000, 200.0);
  EXPECT_LT(near, far);
  EXPECT_LT(far, very_far);
}

TEST(Radio, FreeSpaceFormulaAtShortRange) {
  const RadioModel r;
  // 1 bit at 10 m: 50 nJ + 10 pJ * 100 = 50e-9 + 1e-9.
  EXPECT_NEAR(r.TransmitEnergy(1, 10.0), 51e-9, 1e-15);
}

TEST(Radio, ReceiveIndependentOfDistance) {
  const RadioModel r;
  EXPECT_NEAR(r.ReceiveEnergy(1000), 1000 * 50e-9, 1e-15);
}

TEST(Radio, ListenAndSleepScaleWithTime) {
  const RadioModel r;
  EXPECT_NEAR(r.ListenEnergy(10.0), 0.6, 1e-12);  // 60 mW * 10 s
  EXPECT_GT(r.ListenEnergy(1.0), r.SleepEnergy(1.0));
  EXPECT_THROW(r.ListenEnergy(-1.0), util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::energy
