// Observability metrics layer: PhaseTimer/Stopwatch semantics, registry
// create-on-first-use, snapshot merge rules, the zero-overhead pin for
// disabled runs and merge determinism across replication thread counts.
#include <gtest/gtest.h>

#include <string>

#include "core/models.hpp"
#include "netsim/netsim.hpp"
#include "netsim/replication.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wsn::obs {
namespace {

TEST(PhaseTimer, NullStopwatchIsANoOp) {
  PhaseTimer timer(static_cast<Stopwatch*>(nullptr));
  EXPECT_EQ(timer.Stop(), 0.0);
}

TEST(PhaseTimer, AccumulatesIntoStopwatchOnScopeExit) {
  Stopwatch sw;
  {
    PhaseTimer timer(sw);
  }
  EXPECT_EQ(sw.calls, 1u);
  EXPECT_GE(sw.seconds, 0.0);
}

TEST(PhaseTimer, StopIsIdempotent) {
  Stopwatch sw;
  PhaseTimer timer(sw);
  EXPECT_GE(timer.Stop(), 0.0);
  EXPECT_EQ(timer.Stop(), 0.0);  // second stop records nothing
  EXPECT_EQ(sw.calls, 1u);       // and the destructor will not either
}

TEST(Stopwatch, MergeSumsCallsAndSeconds) {
  Stopwatch a{2, 0.5};
  const Stopwatch b{3, 1.25};
  a.MergeFrom(b);
  EXPECT_EQ(a.calls, 5u);
  EXPECT_DOUBLE_EQ(a.seconds, 1.75);
}

TEST(MetricsRegistry, HandlesAreStableAndCreateOnFirstUse) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.Empty());
  std::uint64_t* c = reg.Counter("a.count");
  *c += 3;
  double* later = reg.Gauge("z.level");  // map insert must not move `c`
  *later = 7.0;
  EXPECT_EQ(reg.Counter("a.count"), c);
  EXPECT_FALSE(reg.Empty());

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("z.level"), 7.0);
}

TEST(MetricsRegistry, GaugeMaxKeepsHighWater) {
  MetricsRegistry reg;
  reg.GaugeMax("hwm", 2.0);
  reg.GaugeMax("hwm", 5.0);
  reg.GaugeMax("hwm", 3.0);
  EXPECT_DOUBLE_EQ(reg.Snapshot().gauges.at("hwm"), 5.0);
}

TEST(MetricsRegistry, HistogramShapeMustAgree) {
  MetricsRegistry reg;
  util::Histogram* h = reg.Hist("lat", 0.0, 1.0, 10);
  EXPECT_EQ(reg.Hist("lat", 0.0, 1.0, 10), h);  // same shape: same handle
  EXPECT_THROW(reg.Hist("lat", 0.0, 2.0, 10), util::InvalidArgument);
  EXPECT_THROW(reg.Hist("lat", 0.0, 1.0, 20), util::InvalidArgument);
}

TEST(MetricsSnapshot, MergeAppliesPerKindRules) {
  MetricsRegistry a;
  *a.Counter("c") += 2;
  *a.Sum("s") += 1.5;
  a.GaugeMax("g", 4.0);
  a.Hist("h", 0.0, 1.0, 2)->Add(0.25);

  MetricsRegistry b;
  *b.Counter("c") += 5;
  *b.Sum("s") += 0.25;
  b.GaugeMax("g", 3.0);
  b.Hist("h", 0.0, 1.0, 2)->Add(0.75);
  b.GaugeMax("only_b", 9.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.counters.at("c"), 7u);         // sum
  EXPECT_DOUBLE_EQ(merged.sums.at("s"), 1.75);    // sum
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 4.0);   // max
  EXPECT_DOUBLE_EQ(merged.gauges.at("only_b"), 9.0);
  EXPECT_EQ(merged.histograms.at("h").counts[0], 1u);  // binwise
  EXPECT_EQ(merged.histograms.at("h").counts[1], 1u);
  EXPECT_EQ(merged.histograms.at("h").total, 2u);
}

TEST(MetricsSnapshot, MergeRejectsHistogramShapeMismatch) {
  MetricsRegistry a;
  a.Hist("h", 0.0, 1.0, 2)->Add(0.5);
  MetricsRegistry b;
  b.Hist("h", 0.0, 1.0, 4)->Add(0.5);
  MetricsSnapshot merged = a.Snapshot();
  EXPECT_THROW(merged.MergeFrom(b.Snapshot()), util::InvalidArgument);
}

TEST(MetricsSnapshot, JsonSeparatesDeterministicFromWallClock) {
  MetricsRegistry reg;
  *reg.Counter("c") += 1;
  reg.Timing("t")->MergeFrom(Stopwatch{1, 0.125});
  const MetricsSnapshot snap = reg.Snapshot();

  const std::string with = snap.ToJson(2, /*include_timings=*/true);
  const std::string without = snap.ToJson(2, /*include_timings=*/false);
  EXPECT_NE(with.find("\"timings\""), std::string::npos);
  EXPECT_EQ(without.find("\"timings\""), std::string::npos);
  EXPECT_NE(without.find("\"counters\""), std::string::npos);
}

// ---------------------------------------------------------------- netsim

netsim::NetSimConfig TinyChain() {
  netsim::NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = 15.0;
  cfg.network.node.cpu.service_rate = 150.0;
  cfg.network.node.sample_bits = 2048;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = 0.3;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 60.0;
  cfg.positions = {{50.0, 0.0}, {100.0, 0.0}, {150.0, 0.0}};
  cfg.horizon_s = 40.0;
  return cfg;
}

// The zero-overhead pin: a run with observability off must produce an
// empty snapshot (no registry was ever created) and an empty trace.
TEST(NetSimObs, DisabledRunContributesNothing) {
  netsim::NetSimConfig cfg = TinyChain();
  ASSERT_FALSE(cfg.obs.metrics);
  ASSERT_FALSE(cfg.obs.trace.enabled);
  const core::MarkovCpuModel model;
  netsim::NetworkSimulator sim(cfg, netsim::CpuAveragePowerMw(cfg, model),
                               util::Rng(1));
  const netsim::NetSimReport report = sim.Run();
  EXPECT_TRUE(report.metrics.Empty());
  EXPECT_TRUE(report.trace.empty());
  EXPECT_GT(report.packets.delivered, 0u);
}

// With metrics on, the registry's core counters must agree with the
// report fields the simulator has always exposed.
TEST(NetSimObs, CountersMatchReportFields) {
  netsim::NetSimConfig cfg = TinyChain();
  cfg.obs.metrics = true;
  const core::MarkovCpuModel model;
  netsim::NetworkSimulator sim(cfg, netsim::CpuAveragePowerMw(cfg, model),
                               util::Rng(1));
  const netsim::NetSimReport report = sim.Run();

  const auto& c = report.metrics.counters;
  EXPECT_EQ(c.at("netsim.packets.generated"), report.packets.generated);
  EXPECT_EQ(c.at("netsim.packets.delivered"), report.packets.delivered);
  EXPECT_EQ(c.at("netsim.packets.forwarded"), report.packets.forwarded);
  EXPECT_EQ(c.at("des.events.fired"), report.events);
  EXPECT_EQ(c.at("netsim.routing.repairs"), report.routing_repairs);
  EXPECT_TRUE(report.metrics.timings.count("netsim.routing.repair_wall_s"));
}

// The merged snapshot must be byte-identical no matter how many threads
// ran the replications (wall-clock sections excluded by definition).
TEST(NetSimObs, MergedMetricsIndependentOfThreadCount) {
  netsim::NetSimConfig cfg = TinyChain();
  cfg.obs.metrics = true;
  const core::MarkovCpuModel model;

  netsim::ReplicationConfig serial;
  serial.replications = 6;
  serial.seed = 77;
  serial.threads = 1;
  netsim::ReplicationConfig parallel = serial;
  parallel.threads = 4;

  const netsim::ReplicationSummary rs = RunReplications(cfg, model, serial);
  const netsim::ReplicationSummary rp = RunReplications(cfg, model, parallel);
  EXPECT_FALSE(rs.metrics.Empty());
  EXPECT_EQ(rs.metrics.ToJson(2, /*include_timings=*/false),
            rp.metrics.ToJson(2, /*include_timings=*/false));
}

}  // namespace
}  // namespace wsn::obs
