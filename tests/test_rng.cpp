// RNG correctness: determinism, stream independence, uniformity,
// and statistical properties of the raw generators.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace wsn::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownReferenceValues) {
  // Reference outputs of the standard SplitMix64 algorithm with seed 0.
  SplitMix64 g(0);
  EXPECT_EQ(g(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(g(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(g(), 0x06c45d188009454fULL);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, JumpChangesSequence) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, MakeStreamZeroIsIdentity) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b = a.MakeStream(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, StreamsAreDistinct) {
  Xoshiro256StarStar base(7);
  Xoshiro256StarStar s1 = base.MakeStream(1);
  Xoshiro256StarStar s2 = base.MakeStream(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(s1());
    seen.insert(s2());
  }
  EXPECT_EQ(seen.size(), 400u);  // collisions are astronomically unlikely
}

TEST(UniformDouble, InHalfOpenUnitInterval) {
  Xoshiro256StarStar g(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = UniformDouble(g);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(UniformDoubleOpenLow, NeverZero) {
  Xoshiro256StarStar g(3);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(UniformDoubleOpenLow(g), 0.0);
    ASSERT_LE(UniformDoubleOpenLow(g), 1.0);
  }
}

TEST(UniformDouble, MeanAndVarianceMatchUniform) {
  Xoshiro256StarStar g(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(UniformDouble(g));
  EXPECT_NEAR(stats.Mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.Variance(), 1.0 / 12.0, 0.005);
}

TEST(UniformBelow, RespectsBound) {
  Xoshiro256StarStar g(5);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_LT(UniformBelow(g, 17), 17u);
  }
}

TEST(UniformBelow, RoughlyUniformOverSmallRange) {
  Xoshiro256StarStar g(5);
  std::array<int, 8> counts{};
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++counts[UniformBelow(g, 8)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, 5.0 * std::sqrt(n / 8.0));
  }
}

// Bit balance: each of the 64 output bits should be ~50% ones.
TEST(Xoshiro, OutputBitsBalanced) {
  Xoshiro256StarStar g(9);
  std::array<int, 64> ones{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = g();
    for (int b = 0; b < 64; ++b) {
      if (v & (std::uint64_t{1} << b)) ++ones[b];
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(ones[b]), n / 2.0,
                6.0 * std::sqrt(n / 4.0))
        << "bit " << b;
  }
}

}  // namespace
}  // namespace wsn::util
