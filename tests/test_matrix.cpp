// Dense matrix arithmetic and vector helpers.
#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "util/error.hpp"

namespace wsn::linalg {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.Rows(), 2u);
  EXPECT_EQ(m.Cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
  EXPECT_THROW(m.At(2, 0), util::InvalidArgument);
}

TEST(Matrix, RaggedInitializerRejected) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), util::InvalidArgument);
}

TEST(Matrix, IdentityProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::Identity(2);
  const Matrix p = a * i;
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 4.0);
}

TEST(Matrix, ProductAgainstHandComputed) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
}

TEST(Matrix, ProductDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, util::InvalidArgument);
}

TEST(Matrix, TransposeRoundTrip) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.Transpose();
  EXPECT_EQ(t.Rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const Matrix tt = t.Transpose();
  EXPECT_DOUBLE_EQ(tt(1, 2), 6.0);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
}

TEST(Matrix, ApplyAndApplyTransposed) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> x{1.0, 1.0};
  const auto y = a.Apply(x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const auto z = a.ApplyTransposed(x);  // row vector times A
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], 6.0);
}

TEST(Matrix, MaxAbs) {
  const Matrix a{{-9.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 9.0);
}

TEST(VectorOps, Norms) {
  const std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(Norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(v), 4.0);
}

TEST(VectorOps, DotAndSubtract) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  const auto d = Subtract(a, b);
  EXPECT_DOUBLE_EQ(d[2], -3.0);
  EXPECT_THROW(Dot(a, {1.0}), util::InvalidArgument);
}

TEST(VectorOps, NormalizeProbability) {
  std::vector<double> v{1.0, 3.0};
  NormalizeProbability(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
  std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(NormalizeProbability(zero), util::NumericalError);
}

}  // namespace
}  // namespace wsn::linalg
