// CTMC: stationary solutions against closed forms, transient analysis via
// uniformization against analytical two-state results, rewards.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/ctmc.hpp"
#include "util/error.hpp"

namespace wsn::markov {
namespace {

TEST(Ctmc, TwoStateStationary) {
  Ctmc chain(2);
  chain.AddRate(0, 1, 2.0);
  chain.AddRate(1, 0, 1.0);
  const auto pi = chain.StationaryDistribution();
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-12);
}

TEST(Ctmc, RepeatedAddRateAccumulates) {
  Ctmc chain(2);
  chain.AddRate(0, 1, 1.0);
  chain.AddRate(0, 1, 1.0);  // total rate 2
  chain.AddRate(1, 0, 1.0);
  const auto pi = chain.StationaryDistribution();
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
}

TEST(Ctmc, MmOneTruncatedStationary) {
  // M/M/1/K with lambda=1, mu=2 as a CTMC: pi_n ~ rho^n.
  const double lambda = 1.0, mu = 2.0;
  const std::size_t k = 10;
  Ctmc chain(k + 1);
  for (std::size_t n = 0; n < k; ++n) {
    chain.AddRate(n, n + 1, lambda);
    chain.AddRate(n + 1, n, mu);
  }
  const auto pi = chain.StationaryDistribution();
  const double rho = lambda / mu;
  for (std::size_t n = 1; n <= k; ++n) {
    EXPECT_NEAR(pi[n] / pi[n - 1], rho, 1e-10);
  }
}

TEST(Ctmc, SparsePathMatchesDense) {
  // Force the Gauss-Seidel path by setting a tiny dense threshold.
  Ctmc chain(6);
  for (std::size_t i = 0; i < 6; ++i) {
    chain.AddRate(i, (i + 1) % 6, 1.0 + i * 0.3);
    chain.AddRate(i, (i + 2) % 6, 0.5);
  }
  const auto dense = chain.StationaryDistribution(512);
  const auto sparse = chain.StationaryDistribution(1);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(dense[i], sparse[i], 1e-8);
  }
}

TEST(Ctmc, TransientTwoStateAnalytical) {
  // For rates a (0->1), b (1->0): p01(t) = a/(a+b) (1 - e^{-(a+b)t}).
  const double a = 2.0, b = 1.0;
  Ctmc chain(2);
  chain.AddRate(0, 1, a);
  chain.AddRate(1, 0, b);
  for (double t : {0.0, 0.1, 0.5, 1.0, 3.0}) {
    const auto p = chain.TransientDistribution({1.0, 0.0}, t);
    const double expected = a / (a + b) * (1.0 - std::exp(-(a + b) * t));
    EXPECT_NEAR(p[1], expected, 1e-8) << "t=" << t;
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  }
}

TEST(Ctmc, TransientConvergesToStationary) {
  Ctmc chain(3);
  chain.AddRate(0, 1, 1.0);
  chain.AddRate(1, 2, 2.0);
  chain.AddRate(2, 0, 3.0);
  chain.AddRate(2, 1, 0.5);
  const auto pi = chain.StationaryDistribution();
  const auto p = chain.TransientDistribution({1.0, 0.0, 0.0}, 200.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(p[i], pi[i], 1e-6);
}

TEST(Ctmc, TransientAtZeroIsInitial) {
  Ctmc chain(2);
  chain.AddRate(0, 1, 1.0);
  chain.AddRate(1, 0, 1.0);
  const auto p = chain.TransientDistribution({0.25, 0.75}, 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(Ctmc, StationaryReward) {
  Ctmc chain(2);
  chain.AddRate(0, 1, 1.0);
  chain.AddRate(1, 0, 1.0);
  // Uniform stationary; reward (10, 20) -> 15.
  EXPECT_NEAR(chain.StationaryReward({10.0, 20.0}), 15.0, 1e-10);
}

TEST(Ctmc, LabelsAndGrowth) {
  Ctmc chain(0);
  const auto s0 = chain.AddState("off");
  const auto s1 = chain.AddState("on");
  EXPECT_EQ(chain.StateCount(), 2u);
  EXPECT_EQ(chain.Label(s0), "off");
  chain.AddRate(s0, s1, 1.0);
  chain.AddRate(s1, s0, 3.0);
  EXPECT_NEAR(chain.ExitRate(s1), 3.0, 1e-12);
}

TEST(Ctmc, InvalidUsageThrows) {
  Ctmc chain(2);
  EXPECT_THROW(chain.AddRate(0, 0, 1.0), util::InvalidArgument);  // self loop
  EXPECT_THROW(chain.AddRate(0, 5, 1.0), util::InvalidArgument);
  EXPECT_THROW(chain.AddRate(0, 1, -1.0), util::InvalidArgument);
  EXPECT_THROW(chain.StationaryDistribution(), util::ModelError);  // no edges
  EXPECT_THROW(chain.TransientDistribution({1.0}, 1.0),
               util::InvalidArgument);  // dim mismatch
}

TEST(Ctmc, GeneratorRowsSumToZero) {
  Ctmc chain(4);
  chain.AddRate(0, 1, 1.5);
  chain.AddRate(1, 2, 0.7);
  chain.AddRate(2, 3, 2.0);
  chain.AddRate(3, 0, 0.1);
  const auto q = chain.Generator();
  for (std::size_t i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 4; ++j) sum += q(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
  // Sparse and dense generators agree.
  const auto qs = chain.SparseGenerator().ToDense();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(qs(i, j), q(i, j));
    }
  }
}

}  // namespace
}  // namespace wsn::markov
