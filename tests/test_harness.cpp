// Sweep-point harness tests: the durable journal, --resume replay,
// --keep-going error rows, crash isolation plumbing and the atomic
// file-output helpers (docs/robustness.md).
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/harness.hpp"
#include "scenario/result.hpp"
#include "scenario/scenario.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/executor.hpp"
#include "util/fsio.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/subproc.hpp"

namespace wsn::scenario {
namespace {

namespace fs = std::filesystem;

/// RAII temp directory for journal files.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("wsn_harness_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string File(const std::string& name) const {
    return (path / name).string();
  }
  static int& counter() {
    static int n = 0;
    return n;
  }
};

const char* const kArgv[] = {"test"};

struct Fixture {
  util::ParallelExecutor executor{2};
  util::CliArgs args{1, kArgv};
  ScenarioContext Ctx(PointHarness* harness = nullptr) {
    ScenarioContext ctx;
    ctx.args = &args;
    ctx.executor = &executor;
    ctx.harness = harness;
    return ctx;
  }
};

std::vector<std::string> JournalLines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(HarnessCells, EncodeDecodeRoundTrip) {
  const std::vector<std::string> cells = {"a", "", "with \"quotes\"",
                                          "new\nline", "3.14"};
  EXPECT_EQ(DecodeCells(EncodeCells(cells)), cells);
  EXPECT_EQ(DecodeCells(EncodeCells({})), std::vector<std::string>{});
}

TEST(HarnessCells, DecodeRejectsMalformedPayloads) {
  EXPECT_THROW(DecodeCells("not json"), std::exception);
  EXPECT_THROW(DecodeCells("{\"a\":1}"), util::Error);   // not an array
  EXPECT_THROW(DecodeCells("[1, 2]"), util::Error);      // not strings
}

TEST(Harness, InlinePointRunsOnTheDriversExecutor) {
  Fixture f;
  HarnessOptions options;  // everything off: zero-cost-when-off path
  PointHarness harness(options, "0123456789abcdef", f.executor);
  EXPECT_FALSE(harness.Isolating());
  const PointOutcome out =
      harness.RunPoint("p0", 7, [&f](const PointEnv& env) {
        EXPECT_EQ(env.executor, &f.executor);
        EXPECT_FALSE(env.isolated);
        return std::string("payload");
      });
  EXPECT_TRUE(out.ok);
  EXPECT_FALSE(out.replayed);
  EXPECT_EQ(out.payload, "payload");
  EXPECT_EQ(harness.Counters().at("harness.points.executed"), 1u);
}

TEST(Harness, IsolatedPointRunsInAWorkerWithAFreshExecutor) {
  Fixture f;
  HarnessOptions options;
  options.isolate = true;
  options.threads = 2;
  PointHarness harness(options, "0123456789abcdef", f.executor);
  ASSERT_TRUE(harness.Isolating());
  const PointOutcome out =
      harness.RunPoint("p0", 7, [&f](const PointEnv& env) {
        // Forked child: a fresh pool, not the parent's.
        EXPECT_NE(env.executor, &f.executor);
        EXPECT_TRUE(env.isolated);
        return std::string("isolated payload");
      });
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.payload, "isolated payload");
}

TEST(Harness, JournalRecordsMatchTheDocumentedSchema) {
  TempDir dir;
  Fixture f;
  HarnessOptions options;
  options.journal_path = dir.File("run.jsonl");
  {
    PointHarness harness(options, "00000000deadbeef", f.executor);
    harness.RunPoint("alpha", 11,
                     [](const PointEnv&) { return std::string("A"); });
    harness.RunPoint("beta", 12,
                     [](const PointEnv&) { return std::string("B"); });
  }
  const std::vector<std::string> lines = JournalLines(options.journal_path);
  ASSERT_EQ(lines.size(), 2u);
  const util::JsonValue rec = util::ParseJson(lines[0]);
  EXPECT_EQ(rec.Find("schema")->AsString(), "wsn-journal-v1");
  EXPECT_EQ(rec.Find("run")->AsString(), "00000000deadbeef");
  EXPECT_EQ(rec.Find("point")->AsString(), "alpha");
  EXPECT_EQ(rec.Find("seed")->AsNumber(), 11.0);
  EXPECT_EQ(rec.Find("status")->AsString(), "ok");
  EXPECT_EQ(rec.Find("payload")->AsString(), "A");
  EXPECT_EQ(rec.Find("hash")->AsString(), util::HexU64(util::Fnv1a64("A")));
}

TEST(Harness, ResumeReplaysCompletedPointsWithoutExecuting) {
  TempDir dir;
  Fixture f;
  HarnessOptions options;
  options.journal_path = dir.File("run.jsonl");
  {
    PointHarness first(options, "00000000deadbeef", f.executor);
    first.RunPoint("alpha", 1,
                   [](const PointEnv&) { return std::string("A"); });
    first.RunPoint("beta", 2,
                   [](const PointEnv&) { return std::string("B"); });
  }
  options.resume = true;
  PointHarness resumed(options, "00000000deadbeef", f.executor);
  bool executed = false;
  const PointOutcome alpha =
      resumed.RunPoint("alpha", 1, [&executed](const PointEnv&) {
        executed = true;
        return std::string("A");
      });
  EXPECT_TRUE(alpha.replayed);
  EXPECT_EQ(alpha.payload, "A");
  EXPECT_FALSE(executed) << "a journaled point must not re-run";
  // A point missing from the journal executes and is appended.
  const PointOutcome gamma = resumed.RunPoint(
      "gamma", 3, [](const PointEnv&) { return std::string("C"); });
  EXPECT_FALSE(gamma.replayed);
  const auto counters = resumed.Counters();
  EXPECT_EQ(counters.at("harness.points.replayed"), 1u);
  EXPECT_EQ(counters.at("harness.points.executed"), 1u);
  EXPECT_EQ(JournalLines(options.journal_path).size(), 3u);
}

TEST(Harness, ResumeRejectsAJournalFromADifferentRunConfiguration) {
  TempDir dir;
  Fixture f;
  HarnessOptions options;
  options.journal_path = dir.File("run.jsonl");
  {
    PointHarness first(options, "aaaaaaaaaaaaaaaa", f.executor);
    first.RunPoint("alpha", 1,
                   [](const PointEnv&) { return std::string("A"); });
  }
  options.resume = true;
  try {
    PointHarness other(options, "bbbbbbbbbbbbbbbb", f.executor);
    FAIL() << "run-id mismatch was not rejected";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("different run configuration"),
              std::string::npos)
        << e.what();
  }
}

TEST(Harness, ResumeToleratesATornFinalRecordOnly) {
  TempDir dir;
  Fixture f;
  HarnessOptions options;
  options.journal_path = dir.File("run.jsonl");
  {
    PointHarness first(options, "00000000deadbeef", f.executor);
    first.RunPoint("alpha", 1,
                   [](const PointEnv&) { return std::string("A"); });
  }
  // Simulate a crash mid-append: a torn, unparseable final line.
  {
    std::ofstream out(options.journal_path,
                      std::ios::binary | std::ios::app);
    out << "{\"schema\":\"wsn-journal-v1\",\"run\":\"00000000dead";
  }
  options.resume = true;
  PointHarness resumed(options, "00000000deadbeef", f.executor);
  const PointOutcome alpha = resumed.RunPoint(
      "alpha", 1, [](const PointEnv&) { return std::string("A"); });
  EXPECT_TRUE(alpha.replayed) << "the intact record before the tear";

  // The same corruption anywhere but the end is a hard error.
  {
    std::ofstream out(options.journal_path,
                      std::ios::binary | std::ios::trunc);
    out << "garbage not json\n";
    out << "{\"schema\":\"wsn-journal-v1\"}\n";
  }
  EXPECT_THROW(PointHarness(options, "00000000deadbeef", f.executor),
               util::Error);
}

TEST(Harness, ResumeVerifiesThePayloadHash) {
  TempDir dir;
  Fixture f;
  HarnessOptions options;
  options.journal_path = dir.File("run.jsonl");
  {
    PointHarness first(options, "00000000deadbeef", f.executor);
    first.RunPoint("alpha", 1,
                   [](const PointEnv&) { return std::string("A"); });
  }
  // Flip the payload without updating the recorded hash.
  std::vector<std::string> lines = JournalLines(options.journal_path);
  ASSERT_EQ(lines.size(), 1u);
  std::string tampered = lines[0];
  const auto at = tampered.find("\"payload\":\"A\"");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 13, "\"payload\":\"X\"");
  {
    std::ofstream out(options.journal_path,
                      std::ios::binary | std::ios::trunc);
    out << tampered << "\n";
    // A second record keeps the tampered one off the torn-tail path.
    out << "{\"schema\":\"wsn-journal-v1\",\"run\":\"00000000deadbeef\","
           "\"point\":\"beta\",\"seed\":2,\"status\":\"ok\","
           "\"payload\":\"B\",\"hash\":\""
        << util::HexU64(util::Fnv1a64("B")) << "\"}\n";
  }
  options.resume = true;
  try {
    PointHarness resumed(options, "00000000deadbeef", f.executor);
    FAIL() << "payload hash mismatch was not rejected";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("hash mismatch"), std::string::npos)
        << e.what();
  }
}

TEST(Harness, ExhaustedPointThrowsWorkerErrorWithoutKeepGoing) {
  Fixture f;
  HarnessOptions options;
  options.isolate = true;
  options.retries = 1;
  options.backoff_s = 0.0;  // no real sleeping in tests
  PointHarness harness(options, "0123456789abcdef", f.executor);
  try {
    harness.RunPoint("doomed", 1, [](const PointEnv&) {
      // SIGKILL, not SIGSEGV: sanitizers intercept SEGV and exit
      // instead, which would reclassify the failure as nonzero-exit.
      ::raise(SIGKILL);
      return std::string();
    });
    FAIL() << "exhausted point did not throw";
  } catch (const util::WorkerError& e) {
    EXPECT_EQ(e.Failure(), util::WorkerFailure::kSignal);
    EXPECT_NE(std::string(e.what()).find("--keep-going"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(harness.Counters().at("harness.worker.retries"), 1u);
  EXPECT_EQ(harness.Counters().at("harness.worker.failures.signal"), 1u);
}

TEST(Harness, KeepGoingRecordsAnErrorRowAndJournalsTheFailure) {
  TempDir dir;
  Fixture f;
  HarnessOptions options;
  options.isolate = true;
  options.keep_going = true;
  options.journal_path = dir.File("run.jsonl");
  PointHarness harness(options, "0123456789abcdef", f.executor);
  ScenarioContext ctx = f.Ctx(&harness);

  ResultSet results("keep-going");
  ResultTable& table =
      results.AddTable("sweep", {"config", "metric a", "metric b"});
  RunPointRow(ctx, table, "ok-point", 1, "n=1",
              [](const ScenarioContext&, const PointEnv&) {
                return std::vector<std::string>{"n=1", "1.0", "2.0"};
              });
  RunPointRow(ctx, table, "crash-point", 2, "n=2",
              [](const ScenarioContext&, const PointEnv&)
                  -> std::vector<std::string> {
                ::raise(SIGKILL);
                return {};
              });
  RunPointRow(ctx, table, "late-point", 3, "n=3",
              [](const ScenarioContext&, const PointEnv&) {
                return std::vector<std::string>{"n=3", "5.0", "6.0"};
              });

  // The sweep shape survives: three rows, the failed one explicit.
  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.rows[0],
            (std::vector<std::string>{"n=1", "1.0", "2.0"}));
  EXPECT_EQ(table.rows[1][0], "n=2");
  EXPECT_EQ(table.rows[1][1], "error: signal (1 attempt)");
  EXPECT_EQ(table.rows[1][2], "-");
  EXPECT_EQ(table.rows[2],
            (std::vector<std::string>{"n=3", "5.0", "6.0"}));

  ASSERT_EQ(harness.Failures().size(), 1u);
  EXPECT_EQ(harness.Failures()[0].point, "crash-point");
  EXPECT_EQ(harness.Failures()[0].failure, "signal");

  // The journaled failure replays verbatim on resume (same error row),
  // still counted as a failure so the exit summary stays nonzero.
  options.resume = true;
  PointHarness resumed(options, "0123456789abcdef", f.executor);
  const PointOutcome replayed = resumed.RunPoint(
      "crash-point", 2, [](const PointEnv&) { return std::string("?"); });
  EXPECT_TRUE(replayed.replayed);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.failure, "signal");
  ASSERT_EQ(resumed.Failures().size(), 1u);
}

TEST(Harness, RowArityMismatchIsANamedError) {
  Fixture f;
  HarnessOptions options;
  options.keep_going = true;  // harness active, but inline (no fork)
  PointHarness harness(options, "0123456789abcdef", f.executor);
  ScenarioContext ctx = f.Ctx(&harness);
  ResultSet results("arity");
  ResultTable& table = results.AddTable("t", {"a", "b"});
  try {
    RunPointRow(ctx, table, "p", 1, "p",
                [](const ScenarioContext&, const PointEnv&) {
                  return std::vector<std::string>{"only one"};
                });
    FAIL() << "arity mismatch not detected";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("cells"), std::string::npos);
  }
}

TEST(Harness, ResumeRequiresAJournalPath) {
  Fixture f;
  HarnessOptions options;
  options.resume = true;
  EXPECT_THROW(PointHarness(options, "0123456789abcdef", f.executor),
               util::Error);
}

TEST(Fsio, AtomicWriteLeavesNoTempFileBehind) {
  TempDir dir;
  const std::string path = dir.File("out.json");
  util::AtomicWriteFile(path, "{\"ok\":true}\n");
  std::ifstream in(path, std::ios::binary);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "{\"ok\":true}\n");
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Overwrite is atomic too: the new content fully replaces the old.
  util::AtomicWriteFile(path, "v2");
  std::ifstream in2(path, std::ios::binary);
  std::stringstream content2;
  content2 << in2.rdbuf();
  EXPECT_EQ(content2.str(), "v2");
}

TEST(Fsio, RequireWritableDirNamesTheFlagAndTheMissingDirectory) {
  try {
    util::RequireWritableDir("/no/such/dir/metrics.json", "--metrics");
    FAIL() << "missing directory not rejected";
  } catch (const util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--metrics"), std::string::npos) << what;
    EXPECT_NE(what.find("/no/such/dir"), std::string::npos) << what;
    EXPECT_NE(what.find("does not exist"), std::string::npos) << what;
  }
  // A bare filename targets the current directory, which exists.
  EXPECT_NO_THROW(util::RequireWritableDir("plain.json", "--journal"));
}

}  // namespace
}  // namespace wsn::scenario
