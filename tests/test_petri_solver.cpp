// Numerical SPN solver: exact agreement with M/M/1/K and ping-pong closed
// forms, simulator cross-validation, stage expansion of deterministic
// transitions and its convergence.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/mm1.hpp"
#include "petri/ctmc_solver.hpp"
#include "petri/simulation.hpp"
#include "petri/standard_nets.hpp"
#include "util/error.hpp"

namespace wsn::petri {
namespace {

TEST(SpnSolver, PingPongExact) {
  const double lambda = 2.0, mu = 3.0;
  const PetriNet net = MakePingPongNet(lambda, mu);
  const SpnSteadyState ss = SolveSteadyState(net);
  EXPECT_EQ(ss.tangible_states, 2u);
  EXPECT_EQ(ss.expanded_states, 2u);
  EXPECT_NEAR(ss.mean_tokens[net.PlaceByName("ping")], 0.6, 1e-12);
  EXPECT_NEAR(ss.mean_tokens[net.PlaceByName("pong")], 0.4, 1e-12);
  // Throughput: each transition fires at the cycle rate 1.2/s.
  EXPECT_NEAR(ss.throughput[net.TransitionByName("go")], 1.2, 1e-12);
  EXPECT_NEAR(ss.throughput[net.TransitionByName("back")], 1.2, 1e-12);
}

class Mm1kSolverCases
    : public ::testing::TestWithParam<std::tuple<double, std::uint32_t>> {};

TEST_P(Mm1kSolverCases, ExactAgainstClosedForm) {
  const auto [rho, k] = GetParam();
  const double mu = 1.0;
  const double lambda = rho * mu;
  const PetriNet net = MakeMm1kNet(lambda, mu, k);
  const SpnSteadyState ss = SolveSteadyState(net);
  const markov::Mm1k ref{lambda, mu, k};

  EXPECT_EQ(ss.tangible_states, static_cast<std::size_t>(k) + 1);
  EXPECT_NEAR(ss.mean_tokens[net.PlaceByName("queue")], ref.MeanJobs(),
              1e-10);
  EXPECT_NEAR(ss.prob_nonempty[net.PlaceByName("queue")],
              ref.Utilization(), 1e-10);
  EXPECT_NEAR(ss.throughput[net.TransitionByName("serve")],
              ref.Throughput(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    LoadAndCapacity, Mm1kSolverCases,
    ::testing::Combine(::testing::Values(0.3, 0.8, 1.0, 1.5),
                       ::testing::Values<std::uint32_t>(1, 4, 12)));

TEST(SpnSolver, GspnWithImmediateMatchesSimulation) {
  const PetriNet net = MakeProducerConsumerNet(1.0, 1.5, 3);
  const SpnSteadyState exact = SolveSteadyState(net);

  SimulationConfig cfg;
  cfg.horizon = 50000.0;
  cfg.warmup = 500.0;
  cfg.seed = 9;
  const SimulationResult sim = SimulateSpn(net, cfg);
  for (std::size_t p = 0; p < net.PlaceCount(); ++p) {
    EXPECT_NEAR(exact.mean_tokens[p], sim.mean_tokens[p], 0.03)
        << net.GetPlace(p).name;
  }
  EXPECT_NEAR(exact.throughput[net.TransitionByName("produce")],
              sim.throughput[net.TransitionByName("produce")], 0.03);
}

TEST(SpnSolver, SharedResourceConservation) {
  const PetriNet net = MakeSharedResourceNet(2, 1.0, 1.0);
  const SpnSteadyState ss = SolveSteadyState(net);
  // With symmetric rates the two users split the resource evenly in the
  // long run (the acquire weights only decide ties, which recur with
  // probability zero after the initial marking).
  const double u0 = ss.mean_tokens[net.PlaceByName("using_0")];
  const double u1 = ss.mean_tokens[net.PlaceByName("using_1")];
  EXPECT_NEAR(u0, u1, 1e-10);
  // Resource conservation: exactly one token across resource/using_*.
  EXPECT_NEAR(ss.mean_tokens[net.PlaceByName("resource")] + u0 + u1, 1.0,
              1e-10);
}

TEST(SpnSolver, ImmediateWeightsSteerRecurringConflicts) {
  // A token repeatedly reaches a weighted fork: ta (weight 1) vs tb
  // (weight 3).  Steady-state throughputs must split 1:3.
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const PlaceId a = net.AddPlace("a", 0);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId ta = net.AddImmediateTransition("ta", 1, 1.0);
  const TransitionId tb = net.AddImmediateTransition("tb", 1, 3.0);
  net.AddInputArc(ta, p);
  net.AddOutputArc(ta, a);
  net.AddInputArc(tb, p);
  net.AddOutputArc(tb, b);
  const TransitionId drain_a = net.AddExponentialTransition("drain_a", 2.0);
  net.AddInputArc(drain_a, a);
  net.AddOutputArc(drain_a, p);
  const TransitionId drain_b = net.AddExponentialTransition("drain_b", 2.0);
  net.AddInputArc(drain_b, b);
  net.AddOutputArc(drain_b, p);

  const SpnSteadyState ss = SolveSteadyState(net);
  // Both tangible states have the same exponential holding rate, so the
  // token shares equal the branch probabilities.
  EXPECT_NEAR(ss.mean_tokens[a], 0.25, 1e-10);
  EXPECT_NEAR(ss.mean_tokens[b], 0.75, 1e-10);
  EXPECT_NEAR(ss.throughput[drain_b] / ss.throughput[drain_a], 3.0, 1e-9);

  // And the token-game simulator agrees.
  SimulationConfig cfg;
  cfg.horizon = 50000.0;
  cfg.seed = 31;
  const SimulationResult sim = SimulateSpn(net, cfg);
  EXPECT_NEAR(sim.mean_tokens[a], 0.25, 0.02);
  EXPECT_NEAR(sim.mean_tokens[b], 0.75, 0.02);
}

TEST(SpnSolver, DeterministicCycleViaStageExpansion) {
  // a --det(1)--> b --det(3)--> a: true shares 0.25 / 0.75.  The Erlang
  // expansion approaches them as k grows.
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId ab = net.AddDeterministicTransition("ab", 1.0);
  const TransitionId ba = net.AddDeterministicTransition("ba", 3.0);
  net.AddInputArc(ab, a);
  net.AddOutputArc(ab, b);
  net.AddInputArc(ba, b);
  net.AddOutputArc(ba, a);

  // Means are exact for phase-type delays regardless of k: time in a is
  // mean(ab)/(mean(ab)+mean(ba)) for an alternating renewal process.
  for (std::size_t k : {1u, 4u, 16u}) {
    SolverOptions opts;
    opts.det_stages = k;
    const SpnSteadyState ss = SolveSteadyState(net, opts);
    EXPECT_NEAR(ss.mean_tokens[a], 0.25, 1e-10) << "k=" << k;
    EXPECT_NEAR(ss.mean_tokens[b], 0.75, 1e-10) << "k=" << k;
    EXPECT_NEAR(ss.throughput[ab], 0.25, 1e-10);
    EXPECT_EQ(ss.expanded_states, 2 * k);
  }
}

TEST(SpnSolver, ErlangTransitionsHandledNatively) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId ab = net.AddTimedTransition(
      "ab", util::Distribution(util::Erlang{3, 3.0}));  // mean 1
  const TransitionId ba = net.AddExponentialTransition("ba", 1.0 / 3.0);
  net.AddInputArc(ab, a);
  net.AddOutputArc(ab, b);
  net.AddInputArc(ba, b);
  net.AddOutputArc(ba, a);

  const SpnSteadyState ss = SolveSteadyState(net);
  EXPECT_NEAR(ss.mean_tokens[a], 0.25, 1e-10);
  EXPECT_NEAR(ss.mean_tokens[b], 0.75, 1e-10);
}

TEST(SpnSolver, StageExpansionMatchesSimulatorOnPreemptiveNet) {
  // Deterministic transition that *can be preempted* (enabling memory):
  // the sleep/interrupter net.  Solver with large k vs long simulation.
  PetriNet net;
  const PlaceId armed = net.AddPlace("armed", 1);
  const PlaceId off = net.AddPlace("off", 0);
  const TransitionId sleep = net.AddDeterministicTransition("sleep", 1.0);
  net.AddInputArc(sleep, armed);
  net.AddOutputArc(sleep, off);
  const TransitionId wake = net.AddExponentialTransition("wake", 0.5);
  net.AddInputArc(wake, off);
  net.AddOutputArc(wake, armed);
  const PlaceId tmp = net.AddPlace("tmp", 0);
  const TransitionId grab = net.AddExponentialTransition("grab", 1.0);
  net.AddInputArc(grab, armed);
  net.AddOutputArc(grab, tmp);
  const TransitionId put = net.AddExponentialTransition("put", 4.0);
  net.AddInputArc(put, tmp);
  net.AddOutputArc(put, armed);

  SolverOptions opts;
  opts.det_stages = 40;
  const SpnSteadyState exact = SolveSteadyState(net, opts);

  SimulationConfig cfg;
  cfg.horizon = 200000.0;
  cfg.seed = 21;
  const SimulationResult sim = SimulateSpn(net, cfg);
  for (PlaceId p : {armed, off, tmp}) {
    EXPECT_NEAR(exact.mean_tokens[p], sim.mean_tokens[p], 0.01)
        << net.GetPlace(p).name;
  }
}

TEST(SpnSolver, RejectsUnsupportedDistributions) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const TransitionId t = net.AddTimedTransition(
      "t", util::Distribution(util::Uniform{0.0, 1.0}));
  net.AddInputArc(t, a);
  net.AddOutputArc(t, a);
  EXPECT_THROW(SolveSteadyState(net), util::ModelError);
}

TEST(SpnSolver, RejectsZeroDeterministicDelay) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const TransitionId t = net.AddDeterministicTransition("t", 0.0);
  net.AddInputArc(t, a);
  net.AddOutputArc(t, a);
  EXPECT_THROW(SolveSteadyState(net), util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::petri
