// Scenario engine: registry contents, flag validation, and the PR's
// acceptance pin — running a scenario at --threads=1 and --threads=8
// produces byte-identical table/CSV/JSON output for the same seed, for
// both an analytic sweep (table4) and a netsim replication scenario
// (netsim-lifetime).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/result.hpp"
#include "scenario/scenario.hpp"
#include "scenario/spec.hpp"
#include "util/error.hpp"
#include "util/executor.hpp"
#include "util/json.hpp"

namespace wsn::scenario {
namespace {

const Scenario& Lookup(const std::string& name) {
  const Scenario* s = ScenarioRegistry::Instance().Find(name);
  EXPECT_NE(s, nullptr) << "scenario '" << name << "' not registered";
  return *s;
}

/// Run `name` with `flags` on an executor of `threads` workers and
/// render all three sinks concatenated.
std::string RunAll(const std::string& name,
                   const std::vector<std::string>& flags,
                   std::size_t threads) {
  std::vector<const char*> argv = {"test"};
  for (const std::string& f : flags) argv.push_back(f.c_str());
  const util::CliArgs args(static_cast<int>(argv.size()), argv.data());
  util::ParallelExecutor executor(threads);
  ScenarioContext ctx;
  ctx.args = &args;
  ctx.executor = &executor;
  const ResultSet results = Lookup(name).Run(ctx);
  return results.RenderText() + "\n#####\n" + results.RenderCsv() +
         "\n#####\n" + results.RenderJson();
}

TEST(ScenarioRegistry, PaperArtifactsAreRegistered) {
  for (const char* name : {"table4", "table5", "fig4", "fig5",
                           "ablation-stages", "ablation-steady", "duty-cycle",
                           "model-comparison", "wsn-lifetime",
                           "netsim-lifetime", "netsim-throughput",
                           "netsim-clustered", "netsim-heterogeneous",
                           "cluster-ablation"}) {
    EXPECT_NE(ScenarioRegistry::Instance().Find(name), nullptr)
        << "missing scenario " << name;
  }
}

TEST(ScenarioRegistry, FindReturnsNullForUnknown) {
  EXPECT_EQ(ScenarioRegistry::Instance().Find("no-such-scenario"), nullptr);
}

TEST(ScenarioRegistry, AllIsSortedByName) {
  const auto all = ScenarioRegistry::Instance().All();
  ASSERT_GE(all.size(), 11u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->Name(), all[i]->Name());
  }
}

TEST(ScenarioRegistry, RejectsDuplicateNames) {
  EXPECT_THROW(
      ScenarioRegistry::Instance().Register(MakeScenario(
          "table4", "dup", "dup", {},
          [](const ScenarioContext&) { return ResultSet("dup"); })),
      util::InvalidArgument);
}

TEST(ScenarioRegistry, EveryScenarioDeclaresItsFlags) {
  // The unknown-flag guard only works if scenarios declare a vocabulary;
  // every sweep scenario here takes at least one flag.
  for (const Scenario* s : ScenarioRegistry::Instance().All()) {
    EXPECT_FALSE(s->Flags().empty()) << s->Name();
    EXPECT_FALSE(s->Summary().empty()) << s->Name();
    EXPECT_FALSE(s->Artifact().empty()) << s->Name();
  }
}

// Acceptance pin: analytic sweep determinism across thread counts.
TEST(ScenarioDeterminism, Table4ByteIdenticalAcrossThreadCounts) {
  const std::vector<std::string> flags = {"--points=3", "--replications=2",
                                          "--sim-time=20", "--seed=7"};
  const std::string serial = RunAll("table4", flags, 1);
  const std::string parallel = RunAll("table4", flags, 8);
  EXPECT_EQ(serial, parallel);
  // Sanity: a different seed must actually change the simulation cells,
  // proving the comparison is not trivially empty.
  const std::string other_seed =
      RunAll("table4", {"--points=3", "--replications=2", "--sim-time=20",
                        "--seed=8"},
             1);
  EXPECT_NE(serial, other_seed);
}

// Acceptance pin: netsim replication determinism across thread counts.
TEST(ScenarioDeterminism, NetsimLifetimeByteIdenticalAcrossThreadCounts) {
  const std::vector<std::string> flags = {"--cols=3", "--rows=2",
                                          "--horizon=200",
                                          "--replications=3", "--seed=11"};
  const std::string serial = RunAll("netsim-lifetime", flags, 1);
  const std::string parallel = RunAll("netsim-lifetime", flags, 8);
  EXPECT_EQ(serial, parallel);
}

// Acceptance pin: the clustered workload (rotating elections, repair
// after head death, aggregation) is also byte-identical across thread
// counts.
TEST(ScenarioDeterminism, NetsimClusteredByteIdenticalAcrossThreadCounts) {
  const std::vector<std::string> flags = {"--cols=3", "--rows=3",
                                          "--horizon=400",
                                          "--replications=3", "--seed=11"};
  const std::string serial = RunAll("netsim-clustered", flags, 1);
  const std::string parallel = RunAll("netsim-clustered", flags, 8);
  EXPECT_EQ(serial, parallel);
  const std::string other_seed =
      RunAll("netsim-clustered",
             {"--cols=3", "--rows=3", "--horizon=400", "--replications=3",
              "--seed=12"},
             1);
  EXPECT_NE(serial, other_seed);
}

// Cross-change output pins (ISSUE 7): the SoA node-state restructuring,
// batched LPL wakeups and grid head assignment are pure layout/speed
// changes — the rendered scenario output for a fixed (flags, seed) must
// be byte-for-byte what the pre-change array-of-structs simulator
// produced.  The FNV-1a hashes below were captured BEFORE the refactor;
// a mismatch means the refactor changed simulation behaviour, not just
// performance.  Re-pin only with an explicit note in docs/performance.md.
std::uint64_t Fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(ScenarioDeterminism, NetsimLifetimeOutputPinnedAcrossSoARefactor) {
  const std::string out =
      RunAll("netsim-lifetime",
             {"--cols=5", "--rows=4", "--horizon=1200", "--replications=2",
              "--seed=2008"},
             1);
  EXPECT_EQ(out.size(), 4826u);
  EXPECT_EQ(Fnv1a64(out), 0x2312344034942ccaull);
}

TEST(ScenarioDeterminism, NetsimClusteredOutputPinnedAcrossSoARefactor) {
  const std::string out =
      RunAll("netsim-clustered",
             {"--cols=6", "--rows=6", "--horizon=900", "--replications=2",
              "--seed=2008"},
             1);
  EXPECT_EQ(out.size(), 6246u);
  EXPECT_EQ(Fnv1a64(out), 0x659e0f3c8c3316b5ull);
}

// Preset round-trip pins (ISSUE 9): every committed preset file under
// presets/ is the declarative twin of a registered scenario.  Running
// it through `wsnctl run --file`'s load-and-interpret path must render
// byte-for-byte what the registry scenario renders, at any thread
// count.  A mismatch means a preset drifted from its twin (or the spec
// interpreter stopped sharing the registry's study runners).
std::string RunPreset(const std::string& name, std::size_t threads) {
  const char* argv[] = {"test"};
  const util::CliArgs args(1, argv);
  util::ParallelExecutor executor(threads);
  ScenarioContext ctx;
  ctx.args = &args;
  ctx.executor = &executor;
  const ScenarioSpec spec = LoadScenarioSpecFile(
      std::string(WSN_SOURCE_DIR) + "/presets/" + name + ".json");
  const ResultSet results = RunSpec(ctx, spec);
  return results.RenderText() + "\n#####\n" + results.RenderCsv() +
         "\n#####\n" + results.RenderJson();
}

TEST(ScenarioPresets, LifetimePresetMatchesRegistryTwin) {
  const std::string registry = RunAll("netsim-lifetime", {}, 1);
  EXPECT_EQ(RunPreset("netsim-lifetime", 1), registry);
  EXPECT_EQ(RunPreset("netsim-lifetime", 4), registry);
}

TEST(ScenarioPresets, ClusteredPresetMatchesRegistryTwin) {
  const std::string registry = RunAll("netsim-clustered", {}, 1);
  EXPECT_EQ(RunPreset("netsim-clustered", 1), registry);
  EXPECT_EQ(RunPreset("netsim-clustered", 4), registry);
}

TEST(ScenarioPresets, HeterogeneousPresetMatchesRegistryTwin) {
  const std::string registry = RunAll("netsim-heterogeneous", {}, 1);
  EXPECT_EQ(RunPreset("netsim-heterogeneous", 1), registry);
  EXPECT_EQ(RunPreset("netsim-heterogeneous", 4), registry);
}

TEST(ScenarioPresets, FaultsPresetMatchesRegistryTwin) {
  // The preset pins the single-point study: one crash rate, one outage.
  const std::string registry = RunAll(
      "netsim-faults", {"--crash-rates=0.001", "--outages=150"}, 1);
  EXPECT_EQ(RunPreset("netsim-faults", 1), registry);
  EXPECT_EQ(RunPreset("netsim-faults", 4), registry);
}

// The throughput scenario measures wall-clock, so its preset cannot be
// byte-pinned; pin everything except the timing cells instead: scenario
// name, meta, headers, the mode/threads columns, and the delivery-ratio
// cross-check note (which proves serial and parallel streams agreed).
TEST(ScenarioPresets, ThroughputPresetMatchesRegistryTwinStructurally) {
  const char* argv[] = {"test"};
  const util::CliArgs args(1, argv);
  util::ParallelExecutor executor(2);
  ScenarioContext ctx;
  ctx.args = &args;
  ctx.executor = &executor;
  const ResultSet from_registry = Lookup("netsim-throughput").Run(ctx);
  const ScenarioSpec spec = LoadScenarioSpecFile(
      std::string(WSN_SOURCE_DIR) + "/presets/netsim-throughput.json");
  const ResultSet from_preset = RunSpec(ctx, spec);

  const util::JsonValue a =
      util::ParseJson(from_registry.Render(OutputFormat::kJson));
  const util::JsonValue b =
      util::ParseJson(from_preset.Render(OutputFormat::kJson));
  EXPECT_EQ(*a.Find("scenario"), *b.Find("scenario"));
  EXPECT_EQ(*a.Find("meta"), *b.Find("meta"));
  EXPECT_EQ(*a.Find("notes"), *b.Find("notes"));
  const auto& ta = a.Find("tables")->Items()[0];
  const auto& tb = b.Find("tables")->Items()[0];
  EXPECT_EQ(*ta.Find("headers"), *tb.Find("headers"));
  const auto& rows_a = ta.Find("rows")->Items();
  const auto& rows_b = tb.Find("rows")->Items();
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (std::size_t i = 0; i < rows_a.size(); ++i) {
    // Columns 0..1 are mode and threads; the rest are timing.
    EXPECT_EQ(rows_a[i].Items()[0], rows_b[i].Items()[0]);
    EXPECT_EQ(rows_a[i].Items()[1], rows_b[i].Items()[1]);
  }
}

TEST(ScenarioRun, RejectsInvalidEffortFlags) {
  EXPECT_THROW(RunAll("table4", {"--replications=0"}, 1),
               util::InvalidArgument);
  EXPECT_THROW(RunAll("table4", {"--seed=-5"}, 1), util::InvalidArgument);
  EXPECT_THROW(RunAll("table4", {"--points=-2"}, 1), util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::scenario
