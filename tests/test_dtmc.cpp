// DTMC: validation, evolution, stationary and absorbing-chain analysis
// (gambler's ruin closed forms).
#include <gtest/gtest.h>

#include <cmath>

#include "markov/dtmc.hpp"
#include "util/error.hpp"

namespace wsn::markov {
namespace {

TEST(Dtmc, ValidateDetectsBadRows) {
  Dtmc chain(2);
  chain.SetProbability(0, 0, 0.5);
  chain.SetProbability(0, 1, 0.4);  // row 0 sums to .9
  chain.SetProbability(1, 0, 1.0);
  EXPECT_THROW(chain.Validate(), util::ModelError);
}

TEST(Dtmc, EvolveOneStep) {
  Dtmc chain(2);
  chain.SetProbability(0, 1, 1.0);
  chain.SetProbability(1, 0, 1.0);
  const auto p = chain.Evolve({1.0, 0.0}, 1);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  const auto p2 = chain.Evolve({1.0, 0.0}, 2);
  EXPECT_DOUBLE_EQ(p2[0], 1.0);
}

TEST(Dtmc, StationaryTwoState) {
  Dtmc chain(2);
  chain.SetProbability(0, 0, 0.5);
  chain.SetProbability(0, 1, 0.5);
  chain.SetProbability(1, 0, 0.25);
  chain.SetProbability(1, 1, 0.75);
  const auto pi = chain.StationaryDistribution();
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-12);
}

TEST(Dtmc, EvolveConvergesToStationary) {
  Dtmc chain(3);
  chain.SetProbability(0, 1, 0.6);
  chain.SetProbability(0, 0, 0.4);
  chain.SetProbability(1, 2, 0.7);
  chain.SetProbability(1, 1, 0.3);
  chain.SetProbability(2, 0, 0.9);
  chain.SetProbability(2, 2, 0.1);
  const auto pi = chain.StationaryDistribution();
  const auto p = chain.Evolve({1.0, 0.0, 0.0}, 500);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(p[i], pi[i], 1e-9);
}

// Gambler's ruin on {0..4} with fair coin: absorption at 4 from state i
// has probability i/4; expected steps i*(4-i).
TEST(Dtmc, GamblersRuinFairCoin) {
  const std::size_t n = 5;
  Dtmc chain(n);
  chain.SetProbability(0, 0, 1.0);
  chain.SetProbability(4, 4, 1.0);
  for (std::size_t i = 1; i < 4; ++i) {
    chain.SetProbability(i, i - 1, 0.5);
    chain.SetProbability(i, i + 1, 0.5);
  }
  const std::vector<bool> absorbing{true, false, false, false, true};
  const auto b = chain.AbsorptionProbabilities(absorbing);
  // Transient order: states 1, 2, 3; absorbing order: 0, 4.
  EXPECT_NEAR(b(0, 1), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(b(1, 1), 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(b(2, 1), 3.0 / 4.0, 1e-12);
  // Rows sum to one (eventual absorption is certain).
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(b(r, 0) + b(r, 1), 1.0, 1e-12);
  }
  const auto steps = chain.ExpectedStepsToAbsorption(absorbing);
  EXPECT_NEAR(steps[0], 3.0, 1e-12);  // 1*(4-1)
  EXPECT_NEAR(steps[1], 4.0, 1e-12);  // 2*(4-2)
  EXPECT_NEAR(steps[2], 3.0, 1e-12);  // 3*(4-3)
}

TEST(Dtmc, BiasedRuinMatchesClosedForm) {
  // p up = .6, q down = .4 on {0..3}; P(absorb at 3 | start 1) =
  // (1-(q/p)^1)/(1-(q/p)^3).
  Dtmc chain(4);
  chain.SetProbability(0, 0, 1.0);
  chain.SetProbability(3, 3, 1.0);
  for (std::size_t i = 1; i < 3; ++i) {
    chain.SetProbability(i, i + 1, 0.6);
    chain.SetProbability(i, i - 1, 0.4);
  }
  const std::vector<bool> absorbing{true, false, false, true};
  const auto b = chain.AbsorptionProbabilities(absorbing);
  const double r = 0.4 / 0.6;
  const double expected = (1.0 - r) / (1.0 - r * r * r);
  EXPECT_NEAR(b(0, 1), expected, 1e-12);
}

TEST(Dtmc, AddProbabilityAccumulates) {
  Dtmc chain(2);
  chain.AddProbability(0, 1, 0.5);
  chain.AddProbability(0, 1, 0.5);
  chain.SetProbability(1, 0, 1.0);
  chain.Validate();
}

TEST(Dtmc, InvalidUsageThrows) {
  Dtmc chain(2);
  EXPECT_THROW(chain.SetProbability(0, 3, 0.5), util::InvalidArgument);
  EXPECT_THROW(chain.SetProbability(0, 1, 1.5), util::InvalidArgument);
  EXPECT_THROW(chain.AbsorptionProbabilities({true}), util::InvalidArgument);
  EXPECT_THROW(chain.AbsorptionProbabilities({false, false}),
               util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::markov
