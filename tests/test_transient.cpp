// Transient CPU analysis: initial condition, probability conservation,
// convergence to the stationary limit, and energy accumulation.
#include <gtest/gtest.h>

#include <cmath>

#include "des/cpu_model.hpp"
#include "markov/transient.hpp"
#include "util/error.hpp"

namespace wsn::markov {
namespace {

TransientCpuAnalysis Default(std::size_t stages = 8) {
  return TransientCpuAnalysis(1.0, 10.0, 0.2, 0.1, stages);
}

TEST(Transient, StartsInStandby) {
  const auto a = Default();
  const TransientPoint p = a.At(0.0);
  EXPECT_DOUBLE_EQ(p.p_standby, 1.0);
  EXPECT_DOUBLE_EQ(p.p_active, 0.0);
  EXPECT_DOUBLE_EQ(p.mean_jobs, 0.0);
}

TEST(Transient, SharesAlwaysSumToOne) {
  const auto a = Default();
  for (double t : {0.0, 0.01, 0.1, 0.5, 1.0, 5.0, 25.0}) {
    const TransientPoint p = a.At(t);
    EXPECT_NEAR(p.p_standby + p.p_powerup + p.p_idle + p.p_active, 1.0,
                1e-8)
        << "t=" << t;
    EXPECT_GE(p.p_standby, -1e-12);
    EXPECT_GE(p.p_active, -1e-12);
  }
}

TEST(Transient, ConvergesToStationaryLimit) {
  const auto a = Default();
  const StagesResult limit = a.StationaryLimit();
  const TransientPoint p = a.At(500.0);
  EXPECT_NEAR(p.p_standby, limit.p_standby, 1e-6);
  EXPECT_NEAR(p.p_idle, limit.p_idle, 1e-6);
  EXPECT_NEAR(p.p_active, limit.p_active, 1e-6);
  EXPECT_NEAR(p.mean_jobs, limit.mean_jobs, 1e-5);
}

TEST(Transient, ActivityRampsUpFromColdStart) {
  const auto a = Default();
  // Starting asleep, the active share grows from zero toward rho.
  const double early = a.At(0.05).p_active;
  const double mid = a.At(0.5).p_active;
  const double late = a.At(50.0).p_active;
  EXPECT_LT(early, mid);
  // A small overshoot past the stationary value is physical (the first
  // power-up releases a burst of queued work), so only bound it.
  EXPECT_LT(mid, late + 0.005);
  EXPECT_NEAR(late, 0.1, 0.02);
}

TEST(Transient, TrajectoryMatchesPointQueries) {
  const auto a = Default();
  const auto traj = a.Trajectory({0.1, 1.0, 10.0});
  ASSERT_EQ(traj.size(), 3u);
  EXPECT_NEAR(traj[1].p_idle, a.At(1.0).p_idle, 1e-12);
  EXPECT_DOUBLE_EQ(traj[2].time, 10.0);
}

TEST(Transient, CumulativeEnergyGrowsAndApproachesStationaryRate) {
  const auto a = Default();
  const double e10 = a.CumulativeEnergyJoules(10.0, 17, 192.442, 88, 193);
  const double e100 = a.CumulativeEnergyJoules(100.0, 17, 192.442, 88, 193);
  EXPECT_GT(e10, 0.0);
  EXPECT_GT(e100, e10);
  // Long-horizon slope ~ stationary average power.
  const StagesResult limit = a.StationaryLimit();
  const double stationary_mw = limit.p_standby * 17 +
                               limit.p_powerup * 192.442 +
                               limit.p_idle * 88 + limit.p_active * 193;
  const double slope_mw =
      (a.CumulativeEnergyJoules(220.0, 17, 192.442, 88, 193) -
       a.CumulativeEnergyJoules(200.0, 17, 192.442, 88, 193)) /
      20.0 * 1000.0;
  EXPECT_NEAR(slope_mw, stationary_mw, 0.05 * stationary_mw);
}

TEST(Transient, MatchesShortHorizonSimulation) {
  // DES replications measured over [0, 2] s from the same cold start.
  const double horizon = 2.0;
  des::CpuModelConfig cfg;
  cfg.arrival_rate = 1.0;
  cfg.mean_service_time = 0.1;
  cfg.power_down_threshold = 0.2;
  cfg.power_up_delay = 0.1;
  cfg.sim_time = horizon;
  const des::CpuEnsembleResult agg = des::RunCpuEnsemble(cfg, 21, 4000, 0);

  // Average share over [0, horizon] from the transient trajectory.
  const TransientCpuAnalysis a(1.0, 10.0, 0.2, 0.1, 16);
  double mean_standby = 0.0, mean_active = 0.0;
  const std::size_t grid = 80;
  for (std::size_t i = 0; i < grid; ++i) {
    const double t = horizon * (static_cast<double>(i) + 0.5) /
                     static_cast<double>(grid);
    const TransientPoint p = a.At(t);
    mean_standby += p.p_standby;
    mean_active += p.p_active;
  }
  mean_standby /= static_cast<double>(grid);
  mean_active /= static_cast<double>(grid);

  EXPECT_NEAR(agg.standby.Mean(), mean_standby, 0.01);
  EXPECT_NEAR(agg.active.Mean(), mean_active, 0.01);
}

TEST(Transient, DomainChecks) {
  const auto a = Default();
  EXPECT_THROW(a.At(-1.0), util::InvalidArgument);
  EXPECT_THROW(a.CumulativeEnergyJoules(-1.0, 1, 1, 1, 1),
               util::InvalidArgument);
  EXPECT_THROW(a.CumulativeEnergyJoules(1.0, 1, 1, 1, 1, 1),
               util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::markov
