// Packet-lifecycle trace sink: config validation, node/time filtering,
// the truncation cap, JSONL shape and end-to-end determinism of a traced
// netsim run (the golden-trace anchor) across replication thread counts.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/models.hpp"
#include "netsim/netsim.hpp"
#include "netsim/replication.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace wsn::obs {
namespace {

TraceEvent Event(double t, std::size_t node) {
  TraceEvent e;
  e.t = t;
  e.event = "tx";
  e.node = node;
  return e;
}

TEST(TraceConfig, ValidateRejectsDegenerateSettings) {
  TraceConfig bad_window;
  bad_window.from_s = 10.0;
  bad_window.until_s = 10.0;
  EXPECT_THROW(bad_window.Validate(), util::InvalidArgument);

  TraceConfig no_room;
  no_room.max_events = 0;
  EXPECT_THROW(no_room.Validate(), util::InvalidArgument);
}

TEST(TraceSink, FiltersByNodeSet) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.nodes = {7, 3, 7};  // unsorted with a duplicate: sink normalizes
  TraceSink sink(cfg);
  EXPECT_TRUE(sink.Accepts(1.0, 3));
  EXPECT_TRUE(sink.Accepts(1.0, 7));
  EXPECT_FALSE(sink.Accepts(1.0, 5));
}

TEST(TraceSink, FiltersByTimeWindow) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.from_s = 10.0;
  cfg.until_s = 20.0;
  TraceSink sink(cfg);
  EXPECT_FALSE(sink.Accepts(9.99, 0));
  EXPECT_TRUE(sink.Accepts(10.0, 0));   // from is inclusive
  EXPECT_FALSE(sink.Accepts(20.0, 0));  // until is exclusive
}

TEST(TraceSink, CapSetsTruncatedOnlyWhenAnAcceptedEventIsDropped) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.max_events = 2;
  cfg.until_s = 100.0;
  TraceSink sink(cfg);
  sink.Record(Event(1.0, 0));
  sink.Record(Event(200.0, 0));  // filtered out: does not count or truncate
  sink.Record(Event(2.0, 0));
  EXPECT_EQ(sink.Events(), 2u);
  EXPECT_FALSE(sink.Truncated());
  sink.Record(Event(3.0, 0));  // accepted but over the cap
  EXPECT_EQ(sink.Events(), 2u);
  EXPECT_TRUE(sink.Truncated());
}

TEST(TraceSink, EmitsOneJsonObjectPerLine) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.replication = 4;
  TraceSink sink(cfg);
  TraceEvent e = Event(0.5, 2);
  e.packet = 9;
  e.has_packet = true;
  e.cause = "no-route";
  sink.Record(e);

  const std::string text = sink.Text();
  std::istringstream lines(text);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"rep\":4"), std::string::npos);
  EXPECT_NE(line.find("\"ev\":\"tx\""), std::string::npos);
  EXPECT_NE(line.find("\"node\":2"), std::string::npos);
  EXPECT_NE(line.find("\"pkt\":9"), std::string::npos);
  EXPECT_NE(line.find("\"cause\":\"no-route\""), std::string::npos);
  EXPECT_FALSE(std::getline(lines, line)) << "exactly one line expected";
}

// ---------------------------------------------------------------- netsim

netsim::NetSimConfig TinyChain() {
  netsim::NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = 15.0;
  cfg.network.node.cpu.service_rate = 150.0;
  cfg.network.node.sample_bits = 2048;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = 0.3;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 60.0;
  cfg.positions = {{50.0, 0.0}, {100.0, 0.0}, {150.0, 0.0}};
  cfg.horizon_s = 20.0;
  return cfg;
}

// Golden-trace anchor: the same (config, seed) must yield the same trace
// text on every run, every line must carry the lifecycle schema, and a
// delivered packet must appear as gen -> enqueue -> tx -> deliver.
TEST(NetSimTrace, DeterministicLifecycleTrace) {
  netsim::NetSimConfig cfg = TinyChain();
  cfg.obs.trace.enabled = true;
  const core::MarkovCpuModel model;

  const auto run = [&] {
    netsim::NetworkSimulator sim(cfg, netsim::CpuAveragePowerMw(cfg, model),
                                 util::Rng(3));
    return sim.Run().trace;
  };
  const std::string first = run();
  EXPECT_EQ(first, run());  // byte-identical on a re-run
  ASSERT_FALSE(first.empty());

  std::istringstream lines(first);
  std::string line;
  bool saw_gen = false, saw_tx = false, saw_deliver = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"rep\":0"), std::string::npos);
    EXPECT_NE(line.find("\"t\":"), std::string::npos);
    saw_gen = saw_gen || line.find("\"ev\":\"gen\"") != std::string::npos;
    saw_tx = saw_tx || line.find("\"ev\":\"tx\"") != std::string::npos;
    saw_deliver =
        saw_deliver || line.find("\"ev\":\"deliver\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_gen);
  EXPECT_TRUE(saw_tx);
  EXPECT_TRUE(saw_deliver);
}

// The concatenated multi-replication trace must not depend on how many
// threads ran the replications, and each replication stamps its index.
TEST(NetSimTrace, ConcatenatedTraceIndependentOfThreadCount) {
  netsim::NetSimConfig cfg = TinyChain();
  cfg.obs.trace.enabled = true;
  cfg.obs.trace.until_s = 5.0;  // keep the buffers small
  const core::MarkovCpuModel model;

  netsim::ReplicationConfig serial;
  serial.replications = 4;
  serial.seed = 11;
  serial.threads = 1;
  netsim::ReplicationConfig parallel = serial;
  parallel.threads = 4;

  const netsim::ReplicationSummary rs = RunReplications(cfg, model, serial);
  const netsim::ReplicationSummary rp = RunReplications(cfg, model, parallel);
  ASSERT_FALSE(rs.trace.empty());
  EXPECT_EQ(rs.trace, rp.trace);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_NE(rs.trace.find("\"rep\":" + std::to_string(r)),
              std::string::npos);
  }
}

}  // namespace
}  // namespace wsn::obs
