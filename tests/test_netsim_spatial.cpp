// Spatial-grid neighbour index + incremental routing repair (ISSUE 5):
// grid candidate completeness on boundary/degenerate geometry, and the
// randomized equivalence suite pinning RepairAfterDeath against the full
// (and the faithful legacy all-pairs) recompute over random kill
// sequences — several sizes, multi-sink, and end-to-end through the
// simulator including clustered mode.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/models.hpp"
#include "netsim/netsim.hpp"
#include "netsim/routing.hpp"
#include "netsim/spatial.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wsn/network.hpp"

namespace wsn::netsim {
namespace {

std::vector<std::size_t> Candidates(const SpatialGrid& grid,
                                    node::Position p) {
  std::vector<std::size_t> out;
  grid.ForEachCandidate(p, [&](std::size_t j) { out.push_back(j); });
  return out;
}

bool Contains(const std::vector<std::size_t>& xs, std::size_t x) {
  for (std::size_t v : xs) {
    if (v == x) return true;
  }
  return false;
}

TEST(SpatialGrid, CandidateSetsCoverEveryInRangeNodePair) {
  // Irregular cloud: every pair within the cell size must be mutually
  // visible through the 3x3 block, including pairs straddling cells.
  std::vector<node::Position> pos;
  util::Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    pos.push_back({util::UniformDouble(rng) * 500.0,
                   util::UniformDouble(rng) * 300.0});
  }
  const double range = 60.0;
  const SpatialGrid grid(pos, range);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const std::vector<std::size_t> cand = Candidates(grid, pos[i]);
    for (std::size_t j = 0; j < pos.size(); ++j) {
      if (node::Distance2(pos[i], pos[j]) <= range * range) {
        EXPECT_TRUE(Contains(cand, j))
            << "node " << j << " in range of " << i << " but not a candidate";
      }
    }
  }
}

TEST(SpatialGrid, NodeExactlyOnCellBoundaryIsVisibleFromBothSides) {
  // Node 1 sits exactly on the x = 100 cell boundary (cell size 100).
  const std::vector<node::Position> pos{{50.0, 50.0},
                                        {100.0, 50.0},
                                        {150.0, 50.0},
                                        {350.0, 50.0}};
  const SpatialGrid grid(pos, 100.0);
  EXPECT_TRUE(Contains(Candidates(grid, {50.0, 50.0}), 1));
  EXPECT_TRUE(Contains(Candidates(grid, {150.0, 50.0}), 1));
  // The boundary node itself must see neighbours in the cells on both
  // sides of its boundary.
  const std::vector<std::size_t> own = Candidates(grid, pos[1]);
  EXPECT_TRUE(Contains(own, 0));
  EXPECT_TRUE(Contains(own, 2));
  EXPECT_FALSE(Contains(own, 3));  // two cells away, correctly pruned
}

TEST(SpatialGrid, QueryOutsideTheBoundingBoxClampsToBoundaryCells) {
  // A sink far outside the deployment must still see the boundary nodes
  // (the query clamps; the caller's exact range test decides membership).
  const std::vector<node::Position> pos{{10.0, 10.0}, {20.0, 10.0}};
  const SpatialGrid grid(pos, 50.0);
  EXPECT_TRUE(Contains(Candidates(grid, {-500.0, -500.0}), 0));
  EXPECT_TRUE(Contains(Candidates(grid, {1000.0, 1000.0}), 1));
}

TEST(SpatialGrid, SingleNodeAndCoincidentNodesWork) {
  const SpatialGrid one({{5.0, 5.0}}, 10.0);
  EXPECT_EQ(one.Size(), 1u);
  EXPECT_EQ(Candidates(one, {5.0, 5.0}).size(), 1u);

  const SpatialGrid same({{3.0, 3.0}, {3.0, 3.0}, {3.0, 3.0}}, 1.0);
  EXPECT_EQ(Candidates(same, {3.0, 3.0}).size(), 3u);
}

TEST(SpatialGrid, SparseDeploymentKeepsTheCellTableBounded) {
  // Two nodes a million meters apart with a 1 m cell request: the grid
  // must grow its cell size instead of allocating 10^12 cells.
  const std::vector<node::Position> pos{{0.0, 0.0}, {1.0e6, 1.0e6}};
  const SpatialGrid grid(pos, 1.0);
  EXPECT_GE(grid.CellSize(), 1.0);
  EXPECT_LE(grid.CellsX() * grid.CellsY(), 4u * pos.size() + 64u);
  // Far apart: neither is a candidate of the other.
  EXPECT_FALSE(Contains(Candidates(grid, {0.0, 0.0}), 1));

  // Extent/cell ratios past 2^32 used to overflow the size_t cell
  // product and corrupt the CSR fill; the budget test runs in double.
  const SpatialGrid huge({{0.0, 0.0}, {4294967295.0, 4294967295.0}}, 1.0);
  EXPECT_LE(huge.CellsX() * huge.CellsY(), 4u * 2u + 64u);
  EXPECT_TRUE(Contains(Candidates(huge, {0.0, 0.0}), 0));
}

TEST(SpatialGrid, RejectsInvalidInput) {
  EXPECT_THROW(SpatialGrid({}, 10.0), util::InvalidArgument);
  EXPECT_THROW(SpatialGrid({{0.0, 0.0}}, 0.0), util::InvalidArgument);
  EXPECT_THROW(SpatialGrid({{0.0, 0.0}}, -5.0), util::InvalidArgument);
}

// ---------------------------------------------------------------------
// Ring-expanding queries (ISSUE 7): ForEachInRadius and NearestWhere.

std::size_t BruteNearest(const std::vector<node::Position>& pos,
                         const std::vector<bool>& usable, node::Position p) {
  std::size_t best = SpatialGrid::kNone;
  double best2 = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < pos.size(); ++j) {
    if (!usable[j]) continue;
    const double d2 = node::Distance2(p, pos[j]);
    if (d2 < best2) {  // strict: ties keep the lowest index
      best2 = d2;
      best = j;
    }
  }
  return best;
}

TEST(SpatialGridRings, RadiusQueryCoversEveryInRangeNode) {
  // Radius queries must be supersets of the exact disc for radii both
  // below and well above the cell size (multi-ring reach).
  util::Rng rng(7);
  std::vector<node::Position> pos;
  for (int i = 0; i < 150; ++i) {
    pos.push_back({util::UniformDouble(rng) * 400.0,
                   util::UniformDouble(rng) * 250.0});
  }
  const SpatialGrid grid(pos, 40.0);
  for (const double radius : {10.0, 40.0, 95.0, 1000.0}) {
    for (std::size_t i = 0; i < pos.size(); i += 7) {
      std::vector<std::size_t> seen;
      grid.ForEachInRadius(pos[i], radius,
                           [&](std::size_t j) { seen.push_back(j); });
      for (std::size_t j = 0; j < pos.size(); ++j) {
        if (node::Distance2(pos[i], pos[j]) <= radius * radius) {
          EXPECT_TRUE(Contains(seen, j))
              << "node " << j << " within " << radius << " m of " << i
              << " but not visited";
        }
      }
    }
  }
}

TEST(SpatialGridRings, RadiusQueryClampsOffGridPoints) {
  const std::vector<node::Position> pos{{10.0, 10.0}, {200.0, 10.0}};
  const SpatialGrid grid(pos, 25.0);
  std::vector<std::size_t> seen;
  grid.ForEachInRadius({-300.0, -300.0}, 500.0,
                       [&](std::size_t j) { seen.push_back(j); });
  EXPECT_TRUE(Contains(seen, 0));
  EXPECT_TRUE(Contains(seen, 1));
}

TEST(SpatialGridRings, NearestMatchesBruteForceOnRandomClouds) {
  // The exactness + lowest-index-tie-break contract, checked against a
  // brute-force scan over random clouds, random exclusion masks, and
  // query points inside, between and far outside the bounding box.  The
  // sparse cell size leaves most cells empty, so the expanding search
  // crosses many empty rings before it can stop.
  util::Rng rng(2008);
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t n = 1 + (rng() % 50);
    std::vector<node::Position> pos;
    for (std::size_t i = 0; i < n; ++i) {
      pos.push_back({util::UniformDouble(rng) * 300.0,
                     util::UniformDouble(rng) * 300.0});
    }
    const double cell = 5.0 + util::UniformDouble(rng) * 60.0;
    const SpatialGrid grid(pos, cell);
    std::vector<bool> usable(n, true);
    for (std::size_t i = 0; i < n; ++i) usable[i] = (rng() % 4) != 0;
    for (int q = 0; q < 10; ++q) {
      const node::Position p{util::UniformDouble(rng) * 600.0 - 150.0,
                             util::UniformDouble(rng) * 600.0 - 150.0};
      const auto pd2 = [&](std::size_t j) {
        return usable[j] ? node::Distance2(p, pos[j])
                         : std::numeric_limits<double>::infinity();
      };
      EXPECT_EQ(grid.NearestWhere(p, pd2), BruteNearest(pos, usable, p))
          << "rep " << rep << " query " << q;
    }
  }
}

TEST(SpatialGridRings, NearestTiesBreakTowardLowestIndex) {
  // Two candidates exactly equidistant from the query point, placed in
  // different cells so ring order alone cannot decide.
  const std::vector<node::Position> pos{{100.0, 50.0}, {0.0, 50.0}};
  const SpatialGrid grid(pos, 20.0);
  const node::Position q{50.0, 50.0};
  const std::size_t got = grid.NearestWhere(
      q, [&](std::size_t j) { return node::Distance2(q, pos[j]); });
  EXPECT_EQ(got, 0u);
}

TEST(SpatialGridRings, NearestOnSingleOccupantAndAllExcludedGrids) {
  const SpatialGrid one({{5.0, 5.0}}, 10.0);
  const node::Position far_q{900.0, -900.0};
  EXPECT_EQ(one.NearestWhere(far_q,
                             [&](std::size_t) {
                               return node::Distance2(far_q, {5.0, 5.0});
                             }),
            0u);
  // Every candidate excluded (the all-heads-dead case) -> kNone.
  EXPECT_EQ(one.NearestWhere(far_q,
                             [](std::size_t) {
                               return std::numeric_limits<double>::infinity();
                             }),
            SpatialGrid::kNone);
}

TEST(Distance2, MatchesSquaredDistance) {
  const node::Position a{3.0, 4.0};
  const node::Position b{0.0, 0.0};
  EXPECT_DOUBLE_EQ(node::Distance2(a, b), 25.0);
  EXPECT_DOUBLE_EQ(node::Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(node::Distance(a, b) * node::Distance(a, b),
                   node::Distance2(a, b));
}

// ---------------------------------------------------------------------
// Routing-table equivalence machinery.

void ExpectTablesEqual(const RoutingTable& a, const RoutingTable& b,
                       const char* what) {
  ASSERT_EQ(a.Size(), b.Size());
  for (std::size_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(a.NextHop(i), b.NextHop(i)) << what << ": node " << i;
    EXPECT_DOUBLE_EQ(a.HopDistance(i), b.HopDistance(i))
        << what << ": node " << i;
    EXPECT_DOUBLE_EQ(a.DistanceToSink(i), b.DistanceToSink(i))
        << what << ": node " << i;
  }
}

std::vector<node::Position> RandomDeployment(util::Rng& rng, std::size_t n,
                                             double extent) {
  std::vector<node::Position> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back({util::UniformDouble(rng) * extent,
                   util::UniformDouble(rng) * extent});
  }
  return pos;
}

// The randomized equivalence suite: 200 random kill sequences across
// several sizes and sink counts.  After every kill, the incrementally
// repaired table must match both the grid-accelerated full recompute
// and the faithful legacy all-pairs recompute, route for route.
TEST(RoutingEquivalence, IncrementalRepairMatchesFullRecomputeOverKills) {
  util::Rng rng(2008);
  const std::size_t kSequences = 200;
  for (std::size_t seq = 0; seq < kSequences; ++seq) {
    const std::size_t n = 2 + (rng() % 60);
    const double extent = 100.0 + util::UniformDouble(rng) * 200.0;
    const double hop = 30.0 + util::UniformDouble(rng) * 40.0;
    const std::vector<node::Position> pos = RandomDeployment(rng, n, extent);

    std::vector<node::Position> sinks{{0.0, 0.0}};
    if (seq % 3 == 1) sinks.push_back({extent, extent});
    if (seq % 3 == 2) {
      sinks.push_back({extent, 0.0});
      sinks.push_back({-50.0, extent * 2.0});  // sink outside the grid
    }

    RoutingTable incremental(sinks, hop, pos);
    RoutingTable full(sinks, hop, pos);
    RoutingTable legacy(sinks, hop, pos);
    ExpectTablesEqual(incremental, legacy, "all-alive construction");

    std::vector<bool> alive(n, true);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    // Fisher-Yates for a random kill order; kill about half the nodes.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng() % i]);
    }
    const std::size_t kills = 1 + n / 2;
    for (std::size_t k = 0; k < kills; ++k) {
      const std::size_t dead = order[k];
      alive[dead] = false;
      incremental.RepairAfterDeath(dead, alive);
      full.Recompute(alive);
      legacy.RecomputeLegacy(alive);
      ExpectTablesEqual(incremental, full, "incremental vs full");
      ExpectTablesEqual(incremental, legacy, "incremental vs legacy");
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << "divergence in sequence " << seq << " after kill " << k;
      }
    }
  }
}

TEST(RoutingEquivalence, SingleNodeTable) {
  // N=1 grid-index edge case: in sink range -> kSink, out of range ->
  // kNoRoute, and a death repairs to kNoRoute without touching anyone.
  RoutingTable near({0.0, 0.0}, 60.0, {{30.0, 0.0}});
  EXPECT_EQ(near.NextHop(0), RoutingTable::kSink);

  RoutingTable far({0.0, 0.0}, 60.0, {{300.0, 0.0}});
  EXPECT_EQ(far.NextHop(0), RoutingTable::kNoRoute);

  std::vector<bool> alive{false};
  near.RepairAfterDeath(0, alive);
  EXPECT_EQ(near.NextHop(0), RoutingTable::kNoRoute);
  EXPECT_DOUBLE_EQ(near.HopDistance(0), 0.0);
}

// All-alive cross-validation against the static estimator: the greedy
// rule (strictly-closer, lowest index on ties) must be bit-identical to
// wsn::node::Network::NextHop, with only the documented sentinel
// difference (kSink / kNoRoute both map to "own index" there).
TEST(RoutingEquivalence, MatchesNetworkNextHopAllAlive) {
  util::Rng rng(77);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 2 + (rng() % 80);
    const double extent = 150.0 + util::UniformDouble(rng) * 150.0;
    const double hop = 35.0 + util::UniformDouble(rng) * 30.0;
    const std::vector<node::Position> pos = RandomDeployment(rng, n, extent);

    node::NetworkConfig net_cfg;
    net_cfg.sink = {0.0, 0.0};
    net_cfg.max_hop_m = hop;
    const node::Network network(net_cfg, pos);
    const RoutingTable table(net_cfg.sink, hop, pos);

    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t expected = network.NextHop(i);
      const std::size_t got = table.NextHop(i);
      if (got == RoutingTable::kSink) {
        EXPECT_EQ(expected, i);
        EXPECT_LE(table.DistanceToSink(i), hop);
      } else if (got == RoutingTable::kNoRoute) {
        EXPECT_EQ(expected, i);  // the estimator's direct-to-sink long shot
        EXPECT_GT(table.DistanceToSink(i), hop);
      } else {
        EXPECT_EQ(expected, got) << "node " << i;
        EXPECT_DOUBLE_EQ(table.HopDistance(i),
                         node::Distance(pos[i], pos[got]));
      }
    }
  }
}

// ---------------------------------------------------------------------
// End-to-end: the simulator must produce identical replications under
// all three routing-update modes, flat and (trivially, the flag is
// flat-only) clustered.

NetSimConfig ScaleSimConfig(std::size_t cols, std::size_t rows) {
  NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = 4.0;
  cfg.network.node.cpu.service_rate = 40.0;
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = 0.02;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 40.0;
  cfg.positions = node::MakeGrid(cols, rows, 15.0);
  cfg.horizon_s = 1500.0;
  return cfg;
}

NetSimReport RunWithMode(NetSimConfig cfg, RoutingUpdateMode mode,
                         std::uint64_t seed) {
  cfg.routing_update = mode;
  const core::MarkovCpuModel model;
  NetworkSimulator sim(cfg, CpuAveragePowerMw(cfg, model),
                       util::Rng(seed).MakeStream(0));
  return sim.Run();
}

void ExpectReportsEqual(const NetSimReport& a, const NetSimReport& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.packets.generated, b.packets.generated);
  EXPECT_EQ(a.packets.delivered, b.packets.delivered);
  EXPECT_DOUBLE_EQ(a.first_death_s, b.first_death_s);
  EXPECT_EQ(a.first_dead_node, b.first_dead_node);
  EXPECT_DOUBLE_EQ(a.partition_s, b.partition_s);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.nodes[i].remaining_j, b.nodes[i].remaining_j) << i;
    EXPECT_EQ(a.nodes[i].alive, b.nodes[i].alive) << i;
    EXPECT_EQ(a.nodes[i].delivered, b.nodes[i].delivered) << i;
  }
}

TEST(RoutingEquivalence, SimulatorIdenticalAcrossUpdateModesFlat) {
  const NetSimConfig cfg = ScaleSimConfig(8, 6);
  const NetSimReport inc =
      RunWithMode(cfg, RoutingUpdateMode::kIncremental, 555);
  const NetSimReport full = RunWithMode(cfg, RoutingUpdateMode::kFull, 555);
  const NetSimReport legacy =
      RunWithMode(cfg, RoutingUpdateMode::kLegacy, 555);
  EXPECT_GT(inc.routing_repairs, 0u) << "test must exercise repairs";
  ExpectReportsEqual(inc, full);
  ExpectReportsEqual(inc, legacy);
}

TEST(RoutingEquivalence, SimulatorIdenticalAcrossUpdateModesMultiSink) {
  NetSimConfig cfg = ScaleSimConfig(8, 6);
  cfg.sinks = {{0.0, 0.0}, {135.0, 105.0}};
  const NetSimReport inc =
      RunWithMode(cfg, RoutingUpdateMode::kIncremental, 808);
  const NetSimReport legacy =
      RunWithMode(cfg, RoutingUpdateMode::kLegacy, 808);
  EXPECT_GT(inc.routing_repairs, 0u);
  ExpectReportsEqual(inc, legacy);
}

TEST(RoutingEquivalence, SimulatorIdenticalAcrossUpdateModesClustered) {
  // Clustered routing does not consult the flat table after deaths, but
  // the member-death fast path must keep reports identical to the full
  // rebuild semantics the flag-irrelevant modes share.
  NetSimConfig cfg = ScaleSimConfig(7, 7);
  cfg.cluster.protocol = ClusterProtocolKind::kLeach;
  cfg.cluster.round_s = 100.0;
  cfg.cluster.aggregation = 4;
  const NetSimReport inc =
      RunWithMode(cfg, RoutingUpdateMode::kIncremental, 99);
  const NetSimReport legacy = RunWithMode(cfg, RoutingUpdateMode::kLegacy, 99);
  EXPECT_GT(inc.routing_repairs, 0u);
  ExpectReportsEqual(inc, legacy);
}

}  // namespace
}  // namespace wsn::netsim
