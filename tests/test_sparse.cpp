// CSR sparse matrix: COO conversion (incl. duplicate merging), matvec
// equivalence with dense, lookup and transpose application.
#include <gtest/gtest.h>

#include "linalg/sparse.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wsn::linalg {
namespace {

TEST(CooBuilder, SkipsExplicitZeros) {
  CooBuilder coo(2, 2);
  coo.Add(0, 0, 0.0);
  coo.Add(1, 1, 2.0);
  EXPECT_EQ(coo.EntryCount(), 1u);
}

TEST(CooBuilder, RangeChecked) {
  CooBuilder coo(2, 2);
  EXPECT_THROW(coo.Add(2, 0, 1.0), util::InvalidArgument);
}

TEST(CsrMatrix, FromCooBasic) {
  CooBuilder coo(3, 3);
  coo.Add(0, 1, 2.0);
  coo.Add(2, 0, 5.0);
  coo.Add(1, 1, -1.0);
  const CsrMatrix csr(coo);
  EXPECT_EQ(csr.NonZeros(), 3u);
  EXPECT_DOUBLE_EQ(csr.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(csr.At(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(csr.At(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(csr.At(0, 0), 0.0);
}

TEST(CsrMatrix, DuplicatesAreSummed) {
  CooBuilder coo(2, 2);
  coo.Add(0, 0, 1.5);
  coo.Add(0, 0, 2.5);
  coo.Add(1, 0, 1.0);
  const CsrMatrix csr(coo);
  EXPECT_EQ(csr.NonZeros(), 2u);
  EXPECT_DOUBLE_EQ(csr.At(0, 0), 4.0);
}

TEST(CsrMatrix, EmptyRowsHandled) {
  CooBuilder coo(4, 4);
  coo.Add(0, 0, 1.0);
  coo.Add(3, 3, 2.0);  // rows 1, 2 empty
  const CsrMatrix csr(coo);
  std::size_t count = 0;
  csr.Row(1, &count);
  EXPECT_EQ(count, 0u);
  csr.Row(3, &count);
  EXPECT_EQ(count, 1u);
}

TEST(CsrMatrix, MatvecMatchesDenseOnRandomMatrix) {
  util::Rng rng(77);
  const std::size_t n = 30;
  Matrix dense(n, n, 0.0);
  CooBuilder coo(n, n);
  for (int k = 0; k < 150; ++k) {
    const auto r = util::UniformBelow(rng, n);
    const auto c = util::UniformBelow(rng, n);
    const double v = util::UniformDouble(rng) * 4.0 - 2.0;
    dense(r, c) += v;
    coo.Add(r, c, v);
  }
  const CsrMatrix csr(coo);
  std::vector<double> x(n);
  for (auto& xi : x) xi = util::UniformDouble(rng);

  const auto yd = dense.Apply(x);
  const auto ys = csr.Apply(x);
  const auto ydt = dense.ApplyTransposed(x);
  const auto yst = csr.ApplyTransposed(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(yd[i], ys[i], 1e-12);
    EXPECT_NEAR(ydt[i], yst[i], 1e-12);
  }
}

TEST(CsrMatrix, FromDenseAndBack) {
  const Matrix dense{{1.0, 0.0, 2.0}, {0.0, 0.0, 0.0}, {3.0, 0.0, 4.0}};
  const CsrMatrix csr(dense);
  EXPECT_EQ(csr.NonZeros(), 4u);
  const Matrix round = csr.ToDense();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(round(r, c), dense(r, c));
    }
  }
}

TEST(CsrMatrix, ApplyDimensionChecked) {
  CooBuilder coo(2, 3);
  coo.Add(0, 0, 1.0);
  const CsrMatrix csr(coo);
  EXPECT_THROW(csr.Apply({1.0, 2.0}), util::InvalidArgument);
  EXPECT_THROW(csr.ApplyTransposed({1.0, 2.0, 3.0}), util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::linalg
