// Incremental uniformization solver: checkpointed stepping must agree
// with fresh single-shot solves, conserve probability, and police its
// domain (monotone time, valid epsilon, dimension match).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "markov/ctmc.hpp"
#include "markov/stages.hpp"
#include "markov/transient.hpp"
#include "markov/transient_solver.hpp"
#include "util/error.hpp"

namespace wsn::markov {
namespace {

// The paper's CPU chain (Erlang-6 stage expansion) — a realistic sparse
// generator with rates spanning two orders of magnitude.
Ctmc PaperChain(std::size_t* standby_state) {
  const StagesCpuModel model(1.0, 10.0, 0.2, 0.1, 6, 6, 0);
  *standby_state = model.StandbyState();
  return model.BuildChain();
}

std::vector<double> PointMass(const Ctmc& chain, std::size_t state) {
  std::vector<double> p0(chain.StateCount(), 0.0);
  p0[state] = 1.0;
  return p0;
}

TEST(TransientSolver, IncrementalMatchesSingleShotAtEveryCheckpoint) {
  std::size_t standby = 0;
  const Ctmc chain = PaperChain(&standby);
  const std::vector<double> p0 = PointMass(chain, standby);
  const double eps = 1e-13;

  TransientSolver solver(chain, p0, eps);
  for (double t : {0.05, 0.2, 0.7, 1.5, 3.0, 6.0, 12.0, 20.0}) {
    const std::vector<double>& incremental = solver.AdvanceTo(t);
    const std::vector<double> single_shot =
        chain.TransientDistribution(p0, t, eps);
    ASSERT_EQ(incremental.size(), single_shot.size());
    for (std::size_t i = 0; i < incremental.size(); ++i) {
      EXPECT_NEAR(incremental[i], single_shot[i], 1e-12)
          << "state " << i << " at t=" << t;
    }
  }
}

TEST(TransientSolver, ConservesProbabilityAtEveryCheckpoint) {
  std::size_t standby = 0;
  const Ctmc chain = PaperChain(&standby);
  TransientSolver solver(chain, PointMass(chain, standby));
  for (double t : {0.1, 0.5, 2.0, 10.0}) {
    const std::vector<double>& dist = solver.AdvanceTo(t);
    double sum = 0.0;
    for (double x : dist) {
      EXPECT_GE(x, -1e-12);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "t=" << t;
  }
}

TEST(TransientSolver, AdvanceToCurrentTimeIsIdentity) {
  std::size_t standby = 0;
  const Ctmc chain = PaperChain(&standby);
  TransientSolver solver(chain, PointMass(chain, standby));
  const std::vector<double> at_one = solver.AdvanceTo(1.0);
  const std::vector<double>& again = solver.AdvanceTo(1.0);
  EXPECT_EQ(at_one, again);
  EXPECT_DOUBLE_EQ(solver.CurrentTime(), 1.0);
}

TEST(TransientSolver, ResetRewindsToInitialCondition) {
  std::size_t standby = 0;
  const Ctmc chain = PaperChain(&standby);
  const std::vector<double> p0 = PointMass(chain, standby);
  TransientSolver solver(chain, p0);
  solver.AdvanceTo(5.0);
  solver.Reset();
  EXPECT_DOUBLE_EQ(solver.CurrentTime(), 0.0);
  EXPECT_EQ(solver.Current(), p0);
}

TEST(TransientSolver, ChainWithoutTransitionsIsConstant) {
  Ctmc chain(3);
  TransientSolver solver(chain, {0.25, 0.5, 0.25});
  EXPECT_DOUBLE_EQ(solver.UniformizationRate(), 0.0);
  const std::vector<double>& dist = solver.AdvanceTo(100.0);
  EXPECT_DOUBLE_EQ(dist[1], 0.5);
}

TEST(TransientSolver, DomainChecks) {
  std::size_t standby = 0;
  const Ctmc chain = PaperChain(&standby);
  const std::vector<double> p0 = PointMass(chain, standby);
  EXPECT_THROW(TransientSolver(chain, {0.5, 0.5}), util::InvalidArgument);
  EXPECT_THROW(TransientSolver(chain, p0, 0.0), util::InvalidArgument);
  EXPECT_THROW(TransientSolver(chain, p0, 1.0), util::InvalidArgument);

  TransientSolver solver(chain, p0);
  solver.AdvanceTo(2.0);
  EXPECT_THROW(solver.AdvanceTo(1.0), util::InvalidArgument);
  EXPECT_THROW(solver.AdvanceTo(-1.0), util::InvalidArgument);
}

TEST(TransientTrajectory, RejectsNegativeTimes) {
  const TransientCpuAnalysis a(1.0, 10.0, 0.2, 0.1, 4);
  EXPECT_THROW(a.Trajectory({0.5, -0.1, 1.0}), util::InvalidArgument);
}

TEST(TransientTrajectory, UnsortedInputEvaluatedCorrectlyInInputOrder) {
  const TransientCpuAnalysis a(1.0, 10.0, 0.2, 0.1, 4);
  const std::vector<double> unsorted = {5.0, 0.2, 1.0};
  const auto traj = a.Trajectory(unsorted);
  ASSERT_EQ(traj.size(), 3u);
  for (std::size_t i = 0; i < unsorted.size(); ++i) {
    EXPECT_DOUBLE_EQ(traj[i].time, unsorted[i]);
    const TransientPoint point = a.At(unsorted[i]);
    EXPECT_NEAR(traj[i].p_idle, point.p_idle, 1e-10) << "i=" << i;
    EXPECT_NEAR(traj[i].p_standby, point.p_standby, 1e-10) << "i=" << i;
  }
}

TEST(TransientTrajectory, CumulativeEnergyMatchesManualTrapezoid) {
  // The one-pass incremental integral must agree with the same trapezoid
  // assembled from independent point queries.
  const TransientCpuAnalysis a(1.0, 10.0, 0.2, 0.1, 4);
  const double t = 5.0;
  const std::size_t grid = 32;
  const double h = t / static_cast<double>(grid - 1);
  const auto power = [&](double at) {
    const TransientPoint p = a.At(at);
    return p.p_standby * 17.0 + p.p_powerup * 192.442 + p.p_idle * 88.0 +
           p.p_active * 193.0;
  };
  double manual = 0.5 * (power(0.0) + power(t));
  for (std::size_t i = 1; i + 1 < grid; ++i) {
    manual += power(h * static_cast<double>(i));
  }
  manual *= h / 1000.0;
  const double fast = a.CumulativeEnergyJoules(t, 17.0, 192.442, 88.0,
                                               193.0, grid);
  EXPECT_NEAR(fast, manual, 1e-9);
}

}  // namespace
}  // namespace wsn::markov
