// EDSPN token-game simulator: agreement with closed forms (ping-pong,
// M/M/1/K), exact deterministic cycles, enabling-memory semantics,
// vanishing-chain handling, deadlock detection, warm-up and ensembles.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/mm1.hpp"
#include "petri/simulation.hpp"
#include "petri/standard_nets.hpp"
#include "util/error.hpp"

namespace wsn::petri {
namespace {

TEST(SpnSimulation, PingPongSteadyState) {
  const double lambda = 2.0, mu = 3.0;
  const PetriNet net = MakePingPongNet(lambda, mu);
  SimulationConfig cfg;
  cfg.horizon = 20000.0;
  cfg.seed = 1;
  const SimulationResult r = SimulateSpn(net, cfg);
  // P(ping) = mu / (lambda + mu) = 0.6.
  EXPECT_NEAR(r.mean_tokens[net.PlaceByName("ping")], 0.6, 0.01);
  EXPECT_NEAR(r.mean_tokens[net.PlaceByName("pong")], 0.4, 0.01);
  // Cycle rate = 1 / (1/lambda + 1/mu) = 1.2 firings/s for each.
  EXPECT_NEAR(r.throughput[net.TransitionByName("go")], 1.2, 0.05);
  EXPECT_NEAR(r.throughput[net.TransitionByName("back")], 1.2, 0.05);
}

TEST(SpnSimulation, Mm1kMatchesClosedForm) {
  const double lambda = 0.8, mu = 1.0;
  const std::uint32_t k = 5;
  const PetriNet net = MakeMm1kNet(lambda, mu, k);
  SimulationConfig cfg;
  cfg.horizon = 50000.0;
  cfg.warmup = 1000.0;
  cfg.seed = 3;
  const SimulationResult r = SimulateSpn(net, cfg);

  const markov::Mm1k ref{lambda, mu, k};
  EXPECT_NEAR(r.mean_tokens[net.PlaceByName("queue")], ref.MeanJobs(), 0.05);
  EXPECT_NEAR(r.throughput[net.TransitionByName("serve")], ref.Throughput(),
              0.02);
  // Arrivals blocked at K: arrive throughput equals serve throughput in
  // steady state.
  EXPECT_NEAR(r.throughput[net.TransitionByName("arrive")],
              r.throughput[net.TransitionByName("serve")], 0.02);
}

TEST(SpnSimulation, DeterministicCycleExactShares) {
  // a --det(1)--> b --det(3)--> a: shares are exactly 1/4, 3/4.
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId ab = net.AddDeterministicTransition("ab", 1.0);
  const TransitionId ba = net.AddDeterministicTransition("ba", 3.0);
  net.AddInputArc(ab, a);
  net.AddOutputArc(ab, b);
  net.AddInputArc(ba, b);
  net.AddOutputArc(ba, a);

  SimulationConfig cfg;
  cfg.horizon = 4000.0;  // exactly 1000 cycles
  const SimulationResult r = SimulateSpn(net, cfg);
  EXPECT_NEAR(r.mean_tokens[a], 0.25, 1e-9);
  EXPECT_NEAR(r.mean_tokens[b], 0.75, 1e-9);
  EXPECT_EQ(r.firings[ab], 1000u);
}

TEST(SpnSimulation, EnablingMemoryResetsLoserTimer) {
  // Token cycles quickly through a det(0.2) self-recycling loop; a slow
  // det(1.0) competitor is continuously preempted and must never fire.
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const PlaceId trap = net.AddPlace("trap", 0);
  const TransitionId fast = net.AddDeterministicTransition("fast", 0.2);
  const TransitionId slow = net.AddDeterministicTransition("slow", 1.0);
  net.AddInputArc(fast, p);
  net.AddOutputArc(fast, p);  // instant recycle: p never stays empty
  net.AddInputArc(slow, p);
  net.AddOutputArc(slow, trap);

  SimulationConfig cfg;
  cfg.horizon = 1000.0;
  const SimulationResult r = SimulateSpn(net, cfg);
  // NOTE: `fast` fires and is re-enabled, resampling each time; `slow`
  // also stays enabled through the self-loop firing of `fast`...
  // With enabling memory the self-loop does NOT disable `slow` (p never
  // drops below 1 in the tangible markings), so `slow` eventually wins a
  // race only if its timer survives. Our semantics keep `slow` scheduled
  // because it remains enabled in every tangible marking, so it fires at
  // t = 1.0 and the token is trapped. This documents the "keeps timer
  // while continuously enabled" rule.
  EXPECT_EQ(r.firings[slow], 1u);
  EXPECT_EQ(r.mean_tokens[trap] > 0.99, true);
  EXPECT_EQ(r.firings[fast], 5u);  // fired at .2, .4, .6, .8, 1.0-eps side
  EXPECT_TRUE(r.deadlocked);
}

TEST(SpnSimulation, DisablingDiscardsTimer) {
  // det(1.5) "sleep" competes with exp arrivals that remove its input
  // token via an immediate path before it can ever fire.
  PetriNet net;
  const PlaceId armed = net.AddPlace("armed", 1);
  const PlaceId off = net.AddPlace("off", 0);
  const TransitionId sleep = net.AddDeterministicTransition("sleep", 1.5);
  net.AddInputArc(sleep, armed);
  net.AddOutputArc(sleep, off);
  // Interrupter: every ~0.5 s on average, take the token and put it back
  // (disable/re-enable cycle resets the sleep timer).
  const PlaceId tmp = net.AddPlace("tmp", 0);
  const TransitionId grab = net.AddExponentialTransition("grab", 2.0);
  net.AddInputArc(grab, armed);
  net.AddOutputArc(grab, tmp);
  const TransitionId put = net.AddImmediateTransition("put", 1);
  net.AddInputArc(put, tmp);
  net.AddOutputArc(put, armed);

  SimulationConfig cfg;
  cfg.horizon = 5000.0;
  cfg.seed = 5;
  const SimulationResult r = SimulateSpn(net, cfg);
  // P(Exp(2) > 1.5) = e^-3 ~ 0.0498: sleep rarely wins, but does
  // sometimes; since firing "sleep" deadlocks that branch... it actually
  // traps the token in `off`, after which nothing fires.
  // So we only check that the run either deadlocked with off=1 or sleep
  // never fired; and crucially the timer-reset means the sleep firing
  // time since reset is never observed below 1.5.
  EXPECT_LE(r.firings[sleep], 1u);
  if (r.firings[sleep] == 1u) {
    EXPECT_EQ(r.final_marking[off], 1u);
  }
}

TEST(SpnSimulation, ImmediateLivelockDetected) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId ab = net.AddImmediateTransition("ab", 1);
  const TransitionId ba = net.AddImmediateTransition("ba", 1);
  net.AddInputArc(ab, a);
  net.AddOutputArc(ab, b);
  net.AddInputArc(ba, b);
  net.AddOutputArc(ba, a);

  SimulationConfig cfg;
  cfg.max_vanishing_chain = 1000;
  EXPECT_THROW(SimulateSpn(net, cfg), util::ModelError);
}

TEST(SpnSimulation, DeadMarkingSetsDeadlockFlag) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId t = net.AddExponentialTransition("t", 5.0);
  net.AddInputArc(t, a);
  net.AddOutputArc(t, b);

  SimulationConfig cfg;
  cfg.horizon = 100.0;
  const SimulationResult r = SimulateSpn(net, cfg);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.final_marking[b], 1u);
  EXPECT_EQ(r.firings[t], 1u);
  // After the single firing, b holds the token for ~all of the horizon.
  EXPECT_GT(r.mean_tokens[b], 0.9);
}

TEST(SpnSimulation, WarmupWindowExcluded) {
  // Token starts in a, moves to b at exactly t=10 and stays.
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId t = net.AddDeterministicTransition("t", 10.0);
  net.AddInputArc(t, a);
  net.AddOutputArc(t, b);

  SimulationConfig cfg;
  cfg.horizon = 20.0;
  cfg.warmup = 10.0;
  const SimulationResult r = SimulateSpn(net, cfg);
  EXPECT_NEAR(r.mean_tokens[b], 1.0, 1e-9);
  EXPECT_NEAR(r.mean_tokens[a], 0.0, 1e-9);
  EXPECT_NEAR(r.observed_time, 10.0, 1e-12);
}

TEST(SpnSimulation, ReproducibleForSeed) {
  const PetriNet net = MakeMm1kNet(0.5, 1.0, 8);
  SimulationConfig cfg;
  cfg.horizon = 2000.0;
  cfg.seed = 42;
  const SimulationResult a = SimulateSpn(net, cfg);
  const SimulationResult b = SimulateSpn(net, cfg);
  EXPECT_DOUBLE_EQ(a.mean_tokens[0], b.mean_tokens[0]);
  EXPECT_EQ(a.total_firings, b.total_firings);
}

TEST(SpnSimulation, EnsembleAggregatesReplications) {
  const PetriNet net = MakePingPongNet(1.0, 1.0);
  SimulationConfig cfg;
  cfg.horizon = 500.0;
  const EnsembleResult agg = SimulateSpnEnsemble(net, cfg, 16, 4);
  EXPECT_EQ(agg.replications, 16u);
  EXPECT_EQ(agg.mean_tokens[0].Count(), 16u);
  EXPECT_NEAR(agg.mean_tokens[net.PlaceByName("ping")].Mean(), 0.5, 0.03);
  // Replications differ (independent streams).
  EXPECT_GT(agg.mean_tokens[0].StdDev(), 0.0);
}

TEST(SpnSimulation, ConfigValidation) {
  const PetriNet net = MakePingPongNet(1.0, 1.0);
  SimulationConfig cfg;
  cfg.horizon = 0.0;
  EXPECT_THROW(SimulateSpn(net, cfg), util::InvalidArgument);
  SimulationConfig cfg2;
  cfg2.warmup = cfg2.horizon + 1.0;
  EXPECT_THROW(SimulateSpn(net, cfg2), util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::petri
