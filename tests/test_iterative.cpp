// Iterative stationary solvers: agreement with the dense solver on random
// ergodic chains, convergence flags, and SOR parameter validation.
#include <gtest/gtest.h>

#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wsn::linalg {
namespace {

Matrix RandomGenerator(std::size_t n, std::uint64_t seed, double density) {
  util::Rng rng(seed);
  Matrix q(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // Ring edges always present so the chain is irreducible even at low
      // density.
      const bool ring = (j == (i + 1) % n);
      if (ring || util::UniformDouble(rng) < density) {
        q(i, j) = util::UniformDouble(rng) * 3.0 + 0.05;
        q(i, i) -= q(i, j);
      }
    }
  }
  return q;
}

class IterativeVsDense
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(IterativeVsDense, GaussSeidelMatchesLu) {
  const auto [n, density] = GetParam();
  const Matrix q = RandomGenerator(n, 40 + n, density);
  const auto exact = StationaryFromGenerator(q);
  const auto result = StationaryGaussSeidel(CsrMatrix(q));
  ASSERT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.solution[i], exact[i], 1e-8);
  }
}

TEST_P(IterativeVsDense, PowerMethodMatchesLu) {
  const auto [n, density] = GetParam();
  const Matrix q = RandomGenerator(n, 80 + n, density);
  const auto exact = StationaryFromGenerator(q);
  linalg::IterativeOptions opts;
  opts.tolerance = 1e-14;
  const auto result = StationaryPowerMethod(CsrMatrix(q), opts);
  ASSERT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.solution[i], exact[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChainShapes, IterativeVsDense,
    ::testing::Combine(::testing::Values<std::size_t>(3, 8, 20, 50),
                       ::testing::Values(0.1, 0.5, 0.9)));

TEST(GaussSeidel, SorRelaxationWithinRange) {
  const Matrix q = RandomGenerator(10, 7, 0.5);
  IterativeOptions opts;
  opts.relaxation = 1.2;
  const auto result = StationaryGaussSeidel(CsrMatrix(q), opts);
  EXPECT_TRUE(result.converged);
  opts.relaxation = 2.5;
  EXPECT_THROW(StationaryGaussSeidel(CsrMatrix(q), opts),
               util::InvalidArgument);
}

TEST(GaussSeidel, ReportsIterationCount) {
  const Matrix q = RandomGenerator(10, 3, 0.4);
  const auto result = StationaryGaussSeidel(CsrMatrix(q));
  EXPECT_GT(result.iterations, 0u);
  EXPECT_LT(result.residual, 1e-11);
}

TEST(GaussSeidel, SolutionIsProbabilityVector) {
  const Matrix q = RandomGenerator(25, 11, 0.3);
  const auto result = StationaryGaussSeidel(CsrMatrix(q));
  double sum = 0.0;
  for (double p : result.solution) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Iterative, RejectsNonSquare) {
  CooBuilder coo(2, 3);
  coo.Add(0, 0, 1.0);
  EXPECT_THROW(StationaryGaussSeidel(CsrMatrix(coo)), util::InvalidArgument);
  EXPECT_THROW(StationaryPowerMethod(CsrMatrix(coo)), util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::linalg
