// Exact DSPN solver (embedded Markov chain + subordinated CTMCs):
// closed-form fixtures, agreement with the token-game simulator and the
// Erlang stage expansion, precondition checks, and the paper's CPU net.
#include <gtest/gtest.h>

#include <cmath>

#include "core/models.hpp"
#include "petri/ctmc_solver.hpp"
#include "petri/dspn_solver.hpp"
#include "petri/simulation.hpp"
#include "petri/standard_nets.hpp"
#include "util/error.hpp"

namespace wsn::petri {
namespace {

TEST(DspnExact, DeterministicCycleClosedForm) {
  // a --det(1)--> b --det(3)--> a: alternating renewal, shares 1/4, 3/4.
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId ab = net.AddDeterministicTransition("ab", 1.0);
  const TransitionId ba = net.AddDeterministicTransition("ba", 3.0);
  net.AddInputArc(ab, a);
  net.AddOutputArc(ab, b);
  net.AddInputArc(ba, b);
  net.AddOutputArc(ba, a);

  const SpnSteadyState ss = SolveDspnExact(net);
  EXPECT_NEAR(ss.mean_tokens[a], 0.25, 1e-12);
  EXPECT_NEAR(ss.mean_tokens[b], 0.75, 1e-12);
  EXPECT_NEAR(ss.throughput[ab], 0.25, 1e-12);
  EXPECT_NEAR(ss.throughput[ba], 0.25, 1e-12);
}

TEST(DspnExact, MixedExponentialDeterministicCycle) {
  // a --det(2)--> b --exp(0.5)--> a: shares 2/(2+2) each.
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId ab = net.AddDeterministicTransition("ab", 2.0);
  const TransitionId ba = net.AddExponentialTransition("ba", 0.5);
  net.AddInputArc(ab, a);
  net.AddOutputArc(ab, b);
  net.AddInputArc(ba, b);
  net.AddOutputArc(ba, a);

  const SpnSteadyState ss = SolveDspnExact(net);
  EXPECT_NEAR(ss.mean_tokens[a], 0.5, 1e-10);
  EXPECT_NEAR(ss.mean_tokens[b], 0.5, 1e-10);
  EXPECT_NEAR(ss.throughput[ab], 0.25, 1e-10);
}

TEST(DspnExact, PreemptionProbabilityMatchesRaceFormula) {
  // armed: det(1.0) "sleep" races exp(lambda) "grab" that leads to a
  // state from which exp "put" returns.  P(sleep wins a round) = e^-lambda.
  // Long-run sleep throughput has a closed form via renewal-reward, but
  // the cleanest invariant is against the high-k stage expansion.
  PetriNet net;
  const PlaceId armed = net.AddPlace("armed", 1);
  const PlaceId off = net.AddPlace("off", 0);
  const TransitionId sleep = net.AddDeterministicTransition("sleep", 1.0);
  net.AddInputArc(sleep, armed);
  net.AddOutputArc(sleep, off);
  const TransitionId wake = net.AddExponentialTransition("wake", 0.5);
  net.AddInputArc(wake, off);
  net.AddOutputArc(wake, armed);
  const PlaceId tmp = net.AddPlace("tmp", 0);
  const TransitionId grab = net.AddExponentialTransition("grab", 1.0);
  net.AddInputArc(grab, armed);
  net.AddOutputArc(grab, tmp);
  const TransitionId put = net.AddExponentialTransition("put", 4.0);
  net.AddInputArc(put, tmp);
  net.AddOutputArc(put, armed);

  const SpnSteadyState exact = SolveDspnExact(net);

  // Cross-check 1: Erlang-80 stage expansion should approach it.
  SolverOptions stage_opts;
  stage_opts.det_stages = 80;
  const SpnSteadyState stages = SolveSteadyState(net, stage_opts);
  for (PlaceId p : {armed, off, tmp}) {
    EXPECT_NEAR(exact.mean_tokens[p], stages.mean_tokens[p], 5e-3)
        << net.GetPlace(p).name;
  }

  // Cross-check 2: long token-game simulation.
  SimulationConfig cfg;
  cfg.horizon = 400000.0;
  cfg.seed = 5;
  const SimulationResult sim = SimulateSpn(net, cfg);
  for (PlaceId p : {armed, off, tmp}) {
    EXPECT_NEAR(exact.mean_tokens[p], sim.mean_tokens[p], 5e-3)
        << net.GetPlace(p).name;
  }
  EXPECT_NEAR(exact.throughput[sleep], sim.throughput[sleep], 5e-3);
}

TEST(DspnExact, ExponentialOnlyNetMatchesCtmcSolver) {
  // With no deterministic transitions the EMC method reduces to the plain
  // CTMC solution.
  const PetriNet net = MakeMm1kNet(0.8, 1.0, 6);
  const SpnSteadyState emc = SolveDspnExact(net);
  const SpnSteadyState ctmc = SolveExponentialNet(net);
  for (std::size_t p = 0; p < net.PlaceCount(); ++p) {
    EXPECT_NEAR(emc.mean_tokens[p], ctmc.mean_tokens[p], 1e-9);
  }
  for (std::size_t t = 0; t < net.TransitionCount(); ++t) {
    EXPECT_NEAR(emc.throughput[t], ctmc.throughput[t], 1e-9);
  }
}

TEST(DspnExact, WeightedImmediateForkAfterDeterministic) {
  // det feeds a weighted immediate fork (1:3) into two exp drains; the
  // vanishing resolution inside the EMC must respect the weights.
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const PlaceId fork = net.AddPlace("fork", 0);
  const PlaceId a = net.AddPlace("a", 0);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId go = net.AddDeterministicTransition("go", 1.0);
  net.AddInputArc(go, p);
  net.AddOutputArc(go, fork);
  const TransitionId ta = net.AddImmediateTransition("ta", 1, 1.0);
  net.AddInputArc(ta, fork);
  net.AddOutputArc(ta, a);
  const TransitionId tb = net.AddImmediateTransition("tb", 1, 3.0);
  net.AddInputArc(tb, fork);
  net.AddOutputArc(tb, b);
  const TransitionId da = net.AddExponentialTransition("da", 1.0);
  net.AddInputArc(da, a);
  net.AddOutputArc(da, p);
  const TransitionId db = net.AddExponentialTransition("db", 1.0);
  net.AddInputArc(db, b);
  net.AddOutputArc(db, p);

  const SpnSteadyState ss = SolveDspnExact(net);
  EXPECT_NEAR(ss.throughput[db] / ss.throughput[da], 3.0, 1e-9);
  // Cycle: 1 s det + 1 s exp on average => p holds the token half the time.
  EXPECT_NEAR(ss.mean_tokens[p], 0.5, 1e-9);
}

TEST(DspnExact, RejectsConcurrentDeterministicTransitions) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 1);
  const TransitionId ta = net.AddDeterministicTransition("ta", 1.0);
  net.AddInputArc(ta, a);
  net.AddOutputArc(ta, a);
  const TransitionId tb = net.AddDeterministicTransition("tb", 2.0);
  net.AddInputArc(tb, b);
  net.AddOutputArc(tb, b);
  EXPECT_THROW(SolveDspnExact(net), util::ModelError);
}

TEST(DspnExact, RejectsUnsupportedDistributions) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const TransitionId t = net.AddTimedTransition(
      "t", util::Distribution(util::Erlang{2, 1.0}));
  net.AddInputArc(t, a);
  net.AddOutputArc(t, a);
  EXPECT_THROW(SolveDspnExact(net), util::ModelError);
}

TEST(DspnExact, RejectsDeadMarking) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId t = net.AddDeterministicTransition("t", 1.0);
  net.AddInputArc(t, a);
  net.AddOutputArc(t, b);
  EXPECT_THROW(SolveDspnExact(net), util::ModelError);
}

// The paper's CPU net, exactly solved, against the DES ground truth.
class DspnCpuCases
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DspnCpuCases, MatchesDesSimulationWithinCi) {
  const auto [pdt, pud] = GetParam();
  core::CpuParams params;
  params.power_down_threshold = pdt;
  params.power_up_delay = pud;

  const core::DspnExactCpuModel exact;
  const auto ee = exact.Evaluate(params);
  EXPECT_NO_THROW(ee.shares.Validate(1e-6));

  core::EvalConfig cfg;
  cfg.sim_time = 4000.0;
  cfg.replications = 16;
  const core::SimulationCpuModel sim(cfg);
  const auto es = sim.Evaluate(params);

  const double tol = std::max(0.01, 3.0 * es.share_ci_halfwidth);
  EXPECT_NEAR(ee.shares.standby, es.shares.standby, tol);
  EXPECT_NEAR(ee.shares.powerup, es.shares.powerup, tol);
  EXPECT_NEAR(ee.shares.idle, es.shares.idle, tol);
  EXPECT_NEAR(ee.shares.active, es.shares.active, tol);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterPlane, DspnCpuCases,
    ::testing::Values(std::make_tuple(0.1, 0.001),
                      std::make_tuple(0.5, 0.001),
                      std::make_tuple(0.3, 0.3),
                      std::make_tuple(1.0, 0.3),
                      std::make_tuple(0.5, 10.0)));

TEST(DspnExact, CpuNetBeatsSupplementaryVariablesAtLargePud) {
  // The whole point of the exact solver: at PUD = 10 s it must agree with
  // the DES simulation where the supplementary-variable model fails.
  core::CpuParams params;
  params.power_down_threshold = 0.5;
  params.power_up_delay = 10.0;

  core::EvalConfig cfg;
  cfg.sim_time = 8000.0;
  cfg.replications = 16;
  const auto es = core::SimulationCpuModel(cfg).Evaluate(params);
  const auto ee = core::DspnExactCpuModel().Evaluate(params);
  const auto em = core::MarkovCpuModel().Evaluate(params);

  const double exact_err = std::abs(ee.shares.standby - es.shares.standby) +
                           std::abs(ee.shares.idle - es.shares.idle);
  const double markov_err = std::abs(em.shares.standby - es.shares.standby) +
                            std::abs(em.shares.idle - es.shares.idle);
  EXPECT_LT(exact_err, 0.03);
  EXPECT_GT(markov_err, 10.0 * exact_err);
}

}  // namespace
}  // namespace wsn::petri
