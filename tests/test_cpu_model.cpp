// CPU power-state simulator: exact timelines under deterministic traces,
// M/M/1 limits, share normalization, warm-up handling and ensembles.
#include <gtest/gtest.h>

#include <cmath>

#include "des/cpu_model.hpp"
#include "markov/mm1.hpp"
#include "util/error.hpp"

namespace wsn::des {
namespace {

TEST(CpuModel, SharesSumToOne) {
  CpuModelConfig cfg;
  cfg.arrival_rate = 1.0;
  cfg.mean_service_time = 0.1;
  cfg.power_down_threshold = 0.2;
  cfg.power_up_delay = 0.3;
  cfg.sim_time = 500.0;
  CpuSimulation sim(cfg, 7);
  const CpuRunResult r = sim.Run();
  EXPECT_NEAR(r.FractionStandby() + r.FractionPowerUp() + r.FractionIdle() +
                  r.FractionActive(),
              1.0, 1e-9);
  EXPECT_GT(r.jobs_completed, 0u);
}

TEST(CpuModel, DeterministicTraceExactTimeline) {
  CpuModelConfig cfg;
  cfg.arrival_rate = 1.0;  // unused with a trace workload
  cfg.mean_service_time = 0.5;
  cfg.service_distribution = util::Distribution(util::Deterministic{0.5});
  cfg.power_down_threshold = 1.0;
  cfg.power_up_delay = 0.25;
  cfg.sim_time = 10.0;
  cfg.record_trace = true;

  CpuSimulation sim(cfg, 1,
                    std::make_unique<TraceWorkload>(
                        std::vector<double>{1.0, 5.0}));
  const CpuRunResult r = sim.Run();

  // standby [0,1) u [2.75,5) u [6.75,10]; powerup [1,1.25) u [5,5.25);
  // active [1.25,1.75) u [5.25,5.75); idle [1.75,2.75) u [5.75,6.75).
  EXPECT_NEAR(r.time_standby, 6.5, 1e-9);
  EXPECT_NEAR(r.time_powerup, 0.5, 1e-9);
  EXPECT_NEAR(r.time_active, 1.0, 1e-9);
  EXPECT_NEAR(r.time_idle, 2.0, 1e-9);
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_NEAR(r.latency.Mean(), 0.75, 1e-9);
  // Trace recorded the expected state sequence.
  EXPECT_NEAR(r.trace.TimeIn("standby", 10.0), 6.5, 1e-9);
  EXPECT_NEAR(r.trace.TimeIn("powerup", 10.0), 0.5, 1e-9);
}

TEST(CpuModel, ArrivalDuringPowerUpQueues) {
  CpuModelConfig cfg;
  cfg.service_distribution = util::Distribution(util::Deterministic{0.1});
  cfg.power_down_threshold = 2.0;
  cfg.power_up_delay = 0.5;
  cfg.sim_time = 4.0;
  CpuSimulation sim(cfg, 1,
                    std::make_unique<TraceWorkload>(
                        std::vector<double>{1.0, 1.1}));
  const CpuRunResult r = sim.Run();
  EXPECT_EQ(r.jobs_completed, 2u);
  // Job 1 done at 1.6 (waited through power-up), job 2 at 1.7.
  EXPECT_NEAR(r.latency.Mean(), 0.6, 1e-9);
  EXPECT_NEAR(r.time_powerup, 0.5, 1e-9);
  EXPECT_NEAR(r.time_active, 0.2, 1e-9);
}

TEST(CpuModel, ArrivalDuringIdleCancelsPowerDown) {
  CpuModelConfig cfg;
  cfg.service_distribution = util::Distribution(util::Deterministic{0.1});
  cfg.power_down_threshold = 1.0;
  cfg.power_up_delay = 0.5;
  cfg.sim_time = 3.0;
  // Second arrival lands inside the idle window of the first job, so the
  // CPU never powers down between them.
  CpuSimulation sim(cfg, 1,
                    std::make_unique<TraceWorkload>(
                        std::vector<double>{0.0, 0.7}));
  const CpuRunResult r = sim.Run();
  // Timeline: powerup [0,.5), active [.5,.6), idle [.6,.7),
  // active [.7,.8), idle [.8,1.8), standby [1.8,3).
  EXPECT_NEAR(r.time_powerup, 0.5, 1e-9);
  EXPECT_NEAR(r.time_active, 0.2, 1e-9);
  EXPECT_NEAR(r.time_idle, 1.1, 1e-9);
  EXPECT_NEAR(r.time_standby, 1.2, 1e-9);
}

TEST(CpuModel, HugeThresholdBehavesLikeMm1) {
  CpuModelConfig cfg;
  cfg.arrival_rate = 1.0;
  cfg.mean_service_time = 0.1;
  cfg.power_down_threshold = 1e9;  // never powers down after first wake
  cfg.power_up_delay = 0.001;
  cfg.sim_time = 20000.0;
  const CpuEnsembleResult agg = RunCpuEnsemble(cfg, 11, 8);

  const markov::Mm1 mm1{1.0, 10.0};
  EXPECT_NEAR(agg.active.Mean(), mm1.Utilization(), 0.01);
  EXPECT_NEAR(agg.idle.Mean(), 1.0 - mm1.Utilization(), 0.02);
  EXPECT_LT(agg.standby.Mean(), 1e-3);
  EXPECT_NEAR(agg.mean_latency.Mean(), mm1.MeanLatency(), 0.02);
}

TEST(CpuModel, ZeroDelaysMatchMm1WithSleep) {
  CpuModelConfig cfg;
  cfg.arrival_rate = 1.0;
  cfg.mean_service_time = 0.1;
  cfg.power_down_threshold = 0.0;
  cfg.power_up_delay = 0.0;
  cfg.sim_time = 20000.0;
  const CpuEnsembleResult agg = RunCpuEnsemble(cfg, 13, 8);
  EXPECT_NEAR(agg.active.Mean(), 0.1, 0.01);
  EXPECT_NEAR(agg.standby.Mean(), 0.9, 0.01);
  EXPECT_LT(agg.idle.Mean(), 1e-9);
  EXPECT_LT(agg.powerup.Mean(), 1e-9);
  // D = 0 makes the queue an exact M/M/1.
  const markov::Mm1 mm1{1.0, 10.0};
  EXPECT_NEAR(agg.mean_latency.Mean(), mm1.MeanLatency(), 0.02);
}

TEST(CpuModel, WarmupExcludedFromStatistics) {
  CpuModelConfig cfg;
  cfg.service_distribution = util::Distribution(util::Deterministic{0.1});
  cfg.power_down_threshold = 10.0;
  cfg.power_up_delay = 0.5;
  cfg.sim_time = 3.0;
  cfg.warmup_time = 2.0;
  // Single arrival at t = 0: all powerup/active action is inside warmup.
  CpuSimulation sim(cfg, 1,
                    std::make_unique<TraceWorkload>(
                        std::vector<double>{0.0}));
  const CpuRunResult r = sim.Run();
  EXPECT_NEAR(r.observed_time, 1.0, 1e-12);
  EXPECT_NEAR(r.time_idle, 1.0, 1e-9);  // only idle remains after warmup
  EXPECT_NEAR(r.time_powerup, 0.0, 1e-9);
  EXPECT_EQ(r.latency.Count(), 0u);  // completion happened during warmup
}

TEST(CpuModel, JobsConserved) {
  CpuModelConfig cfg;
  cfg.arrival_rate = 2.0;
  cfg.mean_service_time = 0.2;
  cfg.power_down_threshold = 0.1;
  cfg.power_up_delay = 0.05;
  cfg.sim_time = 1000.0;
  CpuSimulation sim(cfg, 99);
  const CpuRunResult r = sim.Run();
  // Completions can lag arrivals only by the residual queue.
  EXPECT_LE(r.jobs_completed, r.jobs_arrived);
  EXPECT_GE(r.jobs_completed + 50, r.jobs_arrived);
  // Roughly rate * horizon arrivals.
  EXPECT_NEAR(static_cast<double>(r.jobs_arrived), 2000.0, 5.0 * 45.0);
}

TEST(CpuModel, EnsembleCiShrinksWithReplications) {
  CpuModelConfig cfg;
  cfg.sim_time = 200.0;
  const auto few = RunCpuEnsemble(cfg, 5, 4);
  const auto many = RunCpuEnsemble(cfg, 5, 32);
  EXPECT_GT(few.idle.StdError(), many.idle.StdError());
}

TEST(CpuModel, DeterministicGivenSeed) {
  CpuModelConfig cfg;
  cfg.sim_time = 300.0;
  const CpuRunResult a = CpuSimulation(cfg, 1234).Run();
  const CpuRunResult b = CpuSimulation(cfg, 1234).Run();
  EXPECT_DOUBLE_EQ(a.time_idle, b.time_idle);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
}

TEST(CpuModel, RejectsBadConfig) {
  CpuModelConfig cfg;
  cfg.sim_time = -1.0;
  EXPECT_THROW(CpuSimulation(cfg, 1).Run(), util::InvalidArgument);
  CpuModelConfig cfg2;
  cfg2.warmup_time = cfg2.sim_time + 1.0;
  EXPECT_THROW(CpuSimulation(cfg2, 1).Run(), util::InvalidArgument);
}

}  // namespace
}  // namespace wsn::des
