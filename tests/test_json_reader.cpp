// JSON reader: strict grammar, named path/position-qualified errors,
// duplicate-key rejection, nesting guard, number overflow, and the
// NaN/Inf -> null round trip with JsonWriter.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/error.hpp"
#include "util/json.hpp"

namespace wsn::util {
namespace {

/// Parse `text` expecting failure; returns the exact error message.
std::string ParseError(const std::string& text,
                       const JsonReaderOptions& options = {}) {
  try {
    ParseJson(text, options);
  } catch (const InvalidArgument& err) {
    return err.what();
  }
  ADD_FAILURE() << "expected ParseJson to reject: " << text;
  return "";
}

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null").is_null());
  EXPECT_EQ(ParseJson("true").AsBool(), true);
  EXPECT_EQ(ParseJson("false").AsBool(), false);
  EXPECT_EQ(ParseJson("42").AsNumber(), 42.0);
  EXPECT_EQ(ParseJson("-0.5").AsNumber(), -0.5);
  EXPECT_EQ(ParseJson("1e3").AsNumber(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"").AsString(), "hi");
}

TEST(JsonReader, ParsesNestedContainersPreservingOrder) {
  const JsonValue doc =
      ParseJson("{\"b\": [1, 2, {\"c\": true}], \"a\": null}");
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.Members().size(), 2u);
  EXPECT_EQ(doc.Members()[0].first, "b");
  EXPECT_EQ(doc.Members()[1].first, "a");
  const JsonValue* b = doc.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->Items().size(), 3u);
  EXPECT_EQ(b->Items()[1].AsNumber(), 2.0);
  const JsonValue* c = b->Items()[2].Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->AsBool(), true);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonReader, DecodesEscapesIncludingSurrogatePairs) {
  EXPECT_EQ(ParseJson("\"a\\n\\t\\\"\\\\\\/b\"").AsString(), "a\n\t\"\\/b");
  EXPECT_EQ(ParseJson("\"\\u00e9\"").AsString(), "\xc3\xa9");          // é
  EXPECT_EQ(ParseJson("\"\\u20ac\"").AsString(), "\xe2\x82\xac");      // €
  EXPECT_EQ(ParseJson("\"\\ud83d\\ude00\"").AsString(),
            "\xf0\x9f\x98\x80");                                       // 😀
}

TEST(JsonReader, EqualityComparesStructurally) {
  EXPECT_EQ(ParseJson("{\"a\": [1, true]}"), ParseJson("{\"a\":[1,true]}"));
  EXPECT_NE(ParseJson("{\"a\": 1}"), ParseJson("{\"a\": 2}"));
  EXPECT_NE(ParseJson("{\"a\": 1}"), ParseJson("{\"b\": 1}"));
  // Key order is significant: these are different documents.
  EXPECT_NE(ParseJson("{\"a\": 1, \"b\": 2}"), ParseJson("{\"b\": 2, \"a\": 1}"));
}

TEST(JsonReader, RejectsDuplicateKeysNamingKeyAndPath) {
  EXPECT_EQ(ParseError("{\"top\": {\"dup\": 1, \"dup\": 2}}"),
            "json: duplicate object key 'dup' at line 1 column 25 "
            "(at $.top)");
}

TEST(JsonReader, RejectsTrailingGarbage) {
  EXPECT_EQ(ParseError("{\"a\": 1} extra"),
            "json: trailing garbage after the document at line 1 column 10 "
            "(at $)");
  // A second top-level value is garbage too.
  EXPECT_EQ(ParseError("1 2"),
            "json: trailing garbage after the document at line 1 column 3 "
            "(at $)");
}

TEST(JsonReader, NanInfPolicyRoundTripsWithWriter) {
  // The writer serializes non-finite metrics as null; reading that back
  // yields a null JsonValue, and the literal tokens are rejected with
  // errors that name the convention.
  JsonWriter w(0);
  w.BeginObject()
      .Key("nan").Number(std::numeric_limits<double>::quiet_NaN())
      .Key("inf").Number(std::numeric_limits<double>::infinity())
      .Key("ok").Number(1.5)
      .EndObject();
  const JsonValue doc = ParseJson(w.Str());
  EXPECT_TRUE(doc.Find("nan")->is_null());
  EXPECT_TRUE(doc.Find("inf")->is_null());
  EXPECT_EQ(doc.Find("ok")->AsNumber(), 1.5);

  EXPECT_EQ(ParseError("{\"x\": NaN}"),
            "json: NaN is not valid JSON (JsonWriter serializes it as null) "
            "at line 1 column 10 (at $.x)");
  EXPECT_EQ(ParseError("{\"x\": Infinity}"),
            "json: Infinity is not valid JSON (JsonWriter serializes it as "
            "null) at line 1 column 15 (at $.x)");
}

TEST(JsonReader, DeepNestingGuard) {
  // 64 nested arrays parse with the default cap; 65 are refused.
  std::string ok(64, '[');
  ok += std::string(64, ']');
  EXPECT_TRUE(ParseJson(ok).is_array());

  std::string deep(65, '[');
  deep += std::string(65, ']');
  const std::string err = ParseError(deep);
  EXPECT_EQ(err.find("json: nesting deeper than 64 levels"), 0u) << err;

  JsonReaderOptions shallow;
  shallow.max_depth = 2;
  EXPECT_EQ(ParseError("{\"a\": {\"b\": {\"c\": 1}}}", shallow),
            "json: nesting deeper than 2 levels at line 1 column 13 "
            "(at $.a.b)");
}

TEST(JsonReader, NumberOverflowIsNamed) {
  EXPECT_EQ(ParseError("{\"big\": 1e999}"),
            "json: number '1e999' overflows double at line 1 column 14 "
            "(at $.big)");
  // Denormal underflow rounds toward zero and is accepted.
  EXPECT_EQ(ParseJson("1e-999").AsNumber(), 0.0);
}

TEST(JsonReader, RejectsLooseNumberGrammar) {
  EXPECT_EQ(ParseError("01"),
            "json: leading zeros are not allowed in numbers at line 1 "
            "column 2 (at $)");
  EXPECT_EQ(ParseError("[1.]"),
            "json: expected a digit after the decimal point at line 1 "
            "column 4 (at $[0])");
  EXPECT_EQ(ParseError("[-]"),
            "json: expected a digit after '-' at line 1 column 3 (at $[0])");
  EXPECT_EQ(ParseError("1e"),
            "json: expected a digit in the exponent at line 1 column 3 "
            "(at $)");
}

TEST(JsonReader, RejectsMalformedStrings) {
  EXPECT_EQ(ParseError("\"unterminated"),
            "json: unterminated string at line 1 column 14 (at $)");
  EXPECT_EQ(ParseError("\"bad \\q escape\""),
            "json: invalid escape '\\q' in string at line 1 column 8 (at $)");
  EXPECT_EQ(ParseError("\"ctl \n\""),
            "json: unescaped control character 0x0a in string at line 2 "
            "column 1 (at $)");
  EXPECT_EQ(ParseError("\"\\ud800\""),
            "json: unpaired UTF-16 high surrogate in \\u escape at line 1 "
            "column 8 (at $)");
}

TEST(JsonReader, RejectsStructuralErrorsWithPositions) {
  EXPECT_EQ(ParseError("{\"a\" 1}"),
            "json: expected ':' after object key at line 1 column 6 "
            "(at $.a)");
  EXPECT_EQ(ParseError("[1, 2"),
            "json: expected ',' or ']' in array at line 1 column 6 (at $)");
  EXPECT_EQ(ParseError("{\"a\": 1,}"),
            "json: expected '\"' to start an object key at line 1 column 9 "
            "(at $)");
  EXPECT_EQ(ParseError(""),
            "json: unexpected end of input, expected a value at line 1 "
            "column 1 (at $)");
  EXPECT_EQ(ParseError("{\"a\":\n  'x'}"),
            "json: unexpected character ''' at line 2 column 3 (at $.a)");
}

}  // namespace
}  // namespace wsn::util
