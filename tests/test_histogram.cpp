// Histogram binning, densities and the chi-square statistic.
#include <gtest/gtest.h>

#include <cmath>

#include "util/distributions.hpp"
#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace wsn::util {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(0.9);
  h.Add(5.5);
  h.Add(9.99);
  EXPECT_EQ(h.BinCount(0), 2u);
  EXPECT_EQ(h.BinCount(5), 1u);
  EXPECT_EQ(h.BinCount(9), 1u);
  EXPECT_EQ(h.TotalCount(), 4u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-0.1);
  h.Add(1.0);  // right edge is exclusive
  h.Add(2.0);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 2u);
  EXPECT_EQ(h.TotalCount(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(1.0, 3.0, 4);
  EXPECT_NEAR(h.BinLow(0), 1.0, 1e-12);
  EXPECT_NEAR(h.BinHigh(0), 1.5, 1e-12);
  EXPECT_NEAR(h.BinLow(3), 2.5, 1e-12);
  EXPECT_NEAR(h.BinWidth(), 0.5, 1e-12);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 1.0, 20);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.Add(UniformDouble(rng));
  double integral = 0.0;
  for (std::size_t b = 0; b < h.Bins(); ++b) {
    integral += h.Density(b) * h.BinWidth();
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, ChiSquareSmallForMatchingDistribution) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(2);
  const int n = 100000;
  for (int i = 0; i < n; ++i) h.Add(UniformDouble(rng));
  const std::vector<double> expected(10, 0.1);
  // Chi-square with 9 dof: mean 9, sd ~4.24; 40 is far beyond 5 sigma.
  EXPECT_LT(h.ChiSquare(expected), 40.0);
}

TEST(Histogram, ChiSquareLargeForMismatchedDistribution) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = UniformDouble(rng);
    h.Add(u * u);  // skewed toward 0
  }
  const std::vector<double> expected(10, 0.1);
  EXPECT_GT(h.ChiSquare(expected), 1000.0);
}

TEST(Histogram, ExponentialGoodnessOfFit) {
  const double rate = 2.0;
  Histogram h(0.0, 3.0, 12);
  Rng rng(4);
  for (int i = 0; i < 200000; ++i) h.Add(SampleExponential(rng, rate));
  std::vector<double> expected(12);
  for (std::size_t b = 0; b < 12; ++b) {
    expected[b] = std::exp(-rate * h.BinLow(b)) - std::exp(-rate * h.BinHigh(b));
  }
  // Fold tail mass into last bin as ChiSquare does with overflow.
  expected.back() += std::exp(-rate * 3.0);
  EXPECT_LT(h.ChiSquare(expected), 60.0);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(Histogram, ClampPolicyFoldsOutOfRangeIntoEdgeBins) {
  Histogram h(0.0, 1.0, 4, HistogramEdgePolicy::kClamp);
  h.Add(-5.0);   // below low -> first bin
  h.Add(1.0);    // right edge (exclusive) -> last bin
  h.Add(100.0);  // above high -> last bin
  h.Add(0.3);    // interior, untouched by the policy
  EXPECT_EQ(h.BinCount(0), 1u);
  EXPECT_EQ(h.BinCount(1), 1u);
  EXPECT_EQ(h.BinCount(3), 2u);
  EXPECT_EQ(h.Underflow(), 0u);
  EXPECT_EQ(h.Overflow(), 0u);
  EXPECT_EQ(h.TotalCount(), 4u);
  // Sum still reflects the raw samples, not the clamped positions.
  EXPECT_DOUBLE_EQ(h.Sum(), -5.0 + 1.0 + 100.0 + 0.3);
}

TEST(Histogram, NanSamplesAreCountedButNeverBinned) {
  for (HistogramEdgePolicy policy :
       {HistogramEdgePolicy::kOverflowBins, HistogramEdgePolicy::kClamp}) {
    Histogram h(0.0, 1.0, 4, policy);
    h.Add(std::nan(""));
    h.Add(0.5);
    EXPECT_EQ(h.Nan(), 1u);
    EXPECT_EQ(h.TotalCount(), 2u);
    EXPECT_EQ(h.Underflow(), 0u);
    EXPECT_EQ(h.Overflow(), 0u);
    std::size_t binned = 0;
    for (std::size_t b = 0; b < h.Bins(); ++b) binned += h.BinCount(b);
    EXPECT_EQ(binned, 1u);
    EXPECT_DOUBLE_EQ(h.Sum(), 0.5);  // NaN is excluded from the sum
  }
}

TEST(Histogram, MergeAddsBinwise) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.Add(0.1);
  a.Add(-1.0);
  b.Add(0.1);
  b.Add(0.9);
  b.Add(2.0);
  b.Add(std::nan(""));
  a.Merge(b);
  EXPECT_EQ(a.BinCount(0), 2u);
  EXPECT_EQ(a.BinCount(3), 1u);
  EXPECT_EQ(a.Underflow(), 1u);
  EXPECT_EQ(a.Overflow(), 1u);
  EXPECT_EQ(a.Nan(), 1u);
  EXPECT_EQ(a.TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(a.Sum(), 0.1 - 1.0 + 0.1 + 0.9 + 2.0);
}

TEST(Histogram, MergeRejectsShapeMismatch) {
  Histogram a(0.0, 1.0, 4);
  const Histogram range(0.0, 2.0, 4);
  const Histogram bins(0.0, 1.0, 8);
  const Histogram policy(0.0, 1.0, 4, HistogramEdgePolicy::kClamp);
  EXPECT_THROW(a.Merge(range), InvalidArgument);
  EXPECT_THROW(a.Merge(bins), InvalidArgument);
  EXPECT_THROW(a.Merge(policy), InvalidArgument);
}

TEST(Histogram, RenderProducesOneLinePerBin) {
  Histogram h(0.0, 1.0, 5);
  h.Add(0.1);
  const std::string text = h.Render();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

}  // namespace
}  // namespace wsn::util
