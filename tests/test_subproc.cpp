// Failure-taxonomy and retry-schedule tests for util::subproc — the
// fork-based worker sandbox under the sweep-point harness
// (docs/robustness.md).  Each test spawns a real worker that fails one
// specific way and asserts the classified WorkerFailure, then the
// backoff schedule is pinned as a pure function and RunWithRetry's
// attempt accounting is exercised without sleeping.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/hash.hpp"
#include "util/subproc.hpp"

// AddressSanitizer intercepts SIGSEGV (printing a report and exiting
// instead of dying by the signal) and pre-reserves shadow memory that
// an RLIMIT_AS fence forbids, so the SEGV- and RSS-fence tests are
// skipped under it; the SIGKILL twin still covers the signal taxonomy.
#if defined(__SANITIZE_ADDRESS__)
#define WSN_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WSN_UNDER_ASAN 1
#endif
#endif
#ifndef WSN_UNDER_ASAN
#define WSN_UNDER_ASAN 0
#endif

namespace wsn::util {
namespace {

TEST(Subproc, SuccessfulWorkerReturnsPayload) {
  const WorkerResult result =
      RunInWorker([] { return std::string("hello from the child"); }, {});
  EXPECT_EQ(result.failure, WorkerFailure::kNone);
  EXPECT_TRUE(result.Ok());
  EXPECT_EQ(result.payload, "hello from the child");
  EXPECT_EQ(result.exit_code, 0);
}

TEST(Subproc, LargePayloadSurvivesThePipe) {
  // Larger than any pipe buffer: exercises the incremental drain loop
  // and the checksum over a multi-chunk payload.
  const std::string big(4 * 1024 * 1024, 'x');
  const WorkerResult result = RunInWorker([&big] { return big; }, {});
  ASSERT_TRUE(result.Ok()) << result.Describe();
  EXPECT_EQ(result.payload.size(), big.size());
  EXPECT_EQ(Fnv1a64(result.payload), Fnv1a64(big));
}

TEST(Subproc, NonZeroExitIsClassified) {
  const WorkerResult result = RunInWorker(
      [] {
        ::_exit(7);
        return std::string();
      },
      {});
  EXPECT_EQ(result.failure, WorkerFailure::kNonZeroExit);
  EXPECT_EQ(result.exit_code, 7);
  EXPECT_NE(result.Describe().find("exit code 7"), std::string::npos)
      << result.Describe();
}

TEST(Subproc, ThrownExceptionIsNonZeroExitWithDetail) {
  const WorkerResult result = RunInWorker(
      [] {
        throw std::runtime_error("replication 3 diverged");
        return std::string();
      },
      {});
  EXPECT_EQ(result.failure, WorkerFailure::kNonZeroExit);
  // The child relays e.what() over the pipe before exiting nonzero.
  EXPECT_NE(result.detail.find("replication 3 diverged"), std::string::npos)
      << result.Describe();
}

TEST(Subproc, SigsegvIsClassifiedAsSignal) {
  if (WSN_UNDER_ASAN) GTEST_SKIP() << "ASan intercepts SIGSEGV";
  const WorkerResult result = RunInWorker(
      [] {
        ::raise(SIGSEGV);
        return std::string();
      },
      {});
  EXPECT_EQ(result.failure, WorkerFailure::kSignal);
  EXPECT_EQ(result.term_signal, SIGSEGV);
  EXPECT_NE(result.Describe().find("signal"), std::string::npos);
}

TEST(Subproc, SigkillIsClassifiedAsSignal) {
  const WorkerResult result = RunInWorker(
      [] {
        ::raise(SIGKILL);
        return std::string();
      },
      {});
  EXPECT_EQ(result.failure, WorkerFailure::kSignal);
  EXPECT_EQ(result.term_signal, SIGKILL);
}

TEST(Subproc, DeadlineOverrunIsTimeout) {
  WorkerLimits limits;
  limits.deadline_s = 0.2;
  const auto start = std::chrono::steady_clock::now();
  const WorkerResult result = RunInWorker(
      [] {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return std::string("never");
      },
      limits);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(result.failure, WorkerFailure::kTimeout);
  EXPECT_NE(result.detail.find("deadline"), std::string::npos)
      << result.Describe();
  // The parent must kill the worker at the deadline, not wait out the
  // child's sleep.
  EXPECT_LT(elapsed, 5.0);
}

TEST(Subproc, HangAfterClosingThePipeStillTripsTheDeadline) {
  // A child that finishes its pipe business and then hangs must not
  // stall the parent forever: the deadline stays live after EOF.
  WorkerLimits limits;
  limits.deadline_s = 0.2;
  const WorkerResult result = RunInWorker(
      [] {
        // Close every plausible pipe fd, then hang without exiting.
        for (int fd = 3; fd < 64; ++fd) ::close(fd);
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return std::string("never");
      },
      limits);
  EXPECT_EQ(result.failure, WorkerFailure::kTimeout);
}

TEST(Subproc, RssLimitHitIsClassifiedAsOom) {
  if (WSN_UNDER_ASAN) GTEST_SKIP() << "RLIMIT_AS breaks ASan shadow memory";
  WorkerLimits limits;
  limits.rss_limit_mb = 64;
  const WorkerResult result = RunInWorker(
      [] {
        // Far past the fence; touched so the allocation is real.
        std::vector<char> hog(512u * 1024u * 1024u, 1);
        return std::string(1, hog.back());
      },
      limits);
  EXPECT_EQ(result.failure, WorkerFailure::kOom);
  EXPECT_NE(result.detail.find("64 MB"), std::string::npos)
      << result.Describe();
}

TEST(Subproc, CleanExitWithoutAFrameIsMalformedResult) {
  const WorkerResult result = RunInWorker(
      [] {
        ::_exit(0);  // exit 0 but never produce a result frame
        return std::string();
      },
      {});
  EXPECT_EQ(result.failure, WorkerFailure::kMalformedResult);
  EXPECT_NE(result.detail.find("frame"), std::string::npos)
      << result.Describe();
}

TEST(Subproc, GarbageOnThePipeIsMalformedResult) {
  const WorkerResult result = RunInWorker(
      [] {
        // Write junk over the result channel (the only inherited FIFO),
        // then exit clean: the parent sees exit 0 with a corrupt frame.
        for (int fd = 3; fd < 64; ++fd) {
          struct stat st;
          if (::fstat(fd, &st) == 0 && S_ISFIFO(st.st_mode)) {
            (void)!::write(fd, "this is not a result frame", 26);
          }
        }
        ::_exit(0);
        return std::string();
      },
      {});
  EXPECT_EQ(result.failure, WorkerFailure::kMalformedResult);
}

TEST(Subproc, FailureNamesAreStable) {
  // Journal records and error rows carry these strings; renaming one is
  // a schema change.
  EXPECT_STREQ(WorkerFailureName(WorkerFailure::kNone), "none");
  EXPECT_STREQ(WorkerFailureName(WorkerFailure::kSignal), "signal");
  EXPECT_STREQ(WorkerFailureName(WorkerFailure::kNonZeroExit),
               "nonzero-exit");
  EXPECT_STREQ(WorkerFailureName(WorkerFailure::kTimeout), "timeout");
  EXPECT_STREQ(WorkerFailureName(WorkerFailure::kOom), "oom");
  EXPECT_STREQ(WorkerFailureName(WorkerFailure::kMalformedResult),
               "malformed-result");
}

TEST(Subproc, BackoffScheduleIsPinned) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_s = 0.25;
  policy.backoff_growth = 2.0;
  const std::vector<double> delays = BackoffSchedule(policy);
  ASSERT_EQ(delays.size(), 3u);  // max_attempts - 1 retries
  EXPECT_DOUBLE_EQ(delays[0], 0.25);
  EXPECT_DOUBLE_EQ(delays[1], 0.5);
  EXPECT_DOUBLE_EQ(delays[2], 1.0);

  policy.backoff_growth = 3.0;
  policy.base_backoff_s = 0.1;
  const std::vector<double> tripled = BackoffSchedule(policy);
  ASSERT_EQ(tripled.size(), 3u);
  EXPECT_DOUBLE_EQ(tripled[0], 0.1);
  EXPECT_DOUBLE_EQ(tripled[1], 0.3);
  EXPECT_NEAR(tripled[2], 0.9, 1e-12);
}

TEST(Subproc, BackoffScheduleEmptyWithoutRetries) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  EXPECT_TRUE(BackoffSchedule(policy).empty());
  policy.max_attempts = 0;
  EXPECT_TRUE(BackoffSchedule(policy).empty());
}

TEST(Subproc, RetrySucceedsAfterTransientCrashes) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep = false;  // schedule pinned above; don't actually wait
  std::vector<std::string> failures;
  const WorkerResult result = RunWithRetry(
      [](std::size_t attempt) {
        if (attempt < 2) ::raise(SIGKILL);
        return std::string("attempt ") + std::to_string(attempt);
      },
      {}, policy,
      [&failures](std::size_t attempt, const WorkerResult& failed) {
        failures.push_back(std::to_string(attempt) + ":" +
                           WorkerFailureName(failed.failure));
      });
  ASSERT_TRUE(result.Ok()) << result.Describe();
  EXPECT_EQ(result.payload, "attempt 2");
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[0], "0:signal");
  EXPECT_EQ(failures[1], "1:signal");
}

TEST(Subproc, RetryExhaustionReturnsTheLastFailure) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.sleep = false;
  std::size_t reported = 0;
  const WorkerResult result = RunWithRetry(
      [](std::size_t) {
        ::_exit(9);
        return std::string();
      },
      {}, policy,
      [&reported](std::size_t, const WorkerResult&) { ++reported; });
  EXPECT_FALSE(result.Ok());
  EXPECT_EQ(result.failure, WorkerFailure::kNonZeroExit);
  EXPECT_EQ(result.exit_code, 9);
  // on_failure fires for every failed attempt, retried or not.
  EXPECT_EQ(reported, 2u);
}

TEST(Subproc, WorkerErrorCarriesTheTaxonomyCode) {
  const WorkerError error(WorkerFailure::kTimeout, "point 'x' timed out");
  EXPECT_EQ(error.Failure(), WorkerFailure::kTimeout);
  EXPECT_STREQ(error.what(), "point 'x' timed out");
}

TEST(Hash, Fnv1a64KnownAnswers) {
  // Standard FNV-1a vectors: offset basis for "", and the classic "a".
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(HexU64(0xaf63dc4c8601ec8cull), "af63dc4c8601ec8c");
  EXPECT_EQ(HexU64(0), "0000000000000000");
  // Mixing an integer differs from hashing nothing and is stable.
  EXPECT_NE(Fnv1a64Mix(0), kFnvOffset);
  EXPECT_EQ(Fnv1a64Mix(42), Fnv1a64Mix(42));
  EXPECT_NE(Fnv1a64Mix(42), Fnv1a64Mix(43));
}

}  // namespace
}  // namespace wsn::util
