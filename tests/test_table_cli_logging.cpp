// TextTable rendering, CSV escaping, CLI flag parsing and log levels.
#include <gtest/gtest.h>

#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace wsn::util {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  const std::string s = t.Render();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_EQ(t.Rows(), 1u);
}

TEST(TextTable, RejectsAridityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), InvalidArgument);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable t({"x", "y"});
  t.AddNumericRow(std::vector<double>{1.23456, 2.0}, 2);
  EXPECT_NE(t.Render().find("1.23"), std::string::npos);
  EXPECT_EQ(t.Render().find("1.2345"), std::string::npos);
}

TEST(TextTable, CsvQuotesCommas) {
  TextTable t({"name", "value"});
  t.AddRow({"a,b", "1"});
  const std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
}

TEST(TextTable, CsvEscapesQuotes) {
  TextTable t({"name"});
  t.AddRow({"say \"hi\","});
  EXPECT_NE(t.RenderCsv().find("\"say \"\"hi\"\",\""), std::string::npos);
}

TEST(TextTable, CsvQuotesEmbeddedNewlines) {
  TextTable t({"name", "value"});
  t.AddRow({"line1\nline2", "a\rb"});
  const std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
  EXPECT_NE(csv.find("\"a\rb\""), std::string::npos);
}

TEST(TextTable, CsvQuotedCellWithQuoteAndNewlineTogether) {
  TextTable t({"h"});
  t.AddRow({"he said \"no\"\nthen left"});
  EXPECT_NE(t.RenderCsv().find("\"he said \"\"no\"\"\nthen left\""),
            std::string::npos);
}

TEST(TextTable, CsvEmptyCellsStayUnquoted) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"", "x", ""});
  EXPECT_NE(t.RenderCsv().find(",x,\n"), std::string::npos);
}

TEST(TextTable, CsvHeaderOnlyTable) {
  TextTable t({"only", "headers"});
  EXPECT_EQ(t.RenderCsv(), "only,headers\n");
}

TEST(FormatHelpers, FixedAndInterval) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatInterval(1.0, 0.25, 2), "1.00 +- 0.25");
}

TEST(CliArgs, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--rate", "2.5", "--name=abc", "--flag"};
  CliArgs args(5, argv);
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), 2.5);
  EXPECT_EQ(args.GetString("name", ""), "abc");
  EXPECT_TRUE(args.GetBool("flag"));
  EXPECT_FALSE(args.GetBool("absent"));
}

TEST(CliArgs, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_DOUBLE_EQ(args.GetDouble("x", 7.5), 7.5);
  EXPECT_EQ(args.GetInt("n", 42), 42);
  EXPECT_EQ(args.GetString("s", "dflt"), "dflt");
}

TEST(CliArgs, PositionalArguments) {
  const char* argv[] = {"prog", "input.txt", "--v", "1", "out.txt"};
  CliArgs args(5, argv);
  ASSERT_EQ(args.Positional().size(), 2u);
  EXPECT_EQ(args.Positional()[0], "input.txt");
  EXPECT_EQ(args.Positional()[1], "out.txt");
}

TEST(CliArgs, IntegerParsing) {
  const char* argv[] = {"prog", "--n", "123"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.GetInt("n", 0), 123);
}

TEST(CliArgs, RejectsNonNumeric) {
  const char* argv[] = {"prog", "--n", "abc"};
  CliArgs args(3, argv);
  EXPECT_THROW(args.GetInt("n", 0), InvalidArgument);
  EXPECT_THROW(args.GetDouble("n", 0.0), InvalidArgument);
}

TEST(CliArgs, RejectsPartialNumericParses) {
  // "3.9" must not silently truncate to 3, and trailing junk must fail.
  const char* argv[] = {"prog", "--points=3.9", "--n=10x", "--x=1.5e3junk"};
  CliArgs args(4, argv);
  EXPECT_THROW(args.GetInt("points", 0), InvalidArgument);
  EXPECT_THROW(args.GetInt("n", 0), InvalidArgument);
  EXPECT_THROW(args.GetDouble("x", 0.0), InvalidArgument);
  EXPECT_DOUBLE_EQ(args.GetDouble("points", 0.0), 3.9);
}

TEST(CliArgs, RejectsOutOfRangeIntegers) {
  const char* argv[] = {"prog", "--seed=99999999999999999999999"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.GetInt("seed", 0), InvalidArgument);
  EXPECT_THROW(args.GetCount("seed", 0), InvalidArgument);
}

TEST(CliArgs, GetCountRejectsNegativeAndBelowMinimum) {
  const char* argv[] = {"prog", "--seed=-3", "--reps=0", "--points=5"};
  CliArgs args(4, argv);
  EXPECT_THROW(args.GetCount("seed", 0), InvalidArgument);
  EXPECT_THROW(args.GetCount("reps", 1, 1), InvalidArgument);
  EXPECT_EQ(args.GetCount("points", 11, 2), 5u);
  EXPECT_EQ(args.GetCount("absent", 7, 1), 7u);
}

TEST(CliArgs, FlagNamesListsParsedFlagsSorted) {
  const char* argv[] = {"prog", "--zeta", "1", "--alpha=2", "pos"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.FlagNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(RequireKnownFlags, AcceptsDeclaredFlagsAndHelp) {
  const char* argv[] = {"prog", "--rate=2", "--help"};
  CliArgs args(3, argv);
  const std::vector<FlagSpec> known = {{"rate", "L", "1", "arrival rate"}};
  EXPECT_NO_THROW(RequireKnownFlags(args, known));
}

TEST(RequireKnownFlags, RejectsUnknownFlagWithClearError) {
  // The historical footgun: a typo'd flag silently fell back to its
  // default; now it must fail loudly, naming the flag.
  const char* argv[] = {"prog", "--replicatoins=8"};
  CliArgs args(2, argv);
  const std::vector<FlagSpec> known = {
      {"replications", "R", "24", "independent replications"}};
  try {
    RequireKnownFlags(args, known);
    FAIL() << "expected rejection";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("--replicatoins"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--help"), std::string::npos);
  }
}

TEST(RenderHelp, ListsEveryFlagWithDefault) {
  const std::vector<FlagSpec> flags = {
      {"points", "K", "11", "sweep resolution"},
      {"steady", "", "", "steady traffic"},
  };
  const std::string help = RenderHelp("prog [flags]", "a description", flags);
  EXPECT_NE(help.find("usage: prog [flags]"), std::string::npos);
  EXPECT_NE(help.find("a description"), std::string::npos);
  EXPECT_NE(help.find("--points K"), std::string::npos);
  EXPECT_NE(help.find("sweep resolution (default: 11)"), std::string::npos);
  EXPECT_NE(help.find("--steady"), std::string::npos);
  // Boolean flag without a default renders no "(default: )" noise.
  EXPECT_EQ(help.find("steady traffic (default:"), std::string::npos);
}

TEST(Logging, LevelThresholding) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  LogInfo() << "suppressed";   // must not crash
  LogError() << "emitted";
  SetLogLevel(old);
}

TEST(Logging, LevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(ParseLogLevel(LogLevelName(level)), level);
  }
  EXPECT_THROW(ParseLogLevel("verbose"), InvalidArgument);
  EXPECT_THROW(ParseLogLevel("WARN"), InvalidArgument);  // case-sensitive
}

// Capture std::clog while a LogLine emits, to pin the Kv quoting rules.
std::string CaptureLog(const std::function<void()>& emit) {
  std::ostringstream captured;
  std::streambuf* old_buf = std::clog.rdbuf(captured.rdbuf());
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  emit();
  SetLogLevel(old_level);
  std::clog.rdbuf(old_buf);
  return captured.str();
}

TEST(Logging, KvAppendsStructuredFields) {
  const std::string line = CaptureLog([] {
    (LogWarn() << "no metrics").Kv("scenario", "netsim-scale").Kv("runs", 3);
  });
  EXPECT_EQ(line, "[WARN] no metrics scenario=netsim-scale runs=3\n");
}

TEST(Logging, KvQuotesValuesThatBreakSpaceSplitting) {
  const std::string line = CaptureLog([] {
    (LogError() << "bad flag")
        .Kv("value", "two words")
        .Kv("expr", "a=b")
        .Kv("empty", "")
        .Kv("plain", "ok")
        .Kv("flag", true);
  });
  EXPECT_EQ(line,
            "[ERROR] bad flag value=\"two words\" expr=\"a=b\" empty=\"\" "
            "plain=ok flag=true\n");
}

}  // namespace
}  // namespace wsn::util
