// TextTable rendering, CSV escaping, CLI flag parsing and log levels.
#include <gtest/gtest.h>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace wsn::util {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  const std::string s = t.Render();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_EQ(t.Rows(), 1u);
}

TEST(TextTable, RejectsAridityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), InvalidArgument);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable t({"x", "y"});
  t.AddNumericRow(std::vector<double>{1.23456, 2.0}, 2);
  EXPECT_NE(t.Render().find("1.23"), std::string::npos);
  EXPECT_EQ(t.Render().find("1.2345"), std::string::npos);
}

TEST(TextTable, CsvQuotesCommas) {
  TextTable t({"name", "value"});
  t.AddRow({"a,b", "1"});
  const std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
}

TEST(TextTable, CsvEscapesQuotes) {
  TextTable t({"name"});
  t.AddRow({"say \"hi\","});
  EXPECT_NE(t.RenderCsv().find("\"say \"\"hi\"\",\""), std::string::npos);
}

TEST(FormatHelpers, FixedAndInterval) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatInterval(1.0, 0.25, 2), "1.00 +- 0.25");
}

TEST(CliArgs, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--rate", "2.5", "--name=abc", "--flag"};
  CliArgs args(5, argv);
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), 2.5);
  EXPECT_EQ(args.GetString("name", ""), "abc");
  EXPECT_TRUE(args.GetBool("flag"));
  EXPECT_FALSE(args.GetBool("absent"));
}

TEST(CliArgs, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_DOUBLE_EQ(args.GetDouble("x", 7.5), 7.5);
  EXPECT_EQ(args.GetInt("n", 42), 42);
  EXPECT_EQ(args.GetString("s", "dflt"), "dflt");
}

TEST(CliArgs, PositionalArguments) {
  const char* argv[] = {"prog", "input.txt", "--v", "1", "out.txt"};
  CliArgs args(5, argv);
  ASSERT_EQ(args.Positional().size(), 2u);
  EXPECT_EQ(args.Positional()[0], "input.txt");
  EXPECT_EQ(args.Positional()[1], "out.txt");
}

TEST(CliArgs, IntegerParsing) {
  const char* argv[] = {"prog", "--n", "123"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.GetInt("n", 0), 123);
}

TEST(CliArgs, RejectsNonNumeric) {
  const char* argv[] = {"prog", "--n", "abc"};
  CliArgs args(3, argv);
  EXPECT_THROW(args.GetInt("n", 0), InvalidArgument);
  EXPECT_THROW(args.GetDouble("n", 0.0), InvalidArgument);
}

TEST(Logging, LevelThresholding) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  LogInfo() << "suppressed";   // must not crash
  LogError() << "emitted";
  SetLogLevel(old);
}

}  // namespace
}  // namespace wsn::util
