// Cross-model validation — the scientific core of the reproduction:
// all models agree closely at small Power Up Delay, the Petri net tracks
// simulation at every delay, and the supplementary-variable Markov
// approximation drifts as the delay grows (the paper's headline claim).
#include <gtest/gtest.h>

#include <cmath>

#include "core/models.hpp"

namespace wsn::core {
namespace {

EvalConfig FastConfig() {
  EvalConfig cfg;
  cfg.sim_time = 1000.0;  // paper Table 2
  cfg.replications = 24;
  cfg.seed = 7;
  return cfg;
}

CpuParams PaperParams(double pdt, double pud) {
  CpuParams p;
  p.arrival_rate = 1.0;
  p.service_rate = 10.0;
  p.power_down_threshold = pdt;
  p.power_up_delay = pud;
  return p;
}

double MaxShareDelta(const ModelEvaluation& a, const ModelEvaluation& b) {
  return std::max({std::abs(a.shares.standby - b.shares.standby),
                   std::abs(a.shares.powerup - b.shares.powerup),
                   std::abs(a.shares.idle - b.shares.idle),
                   std::abs(a.shares.active - b.shares.active)});
}

TEST(Models, AllShapesSumToOne) {
  const auto params = PaperParams(0.3, 0.3);
  const EvalConfig cfg = FastConfig();
  for (const auto& model : MakePaperModels(cfg)) {
    const ModelEvaluation eval = model->Evaluate(params);
    EXPECT_NO_THROW(eval.shares.Validate(1e-3)) << model->Name();
  }
}

TEST(Models, NamesAreDistinct) {
  const auto models = MakePaperModels(FastConfig());
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[0]->Name(), "simulation");
  EXPECT_EQ(models[1]->Name(), "markov");
  EXPECT_EQ(models[2]->Name(), "petri-net");
}

// Paper Fig. 4 regime: small PUD -> all three models agree.
class SmallDelayAgreement : public ::testing::TestWithParam<double> {};

TEST_P(SmallDelayAgreement, ThreeWayAgreementAtSmallPud) {
  const double pdt = GetParam();
  const auto params = PaperParams(pdt, 0.001);
  EvalConfig cfg = FastConfig();
  cfg.sim_time = 4000.0;

  const SimulationCpuModel sim(cfg);
  const MarkovCpuModel markov;
  const PetriNetCpuModel pn(cfg);

  const auto es = sim.Evaluate(params);
  const auto em = markov.Evaluate(params);
  const auto ep = pn.Evaluate(params);

  EXPECT_LT(MaxShareDelta(es, em), 0.02) << "sim vs markov, pdt=" << pdt;
  EXPECT_LT(MaxShareDelta(es, ep), 0.02) << "sim vs pn, pdt=" << pdt;
  EXPECT_LT(MaxShareDelta(em, ep), 0.02) << "markov vs pn, pdt=" << pdt;
}

INSTANTIATE_TEST_SUITE_P(PdtSweep, SmallDelayAgreement,
                         ::testing::Values(0.05, 0.2, 0.5, 1.0));

TEST(Models, PetriNetTracksSimulationAtLargePud) {
  // PUD = 10 s: the regime where the paper shows the Markov model failing
  // while the Petri net stays faithful.
  const auto params = PaperParams(0.5, 10.0);
  EvalConfig cfg = FastConfig();
  cfg.sim_time = 8000.0;
  cfg.replications = 16;

  const SimulationCpuModel sim(cfg);
  const PetriNetCpuModel pn(cfg);
  const MarkovCpuModel markov;

  const auto es = sim.Evaluate(params);
  const auto ep = pn.Evaluate(params);
  const auto em = markov.Evaluate(params);

  const double pn_err = MaxShareDelta(es, ep);
  const double markov_err = MaxShareDelta(es, em);
  EXPECT_LT(pn_err, 0.03);
  // The paper's Table 4 shows the Markov error dwarfing the PN error at
  // PUD = 10 (116.8 vs 16.0 summed pct points).
  EXPECT_GT(markov_err, 3.0 * pn_err);
}

TEST(Models, MarkovErrorGrowsWithPud) {
  EvalConfig cfg = FastConfig();
  cfg.sim_time = 6000.0;
  const SimulationCpuModel sim(cfg);
  const MarkovCpuModel markov;
  double prev_err = -1.0;
  for (double pud : {0.001, 0.3, 10.0}) {
    const auto params = PaperParams(0.4, pud);
    const double err =
        MaxShareDelta(sim.Evaluate(params), markov.Evaluate(params));
    EXPECT_GT(err, prev_err) << "pud=" << pud;
    prev_err = err;
  }
}

TEST(Models, StagesModelConvergesToSimulation) {
  const auto params = PaperParams(0.3, 0.3);
  EvalConfig cfg = FastConfig();
  cfg.sim_time = 6000.0;
  const SimulationCpuModel sim(cfg);
  const auto es = sim.Evaluate(params);

  const double err1 =
      MaxShareDelta(es, StagesMarkovCpuModel(1).Evaluate(params));
  const double err16 =
      MaxShareDelta(es, StagesMarkovCpuModel(16).Evaluate(params));
  EXPECT_LT(err16, err1 + 1e-9);
  EXPECT_LT(err16, 0.02);
}

TEST(Models, PetriSolverMatchesPetriSimulation) {
  const auto params = PaperParams(0.2, 0.1);
  EvalConfig cfg = FastConfig();
  cfg.sim_time = 6000.0;
  const PetriNetCpuModel pn_sim(cfg);
  const PetriSolverCpuModel pn_solve(24);
  EXPECT_LT(MaxShareDelta(pn_sim.Evaluate(params), pn_solve.Evaluate(params)),
            0.02);
}

TEST(Models, SimulationReportsConfidenceInterval) {
  const auto params = PaperParams(0.3, 0.3);
  const SimulationCpuModel sim(FastConfig());
  EXPECT_GT(sim.Evaluate(params).share_ci_halfwidth, 0.0);
}

TEST(Models, LatencyAndJobsConsistentViaLittlesLaw) {
  const auto params = PaperParams(0.3, 0.3);
  for (const auto& model : MakePaperModels(FastConfig())) {
    const auto eval = model->Evaluate(params);
    if (eval.mean_jobs > 0.0 && eval.mean_latency > 0.0) {
      EXPECT_NEAR(eval.mean_latency, eval.mean_jobs / params.arrival_rate,
                  0.05 * eval.mean_latency + 1e-6)
          << model->Name();
    }
  }
}

TEST(Models, EnergyHelperUsesEq25) {
  ModelEvaluation eval;
  eval.shares = {1.0, 0.0, 0.0, 0.0};  // all standby
  EXPECT_NEAR(EnergyJoules(eval, energy::Pxa271(), 1000.0), 17.0, 1e-12);
}

}  // namespace
}  // namespace wsn::core
