// PetriNet structure: construction, lookup, validation, incidence matrix
// and the DOT exporter.
#include <gtest/gtest.h>

#include "petri/dot.hpp"
#include "petri/net.hpp"
#include "util/error.hpp"

namespace wsn::petri {
namespace {

PetriNet SmallNet() {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b", 0);
  const TransitionId t = net.AddExponentialTransition("t", 2.0);
  net.AddInputArc(t, a);
  net.AddOutputArc(t, b);
  return net;
}

TEST(PetriNet, CountsAndInitialMarking) {
  const PetriNet net = SmallNet();
  EXPECT_EQ(net.PlaceCount(), 2u);
  EXPECT_EQ(net.TransitionCount(), 1u);
  const Marking m = net.InitialMarking();
  EXPECT_EQ(m[0], 1u);
  EXPECT_EQ(m[1], 0u);
}

TEST(PetriNet, LookupByName) {
  const PetriNet net = SmallNet();
  EXPECT_EQ(net.PlaceByName("a"), 0u);
  EXPECT_EQ(net.TransitionByName("t"), 0u);
  EXPECT_THROW(net.PlaceByName("zzz"), util::InvalidArgument);
  EXPECT_THROW(net.TransitionByName("zzz"), util::InvalidArgument);
}

TEST(PetriNet, TransitionKindsAndParameters) {
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const TransitionId imm = net.AddImmediateTransition("imm", 3, 2.5);
  const TransitionId exp = net.AddExponentialTransition("exp", 4.0);
  const TransitionId det = net.AddDeterministicTransition("det", 0.7);
  net.AddInputArc(imm, p);
  net.AddInputArc(exp, p);
  net.AddInputArc(det, p);

  EXPECT_TRUE(net.GetTransition(imm).IsImmediate());
  EXPECT_EQ(net.GetTransition(imm).priority, 3);
  EXPECT_DOUBLE_EQ(net.GetTransition(imm).weight, 2.5);
  EXPECT_TRUE(net.GetTransition(exp).delay->IsMemoryless());
  EXPECT_TRUE(net.GetTransition(det).delay->IsDeterministic());
  EXPECT_FALSE(net.AllTimedExponential());
  EXPECT_TRUE(net.HasDeterministic());
}

TEST(PetriNet, AllTimedExponentialDetection) {
  PetriNet net = SmallNet();
  EXPECT_TRUE(net.AllTimedExponential());
  EXPECT_FALSE(net.HasDeterministic());
}

TEST(PetriNet, ValidationCatchesProblems) {
  PetriNet empty;
  EXPECT_THROW(empty.Validate(), util::ModelError);

  PetriNet no_arcs;
  no_arcs.AddPlace("p", 0);
  no_arcs.AddExponentialTransition("t", 1.0);
  EXPECT_THROW(no_arcs.Validate(), util::ModelError);

  PetriNet dup;
  dup.AddPlace("x", 0);
  dup.AddPlace("x", 0);
  const TransitionId t = dup.AddExponentialTransition("t", 1.0);
  dup.AddInputArc(t, 0);
  EXPECT_THROW(dup.Validate(), util::ModelError);

  // An immediate transition with only output arcs would fire forever in
  // zero time.
  PetriNet livelock;
  livelock.AddPlace("p", 0);
  const TransitionId bad = livelock.AddImmediateTransition("bad", 1);
  livelock.AddOutputArc(bad, 0);
  EXPECT_THROW(livelock.Validate(), util::ModelError);
}

TEST(PetriNet, ArcValidation) {
  PetriNet net = SmallNet();
  EXPECT_THROW(net.AddInputArc(5, 0), util::InvalidArgument);
  EXPECT_THROW(net.AddInputArc(0, 5), util::InvalidArgument);
  EXPECT_THROW(net.AddInputArc(0, 0, 0), util::InvalidArgument);
  EXPECT_THROW(net.AddImmediateTransition("w", 1, 0.0),
               util::InvalidArgument);
}

TEST(PetriNet, IncidenceMatrix) {
  PetriNet net;
  const PlaceId a = net.AddPlace("a", 2);
  const PlaceId b = net.AddPlace("b", 0);
  const PlaceId guard = net.AddPlace("guard", 0);
  const TransitionId t = net.AddExponentialTransition("t", 1.0);
  net.AddInputArc(t, a, 2);
  net.AddOutputArc(t, b, 3);
  net.AddInhibitorArc(t, guard);  // moves no tokens

  const auto c = net.IncidenceMatrix();
  EXPECT_EQ(c[0][a], -2);
  EXPECT_EQ(c[0][b], 3);
  EXPECT_EQ(c[0][guard], 0);
}

TEST(PetriNet, SelfLoopNetsIncidence) {
  // input+output on the same place cancels in the incidence matrix.
  PetriNet net;
  const PlaceId p = net.AddPlace("p", 1);
  const TransitionId t = net.AddExponentialTransition("t", 1.0);
  net.AddInputArc(t, p);
  net.AddOutputArc(t, p);
  EXPECT_EQ(net.IncidenceMatrix()[0][p], 0);
}

TEST(Dot, ExportsAllElements) {
  PetriNet net;
  const PlaceId p = net.AddPlace("queue", 3);
  const TransitionId imm = net.AddImmediateTransition("choose", 2);
  const TransitionId det = net.AddDeterministicTransition("wait", 1.5);
  net.AddInputArc(imm, p);
  net.AddInhibitorArc(det, p);
  net.AddOutputArc(det, p, 2);

  const std::string dot = ToDot(net, "g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("queue"), std::string::npos);
  EXPECT_NE(dot.find("choose"), std::string::npos);
  EXPECT_NE(dot.find("Det(1.5)"), std::string::npos);
  EXPECT_NE(dot.find("odot"), std::string::npos);  // inhibitor arrowhead
}

}  // namespace
}  // namespace wsn::petri
