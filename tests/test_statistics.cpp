// Statistics: Welford accumulator vs naive formulas, merge correctness,
// time-weighted integrals, Student-t criticals, CI coverage property and
// batch means.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/distributions.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace wsn::util {
namespace {

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  RunningStats s;
  for (double x : xs) s.Add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);

  EXPECT_EQ(s.Count(), xs.size());
  EXPECT_NEAR(s.Mean(), mean, 1e-12);
  EXPECT_NEAR(s.Variance(), var, 1e-12);
  EXPECT_EQ(s.Min(), -3.0);
  EXPECT_EQ(s.Max(), 7.25);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  s.Add(5.0);
  EXPECT_EQ(s.Mean(), 5.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.StdError(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = UniformDouble(rng) * 10.0 - 5.0;
    whole.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), whole.Count());
  EXPECT_NEAR(a.Mean(), whole.Mean(), 1e-10);
  EXPECT_NEAR(a.Variance(), whole.Variance(), 1e-10);
  EXPECT_EQ(a.Min(), whole.Min());
  EXPECT_EQ(a.Max(), whole.Max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_NEAR(b.Mean(), 2.0, 1e-12);
}

TEST(RunningStats, NumericallyStableForLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.Add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.Mean(), offset, 1e-3);
  EXPECT_NEAR(s.Variance(), 1.001001, 1e-3);  // n/(n-1) correction
}

TEST(TimeWeightedStats, PiecewiseConstantSignal) {
  TimeWeightedStats tw(0.0);
  tw.Update(0.0, 2.0);   // value 2 on [0, 4)
  tw.Update(4.0, 10.0);  // value 10 on [4, 5)
  tw.Finish(5.0);
  EXPECT_NEAR(tw.Mean(), (2.0 * 4.0 + 10.0 * 1.0) / 5.0, 1e-12);
  EXPECT_NEAR(tw.ElapsedTime(), 5.0, 1e-12);
}

TEST(TimeWeightedStats, VarianceOfTwoLevelSignal) {
  TimeWeightedStats tw(0.0);
  tw.Update(0.0, 0.0);
  tw.Update(5.0, 1.0);
  tw.Finish(10.0);
  // Signal is 0 half the time, 1 half the time: mean .5, var .25.
  EXPECT_NEAR(tw.Mean(), 0.5, 1e-12);
  EXPECT_NEAR(tw.Variance(), 0.25, 1e-12);
}

TEST(TimeWeightedStats, ZeroDurationUpdatesIgnored) {
  TimeWeightedStats tw(0.0);
  tw.Update(0.0, 5.0);
  tw.Update(0.0, 7.0);  // instantaneous change
  tw.Finish(2.0);
  EXPECT_NEAR(tw.Mean(), 7.0, 1e-12);
}

TEST(TimeWeightedStats, ResetWindowDiscardsHistory) {
  TimeWeightedStats tw(0.0);
  tw.Update(0.0, 100.0);
  tw.Update(10.0, 1.0);
  tw.ResetWindow(10.0);  // warm-up discard
  tw.Finish(20.0);
  EXPECT_NEAR(tw.Mean(), 1.0, 1e-12);
}

TEST(StudentT, KnownCriticalValues) {
  EXPECT_NEAR(StudentTCritical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(StudentTCritical(0.95, 5), 2.571, 1e-3);
  EXPECT_NEAR(StudentTCritical(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(StudentTCritical(0.95, 30), 2.042, 5e-3);
  EXPECT_NEAR(StudentTCritical(0.95, 1000), 1.962, 5e-3);
  EXPECT_NEAR(StudentTCritical(0.99, 10), 3.169, 1e-3);
}

TEST(StudentT, RejectsBadLevel) {
  EXPECT_THROW(StudentTCritical(0.0, 5), InvalidArgument);
  EXPECT_THROW(StudentTCritical(1.0, 5), InvalidArgument);
}

// Coverage property: a 95% CI on the mean of a known distribution should
// contain the true mean ~95% of the time.
TEST(ConfidenceInterval, CoverageNearNominal) {
  Rng rng(2024);
  int covered = 0;
  const int trials = 600;
  for (int trial = 0; trial < trials; ++trial) {
    RunningStats s;
    for (int i = 0; i < 30; ++i) {
      s.Add(SampleExponential(rng, 2.0));  // true mean 0.5
    }
    if (IntervalFromStats(s, 0.95).Contains(0.5)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  // Binomial(600, .95) 5-sigma band.
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

TEST(BatchMeans, GrandMeanMatches) {
  BatchMeans bm(10);
  double sum = 0.0;
  for (int i = 0; i < 100; ++i) {
    bm.Add(static_cast<double>(i));
    sum += i;
  }
  EXPECT_EQ(bm.CompleteBatches(), 10u);
  EXPECT_NEAR(bm.Mean(), sum / 100.0, 1e-12);
}

TEST(BatchMeans, IncompleteBatchExcluded) {
  BatchMeans bm(10);
  for (int i = 0; i < 15; ++i) bm.Add(1.0);
  EXPECT_EQ(bm.CompleteBatches(), 1u);
}

TEST(BatchMeans, IidBatchesHaveLowAutocorrelation) {
  Rng rng(5);
  BatchMeans bm(100);
  for (int i = 0; i < 50000; ++i) bm.Add(UniformDouble(rng));
  EXPECT_LT(std::abs(bm.BatchLag1Autocorrelation()), 0.15);
}

TEST(BatchMeans, IntervalShrinksWithMoreData) {
  Rng rng(6);
  BatchMeans small(50), large(50);
  for (int i = 0; i < 1000; ++i) small.Add(UniformDouble(rng));
  for (int i = 0; i < 40000; ++i) large.Add(UniformDouble(rng));
  EXPECT_GT(small.Interval().half_width, large.Interval().half_width);
}

}  // namespace
}  // namespace wsn::util
