// Pooled packet FIFOs and batched LPL wakeups (ISSUE 7): PacketQueues
// slab/free-list semantics, and the bit-identity of batched vs
// unbatched MAC wake-slot delivery — same timestamps, same FIFO order,
// fewer kernel events.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/models.hpp"
#include "netsim/netsim.hpp"
#include "netsim/packet.hpp"
#include "util/rng.hpp"
#include "wsn/network.hpp"

namespace wsn::netsim {
namespace {

Packet MakePacket(std::uint64_t id) {
  Packet p;
  p.id = id;
  p.source = id % 7;
  p.bits = 1024;
  return p;
}

TEST(PacketQueues, PerNodeFifoWithPushFront) {
  PacketQueues q(3);
  EXPECT_TRUE(q.Empty(0));
  EXPECT_EQ(q.Size(1), 0u);

  q.PushBack(1, MakePacket(10));
  q.PushBack(1, MakePacket(11));
  q.PushBack(2, MakePacket(20));
  EXPECT_EQ(q.Size(1), 2u);
  EXPECT_EQ(q.Front(1).id, 10u);
  EXPECT_EQ(q.Front(2).id, 20u);
  EXPECT_TRUE(q.Empty(0));

  // Retransmission requeue goes to the front of its own node only.
  q.PushFront(1, MakePacket(9));
  EXPECT_EQ(q.Front(1).id, 9u);
  q.PopFront(1);
  EXPECT_EQ(q.Front(1).id, 10u);
  q.PopFront(1);
  EXPECT_EQ(q.Front(1).id, 11u);
  q.PopFront(1);
  EXPECT_TRUE(q.Empty(1));
  EXPECT_FALSE(q.Empty(2));

  // PushFront into an empty queue sets both cursors.
  q.PushFront(0, MakePacket(1));
  EXPECT_EQ(q.Front(0).id, 1u);
  EXPECT_EQ(q.Size(0), 1u);
}

TEST(PacketQueues, SlabGrowsToPeakAndRecyclesSlots) {
  PacketQueues q(4);
  // Peak of 6 simultaneously queued packets across two nodes.
  for (std::uint64_t i = 0; i < 3; ++i) q.PushBack(0, MakePacket(i));
  for (std::uint64_t i = 0; i < 3; ++i) q.PushBack(3, MakePacket(100 + i));
  EXPECT_EQ(q.Slots(), 6u);

  // Drain and refill: churn must reuse freed slots, never grow the slab.
  for (int round = 0; round < 50; ++round) {
    q.PopFront(0);
    q.PushBack(1, MakePacket(1000 + round));
    q.PopFront(1);
    q.PushBack(0, MakePacket(2000 + round));
  }
  EXPECT_EQ(q.Slots(), 6u);
  EXPECT_EQ(q.Size(0), 3u);
  EXPECT_EQ(q.Size(3), 3u);
  // FIFO order survived the churn.
  EXPECT_EQ(q.Front(3).id, 100u);
}

// ---------------------------------------------------------------------
// Batched LPL wakeups: identical simulation outcomes, fewer events.

NetSimConfig LplConfig() {
  NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = 6.0;
  cfg.network.node.cpu.service_rate = 60.0;
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = 0.05;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = 40.0;
  cfg.positions = node::MakeGrid(6, 4, 15.0);
  // A long wake interval funnels many senders onto the same receiver
  // wake slot, so real multi-waiter batches form.
  cfg.mac.wakeup_interval_s = 0.25;
  cfg.horizon_s = 900.0;
  return cfg;
}

NetSimReport RunBatched(NetSimConfig cfg, bool batched, bool metrics) {
  cfg.batch_mac_wakeups = batched;
  cfg.obs.metrics = metrics;
  const core::MarkovCpuModel model;
  NetworkSimulator sim(cfg, CpuAveragePowerMw(cfg, model),
                       util::Rng(2008).MakeStream(0));
  return sim.Run();
}

// Everything observable about the simulation except the kernel event
// count (batching merges N same-timestamp events into one, so `events`
// legitimately shrinks).
void ExpectOutcomesEqual(const NetSimReport& a, const NetSimReport& b) {
  EXPECT_EQ(a.packets.generated, b.packets.generated);
  EXPECT_EQ(a.packets.delivered, b.packets.delivered);
  EXPECT_EQ(a.packets.forwarded, b.packets.forwarded);
  EXPECT_EQ(a.packets.retransmissions, b.packets.retransmissions);
  EXPECT_EQ(a.packets.dropped, b.packets.dropped);
  EXPECT_DOUBLE_EQ(a.first_death_s, b.first_death_s);
  EXPECT_EQ(a.first_dead_node, b.first_dead_node);
  EXPECT_DOUBLE_EQ(a.partition_s, b.partition_s);
  EXPECT_DOUBLE_EQ(a.end_s, b.end_s);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].generated, b.nodes[i].generated) << i;
    EXPECT_EQ(a.nodes[i].forwarded, b.nodes[i].forwarded) << i;
    EXPECT_EQ(a.nodes[i].delivered, b.nodes[i].delivered) << i;
    EXPECT_EQ(a.nodes[i].dropped, b.nodes[i].dropped) << i;
    EXPECT_DOUBLE_EQ(a.nodes[i].remaining_j, b.nodes[i].remaining_j) << i;
    EXPECT_DOUBLE_EQ(a.nodes[i].death_s, b.nodes[i].death_s) << i;
    EXPECT_EQ(a.nodes[i].alive, b.nodes[i].alive) << i;
  }
}

TEST(BatchedWakeups, BitIdenticalToUnbatchedUnderLpl) {
  const NetSimConfig cfg = LplConfig();
  const NetSimReport on = RunBatched(cfg, /*batched=*/true, /*metrics=*/true);
  const NetSimReport off =
      RunBatched(cfg, /*batched=*/false, /*metrics=*/false);

  ExpectOutcomesEqual(on, off);

  // The batches must actually form (otherwise this test pins nothing):
  // at least one batch, and strictly more waiters than batches proves
  // multi-waiter slots existed — which is exactly when the kernel event
  // count shrinks.
  const auto batches = on.metrics.counters.find("netsim.mac.wakeup_batches");
  const auto waiters = on.metrics.counters.find("netsim.mac.wakeups_batched");
  ASSERT_NE(batches, on.metrics.counters.end());
  ASSERT_NE(waiters, on.metrics.counters.end());
  EXPECT_GT(batches->second, 0u);
  EXPECT_GT(waiters->second, batches->second);
  EXPECT_LT(on.events, off.events);
}

TEST(BatchedWakeups, NoOpWithoutLpl) {
  // Always-on MAC: no wake slots, so the batching flag must change
  // nothing at all — including the kernel event count.
  NetSimConfig cfg = LplConfig();
  cfg.mac.wakeup_interval_s = 0.0;
  const NetSimReport on = RunBatched(cfg, true, true);
  const NetSimReport off = RunBatched(cfg, false, false);
  ExpectOutcomesEqual(on, off);
  EXPECT_EQ(on.events, off.events);
  const auto batches = on.metrics.counters.find("netsim.mac.wakeup_batches");
  ASSERT_NE(batches, on.metrics.counters.end());
  EXPECT_EQ(batches->second, 0u);
}

TEST(BatchedWakeups, ClusteredLplRunsStayIdenticalToo) {
  // Clustered mode reuses the same TX path; pin the equivalence there as
  // well (head aggregation + election churn on top of LPL batching).
  NetSimConfig cfg = LplConfig();
  cfg.cluster.protocol = ClusterProtocolKind::kLeach;
  cfg.cluster.head_fraction = 0.2;
  cfg.cluster.round_s = 150.0;
  cfg.cluster.aggregation = 4;
  const NetSimReport on = RunBatched(cfg, true, false);
  const NetSimReport off = RunBatched(cfg, false, false);
  ExpectOutcomesEqual(on, off);
  EXPECT_LE(on.events, off.events);
}

}  // namespace
}  // namespace wsn::netsim
