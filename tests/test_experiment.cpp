// Experiment framework: grids, sweeps, delta metrics and the Table 4/5
// computation pipeline (on cheap analytical models to keep tests fast).
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/models.hpp"
#include "util/error.hpp"

namespace wsn::core {
namespace {

TEST(LinearSpace, EndpointsAndSpacing) {
  const auto g = LinearSpace(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  EXPECT_DOUBLE_EQ(g[1], 0.25);
  EXPECT_THROW(LinearSpace(0.0, 1.0, 1), util::InvalidArgument);
  EXPECT_THROW(LinearSpace(1.0, 0.0, 3), util::InvalidArgument);
}

TEST(PaperPdtGrid, NudgesZeroEndpoint) {
  const auto g = PaperPdtGrid(11);
  ASSERT_EQ(g.size(), 11u);
  EXPECT_GT(g.front(), 0.0);
  EXPECT_LT(g.front(), 1e-6);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
}

TEST(PaperPdtGrid, RejectsDegenerateRequests) {
  EXPECT_THROW(PaperPdtGrid(0), util::InvalidArgument);
  EXPECT_THROW(PaperPdtGrid(1), util::InvalidArgument);
  EXPECT_THROW(PaperPdtGrid(11, 0.0), util::InvalidArgument);
  EXPECT_THROW(PaperPdtGrid(11, 1.0), util::InvalidArgument);
  EXPECT_EQ(PaperPdtGrid(2).size(), 2u);
}

TEST(Sweep, MarkovSeriesHasExpectedShape) {
  const MarkovCpuModel markov;
  CpuParams base;
  const auto grid = PaperPdtGrid(6);
  const SweepSeries s = SweepPowerDownThreshold(
      markov, base, grid, energy::Pxa271(), 1000.0);

  ASSERT_EQ(s.points.size(), 6u);
  EXPECT_EQ(s.model_name, "markov");
  // Energy must increase with PDT (paper Fig. 5's rising curve).
  for (std::size_t i = 1; i < s.points.size(); ++i) {
    EXPECT_GT(s.points[i].energy_joules, s.points[i - 1].energy_joules);
    EXPECT_GT(s.points[i].eval.shares.idle,
              s.points[i - 1].eval.shares.idle);
  }
  // Each point remembers its parameters.
  EXPECT_DOUBLE_EQ(s.points[2].params.power_down_threshold, grid[2]);
}

TEST(DeltaMetrics, ZeroForIdenticalSeries) {
  const MarkovCpuModel markov;
  CpuParams base;
  const auto grid = PaperPdtGrid(4);
  const SweepSeries s = SweepPowerDownThreshold(
      markov, base, grid, energy::Pxa271(), 1000.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteShareDeltaPct(s, s), 0.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteEnergyDelta(s, s), 0.0);
}

TEST(DeltaMetrics, DetectsKnownDifference) {
  // Compare Markov against the k=1 stages model: both analytical, so the
  // delta is deterministic and strictly positive.
  const MarkovCpuModel markov;
  const StagesMarkovCpuModel stages(1);
  CpuParams base;
  base.power_up_delay = 1.0;
  const auto grid = PaperPdtGrid(4);
  const auto sm = SweepPowerDownThreshold(markov, base, grid,
                                          energy::Pxa271(), 1000.0);
  const auto ss = SweepPowerDownThreshold(stages, base, grid,
                                          energy::Pxa271(), 1000.0);
  EXPECT_GT(MeanAbsoluteShareDeltaPct(sm, ss), 0.0);
  EXPECT_GT(MeanAbsoluteEnergyDelta(sm, ss), 0.0);
}

TEST(DeltaMetrics, MisalignedSeriesRejected) {
  const MarkovCpuModel markov;
  CpuParams base;
  const auto a = SweepPowerDownThreshold(markov, base, PaperPdtGrid(4),
                                         energy::Pxa271(), 1000.0);
  const auto b = SweepPowerDownThreshold(markov, base, PaperPdtGrid(5),
                                         energy::Pxa271(), 1000.0);
  EXPECT_THROW(MeanAbsoluteShareDeltaPct(a, b), util::InvalidArgument);
}

TEST(DeltaTables, FullPipelineOnAnalyticalModels) {
  // Use three cheap analytical models as stand-ins to validate the
  // pipeline mechanics (the real sim/markov/pn run lives in the bench).
  const MarkovCpuModel markov;
  const StagesMarkovCpuModel stages_fine(12);
  const StagesMarkovCpuModel stages_coarse(1);
  CpuParams base;
  const DeltaTables tables = ComputeDeltaTables(
      stages_fine, markov, stages_coarse, base, {0.001, 1.0},
      PaperPdtGrid(4), energy::Pxa271(), 1000.0);

  ASSERT_EQ(tables.share_deltas.size(), 2u);
  ASSERT_EQ(tables.energy_deltas.size(), 2u);
  EXPECT_DOUBLE_EQ(tables.share_deltas[0].power_up_delay, 0.001);
  EXPECT_DOUBLE_EQ(tables.share_deltas[1].power_up_delay, 1.0);
  // The supplementary-variable vs stages discrepancy grows with PUD.
  EXPECT_GT(tables.share_deltas[1].sim_markov,
            tables.share_deltas[0].sim_markov);
  for (const auto& row : tables.share_deltas) {
    EXPECT_GE(row.sim_markov, 0.0);
    EXPECT_GE(row.sim_pn, 0.0);
    EXPECT_GE(row.markov_pn, 0.0);
  }
}

}  // namespace
}  // namespace wsn::core
