// Engineering microbenchmarks (google-benchmark): RNG throughput, event
// queue structures, DES kernel, SPN token game, reachability + solver and
// the closed-form evaluators.  These back the performance claims in the
// README and catch regressions in the hot paths.
#include <benchmark/benchmark.h>

#include "core/cpu_petri_net.hpp"
#include "core/models.hpp"
#include "des/cpu_model.hpp"
#include "des/event_queue.hpp"
#include "des/simulator.hpp"
#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "markov/stages.hpp"
#include "markov/supplementary.hpp"
#include "petri/ctmc_solver.hpp"
#include "petri/simulation.hpp"
#include "petri/standard_nets.hpp"
#include "util/rng.hpp"

namespace {

using namespace wsn;

void BM_RngXoshiro(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_RngXoshiro);

void BM_RngExponential(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::SampleExponential(rng, 1.0));
  }
}
BENCHMARK(BM_RngExponential);

void BM_EventQueueHoldModel(benchmark::State& state) {
  // Classic hold model: steady-state queue of `size` events; each step
  // pops the minimum and pushes a new event.
  const auto kind = static_cast<des::QueueKind>(state.range(0));
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  auto queue = des::MakeQueue(kind);
  util::Rng rng(7);
  des::EventId id = 1;
  double now = 0.0;
  for (std::size_t i = 0; i < size; ++i) {
    queue->Push(util::UniformDouble(rng) * 10.0, id++);
  }
  for (auto _ : state) {
    const des::QueuedEvent e = queue->PopMin();
    now = e.time;
    queue->Push(now + util::UniformDouble(rng) * 10.0, id++);
  }
  state.SetLabel(queue->Name());
}
BENCHMARK(BM_EventQueueHoldModel)
    ->Args({0, 16})
    ->Args({0, 1024})
    ->Args({1, 16})
    ->Args({1, 1024})
    ->Args({2, 16})
    ->Args({2, 1024});

void BM_DesCpuModelSecondOfSimulation(benchmark::State& state) {
  des::CpuModelConfig cfg;
  cfg.sim_time = 100.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    des::CpuSimulation sim(cfg, seed++);
    benchmark::DoNotOptimize(sim.Run().jobs_completed);
  }
  state.SetItemsProcessed(state.iterations() * 100);  // simulated seconds
}
BENCHMARK(BM_DesCpuModelSecondOfSimulation);

void BM_SpnTokenGameCpuNet(benchmark::State& state) {
  core::CpuParams params;
  const petri::PetriNet net = core::BuildCpuPetriNet(params);
  petri::SimulationConfig cfg;
  cfg.horizon = 100.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(petri::SimulateSpn(net, cfg).total_firings);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SpnTokenGameCpuNet);

void BM_SpnTokenGameMm1k(benchmark::State& state) {
  const petri::PetriNet net = petri::MakeMm1kNet(0.8, 1.0, 10);
  petri::SimulationConfig cfg;
  cfg.horizon = static_cast<double>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(petri::SimulateSpn(net, cfg).total_firings);
  }
}
BENCHMARK(BM_SpnTokenGameMm1k)->Arg(100)->Arg(1000);

void BM_TangibleReachabilityMm1k(benchmark::State& state) {
  const petri::PetriNet net =
      petri::MakeMm1kNet(0.8, 1.0, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(petri::BuildTangibleGraph(net).markings.size());
  }
}
BENCHMARK(BM_TangibleReachabilityMm1k)->Arg(16)->Arg(128)->Arg(512);

void BM_SpnSolverStageExpansion(benchmark::State& state) {
  core::CpuParams params;
  params.power_down_threshold = 0.3;
  params.power_up_delay = 0.3;
  const petri::PetriNet net = core::BuildCpuPetriNet(params);
  petri::SolverOptions opts;
  opts.det_stages = static_cast<std::size_t>(state.range(0));
  opts.truncate_tokens = 60;  // the Fig. 3 net is open (unbounded buffer)
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        petri::SolveSteadyState(net, opts).expanded_states);
  }
}
BENCHMARK(BM_SpnSolverStageExpansion)->Arg(2)->Arg(8)->Arg(20);

void BM_SupplementaryClosedForm(benchmark::State& state) {
  for (auto _ : state) {
    const markov::SupplementaryVariableModel m(1.0, 10.0, 0.3, 0.3);
    benchmark::DoNotOptimize(m.Evaluate().p_idle);
  }
}
BENCHMARK(BM_SupplementaryClosedForm);

void BM_StagesCtmcSolve(benchmark::State& state) {
  for (auto _ : state) {
    const markov::StagesCpuModel m(
        1.0, 10.0, 0.3, 0.3, static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(m.Evaluate().p_idle);
  }
}
BENCHMARK(BM_StagesCtmcSolve)->Arg(1)->Arg(4)->Arg(10);

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = util::UniformDouble(rng);
      sum += a(r, c);
    }
    a(r, r) += sum + 1.0;
  }
  const std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::SolveDense(a, b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(64)->Arg(256);

void BM_GaussSeidelStationary(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  linalg::CooBuilder coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t next = (i + 1) % n;
    const double r1 = util::UniformDouble(rng) + 0.1;
    coo.Add(i, next, r1);
    coo.Add(i, i, -r1);
    const std::size_t far = (i + n / 2) % n;
    if (far != i) {
      const double r2 = util::UniformDouble(rng) + 0.1;
      coo.Add(i, far, r2);
      coo.Add(i, i, -r2);
    }
  }
  const linalg::CsrMatrix q(coo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::StationaryGaussSeidel(q).iterations);
  }
}
BENCHMARK(BM_GaussSeidelStationary)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace
