// Thin artifact shim: PN estimation-vs-effort ablation (DESIGN.md abl2).
// Equivalent to `wsnctl run ablation-steady`; see
// src/scenario/scenarios_ablation.cpp.
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("ablation-steady", argc, argv);
}
