// Ablation (DESIGN.md abl2): Petri-net steady-state estimation quality vs
// simulation effort — the paper notes "the drawback to Petri nets is
// their long simulation time ... before the percentages stabilize".
// Quantifies CI width and bias against the high-accuracy solver reference
// as functions of horizon, warm-up fraction and replication count.
//
// Flags: --pdt T --pud D
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/cpu_petri_net.hpp"
#include "petri/simulation.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);
  core::CpuParams params = bench::PaperParams();
  params.power_down_threshold = args.GetDouble("pdt", 0.3);
  params.power_up_delay = args.GetDouble("pud", 0.3);

  std::cout << "=== Ablation: PN steady-state estimation vs effort (PDT = "
            << params.power_down_threshold
            << " s, PUD = " << params.power_up_delay << " s) ===\n\n";

  // High-fidelity reference: stage-expansion solver with many stages.
  const core::PetriSolverCpuModel reference(60);
  const double ref_idle = reference.Evaluate(params).shares.idle;
  std::cout << "Reference idle share (k=60 numerical solver): "
            << util::FormatFixed(ref_idle, 5) << "\n\n";

  core::CpuNetLayout layout;
  const petri::PetriNet net = core::BuildCpuPetriNet(params, &layout);

  util::TextTable out({"horizon(s)", "warmup", "reps", "idle-share mean",
                       "95% CI halfwidth", "|bias| (pp)"});
  const struct {
    double horizon;
    double warmup_frac;
    std::size_t reps;
  } cases[] = {
      {200.0, 0.0, 8},   {1000.0, 0.0, 8},   {1000.0, 0.1, 8},
      {1000.0, 0.0, 32}, {5000.0, 0.1, 8},   {5000.0, 0.1, 32},
      {20000.0, 0.1, 16},
  };
  for (const auto& c : cases) {
    petri::SimulationConfig cfg;
    cfg.horizon = c.horizon;
    cfg.warmup = c.horizon * c.warmup_frac;
    cfg.seed = 77;
    const petri::EnsembleResult agg =
        petri::SimulateSpnEnsemble(net, cfg, c.reps);
    // idle = E[#CPU_ON] - E[#Active]; combine replication means.
    util::RunningStats idle;
    // Re-run per replication pairing is already aggregated; approximate
    // idle spread by the CPU_ON spread (Active is nearly constant).
    const double mean = agg.mean_tokens[layout.cpu_on].Mean() -
                        agg.mean_tokens[layout.active].Mean();
    const double hw =
        util::IntervalFromStats(agg.mean_tokens[layout.cpu_on]).half_width;
    out.AddRow({util::FormatFixed(c.horizon, 0),
                util::FormatFixed(c.warmup_frac, 2), std::to_string(c.reps),
                util::FormatFixed(mean, 5), util::FormatFixed(hw, 5),
                util::FormatFixed(std::abs(mean - ref_idle) * 100.0, 3)});
  }
  std::cout << out.Render() << "\n";
  std::cout << "Expected: CI half-width shrinks ~1/sqrt(horizon x reps); "
               "bias falls within the CI once the horizon passes ~1000 s, "
               "matching the paper's note that PN estimates need long runs "
               "to stabilize.\n";
  return 0;
}
