// Replication-throughput benchmark for the packet-level network
// simulator: replications/second single-threaded vs fanned out across a
// util::ThreadPool, on a 100-node grid topology.  Parallel efficiency
// should be near-linear because replications share nothing but the
// (read-only) config — each owns its DES kernel and jump-separated RNG
// stream.
//
// Flags: --cols C --rows R --spacing M --rate PKT_S --horizon S
//        --replications N --seed N --threads T (parallel run; default 8)
#include <chrono>
#include <iostream>
#include <thread>

#include "core/models.hpp"
#include "netsim/replication.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);

  const std::size_t cols = static_cast<std::size_t>(args.GetInt("cols", 10));
  const std::size_t rows = static_cast<std::size_t>(args.GetInt("rows", 10));
  const std::size_t threads =
      static_cast<std::size_t>(args.GetInt("threads", 8));

  netsim::NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = args.GetDouble("rate", 2.0);
  cfg.network.node.cpu.service_rate = 10.0 * cfg.network.node.cpu.arrival_rate;
  cfg.network.node.cpu_power = energy::Pxa271();
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = args.GetDouble("hop", 40.0);
  cfg.positions = node::MakeGrid(cols, rows, args.GetDouble("spacing", 25.0));
  cfg.horizon_s = args.GetDouble("horizon", 30.0);

  netsim::ReplicationConfig rep;
  rep.replications = static_cast<std::size_t>(args.GetInt("replications", 32));
  rep.seed = static_cast<std::uint64_t>(args.GetInt("seed", 2008));

  const core::MarkovCpuModel model;

  std::cout << "netsim replication throughput: " << cfg.positions.size()
            << " nodes, " << cfg.horizon_s << " s horizon, "
            << rep.replications << " replications ("
            << std::thread::hardware_concurrency()
            << " hardware threads available)\n\n";

  // Single-threaded reference.
  rep.threads = 1;
  auto start = std::chrono::steady_clock::now();
  const netsim::ReplicationSummary serial = RunReplications(cfg, model, rep);
  const double serial_s = SecondsSince(start);

  // ThreadPool fan-out.
  rep.threads = threads;
  util::ThreadPool pool(threads);
  start = std::chrono::steady_clock::now();
  const netsim::ReplicationSummary parallel =
      RunReplications(cfg, model, rep, pool);
  const double parallel_s = SecondsSince(start);

  const double serial_rps = static_cast<double>(rep.replications) / serial_s;
  const double parallel_rps =
      static_cast<double>(rep.replications) / parallel_s;

  util::TextTable table({"mode", "threads", "wall (s)", "replications/s",
                         "speedup"});
  table.AddRow({"serial", "1", util::FormatFixed(serial_s, 3),
                util::FormatFixed(serial_rps, 2), "1.00"});
  table.AddRow({"thread-pool", std::to_string(threads),
                util::FormatFixed(parallel_s, 3),
                util::FormatFixed(parallel_rps, 2),
                util::FormatFixed(parallel_rps / serial_rps, 2)});
  std::cout << table.Render();

  std::cout << "\nchecks: delivery ratio "
            << util::FormatInterval(serial.delivery_ratio.ci.mean,
                                    serial.delivery_ratio.ci.half_width, 4)
            << " (serial) vs "
            << util::FormatInterval(parallel.delivery_ratio.ci.mean,
                                    parallel.delivery_ratio.ci.half_width, 4)
            << " (parallel) — identical streams, identical results\n";
  return 0;
}
