// Thin artifact shim: netsim replication throughput via the scenario
// engine.  Equivalent to `wsnctl run netsim-throughput --threads=8`; see
// src/scenario/scenarios_netsim.cpp.
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("netsim-throughput", argc, argv);
}
