// Regenerates paper Table 5: mean absolute energy-prediction difference
// (joules) between model pairs for Power Up Delay in {0.001, 0.3, 10} s.
//
// Flags: --sim-time S --replications R --seed N --points K
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);
  const core::EvalConfig cfg = bench::ConfigFromArgs(args);
  const core::CpuParams base = bench::PaperParams();

  std::cout << "=== Table 5: |Delta| energy (J) for varying Power Up Delay "
               "(PXA271, Eq. 25) ===\n\n";

  const core::SimulationCpuModel sim(cfg);
  const core::MarkovCpuModel markov;
  const core::PetriNetCpuModel pn(cfg);
  const auto grid = core::PaperPdtGrid(bench::SweepPoints(args));

  const core::DeltaTables tables = core::ComputeDeltaTables(
      sim, markov, pn, base, {0.001, 0.3, 10.0}, grid, energy::Pxa271(),
      bench::kEnergyHorizonSeconds);

  util::TextTable out({"PowerUpDelay(s)", "Avg |Sim-Markov|",
                       "Avg |Sim-PN|", "Avg |Markov-PN|"});
  for (const core::DeltaRow& row : tables.energy_deltas) {
    out.AddNumericRow(std::vector<double>{row.power_up_delay, row.sim_markov,
                                   row.sim_pn, row.markov_pn},
               3);
  }
  std::cout << out.Render() << "\n";
  std::cout
      << "Paper Table 5 (reference):\n"
         "  PUD=0.001: Sim-Markov 0.154, Sim-PN 0.166, Markov-PN 0.037\n"
         "  PUD=0.3  : Sim-Markov 1.558, Sim-PN 0.298, Markov-PN 1.401\n"
         "  PUD=10.0 : Sim-Markov 24.87, Sim-PN 1.285, Markov-PN 25.41\n"
         "Expected shape: the Markov energy error grows with PUD while the "
         "Petri net tracks the simulation.\n";
  return 0;
}
