// Shared configuration for the paper-artifact benchmark binaries.
#pragma once

#include "core/experiment.hpp"
#include "core/models.hpp"
#include "core/params.hpp"
#include "energy/power_state.hpp"
#include "util/cli.hpp"

namespace wsn::bench {

/// Paper Table 2: 1000 s horizon, lambda = 1/s, mean service 0.1 s
/// (see DESIGN.md section 5 for the Table 2 reading).
inline core::CpuParams PaperParams() {
  core::CpuParams p;
  p.arrival_rate = 1.0;
  p.service_rate = 10.0;
  p.power_down_threshold = 0.1;
  p.power_up_delay = 0.001;
  return p;
}

/// Simulation effort knobs, overridable from the command line:
///   --sim-time, --replications, --seed, --points (sweep resolution).
inline core::EvalConfig ConfigFromArgs(const util::CliArgs& args) {
  core::EvalConfig cfg;
  cfg.sim_time = args.GetDouble("sim-time", 1000.0);
  cfg.replications =
      static_cast<std::size_t>(args.GetInt("replications", 24));
  cfg.seed = static_cast<std::uint64_t>(args.GetInt("seed", 2008));
  return cfg;
}

inline std::size_t SweepPoints(const util::CliArgs& args) {
  return static_cast<std::size_t>(args.GetInt("points", 11));
}

/// The paper evaluates energy over the 1000 s simulated horizon.
inline constexpr double kEnergyHorizonSeconds = 1000.0;

}  // namespace wsn::bench
