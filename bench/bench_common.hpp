// Shared configuration for the paper-artifact benchmark binaries.
//
// Since the scenario-engine refactor the canonical implementations live
// in src/scenario/common.{hpp,cpp}; this header forwards to them so any
// remaining bench-only code (e.g. bench_engine microbenchmarks) keeps
// compiling.  The historical footguns are gone: replications < 1 and
// negative --seed/--points are rejected before any unsigned cast.
#pragma once

#include "scenario/common.hpp"
#include "util/cli.hpp"

namespace wsn::bench {

/// Paper Table 2 parameters (see DESIGN.md section 5).
inline core::CpuParams PaperParams() { return scenario::PaperParams(); }

/// Simulation effort knobs, overridable from the command line:
///   --sim-time, --replications, --seed (all validated).
inline core::EvalConfig ConfigFromArgs(const util::CliArgs& args) {
  return scenario::EvalConfigFromArgs(args);
}

/// Sweep resolution (--points), validated >= 2.
inline std::size_t SweepPoints(const util::CliArgs& args) {
  return scenario::SweepPointsFromArgs(args);
}

/// The paper evaluates energy over the 1000 s simulated horizon.
inline constexpr double kEnergyHorizonSeconds =
    scenario::kEnergyHorizonSeconds;

}  // namespace wsn::bench
