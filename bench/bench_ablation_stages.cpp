// Thin artifact shim: Erlang-k stage-expansion ablation (DESIGN.md abl1).
// Equivalent to `wsnctl run ablation-stages`; see
// src/scenario/scenarios_ablation.cpp.
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("ablation-stages", argc, argv);
}
