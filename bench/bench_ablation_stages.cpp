// Ablation (DESIGN.md abl1): how well does the method of stages handle
// the paper's deterministic delays?  Sweeps the Erlang stage count k for
// the stages CTMC and the Petri-net stage-expansion solver, against the
// supplementary-variable closed form and the DES ground truth.
//
// k = 1 is the naive "constant delay ~ exponential" model.  The paper's
// conclusion ("if an effective method of modeling constant delays in
// Markov chains can be derived, the Markov model may become the method of
// choice") is exactly what this ablation quantifies.
//
// Flags: --pdt T --pud D --sim-time S --replications R
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);
  core::EvalConfig cfg = bench::ConfigFromArgs(args);
  cfg.sim_time = args.GetDouble("sim-time", 4000.0);

  core::CpuParams params = bench::PaperParams();
  params.power_down_threshold = args.GetDouble("pdt", 0.3);
  params.power_up_delay = args.GetDouble("pud", 0.3);

  std::cout << "=== Ablation: Erlang-k stage expansion of deterministic "
               "delays (PDT = " << params.power_down_threshold
            << " s, PUD = " << params.power_up_delay << " s) ===\n\n";

  const core::SimulationCpuModel sim(cfg);
  const auto truth = sim.Evaluate(params);
  auto max_err = [&truth](const core::ModelEvaluation& e) {
    return 100.0 *
           std::max({std::abs(e.shares.standby - truth.shares.standby),
                     std::abs(e.shares.powerup - truth.shares.powerup),
                     std::abs(e.shares.idle - truth.shares.idle),
                     std::abs(e.shares.active - truth.shares.active)});
  };

  const core::MarkovCpuModel supplementary;
  const core::DspnExactCpuModel dspn_exact;
  std::cout << "DES ground truth shares: standby=" << truth.shares.standby
            << " powerup=" << truth.shares.powerup
            << " idle=" << truth.shares.idle
            << " active=" << truth.shares.active
            << " (95% CI half-width " << truth.share_ci_halfwidth << ")\n";
  std::cout << "Supplementary-variable closed form max |err|: "
            << util::FormatFixed(max_err(supplementary.Evaluate(params)), 3)
            << " pct points\n";
  std::cout << "Exact DSPN solver (embedded chain)  max |err|: "
            << util::FormatFixed(max_err(dspn_exact.Evaluate(params)), 3)
            << " pct points (should sit inside the simulation CI)\n\n";

  util::TextTable out({"k (stages)", "stages-CTMC max|err| (pp)",
                       "PN-solver max|err| (pp)", "PN states"});
  for (std::size_t k : {1u, 2u, 5u, 10u, 20u, 50u}) {
    const core::StagesMarkovCpuModel stages(k);
    const core::PetriSolverCpuModel pn_solver(k);
    const auto se = stages.Evaluate(params);
    const auto pe = pn_solver.Evaluate(params);
    out.AddRow({std::to_string(k), util::FormatFixed(max_err(se), 3),
                util::FormatFixed(max_err(pe), 3),
                std::to_string(k)});
  }
  std::cout << out.Render() << "\n";
  std::cout << "Expected: error decreases toward the simulation CI as k "
               "grows; k = 1 (naive exponential) is the worst.\n";
  return 0;
}
