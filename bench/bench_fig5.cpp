// Regenerates paper Figure 5: total energy (joules, Eq. 25, PXA271 power
// table) vs Power Down Threshold at Power Up Delay = 0.001 s for the
// three models.
//
// Flags: --sim-time S --replications R --seed N --points K --pud D
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);
  const core::EvalConfig cfg = bench::ConfigFromArgs(args);
  core::CpuParams base = bench::PaperParams();
  base.power_up_delay = args.GetDouble("pud", 0.001);

  std::cout << "=== Figure 5: energy (J) vs Power Down Threshold "
            << "(PUD = " << base.power_up_delay << " s, PXA271, "
            << bench::kEnergyHorizonSeconds << " s horizon) ===\n\n";

  const core::SimulationCpuModel sim(cfg);
  const core::MarkovCpuModel markov;
  const core::PetriNetCpuModel pn(cfg);
  const auto grid = core::PaperPdtGrid(bench::SweepPoints(args));
  const auto table = energy::Pxa271();

  const auto s_sim = core::SweepPowerDownThreshold(
      sim, base, grid, table, bench::kEnergyHorizonSeconds);
  const auto s_markov = core::SweepPowerDownThreshold(
      markov, base, grid, table, bench::kEnergyHorizonSeconds);
  const auto s_pn = core::SweepPowerDownThreshold(
      pn, base, grid, table, bench::kEnergyHorizonSeconds);

  util::TextTable out({"PDT(s)", "Simulation(J)", "Markov(J)", "PetriNet(J)"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    out.AddNumericRow(std::vector<double>{grid[i], s_sim.points[i].energy_joules,
                                   s_markov.points[i].energy_joules,
                                   s_pn.points[i].energy_joules},
               3);
  }
  std::cout << out.Render() << "\n";
  std::cout << "Expected shape (paper Fig. 5): energy increases with PDT "
               "(more time in 88 mW Idle instead of 17 mW Standby), all "
               "three curves nearly coincident at small PUD.\n";
  return 0;
}
