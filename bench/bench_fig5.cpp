// Thin artifact shim: paper Figure 5 via the scenario engine.
// Equivalent to `wsnctl run fig5`; see src/scenario/scenarios_paper.cpp.
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("fig5", argc, argv);
}
