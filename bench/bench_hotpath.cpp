// Thin artifact shim: the hot-path benchmark via the scenario engine.
// Equivalent to `wsnctl run bench-hotpath`; emit BENCH_hotpath.json with
// `--format=json`.  See src/scenario/scenarios_bench.cpp.
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("bench-hotpath", argc, argv);
}
