// Regenerates paper Table 4: mean absolute steady-state-percentage
// difference between model pairs (Sim-Markov, Sim-PN, Markov-PN), for
// Power Up Delay in {0.001, 0.3, 10} s, averaged over the PDT sweep.
//
// Flags: --sim-time S --replications R --seed N --points K
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);
  const core::EvalConfig cfg = bench::ConfigFromArgs(args);
  const core::CpuParams base = bench::PaperParams();

  std::cout << "=== Table 4: |Delta| steady-state percentages (pct points) "
               "for varying Power Up Delay ===\n\n";

  const core::SimulationCpuModel sim(cfg);
  const core::MarkovCpuModel markov;
  const core::PetriNetCpuModel pn(cfg);
  const auto grid = core::PaperPdtGrid(bench::SweepPoints(args));

  const core::DeltaTables tables = core::ComputeDeltaTables(
      sim, markov, pn, base, {0.001, 0.3, 10.0}, grid, energy::Pxa271(),
      bench::kEnergyHorizonSeconds);

  util::TextTable out({"PowerUpDelay(s)", "Avg |Sim-Markov|",
                       "Avg |Sim-PN|", "Avg |Markov-PN|"});
  for (const core::DeltaRow& row : tables.share_deltas) {
    out.AddNumericRow(std::vector<double>{row.power_up_delay, row.sim_markov,
                                   row.sim_pn, row.markov_pn},
               3);
  }
  std::cout << out.Render() << "\n";
  std::cout
      << "Paper Table 4 (for reference, summed over the 4 states the paper\n"
         "reports larger magnitudes; shape is what must match):\n"
         "  PUD=0.001: Sim-Markov 0.338, Sim-PN 0.351, Markov-PN 0.076\n"
         "  PUD=0.3  : Sim-Markov 4.182, Sim-PN 1.677, Markov-PN 3.338\n"
         "  PUD=10.0 : Sim-Markov 116.8, Sim-PN 16.05, Markov-PN 103.1\n"
         "Expected shape: Sim-Markov explodes as PUD grows; Sim-PN stays "
         "small.\n";
  return 0;
}
