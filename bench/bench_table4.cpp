// Thin artifact shim: paper Table 4 via the scenario engine.
// Equivalent to `wsnctl run table4`; see src/scenario/scenarios_paper.cpp.
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("table4", argc, argv);
}
