// Regenerates paper Figure 4: steady-state percentage of time in each CPU
// power state vs the Power Down Threshold, for Power Up Delay = 0.001 s,
// under all three models (simulation / Markov / Petri net).
//
// Flags: --sim-time S --replications R --seed N --points K --pud D --net
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/cpu_petri_net.hpp"
#include "petri/dot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);
  const core::EvalConfig cfg = bench::ConfigFromArgs(args);
  core::CpuParams base = bench::PaperParams();
  base.power_up_delay = args.GetDouble("pud", 0.001);

  std::cout << "=== Figure 4: state shares vs Power Down Threshold "
            << "(PUD = " << base.power_up_delay << " s) ===\n";
  std::cout << "lambda = " << base.arrival_rate
            << "/s, mean service = " << base.MeanServiceTime()
            << " s, sim time = " << cfg.sim_time << " s x "
            << cfg.replications << " replications\n\n";

  if (args.GetBool("net")) {
    // Print the Table 1 net (structure audit / DOT export).
    const petri::PetriNet net = core::BuildCpuPetriNet(base);
    std::cout << petri::ToDot(net, "cpu_edspn") << "\n";
  }

  const core::SimulationCpuModel sim(cfg);
  const core::MarkovCpuModel markov;
  const core::PetriNetCpuModel pn(cfg);
  const auto grid = core::PaperPdtGrid(bench::SweepPoints(args));

  const auto table = energy::Pxa271();
  const auto s_sim = core::SweepPowerDownThreshold(
      sim, base, grid, table, bench::kEnergyHorizonSeconds);
  const auto s_markov = core::SweepPowerDownThreshold(
      markov, base, grid, table, bench::kEnergyHorizonSeconds);
  const auto s_pn = core::SweepPowerDownThreshold(
      pn, base, grid, table, bench::kEnergyHorizonSeconds);

  util::TextTable out(
      {"PDT(s)", "sim:idle%", "sim:standby%", "sim:powerup%", "sim:active%",
       "mkv:idle%", "mkv:standby%", "mkv:powerup%", "mkv:active%",
       "pn:idle%", "pn:standby%", "pn:powerup%", "pn:active%"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& a = s_sim.points[i].eval.shares;
    const auto& b = s_markov.points[i].eval.shares;
    const auto& c = s_pn.points[i].eval.shares;
    out.AddNumericRow(std::vector<double>{grid[i], a.idle * 100.0,
                                   a.standby * 100.0, a.powerup * 100.0,
                                   a.active * 100.0, b.idle * 100.0,
                                   b.standby * 100.0, b.powerup * 100.0,
                                   b.active * 100.0, c.idle * 100.0,
                                   c.standby * 100.0, c.powerup * 100.0,
                                   c.active * 100.0},
               2);
  }
  std::cout << out.Render() << "\n";
  std::cout << "Expected shape (paper Fig. 4): Idle rises and Standby falls "
               "with PDT; Active stays ~" << base.Rho() * 100.0
            << "%; PowerUp stays near zero at PUD = 0.001 s.\n";
  return 0;
}
