// Thin artifact shim: paper Figure 4 via the scenario engine.
// Equivalent to `wsnctl run fig4`; see src/scenario/scenarios_paper.cpp.
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("fig4", argc, argv);
}
