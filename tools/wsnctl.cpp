// wsnctl — the single driver binary behind every registered scenario.
//
//   wsnctl list
//   wsnctl help table4
//   wsnctl run table4 --points=21 --threads=8 --format=json
//
// The per-artifact binaries (bench_table4, netsim_demo, ...) are thin
// shims over the same registry, kept for artifact compatibility.
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::WsnctlMain(argc, argv);
}
