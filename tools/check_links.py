#!/usr/bin/env python3
"""Intra-repo link checker for the documentation set.

Scans markdown files for inline links and validates every *intra-repo*
target:

  * relative file links must point at an existing file or directory
    (resolved against the markdown file's own directory);
  * fragment links (``file.md#anchor`` or ``#anchor``) must match a
    heading in the target file, using GitHub's slug rules (lowercase,
    punctuation stripped, spaces to dashes);
  * external schemes (http/https/mailto) are ignored — this is a
    dead-intra-repo-link gate, not a crawler.

Exit status is non-zero when any link is dead, printing one line per
offender.  Used by the CI docs job over ``docs/*.md`` and ``README.md``:

    python3 tools/check_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline markdown links: [text](target). Images ![alt](target) share the
# same tail, so the optional leading ! is swallowed by the text match.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip punctuation, lowercase, dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def headings_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        # GitHub dedupes repeated headings with -1, -2, ... suffixes.
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def iter_links(path: Path):
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path, repo_root: Path) -> list[str]:
    errors = []
    for lineno, target in iter_links(path):
        if target.startswith(EXTERNAL_SCHEMES):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            try:
                resolved.relative_to(repo_root)
            except ValueError:
                errors.append(f"{path}:{lineno}: link escapes the repo: "
                              f"{target}")
                continue
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: dead link: {target}")
                continue
            anchor_host = resolved
        else:
            anchor_host = path  # pure fragment: #anchor in this file
        if fragment:
            if anchor_host.is_dir() or anchor_host.suffix != ".md":
                continue  # anchors only checked inside markdown
            if fragment.lower() not in headings_of(anchor_host):
                errors.append(f"{path}:{lineno}: dead anchor: {target}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    repo_root = Path.cwd().resolve()
    errors: list[str] = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{name}: no such file")
            continue
        errors.extend(check_file(path, repo_root))
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"check_links: {len(errors)} dead link(s)", file=sys.stderr)
        return 1
    print(f"check_links: {len(argv) - 1} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
