#!/usr/bin/env python3
"""Diff two BENCH_*.json files produced by the scenario engine.

Stub comparator for the perf trajectory: loads two scenario-JSON
documents (``wsnctl run bench-hotpath --format=json``), matches tables by
name and rows by their first cell, and prints per-cell deltas for every
numeric column.  Exit code 0 always — this tool reports, it does not
gate; wire thresholds into CI once enough history exists.

Usage: tools/bench_compare.py BASELINE.json CANDIDATE.json
"""
import json
import sys


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    tables = {}
    for table in doc.get("tables", []):
        headers = table.get("headers", [])
        rows = {row[0]: row for row in table.get("rows", []) if row}
        tables[table.get("name", "?")] = (headers, rows)
    return tables


def as_float(cell):
    try:
        return float(str(cell).replace(",", ""))
    except ValueError:
        return None


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline, candidate = load(argv[1]), load(argv[2])

    for name in sorted(set(baseline) | set(candidate)):
        if name not in baseline or name not in candidate:
            where = "baseline" if name in baseline else "candidate"
            print(f"table {name!r}: only in {where}")
            continue
        headers, base_rows = baseline[name]
        _, cand_rows = candidate[name]
        print(f"table {name!r}:")
        for key in base_rows:
            if key not in cand_rows:
                print(f"  row {key!r}: missing from candidate")
                continue
            for col, (b, c) in enumerate(zip(base_rows[key], cand_rows[key])):
                fb, fc = as_float(b), as_float(c)
                if fb is None or fc is None or fb == fc:
                    continue
                pct = (fc - fb) / fb * 100.0 if fb else float("inf")
                label = headers[col] if col < len(headers) else f"col{col}"
                print(f"  {key} / {label}: {fb:g} -> {fc:g} ({pct:+.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
