#!/usr/bin/env python3
"""Diff two BENCH_*.json files produced by the scenario engine.

Comparator for the perf trajectory: loads two scenario-JSON documents
(``wsnctl run bench-hotpath --format=json``, ``wsnctl run netsim-scale
--format=json``, ...), matches tables by name and rows by their first
cell, and prints per-cell deltas for every numeric column.

With ``--warn-drop=PCT`` it additionally prints a ``WARNING:`` line for
every throughput-like column (header containing ``speedup`` or ending in
``/s``) where the candidate dropped more than PCT percent below the
baseline.  The warning is *soft*: the exit code stays 0 — timings are
machine-dependent, so CI surfaces regressions without gating on them.
Wire hard thresholds in once enough same-machine history exists.

Usage: tools/bench_compare.py [--warn-drop=PCT] BASELINE.json CANDIDATE.json
"""
import json
import sys


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    tables = {}
    for table in doc.get("tables", []):
        headers = table.get("headers", [])
        rows = {row[0]: row for row in table.get("rows", []) if row}
        tables[table.get("name", "?")] = (headers, rows)
    return tables


def as_float(cell):
    try:
        return float(str(cell).replace(",", ""))
    except ValueError:
        return None


def throughput_like(label):
    label = label.lower()
    return "speedup" in label or label.rstrip(")").endswith("/s")


def main(argv):
    warn_drop = None
    args = []
    for arg in argv[1:]:
        if arg.startswith("--warn-drop="):
            warn_drop = as_float(arg.split("=", 1)[1])
            if warn_drop is None or warn_drop < 0:
                print(f"bad --warn-drop value in {arg!r}: expected a "
                      "non-negative percentage", file=sys.stderr)
                print(__doc__.strip(), file=sys.stderr)
                return 2
        else:
            args.append(arg)
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline, candidate = load(args[0]), load(args[1])

    warnings = 0
    for name in sorted(set(baseline) | set(candidate)):
        if name not in baseline or name not in candidate:
            where = "baseline" if name in baseline else "candidate"
            print(f"table {name!r}: only in {where}")
            continue
        headers, base_rows = baseline[name]
        _, cand_rows = candidate[name]
        print(f"table {name!r}:")
        for key in base_rows:
            if key not in cand_rows:
                print(f"  row {key!r}: missing from candidate")
                continue
            for col, (b, c) in enumerate(zip(base_rows[key], cand_rows[key])):
                fb, fc = as_float(b), as_float(c)
                if fb is None or fc is None or fb == fc:
                    continue
                pct = (fc - fb) / fb * 100.0 if fb else float("inf")
                label = headers[col] if col < len(headers) else f"col{col}"
                print(f"  {key} / {label}: {fb:g} -> {fc:g} ({pct:+.1f}%)")
                if (warn_drop is not None and throughput_like(label)
                        and fb > 0 and pct < -warn_drop):
                    warnings += 1
                    print(f"  WARNING: possible regression in {name!r} / "
                          f"{key} / {label}: {pct:+.1f}% "
                          f"(threshold -{warn_drop:g}%)")
    if warnings:
        print(f"{warnings} soft regression warning(s); exit code stays 0 "
              "(timings are machine-dependent)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
