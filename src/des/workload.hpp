// Workload generators (paper Section 4.1): open (arrivals independent of
// system state — interrupt-driven sensing), closed (a fixed population of
// tasks; the next request only appears after the current one completes and
// the node "thinks") and trace-driven replay.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace wsn::des {

/// Generates arrival times.  NextArrival(now, rng) returns the absolute
/// time of the next job arrival given the current time, or nullopt when
/// the workload is exhausted (traces).  For closed workloads the caller
/// must also call OnCompletion when a job finishes.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Absolute time of the next arrival at/after `now`.
  virtual std::optional<double> NextArrival(double now, util::Rng& rng) = 0;

  /// Hook for closed workloads (no-op for open/trace).
  virtual void OnCompletion(double now) { (void)now; }

  /// True when arrivals are generated independently of completions.
  virtual bool IsOpen() const = 0;

  virtual std::string Describe() const = 0;
};

/// Open workload: renewal process with iid inter-arrival times.
/// Exponential inter-arrivals give the paper's Poisson process.
class OpenWorkload final : public Workload {
 public:
  explicit OpenWorkload(util::Distribution interarrival);

  std::optional<double> NextArrival(double now, util::Rng& rng) override;
  bool IsOpen() const override { return true; }
  std::string Describe() const override;

 private:
  util::Distribution interarrival_;
};

/// Closed workload with population 1: after each completion the source
/// "thinks" for a random time, then submits the next job.  NextArrival
/// returns the pending submission when one is due.
class ClosedWorkload final : public Workload {
 public:
  explicit ClosedWorkload(util::Distribution think_time);

  std::optional<double> NextArrival(double now, util::Rng& rng) override;
  void OnCompletion(double now) override;
  bool IsOpen() const override { return false; }
  std::string Describe() const override;

 private:
  util::Distribution think_time_;
  bool job_outstanding_ = false;
  double ready_at_ = 0.0;
  bool first_ = true;
};

/// Trace replay: a fixed, sorted list of arrival instants.
class TraceWorkload final : public Workload {
 public:
  explicit TraceWorkload(std::vector<double> arrival_times);

  std::optional<double> NextArrival(double now, util::Rng& rng) override;
  bool IsOpen() const override { return true; }
  std::string Describe() const override;

 private:
  std::vector<double> times_;
  std::size_t next_ = 0;
};

/// Factory for the paper's default open Poisson workload.
std::unique_ptr<Workload> MakePoissonWorkload(double rate);

}  // namespace wsn::des
