// Bursty open-workload generators beyond the paper's plain Poisson
// process.  WSN traffic is famously bursty (event-triggered sensing), and
// power-management conclusions can flip under burstiness: these
// generators let the examples and tests explore that axis while reusing
// the same CPU models.
//
//   * MmppWorkload — Markov-modulated Poisson process: a small CTMC of
//     "phases", each with its own Poisson arrival rate (e.g. quiet vs
//     event-storm phases).
//   * BatchRenewalWorkload — renewal arrivals where each renewal brings a
//     (fixed or geometrically distributed) batch of jobs at once.
#pragma once

#include <cstdint>
#include <vector>

#include "des/workload.hpp"

namespace wsn::des {

class MmppWorkload final : public Workload {
 public:
  /// `rates[i]` is the Poisson arrival rate while in phase i;
  /// `generator` is the phase-switching CTMC generator (square, rows sum
  /// to zero, off-diagonals >= 0).  Starts in phase `initial_phase`.
  MmppWorkload(std::vector<double> rates,
               std::vector<std::vector<double>> generator,
               std::size_t initial_phase = 0);

  std::optional<double> NextArrival(double now, util::Rng& rng) override;
  bool IsOpen() const override { return true; }
  std::string Describe() const override;

  std::size_t CurrentPhase() const noexcept { return phase_; }

  /// Long-run average arrival rate: sum_i pi_i * rates_i with pi the
  /// stationary phase distribution (computed by power iteration).
  double MeanRate() const;

 private:
  std::vector<double> rates_;
  std::vector<std::vector<double>> q_;
  std::size_t phase_;
  double phase_clock_ = 0.0;  ///< time already spent in current phase
};

class BatchRenewalWorkload final : public Workload {
 public:
  /// Renewal interarrival distribution between batches; each batch holds
  /// `batch_size` jobs when `geometric_mean` is 0, otherwise a geometric
  /// number of jobs with that mean (>= 1).
  BatchRenewalWorkload(util::Distribution interarrival,
                       std::uint32_t batch_size,
                       double geometric_mean = 0.0);

  std::optional<double> NextArrival(double now, util::Rng& rng) override;
  bool IsOpen() const override { return true; }
  std::string Describe() const override;

 private:
  util::Distribution interarrival_;
  std::uint32_t fixed_batch_;
  double geometric_mean_;
  std::uint32_t remaining_in_batch_ = 0;
  double batch_time_ = 0.0;
};

}  // namespace wsn::des
