#include "des/cpu_model.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace wsn::des {

using util::Require;

const char* PowerStateName(PowerState s) noexcept {
  switch (s) {
    case PowerState::kStandby: return "standby";
    case PowerState::kPowerUp: return "powerup";
    case PowerState::kIdle: return "idle";
    case PowerState::kActive: return "active";
  }
  return "?";
}

double CpuRunResult::FractionStandby() const noexcept {
  return observed_time > 0.0 ? time_standby / observed_time : 0.0;
}
double CpuRunResult::FractionPowerUp() const noexcept {
  return observed_time > 0.0 ? time_powerup / observed_time : 0.0;
}
double CpuRunResult::FractionIdle() const noexcept {
  return observed_time > 0.0 ? time_idle / observed_time : 0.0;
}
double CpuRunResult::FractionActive() const noexcept {
  return observed_time > 0.0 ? time_active / observed_time : 0.0;
}

namespace {

/// The actual event-driven state machine for one replication.
class Engine {
 public:
  Engine(const CpuModelConfig& config, std::uint64_t seed,
         Workload* workload)
      : config_(config),
        rng_(seed),
        workload_(workload),
        sim_(config.queue_kind),
        service_(config.service_distribution.value_or(util::Distribution(
            util::Exponential{1.0 / config.mean_service_time}))) {
    Require(config.arrival_rate > 0.0, "arrival rate must be positive");
    Require(config.mean_service_time > 0.0,
            "mean service time must be positive");
    Require(config.power_down_threshold >= 0.0, "T must be >= 0");
    Require(config.power_up_delay >= 0.0, "D must be >= 0");
    Require(config.sim_time > 0.0, "sim time must be positive");
    Require(config.warmup_time >= 0.0 &&
                config.warmup_time < config.sim_time,
            "warmup must lie inside the horizon");
  }

  CpuRunResult Run() {
    EnterState(PowerState::kStandby);
    result_.jobs_in_system.Update(0.0, 0.0);
    ScheduleNextArrival();
    sim_.RunUntil(config_.sim_time);
    CloseOccupancy(config_.sim_time);
    result_.jobs_in_system.Finish(config_.sim_time);
    result_.observed_time = config_.sim_time - config_.warmup_time;
    return std::move(result_);
  }

 private:
  // --- occupancy accounting -------------------------------------------
  void AddOccupancy(double from, double to, PowerState s) {
    const double lo = std::max(from, config_.warmup_time);
    const double hi = std::min(to, config_.sim_time);
    if (hi <= lo) return;
    const double dt = hi - lo;
    switch (s) {
      case PowerState::kStandby: result_.time_standby += dt; break;
      case PowerState::kPowerUp: result_.time_powerup += dt; break;
      case PowerState::kIdle: result_.time_idle += dt; break;
      case PowerState::kActive: result_.time_active += dt; break;
    }
  }

  void EnterState(PowerState s) {
    const double now = sim_.Now();
    if (has_state_) AddOccupancy(state_since_, now, state_);
    state_ = s;
    state_since_ = now;
    has_state_ = true;
    if (config_.record_trace) result_.trace.Record(now, PowerStateName(s));
  }

  void CloseOccupancy(double horizon) {
    if (has_state_) AddOccupancy(state_since_, horizon, state_);
    state_since_ = horizon;
  }

  // --- workload --------------------------------------------------------
  void ScheduleNextArrival() {
    const auto t = workload_->NextArrival(sim_.Now(), rng_);
    if (!t.has_value()) return;
    if (*t > config_.sim_time) {
      // Still schedule it so RunUntil stops at the horizon naturally;
      // the kernel never fires events beyond the horizon.
      return;
    }
    sim_.ScheduleAt(*t, [this] { OnArrival(); });
  }

  // --- event handlers ---------------------------------------------------
  void OnArrival() {
    const double now = sim_.Now();
    ++result_.jobs_arrived;
    queue_.push_back(now);
    result_.jobs_in_system.Update(now, static_cast<double>(queue_.size()));

    switch (state_) {
      case PowerState::kStandby:
        EnterState(PowerState::kPowerUp);
        sim_.ScheduleAfter(config_.power_up_delay,
                           [this] { OnPowerUpComplete(); });
        break;
      case PowerState::kIdle:
        if (powerdown_event_.has_value()) {
          sim_.Cancel(*powerdown_event_);
          powerdown_event_.reset();
        }
        StartService();
        break;
      case PowerState::kPowerUp:
      case PowerState::kActive:
        break;  // job waits in the buffer
    }
    if (workload_->IsOpen()) ScheduleNextArrival();
  }

  void OnPowerUpComplete() {
    // Jobs only accumulate during power-up, so the buffer is non-empty.
    if (queue_.empty()) {
      BecomeIdle();
      return;
    }
    StartService();
  }

  void StartService() {
    EnterState(PowerState::kActive);
    const double duration = service_.Sample(rng_);
    sim_.ScheduleAfter(duration, [this] { OnServiceComplete(); });
  }

  void OnServiceComplete() {
    const double now = sim_.Now();
    const double admitted = queue_.front();
    queue_.pop_front();
    ++result_.jobs_completed;
    if (now >= config_.warmup_time) result_.latency.Add(now - admitted);
    result_.jobs_in_system.Update(now, static_cast<double>(queue_.size()));
    workload_->OnCompletion(now);
    if (!workload_->IsOpen()) ScheduleNextArrival();

    if (!queue_.empty()) {
      StartService();
    } else {
      BecomeIdle();
    }
  }

  void BecomeIdle() {
    EnterState(PowerState::kIdle);
    powerdown_event_ = sim_.ScheduleAfter(config_.power_down_threshold,
                                          [this] { OnPowerDown(); });
  }

  void OnPowerDown() {
    powerdown_event_.reset();
    EnterState(PowerState::kStandby);
  }

  const CpuModelConfig& config_;
  util::Rng rng_;
  Workload* workload_;
  Simulator sim_;
  util::Distribution service_;

  PowerState state_ = PowerState::kStandby;
  double state_since_ = 0.0;
  bool has_state_ = false;
  std::deque<double> queue_;  // arrival times of jobs in system (FCFS)
  std::optional<EventId> powerdown_event_;
  CpuRunResult result_;
};

}  // namespace

CpuSimulation::CpuSimulation(CpuModelConfig config, std::uint64_t seed,
                             std::unique_ptr<Workload> workload)
    : config_(std::move(config)), seed_(seed), workload_(std::move(workload)) {
  if (!workload_) {
    workload_ = MakePoissonWorkload(config_.arrival_rate);
  }
}

CpuRunResult CpuSimulation::Run() {
  Engine engine(config_, seed_, workload_.get());
  return engine.Run();
}

CpuEnsembleResult RunCpuEnsemble(const CpuModelConfig& config,
                                 std::uint64_t seed,
                                 std::size_t replications,
                                 std::size_t threads) {
  Require(replications >= 1, "need at least one replication");
  std::vector<CpuRunResult> results(replications);
  util::Rng base(seed);
  std::vector<std::uint64_t> seeds(replications);
  for (std::size_t r = 0; r < replications; ++r) {
    // Derive per-replication seeds from independent draws of the base
    // generator; each replication then owns its own Xoshiro instance.
    seeds[r] = base();
  }
  util::ParallelFor(
      replications,
      [&](std::size_t r) {
        CpuSimulation sim(config, seeds[r]);
        results[r] = sim.Run();
      },
      threads);

  CpuEnsembleResult agg;
  for (const CpuRunResult& r : results) {
    agg.standby.Add(r.FractionStandby());
    agg.powerup.Add(r.FractionPowerUp());
    agg.idle.Add(r.FractionIdle());
    agg.active.Add(r.FractionActive());
    if (r.latency.Count() > 0) agg.mean_latency.Add(r.latency.Mean());
    agg.mean_jobs.Add(r.jobs_in_system.Mean());
    agg.completed.Add(static_cast<double>(r.jobs_completed));
  }
  return agg;
}

}  // namespace wsn::des
