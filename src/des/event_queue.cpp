#include "des/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace wsn::des {

using util::Require;

namespace {

struct HeapEntry {
  double time;
  EventId id;

  // Min-ordering: earliest time first, then lowest id (FIFO).
  bool operator>(const HeapEntry& other) const noexcept {
    if (time != other.time) return time > other.time;
    return id > other.id;
  }
};

class BinaryHeapEventQueue final : public EventQueue {
 public:
  void Push(double time, EventId id) override {
    heap_.push({time, id});
    const std::size_t slot = EventSlotOf(id);
    if (slot >= live_by_slot_.size()) live_by_slot_.resize(slot + 1, 0);
    live_by_slot_[slot] = id;
    ++size_;
  }

  bool Empty() const override { return size_ == 0; }

  QueuedEvent PopMin() override {
    SkipCancelled();
    Require(!heap_.empty(), "PopMin on empty event queue");
    const HeapEntry e = heap_.top();
    heap_.pop();
    live_by_slot_[EventSlotOf(e.id)] = 0;
    --size_;
    return {e.time, e.id};
  }

  QueuedEvent PeekMin() override {
    SkipCancelled();
    Require(!heap_.empty(), "PeekMin on empty event queue");
    const HeapEntry e = heap_.top();
    return {e.time, e.id};
  }

  bool Cancel(EventId id) override {
    // Lazy deletion without hashing: clear the slot-addressed liveness
    // mark now, skip the stale heap entry when it surfaces at the top.
    // A reused slot holds a different full id, so stale entries from
    // earlier occupants can never read as live.
    if (!IsLive(id)) return false;
    live_by_slot_[EventSlotOf(id)] = 0;
    --size_;
    return true;
  }

  std::size_t Size() const override { return size_; }

  std::string Name() const override { return "binary-heap"; }

 private:
  bool IsLive(EventId id) const noexcept {
    if (id == 0) return false;  // 0 doubles as the empty-slot marker
    const std::size_t slot = EventSlotOf(id);
    return slot < live_by_slot_.size() && live_by_slot_[slot] == id;
  }

  void SkipCancelled() {
    while (!heap_.empty() && !IsLive(heap_.top().id)) heap_.pop();
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  // Indexed by EventSlotOf(id): the live id occupying that slot, or 0.
  std::vector<EventId> live_by_slot_;
  std::size_t size_ = 0;
};

struct SetEntry {
  double time;
  EventId id;

  bool operator<(const SetEntry& other) const noexcept {
    if (time != other.time) return time < other.time;
    return id < other.id;
  }
};

class SortedListEventQueue final : public EventQueue {
 public:
  void Push(double time, EventId id) override { set_.insert({time, id}); }

  bool Empty() const override { return set_.empty(); }

  QueuedEvent PopMin() override {
    Require(!set_.empty(), "PopMin on empty event queue");
    const SetEntry e = *set_.begin();
    set_.erase(set_.begin());
    return {e.time, e.id};
  }

  QueuedEvent PeekMin() override {
    Require(!set_.empty(), "PeekMin on empty event queue");
    const SetEntry e = *set_.begin();
    return {e.time, e.id};
  }

  bool Cancel(EventId id) override {
    // Eager: linear scan is acceptable because cancellations in our models
    // target near-future timers; kept simple by design.
    for (auto it = set_.begin(); it != set_.end(); ++it) {
      if (it->id == id) {
        set_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::size_t Size() const override { return set_.size(); }

  std::string Name() const override { return "sorted-list"; }

 private:
  std::set<SetEntry> set_;
};

class CalendarEventQueue final : public EventQueue {
 public:
  CalendarEventQueue(std::size_t buckets, double width)
      : width_(width), buckets_(buckets) {
    Require(buckets >= 1,
            "calendar queue needs at least one bucket (initial_buckets >= 1)");
    Require(width > 0.0 && std::isfinite(width),
            "calendar queue bucket_width must be positive and finite");
  }

  void Push(double time, EventId id) override {
    buckets_[BucketOf(time)].insert({time, id});
    ++size_;
    MaybeResize();
  }

  bool Empty() const override { return size_ == 0; }

  QueuedEvent PopMin() override {
    Require(size_ > 0, "PopMin on empty event queue");
    const std::size_t b = FindMinBucket();
    const SetEntry e = *buckets_[b].begin();
    buckets_[b].erase(buckets_[b].begin());
    --size_;
    last_time_ = e.time;
    return {e.time, e.id};
  }

  QueuedEvent PeekMin() override {
    Require(size_ > 0, "PeekMin on empty event queue");
    const std::size_t b = FindMinBucket();
    const SetEntry e = *buckets_[b].begin();
    return {e.time, e.id};
  }

  bool Cancel(EventId id) override {
    for (auto& bucket : buckets_) {
      for (auto it = bucket.begin(); it != bucket.end(); ++it) {
        if (it->id == id) {
          bucket.erase(it);
          --size_;
          return true;
        }
      }
    }
    return false;
  }

  std::size_t Size() const override { return size_; }

  std::string Name() const override { return "calendar"; }

 private:
  std::size_t BucketOf(double time) const noexcept {
    const double virt = std::max(time, 0.0) / width_;
    return static_cast<std::size_t>(virt) % buckets_.size();
  }

  std::size_t FindMinBucket() const {
    // Scan the calendar year starting at the bucket of the last dequeue,
    // falling back to a global min scan when the year is sparse.
    std::size_t best = buckets_.size();
    double best_time = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i].empty()) continue;
      const double t = buckets_[i].begin()->time;
      if (best == buckets_.size() || t < best_time ||
          (t == best_time && buckets_[i].begin()->id <
                                 buckets_[best].begin()->id)) {
        best = i;
        best_time = t;
      }
    }
    return best;
  }

  void MaybeResize() {
    if (size_ <= buckets_.size() * 4) return;
    std::vector<std::set<SetEntry>> old = std::move(buckets_);
    buckets_.assign(old.size() * 2, {});
    for (auto& bucket : old) {
      for (const SetEntry& e : bucket) {
        buckets_[BucketOf(e.time)].insert(e);
      }
    }
  }

  double width_;
  double last_time_ = 0.0;
  std::vector<std::set<SetEntry>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace

std::unique_ptr<EventQueue> MakeBinaryHeapQueue() {
  return std::make_unique<BinaryHeapEventQueue>();
}

std::unique_ptr<EventQueue> MakeSortedListQueue() {
  return std::make_unique<SortedListEventQueue>();
}

std::unique_ptr<EventQueue> MakeCalendarQueue(std::size_t initial_buckets,
                                              double bucket_width) {
  return std::make_unique<CalendarEventQueue>(initial_buckets, bucket_width);
}

std::unique_ptr<EventQueue> MakeQueue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kBinaryHeap: return MakeBinaryHeapQueue();
    case QueueKind::kSortedList: return MakeSortedListQueue();
    case QueueKind::kCalendar: return MakeCalendarQueue();
  }
  return MakeBinaryHeapQueue();
}

}  // namespace wsn::des
