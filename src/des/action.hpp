// Small-buffer-optimized move-only callable for the DES hot path.
//
// Every event the kernel fires used to carry a std::function<void()>,
// whose type-erased closure lives on the heap for anything bigger than
// the implementation's tiny inline buffer — one malloc/free per event,
// millions of times per netsim replication.  InlineAction stores the
// closure inline in a fixed 48-byte buffer instead (the kernel's event
// records embed it directly in the slab), so scheduling an event never
// allocates as long as the capture fits the budget.  All kernel clients
// capture at most a `this` pointer plus an index (16 bytes), leaving
// plenty of headroom; oversized or throwing-move callables fall back to
// a heap box transparently, trading speed for correctness.
//
// Move-only by design: an event's action is consumed exactly once (fire
// or cancel), so copyability would only invite accidental duplication.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace wsn::des {

/// Inline storage budget (bytes) for an event closure.  See
/// docs/performance.md for how the number was chosen.
inline constexpr std::size_t kActionInlineCapacity = 48;

class InlineAction {
 public:
  InlineAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = InlineOps<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = BoxedOps<Fn>();
    }
  }

  InlineAction(InlineAction&& other) noexcept { MoveFrom(other); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the closure lives in the inline buffer (no heap box).
  bool IsInline() const noexcept { return ops_ != nullptr && ops_->inline_stored; }

  /// Invoke the stored callable.  Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  /// Destroy the stored callable (if any) and become empty.
  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* p);
    // Move-construct the callable at `dst` from `src` and destroy `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* p) noexcept;
    bool inline_stored;
  };

  // Inline storage requires a fitting size/alignment and a noexcept move
  // (the relocate hook must not throw: it runs inside vector growth and
  // move assignment).
  template <typename Fn>
  static constexpr bool FitsInline() {
    return sizeof(Fn) <= kActionInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const Ops* InlineOps() noexcept {
    static constexpr Ops ops = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) noexcept {
          Fn* from = static_cast<Fn*>(src);
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
        true,
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* BoxedOps() noexcept {
    static constexpr Ops ops = {
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        },
        [](void* p) noexcept { delete *static_cast<Fn**>(p); },
        false,
    };
    return &ops;
  }

  void MoveFrom(InlineAction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kActionInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace wsn::des
