#include "des/workload.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wsn::des {

using util::Require;

OpenWorkload::OpenWorkload(util::Distribution interarrival)
    : interarrival_(std::move(interarrival)) {}

std::optional<double> OpenWorkload::NextArrival(double now, util::Rng& rng) {
  return now + interarrival_.Sample(rng);
}

std::string OpenWorkload::Describe() const {
  return "open[" + interarrival_.Describe() + "]";
}

ClosedWorkload::ClosedWorkload(util::Distribution think_time)
    : think_time_(std::move(think_time)) {}

std::optional<double> ClosedWorkload::NextArrival(double now, util::Rng& rng) {
  if (job_outstanding_) return std::nullopt;  // population of one
  job_outstanding_ = true;
  if (first_) {
    first_ = false;
    return now + think_time_.Sample(rng);
  }
  return std::max(now, ready_at_) + think_time_.Sample(rng);
}

void ClosedWorkload::OnCompletion(double now) {
  job_outstanding_ = false;
  ready_at_ = now;  // thinking starts at completion time
}

std::string ClosedWorkload::Describe() const {
  return "closed[think=" + think_time_.Describe() + "]";
}

TraceWorkload::TraceWorkload(std::vector<double> arrival_times)
    : times_(std::move(arrival_times)) {
  Require(std::is_sorted(times_.begin(), times_.end()),
          "trace arrival times must be sorted");
  for (double t : times_) Require(t >= 0.0, "trace times must be >= 0");
}

std::optional<double> TraceWorkload::NextArrival(double now, util::Rng&) {
  while (next_ < times_.size() && times_[next_] < now) ++next_;
  if (next_ >= times_.size()) return std::nullopt;
  return times_[next_++];
}

std::string TraceWorkload::Describe() const {
  return "trace[" + std::to_string(times_.size()) + " arrivals]";
}

std::unique_ptr<Workload> MakePoissonWorkload(double rate) {
  Require(rate > 0.0, "Poisson rate must be positive");
  return std::make_unique<OpenWorkload>(
      util::Distribution(util::Exponential{rate}));
}

}  // namespace wsn::des
