// Event-driven simulation of the paper's CPU power model — the reference
// ("software simulation") column of the paper's comparison.
//
// The CPU serves jobs FCFS.  Power-state logic:
//   * ACTIVE while a job is in service;
//   * IDLE when on with an empty system; after a deterministic Power Down
//     Threshold T of *continuous* idleness it drops to STANDBY;
//   * an arrival during STANDBY starts a deterministic Power Up Delay D
//     (POWERUP); service begins only after power-up completes;
//   * arrivals during POWERUP/ACTIVE simply queue.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "des/simulator.hpp"
#include "des/trace.hpp"
#include "des/workload.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace wsn::des {

/// The four power states of the modeled CPU.
enum class PowerState { kStandby, kPowerUp, kIdle, kActive };

const char* PowerStateName(PowerState s) noexcept;

/// Model parameters (paper Tables 2 and 4/5 sweeps).
struct CpuModelConfig {
  double arrival_rate = 1.0;        ///< lambda, jobs/s (open workload)
  double mean_service_time = 0.1;   ///< 1/mu, seconds
  double power_down_threshold = 0.1;  ///< T, seconds
  double power_up_delay = 0.001;      ///< D, seconds

  double sim_time = 1000.0;  ///< horizon per replication (paper Table 2)
  double warmup_time = 0.0;  ///< statistics discarded before this time

  /// Service-time distribution; exponential(mean_service_time) when unset.
  std::optional<util::Distribution> service_distribution;

  /// Workload override; Poisson(arrival_rate) when null.
  /// Non-null values are consulted per replication via the factory below.
  QueueKind queue_kind = QueueKind::kBinaryHeap;
  bool record_trace = false;  ///< capture the power-state timeline
};

/// Per-replication outputs.
struct CpuRunResult {
  double time_standby = 0.0;
  double time_powerup = 0.0;
  double time_idle = 0.0;
  double time_active = 0.0;
  double observed_time = 0.0;  ///< horizon minus warmup

  std::uint64_t jobs_arrived = 0;
  std::uint64_t jobs_completed = 0;
  util::RunningStats latency;        ///< per-job sojourn times
  util::TimeWeightedStats jobs_in_system;

  StateTrace trace;  ///< only populated when record_trace

  double FractionStandby() const noexcept;
  double FractionPowerUp() const noexcept;
  double FractionIdle() const noexcept;
  double FractionActive() const noexcept;
};

/// One replication of the CPU simulation.
class CpuSimulation {
 public:
  /// `workload` may be null => Poisson(config.arrival_rate).
  CpuSimulation(CpuModelConfig config, std::uint64_t seed,
                std::unique_ptr<Workload> workload = nullptr);

  /// Run to the horizon and return the collected statistics.
  CpuRunResult Run();

 private:
  class Impl;
  CpuModelConfig config_;
  std::uint64_t seed_;
  std::unique_ptr<Workload> workload_;
};

/// Run `replications` independent replications (seeds derived from `seed`
/// via RNG stream jumps), optionally in parallel, and aggregate.
struct CpuEnsembleResult {
  util::RunningStats standby;
  util::RunningStats powerup;
  util::RunningStats idle;
  util::RunningStats active;
  util::RunningStats mean_latency;
  util::RunningStats mean_jobs;
  util::RunningStats completed;
};

CpuEnsembleResult RunCpuEnsemble(const CpuModelConfig& config,
                                 std::uint64_t seed,
                                 std::size_t replications,
                                 std::size_t threads = 0);

}  // namespace wsn::des
