#include "des/simulator.hpp"

#include "util/error.hpp"

namespace wsn::des {

using util::Require;

Simulator::Simulator(QueueKind queue_kind) : queue_(MakeQueue(queue_kind)) {}

EventId Simulator::ScheduleAt(double time, Action action) {
  Require(time >= now_, "cannot schedule into the past");
  Require(static_cast<bool>(action), "event action must be callable");
  const EventId id = next_id_++;
  queue_->Push(time, id);
  actions_.emplace(id, std::move(action));
  return id;
}

EventId Simulator::ScheduleAfter(double delay, Action action) {
  Require(delay >= 0.0, "delay must be >= 0");
  return ScheduleAt(now_ + delay, std::move(action));
}

bool Simulator::Cancel(EventId id) {
  if (!queue_->Cancel(id)) return false;
  actions_.erase(id);
  return true;
}

bool Simulator::Step() {
  if (queue_->Empty()) return false;
  const QueuedEvent e = queue_->PopMin();
  now_ = e.time;
  const auto it = actions_.find(e.id);
  Require(it != actions_.end(), "internal: event without action");
  Action action = std::move(it->second);
  actions_.erase(it);
  ++processed_;
  action();
  return true;
}

void Simulator::RunUntil(double until) {
  Require(until >= now_, "horizon is in the past");
  while (!queue_->Empty() && queue_->PeekMin().time <= until) {
    Step();
  }
  now_ = until;
}

void Simulator::RunToCompletion() {
  while (Step()) {
  }
}

}  // namespace wsn::des
