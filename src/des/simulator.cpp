#include "des/simulator.hpp"

#include "util/error.hpp"

namespace wsn::des {

using util::Require;

namespace {

// The sequence field occupies the bits above the slot; leaving headroom
// of one bit keeps (seq << kEventSlotBits) from ever overflowing.
constexpr std::uint64_t kMaxSequence =
    (std::uint64_t{1} << (64 - kEventSlotBits - 1)) - 1;

}  // namespace

Simulator::Simulator(QueueKind queue_kind) : queue_(MakeQueue(queue_kind)) {}

std::uint32_t Simulator::AcquireSlot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    ++slab_reuses_;
    return slot;
  }
  Require(slab_.size() < kEventSlotMask,
          "event slab exhausted (too many simultaneously pending events)");
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Simulator::ReleaseSlot(std::uint32_t slot) {
  EventRecord& rec = slab_[slot];
  rec.action.Reset();
  rec.id = 0;
  rec.next_free = free_head_;
  free_head_ = slot;
}

EventId Simulator::ScheduleAt(double time, Action action) {
  Require(time >= now_, "cannot schedule into the past");
  Require(static_cast<bool>(action), "event action must be callable");
  Require(next_seq_ <= kMaxSequence, "event sequence space exhausted");
  const std::uint32_t slot = AcquireSlot();
  const EventId id = (next_seq_++ << kEventSlotBits) | slot;
  EventRecord& rec = slab_[slot];
  rec.id = id;
  rec.action = std::move(action);
  queue_->Push(time, id);
  ++live_;
  if (live_ > live_hwm_) live_hwm_ = live_;
  return id;
}

EventId Simulator::ScheduleAfter(double delay, Action action) {
  Require(delay >= 0.0, "delay must be >= 0");
  return ScheduleAt(now_ + delay, std::move(action));
}

bool Simulator::Cancel(EventId id) {
  // id 0 is the reserved "no event" handle; without this guard it would
  // compare equal to a freed record's cleared id field.
  if (id == 0) return false;
  const std::size_t slot = EventSlotOf(id);
  if (slot >= slab_.size() || slab_[slot].id != id) return false;
  queue_->Cancel(id);
  ReleaseSlot(static_cast<std::uint32_t>(slot));
  --live_;
  ++cancelled_;
  return true;
}

bool Simulator::Step() {
  if (live_ == 0) return false;
  const QueuedEvent e = queue_->PopMin();
  now_ = e.time;
  const std::size_t slot = EventSlotOf(e.id);
  Require(slot < slab_.size() && slab_[slot].id == e.id,
          "internal: stale event surfaced from the queue");
  // Move the action out and recycle the slot *before* invoking, so the
  // callback can schedule (possibly into this very slot) and the new
  // occupant's id — with a fresh sequence — can never alias the old one.
  Action action = std::move(slab_[slot].action);
  ReleaseSlot(static_cast<std::uint32_t>(slot));
  --live_;
  ++processed_;
  action();
  return true;
}

void Simulator::RunUntil(double until) {
  Require(until >= now_, "horizon is in the past");
  while (live_ > 0 && queue_->PeekMin().time <= until) {
    Step();
  }
  now_ = until;
}

void Simulator::RunToCompletion() {
  while (Step()) {
  }
}

}  // namespace wsn::des
