// Discrete-event simulation kernel.
//
// Single-threaded by design: one Simulator = one replication.  Parallelism
// happens one level up (util::ParallelFor over replications, each with a
// jump-separated RNG stream), which keeps the kernel free of locks and the
// results bit-reproducible for a given (seed, replication) pair.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>

#include "des/event_queue.hpp"

namespace wsn::des {

class Simulator {
 public:
  using Action = std::function<void()>;

  explicit Simulator(QueueKind queue_kind = QueueKind::kBinaryHeap);

  /// Current simulation time.
  double Now() const noexcept { return now_; }

  /// Schedule `action` at absolute time `time` (>= Now()).
  EventId ScheduleAt(double time, Action action);

  /// Schedule `action` after `delay` (>= 0) from Now().
  EventId ScheduleAfter(double delay, Action action);

  /// Cancel a pending event.  Returns false if it already fired or was
  /// already cancelled.
  bool Cancel(EventId id);

  /// Fire the next event.  Returns false when no events remain.
  bool Step();

  /// Run until the event queue drains or the next event is later than
  /// `until`; Now() is clamped to `until` at exit so time-weighted
  /// statistics can be finalized at the horizon.
  void RunUntil(double until);

  /// Run until the queue drains completely.
  void RunToCompletion();

  /// Number of events fired so far.
  std::uint64_t ProcessedEvents() const noexcept { return processed_; }

  /// Live (pending, uncancelled) events.
  std::size_t PendingEvents() const noexcept { return queue_->Size(); }

 private:
  std::unique_ptr<EventQueue> queue_;
  std::unordered_map<EventId, Action> actions_;
  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
};

}  // namespace wsn::des
