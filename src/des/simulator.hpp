// Discrete-event simulation kernel.
//
// Single-threaded by design: one Simulator = one replication.  Parallelism
// happens one level up (util::ParallelFor over replications, each with a
// jump-separated RNG stream), which keeps the kernel free of locks and the
// results bit-reproducible for a given (seed, replication) pair.
//
// Event storage is a generation-checked slab: each pending event occupies
// one slot of a free-list-recycled vector, its callback embedded inline
// via the small-buffer-optimized InlineAction — so the schedule/fire/cancel
// cycle performs no per-event heap allocation and no hashing.  An EventId
// packs (sequence << kEventSlotBits) | slot: the sequence keeps ids
// strictly monotone (the queues' FIFO tie-break), while the full-id
// equality check against the slot's current occupant makes Cancel O(1)
// and generation-safe — a handle from a previous occupant of a reused
// slot can never cancel (or observe) its successor.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "des/action.hpp"
#include "des/event_queue.hpp"

namespace wsn::des {

class Simulator {
 public:
  using Action = InlineAction;

  explicit Simulator(QueueKind queue_kind = QueueKind::kBinaryHeap);

  /// Current simulation time.
  double Now() const noexcept { return now_; }

  /// Schedule `action` at absolute time `time` (>= Now()).
  EventId ScheduleAt(double time, Action action);

  /// Schedule `action` after `delay` (>= 0) from Now().
  EventId ScheduleAfter(double delay, Action action);

  /// Cancel a pending event.  Returns false if it already fired or was
  /// already cancelled (including when its slot has been reused by a
  /// later event).
  bool Cancel(EventId id);

  /// Fire the next event.  Returns false when no events remain.
  bool Step();

  /// Run until the event queue drains or the next event is later than
  /// `until`; Now() is clamped to `until` at exit so time-weighted
  /// statistics can be finalized at the horizon.
  void RunUntil(double until);

  /// Run until the queue drains completely.
  void RunToCompletion();

  /// Number of events fired so far.
  std::uint64_t ProcessedEvents() const noexcept { return processed_; }

  /// Live (pending, uncancelled) events.  Counted by the kernel itself,
  /// so the number is exact even while a lazy-deletion queue still holds
  /// cancelled-but-unpopped entries.
  std::size_t PendingEvents() const noexcept { return live_; }

  /// High-water slot count of the event-record slab (diagnostics: the
  /// peak number of simultaneously pending events this kernel has seen).
  std::size_t SlabSlots() const noexcept { return slab_.size(); }

  /// Kernel counters for the obs metrics layer.  All maintained as plain
  /// unconditional increments on fields the hot path already touches, so
  /// they cost the same whether or not anyone reads them.
  struct KernelStats {
    std::uint64_t scheduled = 0;    ///< events ever scheduled
    std::uint64_t fired = 0;        ///< events fired
    std::uint64_t cancelled = 0;    ///< events cancelled before firing
    std::uint64_t slab_reuses = 0;  ///< slot acquisitions served by the
                                    ///< free list (vs slab growth)
    std::uint64_t live_hwm = 0;     ///< peak simultaneously pending events
    std::uint64_t slab_slots = 0;   ///< event-record slab size
  };

  KernelStats Stats() const noexcept {
    return {next_seq_ - 1, processed_, cancelled_,
            slab_reuses_,  live_hwm_,  slab_.size()};
  }

 private:
  struct EventRecord {
    InlineAction action;
    EventId id = 0;  ///< full id of the occupant; 0 while on the free list
    std::uint32_t next_free = kNoFreeSlot;
  };

  static constexpr std::uint32_t kNoFreeSlot =
      std::numeric_limits<std::uint32_t>::max();

  std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t slot);

  std::unique_ptr<EventQueue> queue_;
  std::vector<EventRecord> slab_;
  std::uint32_t free_head_ = kNoFreeSlot;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t slab_reuses_ = 0;
  std::uint64_t live_hwm_ = 0;
};

}  // namespace wsn::des
