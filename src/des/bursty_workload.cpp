#include "des/bursty_workload.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace wsn::des {

using util::Require;

MmppWorkload::MmppWorkload(std::vector<double> rates,
                           std::vector<std::vector<double>> generator,
                           std::size_t initial_phase)
    : rates_(std::move(rates)), q_(std::move(generator)),
      phase_(initial_phase) {
  const std::size_t n = rates_.size();
  Require(n >= 1, "MMPP needs at least one phase");
  Require(q_.size() == n, "MMPP generator must be square");
  Require(initial_phase < n, "MMPP initial phase out of range");
  for (std::size_t i = 0; i < n; ++i) {
    Require(q_[i].size() == n, "MMPP generator must be square");
    Require(rates_[i] >= 0.0, "MMPP rates must be >= 0");
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) Require(q_[i][j] >= 0.0, "MMPP off-diagonals must be >= 0");
      row += q_[i][j];
    }
    Require(std::abs(row) < 1e-9, "MMPP generator rows must sum to zero");
  }
}

std::optional<double> MmppWorkload::NextArrival(double now, util::Rng& rng) {
  // Competing exponentials: in phase i, the next event is either an
  // arrival (rate rates_[i]) or a phase switch (rate -q_[i][i]).  Iterate
  // switches until an arrival happens.
  double t = now;
  for (;;) {
    const double arrival_rate = rates_[phase_];
    const double switch_rate = -q_[phase_][phase_];
    const double total = arrival_rate + switch_rate;
    if (total <= 0.0) return std::nullopt;  // absorbing silent phase
    t += util::SampleExponential(rng, total);
    if (util::UniformDouble(rng) * total < arrival_rate) {
      return t;
    }
    // Phase switch: pick the destination proportionally to q_[i][j].
    double u = util::UniformDouble(rng) * switch_rate;
    for (std::size_t j = 0; j < rates_.size(); ++j) {
      if (j == phase_) continue;
      u -= q_[phase_][j];
      if (u <= 0.0) {
        phase_ = j;
        break;
      }
    }
  }
}

std::string MmppWorkload::Describe() const {
  std::ostringstream os;
  os << "mmpp[" << rates_.size() << " phases]";
  return os.str();
}

double MmppWorkload::MeanRate() const {
  const std::size_t n = rates_.size();
  // Power iteration on the uniformized phase chain.
  double lambda_max = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    lambda_max = std::max(lambda_max, -q_[i][i]);
  }
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  if (lambda_max > 0.0) {
    const double scale = lambda_max * 1.05;
    for (int it = 0; it < 200000; ++it) {
      std::vector<double> next(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          const double p =
              (i == j) ? 1.0 + q_[i][i] / scale : q_[i][j] / scale;
          next[j] += pi[i] * p;
        }
      }
      double diff = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        diff = std::max(diff, std::abs(next[i] - pi[i]));
      }
      pi = std::move(next);
      if (diff < 1e-14) break;
    }
  }
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += pi[i] * rates_[i];
  return mean;
}

BatchRenewalWorkload::BatchRenewalWorkload(util::Distribution interarrival,
                                           std::uint32_t batch_size,
                                           double geometric_mean)
    : interarrival_(std::move(interarrival)), fixed_batch_(batch_size),
      geometric_mean_(geometric_mean) {
  if (geometric_mean_ == 0.0) {
    Require(fixed_batch_ >= 1, "batch size must be >= 1");
  } else {
    Require(geometric_mean_ >= 1.0, "geometric batch mean must be >= 1");
  }
}

std::optional<double> BatchRenewalWorkload::NextArrival(double now,
                                                        util::Rng& rng) {
  if (remaining_in_batch_ > 0) {
    --remaining_in_batch_;
    return batch_time_;  // co-arrival at the renewal instant
  }
  batch_time_ = now + interarrival_.Sample(rng);
  std::uint32_t size = fixed_batch_;
  if (geometric_mean_ > 0.0) {
    // Geometric on {1, 2, ...} with mean geometric_mean_: success prob
    // p = 1/mean; size = 1 + floor(log(U)/log(1-p)).
    const double p = 1.0 / geometric_mean_;
    size = 1;
    if (p < 1.0) {
      const double u = util::UniformDoubleOpenLow(rng);
      size = 1 + static_cast<std::uint32_t>(
                     std::floor(std::log(u) / std::log(1.0 - p)));
    }
  }
  remaining_in_batch_ = size - 1;
  return batch_time_;
}

std::string BatchRenewalWorkload::Describe() const {
  std::ostringstream os;
  if (geometric_mean_ > 0.0) {
    os << "batch[geo mean=" << geometric_mean_ << ", "
       << interarrival_.Describe() << "]";
  } else {
    os << "batch[" << fixed_batch_ << ", " << interarrival_.Describe() << "]";
  }
  return os.str();
}

}  // namespace wsn::des
