// State-transition trace recorder.  Used by tests to assert the exact
// power-state timeline of the CPU simulator under deterministic workloads,
// and by examples for visual inspection.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wsn::des {

struct TraceEntry {
  double time = 0.0;
  std::string state;
};

class StateTrace {
 public:
  /// Record that the model entered `state` at `time`.  Consecutive
  /// duplicates are collapsed.
  void Record(double time, std::string state);

  const std::vector<TraceEntry>& Entries() const noexcept { return entries_; }
  std::size_t Size() const noexcept { return entries_.size(); }

  /// Total time spent in `state` over [0, horizon].
  double TimeIn(const std::string& state, double horizon) const;

  /// Render as "t0:state0 -> t1:state1 -> ...".
  std::string Render() const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace wsn::des
