#include "des/trace.hpp"

#include <sstream>

#include "util/error.hpp"

namespace wsn::des {

void StateTrace::Record(double time, std::string state) {
  if (!entries_.empty()) {
    util::Require(time >= entries_.back().time,
                  "trace times must be non-decreasing");
    if (entries_.back().state == state) return;
  }
  entries_.push_back({time, std::move(state)});
}

double StateTrace::TimeIn(const std::string& state, double horizon) const {
  double total = 0.0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].time >= horizon) break;
    const double end =
        (i + 1 < entries_.size()) ? std::min(entries_[i + 1].time, horizon)
                                  : horizon;
    if (entries_[i].state == state) total += end - entries_[i].time;
  }
  return total;
}

std::string StateTrace::Render() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i) os << " -> ";
    os << entries_[i].time << ":" << entries_[i].state;
  }
  return os.str();
}

}  // namespace wsn::des
