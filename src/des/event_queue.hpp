// Pending-event set implementations for the DES kernel.
//
// The kernel needs: insert (time, payload), extract-min by (time, seq),
// and cancellation.  Ties break FIFO via a monotone sequence number so
// simultaneous events (immediate chains, zero delays) process in schedule
// order — a documented, deterministic semantics.
//
// Three interchangeable structures are provided; the binary heap is the
// default, the others exist for the scheduling-structure ablation bench:
//   * BinaryHeapEventQueue — lazy-deletion d-ary (d=2) heap, O(log n);
//     cancellation is O(1) via a slot-indexed liveness vector (no
//     hashing — see the EventId layout notes below).
//   * SortedListEventQueue — std::multiset, O(log n) with bigger constants,
//     but supports eager cancellation.
//   * CalendarEventQueue   — classic Brown calendar queue, amortized O(1)
//     for stationary event-time distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace wsn::des {

using EventId = std::uint64_t;

/// EventId bit layout (shared contract between the kernel and the
/// queues): the low kEventSlotBits address the kernel's event-record
/// slab slot, the high bits carry a monotonically increasing schedule
/// sequence number.  Two consequences the queues rely on:
///   * ids are strictly increasing in schedule order (FIFO tie-break
///     stays a plain integer comparison), and
///   * at any instant, no two *live* ids share the same low-bit slot —
///     which lets the binary heap keep an O(1), hash-free cancellation
///     index addressed by slot (stale entries from a reused slot fail
///     the full-id equality check).
/// Standalone users of the queues (tests, ablations) satisfy the slot
/// rule automatically as long as their ids are unique, nonzero (0 is the
/// reserved "no event" id) and below 2^24.
inline constexpr unsigned kEventSlotBits = 24;
inline constexpr EventId kEventSlotMask = (EventId{1} << kEventSlotBits) - 1;

/// Slab slot addressed by an id.
constexpr std::size_t EventSlotOf(EventId id) noexcept {
  return static_cast<std::size_t>(id & kEventSlotMask);
}

/// One scheduled entry as seen by the kernel.
struct QueuedEvent {
  double time = 0.0;
  EventId id = 0;
};

/// Abstract pending-event set.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  /// Insert an event; `id` is unique per insert and encodes FIFO order
  /// (the kernel hands out monotonically increasing ids).
  virtual void Push(double time, EventId id) = 0;

  /// True if no live events remain.
  virtual bool Empty() const = 0;

  /// Remove and return the earliest live event.  Precondition: !Empty().
  virtual QueuedEvent PopMin() = 0;

  /// Earliest live event without removing it.  Precondition: !Empty().
  virtual QueuedEvent PeekMin() = 0;

  /// Cancel by id.  Returns false when the id is not live (already fired
  /// or already cancelled).
  virtual bool Cancel(EventId id) = 0;

  /// Number of live events.
  virtual std::size_t Size() const = 0;

  virtual std::string Name() const = 0;
};

std::unique_ptr<EventQueue> MakeBinaryHeapQueue();
std::unique_ptr<EventQueue> MakeSortedListQueue();
/// Throws InvalidArgument unless initial_buckets >= 1 and bucket_width
/// is positive and finite.
std::unique_ptr<EventQueue> MakeCalendarQueue(std::size_t initial_buckets = 64,
                                              double bucket_width = 0.1);

/// Which structure the kernel should use.
enum class QueueKind { kBinaryHeap, kSortedList, kCalendar };

std::unique_ptr<EventQueue> MakeQueue(QueueKind kind);

}  // namespace wsn::des
