#include "energy/radio.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsn::energy {

using util::Require;

RadioModel::RadioModel(RadioParameters params) : params_(params) {
  Require(params_.elec_nj_per_bit >= 0.0 &&
              params_.amp_friis_pj_per_bit_m2 >= 0.0 &&
              params_.amp_multipath_pj_per_bit_m4 >= 0.0 &&
              params_.crossover_m > 0.0 && params_.sleep_mw >= 0.0 &&
              params_.listen_mw >= 0.0,
          "radio parameters must be non-negative");
}

double RadioModel::TransmitEnergy(std::size_t bits, double distance_m) const {
  Require(distance_m >= 0.0, "distance must be >= 0");
  const double b = static_cast<double>(bits);
  const double elec_j = b * params_.elec_nj_per_bit * 1e-9;
  double amp_j = 0.0;
  if (distance_m < params_.crossover_m) {
    amp_j = b * params_.amp_friis_pj_per_bit_m2 * 1e-12 * distance_m *
            distance_m;
  } else {
    amp_j = b * params_.amp_multipath_pj_per_bit_m4 * 1e-12 *
            std::pow(distance_m, 4.0);
  }
  return elec_j + amp_j;
}

double RadioModel::ReceiveEnergy(std::size_t bits) const {
  return static_cast<double>(bits) * params_.elec_nj_per_bit * 1e-9;
}

double RadioModel::ListenEnergy(double seconds) const {
  Require(seconds >= 0.0, "duration must be >= 0");
  return params_.listen_mw * seconds / 1000.0;
}

double RadioModel::SleepEnergy(double seconds) const {
  Require(seconds >= 0.0, "duration must be >= 0");
  return params_.sleep_mw * seconds / 1000.0;
}

}  // namespace wsn::energy
