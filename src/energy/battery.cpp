#include "energy/battery.hpp"

#include "util/error.hpp"

namespace wsn::energy {

using util::Require;

Battery::Battery(double capacity_mah, double voltage) {
  Require(capacity_mah > 0.0, "battery capacity must be positive");
  Require(voltage > 0.0, "battery voltage must be positive");
  // mAh * V = mWh; * 3.6 = joules.
  capacity_joules_ = capacity_mah * voltage * 3.6;
  remaining_joules_ = capacity_joules_;
}

bool Battery::Drain(double joules) {
  Require(joules >= 0.0, "drain must be >= 0");
  remaining_joules_ -= joules;
  if (remaining_joules_ < 0.0) remaining_joules_ = 0.0;
  return remaining_joules_ > 0.0;
}

double Battery::LifetimeSeconds(double milliwatts) const {
  Require(milliwatts > 0.0, "draw must be positive");
  return capacity_joules_ / (milliwatts / 1000.0);
}

}  // namespace wsn::energy
