#include "energy/power_state.hpp"

#include "util/error.hpp"

namespace wsn::energy {

void PowerStateTable::Validate() const {
  util::Require(standby_mw >= 0.0 && idle_mw >= 0.0 && powerup_mw >= 0.0 &&
                    active_mw >= 0.0,
                "power draws must be non-negative");
  util::Require(standby_mw <= idle_mw,
                "standby draw should not exceed idle draw");
  util::Require(idle_mw <= active_mw,
                "idle draw should not exceed active draw");
}

PowerStateTable Pxa271() {
  return {"PXA271", /*standby=*/17.0, /*idle=*/88.0,
          /*powerup=*/192.442, /*active=*/193.0};
}

PowerStateTable Msp430() {
  // ~3V supply: sleep ~6 uW, idle (LPM0) ~0.16 mW, wakeup burst ~3.6 mW,
  // active ~3.6 mW.
  return {"MSP430", 0.006, 0.165, 3.6, 3.6};
}

PowerStateTable Atmega128L() {
  // ~3V supply: power-save ~0.06 mW, idle ~9.6 mW, wake ~24 mW,
  // active ~24 mW.
  return {"ATmega128L", 0.06, 9.6, 24.0, 24.0};
}

}  // namespace wsn::energy
