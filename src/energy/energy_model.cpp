#include "energy/energy_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsn::energy {

using util::Require;

void StateShares::Validate(double tol) const {
  for (double s : {standby, powerup, idle, active}) {
    Require(s >= -1e-12 && s <= 1.0 + 1e-9 && std::isfinite(s),
            "state share outside [0,1]");
  }
  Require(std::abs(Sum() - 1.0) <= tol, "state shares must sum to 1");
}

double AveragePowerMilliwatts(const StateShares& shares,
                              const PowerStateTable& table) {
  table.Validate();
  return shares.standby * table.standby_mw + shares.powerup * table.powerup_mw +
         shares.idle * table.idle_mw + shares.active * table.active_mw;
}

double TotalEnergyJoules(const StateShares& shares,
                         const PowerStateTable& table, double seconds) {
  Require(seconds >= 0.0, "duration must be >= 0");
  return AveragePowerMilliwatts(shares, table) * seconds / 1000.0;
}

double EnergyFromTimesJoules(double t_standby, double t_powerup,
                             double t_idle, double t_active,
                             const PowerStateTable& table) {
  table.Validate();
  Require(t_standby >= 0.0 && t_powerup >= 0.0 && t_idle >= 0.0 &&
              t_active >= 0.0,
          "state times must be >= 0");
  const double mj = t_standby * table.standby_mw +
                    t_powerup * table.powerup_mw + t_idle * table.idle_mw +
                    t_active * table.active_mw;
  return mj / 1000.0;
}

}  // namespace wsn::energy
