// CPU power-state tables.  The paper's Table 3 (PXA271 numbers from Jung
// et al., EWSN 2007) is the default; presets for two other common WSN
// microcontrollers are included for the examples.
#pragma once

#include <string>

namespace wsn::energy {

/// Power draw (milliwatts) in each of the four modeled CPU states.
struct PowerStateTable {
  std::string name;
  double standby_mw = 0.0;
  double idle_mw = 0.0;
  double powerup_mw = 0.0;
  double active_mw = 0.0;

  /// Checks all draws are non-negative and ordering is sane
  /// (standby <= idle <= active); throws InvalidArgument otherwise.
  void Validate() const;
};

/// Paper Table 3: Intel PXA271 (mW): standby 17, idle 88,
/// powering up 192.442, active 193.
PowerStateTable Pxa271();

/// TI MSP430F1611-class node (values in the same ballpark as Telos-style
/// motes; used by WSN examples, not by the paper reproduction).
PowerStateTable Msp430();

/// Atmel ATmega128L-class node (Mica2-style).
PowerStateTable Atmega128L();

}  // namespace wsn::energy
