// First-order radio energy model (Heinzelman-style): electronics cost per
// bit plus distance-dependent amplifier cost.  Used by the WSN examples —
// the paper notes communication dominates node energy, so the node model
// in src/wsn pairs the CPU model with this radio.
#pragma once

#include <cstddef>

namespace wsn::energy {

struct RadioParameters {
  double elec_nj_per_bit = 50.0;      ///< TX/RX electronics, nJ/bit
  double amp_friis_pj_per_bit_m2 = 10.0;   ///< free-space amp, pJ/bit/m^2
  double amp_multipath_pj_per_bit_m4 = 0.0013;  ///< two-ray, pJ/bit/m^4
  double crossover_m = 87.0;          ///< free-space/two-ray switch distance
  double sleep_mw = 0.0001;           ///< radio asleep draw
  double listen_mw = 60.0;            ///< idle listening draw
};

class RadioModel {
 public:
  explicit RadioModel(RadioParameters params = {});

  /// Energy (joules) to transmit `bits` over `distance_m` meters.
  double TransmitEnergy(std::size_t bits, double distance_m) const;

  /// Energy (joules) to receive `bits`.
  double ReceiveEnergy(std::size_t bits) const;

  /// Energy (joules) spent listening for `seconds`.
  double ListenEnergy(double seconds) const;

  /// Energy (joules) asleep for `seconds`.
  double SleepEnergy(double seconds) const;

  const RadioParameters& Parameters() const noexcept { return params_; }

 private:
  RadioParameters params_;
};

}  // namespace wsn::energy
