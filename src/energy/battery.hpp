// Idealized battery for node-lifetime estimation in the WSN examples:
// a fixed energy budget drained at the node's average power.
#pragma once

namespace wsn::energy {

class Battery {
 public:
  /// A battery of `capacity_mah` at `voltage` volts (e.g. 2x AA:
  /// ~2500 mAh at 3.0 V).
  Battery(double capacity_mah, double voltage);

  /// Total usable energy in joules.
  double CapacityJoules() const noexcept { return capacity_joules_; }

  /// Remaining energy after draining `joules`.
  double Remaining() const noexcept { return remaining_joules_; }

  /// Drain `joules`; clamps at zero.  Returns true while charge remains.
  bool Drain(double joules);

  bool Depleted() const noexcept { return remaining_joules_ <= 0.0; }

  /// Lifetime in seconds at a constant average draw of `milliwatts`
  /// (computed on the full capacity, independent of Drain state).
  double LifetimeSeconds(double milliwatts) const;

 private:
  double capacity_joules_;
  double remaining_joules_;
};

}  // namespace wsn::energy
