// Energy computation (paper Eq. 25): occupancy-weighted power draw times
// elapsed time.  Power is in mW, time in seconds, energy reported in
// joules (mW * s = mJ; divided by 1000).
#pragma once

#include "energy/power_state.hpp"

namespace wsn::energy {

/// Fraction of time spent in each CPU state; must sum to ~1.
struct StateShares {
  double standby = 0.0;
  double powerup = 0.0;
  double idle = 0.0;
  double active = 0.0;

  double Sum() const noexcept { return standby + powerup + idle + active; }

  /// Throws InvalidArgument if any share is outside [0, 1+eps] or the sum
  /// deviates from 1 by more than `tol`.
  void Validate(double tol = 1e-6) const;
};

/// Paper Eq. 25: average power (mW) at the given occupancy.
double AveragePowerMilliwatts(const StateShares& shares,
                              const PowerStateTable& table);

/// Paper Eq. 25: total energy in joules over `seconds`.
double TotalEnergyJoules(const StateShares& shares,
                         const PowerStateTable& table, double seconds);

/// Energy in joules from explicit per-state times (seconds).
double EnergyFromTimesJoules(double t_standby, double t_powerup,
                             double t_idle, double t_active,
                             const PowerStateTable& table);

}  // namespace wsn::energy
