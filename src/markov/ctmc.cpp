#include "markov/ctmc.hpp"

#include <cmath>

#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "markov/transient_solver.hpp"
#include "util/error.hpp"

namespace wsn::markov {

using util::ModelError;
using util::Require;

Ctmc::Ctmc(std::size_t n) : labels_(n) {}

std::size_t Ctmc::AddState(std::string label) {
  labels_.push_back(std::move(label));
  return labels_.size() - 1;
}

const std::string& Ctmc::Label(std::size_t i) const {
  Require(i < labels_.size(), "CTMC state index out of range");
  return labels_[i];
}

void Ctmc::AddRate(std::size_t i, std::size_t j, double rate) {
  Require(i < labels_.size() && j < labels_.size(),
          "CTMC transition endpoint out of range");
  Require(i != j, "CTMC self-loops are meaningless (rates, not probabilities)");
  Require(rate >= 0.0 && std::isfinite(rate), "CTMC rate must be >= 0");
  if (rate == 0.0) return;
  edges_.push_back({i, j, rate});
}

double Ctmc::ExitRate(std::size_t i) const {
  Require(i < labels_.size(), "CTMC state index out of range");
  double total = 0.0;
  for (const Edge& e : edges_) {
    if (e.from == i) total += e.rate;
  }
  return total;
}

linalg::Matrix Ctmc::Generator() const {
  const std::size_t n = labels_.size();
  linalg::Matrix q(n, n, 0.0);
  for (const Edge& e : edges_) {
    q(e.from, e.to) += e.rate;
    q(e.from, e.from) -= e.rate;
  }
  return q;
}

linalg::CsrMatrix Ctmc::SparseGenerator() const {
  const std::size_t n = labels_.size();
  linalg::CooBuilder coo(n, n);
  for (const Edge& e : edges_) {
    coo.Add(e.from, e.to, e.rate);
    coo.Add(e.from, e.from, -e.rate);
  }
  return linalg::CsrMatrix(coo);
}

linalg::CsrMatrix Ctmc::SparseGeneratorTransposed() const {
  const std::size_t n = labels_.size();
  linalg::CooBuilder coo(n, n);
  for (const Edge& e : edges_) {
    coo.Add(e.to, e.from, e.rate);
    coo.Add(e.from, e.from, -e.rate);
  }
  return linalg::CsrMatrix(coo);
}

std::vector<double> Ctmc::ExitRates() const {
  std::vector<double> exit(labels_.size(), 0.0);
  for (const Edge& e : edges_) exit[e.from] += e.rate;
  return exit;
}

std::vector<double> Ctmc::StationaryDistribution(
    std::size_t dense_threshold) const {
  const std::size_t n = labels_.size();
  if (n == 0) throw ModelError("CTMC has no states");
  if (n == 1) return {1.0};
  if (edges_.empty()) throw ModelError("CTMC has no transitions");
  if (n <= dense_threshold) {
    return linalg::StationaryFromGenerator(Generator());
  }
  linalg::IterativeOptions opts;
  opts.tolerance = 1e-13;
  auto result = linalg::StationaryGaussSeidel(SparseGenerator(), opts);
  if (!result.converged) {
    throw ModelError("CTMC stationary solve did not converge");
  }
  return std::move(result.solution);
}

std::vector<double> Ctmc::TransientDistribution(const std::vector<double>& p0,
                                                double t,
                                                double epsilon) const {
  const std::size_t n = labels_.size();
  Require(p0.size() == n, "initial distribution dimension mismatch");
  Require(t >= 0.0, "time must be >= 0");
  if (t == 0.0 || edges_.empty()) return p0;
  // Single-shot front door over the incremental solver: one checkpoint
  // step from 0 to t.  Callers with many time points should hold a
  // TransientSolver themselves and advance it (see transient_solver.hpp).
  TransientSolver solver(*this, p0, epsilon);
  return solver.AdvanceTo(t);
}

double Ctmc::StationaryReward(const std::vector<double>& reward,
                              std::size_t dense_threshold) const {
  Require(reward.size() == labels_.size(), "reward dimension mismatch");
  const std::vector<double> pi = StationaryDistribution(dense_threshold);
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) acc += pi[i] * reward[i];
  return acc;
}

}  // namespace wsn::markov
