#include "markov/ctmc.hpp"

#include <cmath>

#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace wsn::markov {

using util::ModelError;
using util::Require;

Ctmc::Ctmc(std::size_t n) : labels_(n) {}

std::size_t Ctmc::AddState(std::string label) {
  labels_.push_back(std::move(label));
  return labels_.size() - 1;
}

const std::string& Ctmc::Label(std::size_t i) const {
  Require(i < labels_.size(), "CTMC state index out of range");
  return labels_[i];
}

void Ctmc::AddRate(std::size_t i, std::size_t j, double rate) {
  Require(i < labels_.size() && j < labels_.size(),
          "CTMC transition endpoint out of range");
  Require(i != j, "CTMC self-loops are meaningless (rates, not probabilities)");
  Require(rate >= 0.0 && std::isfinite(rate), "CTMC rate must be >= 0");
  if (rate == 0.0) return;
  edges_.push_back({i, j, rate});
}

double Ctmc::ExitRate(std::size_t i) const {
  Require(i < labels_.size(), "CTMC state index out of range");
  double total = 0.0;
  for (const Edge& e : edges_) {
    if (e.from == i) total += e.rate;
  }
  return total;
}

linalg::Matrix Ctmc::Generator() const {
  const std::size_t n = labels_.size();
  linalg::Matrix q(n, n, 0.0);
  for (const Edge& e : edges_) {
    q(e.from, e.to) += e.rate;
    q(e.from, e.from) -= e.rate;
  }
  return q;
}

linalg::CsrMatrix Ctmc::SparseGenerator() const {
  const std::size_t n = labels_.size();
  linalg::CooBuilder coo(n, n);
  for (const Edge& e : edges_) {
    coo.Add(e.from, e.to, e.rate);
    coo.Add(e.from, e.from, -e.rate);
  }
  return linalg::CsrMatrix(coo);
}

std::vector<double> Ctmc::StationaryDistribution(
    std::size_t dense_threshold) const {
  const std::size_t n = labels_.size();
  if (n == 0) throw ModelError("CTMC has no states");
  if (n == 1) return {1.0};
  if (edges_.empty()) throw ModelError("CTMC has no transitions");
  if (n <= dense_threshold) {
    return linalg::StationaryFromGenerator(Generator());
  }
  linalg::IterativeOptions opts;
  opts.tolerance = 1e-13;
  auto result = linalg::StationaryGaussSeidel(SparseGenerator(), opts);
  if (!result.converged) {
    throw ModelError("CTMC stationary solve did not converge");
  }
  return std::move(result.solution);
}

std::vector<double> Ctmc::TransientDistribution(const std::vector<double>& p0,
                                                double t,
                                                double epsilon) const {
  const std::size_t n = labels_.size();
  Require(p0.size() == n, "initial distribution dimension mismatch");
  Require(t >= 0.0, "time must be >= 0");
  if (t == 0.0 || edges_.empty()) return p0;

  // Uniformization: P(t) = sum_k e^{-Lt} (Lt)^k / k! * p0 P^k,
  // with P = I + Q / L, L >= max exit rate.
  double max_exit = 0.0;
  std::vector<double> exit(n, 0.0);
  for (const Edge& e : edges_) exit[e.from] += e.rate;
  for (double x : exit) max_exit = std::max(max_exit, x);
  const double big_lambda = max_exit * 1.02 + 1e-12;
  const linalg::CsrMatrix q = SparseGenerator();

  const double lt = big_lambda * t;
  // Truncation point: continue until cumulative Poisson weight >= 1-eps.
  std::vector<double> v = p0;          // p0 P^k as k grows
  std::vector<double> acc(n, 0.0);

  // Stable Poisson recurrence with scaling: w_0 = e^{-lt}.  For very large
  // lt we start from log-space.
  double log_w = -lt;
  double cumulative = 0.0;
  std::size_t k = 0;
  const std::size_t k_max = static_cast<std::size_t>(lt + 10.0 * std::sqrt(lt) + 50.0);
  while (cumulative < 1.0 - epsilon && k <= k_max) {
    const double w = std::exp(log_w);
    if (w > 0.0) {
      for (std::size_t i = 0; i < n; ++i) acc[i] += w * v[i];
      cumulative += w;
    }
    // v <- v P = v + (Q^T v)/L.
    std::vector<double> qt_v = q.ApplyTransposed(v);
    for (std::size_t i = 0; i < n; ++i) v[i] += qt_v[i] / big_lambda;
    ++k;
    log_w += std::log(lt) - std::log(static_cast<double>(k));
  }
  // Fold remaining mass into the last computed vector (small by choice
  // of k_max) and renormalize.
  double sum = 0.0;
  for (double x : acc) sum += x;
  if (sum > 0.0) {
    for (double& x : acc) x /= sum;
  }
  return acc;
}

double Ctmc::StationaryReward(const std::vector<double>& reward,
                              std::size_t dense_threshold) const {
  Require(reward.size() == labels_.size(), "reward dimension mismatch");
  const std::vector<double> pi = StationaryDistribution(dense_threshold);
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) acc += pi[i] * reward[i];
  return acc;
}

}  // namespace wsn::markov
