// The paper's Markov model of the CPU (Section 4.1): an M/M/1 birth–death
// chain extended with a standby state and two *deterministic* transitions —
// power-down after a constant idle threshold T and a constant power-up
// delay D — approximated in stationary analysis via Cox's method of
// supplementary variables.  Implements paper Eqs. (11)–(24) in closed form.
//
// Notation (matching the paper):
//   lambda — Poisson arrival rate
//   mu     — exponential service rate (mean service time 1/mu)
//   T      — Power Down Threshold (deterministic idle time before standby)
//   D      — Power Up Delay (deterministic wake-up time)
//   rho    — lambda/mu, must be < 1
#pragma once

#include <cstddef>

namespace wsn::markov {

/// Stationary state probabilities and derived metrics of the
/// supplementary-variable CPU model.
struct SupplementaryResult {
  double p_standby = 0.0;   ///< ps, Eq. (17)
  double p_powerup = 0.0;   ///< pu, Eq. (18)
  double p_idle = 0.0;      ///< pi, Eq. (12)
  double p_active = 0.0;    ///< G0(1), Eq. (19) — utilization

  double mean_jobs = 0.0;       ///< L(1), Eq. (21)
  double mean_latency = 0.0;    ///< tau = L(1)/lambda, Eq. (22)

  /// p_standby + p_powerup + p_idle + p_active; 1 up to rounding by
  /// construction (Eq. 10).  Kept for auditability.
  double probability_sum = 0.0;
};

class SupplementaryVariableModel {
 public:
  /// Throws InvalidArgument unless lambda, mu > 0, T, D >= 0 and rho < 1.
  SupplementaryVariableModel(double lambda, double mu, double T, double D);

  double Lambda() const noexcept { return lambda_; }
  double Mu() const noexcept { return mu_; }
  double PowerDownThreshold() const noexcept { return T_; }
  double PowerUpDelay() const noexcept { return D_; }
  double Rho() const noexcept { return lambda_ / mu_; }

  /// Evaluate Eqs. (11)-(22).
  SupplementaryResult Evaluate() const;

  /// Paper Eq. (23): total running time to process N jobs.
  double TotalRunningTime(std::size_t total_jobs) const;

  /// Paper Eq. (24): total energy to process N jobs given state power
  /// draws (units: power in mW -> energy in mW*s = mJ; callers scale).
  double TotalEnergyForJobs(std::size_t total_jobs, double p_idle_power,
                            double p_standby_power, double p_powerup_power,
                            double p_active_power) const;

 private:
  double lambda_;
  double mu_;
  double T_;
  double D_;
};

}  // namespace wsn::markov
