// Reference formulas for M/M/1 and M/M/1/K queues.  These are the
// sanity anchors for the DES kernel, the Petri-net simulator and the
// CTMC solver: every engine in this project is validated against them.
#pragma once

#include <cstddef>

namespace wsn::markov {

/// Classic M/M/1 results; requires rho = lambda/mu < 1.
struct Mm1 {
  double lambda;
  double mu;

  double Rho() const;
  /// P(system empty).
  double P0() const;
  /// P(n jobs in system).
  double Pn(std::size_t n) const;
  /// Mean number in system L.
  double MeanJobs() const;
  /// Mean number in queue Lq.
  double MeanQueue() const;
  /// Mean sojourn time W (Little).
  double MeanLatency() const;
  /// Mean waiting time Wq.
  double MeanWait() const;
  /// Server utilization.
  double Utilization() const;
};

/// Finite-buffer M/M/1/K (K = max jobs in system, including in service).
struct Mm1k {
  double lambda;
  double mu;
  std::size_t capacity;

  double Rho() const;
  double Pn(std::size_t n) const;
  /// Probability an arrival is lost.
  double BlockingProbability() const;
  double MeanJobs() const;
  /// Effective throughput lambda (1 - P_block).
  double Throughput() const;
  double Utilization() const;
};

}  // namespace wsn::markov
