#include "markov/mm1.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsn::markov {

using util::Require;

double Mm1::Rho() const {
  Require(lambda > 0.0 && mu > 0.0, "rates must be positive");
  return lambda / mu;
}

double Mm1::P0() const {
  const double rho = Rho();
  Require(rho < 1.0, "M/M/1 requires rho < 1");
  return 1.0 - rho;
}

double Mm1::Pn(std::size_t n) const {
  return P0() * std::pow(Rho(), static_cast<double>(n));
}

double Mm1::MeanJobs() const {
  const double rho = Rho();
  Require(rho < 1.0, "M/M/1 requires rho < 1");
  return rho / (1.0 - rho);
}

double Mm1::MeanQueue() const {
  const double rho = Rho();
  Require(rho < 1.0, "M/M/1 requires rho < 1");
  return rho * rho / (1.0 - rho);
}

double Mm1::MeanLatency() const { return MeanJobs() / lambda; }

double Mm1::MeanWait() const { return MeanQueue() / lambda; }

double Mm1::Utilization() const {
  const double rho = Rho();
  Require(rho < 1.0, "M/M/1 requires rho < 1");
  return rho;
}

double Mm1k::Rho() const {
  Require(lambda > 0.0 && mu > 0.0, "rates must be positive");
  return lambda / mu;
}

double Mm1k::Pn(std::size_t n) const {
  Require(capacity >= 1, "capacity must be >= 1");
  if (n > capacity) return 0.0;
  const double rho = Rho();
  if (std::abs(rho - 1.0) < 1e-12) {
    return 1.0 / static_cast<double>(capacity + 1);
  }
  const double k = static_cast<double>(capacity);
  return (1.0 - rho) * std::pow(rho, static_cast<double>(n)) /
         (1.0 - std::pow(rho, k + 1.0));
}

double Mm1k::BlockingProbability() const { return Pn(capacity); }

double Mm1k::MeanJobs() const {
  double mean = 0.0;
  for (std::size_t n = 1; n <= capacity; ++n) {
    mean += static_cast<double>(n) * Pn(n);
  }
  return mean;
}

double Mm1k::Throughput() const {
  return lambda * (1.0 - BlockingProbability());
}

double Mm1k::Utilization() const { return 1.0 - Pn(0); }

}  // namespace wsn::markov
