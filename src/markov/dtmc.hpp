// Discrete-time Markov chain: stationary analysis, n-step evolution and
// absorbing-chain quantities.  Used by the Petri-net solver to eliminate
// vanishing markings (immediate-transition firing is a DTMC absorption
// problem) and directly available to library users.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace wsn::markov {

class Dtmc {
 public:
  explicit Dtmc(std::size_t n);

  std::size_t StateCount() const noexcept { return n_; }

  /// Set transition probability P(i -> j).  Rows must sum to 1 before any
  /// analysis call (checked, tolerance 1e-9).
  void SetProbability(std::size_t i, std::size_t j, double p);

  /// Accumulate probability mass (for chains built incrementally).
  void AddProbability(std::size_t i, std::size_t j, double p);

  const linalg::Matrix& TransitionMatrix() const noexcept { return p_; }

  /// Verify all rows sum to 1 within tolerance; throws ModelError if not.
  void Validate(double tol = 1e-9) const;

  /// Distribution after `steps` steps from `p0`.
  std::vector<double> Evolve(const std::vector<double>& p0,
                             std::size_t steps) const;

  /// Stationary distribution (direct solve; chain must be ergodic).
  std::vector<double> StationaryDistribution() const;

  /// For an absorbing chain where `absorbing[i]` marks absorbing states:
  /// returns the matrix B with B(t, a) = probability that transient state t
  /// is eventually absorbed in absorbing state a.  Row/column indices are
  /// positions within the transient / absorbing subsets (in state order).
  linalg::Matrix AbsorptionProbabilities(
      const std::vector<bool>& absorbing) const;

  /// Expected number of steps before absorption, per transient state.
  std::vector<double> ExpectedStepsToAbsorption(
      const std::vector<bool>& absorbing) const;

 private:
  std::size_t n_;
  linalg::Matrix p_;
};

}  // namespace wsn::markov
