#include "markov/stages.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wsn::markov {

using util::Require;

namespace {

std::size_t AutoMaxJobs(double lambda, double mu, double D) {
  const double rho = lambda / mu;
  // Queue peaks during power-up (Poisson(lambda*D) arrivals) and during
  // M/M/1 busy periods; budget both with wide safety margins so the
  // truncated probability mass is far below solver tolerance.
  const double ld = lambda * D;
  const double from_powerup = ld + 8.0 * std::sqrt(ld + 1.0);
  const double from_queue = 30.0 / std::max(1e-6, 1.0 - rho);
  return static_cast<std::size_t>(
      std::clamp(std::ceil(from_powerup + from_queue), 40.0, 4000.0));
}

}  // namespace

StagesCpuModel::StagesCpuModel(double lambda, double mu, double T, double D,
                               std::size_t k_powerdown, std::size_t k_powerup,
                               std::size_t max_jobs)
    : lambda_(lambda), mu_(mu), T_(T), D_(D), kt_(k_powerdown),
      kd_(k_powerup), max_jobs_(max_jobs) {
  Require(lambda > 0.0 && mu > 0.0, "rates must be positive");
  Require(lambda < mu, "stability requires lambda < mu");
  Require(T >= 0.0 && D >= 0.0, "delays must be >= 0");
  Require(kt_ >= 1 && kd_ >= 1, "stage counts must be >= 1");
  if (max_jobs_ == 0) max_jobs_ = AutoMaxJobs(lambda, mu, D);
}

Ctmc StagesCpuModel::BuildChain() const {
  const bool has_idle = T_ > 0.0;
  const bool has_powerup = D_ > 0.0;
  const std::size_t kt = has_idle ? kt_ : 0;
  const std::size_t kd = has_powerup ? kd_ : 0;
  const std::size_t n_states =
      1 + kt + max_jobs_ + (has_powerup ? max_jobs_ * kd : 0);

  Ctmc chain(n_states);
  const std::size_t standby = 0;
  auto idle = [&](std::size_t j) { return 1 + j; };
  auto active = [&](std::size_t n) { return 1 + kt + (n - 1); };
  auto powerup = [&](std::size_t n, std::size_t j) {
    return 1 + kt + max_jobs_ + (n - 1) * kd + j;
  };

  const double idle_phase_rate = has_idle ? static_cast<double>(kt_) / T_ : 0.0;
  const double pu_phase_rate = has_powerup ? static_cast<double>(kd_) / D_ : 0.0;

  // Standby: an arrival starts the power-up (or goes straight to service
  // when D == 0).
  if (has_powerup) {
    chain.AddRate(standby, powerup(1, 0), lambda_);
  } else {
    chain.AddRate(standby, active(1), lambda_);
  }

  // Idle timer phases.
  for (std::size_t j = 0; j < kt; ++j) {
    chain.AddRate(idle(j), active(1), lambda_);  // arrival interrupts timer
    if (j + 1 < kt) {
      chain.AddRate(idle(j), idle(j + 1), idle_phase_rate);
    } else {
      chain.AddRate(idle(j), standby, idle_phase_rate);
    }
  }

  // Active (CPU on, n >= 1 jobs in system).
  for (std::size_t n = 1; n <= max_jobs_; ++n) {
    if (n < max_jobs_) chain.AddRate(active(n), active(n + 1), lambda_);
    if (n > 1) {
      chain.AddRate(active(n), active(n - 1), mu_);
    } else if (has_idle) {
      chain.AddRate(active(1), idle(0), mu_);
    } else {
      chain.AddRate(active(1), standby, mu_);  // T == 0: sleep immediately
    }
  }

  // Power-up phases with queue growth.
  if (has_powerup) {
    for (std::size_t n = 1; n <= max_jobs_; ++n) {
      for (std::size_t j = 0; j < kd; ++j) {
        if (n < max_jobs_) {
          chain.AddRate(powerup(n, j), powerup(n + 1, j), lambda_);
        }
        if (j + 1 < kd) {
          chain.AddRate(powerup(n, j), powerup(n, j + 1), pu_phase_rate);
        } else {
          chain.AddRate(powerup(n, j), active(n), pu_phase_rate);
        }
      }
    }
  }
  return chain;
}

StagesResult StagesCpuModel::SharesFromDistribution(
    const std::vector<double>& pi) const {
  const bool has_idle = T_ > 0.0;
  const bool has_powerup = D_ > 0.0;
  const std::size_t kt = has_idle ? kt_ : 0;
  const std::size_t kd = has_powerup ? kd_ : 0;
  Require(pi.size() == 1 + kt + max_jobs_ +
                           (has_powerup ? max_jobs_ * kd : 0),
          "distribution size does not match the expanded chain");

  StagesResult out;
  out.states = pi.size();
  out.p_standby = pi[0];
  for (std::size_t j = 0; j < kt; ++j) out.p_idle += pi[1 + j];
  for (std::size_t n = 1; n <= max_jobs_; ++n) {
    const double p = pi[1 + kt + (n - 1)];
    out.p_active += p;
    out.mean_jobs += static_cast<double>(n) * p;
  }
  if (has_powerup) {
    for (std::size_t n = 1; n <= max_jobs_; ++n) {
      for (std::size_t j = 0; j < kd; ++j) {
        const double p = pi[1 + kt + max_jobs_ + (n - 1) * kd + j];
        out.p_powerup += p;
        out.mean_jobs += static_cast<double>(n) * p;
      }
    }
  }
  return out;
}

StagesResult StagesCpuModel::Evaluate() const {
  const Ctmc chain = BuildChain();
  return SharesFromDistribution(chain.StationaryDistribution());
}

}  // namespace wsn::markov
