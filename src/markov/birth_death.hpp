// Closed-form stationary analysis of finite birth–death chains.
// The paper's Fig. 2 is a birth–death skeleton with extra powerup/standby
// structure; the pure birth–death solution provides the reference behaviour
// and a validation target for the CTMC solver.
#pragma once

#include <cstddef>
#include <vector>

namespace wsn::markov {

/// Stationary distribution of the birth–death chain on {0..K} with birth
/// rates `birth[i]` (i -> i+1, i in 0..K-1) and death rates `death[i]`
/// (i+1 -> i, i in 0..K-1).  All rates must be positive.
std::vector<double> BirthDeathStationary(const std::vector<double>& birth,
                                         const std::vector<double>& death);

/// Expected value of the stationary state index.
double BirthDeathMeanState(const std::vector<double>& birth,
                           const std::vector<double>& death);

}  // namespace wsn::markov
