// Continuous-time Markov chain: construction, stationary analysis and
// transient analysis (uniformization).
//
// This is both a standalone modeling tool and the numerical back end of the
// Petri-net solver: an exponential-only SPN reduces to a CTMC over its
// tangible reachability graph (petri/ctmc_solver.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace wsn::markov {

/// A finite CTMC under construction / analysis.
class Ctmc {
 public:
  /// `n` states, all rates zero.
  explicit Ctmc(std::size_t n);

  /// Add a state, returning its index.  Optional human-readable label.
  static Ctmc Empty() { return Ctmc(0); }
  std::size_t AddState(std::string label = {});

  std::size_t StateCount() const noexcept { return labels_.size(); }
  const std::string& Label(std::size_t i) const;

  /// Add transition rate `rate` from state i to state j (i != j, rate >= 0).
  /// Repeated calls accumulate.
  void AddRate(std::size_t i, std::size_t j, double rate);

  /// Total exit rate of state i.
  double ExitRate(std::size_t i) const;

  /// Dense generator matrix Q (rows sum to zero).
  linalg::Matrix Generator() const;

  /// Sparse generator.
  linalg::CsrMatrix SparseGenerator() const;

  /// Sparse transposed generator Q^T.  Row i holds the inflow rates into
  /// state i, so p' = Q^T p is a cache-friendly row-major gather — the
  /// form the uniformization solver iterates millions of times.
  linalg::CsrMatrix SparseGeneratorTransposed() const;

  /// Exit rate of every state in one O(edges) pass (ExitRate(i) per
  /// state would be O(states * edges)).
  std::vector<double> ExitRates() const;

  /// Stationary distribution.  Uses dense LU for chains up to
  /// `dense_threshold` states, Gauss–Seidel beyond.  Throws ModelError if
  /// the chain has no transitions or the solve fails.
  std::vector<double> StationaryDistribution(
      std::size_t dense_threshold = 512) const;

  /// Transient distribution at time t from initial distribution p0, via
  /// uniformization with truncation error below `epsilon`.  One-shot:
  /// callers evaluating many time points should hold a TransientSolver
  /// (transient_solver.hpp), which precomputes the generator once and
  /// advances incrementally.
  std::vector<double> TransientDistribution(const std::vector<double>& p0,
                                            double t,
                                            double epsilon = 1e-10) const;

  /// Expected reward rate at stationarity: sum_i pi_i * reward[i].
  double StationaryReward(const std::vector<double>& reward,
                          std::size_t dense_threshold = 512) const;

 private:
  struct Edge {
    std::size_t from;
    std::size_t to;
    double rate;
  };

  std::vector<std::string> labels_;
  std::vector<Edge> edges_;
};

}  // namespace wsn::markov
