#include "markov/birth_death.hpp"

#include "util/error.hpp"

namespace wsn::markov {

using util::Require;

std::vector<double> BirthDeathStationary(const std::vector<double>& birth,
                                         const std::vector<double>& death) {
  Require(birth.size() == death.size(),
          "birth/death rate lists must be the same length");
  const std::size_t k = birth.size();
  for (double r : birth) Require(r > 0.0, "birth rates must be positive");
  for (double r : death) Require(r > 0.0, "death rates must be positive");

  // pi_{i+1} = pi_i * birth_i / death_i; normalize.
  std::vector<double> pi(k + 1, 0.0);
  pi[0] = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    pi[i + 1] = pi[i] * birth[i] / death[i];
  }
  double sum = 0.0;
  for (double p : pi) sum += p;
  for (double& p : pi) p /= sum;
  return pi;
}

double BirthDeathMeanState(const std::vector<double>& birth,
                           const std::vector<double>& death) {
  const std::vector<double> pi = BirthDeathStationary(birth, death);
  double mean = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    mean += static_cast<double>(i) * pi[i];
  }
  return mean;
}

}  // namespace wsn::markov
