// Method-of-stages CTMC baseline for the CPU power model.
//
// The paper's two deterministic delays (power-down threshold T, power-up
// delay D) make the system non-Markovian.  The classic alternative to the
// supplementary-variable approximation is to *replace each deterministic
// delay with an Erlang-k distribution of the same mean* (k exponential
// phases of rate k/T resp. k/D).  As k grows, Erlang-k converges to the
// point mass, and the resulting (fully Markovian) CTMC converges to the
// true process — at the cost of a k-fold state-space blow-up.
//
// k = 1 is the naive "pretend the constant delay is exponential" model;
// the stage-count ablation (bench_ablation_stages) sweeps k to show the
// convergence the paper's discussion implies.
#pragma once

#include <cstddef>

#include "markov/ctmc.hpp"

namespace wsn::markov {

struct StagesResult {
  double p_standby = 0.0;
  double p_powerup = 0.0;
  double p_idle = 0.0;
  double p_active = 0.0;
  double mean_jobs = 0.0;     ///< E[number of jobs in system]
  std::size_t states = 0;     ///< size of the expanded CTMC
};

class StagesCpuModel {
 public:
  /// `k_powerdown` / `k_powerup` are the Erlang stage counts for T and D.
  /// `max_jobs` truncates the queue (0 = choose automatically from the
  /// load so that the truncation mass is negligible).
  StagesCpuModel(double lambda, double mu, double T, double D,
                 std::size_t k_powerdown, std::size_t k_powerup,
                 std::size_t max_jobs = 0);

  /// Build the CTMC and solve for the stationary distribution.
  StagesResult Evaluate() const;

  /// The expanded chain (exposed for inspection/tests).
  Ctmc BuildChain() const;

  /// Aggregate an arbitrary distribution over the chain's states into
  /// the four shares (used by transient analysis).
  StagesResult SharesFromDistribution(
      const std::vector<double>& distribution) const;

  /// Index of the standby state (the chain's initial condition).
  std::size_t StandbyState() const noexcept { return 0; }

  std::size_t MaxJobs() const noexcept { return max_jobs_; }

 private:
  double lambda_;
  double mu_;
  double T_;
  double D_;
  std::size_t kt_;
  std::size_t kd_;
  std::size_t max_jobs_;
};

}  // namespace wsn::markov
