#include "markov/transient_solver.hpp"

#include <algorithm>
#include <cmath>

#include "markov/ctmc.hpp"
#include "util/error.hpp"

namespace wsn::markov {

using util::Require;

TransientSolver::TransientSolver(const Ctmc& chain, std::vector<double> p0,
                                 double epsilon)
    : p0_(std::move(p0)), epsilon_(epsilon) {
  const std::size_t n = chain.StateCount();
  Require(n > 0, "transient solver needs a chain with states");
  Require(p0_.size() == n, "initial distribution dimension mismatch");
  Require(epsilon_ > 0.0 && epsilon_ < 1.0,
          "uniformization epsilon must be in (0, 1)");

  double max_exit = 0.0;
  for (double x : chain.ExitRates()) max_exit = std::max(max_exit, x);
  if (max_exit > 0.0) {
    // Same constant Ctmc::TransientDistribution has always used: a 2%
    // margin over the spectral bound keeps the uniformized chain
    // aperiodic and the series stable.
    lambda_ = max_exit * 1.02 + 1e-12;
    qt_ = chain.SparseGeneratorTransposed();
    v_.resize(n);
    qt_v_.resize(n);
    acc_.resize(n);
  }
  dist_ = p0_;
}

void TransientSolver::Reset() {
  time_ = 0.0;
  dist_ = p0_;
}

const std::vector<double>& TransientSolver::AdvanceTo(double t) {
  Require(t >= 0.0, "time must be >= 0");
  Require(t >= time_,
          "TransientSolver cannot step backwards; Reset() to rewind");
  const double dt = t - time_;
  if (dt > 0.0 && lambda_ > 0.0) StepBy(dt);
  time_ = t;
  return dist_;
}

void TransientSolver::StepBy(double dt) {
  const std::size_t n = dist_.size();
  const double lt = lambda_ * dt;

  // Poisson-weighted series sum_k w_k(lt) * (P^T)^k dist with
  // P = I + Q/Lambda; the weight recurrence runs in log space so very
  // large lt cannot underflow the first terms into zeros prematurely.
  v_ = dist_;
  std::fill(acc_.begin(), acc_.end(), 0.0);
  double log_w = -lt;
  double cumulative = 0.0;
  std::size_t k = 0;
  const std::size_t k_max =
      static_cast<std::size_t>(lt + 10.0 * std::sqrt(lt) + 50.0);
  while (cumulative < 1.0 - epsilon_ && k <= k_max) {
    const double w = std::exp(log_w);
    if (w > 0.0) {
      for (std::size_t i = 0; i < n; ++i) acc_[i] += w * v_[i];
      cumulative += w;
    }
    // v <- P^T v = v + (Q^T v) / Lambda, via the pre-built transposed
    // CSR (row-major gather, no per-term allocation).
    qt_.ApplyInto(v_, qt_v_);
    for (std::size_t i = 0; i < n; ++i) v_[i] += qt_v_[i] / lambda_;
    ++k;
    log_w += std::log(lt) - std::log(static_cast<double>(k));
  }

  // Fold the truncated tail mass back in by renormalizing, exactly as
  // the single-shot path does.
  double sum = 0.0;
  for (double x : acc_) sum += x;
  if (sum > 0.0) {
    const double inv = 1.0 / sum;
    for (std::size_t i = 0; i < n; ++i) dist_[i] = acc_[i] * inv;
  } else {
    dist_ = acc_;
  }
}

}  // namespace wsn::markov
