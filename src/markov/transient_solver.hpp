// Incremental uniformization solver for CTMC transient analysis.
//
// Ctmc::TransientDistribution answers one (p0, t) query by running the
// Poisson-weighted uniformization series from scratch — including
// rebuilding the sparse generator.  Trajectory-style consumers (state
// shares on a 200-point time grid, cumulative-energy integrals) used to
// pay that full series per point, making an m-point grid O(m^2) series
// terms in total.
//
// TransientSolver hoists everything t-independent out of the query:
// construction builds the transposed CSR generator, the exit rates and
// the uniformization constant Lambda once; AdvanceTo(t) then steps the
// distribution from the last checkpoint to t, so a sorted sequence of
// queries costs one series over the *gaps* — O(Lambda * t_max) matrix-
// vector products overall instead of O(sum_i Lambda * t_i).  All series
// workspaces are preallocated members: a step performs no allocation.
//
// Checkpointed stepping is mathematically exact for a Markov process
// (p(t) = e^{Q(t-t0)} p(t0)); numerically each step truncates its series
// at mass epsilon and renormalizes, so incremental results agree with a
// fresh single-shot run to ~epsilon per checkpoint (pinned at 1e-12 in
// tests/test_transient_solver.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse.hpp"

namespace wsn::markov {

class Ctmc;

class TransientSolver {
 public:
  /// Precomputes the uniformized operator of `chain` (not retained) and
  /// sets the checkpoint to (t = 0, p0).  `p0` must have one entry per
  /// state; `epsilon` bounds the truncated Poisson tail mass per step.
  TransientSolver(const Ctmc& chain, std::vector<double> p0,
                  double epsilon = 1e-10);

  std::size_t StateCount() const noexcept { return dist_.size(); }

  /// Time of the current checkpoint.
  double CurrentTime() const noexcept { return time_; }

  /// Distribution at the current checkpoint.
  const std::vector<double>& Current() const noexcept { return dist_; }

  /// Advance the checkpoint to absolute time `t` (>= CurrentTime(),
  /// throws InvalidArgument otherwise) and return the distribution at t.
  /// Calling with t == CurrentTime() is a no-op returning Current().
  const std::vector<double>& AdvanceTo(double t);

  /// Rewind to the initial condition (t = 0, p0).
  void Reset();

  /// The uniformization constant Lambda (0 for a chain with no
  /// transitions, whose distribution is constant in time).
  double UniformizationRate() const noexcept { return lambda_; }

 private:
  void StepBy(double dt);

  std::vector<double> p0_;
  double epsilon_;
  double lambda_ = 0.0;
  linalg::CsrMatrix qt_;  ///< transposed generator, built once

  double time_ = 0.0;
  std::vector<double> dist_;
  // Series workspaces (member-owned so AdvanceTo never allocates).
  std::vector<double> v_;
  std::vector<double> qt_v_;
  std::vector<double> acc_;
};

}  // namespace wsn::markov
