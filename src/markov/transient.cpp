#include "markov/transient.hpp"

#include <algorithm>
#include <numeric>

#include "markov/transient_solver.hpp"
#include "util/error.hpp"

namespace wsn::markov {

using util::Require;

TransientCpuAnalysis::TransientCpuAnalysis(double lambda, double mu, double T,
                                           double D, std::size_t stages,
                                           std::size_t max_jobs)
    : model_(lambda, mu, T, D, stages, stages, max_jobs), T_(T), D_(D),
      kt_(stages), kd_(stages), chain_(model_.BuildChain()) {}

std::vector<double> TransientCpuAnalysis::InitialDistribution() const {
  std::vector<double> p0(chain_.StateCount(), 0.0);
  p0[model_.StandbyState()] = 1.0;
  return p0;
}

TransientPoint TransientCpuAnalysis::SharesFrom(
    const std::vector<double>& dist, double t) const {
  const StagesResult r = model_.SharesFromDistribution(dist);
  TransientPoint out;
  out.time = t;
  out.p_standby = r.p_standby;
  out.p_powerup = r.p_powerup;
  out.p_idle = r.p_idle;
  out.p_active = r.p_active;
  out.mean_jobs = r.mean_jobs;
  return out;
}

TransientPoint TransientCpuAnalysis::At(double t) const {
  Require(t >= 0.0, "time must be >= 0");
  TransientSolver solver(chain_, InitialDistribution());
  return SharesFrom(solver.AdvanceTo(t), t);
}

std::vector<TransientPoint> TransientCpuAnalysis::Trajectory(
    const std::vector<double>& times) const {
  for (double t : times) {
    Require(t >= 0.0, "trajectory times must be >= 0");
  }
  std::vector<TransientPoint> out(times.size());
  if (times.empty()) return out;

  // The incremental solver consumes times in ascending order; evaluate a
  // sorted view and scatter results back to the input's positions.
  std::vector<std::size_t> order(times.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (!std::is_sorted(times.begin(), times.end())) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return times[a] < times[b];
    });
  }

  TransientSolver solver(chain_, InitialDistribution());
  for (std::size_t idx : order) {
    out[idx] = SharesFrom(solver.AdvanceTo(times[idx]), times[idx]);
  }
  return out;
}

double TransientCpuAnalysis::CumulativeEnergyJoules(
    double t, double standby_mw, double powerup_mw, double idle_mw,
    double active_mw, std::size_t grid_points) const {
  Require(t >= 0.0, "time must be >= 0");
  Require(grid_points >= 2, "need at least two grid points");
  if (t == 0.0) return 0.0;

  TransientSolver solver(chain_, InitialDistribution());
  const auto power_mw = [&](double at) {
    const TransientPoint p = SharesFrom(solver.AdvanceTo(at), at);
    return p.p_standby * standby_mw + p.p_powerup * powerup_mw +
           p.p_idle * idle_mw + p.p_active * active_mw;
  };

  // Trapezoid rule over an even grid, visited in one ascending solver
  // pass: the whole integral costs one uniformization series over [0, t].
  const double h = t / static_cast<double>(grid_points - 1);
  double acc = 0.5 * power_mw(0.0);
  for (std::size_t i = 1; i + 1 < grid_points; ++i) {
    acc += power_mw(h * static_cast<double>(i));
  }
  acc += 0.5 * power_mw(t);
  return acc * h / 1000.0;  // mW * s -> J
}

StagesResult TransientCpuAnalysis::StationaryLimit() const {
  return model_.Evaluate();
}

}  // namespace wsn::markov
