#include "markov/dtmc.hpp"

#include <cmath>

#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace wsn::markov {

using util::ModelError;
using util::Require;

Dtmc::Dtmc(std::size_t n) : n_(n), p_(n, n, 0.0) {
  Require(n > 0, "DTMC needs at least one state");
}

void Dtmc::SetProbability(std::size_t i, std::size_t j, double p) {
  Require(i < n_ && j < n_, "DTMC index out of range");
  Require(p >= 0.0 && p <= 1.0 + 1e-12, "probability must be in [0,1]");
  p_(i, j) = p;
}

void Dtmc::AddProbability(std::size_t i, std::size_t j, double p) {
  Require(i < n_ && j < n_, "DTMC index out of range");
  Require(p >= 0.0, "probability increment must be >= 0");
  p_(i, j) += p;
}

void Dtmc::Validate(double tol) const {
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n_; ++j) sum += p_(i, j);
    if (std::abs(sum - 1.0) > tol) {
      throw ModelError("DTMC row " + std::to_string(i) +
                       " sums to " + std::to_string(sum) + ", expected 1");
    }
  }
}

std::vector<double> Dtmc::Evolve(const std::vector<double>& p0,
                                 std::size_t steps) const {
  Require(p0.size() == n_, "initial distribution dimension mismatch");
  std::vector<double> v = p0;
  for (std::size_t s = 0; s < steps; ++s) {
    v = p_.ApplyTransposed(v);
  }
  return v;
}

std::vector<double> Dtmc::StationaryDistribution() const {
  Validate();
  return linalg::StationaryFromStochastic(p_);
}

linalg::Matrix Dtmc::AbsorptionProbabilities(
    const std::vector<bool>& absorbing) const {
  Require(absorbing.size() == n_, "absorbing mask dimension mismatch");
  std::vector<std::size_t> transient, absorb;
  for (std::size_t i = 0; i < n_; ++i) {
    (absorbing[i] ? absorb : transient).push_back(i);
  }
  Require(!absorb.empty(), "no absorbing states");
  const std::size_t t = transient.size();
  const std::size_t a = absorb.size();
  if (t == 0) return linalg::Matrix(0, a);

  // Canonical form: B = (I - T)^{-1} R where T is transient->transient and
  // R is transient->absorbing.
  linalg::Matrix i_minus_t(t, t, 0.0);
  linalg::Matrix r(t, a, 0.0);
  for (std::size_t x = 0; x < t; ++x) {
    i_minus_t(x, x) = 1.0;
    for (std::size_t y = 0; y < t; ++y) {
      i_minus_t(x, y) -= p_(transient[x], transient[y]);
    }
    for (std::size_t y = 0; y < a; ++y) {
      r(x, y) = p_(transient[x], absorb[y]);
    }
  }
  linalg::LuDecomposition lu(std::move(i_minus_t));
  linalg::Matrix b(t, a, 0.0);
  std::vector<double> col(t);
  for (std::size_t y = 0; y < a; ++y) {
    for (std::size_t x = 0; x < t; ++x) col[x] = r(x, y);
    const std::vector<double> sol = lu.Solve(col);
    for (std::size_t x = 0; x < t; ++x) b(x, y) = sol[x];
  }
  return b;
}

std::vector<double> Dtmc::ExpectedStepsToAbsorption(
    const std::vector<bool>& absorbing) const {
  Require(absorbing.size() == n_, "absorbing mask dimension mismatch");
  std::vector<std::size_t> transient;
  bool any_absorbing = false;
  for (std::size_t i = 0; i < n_; ++i) {
    if (absorbing[i]) {
      any_absorbing = true;
    } else {
      transient.push_back(i);
    }
  }
  Require(any_absorbing, "no absorbing states");
  const std::size_t t = transient.size();
  if (t == 0) return {};
  linalg::Matrix i_minus_t(t, t, 0.0);
  for (std::size_t x = 0; x < t; ++x) {
    i_minus_t(x, x) = 1.0;
    for (std::size_t y = 0; y < t; ++y) {
      i_minus_t(x, y) -= p_(transient[x], transient[y]);
    }
  }
  return linalg::LuDecomposition(std::move(i_minus_t))
      .Solve(std::vector<double>(t, 1.0));
}

}  // namespace wsn::markov
