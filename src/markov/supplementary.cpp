#include "markov/supplementary.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsn::markov {

using util::Require;

SupplementaryVariableModel::SupplementaryVariableModel(double lambda,
                                                       double mu, double T,
                                                       double D)
    : lambda_(lambda), mu_(mu), T_(T), D_(D) {
  Require(lambda > 0.0 && std::isfinite(lambda), "lambda must be positive");
  Require(mu > 0.0 && std::isfinite(mu), "mu must be positive");
  Require(T >= 0.0 && std::isfinite(T), "T must be >= 0");
  Require(D >= 0.0 && std::isfinite(D), "D must be >= 0");
  Require(lambda < mu, "stability requires rho = lambda/mu < 1");
}

SupplementaryResult SupplementaryVariableModel::Evaluate() const {
  const double rho = Rho();
  const double elt = std::exp(lambda_ * T_);    // e^{lambda T}
  const double emld = std::exp(-lambda_ * D_);  // e^{-lambda D}
  const double ld = lambda_ * D_;

  // Eq. (17) denominator.
  const double denom = elt + (1.0 - rho) * (1.0 - emld) + rho * ld;

  SupplementaryResult r;
  r.p_standby = (1.0 - rho) / denom;                         // Eq. (17)
  r.p_powerup = (1.0 - rho) * (1.0 - emld) / denom;          // Eq. (18)
  r.p_idle = (elt - 1.0) * r.p_standby;                      // Eq. (12)
  r.p_active = rho * (elt + ld) / denom;                     // Eq. (19)
  r.probability_sum = r.p_standby + r.p_powerup + r.p_idle + r.p_active;

  // Eq. (21): L(1).
  r.mean_jobs = rho / (1.0 - rho) *
                (elt + 0.5 * (1.0 - rho) * ld * ld + (2.0 - rho) * ld) /
                denom;
  // Eq. (22).
  r.mean_latency = r.mean_jobs / lambda_;
  return r;
}

double SupplementaryVariableModel::TotalRunningTime(
    std::size_t total_jobs) const {
  const SupplementaryResult r = Evaluate();
  const double n = static_cast<double>(total_jobs);
  // Eq. (23): T_total = (N + L(1)^2) / lambda.
  return (n + r.mean_jobs * r.mean_jobs) / lambda_;
}

double SupplementaryVariableModel::TotalEnergyForJobs(
    std::size_t total_jobs, double p_idle_power, double p_standby_power,
    double p_powerup_power, double p_active_power) const {
  const SupplementaryResult r = Evaluate();
  const double weighted = r.p_idle * p_idle_power +
                          r.p_standby * p_standby_power +
                          r.p_powerup * p_powerup_power +
                          r.p_active * p_active_power;
  // Eq. (24).
  return weighted * TotalRunningTime(total_jobs);
}

}  // namespace wsn::markov
