// Transient (time-dependent) analysis of the CPU power model — an
// extension beyond the paper, which reports steady state only.  Useful
// for duty-cycled nodes that never reach stationarity within a sensing
// epoch, and for quantifying the warm-up bias that the steady-state
// estimators (paper Sec. 6's "long simulation time" remark) must discard.
//
// Built on the method-of-stages chain (stages.hpp) and uniformized
// transient solution (ctmc.hpp): deterministic delays are Erlang-k
// approximated, so accuracy improves with `stages` exactly as in the
// stationary case.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/stages.hpp"

namespace wsn::markov {

/// State shares at a point in time.
struct TransientPoint {
  double time = 0.0;
  double p_standby = 0.0;
  double p_powerup = 0.0;
  double p_idle = 0.0;
  double p_active = 0.0;
  double mean_jobs = 0.0;
};

class TransientCpuAnalysis {
 public:
  /// Same parameterization as StagesCpuModel; the chain starts in the
  /// standby state with an empty system (the paper's initial condition).
  TransientCpuAnalysis(double lambda, double mu, double T, double D,
                       std::size_t stages, std::size_t max_jobs = 0);

  /// Shares at time `t` (>= 0).
  TransientPoint At(double t) const;

  /// Shares along a time grid, answered by ONE incremental uniformization
  /// pass (markov::TransientSolver) instead of a full series per point.
  /// Every entry must be >= 0 (throws InvalidArgument otherwise); the
  /// grid need not be sorted — unsorted input is evaluated in ascending
  /// order internally and results are returned in the input's order.
  std::vector<TransientPoint> Trajectory(
      const std::vector<double>& times) const;

  /// Expected cumulative energy (joules) over [0, t] given per-state
  /// draws in mW, via trapezoidal integration of the transient power on
  /// `grid_points` points — a single incremental solver pass over the
  /// grid, O(points) series work rather than O(points^2).
  double CumulativeEnergyJoules(double t, double standby_mw,
                                double powerup_mw, double idle_mw,
                                double active_mw,
                                std::size_t grid_points = 64) const;

  /// Stationary shares (the t -> infinity limit) for convergence checks.
  StagesResult StationaryLimit() const;

 private:
  std::vector<double> InitialDistribution() const;
  TransientPoint SharesFrom(const std::vector<double>& dist, double t) const;

  StagesCpuModel model_;
  double T_;
  double D_;
  std::size_t kt_;
  std::size_t kd_;
  Ctmc chain_;
};

}  // namespace wsn::markov
