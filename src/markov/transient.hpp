// Transient (time-dependent) analysis of the CPU power model — an
// extension beyond the paper, which reports steady state only.  Useful
// for duty-cycled nodes that never reach stationarity within a sensing
// epoch, and for quantifying the warm-up bias that the steady-state
// estimators (paper Sec. 6's "long simulation time" remark) must discard.
//
// Built on the method-of-stages chain (stages.hpp) and uniformized
// transient solution (ctmc.hpp): deterministic delays are Erlang-k
// approximated, so accuracy improves with `stages` exactly as in the
// stationary case.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/stages.hpp"

namespace wsn::markov {

/// State shares at a point in time.
struct TransientPoint {
  double time = 0.0;
  double p_standby = 0.0;
  double p_powerup = 0.0;
  double p_idle = 0.0;
  double p_active = 0.0;
  double mean_jobs = 0.0;
};

class TransientCpuAnalysis {
 public:
  /// Same parameterization as StagesCpuModel; the chain starts in the
  /// standby state with an empty system (the paper's initial condition).
  TransientCpuAnalysis(double lambda, double mu, double T, double D,
                       std::size_t stages, std::size_t max_jobs = 0);

  /// Shares at time `t` (>= 0).
  TransientPoint At(double t) const;

  /// Shares along a time grid (one uniformization run per point).
  std::vector<TransientPoint> Trajectory(
      const std::vector<double>& times) const;

  /// Expected cumulative energy (joules) over [0, t] given per-state
  /// draws in mW, via trapezoidal integration of the transient power on
  /// `grid_points` points.
  double CumulativeEnergyJoules(double t, double standby_mw,
                                double powerup_mw, double idle_mw,
                                double active_mw,
                                std::size_t grid_points = 64) const;

  /// Stationary shares (the t -> infinity limit) for convergence checks.
  StagesResult StationaryLimit() const;

 private:
  std::vector<double> InitialDistribution() const;
  TransientPoint SharesFrom(const std::vector<double>& dist, double t) const;

  StagesCpuModel model_;
  double T_;
  double D_;
  std::size_t kt_;
  std::size_t kd_;
  Ctmc chain_;
};

}  // namespace wsn::markov
