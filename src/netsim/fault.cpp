#include "netsim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace wsn::netsim {

using util::Require;

const char* FaultEventKindName(FaultEventKind kind) noexcept {
  switch (kind) {
    case FaultEventKind::kCrash:
      return "crash";
    case FaultEventKind::kRecover:
      return "recover";
  }
  return "?";
}

void FaultConfig::Validate() const {
  Require(crash_rate_hz >= 0.0, "fault crash rate must be >= 0");
  Require(mean_outage_s >= 0.0, "fault mean outage must be >= 0");
  if (crash_rate_hz > 0.0) {
    Require(mean_outage_s > 0.0,
            "fault crashes need a positive mean outage (mean_outage_s)");
  }
  Require(jam_radius_m >= 0.0, "jam radius must be >= 0");
  Require(jam_duration_s >= 0.0, "jam duration must be >= 0");
  if (jam_windows > 0) {
    Require(jam_radius_m > 0.0, "jam windows need a positive radius");
    Require(jam_duration_s > 0.0, "jam windows need a positive duration");
    Require(jam_p_loss > 0.0 && jam_p_loss <= 1.0,
            "jam p_loss must be in (0, 1]");
  }
  Require(sink_outage_s >= 0.0, "sink outage length must be >= 0");
  if (sink_outages > 0) {
    Require(sink_outage_s > 0.0,
            "sink outages need a positive length (sink_outage_s)");
  }
  for (const FaultEvent& e : scripted) {
    Require(e.t >= 0.0, "scripted fault events must have t >= 0");
  }
}

namespace {

/// Exponential variate with mean `mean` (> 0).
double ExpDraw(util::Rng& rng, double mean) {
  return -std::log(util::UniformDoubleOpenLow(rng)) * mean;
}

}  // namespace

FaultPlan FaultPlan::Generate(const FaultConfig& config,
                              const std::vector<node::Position>& positions,
                              std::size_t sink_count, double horizon_s,
                              util::Rng rng) {
  config.Validate();
  Require(horizon_s > 0.0, "fault plan needs a positive horizon");
  const std::size_t n = positions.size();
  FaultPlan plan;

  for (const FaultEvent& e : config.scripted) {
    Require(e.node < n, "scripted fault event targets an unknown node");
    plan.events.push_back(e);
  }

  // Per-node crash Poisson process, nodes in index order so the plan is
  // a pure function of (config, topology, stream).  No crash can land
  // while the node is still down: the clock advances past each recovery.
  if (config.crash_rate_hz > 0.0) {
    const double mean_gap = 1.0 / config.crash_rate_hz;
    for (std::size_t i = 0; i < n; ++i) {
      double t = ExpDraw(rng, mean_gap);
      while (t < horizon_s) {
        const double outage = ExpDraw(rng, config.mean_outage_s);
        plan.events.push_back(
            {t, FaultEventKind::kCrash, static_cast<std::uint32_t>(i)});
        plan.events.push_back({t + outage, FaultEventKind::kRecover,
                               static_cast<std::uint32_t>(i)});
        t += outage + ExpDraw(rng, mean_gap);
      }
    }
  }
  // Stable by time: same-instant events fire in generation order, which
  // is itself deterministic — replays are exact, and a scripted
  // crash/recover pair at one instant keeps its authored order.
  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.t < b.t; });

  if (config.jam_windows > 0) {
    // Window centers land uniformly over the deployment's bounding box,
    // starts uniformly over the horizon.
    double min_x = std::numeric_limits<double>::infinity();
    double min_y = std::numeric_limits<double>::infinity();
    double max_x = -std::numeric_limits<double>::infinity();
    double max_y = -std::numeric_limits<double>::infinity();
    for (const node::Position& p : positions) {
      min_x = std::min(min_x, p.x);
      min_y = std::min(min_y, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    for (std::size_t k = 0; k < config.jam_windows; ++k) {
      JamWindow jam;
      jam.center.x = min_x + util::UniformDouble(rng) * (max_x - min_x);
      jam.center.y = min_y + util::UniformDouble(rng) * (max_y - min_y);
      jam.radius_m = config.jam_radius_m;
      jam.start_s = util::UniformDouble(rng) * horizon_s;
      jam.end_s = jam.start_s + config.jam_duration_s;
      jam.p_loss = config.jam_p_loss;
      plan.jams.push_back(jam);
    }
  }

  if (config.sink_outages > 0) {
    Require(sink_count > 0, "sink outages need at least one sink");
    for (std::size_t k = 0; k < config.sink_outages; ++k) {
      SinkOutage outage;
      outage.sink = static_cast<std::uint32_t>(k % sink_count);
      outage.start_s = util::UniformDouble(rng) * horizon_s;
      outage.end_s = outage.start_s + config.sink_outage_s;
      plan.sink_outages.push_back(outage);
    }
  }
  return plan;
}

double FaultEngine::JamExtraLoss(const node::Position& p,
                                 double now) const noexcept {
  double pass = 1.0;
  for (const JamWindow& jam : plan_.jams) {
    if (now < jam.start_s || now >= jam.end_s) continue;
    if (node::Distance2(p, jam.center) > jam.radius_m * jam.radius_m) continue;
    pass *= 1.0 - jam.p_loss;
  }
  return 1.0 - pass;
}

bool FaultEngine::SinkDown(std::size_t sink, double now) const noexcept {
  for (const SinkOutage& outage : plan_.sink_outages) {
    if (outage.sink == sink && now >= outage.start_s && now < outage.end_s) {
      return true;
    }
  }
  return false;
}

}  // namespace wsn::netsim
