#include "netsim/routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/error.hpp"

namespace wsn::netsim {

using util::Require;

namespace {

/// Pre-grid validation: SpatialGrid is a member, so the table's own
/// input checks must run before its construction.
const std::vector<node::Position>& Validated(
    const std::vector<node::Position>& positions, double max_hop_m) {
  Require(!positions.empty(), "routing table needs at least one node");
  Require(max_hop_m > 0.0, "hop range must be positive");
  return positions;
}

}  // namespace

RoutingTable::RoutingTable(node::Position sink, double max_hop_m,
                           std::vector<node::Position> positions)
    : RoutingTable(std::vector<node::Position>{sink}, max_hop_m,
                   std::move(positions)) {}

RoutingTable::RoutingTable(std::vector<node::Position> sinks, double max_hop_m,
                           std::vector<node::Position> positions)
    : sinks_(std::move(sinks)),
      max_hop_m_(max_hop_m),
      positions_(std::move(positions)),
      grid_(Validated(positions_, max_hop_m_), max_hop_m_) {
  Require(!sinks_.empty(), "routing table needs at least one sink");
  const std::size_t n = positions_.size();
  const double hop2 = max_hop_m_ * max_hop_m_;

  // Nearest-sink distances: compare in distance^2, one sqrt per node.
  // The argmin sink index rides along (strict < keeps the lowest index
  // among equals) for per-sender sink-outage queries.
  to_sink_.resize(n);
  nearest_sink_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double best2 = std::numeric_limits<double>::infinity();
    std::uint32_t best_sink = 0;
    for (std::size_t s = 0; s < sinks_.size(); ++s) {
      const double d2 = node::Distance2(positions_[i], sinks_[s]);
      if (d2 < best2) {
        best2 = d2;
        best_sink = static_cast<std::uint32_t>(s);
      }
    }
    to_sink_[i] = std::sqrt(best2);
    nearest_sink_[i] = best_sink;
  }

  // Per-node in-range neighbour lists, gathered from the 3x3 grid block
  // and sorted ascending — the greedy tie-break (lowest index wins on
  // equal remaining distance) scans each list in index order, exactly
  // like the historical all-pairs loop did.
  std::vector<std::pair<std::uint32_t, double>> candidates;
  nbr_start_.assign(n + 1, 0);
  nbr_.clear();
  nbr_d2_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    candidates.clear();
    grid_.ForEachCandidate(positions_[i], [&](std::size_t j) {
      if (j == i) return;
      const double d2 = node::Distance2(positions_[i], positions_[j]);
      if (d2 <= hop2) {
        candidates.emplace_back(static_cast<std::uint32_t>(j), d2);
      }
    });
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [j, d2] : candidates) {
      nbr_.push_back(j);
      nbr_d2_.push_back(d2);
    }
    nbr_start_[i + 1] = static_cast<std::uint32_t>(nbr_.size());
  }

  // All-alive fast path: route every node directly off its neighbour
  // list — no throwaway all-true liveness mask, no per-node mask reads.
  next_.assign(n, kNoRoute);
  hop_distance_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (to_sink_[i] <= max_hop_m_) {
      next_[i] = kSink;
      hop_distance_[i] = to_sink_[i];
      continue;
    }
    std::size_t best = kNoRoute;
    double best_remaining = to_sink_[i];
    double best_d2 = 0.0;
    for (std::uint32_t k = nbr_start_[i]; k < nbr_start_[i + 1]; ++k) {
      const std::uint32_t j = nbr_[k];
      if (to_sink_[j] < best_remaining) {
        best_remaining = to_sink_[j];
        best = j;
        best_d2 = nbr_d2_[k];
      }
    }
    next_[i] = best;
    hop_distance_[i] = (best == kNoRoute) ? 0.0 : std::sqrt(best_d2);
    if (best == kNoRoute) ++unrouted_alive_;
  }
}

void RoutingTable::Choose(std::size_t i, const std::vector<bool>& alive) {
  if (to_sink_[i] <= max_hop_m_) {
    next_[i] = kSink;
    hop_distance_[i] = to_sink_[i];
    return;
  }
  // Strictly-closer greedy choice; ties broken by lowest index via the
  // strict comparison in (sorted) scan order, matching Network::NextHop.
  std::size_t best = kNoRoute;
  double best_remaining = to_sink_[i];
  double best_d2 = 0.0;
  for (std::uint32_t k = nbr_start_[i]; k < nbr_start_[i + 1]; ++k) {
    const std::uint32_t j = nbr_[k];
    if (!alive[j]) continue;
    if (to_sink_[j] < best_remaining) {
      best_remaining = to_sink_[j];
      best = j;
      best_d2 = nbr_d2_[k];
    }
  }
  next_[i] = best;
  hop_distance_[i] = (best == kNoRoute) ? 0.0 : std::sqrt(best_d2);
}

void RoutingTable::Recompute(const std::vector<bool>& alive) {
  const std::size_t n = positions_.size();
  Require(alive.size() == n, "alive mask size mismatch");
  unrouted_alive_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) {
      next_[i] = kNoRoute;
      hop_distance_[i] = 0.0;
      continue;
    }
    Choose(i, alive);
    if (next_[i] == kNoRoute) ++unrouted_alive_;
  }
}

void RoutingTable::RecomputeLegacy(const std::vector<bool>& alive) {
  const std::size_t n = positions_.size();
  Require(alive.size() == n, "alive mask size mismatch");
  unrouted_alive_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) {
      next_[i] = kNoRoute;
      hop_distance_[i] = 0.0;
      continue;
    }
    if (to_sink_[i] <= max_hop_m_) {
      next_[i] = kSink;
      hop_distance_[i] = to_sink_[i];
      continue;
    }
    std::size_t best = kNoRoute;
    double best_remaining = to_sink_[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || !alive[j]) continue;
      if (node::Distance(positions_[i], positions_[j]) > max_hop_m_) continue;
      if (to_sink_[j] < best_remaining) {
        best_remaining = to_sink_[j];
        best = j;
      }
    }
    next_[i] = best;
    hop_distance_[i] =
        (best == kNoRoute) ? 0.0
                           : node::Distance(positions_[i], positions_[best]);
    if (best == kNoRoute) ++unrouted_alive_;
  }
}

void RoutingTable::RepairAfterDeath(std::size_t dead,
                                    const std::vector<bool>& alive) {
  const std::size_t n = positions_.size();
  Require(alive.size() == n, "alive mask size mismatch");
  Require(dead < n, "dead node index out of range");
  Require(!alive[dead], "RepairAfterDeath: node is still alive");

  worklist_.clear();
  worklist_.push_back(static_cast<std::uint32_t>(dead));
  // The dead node leaves the alive set: it stops counting toward
  // UnroutedAlive whatever its route was.
  if (next_[dead] == kNoRoute) --unrouted_alive_;
  next_[dead] = kNoRoute;
  hop_distance_[dead] = 0.0;
  while (!worklist_.empty()) {
    const std::uint32_t lost = worklist_.back();
    worklist_.pop_back();
    // A next hop is always within range, so every node routing through
    // `lost` sits in its (symmetric) neighbour list — no global scan.
    for (std::uint32_t k = nbr_start_[lost]; k < nbr_start_[lost + 1]; ++k) {
      const std::uint32_t i = nbr_[k];
      if (!alive[i] || next_[i] != lost) continue;
      Choose(i, alive);
      // Re-chosen nodes held a real route (next_ == lost) before, so
      // only the no-route outcome moves the UnroutedAlive counter.
      if (next_[i] == kNoRoute) ++unrouted_alive_;
      // Greedy hops depend only on geometry and liveness, never on
      // another node's chosen hop, so i's new route cannot invalidate
      // anyone else's: the worklist drains after the direct
      // predecessors of each dead node.
    }
  }
}

void RoutingTable::RepairAfterRecovery(std::size_t revived,
                                       const std::vector<bool>& alive) {
  const std::size_t n = positions_.size();
  Require(alive.size() == n, "alive mask size mismatch");
  Require(revived < n, "revived node index out of range");
  Require(alive[revived], "RepairAfterRecovery: node is not alive");

  // The revived node re-enters the alive set with a fresh greedy choice.
  Choose(revived, alive);
  if (next_[revived] == kNoRoute) ++unrouted_alive_;

  // Re-offer it to its neighbours.  A full Recompute would switch
  // neighbour j to the revived node exactly when it is strictly closer
  // to the sink than j's current best, or equally close with a lower
  // index (Choose's ascending-index scan keeps the first of equals);
  // no other node's candidate set changed, so nothing else can move.
  const double cand = to_sink_[revived];
  for (std::uint32_t k = nbr_start_[revived]; k < nbr_start_[revived + 1];
       ++k) {
    const std::uint32_t j = nbr_[k];
    if (!alive[j] || next_[j] == kSink) continue;
    bool better;
    if (next_[j] == kNoRoute) {
      // Choose starts from j's own distance: a relay must strictly beat
      // it.
      better = cand < to_sink_[j];
    } else {
      const double cur = to_sink_[next_[j]];
      better = cand < cur || (cand == cur && revived < next_[j]);
    }
    if (!better) continue;
    // A formerly-unrouted alive neighbour gains a route; routed ones
    // just improve, leaving the counter alone.
    if (next_[j] == kNoRoute) --unrouted_alive_;
    next_[j] = revived;
    hop_distance_[j] = std::sqrt(nbr_d2_[k]);
  }
}

bool RoutingTable::Connected(std::size_t i,
                             const std::vector<bool>& alive) const {
  Require(i < positions_.size(), "node index out of range");
  std::size_t cur = i;
  std::size_t guard = 0;
  while (true) {
    if (!alive[cur]) return false;
    const std::size_t hop = next_[cur];
    if (hop == kSink) return true;
    if (hop == kNoRoute) return false;
    cur = hop;
    if (++guard > positions_.size()) return false;  // defensive loop guard
  }
}

}  // namespace wsn::netsim
