#include "netsim/routing.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace wsn::netsim {

using util::Require;

RoutingTable::RoutingTable(node::Position sink, double max_hop_m,
                           std::vector<node::Position> positions)
    : RoutingTable(std::vector<node::Position>{sink}, max_hop_m,
                   std::move(positions)) {}

RoutingTable::RoutingTable(std::vector<node::Position> sinks, double max_hop_m,
                           std::vector<node::Position> positions)
    : sinks_(std::move(sinks)),
      max_hop_m_(max_hop_m),
      positions_(std::move(positions)) {
  Require(!positions_.empty(), "routing table needs at least one node");
  Require(!sinks_.empty(), "routing table needs at least one sink");
  Require(max_hop_m_ > 0.0, "hop range must be positive");
  const std::size_t n = positions_.size();
  to_sink_.resize(n);
  next_.assign(n, kNoRoute);
  hop_distance_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const node::Position& sink : sinks_) {
      best = std::min(best, node::Distance(positions_[i], sink));
    }
    to_sink_[i] = best;
  }
  Recompute(std::vector<bool>(n, true));
}

void RoutingTable::Recompute(const std::vector<bool>& alive) {
  const std::size_t n = positions_.size();
  Require(alive.size() == n, "alive mask size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) {
      next_[i] = kNoRoute;
      hop_distance_[i] = 0.0;
      continue;
    }
    if (to_sink_[i] <= max_hop_m_) {
      next_[i] = kSink;
      hop_distance_[i] = to_sink_[i];
      continue;
    }
    // Strictly-closer greedy choice; ties broken by lowest index via the
    // strict comparison in scan order, matching Network::NextHop.
    std::size_t best = kNoRoute;
    double best_remaining = to_sink_[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || !alive[j]) continue;
      if (node::Distance(positions_[i], positions_[j]) > max_hop_m_) continue;
      if (to_sink_[j] < best_remaining) {
        best_remaining = to_sink_[j];
        best = j;
      }
    }
    next_[i] = best;
    hop_distance_[i] =
        (best == kNoRoute) ? 0.0
                           : node::Distance(positions_[i], positions_[best]);
  }
}

bool RoutingTable::Connected(std::size_t i,
                             const std::vector<bool>& alive) const {
  Require(i < positions_.size(), "node index out of range");
  std::size_t cur = i;
  std::size_t guard = 0;
  while (true) {
    if (!alive[cur]) return false;
    const std::size_t hop = next_[cur];
    if (hop == kSink) return true;
    if (hop == kNoRoute) return false;
    cur = hop;
    if (++guard > positions_.size()) return false;  // defensive loop guard
  }
}

}  // namespace wsn::netsim
