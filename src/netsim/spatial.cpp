#include "netsim/spatial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace wsn::netsim {

using util::Require;

SpatialGrid::SpatialGrid(const std::vector<node::Position>& positions,
                         double cell_m)
    : size_(positions.size()), cell_m_(cell_m) {
  Require(!positions.empty(), "spatial grid needs at least one node");
  Require(cell_m > 0.0 && std::isfinite(cell_m),
          "spatial grid cell size must be positive and finite");

  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  min_x_ = std::numeric_limits<double>::infinity();
  min_y_ = std::numeric_limits<double>::infinity();
  for (const node::Position& p : positions) {
    Require(std::isfinite(p.x) && std::isfinite(p.y),
            "node positions must be finite");
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  // Keep the cell table O(N): a sparse deployment (huge extent, small
  // hop) would otherwise allocate extent^2 / cell^2 empty cells.  Growing
  // the cell size preserves query correctness — the 3x3 block of larger
  // cells still covers everything within the *requested* radius — it only
  // widens the candidate supersets.
  const double width = max_x - min_x_;
  const double height = max_y - min_y_;
  // The budget test runs in double: extent/hop ratios past 2^32 would
  // overflow a size_t cell product long before the loop settles.
  const auto cells_along = [](double extent, double cell) {
    return std::floor(extent / cell) + 1.0;
  };
  const double cell_budget = static_cast<double>(4 * size_ + 64);
  while (cells_along(width, cell_m_) * cells_along(height, cell_m_) >
         cell_budget) {
    cell_m_ *= 2.0;
  }
  nx_ = static_cast<std::size_t>(cells_along(width, cell_m_));
  ny_ = static_cast<std::size_t>(cells_along(height, cell_m_));
  inv_cell_ = 1.0 / cell_m_;

  // Counting sort into CSR: one pass to size the cells, one to fill.
  // Filling in ascending node index keeps each cell's slice sorted.
  std::vector<std::uint32_t> cell_of(size_);
  cell_start_.assign(nx_ * ny_ + 1, 0);
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t cx = CellCoord(positions[i].x, min_x_, nx_);
    const std::size_t cy = CellCoord(positions[i].y, min_y_, ny_);
    cell_of[i] = static_cast<std::uint32_t>(cy * nx_ + cx);
    ++cell_start_[cell_of[i] + 1];
  }
  for (std::size_t c = 1; c < cell_start_.size(); ++c) {
    cell_start_[c] += cell_start_[c - 1];
  }
  items_.resize(size_);
  std::vector<std::uint32_t> fill(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < size_; ++i) {
    items_[fill[cell_of[i]]++] = static_cast<std::uint32_t>(i);
  }
}

}  // namespace wsn::netsim
