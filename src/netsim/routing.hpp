/// \file
/// Dynamic greedy geographic routing over the live subset of a deployment.
///
/// This is the event-driven counterpart of wsn::node::Network::NextHop: the
/// same greedy rule (forward to the in-range neighbour strictly closer to
/// the sink that minimizes remaining distance), but restricted to nodes
/// that are still alive, so the table can be recomputed whenever a battery
/// empties.  One deliberate difference from the static estimator: a greedy
/// dead end out of sink range maps to kNoRoute here instead of a
/// direct-to-sink long shot, because the packet simulator must know when
/// the network has partitioned.
///
/// Deployments may carry several sinks: every node then routes greedily
/// toward its *nearest* sink (distance-to-sink is the minimum over the
/// sink set), and delivery at any sink counts.
#pragma once

#include <cstddef>
#include <vector>

#include "wsn/network.hpp"

namespace wsn::netsim {

/// Greedy next-hop table over the alive subset of a deployment, with
/// single- or multi-sink geometry fixed at construction.
class RoutingTable {
 public:
  /// NextHop() sentinel: a sink is reachable directly.
  static constexpr std::size_t kSink = static_cast<std::size_t>(-1);
  /// NextHop() sentinel: no live route exists (dead end or dead node).
  static constexpr std::size_t kNoRoute = static_cast<std::size_t>(-2);

  /// Single-sink table (the common case).
  RoutingTable(node::Position sink, double max_hop_m,
               std::vector<node::Position> positions);

  /// Multi-sink table: each node's distance-to-sink is the minimum over
  /// `sinks`, which must be non-empty.
  RoutingTable(std::vector<node::Position> sinks, double max_hop_m,
               std::vector<node::Position> positions);

  /// Number of nodes routed by this table.
  std::size_t Size() const noexcept { return positions_.size(); }

  /// Rebuild every next hop considering only `alive[j]` nodes as relays.
  void Recompute(const std::vector<bool>& alive);

  /// kSink, kNoRoute, or the relay index for node i.
  std::size_t NextHop(std::size_t i) const { return next_[i]; }

  /// Distance (m) of node i's current hop; 0 when it has no route.
  double HopDistance(std::size_t i) const { return hop_distance_[i]; }

  /// True when node i's current next-hop chain ends at the sink without
  /// crossing a node that is dead in `alive`.  With rerouting disabled the
  /// table goes stale, so the chain is re-checked against `alive` here.
  bool Connected(std::size_t i, const std::vector<bool>& alive) const;

  /// Distance (m) from node i to its nearest sink.
  double DistanceToSink(std::size_t i) const { return to_sink_[i]; }

  /// The sink set this table routes toward (size 1 in the single-sink
  /// case).
  const std::vector<node::Position>& Sinks() const noexcept { return sinks_; }

 private:
  std::vector<node::Position> sinks_;
  double max_hop_m_;
  std::vector<node::Position> positions_;
  std::vector<double> to_sink_;
  std::vector<std::size_t> next_;
  std::vector<double> hop_distance_;
};

}  // namespace wsn::netsim
