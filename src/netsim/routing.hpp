/// \file
/// Dynamic greedy geographic routing over the live subset of a deployment.
///
/// This is the event-driven counterpart of wsn::node::Network::NextHop: the
/// same greedy rule (forward to the in-range neighbour strictly closer to
/// the sink that minimizes remaining distance), but restricted to nodes
/// that are still alive, so the table can be updated whenever a battery
/// empties.  One deliberate difference from the static estimator: a greedy
/// dead end out of sink range maps to kNoRoute here instead of a
/// direct-to-sink long shot, because the packet simulator must know when
/// the network has partitioned.
///
/// Deployments may carry several sinks: every node then routes greedily
/// toward its *nearest* sink (distance-to-sink is the minimum over the
/// sink set), and delivery at any sink counts.
///
/// Scaling (ISSUE 5): construction buckets nodes into a SpatialGrid with
/// cells of the hop range and precomputes, once, each node's in-range
/// neighbour list with squared distances — so candidate scans touch the
/// local density, not all N nodes, and comparisons run in distance^2
/// with a single sqrt when a hop is actually chosen.  A node death is
/// then repaired *incrementally* (RepairAfterDeath): only the nodes
/// whose next hop was the dead node re-choose, via a worklist.  The full
/// recompute survives in two forms — Recompute (grid-accelerated, the
/// default oracle) and RecomputeLegacy (the faithful pre-grid all-pairs
/// scan, kept recompilable so equivalence tests and benchmarks measure
/// the real former implementation, not a remembered number).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netsim/spatial.hpp"
#include "wsn/network.hpp"

namespace wsn::netsim {

/// How the simulator updates the routing table when a node dies.
enum class RoutingUpdateMode {
  /// Re-route only the nodes whose next hop was the dead node (default;
  /// equivalent to a full recompute for greedy geographic routing).
  kIncremental,
  /// Grid-accelerated full recompute of every node — the correctness
  /// oracle the incremental path is pinned against.
  kFull,
  /// Faithful pre-grid all-pairs recompute (O(N^2) with a sqrt per
  /// pair) — the benchmark baseline for the scaling work.
  kLegacy,
};

/// Greedy next-hop table over the alive subset of a deployment, with
/// single- or multi-sink geometry fixed at construction.
class RoutingTable {
 public:
  /// NextHop() sentinel: a sink is reachable directly.
  static constexpr std::size_t kSink = static_cast<std::size_t>(-1);
  /// NextHop() sentinel: no live route exists (dead end or dead node).
  static constexpr std::size_t kNoRoute = static_cast<std::size_t>(-2);

  /// Single-sink table (the common case).
  RoutingTable(node::Position sink, double max_hop_m,
               std::vector<node::Position> positions);

  /// Multi-sink table: each node's distance-to-sink is the minimum over
  /// `sinks`, which must be non-empty.
  RoutingTable(std::vector<node::Position> sinks, double max_hop_m,
               std::vector<node::Position> positions);

  /// Number of nodes routed by this table.
  std::size_t Size() const noexcept { return positions_.size(); }

  /// Rebuild every next hop considering only `alive[j]` nodes as relays,
  /// scanning each node's precomputed neighbour list.
  void Recompute(const std::vector<bool>& alive);

  /// The pre-grid implementation of Recompute, verbatim: all-pairs with
  /// a sqrt per pair.  Bit-identical results; kept as the correctness
  /// oracle and as the honest benchmark baseline.
  void RecomputeLegacy(const std::vector<bool>& alive);

  /// Incremental repair after the death of node `dead` (already false in
  /// `alive`): clears the dead node's route and re-chooses the next hop
  /// of every node that routed through it, cascading via a worklist
  /// until routes stabilize.  Greedy choices depend only on geometry and
  /// liveness — never on another node's current hop — so the cascade
  /// settles after the direct predecessors; the worklist keeps that
  /// invariant explicit (and future-proof).  Starting from a consistent
  /// table this is equivalent to Recompute(alive).
  void RepairAfterDeath(std::size_t dead, const std::vector<bool>& alive);

  /// Incremental *insertion* after node `revived` rejoins (already true
  /// in `alive`) — the dual of RepairAfterDeath: re-chooses the revived
  /// node's own hop and re-offers it as a next hop to every alive node
  /// in its (symmetric) neighbour list.  A neighbour's greedy best can
  /// only improve, and only via the revived node itself, so unlike a
  /// death the insertion never cascades.  Starting from a table
  /// consistent with `alive` minus the revived node, this is equivalent
  /// to Recompute(alive) — the grid-full recompute stays the pinned
  /// oracle (tests/test_netsim_fault.cpp).
  void RepairAfterRecovery(std::size_t revived,
                           const std::vector<bool>& alive);

  /// kSink, kNoRoute, or the relay index for node i.
  std::size_t NextHop(std::size_t i) const { return next_[i]; }

  /// Distance (m) of node i's current hop; 0 when it has no route.
  double HopDistance(std::size_t i) const { return hop_distance_[i]; }

  /// True when node i's current next-hop chain ends at the sink without
  /// crossing a node that is dead in `alive`.  With rerouting disabled the
  /// table goes stale, so the chain is re-checked against `alive` here.
  bool Connected(std::size_t i, const std::vector<bool>& alive) const;

  /// Distance (m) from node i to its nearest sink.
  double DistanceToSink(std::size_t i) const { return to_sink_[i]; }

  /// Index (into Sinks()) of node i's nearest sink — the one its greedy
  /// route converges on; ties break to the lowest sink index.  Lets the
  /// fault engine answer "is my sink down?" per sender.
  std::size_t NearestSinkIndex(std::size_t i) const {
    return nearest_sink_[i];
  }

  /// Number of alive nodes whose next hop is kNoRoute, maintained
  /// incrementally across construction, recomputes and repairs.  For a
  /// table kept consistent with the liveness mask (an update after every
  /// death), "some alive node is disconnected" is *equivalent* to
  /// "UnroutedAlive() > 0": greedy chains through alive nodes strictly
  /// decrease distance-to-sink, so they either reach kSink or end at an
  /// alive node holding kNoRoute.  That turns the simulator's partition
  /// check into O(1).  Meaningless for stale tables (rerouting off) —
  /// those must chain-walk Connected() instead.
  std::size_t UnroutedAlive() const noexcept { return unrouted_alive_; }

  /// In-range neighbours of node i (precomputed, ascending index).
  std::size_t NeighborCount(std::size_t i) const {
    return nbr_start_[i + 1] - nbr_start_[i];
  }

  /// The sink set this table routes toward (size 1 in the single-sink
  /// case).
  const std::vector<node::Position>& Sinks() const noexcept { return sinks_; }

  /// The spatial index the neighbour lists were built from.
  const SpatialGrid& Grid() const noexcept { return grid_; }

 private:
  /// Re-choose node i's next hop from its neighbour list under `alive`.
  void Choose(std::size_t i, const std::vector<bool>& alive);

  std::vector<node::Position> sinks_;
  double max_hop_m_;
  std::vector<node::Position> positions_;
  SpatialGrid grid_;
  std::vector<double> to_sink_;
  std::vector<std::uint32_t> nearest_sink_;  ///< argmin index behind to_sink_
  std::vector<std::size_t> next_;
  std::vector<double> hop_distance_;
  /// CSR neighbour lists: node i's in-range neighbours are
  /// nbr_[nbr_start_[i] .. nbr_start_[i+1]), ascending index (the greedy
  /// tie-break scans in index order), with squared distances alongside.
  std::vector<std::uint32_t> nbr_start_;
  std::vector<std::uint32_t> nbr_;
  std::vector<double> nbr_d2_;
  std::vector<std::uint32_t> worklist_;  ///< RepairAfterDeath scratch
  std::size_t unrouted_alive_ = 0;       ///< see UnroutedAlive()
};

}  // namespace wsn::netsim
