// Dynamic greedy geographic routing over the live subset of a deployment.
//
// This is the event-driven counterpart of wsn::node::Network::NextHop: the
// same greedy rule (forward to the in-range neighbour strictly closer to
// the sink that minimizes remaining distance), but restricted to nodes
// that are still alive, so the table can be recomputed whenever a battery
// empties.  One deliberate difference from the static estimator: a greedy
// dead end out of sink range maps to kNoRoute here instead of a
// direct-to-sink long shot, because the packet simulator must know when
// the network has partitioned.
#pragma once

#include <cstddef>
#include <vector>

#include "wsn/network.hpp"

namespace wsn::netsim {

class RoutingTable {
 public:
  /// NextHop() sentinel: the sink is reachable directly.
  static constexpr std::size_t kSink = static_cast<std::size_t>(-1);
  /// NextHop() sentinel: no live route exists (dead end or dead node).
  static constexpr std::size_t kNoRoute = static_cast<std::size_t>(-2);

  RoutingTable(node::Position sink, double max_hop_m,
               std::vector<node::Position> positions);

  std::size_t Size() const noexcept { return positions_.size(); }

  /// Rebuild every next hop considering only `alive[j]` nodes as relays.
  void Recompute(const std::vector<bool>& alive);

  /// kSink, kNoRoute, or the relay index for node i.
  std::size_t NextHop(std::size_t i) const { return next_[i]; }

  /// Distance (m) of node i's current hop; 0 when it has no route.
  double HopDistance(std::size_t i) const { return hop_distance_[i]; }

  /// True when node i's current next-hop chain ends at the sink without
  /// crossing a node that is dead in `alive`.  With rerouting disabled the
  /// table goes stale, so the chain is re-checked against `alive` here.
  bool Connected(std::size_t i, const std::vector<bool>& alive) const;

  double DistanceToSink(std::size_t i) const { return to_sink_[i]; }

 private:
  node::Position sink_;
  double max_hop_m_;
  std::vector<node::Position> positions_;
  std::vector<double> to_sink_;
  std::vector<std::size_t> next_;
  std::vector<double> hop_distance_;
};

}  // namespace wsn::netsim
