/// \file
/// Uniform spatial-grid index over a fixed deployment.
///
/// Greedy routing only ever cares about nodes within one hop range, so
/// scanning all N nodes per candidate query is O(N) wasted work for any
/// deployment larger than a single radio cell.  The grid buckets node
/// indices into square cells of side >= the query radius; every point
/// within that radius of a query position then lies in the 3x3 block of
/// cells around it, shrinking a candidate scan from N to the local
/// density (O(1) for bounded-density deployments such as grids).
///
/// The index is immutable after construction — node *positions* never
/// change during a replication, only liveness does, and liveness is the
/// caller's problem (the routing table filters candidates through its
/// alive mask).  Query positions outside the bounding box (e.g. a sink
/// placed off the deployment) clamp to the nearest boundary cell, so
/// they still see every in-range node.
///
/// Cell-size tradeoff: cells of exactly the hop range give the smallest
/// 3x3 superset that is still complete.  Larger cells scan more
/// candidates per query; smaller cells would require widening the block
/// and are therefore rejected.  When a sparse deployment would explode
/// the cell count (huge extent, small hop), the constructor grows the
/// cell size until the table stays O(N) — queries stay correct, only
/// the candidate supersets grow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "wsn/network.hpp"

namespace wsn::netsim {

/// Immutable bucket index of node positions on a uniform square grid.
class SpatialGrid {
 public:
  /// NearestWhere() sentinel: no candidate matched (empty grid or every
  /// candidate excluded by the caller's distance function).
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  /// Build the index with cells of side >= `cell_m` (> 0) covering the
  /// bounding box of `positions`.  The effective cell size is enlarged
  /// when needed to keep the cell table O(positions.size()).
  SpatialGrid(const std::vector<node::Position>& positions, double cell_m);

  /// Number of indexed nodes.
  std::size_t Size() const noexcept { return size_; }

  /// Cells along x / y; their product is the cell-table size.
  std::size_t CellsX() const noexcept { return nx_; }
  std::size_t CellsY() const noexcept { return ny_; }

  /// The cell side actually used (>= the requested cell_m).
  double CellSize() const noexcept { return cell_m_; }

  /// Invoke `fn(j)` for every node j in the 3x3 cell block around `p`.
  /// This is a superset of the nodes within CellSize() of `p`; callers
  /// apply their own exact range test.  Iteration order is unspecified —
  /// order-sensitive callers (greedy tie-breaking!) must sort what they
  /// collect.
  template <typename Fn>
  void ForEachCandidate(const node::Position& p, Fn&& fn) const {
    const std::size_t cx = CellCoord(p.x, min_x_, nx_);
    const std::size_t cy = CellCoord(p.y, min_y_, ny_);
    const std::size_t x0 = cx > 0 ? cx - 1 : 0;
    const std::size_t x1 = cx + 1 < nx_ ? cx + 1 : nx_ - 1;
    const std::size_t y0 = cy > 0 ? cy - 1 : 0;
    const std::size_t y1 = cy + 1 < ny_ ? cy + 1 : ny_ - 1;
    for (std::size_t y = y0; y <= y1; ++y) {
      for (std::size_t x = x0; x <= x1; ++x) {
        const std::size_t cell = y * nx_ + x;
        for (std::uint32_t k = cell_start_[cell]; k < cell_start_[cell + 1];
             ++k) {
          fn(static_cast<std::size_t>(items_[k]));
        }
      }
    }
  }

  /// Invoke `fn(j)` for every node j in a cell whose Chebyshev ring
  /// distance from `p`'s (clamped) cell is at most
  /// ceil(radius_m / CellSize()) — a superset of the nodes within
  /// `radius_m` of `p`; callers apply their own exact range test.  Cells
  /// are visited ring by ring outward (row-major within a ring, ascending
  /// node index within a cell), so the visit order is deterministic.
  /// Off-grid query points clamp like every other query.
  template <typename Fn>
  void ForEachInRadius(const node::Position& p, double radius_m,
                       Fn&& fn) const {
    const std::size_t cx = CellCoord(p.x, min_x_, nx_);
    const std::size_t cy = CellCoord(p.y, min_y_, ny_);
    // Cells at ring r > radius/cell + 1 lie strictly beyond the radius
    // from anywhere inside the query cell (min distance (r-1)*cell).
    std::size_t reach = static_cast<std::size_t>(radius_m * inv_cell_) + 1;
    reach = reach < MaxRing(cx, cy) ? reach : MaxRing(cx, cy);
    for (std::size_t r = 0; r <= reach; ++r) {
      ForEachInRing(cx, cy, r, fn);
    }
  }

  /// Ring-expanding exact nearest query: return the index j minimizing
  /// `dist2(j)` over all indexed nodes, ties broken toward the lowest j.
  /// `dist2` supplies the squared distance (or any comparable cost) of
  /// candidate j; returning +infinity excludes j (a dead node, say).
  /// Rings are scanned outward from `p`'s cell and the search stops as
  /// soon as no unscanned cell can hold a closer candidate, so the cost
  /// is the local occupancy around `p`, not Size().  Returns kNone when
  /// every candidate was excluded.  The bound (r-1)*CellSize() on the
  /// distance to ring r holds for clamped off-grid queries too: the
  /// clamped axis only adds distance.
  template <typename Dist2Fn>
  std::size_t NearestWhere(const node::Position& p, Dist2Fn&& dist2) const {
    const std::size_t cx = CellCoord(p.x, min_x_, nx_);
    const std::size_t cy = CellCoord(p.y, min_y_, ny_);
    const std::size_t last_ring = MaxRing(cx, cy);
    double best2 = std::numeric_limits<double>::infinity();
    std::size_t best = kNone;
    for (std::size_t r = 0; r <= last_ring; ++r) {
      if (best != kNone && r >= 2) {
        // Every cell at ring r is at least (r-1) cells away in x or y.
        const double reach = static_cast<double>(r - 1) * cell_m_;
        if (reach * reach > best2) break;
      }
      ForEachInRing(cx, cy, r, [&](std::size_t j) {
        const double d2 = dist2(j);
        if (d2 == std::numeric_limits<double>::infinity()) return;
        if (d2 < best2 || (d2 == best2 && j < best)) {
          best2 = d2;
          best = j;
        }
      });
    }
    return best;
  }

 private:
  /// Invoke `fn(j)` for every node j in a cell at Chebyshev distance
  /// exactly `r` from cell (cx, cy), skipping cells outside the grid.
  /// Row-major over the ring; ascending node index within each cell.
  template <typename Fn>
  void ForEachInRing(std::size_t cx, std::size_t cy, std::size_t r,
                     Fn&& fn) const {
    const auto scan_cell = [&](std::size_t x, std::size_t y) {
      const std::size_t cell = y * nx_ + x;
      for (std::uint32_t k = cell_start_[cell]; k < cell_start_[cell + 1];
           ++k) {
        fn(static_cast<std::size_t>(items_[k]));
      }
    };
    if (r == 0) {
      scan_cell(cx, cy);
      return;
    }
    const std::size_t x0 = cx >= r ? cx - r : 0;
    const std::size_t x1 = cx + r < nx_ ? cx + r : nx_ - 1;
    const std::size_t y0 = cy >= r ? cy - r : 0;
    const std::size_t y1 = cy + r < ny_ ? cy + r : ny_ - 1;
    for (std::size_t y = y0; y <= y1; ++y) {
      const bool edge_row = (cy >= r && y == cy - r) || y == cy + r;
      if (edge_row) {
        for (std::size_t x = x0; x <= x1; ++x) scan_cell(x, y);
      } else {
        if (cx >= r) scan_cell(cx - r, y);
        if (cx + r < nx_) scan_cell(cx + r, y);
      }
    }
  }

  /// Largest ring around (cx, cy) that still intersects the grid.
  std::size_t MaxRing(std::size_t cx, std::size_t cy) const noexcept {
    const std::size_t rx = cx > nx_ - 1 - cx ? cx : nx_ - 1 - cx;
    const std::size_t ry = cy > ny_ - 1 - cy ? cy : ny_ - 1 - cy;
    return rx > ry ? rx : ry;
  }

  /// Cell coordinate of `v` along one axis, clamped into [0, cells).
  std::size_t CellCoord(double v, double min_v, std::size_t cells) const {
    if (v <= min_v) return 0;
    const std::size_t c = static_cast<std::size_t>((v - min_v) * inv_cell_);
    return c < cells ? c : cells - 1;
  }

  std::size_t size_ = 0;
  double cell_m_ = 0.0;
  double inv_cell_ = 0.0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  /// CSR layout: nodes of cell c are items_[cell_start_[c] ..
  /// cell_start_[c+1]), grouped by cell, ascending node index per cell.
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> items_;
};

}  // namespace wsn::netsim
