#include "netsim/netsim.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "energy/energy_model.hpp"
#include "util/error.hpp"
#include "wsn/node.hpp"

namespace wsn::netsim {

using util::Require;

namespace {

/// Map class name -> index into config.classes; validates uniqueness.
std::unordered_map<std::string, std::size_t> ClassIndex(
    const std::vector<NodeClass>& classes) {
  std::unordered_map<std::string, std::size_t> index;
  index.reserve(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const bool inserted = index.emplace(classes[c].name, c).second;
    Require(inserted, "duplicate node class name '" + classes[c].name + "'");
  }
  return index;
}

/// Index of node i's class, or size_t(-1) for "use the template".
std::size_t ClassOf(const NetSimConfig& config,
                    const std::unordered_map<std::string, std::size_t>& index,
                    std::size_t i) {
  if (config.node_class.empty()) return static_cast<std::size_t>(-1);
  const auto it = index.find(config.node_class[i]);
  Require(it != index.end(),
          "unknown node class '" + config.node_class[i] + "'");
  return it->second;
}

}  // namespace

void NetSimConfig::Validate() const {
  Require(!positions.empty(), "netsim needs at least one node");
  Require(horizon_s > 0.0, "horizon must be positive");
  Require(timeline_interval_s >= 0.0, "timeline interval must be >= 0");
  Require(battery_mah_override.empty() ||
              battery_mah_override.size() == positions.size(),
          "NetSimConfig::battery_mah_override has " +
              std::to_string(battery_mah_override.size()) + " entries for " +
              std::to_string(positions.size()) +
              " nodes (must be empty or one per node)");
  for (std::size_t i = 0; i < battery_mah_override.size(); ++i) {
    Require(battery_mah_override[i] > 0.0,
            "NetSimConfig::battery_mah_override[" + std::to_string(i) +
                "] = " + std::to_string(battery_mah_override[i]) +
                " (capacities must be positive)");
  }
  for (const NodeClass& cls : classes) cls.Validate();
  const auto index = ClassIndex(classes);
  if (!node_class.empty()) {
    Require(node_class.size() == positions.size(),
            "node class names must be empty or one entry per node");
    Require(!classes.empty(),
            "per-node class names given but no node classes defined");
    for (std::size_t i = 0; i < node_class.size(); ++i) {
      (void)ClassOf(*this, index, i);
    }
  }
  mac.Validate();
  cluster.Validate();
  faults.Validate();
  // Reuse the node-layer validation (duty cycle, sample bits, ...).
  node::SensorNode validator(network.node);
  (void)validator;
}

std::vector<node::Position> EffectiveSinks(const NetSimConfig& config) {
  if (!config.sinks.empty()) return config.sinks;
  return {config.network.sink};
}

std::vector<node::NodeConfig> PerNodeConfigs(const NetSimConfig& config) {
  Require(config.battery_mah_override.empty() ||
              config.battery_mah_override.size() == config.positions.size(),
          "NetSimConfig::battery_mah_override has " +
              std::to_string(config.battery_mah_override.size()) +
              " entries for " + std::to_string(config.positions.size()) +
              " nodes (must be empty or one per node)");
  const auto index = ClassIndex(config.classes);
  std::vector<node::NodeConfig> out;
  out.reserve(config.positions.size());
  for (std::size_t i = 0; i < config.positions.size(); ++i) {
    node::NodeConfig cfg = config.network.node;
    const std::size_t c = ClassOf(config, index, i);
    if (c != static_cast<std::size_t>(-1)) {
      const NodeClass& cls = config.classes[c];
      cfg.radio = cls.radio;
      cfg.listen_duty_cycle = cls.listen_duty_cycle;
      cfg.battery_mah = cls.battery_mah;
      cfg.battery_volts = cls.battery_volts;
    }
    if (!config.battery_mah_override.empty()) {
      cfg.battery_mah = config.battery_mah_override[i];
    }
    out.push_back(cfg);
  }
  return out;
}

double CpuAveragePowerMw(const NetSimConfig& config,
                         const core::CpuEnergyModel& model) {
  const core::ModelEvaluation eval = model.Evaluate(config.network.node.cpu);
  return energy::AveragePowerMilliwatts(eval.shares,
                                        config.network.node.cpu_power);
}

NetworkSimulator::NetworkSimulator(NetSimConfig config, double cpu_power_mw,
                                   util::Rng rng)
    : config_(std::move(config)),
      sim_(config_.queue_kind),
      rng_(rng),
      routing_(EffectiveSinks(config_), config_.network.max_hop_m,
               config_.positions),
      mac_(config_.mac, config_.positions.size(), rng_) {
  config_.Validate();
  Require(cpu_power_mw >= 0.0, "CPU power must be >= 0");

  const std::vector<node::NodeConfig> per_node = PerNodeConfigs(config_);
  const std::size_t n = config_.positions.size();
  battery_.reserve(n);
  radio_.reserve(n);
  baseline_mw_.reserve(n);
  traffic_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const node::NodeConfig& cfg = per_node[i];
    battery_.emplace_back(cfg.battery_mah, cfg.battery_volts);
    radio_.emplace_back(cfg.radio);
    baseline_mw_.push_back(cpu_power_mw +
                           cfg.listen_duty_cycle * cfg.radio.listen_mw +
                           (1.0 - cfg.listen_duty_cycle) * cfg.radio.sleep_mw);
    if (config_.traffic_factory) {
      traffic_[i] = config_.traffic_factory(i);
      Require(traffic_[i] != nullptr, "traffic factory returned null");
    } else {
      const double rate = cfg.cpu.arrival_rate * cfg.report_fraction;
      if (rate > 0.0) traffic_[i] = des::MakePoissonWorkload(rate);
    }
  }
  last_update_s_.assign(n, 0.0);
  alive_.assign(n, true);
  busy_.assign(n, 0);
  queues_ = PacketQueues(n);
  agg_payloads_.assign(n, 0);
  death_event_.assign(n, 0);
  arrival_event_.assign(n, 0);
  stats_.resize(n);

  if (config_.faults.Enabled()) {
    down_.assign(n, 0);
    tx_void_.assign(n, 0);
    down_since_.assign(n, 0.0);
    // One draw from the replication stream seeds a dedicated fault
    // stream: the whole plan costs the main stream a single uint64, and
    // with faults disabled (faults_ == nullptr) it costs zero draws —
    // which is what keeps every fault-free output bit-identical to the
    // pre-fault engine.
    faults_ = std::make_unique<FaultEngine>(
        FaultPlan::Generate(config_.faults, config_.positions,
                            EffectiveSinks(config_).size(), config_.horizon_s,
                            util::Rng(rng_())));
  }

  protocol_ = config_.cluster.MakeProtocol(n);
  if (protocol_ != nullptr) {
    cluster_next_.assign(n, RoutingTable::kNoRoute);
    cluster_dist_.assign(n, 0.0);
    energy_fraction_.assign(n, 1.0);
    aggregate_bits_ = config_.cluster.aggregate_bits != 0
                          ? config_.cluster.aggregate_bits
                          : config_.network.node.sample_bits;
  }

  if (config_.timeline_interval_s > 0.0) {
    // One sample per tick plus the closing sample appended at the end of
    // the run — sized up front so the hot loop never reallocates.
    const std::size_t samples =
        static_cast<std::size_t>(config_.horizon_s /
                                 config_.timeline_interval_s) +
        2;
    for (NodeSimStats& stats : stats_) stats.timeline.reserve(samples);
  }

  if (config_.obs.metrics) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    // Pre-resolved so OnDeath records through a raw pointer; the range
    // covers incremental repairs (~us) up to legacy full recomputes.
    repair_hist_ = metrics_->TimingHist("netsim.routing.repair_latency_s",
                                        0.0, 0.05, 25);
    if (faults_ != nullptr) {
      outage_hist_ =
          metrics_->Hist("netsim.faults.outage_s", 0.0, config_.horizon_s, 20);
    }
  }
  if (config_.obs.trace.enabled) {
    trace_ = std::make_unique<obs::TraceSink>(config_.obs.trace);
  }
}

NetSimReport NetworkSimulator::Run() {
  Require(!ran_, "NetworkSimulator::Run is single-shot; make a new instance");
  ran_ = true;

  if (Clustered()) {
    ElectClusters(/*repair=*/false);  // round 0 election at t = 0
    sim_.ScheduleAt(config_.cluster.round_s, [this] { RoundTick(); });
  }
  CheckPartition();  // a deployment can be partitioned from the start
  const std::size_t n = battery_.size();
  for (std::size_t i = 0; i < n; ++i) {
    ScheduleNextArrival(i);
    RescheduleDeath(i);
  }
  if (faults_ != nullptr) {
    // The plan is immutable and time-sorted; each event carries only its
    // index, so the closures stay inline in the kernel's event slab.
    const std::vector<FaultEvent>& plan = faults_->Events();
    for (std::size_t k = 0; k < plan.size(); ++k) {
      if (plan[k].t > config_.horizon_s) break;
      sim_.ScheduleAt(plan[k].t, [this, k] { OnFaultEvent(k); });
    }
  }
  if (config_.timeline_interval_s > 0.0) {
    sim_.ScheduleAt(config_.timeline_interval_s, [this] { TimelineTick(); });
  }

  sim_.RunUntil(config_.horizon_s);

  const double end = stopped_ ? stop_time_s_ : config_.horizon_s;
  NetSimReport report;
  report.nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (alive_[i]) Touch(i, end);
    NodeSimStats& stats = stats_[i];
    stats.alive = alive_[i];
    stats.remaining_j = battery_[i].Remaining();
    stats.energy_used_j =
        battery_[i].CapacityJoules() - battery_[i].Remaining();
    if (config_.timeline_interval_s > 0.0 &&
        (stats.timeline.empty() || stats.timeline.back().time_s < end)) {
      stats.timeline.push_back({end, battery_[i].Remaining()});
    }
    report.nodes.push_back(std::move(stats));
  }
  report.packets = counters_;
  report.first_death_s = first_death_s_;
  report.first_dead_node = first_dead_node_;
  report.partition_s = partition_s_;
  report.heal_s = heal_s_;
  report.end_s = end;
  report.crashes = crashes_;
  report.recoveries = recoveries_;
  if (faults_ != nullptr) {
    report.jam_windows = faults_->JamWindows();
    report.sink_outage_windows = faults_->SinkOutages();
  }
  // Conservation bookkeeping: whatever is still buffered (MAC FIFOs and
  // head aggregation buffers) is "in flight at the horizon".  The packet
  // currently being transmitted stays at its queue front until FinishTx
  // pops it, so the queue walk already counts it.
  for (std::size_t i = 0; i < n; ++i) {
    report.in_flight += queues_.PayloadSum(i) + agg_payloads_[i];
  }
  report.events = sim_.ProcessedEvents();
  report.routing_repairs = repair_sw_.calls;
  report.routing_repair_s = repair_sw_.seconds;
  report.rounds = rounds_;
  report.elections = elections_;
  report.election_s = election_sw_.seconds;
  report.assign_s = assign_sw_.seconds;
  if (metrics_ != nullptr) CollectMetrics(report);
  if (trace_ != nullptr) report.trace = trace_->TakeText();
  return report;
}

void NetworkSimulator::ScheduleNextArrival(std::size_t i) {
  arrival_event_[i] = 0;
  if (!traffic_[i]) return;
  const auto next = traffic_[i]->NextArrival(sim_.Now(), rng_);
  if (!next) return;
  const double t = std::max(*next, sim_.Now());
  if (t > config_.horizon_s) return;
  arrival_event_[i] = sim_.ScheduleAt(t, [this, i] { OnArrival(i); });
}

void NetworkSimulator::OnArrival(std::size_t i) {
  arrival_event_[i] = 0;
  if (stopped_) return;
  if (!alive_[i]) return;  // dead sources stop reporting
  ++counters_.generated;
  ++stats_[i].generated;
  Packet pkt;
  pkt.id = next_packet_id_++;
  pkt.source = i;
  pkt.created_s = sim_.Now();
  pkt.bits = config_.network.node.sample_bits;
  TracePacket("gen", i, pkt);
  if (Clustered() && cluster_.IsHead(i)) {
    // A head's own sample joins its aggregation buffer directly — no
    // radio hop from a node to itself.
    AbsorbAtHead(i, pkt);
  } else {
    Enqueue(i, pkt);
  }
  ScheduleNextArrival(i);
}

void NetworkSimulator::Enqueue(std::size_t i, const Packet& pkt) {
  if (!alive_[i]) {
    DropPacket(i, DropReason::kNodeDied, pkt.payload);
    return;
  }
  if (queues_.Size(i) >= mac_.Config().max_queue) {
    DropPacket(i, DropReason::kQueueOverflow, pkt.payload);
    return;
  }
  queues_.PushBack(i, pkt);
  TracePacket("enqueue", i, pkt);
  StartNext(i);
}

void NetworkSimulator::StartNext(std::size_t i) {
  if (stopped_ || !alive_[i] || busy_[i]) return;
  if (queues_.Empty(i)) return;
  // The next hop is queried once: the routing table can only change when
  // a death (or a cluster election) recomputes it, never inside this
  // function.  A partitioned holder therefore sheds its whole backlog
  // immediately.
  const std::size_t receiver = Receiver(i);
  if (receiver == RoutingTable::kNoRoute) {
    while (!queues_.Empty(i)) {
      DropPacket(i, DropReason::kNoRoute, queues_.Front(i).payload);
      queues_.PopFront(i);
    }
    return;
  }
  busy_[i] = 1;
  const Packet& pkt = queues_.Front(i);
  const std::size_t mac_receiver = (receiver == RoutingTable::kSink)
                                       ? DutyCycledMac::kSinkReceiver
                                       : receiver;
  const DutyCycledMac::TxTiming tx =
      mac_.TxFinish(sim_.Now(), pkt.bits, mac_receiver, rng_, pkt.retries);
  ScheduleTxFinish(i, tx);
}

void NetworkSimulator::ScheduleTxFinish(std::size_t i,
                                        const DutyCycledMac::TxTiming& tx) {
  if (!tx.slotted || !config_.batch_mac_wakeups) {
    sim_.ScheduleAt(tx.finish_s, [this, i] { FinishTx(i); });
    return;
  }
  // Same-slot completions share a bit-identical timestamp (the MAC
  // computes slot + duration absolutely), so one kernel event per
  // distinct timestamp walks the whole batch.  The event is scheduled
  // when the batch opens, giving it the FIFO position of its first
  // waiter; later waiters append, preserving schedule order.
  const auto [it, opened] = wakeup_at_.try_emplace(tx.finish_s, 0);
  if (opened) {
    std::uint32_t slot;
    if (!wakeup_free_.empty()) {
      slot = wakeup_free_.back();
      wakeup_free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(wakeup_lists_.size());
      wakeup_lists_.emplace_back();
    }
    it->second = slot;
    wakeup_lists_[slot].t = tx.finish_s;
    const std::size_t s = slot;
    sim_.ScheduleAt(tx.finish_s, [this, s] { FireWakeups(s); });
  }
  wakeup_lists_[it->second].nodes.push_back(static_cast<std::uint32_t>(i));
}

void NetworkSimulator::FireWakeups(std::size_t slot) {
  // Swap the list into the walk scratch and release the slot *before*
  // walking: a FinishTx below can start new transmissions that open new
  // batches (possibly reusing this slot or growing wakeup_lists_), and
  // the scratch keeps this walk untouched by that.  The kernel fires one
  // event at a time, so FireWakeups never nests inside itself.
  WakeupBatch& batch = wakeup_lists_[slot];
  wakeup_at_.erase(batch.t);
  firing_.clear();
  firing_.swap(batch.nodes);
  wakeup_free_.push_back(static_cast<std::uint32_t>(slot));
  ++wakeup_batches_;
  wakeups_batched_ += firing_.size();
  for (std::uint32_t i : firing_) FinishTx(i);
}

void NetworkSimulator::FinishTx(std::size_t i) {
  if (stopped_) return;
  busy_[i] = 0;
  if (faults_ != nullptr && tx_void_[i]) {
    // A crash interrupted this transmission: the event fires but the
    // attempt never happened (the crash already flushed the packet), so
    // swallow it — and restart the pipeline if the node has recovered.
    tx_void_[i] = 0;
    if (alive_[i]) StartNext(i);
    return;
  }
  if (!alive_[i]) return;  // died mid-TX; the queue was flushed at death
  if (queues_.Empty(i)) return;
  Packet pkt = queues_.Front(i);
  queues_.PopFront(i);

  const std::size_t receiver = Receiver(i);
  if (receiver == RoutingTable::kNoRoute) {
    DropPacket(i, DropReason::kNoRoute, pkt.payload);
    StartNext(i);
    return;
  }
  // The sender pays for the attempt whatever its fate (this drain may
  // deplete the sender; the in-flight packet still completes the hop).
  DrainDiscrete(i, radio_[i].TransmitEnergy(pkt.bits, HopDistanceOf(i)));
  TracePacket("tx", i, pkt);

  // A sink inside an outage window accepts nothing: the attempt fails
  // exactly like a link loss (retries burn, then the packet drops).
  const bool sink_out =
      receiver == RoutingTable::kSink && faults_ != nullptr &&
      faults_->SinkDown(routing_.NearestSinkIndex(i), sim_.Now());
  if (receiver != RoutingTable::kSink && !alive_[receiver]) {
    DropPacket(i, DropReason::kDeadNextHop, pkt.payload);
  } else if (sink_out || AttemptLost(i)) {
    if (pkt.retries >= mac_.Config().max_retries) {
      DropPacket(i, DropReason::kLinkLoss, pkt.payload);
    } else if (alive_[i]) {
      ++counters_.retransmissions;
      ++pkt.retries;
      queues_.PushFront(i, pkt);
    } else {
      DropPacket(i, DropReason::kNodeDied, pkt.payload);
    }
  } else if (receiver == RoutingTable::kSink) {
    counters_.delivered += pkt.payload;
    stats_[pkt.source].delivered += pkt.payload;
    TracePacket("deliver", i, pkt);
  } else if (Clustered()) {
    // In clustered mode every node-to-node hand-off lands at a cluster
    // head, which folds the payload into its aggregation buffer instead
    // of relaying the packet verbatim.
    DrainDiscrete(receiver, radio_[receiver].ReceiveEnergy(pkt.bits));
    ++counters_.forwarded;
    ++stats_[receiver].forwarded;
    TracePacket("rx", receiver, pkt);
    if (alive_[receiver]) {
      AbsorbAtHead(receiver, pkt);
    } else {
      DropPacket(receiver, DropReason::kNodeDied, pkt.payload);
    }
  } else {
    DrainDiscrete(receiver, radio_[receiver].ReceiveEnergy(pkt.bits));
    pkt.retries = 0;
    if (++pkt.hops > battery_.size()) {
      DropPacket(receiver, DropReason::kTtlExceeded, pkt.payload);
    } else {
      ++counters_.forwarded;
      ++stats_[receiver].forwarded;
      TracePacket("rx", receiver, pkt);
      Enqueue(receiver, pkt);
    }
  }
  if (alive_[i]) StartNext(i);
}

void NetworkSimulator::Touch(std::size_t i, double now) {
  const double dt = now - last_update_s_[i];
  if (dt > 0.0) {
    battery_[i].Drain(baseline_mw_[i] * dt / 1000.0);
    last_update_s_[i] = now;
  }
}

void NetworkSimulator::DrainDiscrete(std::size_t i, double joules) {
  if (!alive_[i]) return;
  Touch(i, sim_.Now());
  battery_[i].Drain(joules);
  if (battery_[i].Depleted()) {
    OnDeath(i);
  } else {
    RescheduleDeath(i);
  }
}

void NetworkSimulator::RescheduleDeath(std::size_t i) {
  if (death_event_[i] != 0) {
    sim_.Cancel(death_event_[i]);
    death_event_[i] = 0;
  }
  if (baseline_mw_[i] <= 0.0) return;  // only discrete drains can kill
  const double seconds_left =
      battery_[i].Remaining() / (baseline_mw_[i] / 1000.0);
  const double when = sim_.Now() + seconds_left;
  if (when > config_.horizon_s) return;  // outlives the horizon
  death_event_[i] = sim_.ScheduleAt(when, [this, i] {
    if (stopped_ || !alive_[i]) return;
    death_event_[i] = 0;
    Touch(i, sim_.Now());
    battery_[i].Drain(battery_[i].Remaining());
    OnDeath(i);
  });
}

void NetworkSimulator::OnDeath(std::size_t i) {
  alive_[i] = false;
  stats_[i].death_s = sim_.Now();
  if (death_event_[i] != 0) {
    sim_.Cancel(death_event_[i]);
    death_event_[i] = 0;
  }
  while (!queues_.Empty(i)) {
    DropPacket(i, DropReason::kNodeDied, queues_.Front(i).payload);
    queues_.PopFront(i);
  }
  if (agg_payloads_[i] > 0) {
    // Buffered member payloads die with the head that held them.
    DropPacket(i, DropReason::kNodeDied, agg_payloads_[i]);
    agg_payloads_[i] = 0;
  }
  if (first_death_s_ == std::numeric_limits<double>::infinity()) {
    first_death_s_ = sim_.Now();
    first_dead_node_ = i;
    if (config_.stop_at_first_death) Stop();
  }
  if (stopped_) return;
  RepairAfterLoss(i);
}

void NetworkSimulator::RepairAfterLoss(std::size_t i) {
  // Every loss in clustered mode updates routing state (a member loss
  // clears its own uplink, a head loss rebuilds or repairs); in flat
  // mode only rerouting-enabled runs do.  Shared by battery deaths and
  // fault crashes: the routing consequence of leaving the alive set is
  // identical, only the death/crash bookkeeping around it differs.
  const bool repaired = Clustered() || config_.rerouting;
  obs::PhaseTimer repair_timer(repaired ? &repair_sw_ : nullptr);
  if (Clustered()) {
    if (cluster_.IsHead(i)) {
      if (config_.rerouting) {
        // Losing a head strands its members: repair the cluster now.
        // The in-place path touches only the dead head's own members;
        // ElectClusters is the full-rebuild fallback (all-pairs oracle
        // mode, last head standing, or a protocol without member lists).
        if (!TryInPlaceClusterRepair(i)) {
          ElectClusters(/*repair=*/true);
        }
      } else {
        RebuildClusterRoutes();  // at least forget routes through the dead
      }
    } else {
      // A dead member invalidates only its own uplink; every other row
      // of the cluster routing state still points at a live head (or
      // was already kNoRoute), so a full rebuild would change nothing.
      // Leaving the alive set also removes the member from the
      // unrouted-alive count when it had no uplink.
      if (cluster_next_[i] == RoutingTable::kNoRoute) --cluster_unrouted_;
      cluster_next_[i] = RoutingTable::kNoRoute;
      cluster_dist_[i] = 0.0;
    }
  } else if (config_.rerouting) {
    switch (config_.routing_update) {
      case RoutingUpdateMode::kIncremental:
        routing_.RepairAfterDeath(i, alive_);
        break;
      case RoutingUpdateMode::kFull:
        routing_.Recompute(alive_);
        break;
      case RoutingUpdateMode::kLegacy:
        routing_.RecomputeLegacy(alive_);
        break;
    }
  }
  const double repair_elapsed = repair_timer.Stop();
  if (repaired && repair_hist_ != nullptr) repair_hist_->Add(repair_elapsed);
  CheckPartition();
}

void NetworkSimulator::OnFaultEvent(std::size_t k) {
  if (stopped_) return;
  const FaultEvent& e = faults_->Events()[k];
  if (e.kind == FaultEventKind::kCrash) {
    OnCrash(e.node);
  } else {
    OnRecover(e.node);
  }
}

void NetworkSimulator::OnCrash(std::size_t i) {
  // A battery-dead or already-crashed node has nothing left to crash;
  // its paired recover event then no-ops too (down_ guard), so a Poisson
  // crash landing inside a battery-death window never resurrects anyone.
  if (!alive_[i]) return;
  const double now = sim_.Now();
  Touch(i, now);  // baseline paid up to the crash instant, none during it
  alive_[i] = false;
  down_[i] = 1;
  down_since_[i] = now;
  ++crashes_;
  if (death_event_[i] != 0) {
    sim_.Cancel(death_event_[i]);
    death_event_[i] = 0;
  }
  if (arrival_event_[i] != 0) {
    sim_.Cancel(arrival_event_[i]);
    arrival_event_[i] = 0;
  }
  // An interrupted transmission completes nothing: its pending FinishTx
  // must be swallowed, not treated as a finished attempt after recovery.
  if (busy_[i]) tx_void_[i] = 1;
  // The backlog dies with the crash.  Deliberately the same cause as a
  // battery death (the holder went silent with packets queued): a
  // dedicated crash reason would change the drops table layout every
  // fault-free pinned output shows.
  while (!queues_.Empty(i)) {
    DropPacket(i, DropReason::kNodeDied, queues_.Front(i).payload);
    queues_.PopFront(i);
  }
  if (agg_payloads_[i] > 0) {
    DropPacket(i, DropReason::kNodeDied, agg_payloads_[i]);
    agg_payloads_[i] = 0;
  }
  // Crashes are transient: no death_s stamp, no first-death latch — the
  // stop_at_first_death contract still means *battery* death.
  RepairAfterLoss(i);
}

void NetworkSimulator::OnRecover(std::size_t i) {
  if (stopped_ || !down_[i]) return;
  const double now = sim_.Now();
  down_[i] = 0;
  alive_[i] = true;
  // No baseline drain accrues over the outage: the node rejoins with the
  // charge it crashed with.
  last_update_s_[i] = now;
  ++recoveries_;
  if (outage_hist_ != nullptr) outage_hist_->Add(now - down_since_[i]);
  RescheduleDeath(i);

  // Re-admit the node to the routing state — the dual of RepairAfterLoss,
  // timed by the same stopwatch (recoveries are route updates too).
  const bool repaired = Clustered() || config_.rerouting;
  obs::PhaseTimer repair_timer(repaired ? &repair_sw_ : nullptr);
  if (Clustered()) {
    if (config_.rerouting) {
      ReadmitRevived(i);
    } else {
      RebuildClusterRoutes();
    }
  } else if (config_.rerouting) {
    switch (config_.routing_update) {
      case RoutingUpdateMode::kIncremental:
        routing_.RepairAfterRecovery(i, alive_);
        break;
      case RoutingUpdateMode::kFull:
        routing_.Recompute(alive_);
        break;
      case RoutingUpdateMode::kLegacy:
        routing_.RecomputeLegacy(alive_);
        break;
    }
  }
  const double repair_elapsed = repair_timer.Stop();
  if (repaired && repair_hist_ != nullptr) repair_hist_->Add(repair_elapsed);
  CheckPartition();  // a revival can heal a partition
  ScheduleNextArrival(i);
}

void NetworkSimulator::ReadmitRevived(std::size_t i) {
  // The revived node rejoins as a member of its nearest live head; a
  // former head gets its next shot at the following round election.
  // Linear scan over the (small) head list; strict < keeps the lowest
  // head index among equals, matching AssignToNearestHead's tie-break.
  std::size_t best = ClusterAssignment::kUnclustered;
  double best2 = std::numeric_limits<double>::infinity();
  for (std::size_t h : cluster_.heads) {
    if (!alive_[h]) continue;
    const double d2 = node::Distance2(config_.positions[i],
                                      config_.positions[h]);
    if (d2 < best2) {
      best2 = d2;
      best = h;
    }
  }
  if (best == ClusterAssignment::kUnclustered) {
    if (i < cluster_.head_of.size()) {
      cluster_.head_of[i] = ClusterAssignment::kUnclustered;
    }
    cluster_next_[i] = RoutingTable::kNoRoute;
    cluster_dist_[i] = 0.0;
    ++cluster_unrouted_;
    return;
  }
  if (i < cluster_.head_of.size()) cluster_.head_of[i] = best;
  if (cluster_.members.size() == cluster_.heads.size()) {
    for (std::size_t slot = 0; slot < cluster_.heads.size(); ++slot) {
      if (cluster_.heads[slot] == best) {
        // A stale duplicate from an earlier crash is benign: member
        // lists are stale-tolerant (RepairInPlace filters by alive and
        // head_of), exactly like rows orphaned by past repairs.
        cluster_.members[slot].push_back(static_cast<std::uint32_t>(i));
        break;
      }
    }
  }
  cluster_next_[i] = best;
  cluster_dist_[i] =
      node::Distance(config_.positions[i], config_.positions[best]);
}

bool NetworkSimulator::AttemptLost(std::size_t i) {
  if (faults_ == nullptr) return mac_.AttemptLost(rng_);
  const double extra = faults_->JamExtraLoss(config_.positions[i], sim_.Now());
  // No active jam over the sender: exactly the MAC's own draw (same
  // single uniform, same comparison), so jam-free stretches of a faulty
  // run replay the fault-free arithmetic.
  if (extra <= 0.0) return mac_.AttemptLost(rng_);
  const double p =
      1.0 - (1.0 - mac_.Config().p_loss) * (1.0 - extra);
  return util::UniformDouble(rng_) < p;
}

void NetworkSimulator::CheckPartition() {
  const bool latched = partition_s_ != std::numeric_limits<double>::infinity();
  // Once partitioned, fault-free runs are done here forever (nothing can
  // heal them), keeping the post-latch check O(1); with faults the
  // detector keeps watching until the first heal is recorded.
  if (latched &&
      (faults_ == nullptr ||
       heal_s_ != std::numeric_limits<double>::infinity())) {
    return;
  }
  bool partitioned = false;
  if (Clustered()) {
    // RebuildClusterRoutes runs after every head death, so alive rows
    // never point at dead nodes and the maintained counter is exact.
    partitioned = cluster_unrouted_ > 0;
  } else if (config_.rerouting) {
    // The table is repaired after every death, so it is consistent with
    // alive_: a disconnected alive node exists iff some alive node holds
    // kNoRoute (greedy chains strictly approach the sink through alive
    // relays).  O(1) instead of the historical O(N * chain) sweep.
    partitioned = routing_.UnroutedAlive() > 0;
  } else {
    // Rerouting off: the table is stale, chains must be re-walked.
    for (std::size_t i = 0; i < alive_.size(); ++i) {
      if (!alive_[i]) continue;
      if (!routing_.Connected(i, alive_)) {
        partitioned = true;
        break;
      }
    }
  }
  if (!latched) {
    if (partitioned) {
      partition_s_ = sim_.Now();
      if (config_.stop_at_partition) Stop();
    }
  } else if (!partitioned) {
    heal_s_ = sim_.Now();  // every alive node routes again: the cut healed
  }
}

void NetworkSimulator::DropPacket(std::size_t holder, DropReason reason,
                                  std::uint32_t payloads) {
  counters_.Drop(reason, payloads);
  stats_[holder].dropped += payloads;
  if (trace_ != nullptr) {
    // Drops are recorded per (holder, cause, payload count); several call
    // sites drop whole queues, so no single packet id applies.
    obs::TraceEvent event;
    event.t = sim_.Now();
    event.event = "drop";
    event.node = holder;
    event.payload = payloads;
    event.has_payload = true;
    event.cause = DropReasonName(reason);
    trace_->Record(event);
  }
}

void NetworkSimulator::TracePacket(const char* event_name, std::size_t node,
                                   const Packet& pkt) {
  if (trace_ == nullptr) return;
  obs::TraceEvent event;
  event.t = sim_.Now();
  event.event = event_name;
  event.node = node;
  event.packet = pkt.id;
  event.has_packet = true;
  event.source = pkt.source;
  event.has_source = true;
  event.payload = pkt.payload;
  event.has_payload = true;
  trace_->Record(event);
}

void NetworkSimulator::CollectMetrics(NetSimReport& report) {
  obs::MetricsRegistry& reg = *metrics_;
  const des::Simulator::KernelStats kernel = sim_.Stats();
  *reg.Counter("des.events.scheduled") += kernel.scheduled;
  *reg.Counter("des.events.fired") += kernel.fired;
  *reg.Counter("des.events.cancelled") += kernel.cancelled;
  *reg.Counter("des.slab.reuses") += kernel.slab_reuses;
  reg.GaugeMax("des.queue.live_hwm", static_cast<double>(kernel.live_hwm));
  reg.GaugeMax("des.slab.slots", static_cast<double>(kernel.slab_slots));

  *reg.Counter("netsim.packets.generated") += counters_.generated;
  *reg.Counter("netsim.packets.delivered") += counters_.delivered;
  *reg.Counter("netsim.packets.forwarded") += counters_.forwarded;
  *reg.Counter("netsim.packets.retransmissions") += counters_.retransmissions;
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    const auto reason = static_cast<DropReason>(r);
    *reg.Counter(std::string("netsim.drops.") + DropReasonName(reason)) +=
        counters_.Dropped(reason);
  }
  std::uint64_t deaths = 0;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (!alive_[i]) ++deaths;
  }
  *reg.Counter("netsim.deaths") += deaths;
  if (faults_ != nullptr) {
    // Fault counters only exist in fault-enabled runs, so the metric
    // catalogue of every fault-free run is unchanged.
    *reg.Counter("netsim.faults.crashes") += crashes_;
    *reg.Counter("netsim.faults.recoveries") += recoveries_;
    *reg.Counter("netsim.faults.jam_windows") += faults_->JamWindows();
    *reg.Counter("netsim.faults.sink_outages") += faults_->SinkOutages();
  }
  *reg.Counter("netsim.routing.repairs") += repair_sw_.calls;
  *reg.Counter("netsim.cluster.rounds") += rounds_;
  *reg.Counter("netsim.cluster.elections") += elections_;
  *reg.Counter("netsim.mac.lpl_waits") += mac_.Lpl().waits;
  *reg.Sum("netsim.mac.lpl_wait_s") += mac_.Lpl().wait_s;
  *reg.Counter("netsim.mac.wakeup_batches") += wakeup_batches_;
  *reg.Counter("netsim.mac.wakeups_batched") += wakeups_batched_;
  reg.GaugeMax("netsim.queue.pool_slots",
               static_cast<double>(queues_.Slots()));
  if (trace_ != nullptr) {
    *reg.Counter("obs.trace.events") += trace_->Events();
    if (trace_->Truncated()) *reg.Counter("obs.trace.truncated") += 1;
  }

  reg.Timing("netsim.routing.repair_wall_s")->MergeFrom(repair_sw_);
  reg.Timing("netsim.cluster.election_wall_s")->MergeFrom(election_sw_);
  reg.Timing("netsim.cluster.assign_wall_s")->MergeFrom(assign_sw_);

  report.metrics = reg.Snapshot();
}

void NetworkSimulator::TimelineTick() {
  if (stopped_) return;
  const double now = sim_.Now();
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (!alive_[i]) continue;
    Touch(i, now);
    stats_[i].timeline.push_back({now, battery_[i].Remaining()});
  }
  const double next = now + config_.timeline_interval_s;
  if (next <= config_.horizon_s) {
    sim_.ScheduleAt(next, [this] { TimelineTick(); });
  }
}

void NetworkSimulator::Stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_time_s_ = sim_.Now();
}

std::size_t NetworkSimulator::Receiver(std::size_t i) const {
  return Clustered() ? cluster_next_[i] : routing_.NextHop(i);
}

double NetworkSimulator::HopDistanceOf(std::size_t i) const {
  return Clustered() ? cluster_dist_[i] : routing_.HopDistance(i);
}

void NetworkSimulator::ElectClusters(bool repair) {
  const double now = sim_.Now();
  if (!repair) {
    // Round elections drain every battery up to the election instant so
    // the protocol sees current energies.  Repairs skip the O(N) sweep —
    // batteries stay lazily drained (see Touch) and the rare repair that
    // actually reads energies refreshes them below — which regroups the
    // floating-point drain sums and therefore shifts clustered
    // trajectories by ULPs relative to the eager-sweep implementation
    // (identically in both assignment modes).
    for (std::size_t i = 0; i < alive_.size(); ++i) {
      if (alive_[i]) Touch(i, now);  // batteries current at the election
    }
  }
  ClusterView view;
  view.positions = &config_.positions;
  view.sinks = &routing_.Sinks();
  view.alive = &alive_;
  view.energy_fraction = &energy_fraction_;
  // The energy *fractions* are derived lazily: only an election that
  // actually reads energies (LEACH's nobody-volunteered draft) pays the
  // per-node touch + division, so the frequent head-death repairs skip
  // it.
  view.refresh_energy = [this, now] {
    for (std::size_t i = 0; i < alive_.size(); ++i) {
      if (alive_[i]) {
        Touch(i, now);  // no-op when the round-election sweep already ran
        energy_fraction_[i] =
            battery_[i].Remaining() / battery_[i].CapacityJoules();
      } else {
        energy_fraction_[i] = 0.0;
      }
    }
  };
  view.assign_stopwatch = &assign_sw_;
  view.assign_mode = config_.cluster.assign;

  // Election cost = protocol decision + member assignment + route
  // rebuild; the post-election queue wakeups below are ordinary TX work,
  // not election overhead, so they stay outside the timer.
  ClusterAssignment prev = std::move(cluster_);
  obs::PhaseTimer election_timer(&election_sw_);
  cluster_ = repair ? protocol_->Repair(prev, round_, view, rng_)
                    : protocol_->Elect(round_, view, rng_);
  ++elections_;
  if (!repair) ++rounds_;
  for (std::size_t h : cluster_.heads) ++stats_[h].head_elections;
  RebuildClusterRoutes(repair && prev.head_of.size() == cluster_.head_of.size()
                           ? &prev.head_of
                           : nullptr);
  election_timer.Stop();
  // Routes may have appeared (a repaired head) — wake up waiting queues.
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i] && !queues_.Empty(i)) StartNext(i);
  }
}

bool NetworkSimulator::TryInPlaceClusterRepair(std::size_t dead) {
  // All-pairs mode stays on the historical full-rebuild path: it is the
  // pinned oracle the netsim-scale clustered-allpairs rows measure.
  if (config_.cluster.assign != HeadAssignMode::kGrid) return false;
  // Pre-check RepairInPlace's decline conditions so a declined repair
  // never opens the election stopwatch (keeping its call count equal to
  // the one ElectClusters will record on the fallback path).
  if (cluster_.heads.size() <= 1 ||
      cluster_.members.size() != cluster_.heads.size()) {
    return false;
  }
  ClusterView view;
  view.positions = &config_.positions;
  view.sinks = &routing_.Sinks();
  view.alive = &alive_;
  view.energy_fraction = &energy_fraction_;  // never read: repairs with a
                                             // surviving head skip energies
  view.assign_stopwatch = &assign_sw_;
  view.assign_mode = config_.cluster.assign;

  repair_reattached_.clear();
  obs::PhaseTimer election_timer(&election_sw_);
  if (!protocol_->RepairInPlace(cluster_, dead, view, repair_reattached_)) {
    return false;
  }
  ++elections_;
  // Every surviving head "wins" the repair election, exactly as on the
  // full-rebuild path — head_elections is an output-visible stat.
  for (std::size_t h : cluster_.heads) ++stats_[h].head_elections;
  // Patch only the affected route rows: the dead head forgets its sink
  // uplink; re-attached members point at their new head.  Ascending node
  // order replays the full rebuild's sweep order.
  std::sort(repair_reattached_.begin(), repair_reattached_.end());
  cluster_next_[dead] = RoutingTable::kNoRoute;
  cluster_dist_[dead] = 0.0;
  for (std::uint32_t m : repair_reattached_) {
    const std::size_t head = cluster_.head_of[m];
    cluster_next_[m] = head;
    cluster_dist_[m] =
        node::Distance(config_.positions[m], config_.positions[head]);
  }
  // cluster_unrouted_ is untouched: every orphan re-attached (a surviving
  // head exists) and the dead head left the alive set, not the routed set.
  election_timer.Stop();
  // Wake only the re-attached members — every other alive node kept its
  // route, so the full post-election sweep would no-op on it (busy, or
  // idle with an empty queue; idle-with-backlog cannot survive StartNext
  // while a route exists, and clustered nodes always have one while any
  // head lives).
  for (std::uint32_t m : repair_reattached_) {
    if (!queues_.Empty(m)) StartNext(m);
  }
  return true;
}

void NetworkSimulator::RebuildClusterRoutes(
    const std::vector<std::size_t>* prev_head_of) {
  const bool diff = prev_head_of != nullptr &&
                    prev_head_of->size() == cluster_.head_of.size() &&
                    cluster_.head_of.size() == alive_.size();
  if (!diff) cluster_unrouted_ = 0;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (diff) {
      // A row whose assignment is unchanged still points at a live head
      // (repair never kills a kept head) at the same distance.
      if ((*prev_head_of)[i] == cluster_.head_of[i]) continue;
      if (alive_[i] && cluster_next_[i] == RoutingTable::kNoRoute) {
        --cluster_unrouted_;  // re-counted below if the row stays unrouted
      }
    }
    if (!alive_[i]) {
      cluster_next_[i] = RoutingTable::kNoRoute;
      cluster_dist_[i] = 0.0;
      continue;
    }
    const std::size_t head = i < cluster_.head_of.size()
                                 ? cluster_.head_of[i]
                                 : ClusterAssignment::kUnclustered;
    if (head == i) {
      // Heads uplink straight to their nearest sink; the routing table
      // precomputed that distance from the same sink set.
      cluster_next_[i] = RoutingTable::kSink;
      cluster_dist_[i] = routing_.DistanceToSink(i);
    } else if (head != ClusterAssignment::kUnclustered && alive_[head]) {
      cluster_next_[i] = head;
      cluster_dist_[i] =
          node::Distance(config_.positions[i], config_.positions[head]);
    } else {
      cluster_next_[i] = RoutingTable::kNoRoute;
      cluster_dist_[i] = 0.0;
      ++cluster_unrouted_;
    }
  }
}

void NetworkSimulator::RoundTick() {
  if (stopped_) return;
  // Demotion flush: partial aggregates leave under the *new* assignment
  // (the packets sit in the queue; the receiver is read at TX time).
  for (std::size_t h : cluster_.heads) {
    if (alive_[h]) FlushAggregate(h);
  }
  ++round_;
  ElectClusters(/*repair=*/false);
  CheckPartition();
  const double next = sim_.Now() + config_.cluster.round_s;
  if (next <= config_.horizon_s) {
    sim_.ScheduleAt(next, [this] { RoundTick(); });
  }
}

void NetworkSimulator::AbsorbAtHead(std::size_t head, const Packet& pkt) {
  stats_[head].aggregated += pkt.payload;
  agg_payloads_[head] += pkt.payload;
  if (agg_payloads_[head] >=
      static_cast<std::uint32_t>(config_.cluster.aggregation)) {
    FlushAggregate(head);
  }
}

void NetworkSimulator::FlushAggregate(std::size_t head) {
  if (agg_payloads_[head] == 0) return;
  Packet agg;
  agg.id = next_packet_id_++;
  agg.source = head;
  agg.created_s = sim_.Now();
  agg.bits = aggregate_bits_;
  agg.payload = agg_payloads_[head];
  agg_payloads_[head] = 0;
  Enqueue(head, agg);
}

}  // namespace wsn::netsim
