#include "netsim/netsim.hpp"

#include <algorithm>
#include <unordered_map>

#include "energy/energy_model.hpp"
#include "util/error.hpp"
#include "wsn/node.hpp"

namespace wsn::netsim {

using util::Require;

namespace {

/// Map class name -> index into config.classes; validates uniqueness.
std::unordered_map<std::string, std::size_t> ClassIndex(
    const std::vector<NodeClass>& classes) {
  std::unordered_map<std::string, std::size_t> index;
  index.reserve(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const bool inserted = index.emplace(classes[c].name, c).second;
    Require(inserted, "duplicate node class name '" + classes[c].name + "'");
  }
  return index;
}

/// Index of node i's class, or size_t(-1) for "use the template".
std::size_t ClassOf(const NetSimConfig& config,
                    const std::unordered_map<std::string, std::size_t>& index,
                    std::size_t i) {
  if (config.node_class.empty()) return static_cast<std::size_t>(-1);
  const auto it = index.find(config.node_class[i]);
  Require(it != index.end(),
          "unknown node class '" + config.node_class[i] + "'");
  return it->second;
}

}  // namespace

void NetSimConfig::Validate() const {
  Require(!positions.empty(), "netsim needs at least one node");
  Require(horizon_s > 0.0, "horizon must be positive");
  Require(timeline_interval_s >= 0.0, "timeline interval must be >= 0");
  Require(battery_mah_override.empty() ||
              battery_mah_override.size() == positions.size(),
          "battery override must be empty or one entry per node");
  for (double mah : battery_mah_override) {
    Require(mah > 0.0, "battery override entries must be positive");
  }
  for (const NodeClass& cls : classes) cls.Validate();
  const auto index = ClassIndex(classes);
  if (!node_class.empty()) {
    Require(node_class.size() == positions.size(),
            "node class names must be empty or one entry per node");
    Require(!classes.empty(),
            "per-node class names given but no node classes defined");
    for (std::size_t i = 0; i < node_class.size(); ++i) {
      (void)ClassOf(*this, index, i);
    }
  }
  mac.Validate();
  cluster.Validate();
  // Reuse the node-layer validation (duty cycle, sample bits, ...).
  node::SensorNode validator(network.node);
  (void)validator;
}

std::vector<node::Position> EffectiveSinks(const NetSimConfig& config) {
  if (!config.sinks.empty()) return config.sinks;
  return {config.network.sink};
}

std::vector<node::NodeConfig> PerNodeConfigs(const NetSimConfig& config) {
  const auto index = ClassIndex(config.classes);
  std::vector<node::NodeConfig> out;
  out.reserve(config.positions.size());
  for (std::size_t i = 0; i < config.positions.size(); ++i) {
    node::NodeConfig cfg = config.network.node;
    const std::size_t c = ClassOf(config, index, i);
    if (c != static_cast<std::size_t>(-1)) {
      const NodeClass& cls = config.classes[c];
      cfg.radio = cls.radio;
      cfg.listen_duty_cycle = cls.listen_duty_cycle;
      cfg.battery_mah = cls.battery_mah;
      cfg.battery_volts = cls.battery_volts;
    }
    if (!config.battery_mah_override.empty()) {
      cfg.battery_mah = config.battery_mah_override[i];
    }
    out.push_back(cfg);
  }
  return out;
}

double CpuAveragePowerMw(const NetSimConfig& config,
                         const core::CpuEnergyModel& model) {
  const core::ModelEvaluation eval = model.Evaluate(config.network.node.cpu);
  return energy::AveragePowerMilliwatts(eval.shares,
                                        config.network.node.cpu_power);
}

NetworkSimulator::NetworkSimulator(NetSimConfig config, double cpu_power_mw,
                                   util::Rng rng)
    : config_(std::move(config)),
      sim_(config_.queue_kind),
      rng_(rng),
      routing_(EffectiveSinks(config_), config_.network.max_hop_m,
               config_.positions),
      mac_(config_.mac, config_.positions.size(), rng_) {
  config_.Validate();
  Require(cpu_power_mw >= 0.0, "CPU power must be >= 0");

  const std::vector<node::NodeConfig> per_node = PerNodeConfigs(config_);
  const std::size_t n = config_.positions.size();
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const node::NodeConfig& cfg = per_node[i];
    nodes_.emplace_back(energy::Battery(cfg.battery_mah, cfg.battery_volts),
                        energy::RadioModel(cfg.radio));
    NodeRt& node = nodes_.back();
    node.baseline_mw = cpu_power_mw +
                       cfg.listen_duty_cycle * cfg.radio.listen_mw +
                       (1.0 - cfg.listen_duty_cycle) * cfg.radio.sleep_mw;
    if (config_.traffic_factory) {
      node.traffic = config_.traffic_factory(i);
      Require(node.traffic != nullptr, "traffic factory returned null");
    } else {
      const double rate = cfg.cpu.arrival_rate * cfg.report_fraction;
      if (rate > 0.0) node.traffic = des::MakePoissonWorkload(rate);
    }
  }
  alive_.assign(n, true);

  protocol_ = config_.cluster.MakeProtocol(n);
  if (protocol_ != nullptr) {
    cluster_next_.assign(n, RoutingTable::kNoRoute);
    cluster_dist_.assign(n, 0.0);
    energy_fraction_.assign(n, 1.0);
    aggregate_bits_ = config_.cluster.aggregate_bits != 0
                          ? config_.cluster.aggregate_bits
                          : config_.network.node.sample_bits;
  }

  if (config_.timeline_interval_s > 0.0) {
    // One sample per tick plus the closing sample appended at the end of
    // the run — sized up front so the hot loop never reallocates.
    const std::size_t samples =
        static_cast<std::size_t>(config_.horizon_s /
                                 config_.timeline_interval_s) +
        2;
    for (NodeRt& node : nodes_) node.stats.timeline.reserve(samples);
  }

  if (config_.obs.metrics) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    // Pre-resolved so OnDeath records through a raw pointer; the range
    // covers incremental repairs (~us) up to legacy full recomputes.
    repair_hist_ = metrics_->TimingHist("netsim.routing.repair_latency_s",
                                        0.0, 0.05, 25);
  }
  if (config_.obs.trace.enabled) {
    trace_ = std::make_unique<obs::TraceSink>(config_.obs.trace);
  }
}

NetSimReport NetworkSimulator::Run() {
  Require(!ran_, "NetworkSimulator::Run is single-shot; make a new instance");
  ran_ = true;

  if (Clustered()) {
    ElectClusters(/*repair=*/false);  // round 0 election at t = 0
    sim_.ScheduleAt(config_.cluster.round_s, [this] { RoundTick(); });
  }
  CheckPartition();  // a deployment can be partitioned from the start
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    ScheduleNextArrival(i);
    RescheduleDeath(i);
  }
  if (config_.timeline_interval_s > 0.0) {
    sim_.ScheduleAt(config_.timeline_interval_s, [this] { TimelineTick(); });
  }

  sim_.RunUntil(config_.horizon_s);

  const double end = stopped_ ? stop_time_s_ : config_.horizon_s;
  NetSimReport report;
  report.nodes.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeRt& node = nodes_[i];
    if (node.alive) Touch(i, end);
    node.stats.alive = node.alive;
    node.stats.remaining_j = node.battery.Remaining();
    node.stats.energy_used_j =
        node.battery.CapacityJoules() - node.battery.Remaining();
    if (config_.timeline_interval_s > 0.0 &&
        (node.stats.timeline.empty() ||
         node.stats.timeline.back().time_s < end)) {
      node.stats.timeline.push_back({end, node.battery.Remaining()});
    }
    report.nodes.push_back(std::move(node.stats));
  }
  report.packets = counters_;
  report.first_death_s = first_death_s_;
  report.first_dead_node = first_dead_node_;
  report.partition_s = partition_s_;
  report.end_s = end;
  report.events = sim_.ProcessedEvents();
  report.routing_repairs = repair_sw_.calls;
  report.routing_repair_s = repair_sw_.seconds;
  report.rounds = rounds_;
  report.elections = elections_;
  if (metrics_ != nullptr) CollectMetrics(report);
  if (trace_ != nullptr) report.trace = trace_->TakeText();
  return report;
}

void NetworkSimulator::ScheduleNextArrival(std::size_t i) {
  NodeRt& node = nodes_[i];
  if (!node.traffic) return;
  const auto next = node.traffic->NextArrival(sim_.Now(), rng_);
  if (!next) return;
  const double t = std::max(*next, sim_.Now());
  if (t > config_.horizon_s) return;
  sim_.ScheduleAt(t, [this, i] { OnArrival(i); });
}

void NetworkSimulator::OnArrival(std::size_t i) {
  if (stopped_) return;
  NodeRt& node = nodes_[i];
  if (!node.alive) return;  // dead sources stop reporting
  ++counters_.generated;
  ++node.stats.generated;
  Packet pkt;
  pkt.id = next_packet_id_++;
  pkt.source = i;
  pkt.created_s = sim_.Now();
  pkt.bits = config_.network.node.sample_bits;
  TracePacket("gen", i, pkt);
  if (Clustered() && cluster_.IsHead(i)) {
    // A head's own sample joins its aggregation buffer directly — no
    // radio hop from a node to itself.
    AbsorbAtHead(i, pkt);
  } else {
    Enqueue(i, pkt);
  }
  ScheduleNextArrival(i);
}

void NetworkSimulator::Enqueue(std::size_t i, const Packet& pkt) {
  NodeRt& node = nodes_[i];
  if (!node.alive) {
    DropPacket(i, DropReason::kNodeDied, pkt.payload);
    return;
  }
  if (node.queue.size() >= mac_.Config().max_queue) {
    DropPacket(i, DropReason::kQueueOverflow, pkt.payload);
    return;
  }
  node.queue.push_back(pkt);
  TracePacket("enqueue", i, pkt);
  StartNext(i);
}

void NetworkSimulator::StartNext(std::size_t i) {
  NodeRt& node = nodes_[i];
  if (stopped_ || !node.alive || node.busy) return;
  if (node.queue.empty()) return;
  // The next hop is queried once: the routing table can only change when
  // a death (or a cluster election) recomputes it, never inside this
  // function.  A partitioned holder therefore sheds its whole backlog
  // immediately.
  const std::size_t receiver = Receiver(i);
  if (receiver == RoutingTable::kNoRoute) {
    while (!node.queue.empty()) {
      DropPacket(i, DropReason::kNoRoute, node.queue.front().payload);
      node.queue.pop_front();
    }
    return;
  }
  node.busy = true;
  const Packet& pkt = node.queue.front();
  const std::size_t mac_receiver = (receiver == RoutingTable::kSink)
                                       ? DutyCycledMac::kSinkReceiver
                                       : receiver;
  const double delay = mac_.TxDelay(sim_.Now(), pkt.bits, mac_receiver, rng_);
  sim_.ScheduleAfter(delay, [this, i] { FinishTx(i); });
}

void NetworkSimulator::FinishTx(std::size_t i) {
  if (stopped_) return;
  NodeRt& node = nodes_[i];
  node.busy = false;
  if (!node.alive) return;  // died mid-TX; the queue was flushed at death
  if (node.queue.empty()) return;
  Packet pkt = node.queue.front();
  node.queue.pop_front();

  const std::size_t receiver = Receiver(i);
  if (receiver == RoutingTable::kNoRoute) {
    DropPacket(i, DropReason::kNoRoute, pkt.payload);
    StartNext(i);
    return;
  }
  // The sender pays for the attempt whatever its fate (this drain may
  // deplete the sender; the in-flight packet still completes the hop).
  DrainDiscrete(i, node.radio.TransmitEnergy(pkt.bits, HopDistanceOf(i)));
  TracePacket("tx", i, pkt);

  if (receiver != RoutingTable::kSink && !nodes_[receiver].alive) {
    DropPacket(i, DropReason::kDeadNextHop, pkt.payload);
  } else if (mac_.AttemptLost(rng_)) {
    if (pkt.retries >= mac_.Config().max_retries) {
      DropPacket(i, DropReason::kLinkLoss, pkt.payload);
    } else if (nodes_[i].alive) {
      ++counters_.retransmissions;
      ++pkt.retries;
      nodes_[i].queue.push_front(pkt);
    } else {
      DropPacket(i, DropReason::kNodeDied, pkt.payload);
    }
  } else if (receiver == RoutingTable::kSink) {
    counters_.delivered += pkt.payload;
    nodes_[pkt.source].stats.delivered += pkt.payload;
    TracePacket("deliver", i, pkt);
  } else if (Clustered()) {
    // In clustered mode every node-to-node hand-off lands at a cluster
    // head, which folds the payload into its aggregation buffer instead
    // of relaying the packet verbatim.
    DrainDiscrete(receiver, nodes_[receiver].radio.ReceiveEnergy(pkt.bits));
    ++counters_.forwarded;
    ++nodes_[receiver].stats.forwarded;
    TracePacket("rx", receiver, pkt);
    if (nodes_[receiver].alive) {
      AbsorbAtHead(receiver, pkt);
    } else {
      DropPacket(receiver, DropReason::kNodeDied, pkt.payload);
    }
  } else {
    DrainDiscrete(receiver, nodes_[receiver].radio.ReceiveEnergy(pkt.bits));
    pkt.retries = 0;
    if (++pkt.hops > nodes_.size()) {
      DropPacket(receiver, DropReason::kTtlExceeded, pkt.payload);
    } else {
      ++counters_.forwarded;
      ++nodes_[receiver].stats.forwarded;
      TracePacket("rx", receiver, pkt);
      Enqueue(receiver, pkt);
    }
  }
  if (nodes_[i].alive) StartNext(i);
}

void NetworkSimulator::Touch(std::size_t i, double now) {
  NodeRt& node = nodes_[i];
  const double dt = now - node.last_update_s;
  if (dt > 0.0) {
    node.battery.Drain(node.baseline_mw * dt / 1000.0);
    node.last_update_s = now;
  }
}

void NetworkSimulator::DrainDiscrete(std::size_t i, double joules) {
  NodeRt& node = nodes_[i];
  if (!node.alive) return;
  Touch(i, sim_.Now());
  node.battery.Drain(joules);
  if (node.battery.Depleted()) {
    OnDeath(i);
  } else {
    RescheduleDeath(i);
  }
}

void NetworkSimulator::RescheduleDeath(std::size_t i) {
  NodeRt& node = nodes_[i];
  if (node.death_event != 0) {
    sim_.Cancel(node.death_event);
    node.death_event = 0;
  }
  if (node.baseline_mw <= 0.0) return;  // only discrete drains can kill
  const double seconds_left =
      node.battery.Remaining() / (node.baseline_mw / 1000.0);
  const double when = sim_.Now() + seconds_left;
  if (when > config_.horizon_s) return;  // outlives the horizon
  node.death_event = sim_.ScheduleAt(when, [this, i] {
    if (stopped_ || !nodes_[i].alive) return;
    nodes_[i].death_event = 0;
    Touch(i, sim_.Now());
    nodes_[i].battery.Drain(nodes_[i].battery.Remaining());
    OnDeath(i);
  });
}

void NetworkSimulator::OnDeath(std::size_t i) {
  NodeRt& node = nodes_[i];
  node.alive = false;
  alive_[i] = false;
  node.stats.death_s = sim_.Now();
  if (node.death_event != 0) {
    sim_.Cancel(node.death_event);
    node.death_event = 0;
  }
  for (const Packet& pkt : node.queue) {
    DropPacket(i, DropReason::kNodeDied, pkt.payload);
  }
  node.queue.clear();
  if (node.agg_payloads > 0) {
    // Buffered member payloads die with the head that held them.
    DropPacket(i, DropReason::kNodeDied, node.agg_payloads);
    node.agg_payloads = 0;
  }
  if (first_death_s_ == std::numeric_limits<double>::infinity()) {
    first_death_s_ = sim_.Now();
    first_dead_node_ = i;
    if (config_.stop_at_first_death) Stop();
  }
  if (stopped_) return;
  // Every death in clustered mode updates routing state (a member death
  // clears its own uplink, a head death rebuilds or repairs); in flat
  // mode only rerouting-enabled runs do.
  const bool repaired = Clustered() || config_.rerouting;
  obs::PhaseTimer repair_timer(repaired ? &repair_sw_ : nullptr);
  if (Clustered()) {
    if (cluster_.IsHead(i)) {
      if (config_.rerouting) {
        // Losing a head strands its members: repair the cluster now.
        ElectClusters(/*repair=*/true);
      } else {
        RebuildClusterRoutes();  // at least forget routes through the dead
      }
    } else {
      // A dead member invalidates only its own uplink; every other row
      // of the cluster routing state still points at a live head (or
      // was already kNoRoute), so a full rebuild would change nothing.
      cluster_next_[i] = RoutingTable::kNoRoute;
      cluster_dist_[i] = 0.0;
    }
  } else if (config_.rerouting) {
    switch (config_.routing_update) {
      case RoutingUpdateMode::kIncremental:
        routing_.RepairAfterDeath(i, alive_);
        break;
      case RoutingUpdateMode::kFull:
        routing_.Recompute(alive_);
        break;
      case RoutingUpdateMode::kLegacy:
        routing_.RecomputeLegacy(alive_);
        break;
    }
  }
  const double repair_elapsed = repair_timer.Stop();
  if (repaired && repair_hist_ != nullptr) repair_hist_->Add(repair_elapsed);
  CheckPartition();
}

void NetworkSimulator::CheckPartition() {
  if (partition_s_ != std::numeric_limits<double>::infinity()) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!alive_[i]) continue;
    bool connected = true;
    if (Clustered()) {
      const std::size_t r = cluster_next_[i];
      connected = r == RoutingTable::kSink ||
                  (r != RoutingTable::kNoRoute && alive_[r]);
    } else {
      connected = routing_.Connected(i, alive_);
    }
    if (!connected) {
      partition_s_ = sim_.Now();
      if (config_.stop_at_partition) Stop();
      return;
    }
  }
}

void NetworkSimulator::DropPacket(std::size_t holder, DropReason reason,
                                  std::uint32_t payloads) {
  counters_.Drop(reason, payloads);
  nodes_[holder].stats.dropped += payloads;
  if (trace_ != nullptr) {
    // Drops are recorded per (holder, cause, payload count); several call
    // sites drop whole queues, so no single packet id applies.
    obs::TraceEvent event;
    event.t = sim_.Now();
    event.event = "drop";
    event.node = holder;
    event.payload = payloads;
    event.has_payload = true;
    event.cause = DropReasonName(reason);
    trace_->Record(event);
  }
}

void NetworkSimulator::TracePacket(const char* event_name, std::size_t node,
                                   const Packet& pkt) {
  if (trace_ == nullptr) return;
  obs::TraceEvent event;
  event.t = sim_.Now();
  event.event = event_name;
  event.node = node;
  event.packet = pkt.id;
  event.has_packet = true;
  event.source = pkt.source;
  event.has_source = true;
  event.payload = pkt.payload;
  event.has_payload = true;
  trace_->Record(event);
}

void NetworkSimulator::CollectMetrics(NetSimReport& report) {
  obs::MetricsRegistry& reg = *metrics_;
  const des::Simulator::KernelStats kernel = sim_.Stats();
  *reg.Counter("des.events.scheduled") += kernel.scheduled;
  *reg.Counter("des.events.fired") += kernel.fired;
  *reg.Counter("des.events.cancelled") += kernel.cancelled;
  *reg.Counter("des.slab.reuses") += kernel.slab_reuses;
  reg.GaugeMax("des.queue.live_hwm", static_cast<double>(kernel.live_hwm));
  reg.GaugeMax("des.slab.slots", static_cast<double>(kernel.slab_slots));

  *reg.Counter("netsim.packets.generated") += counters_.generated;
  *reg.Counter("netsim.packets.delivered") += counters_.delivered;
  *reg.Counter("netsim.packets.forwarded") += counters_.forwarded;
  *reg.Counter("netsim.packets.retransmissions") += counters_.retransmissions;
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    const auto reason = static_cast<DropReason>(r);
    *reg.Counter(std::string("netsim.drops.") + DropReasonName(reason)) +=
        counters_.Dropped(reason);
  }
  std::uint64_t deaths = 0;
  for (const NodeRt& node : nodes_) {
    if (!node.alive) ++deaths;
  }
  *reg.Counter("netsim.deaths") += deaths;
  *reg.Counter("netsim.routing.repairs") += repair_sw_.calls;
  *reg.Counter("netsim.cluster.rounds") += rounds_;
  *reg.Counter("netsim.cluster.elections") += elections_;
  *reg.Counter("netsim.mac.lpl_waits") += mac_.Lpl().waits;
  *reg.Sum("netsim.mac.lpl_wait_s") += mac_.Lpl().wait_s;
  if (trace_ != nullptr) {
    *reg.Counter("obs.trace.events") += trace_->Events();
    if (trace_->Truncated()) *reg.Counter("obs.trace.truncated") += 1;
  }

  reg.Timing("netsim.routing.repair_wall_s")->MergeFrom(repair_sw_);
  reg.Timing("netsim.cluster.election_wall_s")->MergeFrom(election_sw_);
  reg.Timing("netsim.cluster.assign_wall_s")->MergeFrom(assign_sw_);

  report.metrics = reg.Snapshot();
}

void NetworkSimulator::TimelineTick() {
  if (stopped_) return;
  const double now = sim_.Now();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeRt& node = nodes_[i];
    if (!node.alive) continue;
    Touch(i, now);
    node.stats.timeline.push_back({now, node.battery.Remaining()});
  }
  const double next = now + config_.timeline_interval_s;
  if (next <= config_.horizon_s) {
    sim_.ScheduleAt(next, [this] { TimelineTick(); });
  }
}

void NetworkSimulator::Stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_time_s_ = sim_.Now();
}

std::size_t NetworkSimulator::Receiver(std::size_t i) const {
  return Clustered() ? cluster_next_[i] : routing_.NextHop(i);
}

double NetworkSimulator::HopDistanceOf(std::size_t i) const {
  return Clustered() ? cluster_dist_[i] : routing_.HopDistance(i);
}

void NetworkSimulator::ElectClusters(bool repair) {
  const double now = sim_.Now();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive) {
      energy_fraction_[i] = 0.0;
      continue;
    }
    Touch(i, now);  // battery levels current at the election instant
    energy_fraction_[i] =
        nodes_[i].battery.Remaining() / nodes_[i].battery.CapacityJoules();
  }
  ClusterView view;
  view.positions = &config_.positions;
  view.sinks = &routing_.Sinks();
  view.alive = &alive_;
  view.energy_fraction = &energy_fraction_;
  view.assign_stopwatch = &assign_sw_;

  // Election cost = protocol decision + member assignment + route
  // rebuild; the post-election queue wakeups below are ordinary TX work,
  // not election overhead, so they stay outside the timer.
  obs::PhaseTimer election_timer(&election_sw_);
  cluster_ = repair ? protocol_->Repair(cluster_, round_, view, rng_)
                    : protocol_->Elect(round_, view, rng_);
  ++elections_;
  if (!repair) ++rounds_;
  for (std::size_t h : cluster_.heads) ++nodes_[h].stats.head_elections;
  RebuildClusterRoutes();
  election_timer.Stop();
  // Routes may have appeared (a repaired head) — wake up waiting queues.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive && !nodes_[i].queue.empty()) StartNext(i);
  }
}

void NetworkSimulator::RebuildClusterRoutes() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!alive_[i]) {
      cluster_next_[i] = RoutingTable::kNoRoute;
      cluster_dist_[i] = 0.0;
      continue;
    }
    const std::size_t head = i < cluster_.head_of.size()
                                 ? cluster_.head_of[i]
                                 : ClusterAssignment::kUnclustered;
    if (head == i) {
      // Heads uplink straight to their nearest sink; the routing table
      // precomputed that distance from the same sink set.
      cluster_next_[i] = RoutingTable::kSink;
      cluster_dist_[i] = routing_.DistanceToSink(i);
    } else if (head != ClusterAssignment::kUnclustered && alive_[head]) {
      cluster_next_[i] = head;
      cluster_dist_[i] =
          node::Distance(config_.positions[i], config_.positions[head]);
    } else {
      cluster_next_[i] = RoutingTable::kNoRoute;
      cluster_dist_[i] = 0.0;
    }
  }
}

void NetworkSimulator::RoundTick() {
  if (stopped_) return;
  // Demotion flush: partial aggregates leave under the *new* assignment
  // (the packets sit in the queue; the receiver is read at TX time).
  for (std::size_t h : cluster_.heads) {
    if (nodes_[h].alive) FlushAggregate(h);
  }
  ++round_;
  ElectClusters(/*repair=*/false);
  CheckPartition();
  const double next = sim_.Now() + config_.cluster.round_s;
  if (next <= config_.horizon_s) {
    sim_.ScheduleAt(next, [this] { RoundTick(); });
  }
}

void NetworkSimulator::AbsorbAtHead(std::size_t head, const Packet& pkt) {
  NodeRt& node = nodes_[head];
  node.stats.aggregated += pkt.payload;
  node.agg_payloads += pkt.payload;
  if (node.agg_payloads >=
      static_cast<std::uint32_t>(config_.cluster.aggregation)) {
    FlushAggregate(head);
  }
}

void NetworkSimulator::FlushAggregate(std::size_t head) {
  NodeRt& node = nodes_[head];
  if (node.agg_payloads == 0) return;
  Packet agg;
  agg.id = next_packet_id_++;
  agg.source = head;
  agg.created_s = sim_.Now();
  agg.bits = aggregate_bits_;
  agg.payload = node.agg_payloads;
  node.agg_payloads = 0;
  Enqueue(head, agg);
}

}  // namespace wsn::netsim
