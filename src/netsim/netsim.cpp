#include "netsim/netsim.hpp"

#include <algorithm>

#include "energy/energy_model.hpp"
#include "util/error.hpp"
#include "wsn/node.hpp"

namespace wsn::netsim {

using util::Require;

void NetSimConfig::Validate() const {
  Require(!positions.empty(), "netsim needs at least one node");
  Require(horizon_s > 0.0, "horizon must be positive");
  Require(timeline_interval_s >= 0.0, "timeline interval must be >= 0");
  Require(battery_mah_override.empty() ||
              battery_mah_override.size() == positions.size(),
          "battery override must be empty or one entry per node");
  for (double mah : battery_mah_override) {
    Require(mah > 0.0, "battery override entries must be positive");
  }
  mac.Validate();
  // Reuse the node-layer validation (duty cycle, sample bits, ...).
  node::SensorNode validator(network.node);
  (void)validator;
}

double CpuAveragePowerMw(const NetSimConfig& config,
                         const core::CpuEnergyModel& model) {
  const core::ModelEvaluation eval = model.Evaluate(config.network.node.cpu);
  return energy::AveragePowerMilliwatts(eval.shares,
                                        config.network.node.cpu_power);
}

NetworkSimulator::NetworkSimulator(NetSimConfig config, double cpu_power_mw,
                                   util::Rng rng)
    : config_(std::move(config)),
      sim_(config_.queue_kind),
      rng_(rng),
      routing_(config_.network.sink, config_.network.max_hop_m,
               config_.positions),
      mac_(config_.mac, config_.network.node.radio, config_.positions.size(),
           rng_) {
  config_.Validate();
  Require(cpu_power_mw >= 0.0, "CPU power must be >= 0");

  const node::NodeConfig& tmpl = config_.network.node;
  baseline_mw_ = cpu_power_mw +
                 tmpl.listen_duty_cycle * tmpl.radio.listen_mw +
                 (1.0 - tmpl.listen_duty_cycle) * tmpl.radio.sleep_mw;

  const std::size_t n = config_.positions.size();
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mah = config_.battery_mah_override.empty()
                           ? tmpl.battery_mah
                           : config_.battery_mah_override[i];
    nodes_.emplace_back(energy::Battery(mah, tmpl.battery_volts));
    NodeRt& node = nodes_.back();
    if (config_.traffic_factory) {
      node.traffic = config_.traffic_factory(i);
      Require(node.traffic != nullptr, "traffic factory returned null");
    } else {
      const double rate = tmpl.cpu.arrival_rate * tmpl.report_fraction;
      if (rate > 0.0) node.traffic = des::MakePoissonWorkload(rate);
    }
  }
  alive_.assign(n, true);

  if (config_.timeline_interval_s > 0.0) {
    // One sample per tick plus the closing sample appended at the end of
    // the run — sized up front so the hot loop never reallocates.
    const std::size_t samples =
        static_cast<std::size_t>(config_.horizon_s /
                                 config_.timeline_interval_s) +
        2;
    for (NodeRt& node : nodes_) node.stats.timeline.reserve(samples);
  }
}

NetSimReport NetworkSimulator::Run() {
  Require(!ran_, "NetworkSimulator::Run is single-shot; make a new instance");
  ran_ = true;

  CheckPartition();  // a deployment can be partitioned from the start
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    ScheduleNextArrival(i);
    RescheduleDeath(i);
  }
  if (config_.timeline_interval_s > 0.0) {
    sim_.ScheduleAt(config_.timeline_interval_s, [this] { TimelineTick(); });
  }

  sim_.RunUntil(config_.horizon_s);

  const double end = stopped_ ? stop_time_s_ : config_.horizon_s;
  NetSimReport report;
  report.nodes.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeRt& node = nodes_[i];
    if (node.alive) Touch(i, end);
    node.stats.alive = node.alive;
    node.stats.remaining_j = node.battery.Remaining();
    node.stats.energy_used_j =
        node.battery.CapacityJoules() - node.battery.Remaining();
    if (config_.timeline_interval_s > 0.0 &&
        (node.stats.timeline.empty() ||
         node.stats.timeline.back().time_s < end)) {
      node.stats.timeline.push_back({end, node.battery.Remaining()});
    }
    report.nodes.push_back(std::move(node.stats));
  }
  report.packets = counters_;
  report.first_death_s = first_death_s_;
  report.first_dead_node = first_dead_node_;
  report.partition_s = partition_s_;
  report.end_s = end;
  report.events = sim_.ProcessedEvents();
  return report;
}

void NetworkSimulator::ScheduleNextArrival(std::size_t i) {
  NodeRt& node = nodes_[i];
  if (!node.traffic) return;
  const auto next = node.traffic->NextArrival(sim_.Now(), rng_);
  if (!next) return;
  const double t = std::max(*next, sim_.Now());
  if (t > config_.horizon_s) return;
  sim_.ScheduleAt(t, [this, i] { OnArrival(i); });
}

void NetworkSimulator::OnArrival(std::size_t i) {
  if (stopped_) return;
  NodeRt& node = nodes_[i];
  if (!node.alive) return;  // dead sources stop reporting
  ++counters_.generated;
  ++node.stats.generated;
  Packet pkt;
  pkt.id = next_packet_id_++;
  pkt.source = i;
  pkt.created_s = sim_.Now();
  pkt.bits = config_.network.node.sample_bits;
  Enqueue(i, pkt);
  ScheduleNextArrival(i);
}

void NetworkSimulator::Enqueue(std::size_t i, const Packet& pkt) {
  NodeRt& node = nodes_[i];
  if (!node.alive) {
    DropPacket(i, DropReason::kNodeDied);
    return;
  }
  if (node.queue.size() >= mac_.Config().max_queue) {
    DropPacket(i, DropReason::kQueueOverflow);
    return;
  }
  node.queue.push_back(pkt);
  StartNext(i);
}

void NetworkSimulator::StartNext(std::size_t i) {
  NodeRt& node = nodes_[i];
  if (stopped_ || !node.alive || node.busy) return;
  if (node.queue.empty()) return;
  // The next hop is queried once: the routing table can only change when
  // a death recomputes it, never inside this function.  A partitioned
  // holder therefore sheds its whole backlog immediately.
  const std::size_t receiver = routing_.NextHop(i);
  if (receiver == RoutingTable::kNoRoute) {
    while (!node.queue.empty()) {
      DropPacket(i, DropReason::kNoRoute);
      node.queue.pop_front();
    }
    return;
  }
  node.busy = true;
  const Packet& pkt = node.queue.front();
  const std::size_t mac_receiver = (receiver == RoutingTable::kSink)
                                       ? DutyCycledMac::kSinkReceiver
                                       : receiver;
  const double delay = mac_.TxDelay(sim_.Now(), pkt.bits, mac_receiver, rng_);
  sim_.ScheduleAfter(delay, [this, i] { FinishTx(i); });
}

void NetworkSimulator::FinishTx(std::size_t i) {
  if (stopped_) return;
  NodeRt& node = nodes_[i];
  node.busy = false;
  if (!node.alive) return;  // died mid-TX; the queue was flushed at death
  if (node.queue.empty()) return;
  Packet pkt = node.queue.front();
  node.queue.pop_front();

  const std::size_t receiver = routing_.NextHop(i);
  if (receiver == RoutingTable::kNoRoute) {
    DropPacket(i, DropReason::kNoRoute);
    StartNext(i);
    return;
  }
  // The sender pays for the attempt whatever its fate (this drain may
  // deplete the sender; the in-flight packet still completes the hop).
  DrainDiscrete(i, mac_.TxEnergyJoules(pkt.bits, routing_.HopDistance(i)));

  if (receiver != RoutingTable::kSink && !nodes_[receiver].alive) {
    DropPacket(i, DropReason::kDeadNextHop);
  } else if (mac_.AttemptLost(rng_)) {
    if (pkt.retries >= mac_.Config().max_retries) {
      DropPacket(i, DropReason::kLinkLoss);
    } else if (nodes_[i].alive) {
      ++counters_.retransmissions;
      ++pkt.retries;
      nodes_[i].queue.push_front(pkt);
    } else {
      DropPacket(i, DropReason::kNodeDied);
    }
  } else if (receiver == RoutingTable::kSink) {
    ++counters_.delivered;
    ++nodes_[pkt.source].stats.delivered;
  } else {
    DrainDiscrete(receiver, mac_.RxEnergyJoules(pkt.bits));
    pkt.retries = 0;
    if (++pkt.hops > nodes_.size()) {
      DropPacket(receiver, DropReason::kTtlExceeded);
    } else {
      ++counters_.forwarded;
      ++nodes_[receiver].stats.forwarded;
      Enqueue(receiver, pkt);
    }
  }
  if (nodes_[i].alive) StartNext(i);
}

void NetworkSimulator::Touch(std::size_t i, double now) {
  NodeRt& node = nodes_[i];
  const double dt = now - node.last_update_s;
  if (dt > 0.0) {
    node.battery.Drain(baseline_mw_ * dt / 1000.0);
    node.last_update_s = now;
  }
}

void NetworkSimulator::DrainDiscrete(std::size_t i, double joules) {
  NodeRt& node = nodes_[i];
  if (!node.alive) return;
  Touch(i, sim_.Now());
  node.battery.Drain(joules);
  if (node.battery.Depleted()) {
    OnDeath(i);
  } else {
    RescheduleDeath(i);
  }
}

void NetworkSimulator::RescheduleDeath(std::size_t i) {
  NodeRt& node = nodes_[i];
  if (node.death_event != 0) {
    sim_.Cancel(node.death_event);
    node.death_event = 0;
  }
  if (baseline_mw_ <= 0.0) return;  // only discrete drains can kill
  const double seconds_left =
      node.battery.Remaining() / (baseline_mw_ / 1000.0);
  const double when = sim_.Now() + seconds_left;
  if (when > config_.horizon_s) return;  // outlives the horizon
  node.death_event = sim_.ScheduleAt(when, [this, i] {
    if (stopped_ || !nodes_[i].alive) return;
    nodes_[i].death_event = 0;
    Touch(i, sim_.Now());
    nodes_[i].battery.Drain(nodes_[i].battery.Remaining());
    OnDeath(i);
  });
}

void NetworkSimulator::OnDeath(std::size_t i) {
  NodeRt& node = nodes_[i];
  node.alive = false;
  alive_[i] = false;
  node.stats.death_s = sim_.Now();
  if (node.death_event != 0) {
    sim_.Cancel(node.death_event);
    node.death_event = 0;
  }
  for (std::size_t k = 0; k < node.queue.size(); ++k) {
    DropPacket(i, DropReason::kNodeDied);
  }
  node.queue.clear();
  if (first_death_s_ == std::numeric_limits<double>::infinity()) {
    first_death_s_ = sim_.Now();
    first_dead_node_ = i;
    if (config_.stop_at_first_death) Stop();
  }
  if (stopped_) return;
  if (config_.rerouting) routing_.Recompute(alive_);
  CheckPartition();
}

void NetworkSimulator::CheckPartition() {
  if (partition_s_ != std::numeric_limits<double>::infinity()) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (alive_[i] && !routing_.Connected(i, alive_)) {
      partition_s_ = sim_.Now();
      if (config_.stop_at_partition) Stop();
      return;
    }
  }
}

void NetworkSimulator::DropPacket(std::size_t holder, DropReason reason) {
  counters_.Drop(reason);
  ++nodes_[holder].stats.dropped;
}

void NetworkSimulator::TimelineTick() {
  if (stopped_) return;
  const double now = sim_.Now();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeRt& node = nodes_[i];
    if (!node.alive) continue;
    Touch(i, now);
    node.stats.timeline.push_back({now, node.battery.Remaining()});
  }
  const double next = now + config_.timeline_interval_s;
  if (next <= config_.horizon_s) {
    sim_.ScheduleAt(next, [this] { TimelineTick(); });
  }
}

void NetworkSimulator::Stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_time_s_ = sim_.Now();
}

}  // namespace wsn::netsim
