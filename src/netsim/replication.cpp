#include "netsim/replication.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsn::netsim {

namespace {

ReplicationSummary Summarize(std::vector<NetSimReport> reports,
                             const ReplicationConfig& rep) {
  ReplicationSummary out;
  out.replications = reports.size();
  for (const NetSimReport& report : reports) {
    if (std::isfinite(report.first_death_s)) {
      out.first_death_s.stats.Add(report.first_death_s);
    }
    if (std::isfinite(report.partition_s)) {
      out.partition_s.stats.Add(report.partition_s);
    }
    out.delivery_ratio.stats.Add(report.DeliveryRatio());
    out.delivered.stats.Add(static_cast<double>(report.packets.delivered));
  }
  for (MetricSummary* m : {&out.first_death_s, &out.partition_s,
                           &out.delivery_ratio, &out.delivered}) {
    m->observed = m->stats.Count();
    if (m->observed >= 2) {
      m->ci = util::IntervalFromStats(m->stats, rep.ci_level);
    } else {
      m->ci = {m->stats.Mean(), 0.0, rep.ci_level};
    }
  }
  if (rep.keep_reports) out.reports = std::move(reports);
  return out;
}

std::vector<NetSimReport> RunAll(const NetSimConfig& config,
                                 double cpu_power_mw,
                                 const ReplicationConfig& rep,
                                 util::ThreadPool* pool) {
  util::Require(rep.replications > 0, "need at least one replication");
  const util::Rng master(rep.seed);
  std::vector<NetSimReport> reports(rep.replications);
  const auto run_one = [&](std::size_t r) {
    NetworkSimulator sim(config, cpu_power_mw, master.MakeStream(r));
    reports[r] = sim.Run();
  };
  if (pool == nullptr) {
    for (std::size_t r = 0; r < rep.replications; ++r) run_one(r);
  } else {
    util::ParallelFor(*pool, rep.replications, run_one);
  }
  return reports;
}

}  // namespace

ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep,
                                   util::ThreadPool& pool) {
  // Evaluate the CPU model once, outside the workers: implementations are
  // not required to be thread-safe and some are expensive.
  const double cpu_mw = CpuAveragePowerMw(config, cpu_model);
  return Summarize(RunAll(config, cpu_mw, rep, &pool), rep);
}

ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep) {
  const double cpu_mw = CpuAveragePowerMw(config, cpu_model);
  if (rep.threads == 1) {
    return Summarize(RunAll(config, cpu_mw, rep, nullptr), rep);
  }
  util::ThreadPool pool(rep.threads);
  return Summarize(RunAll(config, cpu_mw, rep, &pool), rep);
}

}  // namespace wsn::netsim
