#include "netsim/replication.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsn::netsim {

namespace {

ReplicationSummary Summarize(std::vector<NetSimReport> reports,
                             const ReplicationConfig& rep) {
  ReplicationSummary out;
  out.replications = reports.size();
  for (NetSimReport& report : reports) {
    if (std::isfinite(report.first_death_s)) {
      out.first_death_s.stats.Add(report.first_death_s);
    }
    if (std::isfinite(report.partition_s)) {
      out.partition_s.stats.Add(report.partition_s);
    }
    out.delivery_ratio.stats.Add(report.DeliveryRatio());
    out.delivered.stats.Add(static_cast<double>(report.packets.delivered));
    // Observability outputs combine here, serially and in replication
    // order — the step that makes --metrics/--trace files independent of
    // the thread count that produced the replications.
    out.metrics.MergeFrom(report.metrics);
    out.trace += report.trace;
    if (!rep.keep_reports) {
      report.trace.clear();  // don't keep a second copy alive
    }
  }
  for (MetricSummary* m : {&out.first_death_s, &out.partition_s,
                           &out.delivery_ratio, &out.delivered}) {
    m->observed = m->stats.Count();
    if (m->observed >= 2) {
      m->ci = util::IntervalFromStats(m->stats, rep.ci_level);
    } else {
      m->ci = {m->stats.Mean(), 0.0, rep.ci_level};
    }
  }
  if (rep.keep_reports) out.reports = std::move(reports);
  return out;
}

std::vector<NetSimReport> RunAll(const NetSimConfig& config,
                                 double cpu_power_mw,
                                 const ReplicationConfig& rep,
                                 util::ParallelExecutor& executor) {
  util::Require(rep.replications > 0, "need at least one replication");
  return executor.MapSeeded(
      rep.replications, rep.seed, [&](std::size_t r, util::Rng stream) {
        NetSimConfig c = config;
        // Stamp the replication index into every trace line so the
        // concatenated file stays attributable (and mergeable) later.
        c.obs.trace.replication = static_cast<std::uint32_t>(r);
        NetworkSimulator sim(std::move(c), cpu_power_mw, stream);
        return sim.Run();
      });
}

}  // namespace

ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep,
                                   util::ParallelExecutor& executor) {
  // Evaluate the CPU model once, outside the workers: some models are
  // expensive, and every node/replication shares the same operating point.
  const double cpu_mw = CpuAveragePowerMw(config, cpu_model);
  return Summarize(RunAll(config, cpu_mw, rep, executor), rep);
}

ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep,
                                   util::ThreadPool& pool) {
  util::ParallelExecutor executor(pool);
  return RunReplications(config, cpu_model, rep, executor);
}

ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep) {
  util::ParallelExecutor executor(rep.threads);
  return RunReplications(config, cpu_model, rep, executor);
}

}  // namespace wsn::netsim
