#include "netsim/packet.hpp"

namespace wsn::netsim {

const char* DropReasonName(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kNoRoute:
      return "no-route";
    case DropReason::kDeadNextHop:
      return "dead-next-hop";
    case DropReason::kNodeDied:
      return "node-died";
    case DropReason::kLinkLoss:
      return "link-loss";
    case DropReason::kTtlExceeded:
      return "ttl-exceeded";
    case DropReason::kQueueOverflow:
      return "queue-overflow";
  }
  return "unknown";
}

std::uint64_t PacketCounters::TotalDropped() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t d : dropped) total += d;
  return total;
}

double PacketCounters::DeliveryRatio() const noexcept {
  if (generated == 0) return 1.0;
  return static_cast<double>(delivered) / static_cast<double>(generated);
}

}  // namespace wsn::netsim
