#include "netsim/mac.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsn::netsim {

using util::Require;

void MacConfig::Validate() const {
  Require(bitrate_bps > 0.0, "bitrate must be positive");
  Require(backoff_window_s >= 0.0, "backoff window must be >= 0");
  Require(wakeup_interval_s >= 0.0, "wakeup interval must be >= 0");
  Require(p_loss >= 0.0 && p_loss < 1.0, "p_loss must be in [0, 1)");
  Require(backoff_growth >= 1.0, "backoff growth must be >= 1.0");
  Require(max_queue > 0, "MAC queue capacity must be positive");
}

DutyCycledMac::DutyCycledMac(MacConfig config, std::size_t node_count,
                             util::Rng& rng)
    : config_(config) {
  config_.Validate();
  wake_phase_.resize(node_count, 0.0);
  if (config_.wakeup_interval_s > 0.0) {
    for (double& phase : wake_phase_) {
      phase = util::UniformDouble(rng) * config_.wakeup_interval_s;
    }
  }
}

DutyCycledMac::TxTiming DutyCycledMac::TxFinish(double now, std::size_t bits,
                                                std::size_t receiver,
                                                util::Rng& rng,
                                                std::uint32_t attempt) const {
  double start = now;
  if (config_.backoff_window_s > 0.0) {
    double window = config_.backoff_window_s;
    // Guarded multiply: at the default growth of 1.0 the window — and
    // the whole timing arithmetic — stays bit-identical to the
    // historical constant-window MAC.
    if (attempt > 0 && config_.backoff_growth > 1.0) {
      window *= std::pow(config_.backoff_growth, static_cast<double>(attempt));
    }
    start += util::UniformDouble(rng) * window;
  }
  if (config_.wakeup_interval_s > 0.0 && receiver != kSinkReceiver) {
    // Wait for the receiver's next wake slot at phase + k * interval.
    const double interval = config_.wakeup_interval_s;
    const double phase = wake_phase_[receiver];
    const double k = std::ceil((start - phase) / interval);
    const double slot = phase + k * interval;
    if (slot > start) {
      ++lpl_.waits;
      lpl_.wait_s += slot - start;
      // Absolute arithmetic on purpose: `slot + duration` is the same
      // double for every sender waiting on this slot, whereas
      // now + ((slot - now) + duration) differs per sender in the last
      // ulp and would defeat same-timestamp batching.
      return {slot + TxDuration(bits), true};
    }
  }
  // Non-waiting path: keep the historical relative arithmetic bit for
  // bit (the pinned scenario outputs ride on it).
  return {now + ((start - now) + TxDuration(bits)), false};
}

bool DutyCycledMac::AttemptLost(util::Rng& rng) const {
  if (config_.p_loss <= 0.0) return false;
  return util::UniformDouble(rng) < config_.p_loss;
}

}  // namespace wsn::netsim
