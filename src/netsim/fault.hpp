/// \file
/// Deterministic fault injection for the packet simulator: transient node
/// crashes with recovery, regional link-degradation windows (jamming /
/// weather over a disc of the field) and sink outages.
///
/// Determinism contract: every random choice a fault schedule needs is
/// made *up front*, at FaultPlan::Generate time, from an RNG stream the
/// caller dedicates to faults — never interleaved with the simulation's
/// traffic/MAC draws.  The plan is therefore a plain value, replayable
/// bit-identically for a given (seed, replication) pair, and a simulator
/// run with faults disabled makes zero fault-related draws (the pinned
/// fault-free scenario outputs ride on that).
///
/// The three fault classes:
///   * node crashes (FaultEvent kCrash/kRecover): a Poisson process per
///     node; a crashed node goes silent (queue flushed, traffic stopped,
///     no baseline drain) and rejoins after an exponential outage with
///     whatever battery charge it had left — a crash is not a battery
///     death;
///   * jam windows (JamWindow): a time-boxed extra per-attempt loss
///     probability applied to every transmission whose sender sits
///     inside a disc of the field;
///   * sink outages (SinkOutage): a time-boxed window during which one
///     sink accepts nothing — deliveries to it fail like link losses and
///     burn retries.
///
/// Beyond the generated schedules, FaultConfig::scripted lets tests and
/// replay tooling pin exact crash/recover instants with no RNG at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "wsn/network.hpp"

namespace wsn::netsim {

/// What a scheduled fault event does to its target node.
enum class FaultEventKind : std::uint8_t {
  kCrash,    ///< the node goes silent (transient, not a battery death)
  kRecover,  ///< the node rejoins with its remaining battery
};

/// Human-readable name of a fault event kind ("crash" / "recover").
const char* FaultEventKindName(FaultEventKind kind) noexcept;

/// One scheduled node fault transition.
struct FaultEvent {
  double t = 0.0;                               ///< event instant (s)
  FaultEventKind kind = FaultEventKind::kCrash;  ///< crash or recover
  std::uint32_t node = 0;                       ///< target node index
};

/// A time-boxed regional link-degradation window: transmissions whose
/// sender lies inside the disc suffer `p_loss` *extra* per-attempt loss
/// (combined with the MAC's base p_loss as independent events).
struct JamWindow {
  node::Position center;   ///< disc center
  double radius_m = 0.0;   ///< disc radius (m)
  double start_s = 0.0;    ///< window open
  double end_s = 0.0;      ///< window close
  double p_loss = 0.0;     ///< extra per-attempt loss probability
};

/// A time-boxed outage of one sink: deliveries toward it fail like link
/// losses for the duration (senders burn retries, then drop).
struct SinkOutage {
  std::uint32_t sink = 0;  ///< index into the effective sink set
  double start_s = 0.0;    ///< window open
  double end_s = 0.0;      ///< window close
};

/// Fault-injection knobs for one simulation.  Everything defaults to
/// off; Enabled() is false for a default-constructed config and the
/// simulator then builds no fault machinery at all.
struct FaultConfig {
  /// Per-node transient crash rate (Poisson, 1/s); 0 disables crashes.
  double crash_rate_hz = 0.0;
  /// Mean of the exponential outage duration (s); must be positive when
  /// crash_rate_hz > 0.
  double mean_outage_s = 0.0;

  /// Number of jam windows to place uniformly over the run and field.
  std::size_t jam_windows = 0;
  double jam_radius_m = 0.0;    ///< disc radius of each window (m)
  double jam_duration_s = 0.0;  ///< length of each window (s)
  double jam_p_loss = 0.0;      ///< extra per-attempt loss inside, (0, 1]

  /// Number of sink-outage windows (round-robin over the sink set).
  std::size_t sink_outages = 0;
  double sink_outage_s = 0.0;  ///< length of each outage window (s)

  /// Explicit crash/recover events, merged (time-sorted) with the
  /// generated schedule.  Lets tests stage exact churn deterministically
  /// and replay tooling pin a recorded schedule; consumes no randomness.
  std::vector<FaultEvent> scripted;

  /// True when any fault class is active.
  bool Enabled() const noexcept {
    return crash_rate_hz > 0.0 || jam_windows > 0 || sink_outages > 0 ||
           !scripted.empty();
  }

  /// Throws util::InvalidArgument on negative rates/durations, a jam
  /// loss outside (0, 1], or inconsistent knob combinations.
  void Validate() const;
};

/// The fully materialized fault schedule of one replication: plain data,
/// bit-identical for a given (config, topology, seed) triple.
struct FaultPlan {
  /// Node crash/recover transitions, sorted by time (stable: ties keep
  /// generation order, so replays are exact).
  std::vector<FaultEvent> events;
  std::vector<JamWindow> jams;          ///< regional loss windows
  std::vector<SinkOutage> sink_outages; ///< sink-down windows

  /// Materialize a plan.  `rng` is taken by value: the caller hands the
  /// plan its own dedicated stream (the simulator derives one from the
  /// replication stream only when faults are enabled), so fault
  /// randomness never interleaves with traffic/MAC draws.  Scripted
  /// events are validated against `positions.size()` and merged in.
  static FaultPlan Generate(const FaultConfig& config,
                            const std::vector<node::Position>& positions,
                            std::size_t sink_count, double horizon_s,
                            util::Rng rng);
};

/// Runtime queries over a materialized plan.  The engine is stateless
/// beyond the plan itself: jam and sink windows are answered by scanning
/// the (small) window lists, so queries are pure functions of (plan,
/// position, time) — trivially replayable.
class FaultEngine {
 public:
  explicit FaultEngine(FaultPlan plan) : plan_(std::move(plan)) {}

  /// The node crash/recover schedule, time-sorted.
  const std::vector<FaultEvent>& Events() const noexcept {
    return plan_.events;
  }

  /// Extra per-attempt loss probability at position `p` and instant
  /// `now`: overlapping windows combine as independent loss events,
  /// 1 - prod(1 - p_k).  0 when no active window covers `p`.
  double JamExtraLoss(const node::Position& p, double now) const noexcept;

  /// True when sink `sink` is inside one of its outage windows at `now`.
  bool SinkDown(std::size_t sink, double now) const noexcept;

  /// Jam windows in the plan (for report counters).
  std::size_t JamWindows() const noexcept { return plan_.jams.size(); }

  /// Sink-outage windows in the plan (for report counters).
  std::size_t SinkOutages() const noexcept {
    return plan_.sink_outages.size();
  }

 private:
  FaultPlan plan_;
};

}  // namespace wsn::netsim
