/// \file
/// Independent-replication runner for the packet-level network simulator —
/// a thin client of util::ParallelExecutor.
///
/// Replication r draws its randomness from the master seed's r-th
/// jump-separated xoshiro stream (ParallelExecutor::MapSeeded), so results
/// are bit-identical for a given (seed, replication) pair no matter how
/// many threads run them or in what order they finish.  Aggregation
/// happens serially after the join, in replication order, so the summary
/// itself is deterministic too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "netsim/netsim.hpp"
#include "util/executor.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"

namespace wsn::netsim {

/// Effort / reproducibility knobs for one replication batch.
struct ReplicationConfig {
  std::size_t replications = 32;  ///< independent replications to run
  std::uint64_t seed = 2008;      ///< master seed the streams jump from
  std::size_t threads = 0;        ///< 0 = hardware concurrency
  double ci_level = 0.95;         ///< confidence level of the summaries
  bool keep_reports = false;      ///< retain every per-replication report
};

/// A metric observed in (a subset of) the replications.
struct MetricSummary {
  util::RunningStats stats;      ///< Welford accumulator over observations
  util::ConfidenceInterval ci;   ///< mean +- half-width at ci_level
  std::size_t observed = 0;      ///< replications where the event occurred
};

/// Aggregate outcome of a replication batch.
struct ReplicationSummary {
  MetricSummary first_death_s;    ///< over reps where a node died
  MetricSummary partition_s;      ///< over reps where a partition occurred
  MetricSummary delivery_ratio;   ///< over all reps
  MetricSummary delivered;        ///< samples delivered, over all reps
  std::size_t replications = 0;   ///< batch size actually run
  std::vector<NetSimReport> reports;  ///< filled when keep_reports

  /// Per-replication metrics merged in replication order (empty unless
  /// NetSimConfig::obs.metrics) — deterministic across thread counts.
  obs::MetricsSnapshot metrics;
  /// Per-replication traces concatenated in replication order (empty
  /// unless NetSimConfig::obs.trace.enabled); each line carries its
  /// replication index, so the concatenation is self-describing.
  std::string trace;
};

/// Run on an existing executor (reused across calls, e.g. by the
/// scenario engine and benchmarks).
ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep,
                                   util::ParallelExecutor& executor);

/// Run on an existing pool (reused across calls, e.g. by benchmarks).
ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep,
                                   util::ThreadPool& pool);

/// Convenience overload: runs serially when rep.threads == 1, otherwise
/// on a fresh pool of rep.threads workers.
ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep);

}  // namespace wsn::netsim
