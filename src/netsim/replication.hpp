// Independent-replication runner for the packet-level network simulator —
// a thin client of util::ParallelExecutor.
//
// Replication r draws its randomness from the master seed's r-th
// jump-separated xoshiro stream (ParallelExecutor::MapSeeded), so results
// are bit-identical for a given (seed, replication) pair no matter how
// many threads run them or in what order they finish.  Aggregation
// happens serially after the join, in replication order, so the summary
// itself is deterministic too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "netsim/netsim.hpp"
#include "util/executor.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"

namespace wsn::netsim {

struct ReplicationConfig {
  std::size_t replications = 32;
  std::uint64_t seed = 2008;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  double ci_level = 0.95;
  bool keep_reports = false;  ///< retain every per-replication report
};

/// A metric observed in (a subset of) the replications.
struct MetricSummary {
  util::RunningStats stats;
  util::ConfidenceInterval ci;
  std::size_t observed = 0;  ///< replications where the event occurred
};

struct ReplicationSummary {
  MetricSummary first_death_s;    ///< over reps where a node died
  MetricSummary partition_s;      ///< over reps where a partition occurred
  MetricSummary delivery_ratio;   ///< over all reps
  MetricSummary delivered;        ///< packets delivered, over all reps
  std::size_t replications = 0;
  std::vector<NetSimReport> reports;  ///< filled when keep_reports
};

/// Run on an existing executor (reused across calls, e.g. by the
/// scenario engine and benchmarks).
ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep,
                                   util::ParallelExecutor& executor);

/// Run on an existing pool (reused across calls, e.g. by benchmarks).
ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep,
                                   util::ThreadPool& pool);

/// Convenience overload: runs serially when rep.threads == 1, otherwise
/// on a fresh pool of rep.threads workers.
ReplicationSummary RunReplications(const NetSimConfig& config,
                                   const core::CpuEnergyModel& cpu_model,
                                   const ReplicationConfig& rep);

}  // namespace wsn::netsim
