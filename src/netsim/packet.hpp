// Packet-level bookkeeping for the network simulator: the in-flight
// packet record, the taxonomy of drop causes, and the global counters a
// simulation run accumulates.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace wsn::netsim {

/// One application packet travelling hop-by-hop toward the sink.
struct Packet {
  std::uint64_t id = 0;       ///< unique per replication, in creation order
  std::size_t source = 0;     ///< originating node index
  double created_s = 0.0;     ///< generation time
  std::size_t bits = 0;       ///< payload size (radio energy driver)
  std::uint32_t hops = 0;     ///< hops traversed so far
  std::uint32_t retries = 0;  ///< retransmissions on the current hop
};

/// Why a packet failed to reach the sink.
enum class DropReason : std::size_t {
  kNoRoute = 0,    ///< holder has no live route to the sink
  kDeadNextHop,    ///< next hop died while the packet was in flight
  kNodeDied,       ///< the holder died with the packet queued
  kLinkLoss,       ///< max_retries exceeded on a lossy link
  kTtlExceeded,    ///< hop-count guard tripped (routing anomaly)
  kQueueOverflow,  ///< MAC queue was full at enqueue
};

inline constexpr std::size_t kDropReasonCount = 6;

const char* DropReasonName(DropReason reason) noexcept;

/// Network-wide packet counters for one replication.
struct PacketCounters {
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;        ///< reached the sink
  std::uint64_t forwarded = 0;        ///< relay hand-offs (RX at a relay)
  std::uint64_t retransmissions = 0;  ///< extra TX attempts on lossy links
  std::array<std::uint64_t, kDropReasonCount> dropped{};

  std::uint64_t TotalDropped() const noexcept;
  void Drop(DropReason reason) noexcept {
    ++dropped[static_cast<std::size_t>(reason)];
  }
  std::uint64_t Dropped(DropReason reason) const noexcept {
    return dropped[static_cast<std::size_t>(reason)];
  }

  /// delivered / generated (1.0 when nothing was generated).
  double DeliveryRatio() const noexcept;
};

}  // namespace wsn::netsim
