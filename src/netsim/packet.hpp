/// \file
/// Packet-level bookkeeping for the network simulator: the in-flight
/// packet record, the taxonomy of drop causes, and the global counters a
/// simulation run accumulates.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

/// \namespace wsn
/// Root namespace of the WSN energy-modeling reproduction.

/// \namespace wsn::netsim
/// Event-driven, packet-level network simulation: packets, MAC, routing,
/// clustering, heterogeneous node hardware and the replication runner.

namespace wsn::netsim {

/// One packet travelling hop-by-hop toward a sink — either a raw
/// application sample (payload == 1) or, in clustered mode, an aggregate
/// a cluster head built from several member samples (payload == the
/// number of samples folded in).
struct Packet {
  std::uint64_t id = 0;       ///< unique per replication, in creation order
  std::size_t source = 0;     ///< originating node index (head for aggregates)
  double created_s = 0.0;     ///< generation time
  std::size_t bits = 0;       ///< payload size (radio energy driver)
  std::uint32_t hops = 0;     ///< hops traversed so far
  std::uint32_t retries = 0;  ///< retransmissions on the current hop
  std::uint32_t payload = 1;  ///< application samples carried (>= 1)
};

/// Why a packet failed to reach the sink.
enum class DropReason : std::size_t {
  kNoRoute = 0,    ///< holder has no live route to the sink
  kDeadNextHop,    ///< next hop died while the packet was in flight
  kNodeDied,       ///< the holder died with the packet queued
  kLinkLoss,       ///< max_retries exceeded on a lossy link
  kTtlExceeded,    ///< hop-count guard tripped (routing anomaly)
  kQueueOverflow,  ///< MAC queue was full at enqueue
};

/// Number of DropReason enumerators (array sizing).
inline constexpr std::size_t kDropReasonCount = 6;

/// Human-readable name of a drop reason ("no-route", "link-loss", ...).
const char* DropReasonName(DropReason reason) noexcept;

/// Network-wide packet counters for one replication.  All counters are
/// in units of application samples: delivering an aggregate that carries
/// k member samples counts k toward `delivered`, so DeliveryRatio stays
/// comparable between flat and clustered runs.
struct PacketCounters {
  std::uint64_t generated = 0;        ///< application samples originated
  std::uint64_t delivered = 0;        ///< samples that reached a sink
  std::uint64_t forwarded = 0;        ///< relay/head hand-offs (RX events)
  std::uint64_t retransmissions = 0;  ///< extra TX attempts on lossy links
  /// Samples lost, by DropReason (index with static_cast<size_t>).
  std::array<std::uint64_t, kDropReasonCount> dropped{};

  /// Sum of `dropped` over every reason.
  std::uint64_t TotalDropped() const noexcept;
  /// Count `payloads` samples lost for `reason`.
  void Drop(DropReason reason, std::uint64_t payloads = 1) noexcept {
    dropped[static_cast<std::size_t>(reason)] += payloads;
  }
  /// Samples lost for `reason`.
  std::uint64_t Dropped(DropReason reason) const noexcept {
    return dropped[static_cast<std::size_t>(reason)];
  }

  /// delivered / generated (1.0 when nothing was generated).
  double DeliveryRatio() const noexcept;
};

}  // namespace wsn::netsim
