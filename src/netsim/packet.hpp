/// \file
/// Packet-level bookkeeping for the network simulator: the in-flight
/// packet record, the taxonomy of drop causes, and the global counters a
/// simulation run accumulates.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

/// \namespace wsn
/// Root namespace of the WSN energy-modeling reproduction.

/// \namespace wsn::netsim
/// Event-driven, packet-level network simulation: packets, MAC, routing,
/// clustering, heterogeneous node hardware and the replication runner.

namespace wsn::netsim {

/// One packet travelling hop-by-hop toward a sink — either a raw
/// application sample (payload == 1) or, in clustered mode, an aggregate
/// a cluster head built from several member samples (payload == the
/// number of samples folded in).
struct Packet {
  std::uint64_t id = 0;       ///< unique per replication, in creation order
  std::size_t source = 0;     ///< originating node index (head for aggregates)
  double created_s = 0.0;     ///< generation time
  std::size_t bits = 0;       ///< payload size (radio energy driver)
  std::uint32_t hops = 0;     ///< hops traversed so far
  std::uint32_t retries = 0;  ///< retransmissions on the current hop
  std::uint32_t payload = 1;  ///< application samples carried (>= 1)
};

/// Why a packet failed to reach the sink.
enum class DropReason : std::size_t {
  kNoRoute = 0,    ///< holder has no live route to the sink
  kDeadNextHop,    ///< next hop died while the packet was in flight
  kNodeDied,       ///< the holder died with the packet queued
  kLinkLoss,       ///< max_retries exceeded on a lossy link
  kTtlExceeded,    ///< hop-count guard tripped (routing anomaly)
  kQueueOverflow,  ///< MAC queue was full at enqueue
};

/// Number of DropReason enumerators (array sizing).
inline constexpr std::size_t kDropReasonCount = 6;

/// Human-readable name of a drop reason ("no-route", "link-loss", ...).
const char* DropReasonName(DropReason reason) noexcept;

/// Network-wide packet counters for one replication.  All counters are
/// in units of application samples: delivering an aggregate that carries
/// k member samples counts k toward `delivered`, so DeliveryRatio stays
/// comparable between flat and clustered runs.
struct PacketCounters {
  std::uint64_t generated = 0;        ///< application samples originated
  std::uint64_t delivered = 0;        ///< samples that reached a sink
  std::uint64_t forwarded = 0;        ///< relay/head hand-offs (RX events)
  std::uint64_t retransmissions = 0;  ///< extra TX attempts on lossy links
  /// Samples lost, by DropReason (index with static_cast<size_t>).
  std::array<std::uint64_t, kDropReasonCount> dropped{};

  /// Sum of `dropped` over every reason.
  std::uint64_t TotalDropped() const noexcept;
  /// Count `payloads` samples lost for `reason`.
  void Drop(DropReason reason, std::uint64_t payloads = 1) noexcept {
    dropped[static_cast<std::size_t>(reason)] += payloads;
  }
  /// Samples lost for `reason`.
  std::uint64_t Dropped(DropReason reason) const noexcept {
    return dropped[static_cast<std::size_t>(reason)];
  }

  /// delivered / generated (1.0 when nothing was generated).
  double DeliveryRatio() const noexcept;
};

/// Pooled per-node packet FIFOs: one shared slab of packet slots chained
/// into an intrusive singly-linked list per node.
///
/// This replaces the former per-node std::deque<Packet>: a deque
/// pre-allocates a block per instance (~hundreds of bytes even when
/// empty), which at 100k nodes meant tens of megabytes touched up front
/// for queues that are almost always empty.  The pool allocates nothing
/// per node beyond three 4-byte cursors, grows the slab to the *peak
/// number of simultaneously queued packets* across the whole network,
/// and recycles slots through a free list — so queue churn after warmup
/// is allocation-free and the hot front/push/pop path touches one slab
/// cache line.  FIFO semantics per node, with PushFront for the MAC's
/// retransmission requeue.
class PacketQueues {
 public:
  PacketQueues() = default;

  /// FIFOs for `nodes` nodes, all initially empty.
  explicit PacketQueues(std::size_t nodes)
      : head_(nodes, kNil), tail_(nodes, kNil), count_(nodes, 0) {}

  /// True when node i's FIFO holds no packet.
  bool Empty(std::size_t i) const noexcept { return head_[i] == kNil; }

  /// Packets queued at node i.
  std::size_t Size(std::size_t i) const noexcept { return count_[i]; }

  /// Oldest packet of node i's FIFO (undefined when Empty(i)).
  const Packet& Front(std::size_t i) const noexcept {
    return slots_[head_[i]].pkt;
  }

  /// Append `pkt` to node i's FIFO.
  void PushBack(std::size_t i, const Packet& pkt) {
    const std::uint32_t s = Alloc(pkt);
    if (tail_[i] == kNil) {
      head_[i] = s;
    } else {
      slots_[tail_[i]].next = s;
    }
    tail_[i] = s;
    ++count_[i];
  }

  /// Prepend `pkt` to node i's FIFO (retransmission requeue).
  void PushFront(std::size_t i, const Packet& pkt) {
    const std::uint32_t s = Alloc(pkt);
    slots_[s].next = head_[i];
    head_[i] = s;
    if (tail_[i] == kNil) tail_[i] = s;
    ++count_[i];
  }

  /// Drop node i's front packet (undefined when Empty(i)).
  void PopFront(std::size_t i) {
    const std::uint32_t s = head_[i];
    head_[i] = slots_[s].next;
    if (head_[i] == kNil) tail_[i] = kNil;
    slots_[s].next = free_;
    free_ = s;
    --count_[i];
  }

  /// Sum of the payloads queued at node i — the node's contribution to
  /// the end-of-run "in flight" term of the packet-conservation
  /// invariant (generated == delivered + dropped + in flight).  Walks
  /// the chain; called once per node at report time, never on the hot
  /// path.
  std::uint64_t PayloadSum(std::size_t i) const noexcept {
    std::uint64_t sum = 0;
    for (std::uint32_t s = head_[i]; s != kNil; s = slots_[s].next) {
      sum += slots_[s].pkt.payload;
    }
    return sum;
  }

  /// Slab capacity: the peak simultaneously queued packet count so far.
  std::size_t Slots() const noexcept { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    Packet pkt;
    std::uint32_t next = kNil;
  };

  std::uint32_t Alloc(const Packet& pkt) {
    if (free_ != kNil) {
      const std::uint32_t s = free_;
      free_ = slots_[s].next;
      slots_[s].pkt = pkt;
      slots_[s].next = kNil;
      return s;
    }
    slots_.push_back({pkt, kNil});
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  std::vector<Slot> slots_;        ///< shared slab, grows to peak backlog
  std::uint32_t free_ = kNil;      ///< free-list head into slots_
  std::vector<std::uint32_t> head_;   ///< per-node front slot (kNil = empty)
  std::vector<std::uint32_t> tail_;   ///< per-node back slot (kNil = empty)
  std::vector<std::uint32_t> count_;  ///< per-node queued-packet count
};

}  // namespace wsn::netsim
