#include "netsim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "netsim/spatial.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace wsn::netsim {

using util::Require;

const char* HeadAssignModeName(HeadAssignMode mode) noexcept {
  switch (mode) {
    case HeadAssignMode::kGrid:
      return "grid";
    case HeadAssignMode::kAllPairs:
      return "all-pairs";
  }
  return "?";
}

HeadAssignMode ParseHeadAssignMode(const std::string& name) {
  if (name == "grid") return HeadAssignMode::kGrid;
  if (name == "all-pairs") return HeadAssignMode::kAllPairs;
  throw util::InvalidArgument("unknown head-assignment mode '" + name +
                              "' (expected grid or all-pairs)");
}

void NodeClass::Validate() const {
  Require(!name.empty(), "node class name must be non-empty");
  Require(battery_mah > 0.0,
          "node class battery capacity must be positive");
  Require(battery_volts > 0.0, "node class battery voltage must be positive");
  Require(listen_duty_cycle >= 0.0 && listen_duty_cycle <= 1.0,
          "node class listen duty cycle must be in [0, 1]");
  Require(radio.elec_nj_per_bit >= 0.0 && radio.listen_mw >= 0.0 &&
              radio.sleep_mw >= 0.0,
          "node class radio powers must be non-negative");
}

ClusterAssignment AssignToNearestHeadAllPairs(const ClusterView& view,
                                              std::vector<std::size_t> heads) {
  const std::size_t n = view.Size();
  std::sort(heads.begin(), heads.end());
  ClusterAssignment out;
  out.head_of.assign(n, ClusterAssignment::kUnclustered);
  out.heads = std::move(heads);
  out.members.assign(out.heads.size(), {});
  for (std::size_t h : out.heads) out.head_of[h] = h;
  if (out.heads.empty()) return out;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(*view.alive)[i] || out.head_of[i] == i) continue;
    // Nearest-head search compares in distance^2: the argmin (ties to
    // the lowest head index, heads being sorted) is the same and no
    // sqrt is ever needed — the metric value itself is not used.
    double best2 = std::numeric_limits<double>::infinity();
    std::size_t best_slot = ClusterAssignment::kUnclustered;
    for (std::size_t s = 0; s < out.heads.size(); ++s) {
      const double d2 = node::Distance2((*view.positions)[i],
                                        (*view.positions)[out.heads[s]]);
      if (d2 < best2) {
        best2 = d2;
        best_slot = s;
      }
    }
    out.head_of[i] = out.heads[best_slot];
    out.members[best_slot].push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

ClusterAssignment AssignToNearestHeadGrid(const ClusterView& view,
                                          std::vector<std::size_t> heads) {
  const std::size_t n = view.Size();
  std::sort(heads.begin(), heads.end());
  ClusterAssignment out;
  out.head_of.assign(n, ClusterAssignment::kUnclustered);
  out.heads = std::move(heads);
  out.members.assign(out.heads.size(), {});
  for (std::size_t h : out.heads) out.head_of[h] = h;
  if (out.heads.empty()) return out;

  // Index the (few) heads, not the (many) nodes: compacted head
  // positions keep the grid tiny and the compacted index order equals
  // head-index order (heads are sorted), so NearestWhere's lowest-index
  // tie break is exactly the all-pairs lowest-head-index tie break.
  const std::size_t k = out.heads.size();
  std::vector<node::Position> head_pos;
  head_pos.reserve(k);
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (std::size_t h : out.heads) {
    const node::Position& p = (*view.positions)[h];
    head_pos.push_back(p);
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  // Aim for ~1 head per cell: cell = extent / sqrt(k).  Degenerate
  // extents (all heads colocated) fall back to a unit cell — the grid
  // collapses to one cell and the query degrades to all-pairs, still
  // correct.
  const double extent = std::max(max_x - min_x, max_y - min_y);
  const double side = std::ceil(std::sqrt(static_cast<double>(k)));
  double cell = extent > 0.0 ? extent / side : 1.0;
  if (!(cell > 0.0)) cell = 1.0;
  const SpatialGrid grid(head_pos, cell);

  for (std::size_t i = 0; i < n; ++i) {
    if (!(*view.alive)[i] || out.head_of[i] == i) continue;
    const node::Position& p = (*view.positions)[i];
    const std::size_t j = grid.NearestWhere(
        p, [&](std::size_t c) { return node::Distance2(p, head_pos[c]); });
    // j != kNone: heads is non-empty and no candidate is excluded.
    out.head_of[i] = out.heads[j];
    out.members[j].push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

ClusterAssignment AssignToNearestHead(const ClusterView& view,
                                      std::vector<std::size_t> heads) {
  obs::PhaseTimer timer(view.assign_stopwatch);
  // Below a handful of heads the grid build costs more than it saves
  // and the all-pairs scan is already O(n); the result is identical
  // either way, so this is a pure perf dispatch.
  if (view.assign_mode == HeadAssignMode::kAllPairs || heads.size() <= 4) {
    return AssignToNearestHeadAllPairs(view, std::move(heads));
  }
  return AssignToNearestHeadGrid(view, std::move(heads));
}

namespace {

/// Surviving members of `heads` under `alive`.
std::vector<std::size_t> AliveHeads(const std::vector<std::size_t>& heads,
                                    const std::vector<bool>& alive) {
  std::vector<std::size_t> out;
  out.reserve(heads.size());
  for (std::size_t h : heads) {
    if (alive[h]) out.push_back(h);
  }
  return out;
}

/// The alive node with the highest remaining energy fraction (ties break
/// toward the lowest index); kUnclustered when nothing is alive.
std::size_t MostChargedAlive(const ClusterView& view) {
  view.RefreshEnergy();  // the one reader of the lazily-updated energies
  std::size_t best = ClusterAssignment::kUnclustered;
  double best_energy = -1.0;
  for (std::size_t i = 0; i < view.Size(); ++i) {
    if (!(*view.alive)[i]) continue;
    const double e = (*view.energy_fraction)[i];
    if (e > best_energy) {
      best_energy = e;
      best = i;
    }
  }
  return best;
}

}  // namespace

/// Cached spatial grid over a head set, reused across the many repairs
/// between elections.  `heads` is the (sorted) head set at build time; it
/// may contain heads that have since died — queries exclude them through
/// the alive mask, which preserves the compacted-index (== lowest-head-id)
/// tie break over the survivors.
struct ClusteringProtocol::RepairCache {
  std::vector<std::size_t> heads;   ///< head set at build time, sorted
  std::vector<node::Position> pos;  ///< positions parallel to `heads`
  SpatialGrid grid;

  RepairCache(std::vector<std::size_t> h, std::vector<node::Position> p,
              double cell_m)
      : heads(std::move(h)), pos(std::move(p)), grid(pos, cell_m) {}
};

ClusteringProtocol::ClusteringProtocol() = default;
ClusteringProtocol::~ClusteringProtocol() = default;

ClusterAssignment ClusteringProtocol::Repair(const ClusterAssignment& current,
                                             std::size_t round,
                                             const ClusterView& view,
                                             util::Rng& rng) {
  std::vector<std::size_t> survivors = AliveHeads(current.heads, *view.alive);
  if (survivors.empty()) return Elect(round, view, rng);
  return AssignToNearestHead(view, std::move(survivors));
}

bool ClusteringProtocol::RepairInPlace(ClusterAssignment& cluster,
                                       std::size_t dead_head,
                                       const ClusterView& view,
                                       std::vector<std::uint32_t>& reattached) {
  // Decline when the last head died (the protocol's no-survivor policy —
  // a fresh Elect — must run) or the assignment carries no member lists.
  if (cluster.heads.size() <= 1) return false;
  if (cluster.members.size() != cluster.heads.size()) return false;
  const auto slot_it =
      std::lower_bound(cluster.heads.begin(), cluster.heads.end(), dead_head);
  if (slot_it == cluster.heads.end() || *slot_it != dead_head) return false;
  const std::size_t slot =
      static_cast<std::size_t>(slot_it - cluster.heads.begin());

  obs::PhaseTimer timer(view.assign_stopwatch);
  const std::vector<bool>& alive = *view.alive;
  const std::vector<node::Position>& positions = *view.positions;

  std::vector<std::uint32_t> orphans = std::move(cluster.members[slot]);
  cluster.heads.erase(slot_it);
  cluster.members.erase(cluster.members.begin() +
                        static_cast<std::ptrdiff_t>(slot));
  cluster.head_of[dead_head] = ClusterAssignment::kUnclustered;

  // The cache survives a chain of head deaths (dead entries are masked
  // out per query) and self-invalidates across elections: it is usable
  // exactly when its alive subset is the head set being repaired.  It is
  // additionally refreshed once survivors fall below 2/3 of the cached
  // set — long death cascades otherwise leave the grid mostly dead
  // entries and every ring query degenerates toward a full scan.  A
  // rebuild never changes results (the query is an argmin over the same
  // alive subset, in the same ascending-head order); amortized it costs
  // O(heads · log(heads)) per cascade.
  if (!repair_cache_ ||
      3 * cluster.heads.size() <= 2 * repair_cache_->heads.size() ||
      AliveHeads(repair_cache_->heads, alive) != cluster.heads) {
    std::vector<node::Position> head_pos;
    head_pos.reserve(cluster.heads.size());
    double min_x = std::numeric_limits<double>::infinity();
    double min_y = std::numeric_limits<double>::infinity();
    double max_x = -std::numeric_limits<double>::infinity();
    double max_y = -std::numeric_limits<double>::infinity();
    for (std::size_t h : cluster.heads) {
      const node::Position& p = positions[h];
      head_pos.push_back(p);
      min_x = std::min(min_x, p.x);
      min_y = std::min(min_y, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    // Same ~1-head-per-cell sizing as AssignToNearestHeadGrid.
    const double extent = std::max(max_x - min_x, max_y - min_y);
    const double side =
        std::ceil(std::sqrt(static_cast<double>(cluster.heads.size())));
    double cell = extent > 0.0 ? extent / side : 1.0;
    if (!(cell > 0.0)) cell = 1.0;
    repair_cache_ = std::make_unique<RepairCache>(cluster.heads,
                                                  std::move(head_pos), cell);
  }
  const RepairCache& cache = *repair_cache_;

  // Only the dead head's orphans re-pick: members of surviving heads keep
  // their argmin (repair never adds heads, and removing non-argmin
  // candidates cannot change one).  Dead or previously re-attached
  // entries in the stale-tolerant member list are skipped.
  for (std::uint32_t m : orphans) {
    if (!alive[m] || cluster.head_of[m] != dead_head) continue;
    const node::Position& p = positions[m];
    const std::size_t j = cache.grid.NearestWhere(p, [&](std::size_t c) {
      return alive[cache.heads[c]]
                 ? node::Distance2(p, cache.pos[c])
                 : std::numeric_limits<double>::infinity();
    });
    // j != kNone: at least one surviving head remains and is alive.
    const std::size_t new_head = cache.heads[j];
    const std::size_t new_slot = static_cast<std::size_t>(
        std::lower_bound(cluster.heads.begin(), cluster.heads.end(),
                         new_head) -
        cluster.heads.begin());
    cluster.head_of[m] = new_head;
    cluster.members[new_slot].push_back(m);
    reattached.push_back(m);
  }
  return true;
}

LeachClustering::LeachClustering(double head_fraction) : p_(head_fraction) {
  Require(p_ > 0.0 && p_ <= 1.0, "head fraction must be in (0, 1]");
  epoch_ = static_cast<std::size_t>(std::ceil(1.0 / p_));
}

ClusterAssignment LeachClustering::Elect(std::size_t round,
                                         const ClusterView& view,
                                         util::Rng& rng) {
  const std::size_t n = view.Size();
  if (last_head_round_.empty()) last_head_round_.assign(n, kNever);

  // Classic LEACH threshold; the denominator shrinks through the epoch
  // so every eligible node is guaranteed a turn within 1/p rounds.
  const double phase = static_cast<double>(round % epoch_);
  const double denom = 1.0 - p_ * phase;
  const double threshold = denom > 0.0 ? std::min(1.0, p_ / denom) : 1.0;

  std::vector<std::size_t> heads;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(*view.alive)[i]) continue;
    const bool eligible = last_head_round_[i] == kNever ||
                          round - last_head_round_[i] >= epoch_;
    // The draw happens for every alive node, eligible or not, so the RNG
    // consumption — and therefore the whole replication — does not depend
    // on the eligibility history.
    const double u = util::UniformDouble(rng);
    if (eligible && u < threshold) heads.push_back(i);
  }
  if (heads.empty()) {
    // Nobody volunteered (or everyone is inside the rotation window):
    // draft the most-charged alive node so the network keeps reporting.
    const std::size_t drafted = MostChargedAlive(view);
    if (drafted != ClusterAssignment::kUnclustered) heads.push_back(drafted);
  }
  for (std::size_t h : heads) last_head_round_[h] = round;
  return AssignToNearestHead(view, std::move(heads));
}

StaticClustering::StaticClustering(std::size_t head_count)
    : head_count_(head_count) {
  Require(head_count_ >= 1, "static clustering needs at least one head");
}

ClusterAssignment StaticClustering::Elect(std::size_t round,
                                          const ClusterView& view,
                                          util::Rng& rng) {
  if (!chosen_) {
    chosen_ = true;
    std::vector<std::size_t> alive_nodes;
    for (std::size_t i = 0; i < view.Size(); ++i) {
      if ((*view.alive)[i]) alive_nodes.push_back(i);
    }
    const std::size_t k = std::min(head_count_, alive_nodes.size());
    heads_.reserve(k);
    // Index-striding spreads the k heads evenly across the deployment
    // order (for the grid helper that is a spatial spread too).
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t pick =
          (j * alive_nodes.size() + alive_nodes.size() / 2) / k;
      heads_.push_back(alive_nodes[std::min(pick, alive_nodes.size() - 1)]);
    }
    // Strided picks can collide on tiny deployments; dedupe.
    std::sort(heads_.begin(), heads_.end());
    heads_.erase(std::unique(heads_.begin(), heads_.end()), heads_.end());
  }
  (void)round;
  (void)rng;
  return AssignToNearestHead(view, AliveHeads(heads_, *view.alive));
}

const char* ClusterProtocolKindName(ClusterProtocolKind kind) noexcept {
  switch (kind) {
    case ClusterProtocolKind::kNone:
      return "none";
    case ClusterProtocolKind::kLeach:
      return "leach";
    case ClusterProtocolKind::kStatic:
      return "static";
  }
  return "?";
}

ClusterProtocolKind ParseClusterProtocolKind(const std::string& name) {
  if (name == "none") return ClusterProtocolKind::kNone;
  if (name == "leach") return ClusterProtocolKind::kLeach;
  if (name == "static") return ClusterProtocolKind::kStatic;
  throw util::InvalidArgument("unknown clustering protocol '" + name +
                              "' (expected none, leach or static)");
}

void ClusterConfig::Validate() const {
  Require(head_fraction > 0.0 && head_fraction <= 1.0,
          "cluster head fraction must be in (0, 1]");
  Require(aggregation >= 1, "cluster aggregation must be >= 1");
  Require(round_s >= 0.0, "cluster round length must be >= 0");
  if (Enabled()) {
    Require(round_s > 0.0,
            "clustering needs a positive round length (round_s)");
  }
}

std::unique_ptr<ClusteringProtocol> ClusterConfig::MakeProtocol(
    std::size_t node_count) const {
  if (factory) return factory();
  switch (protocol) {
    case ClusterProtocolKind::kNone:
      return nullptr;
    case ClusterProtocolKind::kLeach:
      return std::make_unique<LeachClustering>(head_fraction);
    case ClusterProtocolKind::kStatic: {
      std::size_t k = static_heads;
      if (k == 0) {
        k = static_cast<std::size_t>(
            std::ceil(head_fraction * static_cast<double>(node_count)));
      }
      return std::make_unique<StaticClustering>(std::max<std::size_t>(k, 1));
    }
  }
  return nullptr;
}

}  // namespace wsn::netsim
