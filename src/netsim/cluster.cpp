#include "netsim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace wsn::netsim {

using util::Require;

void NodeClass::Validate() const {
  Require(!name.empty(), "node class name must be non-empty");
  Require(battery_mah > 0.0,
          "node class battery capacity must be positive");
  Require(battery_volts > 0.0, "node class battery voltage must be positive");
  Require(listen_duty_cycle >= 0.0 && listen_duty_cycle <= 1.0,
          "node class listen duty cycle must be in [0, 1]");
  Require(radio.elec_nj_per_bit >= 0.0 && radio.listen_mw >= 0.0 &&
              radio.sleep_mw >= 0.0,
          "node class radio powers must be non-negative");
}

ClusterAssignment AssignToNearestHead(const ClusterView& view,
                                      std::vector<std::size_t> heads) {
  obs::PhaseTimer timer(view.assign_stopwatch);
  const std::size_t n = view.Size();
  std::sort(heads.begin(), heads.end());
  ClusterAssignment out;
  out.head_of.assign(n, ClusterAssignment::kUnclustered);
  out.heads = std::move(heads);
  for (std::size_t h : out.heads) out.head_of[h] = h;
  if (out.heads.empty()) return out;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(*view.alive)[i] || out.head_of[i] == i) continue;
    // Nearest-head search compares in distance^2: the argmin (ties to
    // the lowest head index, heads being sorted) is the same and no
    // sqrt is ever needed — the metric value itself is not used.
    double best2 = std::numeric_limits<double>::infinity();
    std::size_t best_head = ClusterAssignment::kUnclustered;
    for (std::size_t h : out.heads) {
      const double d2 = node::Distance2((*view.positions)[i],
                                        (*view.positions)[h]);
      if (d2 < best2) {
        best2 = d2;
        best_head = h;
      }
    }
    out.head_of[i] = best_head;
  }
  return out;
}

namespace {

/// Surviving members of `heads` under `alive`.
std::vector<std::size_t> AliveHeads(const std::vector<std::size_t>& heads,
                                    const std::vector<bool>& alive) {
  std::vector<std::size_t> out;
  out.reserve(heads.size());
  for (std::size_t h : heads) {
    if (alive[h]) out.push_back(h);
  }
  return out;
}

/// The alive node with the highest remaining energy fraction (ties break
/// toward the lowest index); kUnclustered when nothing is alive.
std::size_t MostChargedAlive(const ClusterView& view) {
  std::size_t best = ClusterAssignment::kUnclustered;
  double best_energy = -1.0;
  for (std::size_t i = 0; i < view.Size(); ++i) {
    if (!(*view.alive)[i]) continue;
    const double e = (*view.energy_fraction)[i];
    if (e > best_energy) {
      best_energy = e;
      best = i;
    }
  }
  return best;
}

}  // namespace

ClusterAssignment ClusteringProtocol::Repair(const ClusterAssignment& current,
                                             std::size_t round,
                                             const ClusterView& view,
                                             util::Rng& rng) {
  std::vector<std::size_t> survivors = AliveHeads(current.heads, *view.alive);
  if (survivors.empty()) return Elect(round, view, rng);
  return AssignToNearestHead(view, std::move(survivors));
}

LeachClustering::LeachClustering(double head_fraction) : p_(head_fraction) {
  Require(p_ > 0.0 && p_ <= 1.0, "head fraction must be in (0, 1]");
  epoch_ = static_cast<std::size_t>(std::ceil(1.0 / p_));
}

ClusterAssignment LeachClustering::Elect(std::size_t round,
                                         const ClusterView& view,
                                         util::Rng& rng) {
  const std::size_t n = view.Size();
  if (last_head_round_.empty()) last_head_round_.assign(n, kNever);

  // Classic LEACH threshold; the denominator shrinks through the epoch
  // so every eligible node is guaranteed a turn within 1/p rounds.
  const double phase = static_cast<double>(round % epoch_);
  const double denom = 1.0 - p_ * phase;
  const double threshold = denom > 0.0 ? std::min(1.0, p_ / denom) : 1.0;

  std::vector<std::size_t> heads;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(*view.alive)[i]) continue;
    const bool eligible = last_head_round_[i] == kNever ||
                          round - last_head_round_[i] >= epoch_;
    // The draw happens for every alive node, eligible or not, so the RNG
    // consumption — and therefore the whole replication — does not depend
    // on the eligibility history.
    const double u = util::UniformDouble(rng);
    if (eligible && u < threshold) heads.push_back(i);
  }
  if (heads.empty()) {
    // Nobody volunteered (or everyone is inside the rotation window):
    // draft the most-charged alive node so the network keeps reporting.
    const std::size_t drafted = MostChargedAlive(view);
    if (drafted != ClusterAssignment::kUnclustered) heads.push_back(drafted);
  }
  for (std::size_t h : heads) last_head_round_[h] = round;
  return AssignToNearestHead(view, std::move(heads));
}

StaticClustering::StaticClustering(std::size_t head_count)
    : head_count_(head_count) {
  Require(head_count_ >= 1, "static clustering needs at least one head");
}

ClusterAssignment StaticClustering::Elect(std::size_t round,
                                          const ClusterView& view,
                                          util::Rng& rng) {
  if (!chosen_) {
    chosen_ = true;
    std::vector<std::size_t> alive_nodes;
    for (std::size_t i = 0; i < view.Size(); ++i) {
      if ((*view.alive)[i]) alive_nodes.push_back(i);
    }
    const std::size_t k = std::min(head_count_, alive_nodes.size());
    heads_.reserve(k);
    // Index-striding spreads the k heads evenly across the deployment
    // order (for the grid helper that is a spatial spread too).
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t pick =
          (j * alive_nodes.size() + alive_nodes.size() / 2) / k;
      heads_.push_back(alive_nodes[std::min(pick, alive_nodes.size() - 1)]);
    }
    // Strided picks can collide on tiny deployments; dedupe.
    std::sort(heads_.begin(), heads_.end());
    heads_.erase(std::unique(heads_.begin(), heads_.end()), heads_.end());
  }
  (void)round;
  (void)rng;
  return AssignToNearestHead(view, AliveHeads(heads_, *view.alive));
}

ClusterAssignment StaticClustering::Repair(const ClusterAssignment& current,
                                           std::size_t round,
                                           const ClusterView& view,
                                           util::Rng& rng) {
  // No replacement for dead heads — the defining weakness of the static
  // baseline.  Members fall back to whichever original heads survive.
  (void)current;
  (void)round;
  (void)rng;
  return AssignToNearestHead(view, AliveHeads(heads_, *view.alive));
}

const char* ClusterProtocolKindName(ClusterProtocolKind kind) noexcept {
  switch (kind) {
    case ClusterProtocolKind::kNone:
      return "none";
    case ClusterProtocolKind::kLeach:
      return "leach";
    case ClusterProtocolKind::kStatic:
      return "static";
  }
  return "?";
}

ClusterProtocolKind ParseClusterProtocolKind(const std::string& name) {
  if (name == "none") return ClusterProtocolKind::kNone;
  if (name == "leach") return ClusterProtocolKind::kLeach;
  if (name == "static") return ClusterProtocolKind::kStatic;
  throw util::InvalidArgument("unknown clustering protocol '" + name +
                              "' (expected none, leach or static)");
}

void ClusterConfig::Validate() const {
  Require(head_fraction > 0.0 && head_fraction <= 1.0,
          "cluster head fraction must be in (0, 1]");
  Require(aggregation >= 1, "cluster aggregation must be >= 1");
  Require(round_s >= 0.0, "cluster round length must be >= 0");
  if (Enabled()) {
    Require(round_s > 0.0,
            "clustering needs a positive round length (round_s)");
  }
}

std::unique_ptr<ClusteringProtocol> ClusterConfig::MakeProtocol(
    std::size_t node_count) const {
  if (factory) return factory();
  switch (protocol) {
    case ClusterProtocolKind::kNone:
      return nullptr;
    case ClusterProtocolKind::kLeach:
      return std::make_unique<LeachClustering>(head_fraction);
    case ClusterProtocolKind::kStatic: {
      std::size_t k = static_heads;
      if (k == 0) {
        k = static_cast<std::size_t>(
            std::ceil(head_fraction * static_cast<double>(node_count)));
      }
      return std::make_unique<StaticClustering>(std::max<std::size_t>(k, 1));
    }
  }
  return nullptr;
}

}  // namespace wsn::netsim
