/// \file
/// Event-driven, packet-level multi-node WSN simulator.
///
/// This is the dynamic counterpart of the static estimator in
/// wsn::node::Network::Evaluate.  Where the estimator assumes every node
/// drains at a constant average power forever, this simulator generates
/// individual packets (steady Poisson by default, any des::Workload
/// otherwise), routes them hop-by-hop with greedy geographic routing,
/// pays per-packet TX/RX radio energy at each hop, drains a per-node
/// battery continuously at the CPU + duty-cycle listen baseline, and
/// reacts to battery depletion: dead relays trigger re-routing (when
/// enabled) and, eventually, network partition.
///
/// Energy accounting matches Network::Evaluate term by term (CPU average
/// power from the same core::CpuEnergyModel, identical radio per-packet
/// costs, identical listen/sleep baseline), so with re-routing disabled
/// and steady traffic the simulated time-to-first-death converges to the
/// analytic lifetime — the validation anchor for this subsystem.
///
/// Beyond the flat homogeneous baseline the simulator supports (see
/// netsim/cluster.hpp): named per-node hardware classes (heterogeneous
/// radios/batteries), several sinks, and cluster-based collection with
/// rotating or static head election and in-cluster aggregation.
///
/// One Simulator = one replication, single-threaded and bit-reproducible
/// for a given (seed, replication) pair; parallelism happens one level up
/// in netsim/replication.hpp, mirroring the DES kernel's design.
///
/// Hot-path notes: every event callback here captures at most (this, node
/// index), so all closures live inline in the kernel's recycled event-
/// record slab (no per-packet heap allocation — see des/action.hpp); the
/// per-node next hop is read once per transmission opportunity, not once
/// per shed packet; and per-node timeline buffers are reserved up front.
/// Per-node hot state (battery, baseline draw, liveness, busy flag,
/// backlog cursors) lives in parallel struct-of-arrays vectors rather
/// than an array of per-node structs, so loops that sweep every node —
/// timeline ticks, election-time battery refreshes, post-election queue
/// wakeups — stream through dense cache lines instead of striding over
/// cold queue/stats bytes; packet backlogs share one pooled slab
/// (PacketQueues).  Under low-power listening, transmissions completing
/// at the same receiver wake slot are batched into a single kernel event
/// that walks a wakeup list in schedule order (batch_mac_wakeups),
/// collapsing N same-timestamp DES events into one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/model.hpp"
#include "des/simulator.hpp"
#include "des/workload.hpp"
#include "energy/battery.hpp"
#include "netsim/cluster.hpp"
#include "netsim/fault.hpp"
#include "netsim/mac.hpp"
#include "netsim/packet.hpp"
#include "netsim/routing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "wsn/network.hpp"

namespace wsn::netsim {

/// Full description of one packet-level simulation: topology, node
/// hardware (homogeneous template or named classes), traffic, MAC,
/// routing mode (flat greedy or clustered) and stop conditions.
struct NetSimConfig {
  /// Node template, sink position and hop range (same struct the static
  /// estimator consumes, so one topology drives both).
  node::NetworkConfig network;
  /// Node sites; one node per entry.
  std::vector<node::Position> positions;

  /// MAC timing / loss model shared by every node.
  MacConfig mac;

  double horizon_s = 1.0e7;  ///< hard simulation stop
  /// Recompute routes when a node dies (flat mode); in clustered mode
  /// this gates the repair election after a cluster-head death.
  bool rerouting = true;
  /// How a flat-mode death updates the routing table: incremental repair
  /// (default), grid-accelerated full recompute (correctness oracle) or
  /// the faithful pre-grid all-pairs recompute (benchmark baseline).
  /// All three produce identical routes; only the cost differs.
  RoutingUpdateMode routing_update = RoutingUpdateMode::kIncremental;
  bool stop_at_first_death = false;  ///< end the run at the first death
  bool stop_at_partition = false;    ///< end the run when partitioned

  /// Sample every node's remaining energy at this period (0 disables).
  double timeline_interval_s = 0.0;

  /// Per-node battery capacity override (empty = the node's class or the
  /// template battery_mah).  Lets tests/benchmarks stage asymmetric
  /// deaths; takes precedence over node classes.
  std::vector<double> battery_mah_override;

  /// Named hardware profiles nodes can be drawn from.  Empty = every
  /// node uses the template (homogeneous deployment).
  std::vector<NodeClass> classes;
  /// Per-node class name into `classes`; empty = homogeneous.  When
  /// non-empty it must name a known class for every node.
  std::vector<std::string> node_class;

  /// Sink sites; empty = the single `network.sink`.  Nodes (and cluster
  /// heads) route toward their nearest sink.
  std::vector<node::Position> sinks;

  /// Cluster-based collection; disabled by default (flat greedy routing).
  ClusterConfig cluster;

  /// Fault injection (transient node crashes with recovery, jam windows,
  /// sink outages); disabled by default.  When disabled the simulator
  /// builds no fault machinery and makes zero extra RNG draws, so every
  /// fault-free output stays bit-identical to the pre-fault engine.
  FaultConfig faults;

  /// Batch transmissions that complete at the same LPL wake slot into a
  /// single kernel event walking a wakeup list (instead of N same-
  /// timestamp DES events).  Only ever active when mac.wakeup_interval_s
  /// > 0 — without LPL no two completions share a timestamp and every
  /// transmission schedules its own event as before.  Results are
  /// bit-identical with batching on or off (same completion timestamps,
  /// same FIFO order).
  bool batch_mac_wakeups = true;

  /// Event-queue implementation for the underlying DES kernel.
  des::QueueKind queue_kind = des::QueueKind::kBinaryHeap;

  /// Observability switches (metrics registry, packet trace); both off
  /// by default, which keeps the hot path exactly as fast as before the
  /// obs layer existed (pinned by the disabled-mode tests).
  obs::ObsConfig obs;

  /// Per-node generator of *reported* packets.  Null means steady Poisson
  /// at arrival_rate * report_fraction, matching the analytic model.  The
  /// factory is invoked once per (node, replication), possibly from
  /// worker threads, so it must be thread-safe (pure construction is).
  std::function<std::unique_ptr<des::Workload>(std::size_t node)>
      traffic_factory;

  /// Throws util::InvalidArgument on inconsistent topology, unknown or
  /// invalid node classes, or out-of-range MAC/cluster knobs.
  void Validate() const;
};

/// The sink set a config implies: `sinks` when non-empty, else the
/// single `network.sink`.
std::vector<node::Position> EffectiveSinks(const NetSimConfig& config);

/// Per-node analytic node configurations implied by `config`: the
/// template with each node's class overrides (radio, duty cycle,
/// battery) and battery override applied.  This is the bridge to the
/// static estimator's heterogeneous Network::Evaluate overload for
/// cross-validation.
std::vector<node::NodeConfig> PerNodeConfigs(const NetSimConfig& config);

/// One sample of a node's remaining battery energy.
struct TimelinePoint {
  double time_s = 0.0;       ///< sample instant
  double remaining_j = 0.0;  ///< battery energy left at that instant
};

/// Per-node outcome of one replication.
struct NodeSimStats {
  std::uint64_t generated = 0;  ///< packets originated here
  std::uint64_t forwarded = 0;  ///< packets received for relay
  std::uint64_t delivered = 0;  ///< payloads sent from here that reached a sink
  std::uint64_t dropped = 0;    ///< payloads lost while held here
  /// Member payloads absorbed into this node's aggregation buffer while
  /// it served as a cluster head (0 in flat mode).
  std::uint64_t aggregated = 0;
  /// Elections this node won (round boundaries and mid-round repairs;
  /// 0 in flat mode).
  std::uint32_t head_elections = 0;
  double energy_used_j = 0.0;  ///< battery energy spent over the run
  double remaining_j = 0.0;    ///< battery energy left at the end
  bool alive = true;           ///< still alive at the end of the run
  /// Death instant; +infinity while alive at the end of the run.
  double death_s = std::numeric_limits<double>::infinity();
  /// Remaining-energy samples (timeline_interval_s > 0 only).
  std::vector<TimelinePoint> timeline;
};

/// Network-wide outcome of one replication.
struct NetSimReport {
  std::vector<NodeSimStats> nodes;  ///< per-node outcomes, by node index
  PacketCounters packets;           ///< network-wide packet counters
  /// First node-death instant; +infinity when nothing died.
  double first_death_s = std::numeric_limits<double>::infinity();
  /// Index of the first node to die; size_t(-1) when nothing died.
  std::size_t first_dead_node = static_cast<std::size_t>(-1);
  /// First instant an alive node lost its route; +infinity if never.
  double partition_s = std::numeric_limits<double>::infinity();
  /// First instant after `partition_s` at which every alive node had a
  /// route again — the partition healed (a revived node restored
  /// connectivity).  +infinity when no partition occurred or it never
  /// healed; only ever finite with fault injection enabled (nothing
  /// heals a fault-free run, and the detector is compiled out of the
  /// fault-free partition check to keep it O(1) after the latch).
  double heal_s = std::numeric_limits<double>::infinity();
  double end_s = 0.0;        ///< horizon or early-stop instant
  std::uint64_t events = 0;  ///< DES events fired
  /// Death-triggered route updates performed (flat repairs/recomputes
  /// and clustered rebuilds / repair elections).
  std::uint64_t routing_repairs = 0;
  /// Wall-clock seconds spent in those updates — the scaling work's
  /// direct observable (machine-dependent; not part of any pinned
  /// deterministic output).
  double routing_repair_s = 0.0;
  /// Cluster rounds started (boundary elections incl. the initial one;
  /// 0 in flat mode).
  std::uint64_t rounds = 0;
  /// Total protocol invocations: rounds plus mid-round repairs after
  /// cluster-head deaths (0 in flat mode).
  std::uint64_t elections = 0;
  /// Wall-clock seconds inside elections (protocol Elect/Repair + route
  /// rebuild; 0 in flat mode).  Machine-dependent, like
  /// routing_repair_s.
  double election_s = 0.0;
  /// Wall-clock seconds inside AssignToNearestHead (a sub-span of
  /// election_s — the cost the grid-accelerated head assignment
  /// attacks).
  double assign_s = 0.0;

  /// Fault-injection outcome (all 0 / +infinity without faults).
  std::uint64_t crashes = 0;     ///< transient crashes applied
  std::uint64_t recoveries = 0;  ///< crash recoveries applied
  std::uint64_t jam_windows = 0;          ///< jam windows in the plan
  std::uint64_t sink_outage_windows = 0;  ///< sink outages in the plan

  /// Application samples still buffered somewhere at the end of the run
  /// (MAC queues plus cluster-head aggregation buffers) — the "in
  /// flight at horizon" term of the packet-conservation invariant.
  std::uint64_t in_flight = 0;

  /// Packet-conservation invariant: every generated sample is delivered,
  /// dropped for a counted cause, or still in flight at the end.  Any
  /// violation is a silent-loss bug; tests assert this on every run and
  /// the netsim-faults chaos harness hard-fails on it.
  bool Conserved() const noexcept {
    return packets.generated ==
           packets.delivered + packets.TotalDropped() + in_flight;
  }

  /// Metrics snapshot of this replication (empty unless
  /// NetSimConfig::obs.metrics; see docs/observability.md for the metric
  /// name catalogue).
  obs::MetricsSnapshot metrics;
  /// JSONL packet-lifecycle trace (empty unless
  /// NetSimConfig::obs.trace.enabled).
  std::string trace;

  /// Payloads delivered / packets generated (1.0 when none generated).
  double DeliveryRatio() const noexcept { return packets.DeliveryRatio(); }
};

/// Average CPU power (mW) of the template node under `model` — evaluated
/// once and shared by every node/replication so the (possibly expensive)
/// model runs outside the hot loop.
double CpuAveragePowerMw(const NetSimConfig& config,
                         const core::CpuEnergyModel& model);

/// One replication of the packet-level simulation.
class NetworkSimulator {
 public:
  /// `rng` is taken by value: the caller hands each replication its own
  /// jump-separated stream.
  NetworkSimulator(NetSimConfig config, double cpu_power_mw, util::Rng rng);

  /// Run the replication to its horizon (or early stop) and report.
  /// Callable once per instance.
  NetSimReport Run();

 private:
  void ScheduleNextArrival(std::size_t i);
  void OnArrival(std::size_t i);
  void Enqueue(std::size_t i, const Packet& pkt);
  void StartNext(std::size_t i);
  /// Schedule node i's FinishTx at `tx.finish_s`; LPL-slotted finishes
  /// join (or open) the wakeup batch for that timestamp when
  /// batch_mac_wakeups is on.
  void ScheduleTxFinish(std::size_t i, const DutyCycledMac::TxTiming& tx);
  /// Fire one wakeup batch: FinishTx for every listed node, in the order
  /// the finishes were scheduled (the kernel's FIFO order).
  void FireWakeups(std::size_t slot);
  void FinishTx(std::size_t i);
  void Touch(std::size_t i, double now);
  void DrainDiscrete(std::size_t i, double joules);
  void RescheduleDeath(std::size_t i);
  void OnDeath(std::size_t i);
  /// Death-triggered routing/cluster update + partition check, shared by
  /// battery deaths and fault crashes (the repair is identical — only
  /// the death bookkeeping differs).
  void RepairAfterLoss(std::size_t i);
  void CheckPartition();

  // Fault-injection machinery (inert when config_.faults is disabled:
  // faults_ stays null and none of these run).
  void OnFaultEvent(std::size_t k);
  /// Transient crash: the node goes silent — queue flushed, traffic and
  /// death timer cancelled, alive mask cleared — but its battery is
  /// untouched (a crash is not a battery death; no baseline drains
  /// during the outage).
  void OnCrash(std::size_t i);
  /// Recovery: the node rejoins with its remaining charge; routes are
  /// re-offered (RoutingTable::RepairAfterRecovery in incremental mode,
  /// the full recomputes as oracles), clusters re-admit it, traffic and
  /// the death timer restart, and a healed partition is detected.
  void OnRecover(std::size_t i);
  /// Clustered-mode re-admission of a revived node: it rejoins as a
  /// member of the nearest live head (a former head gets its next shot
  /// at the following round election).
  void ReadmitRevived(std::size_t i);
  /// Per-attempt loss draw for sender i: the MAC's base p_loss combined
  /// (as independent events) with any active jam window covering the
  /// sender.  Without faults this is exactly mac_.AttemptLost.
  bool AttemptLost(std::size_t i);
  void DropPacket(std::size_t holder, DropReason reason,
                  std::uint32_t payloads = 1);
  void TimelineTick();
  void Stop();

  // Observability (all guarded by null checks; no-ops when disabled).
  void TracePacket(const char* event, std::size_t node, const Packet& pkt);
  void CollectMetrics(NetSimReport& report);

  // Clustered-mode machinery (no-ops in flat mode).
  bool Clustered() const noexcept { return protocol_ != nullptr; }
  std::size_t Receiver(std::size_t i) const;
  double HopDistanceOf(std::size_t i) const;
  void ElectClusters(bool repair);
  /// O(members + heads) head-death repair: drives
  /// ClusteringProtocol::RepairInPlace on cluster_, patches only the
  /// affected route rows and wakes only the re-attached members.  Returns
  /// false — having changed nothing — when the fast path does not apply
  /// (all-pairs mode, no surviving head, or no member lists); the caller
  /// then falls back to ElectClusters(/*repair=*/true).
  bool TryInPlaceClusterRepair(std::size_t dead);
  /// Recomputes cluster_next_/cluster_dist_ from cluster_.  With
  /// `prev_head_of` (a repair's pre-election assignment) only rows whose
  /// head changed are recomputed — an unchanged row still points at a
  /// live head at the same distance — and cluster_unrouted_ moves by
  /// transitions; null rebuilds every row from scratch.
  void RebuildClusterRoutes(
      const std::vector<std::size_t>* prev_head_of = nullptr);
  void RoundTick();
  void AbsorbAtHead(std::size_t head, const Packet& pkt);
  void FlushAggregate(std::size_t head);

  NetSimConfig config_;
  des::Simulator sim_;
  util::Rng rng_;
  RoutingTable routing_;
  DutyCycledMac mac_;

  // Per-node state, struct-of-arrays: each vector is indexed by node.
  // The hot sweeps (TimelineTick, election battery refresh, post-
  // election wakeups) read only the 1-2 arrays they need, densely.
  std::vector<energy::Battery> battery_;     ///< capacity + remaining (J)
  std::vector<energy::RadioModel> radio_;    ///< per-packet TX/RX costs
  std::vector<double> baseline_mw_;  ///< continuous CPU + listen/sleep draw
  std::vector<double> last_update_s_;  ///< last baseline-drain instant
  std::vector<bool> alive_;
  std::vector<std::uint8_t> busy_;  ///< radio TX in progress (0/1)
  PacketQueues queues_;             ///< pooled per-node packet FIFOs
  std::vector<std::uint32_t> agg_payloads_;  ///< head aggregation buffers
  std::vector<des::EventId> death_event_;    ///< pending death events
  /// Pending traffic-arrival events, one per node (0 = none).  The id is
  /// recorded so a crash can cancel the node's arrival chain and a
  /// recovery can restart it without ever double-scheduling; in
  /// fault-free runs the bookkeeping is written but never read.
  std::vector<des::EventId> arrival_event_;
  std::vector<std::unique_ptr<des::Workload>> traffic_;
  std::vector<NodeSimStats> stats_;

  // Fault-injection state (vectors stay empty-initialized-cheap; only
  // written by the crash/recover paths).
  std::unique_ptr<FaultEngine> faults_;  ///< null when faults disabled
  std::vector<std::uint8_t> down_;       ///< 1 while fault-crashed
  /// 1 when a crash interrupted an in-flight TX: the stale FinishTx
  /// event still fires and must be swallowed (it completed no
  /// transmission) instead of popping a packet the crash already
  /// flushed.
  std::vector<std::uint8_t> tx_void_;
  std::vector<double> down_since_;  ///< crash instant (outage histogram)
  std::uint64_t crashes_ = 0;       ///< crashes applied
  std::uint64_t recoveries_ = 0;    ///< recoveries applied
  double heal_s_ = std::numeric_limits<double>::infinity();

  // Batched LPL wakeups: lists of nodes whose TX completes at the same
  // wake-slot timestamp, one kernel event per distinct timestamp.  List
  // slots recycle through a free list; `firing_` is the walk scratch
  // (swapped in so nested ScheduleTxFinish calls can reuse the slot
  // safely — the kernel fires one event at a time, so no reentrancy).
  struct WakeupBatch {
    double t = 0.0;                   ///< batch timestamp (map key echo)
    std::vector<std::uint32_t> nodes;  ///< waiters, in schedule order
  };
  std::vector<WakeupBatch> wakeup_lists_;
  std::vector<std::uint32_t> wakeup_free_;
  std::unordered_map<double, std::uint32_t> wakeup_at_;  ///< t -> list slot
  std::vector<std::uint32_t> firing_;
  std::uint64_t wakeup_batches_ = 0;   ///< batch events fired
  std::uint64_t wakeups_batched_ = 0;  ///< FinishTx calls delivered batched

  PacketCounters counters_;
  std::uint64_t next_packet_id_ = 0;
  double first_death_s_ = std::numeric_limits<double>::infinity();
  std::size_t first_dead_node_ = static_cast<std::size_t>(-1);
  double partition_s_ = std::numeric_limits<double>::infinity();
  bool stopped_ = false;
  double stop_time_s_ = 0.0;
  bool ran_ = false;

  // Always-on wall-clock probes (clock reads only at rare events —
  // deaths and elections — never per packet).  repair_sw_ feeds the
  // report's routing_repairs / routing_repair_s fields, so those survive
  // with observability off; the registry snapshots them additionally.
  obs::Stopwatch repair_sw_;    ///< death-triggered route updates
  obs::Stopwatch election_sw_;  ///< protocol Elect/Repair + route rebuild
  obs::Stopwatch assign_sw_;    ///< AssignToNearestHead (via ClusterView)

  // Opt-in observability state (null when disabled).
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::TraceSink> trace_;
  util::Histogram* repair_hist_ = nullptr;  ///< owned by *metrics_
  /// Observed outage durations (recover - crash); owned by *metrics_,
  /// only created when both metrics and faults are enabled.
  util::Histogram* outage_hist_ = nullptr;

  // Clustered-mode state.
  std::unique_ptr<ClusteringProtocol> protocol_;  ///< null in flat mode
  ClusterAssignment cluster_;
  std::vector<std::size_t> cluster_next_;  ///< per-node receiver sentinel
  std::vector<double> cluster_dist_;       ///< per-node hop distance (m)
  /// Alive nodes with cluster_next_ == kNoRoute.  RebuildClusterRoutes
  /// runs after every head death (rerouting on or off), so an alive row
  /// never points at a dead node and this counter alone answers the
  /// partition check in O(1) — the clustered analogue of
  /// RoutingTable::UnroutedAlive().
  std::size_t cluster_unrouted_ = 0;
  std::vector<double> energy_fraction_;    ///< election-time scratch
  /// In-place-repair scratch: the members RepairInPlace re-attached,
  /// sorted ascending before route patching so the post-repair queue
  /// kicks replay the full sweep's node-index order.
  std::vector<std::uint32_t> repair_reattached_;
  std::size_t round_ = 0;                  ///< current round index
  std::size_t aggregate_bits_ = 0;         ///< resolved upstream bits
  std::uint64_t rounds_ = 0;
  std::uint64_t elections_ = 0;
};

}  // namespace wsn::netsim
