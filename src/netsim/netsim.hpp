// Event-driven, packet-level multi-node WSN simulator.
//
// This is the dynamic counterpart of the static estimator in
// wsn::node::Network::Evaluate.  Where the estimator assumes every node
// drains at a constant average power forever, this simulator generates
// individual packets (steady Poisson by default, any des::Workload
// otherwise), routes them hop-by-hop with greedy geographic routing,
// pays per-packet TX/RX radio energy at each hop, drains a per-node
// battery continuously at the CPU + duty-cycle listen baseline, and
// reacts to battery depletion: dead relays trigger re-routing (when
// enabled) and, eventually, network partition.
//
// Energy accounting matches Network::Evaluate term by term (CPU average
// power from the same core::CpuEnergyModel, identical radio per-packet
// costs, identical listen/sleep baseline), so with re-routing disabled
// and steady traffic the simulated time-to-first-death converges to the
// analytic lifetime — the validation anchor for this subsystem.
//
// One Simulator = one replication, single-threaded and bit-reproducible
// for a given (seed, replication) pair; parallelism happens one level up
// in netsim/replication.hpp, mirroring the DES kernel's design.
//
// Hot-path notes: every event callback here captures at most (this, node
// index), so all closures live inline in the kernel's recycled event-
// record slab (no per-packet heap allocation — see des/action.hpp); the
// per-node next hop is read once per transmission opportunity, not once
// per shed packet; and per-node timeline buffers are reserved up front.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "core/model.hpp"
#include "des/simulator.hpp"
#include "des/workload.hpp"
#include "energy/battery.hpp"
#include "netsim/mac.hpp"
#include "netsim/packet.hpp"
#include "netsim/routing.hpp"
#include "util/rng.hpp"
#include "wsn/network.hpp"

namespace wsn::netsim {

struct NetSimConfig {
  /// Node template, sink position and hop range (same struct the static
  /// estimator consumes, so one topology drives both).
  node::NetworkConfig network;
  std::vector<node::Position> positions;

  MacConfig mac;

  double horizon_s = 1.0e7;  ///< hard simulation stop
  bool rerouting = true;     ///< recompute routes when a node dies
  bool stop_at_first_death = false;
  bool stop_at_partition = false;

  /// Sample every node's remaining energy at this period (0 disables).
  double timeline_interval_s = 0.0;

  /// Per-node battery capacity override (empty = template's battery_mah
  /// for every node).  Lets tests/benchmarks stage asymmetric deaths.
  std::vector<double> battery_mah_override;

  des::QueueKind queue_kind = des::QueueKind::kBinaryHeap;

  /// Per-node generator of *reported* packets.  Null means steady Poisson
  /// at arrival_rate * report_fraction, matching the analytic model.  The
  /// factory is invoked once per (node, replication), possibly from
  /// worker threads, so it must be thread-safe (pure construction is).
  std::function<std::unique_ptr<des::Workload>(std::size_t node)>
      traffic_factory;

  void Validate() const;
};

struct TimelinePoint {
  double time_s = 0.0;
  double remaining_j = 0.0;
};

struct NodeSimStats {
  std::uint64_t generated = 0;  ///< packets originated here
  std::uint64_t forwarded = 0;  ///< packets received for relay
  std::uint64_t delivered = 0;  ///< own packets that reached the sink
  std::uint64_t dropped = 0;    ///< packets lost while held here
  double energy_used_j = 0.0;
  double remaining_j = 0.0;
  bool alive = true;
  /// Death instant; +infinity while alive at the end of the run.
  double death_s = std::numeric_limits<double>::infinity();
  std::vector<TimelinePoint> timeline;
};

struct NetSimReport {
  std::vector<NodeSimStats> nodes;
  PacketCounters packets;
  double first_death_s = std::numeric_limits<double>::infinity();
  std::size_t first_dead_node = static_cast<std::size_t>(-1);
  double partition_s = std::numeric_limits<double>::infinity();
  double end_s = 0.0;            ///< horizon or early-stop instant
  std::uint64_t events = 0;      ///< DES events fired

  double DeliveryRatio() const noexcept { return packets.DeliveryRatio(); }
};

/// Average CPU power (mW) of the template node under `model` — evaluated
/// once and shared by every node/replication so the (possibly expensive)
/// model runs outside the hot loop.
double CpuAveragePowerMw(const NetSimConfig& config,
                         const core::CpuEnergyModel& model);

/// One replication of the packet-level simulation.
class NetworkSimulator {
 public:
  /// `rng` is taken by value: the caller hands each replication its own
  /// jump-separated stream.
  NetworkSimulator(NetSimConfig config, double cpu_power_mw, util::Rng rng);

  /// Run the replication to its horizon (or early stop) and report.
  /// Callable once per instance.
  NetSimReport Run();

 private:
  struct NodeRt {
    energy::Battery battery;
    double last_update_s = 0.0;
    bool alive = true;
    bool busy = false;  ///< radio TX in progress
    std::deque<Packet> queue;
    des::EventId death_event = 0;
    std::unique_ptr<des::Workload> traffic;
    NodeSimStats stats;

    explicit NodeRt(energy::Battery b) : battery(b) {}
  };

  void ScheduleNextArrival(std::size_t i);
  void OnArrival(std::size_t i);
  void Enqueue(std::size_t i, const Packet& pkt);
  void StartNext(std::size_t i);
  void FinishTx(std::size_t i);
  void Touch(std::size_t i, double now);
  void DrainDiscrete(std::size_t i, double joules);
  void RescheduleDeath(std::size_t i);
  void OnDeath(std::size_t i);
  void CheckPartition();
  void DropPacket(std::size_t holder, DropReason reason);
  void TimelineTick();
  void Stop();

  NetSimConfig config_;
  des::Simulator sim_;
  util::Rng rng_;
  RoutingTable routing_;
  DutyCycledMac mac_;
  std::vector<NodeRt> nodes_;
  std::vector<bool> alive_;
  PacketCounters counters_;
  double baseline_mw_ = 0.0;
  std::uint64_t next_packet_id_ = 0;
  double first_death_s_ = std::numeric_limits<double>::infinity();
  std::size_t first_dead_node_ = static_cast<std::size_t>(-1);
  double partition_s_ = std::numeric_limits<double>::infinity();
  bool stopped_ = false;
  double stop_time_s_ = 0.0;
  bool ran_ = false;
};

}  // namespace wsn::netsim
