/// \file
/// Heterogeneous node classes and cluster-based data collection for the
/// packet-level network simulator.
///
/// Two orthogonal extensions of the flat, homogeneous simulator live
/// here:
///
///   * **Named hardware profiles** (NodeClass): per-node TX/RX/idle
///     radio powers, duty cycle and battery capacity, resolved by name
///     so deployments mix e.g. a few line-powered "advanced" nodes into
///     a field of coin-cell "standard" ones (SEP-style heterogeneity).
///
///   * **Clustered routing** (ClusteringProtocol): instead of greedy
///     multi-hop routing, member nodes transmit one hop to an elected
///     cluster head, which aggregates several member payloads into one
///     upstream packet toward the nearest sink.  The protocol interface
///     is pluggable; a LEACH-style rotating election and a static-head
///     baseline ship in-tree, and network lifetime becomes a function
///     of *policy*, not just energy bookkeeping — the property the
///     `cluster-ablation` scenario studies.
///
/// Protocols are deterministic: elections consume the replication's own
/// RNG stream in node-index order, so clustered runs keep the simulator's
/// byte-identical-per-(seed, replication) guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "energy/radio.hpp"
#include "util/rng.hpp"
#include "wsn/network.hpp"

namespace wsn::obs {
struct Stopwatch;
}  // namespace wsn::obs

namespace wsn::netsim {

/// How AssignToNearestHead finds each member's nearest head.
///
/// Mirrors the routing layer's RoutingUpdateMode pattern: the grid path
/// is the default, the all-pairs path is the slow pinned oracle the grid
/// path must match bit for bit (same argmin, same lowest-head-index tie
/// break), kept selectable for equivalence tests and benchmarks.
enum class HeadAssignMode {
  kGrid,      ///< ring-search over a spatial grid of the heads, O(k)/node
  kAllPairs,  ///< scan every head per node, O(heads)/node (oracle)
};

/// Name of a head-assignment mode ("grid", "all-pairs").
const char* HeadAssignModeName(HeadAssignMode mode) noexcept;

/// Parse "grid" / "all-pairs"; throws util::InvalidArgument otherwise.
HeadAssignMode ParseHeadAssignMode(const std::string& name);

/// A named hardware profile a node can be instantiated from.
///
/// The simulator's template node (NetSimConfig::network.node) supplies
/// everything a class does not override: CPU model and workload, sample
/// size, report fraction.  A class overrides the energy-defining parts —
/// radio powers, idle (listen/sleep) behaviour and battery.
struct NodeClass {
  std::string name;                 ///< registry key, e.g. "standard"
  double battery_mah = 2500.0;      ///< battery capacity (mAh), > 0
  double battery_volts = 3.0;       ///< battery voltage (V), > 0
  energy::RadioParameters radio;    ///< TX/RX/listen/sleep powers
  double listen_duty_cycle = 0.01;  ///< idle-listen fraction in [0, 1]

  /// Throws util::InvalidArgument on empty name, non-positive battery
  /// capacity/voltage, or a duty cycle outside [0, 1].
  void Validate() const;
};

/// Read-only view of the deployment a ClusteringProtocol sees at
/// election time.  All vectors are indexed by node and owned by the
/// simulator; the view is valid only for the duration of the call.
struct ClusterView {
  const std::vector<node::Position>* positions = nullptr;  ///< node sites
  const std::vector<node::Position>* sinks = nullptr;      ///< sink sites
  const std::vector<bool>* alive = nullptr;                ///< liveness mask
  /// Remaining battery fraction per node in [0, 1] (0 for dead nodes).
  /// May be stale until RefreshEnergy() runs: the simulator defers the
  /// per-node division to the (rare) protocols that actually read
  /// energies, so a plain repair never pays the O(N) refresh.
  const std::vector<double>* energy_fraction = nullptr;

  /// Brings `energy_fraction` current at the election instant.  Set by
  /// the simulator; protocols must call RefreshEnergy() before reading
  /// energies.  Unset (e.g. in unit tests) means the vector is already
  /// current.
  std::function<void()> refresh_energy;

  /// Invokes `refresh_energy` when set; no-op otherwise.
  void RefreshEnergy() const {
    if (refresh_energy) refresh_energy();
  }

  /// When set, AssignToNearestHead accumulates its wall-clock cost here
  /// (the ROADMAP's suspected O(N·heads) straggler — see
  /// docs/observability.md, metric netsim.cluster.assign_wall_s).  Null
  /// keeps the call untimed.
  obs::Stopwatch* assign_stopwatch = nullptr;

  /// Nearest-head search strategy AssignToNearestHead dispatches to.
  /// Both modes produce identical assignments; kGrid is O(k) per node.
  HeadAssignMode assign_mode = HeadAssignMode::kGrid;

  /// Number of nodes in the deployment.
  std::size_t Size() const noexcept { return positions->size(); }
};

/// Result of one election: every node's cluster head.
struct ClusterAssignment {
  /// Sentinel: the node has no live cluster head (it is unclustered and
  /// cannot report until a later election repairs the cluster).
  static constexpr std::size_t kUnclustered = static_cast<std::size_t>(-1);

  /// head_of[i] is the cluster head serving node i: i itself when node i
  /// is a head, kUnclustered when no live head exists.  A full election
  /// or repair resets dead nodes to kUnclustered; RepairInPlace only
  /// clears the dead *head's* row, so dead members keep their last
  /// assignment — readers must filter through the alive mask (the
  /// simulator already does: no path reads a dead node's row).
  std::vector<std::size_t> head_of;

  /// Sorted indices of the elected heads (alive by construction).
  std::vector<std::size_t> heads;

  /// members[s] lists the nodes attached to heads[s] (parallel to
  /// `heads`): filled in node-index order by the assignment helpers,
  /// appended to by in-place repairs.  Entries are never removed on
  /// member death — treat them as candidates and filter with an alive /
  /// head_of check.  An assignment without lists (e.g. built by an
  /// out-of-tree protocol) simply disables the in-place repair fast
  /// path.
  std::vector<std::vector<std::uint32_t>> members;

  /// True when node i is one of the elected heads.
  bool IsHead(std::size_t i) const noexcept {
    return i < head_of.size() && head_of[i] == i;
  }
};

/// Strategy interface: how cluster heads are chosen and when they rotate.
///
/// One protocol instance serves one replication (constructed per
/// replication by NetSimConfig::ClusterConfig::factory, so it may keep
/// per-round state such as LEACH's eligibility window).  Elect runs at
/// every round boundary; Repair runs after a cluster-head death inside a
/// round.  Both must be deterministic functions of (view, rng state).
class ClusteringProtocol {
 public:
  ClusteringProtocol();
  virtual ~ClusteringProtocol();

  /// Protocol name for reports ("leach", "static").
  virtual const char* Name() const noexcept = 0;

  /// Choose heads for round `round` (0-based) over the alive nodes in
  /// `view` and assign every other alive node to a head.  Draws from
  /// `rng` in node-index order only.
  virtual ClusterAssignment Elect(std::size_t round, const ClusterView& view,
                                  util::Rng& rng) = 0;

  /// React to a mid-round cluster-head death.  The default keeps the
  /// surviving heads of `current` (no protocol ever seats a replacement
  /// mid-round) and re-attaches every member to the nearest one; when no
  /// head survives it falls back to a fresh Elect for the same round.
  /// This full O(n) rebuild is the oracle RepairInPlace is pinned
  /// against, and the fallback when RepairInPlace declines.
  virtual ClusterAssignment Repair(const ClusterAssignment& current,
                                   std::size_t round, const ClusterView& view,
                                   util::Rng& rng);

  /// Repair `cluster` after the death of head `dead_head` *in place*,
  /// touching only the nodes the death can affect: the dead head's slot
  /// is erased and its orphaned members re-pick the nearest surviving
  /// head via a cached spatial grid of the heads.  Members of surviving
  /// heads keep their assignment — repair never adds heads, and removing
  /// non-argmin candidates cannot change an argmin — so the result is
  /// identical to `Repair` over the heads and every alive node (dead
  /// members' head_of rows stay stale, see ClusterAssignment::head_of)
  /// at O(members + heads) cost instead of O(n).  Appends each re-attached node (the dead head's
  /// alive former members — a surviving head always exists for them to
  /// join) to `reattached`, in no particular order.
  ///
  /// Returns false — leaving `cluster` and `reattached` untouched — when
  /// the fast path does not apply: `dead_head` is not a current head, no
  /// other head survives (callers must fall back to Repair/Elect so the
  /// protocol can run its no-survivor policy), or `cluster.members` was
  /// not populated by the assignment helpers.
  virtual bool RepairInPlace(ClusterAssignment& cluster, std::size_t dead_head,
                             const ClusterView& view,
                             std::vector<std::uint32_t>& reattached);

 private:
  /// Lazily built spatial grid over the current heads, reused across the
  /// (often many) repairs between elections.  Self-validating: a repair
  /// rebuilds it whenever the cached head set no longer matches the
  /// assignment being repaired.
  struct RepairCache;
  std::unique_ptr<RepairCache> repair_cache_;
};

/// Attach every alive non-head node in `view` to the nearest alive head
/// in `heads` (Euclidean; ties break toward the lowest head index).
/// Nodes stay kUnclustered when `heads` is empty.  Shared by the in-tree
/// protocols and available to out-of-tree ones.  Dispatches on
/// `view.assign_mode`; both strategies return identical assignments.
ClusterAssignment AssignToNearestHead(const ClusterView& view,
                                      std::vector<std::size_t> heads);

/// The all-pairs oracle: every alive non-head node scans every head.
/// O(n * heads) — the pre-grid implementation, kept verbatim as the
/// equivalence baseline (the routing layer's RecomputeLegacy pattern).
ClusterAssignment AssignToNearestHeadAllPairs(const ClusterView& view,
                                              std::vector<std::size_t> heads);

/// Grid-accelerated search: indexes the heads in a SpatialGrid sized so
/// cells hold O(1) heads and answers each member with a ring-expanding
/// nearest query — O(1) expected per node for evenly spread heads,
/// O(n + heads) per election overall.
ClusterAssignment AssignToNearestHeadGrid(const ClusterView& view,
                                          std::vector<std::size_t> heads);

/// LEACH-style rotating election (Heinzelman et al.): each round, every
/// alive node that has not served as head within the last 1/p rounds
/// volunteers with probability T(r) = p / (1 - p * (r mod 1/p)).  When no
/// node volunteers, the alive node with the highest remaining energy
/// fraction is drafted, so a live network always has a head.
class LeachClustering final : public ClusteringProtocol {
 public:
  /// `head_fraction` is LEACH's p, the desired fraction of heads per
  /// round, in (0, 1].
  explicit LeachClustering(double head_fraction);

  const char* Name() const noexcept override { return "leach"; }
  ClusterAssignment Elect(std::size_t round, const ClusterView& view,
                          util::Rng& rng) override;

 private:
  double p_;
  std::size_t epoch_;  ///< rounds per rotation window, ceil(1/p)
  /// Round each node last served as head; kNever when it has not yet.
  std::vector<std::size_t> last_head_round_;
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
};

/// Static baseline: `head_count` heads are picked once (index-strided
/// across the deployment, a deterministic stand-in for planned
/// placement) and never rotate.  Members re-attach to surviving heads as
/// heads die; when the last head dies the network stays unclustered —
/// exactly the failure mode rotation exists to avoid.
class StaticClustering final : public ClusteringProtocol {
 public:
  /// `head_count` must be >= 1; it is clamped to the number of alive
  /// nodes at the first election.
  explicit StaticClustering(std::size_t head_count);

  const char* Name() const noexcept override { return "static"; }
  ClusterAssignment Elect(std::size_t round, const ClusterView& view,
                          util::Rng& rng) override;

  // Head deaths use the inherited Repair: it keeps the surviving heads
  // of `current` — which for this protocol are exactly the surviving
  // original heads — and when the last one dies, Elect (already chosen)
  // returns the empty assignment, so a dead static head is never
  // replaced.

 private:
  std::size_t head_count_;
  bool chosen_ = false;
  std::vector<std::size_t> heads_;  ///< the original, never-rotated heads
};

/// Which in-tree protocol ClusterConfig selects when no factory is set.
enum class ClusterProtocolKind {
  kNone,    ///< clustering disabled: flat greedy multi-hop routing
  kLeach,   ///< LeachClustering(head_fraction)
  kStatic,  ///< StaticClustering(static_heads or head_fraction * n)
};

/// Name of an in-tree protocol kind ("none", "leach", "static").
const char* ClusterProtocolKindName(ClusterProtocolKind kind) noexcept;

/// Parse "none" / "leach" / "static"; throws util::InvalidArgument
/// otherwise.
ClusterProtocolKind ParseClusterProtocolKind(const std::string& name);

/// Clustered-collection knobs on NetSimConfig.
struct ClusterConfig {
  /// In-tree protocol choice; ignored when `factory` is set.
  ClusterProtocolKind protocol = ClusterProtocolKind::kNone;

  /// LEACH p / the derived static head count fraction, in (0, 1].
  double head_fraction = 0.1;

  /// Static-baseline head count; 0 derives ceil(head_fraction * nodes).
  std::size_t static_heads = 0;

  /// Round length (s): heads rotate and partial aggregates flush at this
  /// period.  Must be > 0 when clustering is enabled.
  double round_s = 0.0;

  /// Member payloads folded into one upstream packet at a head (>= 1;
  /// 1 disables aggregation but keeps clustered routing).
  std::size_t aggregation = 4;

  /// Bits of an aggregated upstream packet; 0 = the template node's
  /// sample_bits (i.e. perfect compression to one sample).
  std::size_t aggregate_bits = 0;

  /// Nearest-head search strategy for elections and repairs.  kAllPairs
  /// selects the slow oracle — useful only for equivalence checks.
  HeadAssignMode assign = HeadAssignMode::kGrid;

  /// Custom protocol constructor, invoked once per replication (possibly
  /// from worker threads — pure construction only).  Overrides
  /// `protocol`.
  std::function<std::unique_ptr<ClusteringProtocol>()> factory;

  /// True when any protocol (in-tree kind or factory) is configured.
  bool Enabled() const noexcept {
    return protocol != ClusterProtocolKind::kNone || factory != nullptr;
  }

  /// Throws util::InvalidArgument on out-of-range knobs (see fields).
  void Validate() const;

  /// Instantiate the configured protocol for one replication of
  /// `node_count` nodes; null when clustering is disabled.
  std::unique_ptr<ClusteringProtocol> MakeProtocol(
      std::size_t node_count) const;
};

}  // namespace wsn::netsim
