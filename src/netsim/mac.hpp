/// \file
/// Duty-cycled MAC model for the packet simulator.
///
/// Timing: every transmission pays a uniform CSMA backoff plus the payload
/// serialization time; with low-power listening enabled
/// (wakeup_interval_s > 0) the sender additionally waits for the
/// receiver's next wake slot (per-node phases are drawn once per
/// replication).  Energy is not accounted here: per-packet TX/RX costs
/// come from each node's own first-order radio model and the duty-cycle
/// listen/sleep baseline is drained continuously by the node, so the
/// analytic and simulated budgets line up term by term.
///
/// Losses are modeled per attempt (p_loss) with bounded retransmissions;
/// every attempt pays full TX energy, which is exactly how lossy links
/// erode lifetime in practice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace wsn::netsim {

/// MAC timing / loss knobs shared by every node of a simulation.
struct MacConfig {
  double bitrate_bps = 250000.0;    ///< CC2420-class payload rate
  double backoff_window_s = 0.004;  ///< uniform [0, w) CSMA backoff per TX
  /// Exponential-backoff growth: retry attempt k draws its backoff from
  /// [0, backoff_window_s * growth^k).  Must be >= 1.0; the default 1.0
  /// reproduces the historical constant window bit for bit (same single
  /// uniform draw, same arithmetic), which the pinned scenario outputs
  /// ride on.
  double backoff_growth = 1.0;
  double wakeup_interval_s = 0.0;   ///< LPL slot period; 0 = always-on
  double p_loss = 0.0;              ///< per-attempt link loss probability
  std::size_t max_retries = 3;      ///< extra attempts before dropping
  std::size_t max_queue = 1024;     ///< per-node MAC queue capacity

  /// Throws util::InvalidArgument on non-positive bitrate, negative
  /// windows/periods, a loss probability outside [0, 1), or a backoff
  /// growth below 1.
  void Validate() const;
};

/// Per-transmission timing and loss draws.  Per-packet TX/RX *energy*
/// lives with each node's own radio model (heterogeneous deployments
/// have per-node radios), not here.
class DutyCycledMac {
 public:
  /// LPL wakeup accounting: how often a sender had to wait for the
  /// receiver's wake slot and how long (simulated seconds), for the obs
  /// metrics layer.  Simulation-time quantities, so deterministic.
  struct LplStats {
    std::uint64_t waits = 0;  ///< attempts that waited for a wake slot
    double wait_s = 0.0;      ///< total simulated wait time
  };

  /// Sentinel receiver index for the (always-awake) sink.
  static constexpr std::size_t kSinkReceiver = static_cast<std::size_t>(-1);

  /// Draws one wake phase per node from `rng` (consumed deterministically
  /// at replication start).
  DutyCycledMac(MacConfig config, std::size_t node_count, util::Rng& rng);

  /// The configuration this MAC was built from.
  const MacConfig& Config() const noexcept { return config_; }

  /// Payload serialization time.
  double TxDuration(std::size_t bits) const noexcept {
    return static_cast<double>(bits) / config_.bitrate_bps;
  }

  /// When one attempt completes and why.  `slotted` marks attempts that
  /// waited for the receiver's LPL wake slot: their `finish_s` is the
  /// *absolute* `slot + TxDuration(bits)`, computed identically by every
  /// sender waiting on the same slot, so same-slot completions share one
  /// bit-identical timestamp — the precondition for batching them into a
  /// single kernel event (see NetSimConfig::batch_mac_wakeups).
  struct TxTiming {
    double finish_s = 0.0;  ///< absolute completion instant
    bool slotted = false;   ///< true when an LPL wake-slot wait occurred
  };

  /// Completion time of one attempt started at `now` toward `receiver`:
  /// now + backoff + (LPL) wait for the receiver's wake slot +
  /// serialization.  `attempt` is the retry index of this transmission
  /// (0 = first attempt) and widens the backoff window by
  /// backoff_growth^attempt; with the default growth of 1.0 it is
  /// ignored and the timing is bit-identical to the historical
  /// constant-window MAC.
  TxTiming TxFinish(double now, std::size_t bits, std::size_t receiver,
                    util::Rng& rng, std::uint32_t attempt = 0) const;

  /// Bernoulli(p_loss) draw for one attempt.
  bool AttemptLost(util::Rng& rng) const;

  /// Accumulated LPL wakeup waits (see LplStats).
  const LplStats& Lpl() const noexcept { return lpl_; }

 private:
  MacConfig config_;
  std::vector<double> wake_phase_;  ///< per-node slot phase in [0, interval)
  /// Mutable: TxFinish is logically const (a timing query) but records
  /// how much of the delay was LPL wait.
  mutable LplStats lpl_;
};

}  // namespace wsn::netsim
