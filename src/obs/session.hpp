/// \file
/// wsnctl-level observability session: translates the `--metrics` /
/// `--trace` command-line surface into the per-run ObsConfig, collects
/// what instrumented scenarios contribute (merged metric snapshots and
/// concatenated trace buffers), and writes the output files once the
/// scenario finishes.
///
/// A scenario participates by calling MakeConfig() into each
/// NetSimConfig it runs (scenario::ApplyObs) and Contribute()-ing each
/// ReplicationSummary's merged snapshot/trace (scenario::ContributeObs).
/// Scenarios that run several configurations contribute several times;
/// snapshots merge under the usual per-kind rules.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wsn::obs {

/// Parsed command-line surface (see wsnctl --help).
struct SessionOptions {
  std::string metrics_path;  ///< --metrics PATH ("" = off)
  std::string trace_path;    ///< --trace PATH ("" = off)
  TraceConfig trace;         ///< filters from --trace-nodes/-from/-until/-max
  /// --metrics-timings: include the wall-clock "timings" /
  /// "timing_histograms" sections in the metrics file.  Off by default so
  /// the file is byte-identical across runs, machines and thread counts.
  bool metrics_timings = false;
};

class Session {
 public:
  explicit Session(SessionOptions options);

  bool MetricsEnabled() const noexcept { return !options_.metrics_path.empty(); }
  bool TraceEnabled() const noexcept { return !options_.trace_path.empty(); }
  bool Enabled() const noexcept { return MetricsEnabled() || TraceEnabled(); }

  /// The ObsConfig a participating run should carry.
  ObsConfig MakeConfig() const;

  /// Fold one run's results into the session.
  void Contribute(const MetricsSnapshot& snapshot, const std::string& trace);

  const MetricsSnapshot& Merged() const noexcept { return merged_; }

  /// Metrics file content: `{"schema": "wsn-metrics-v1", <sections>}`.
  /// Wall-clock "timings"/"timing_histograms" sections appear only with
  /// --metrics-timings; without them the document is deterministic for a
  /// fixed (scenario, flags, seed) (docs/observability.md).
  std::string MetricsJson() const;

  /// Write the requested output files.  Throws util::Error on I/O
  /// failure.  No-op for outputs that were not requested.
  void WriteFiles() const;

 private:
  SessionOptions options_;
  MetricsSnapshot merged_;
  std::string trace_;
};

}  // namespace wsn::obs
