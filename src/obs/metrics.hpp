/// \file
/// Metrics layer of the observability subsystem: named counters, gauges,
/// deterministic sums, wall-clock stopwatches and fixed-bucket histograms,
/// recorded per replication and merged deterministically at summary time.
///
/// Design constraints (see docs/observability.md):
///
///   * **No atomics, no locking.**  One MetricsRegistry belongs to one
///     replication (one NetworkSimulator), which is single-threaded by
///     construction.  Cross-replication aggregation happens after the
///     parallel join by merging plain MetricsSnapshot values in
///     replication order, so the merged registry is byte-identical no
///     matter how many threads ran the replications.
///
///   * **Zero cost when disabled.**  Hot-path instrumentation records
///     into pre-resolved handles (plain `std::uint64_t*`, Stopwatch*,
///     util::Histogram*) that are null when observability is off; the
///     only disabled-mode cost is one null check, and no registry entry
///     is ever created (pinned by tests/test_obs_metrics.cpp).
///
///   * **Deterministic vs wall-clock metrics are separated.**  Counters,
///     gauges, sums and (value-domain) histograms are functions of the
///     simulation alone and merge byte-identically across thread counts;
///     stopwatches and timing histograms measure host wall-clock time and
///     are machine-dependent.  Snapshot JSON keeps the two groups apart
///     so comparisons can pin the former and ignore the latter.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/histogram.hpp"

/// \namespace wsn::obs
/// Simulator-wide observability: metrics registry, scoped phase timers
/// and the structured packet-lifecycle trace sink.

namespace wsn::util {
class JsonWriter;
}  // namespace wsn::util

namespace wsn::obs {

/// Wall-clock accumulator: how many times a phase ran and how long it
/// took in total.  Plain data so instrumentation can keep always-on
/// stopwatches (e.g. routing-repair cost feeding NetSimReport) without a
/// registry.
struct Stopwatch {
  std::uint64_t calls = 0;  ///< completed PhaseTimer scopes
  double seconds = 0.0;     ///< accumulated wall-clock seconds

  void MergeFrom(const Stopwatch& other) noexcept {
    calls += other.calls;
    seconds += other.seconds;
  }
};

/// Scoped wall-clock probe: accumulates the lifetime of the scope into a
/// Stopwatch.  Constructed with a null stopwatch it is a complete no-op
/// (not even a clock read), which is how disabled observability stays
/// off the hot path.
class PhaseTimer {
 public:
  explicit PhaseTimer(Stopwatch* stopwatch) : stopwatch_(stopwatch) {
    if (stopwatch_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  explicit PhaseTimer(Stopwatch& stopwatch) : PhaseTimer(&stopwatch) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() { Stop(); }

  /// Record the elapsed time now instead of at scope exit.  Idempotent;
  /// returns the recorded seconds (0 when disabled or already stopped).
  double Stop() noexcept {
    if (stopwatch_ == nullptr) return 0.0;
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    ++stopwatch_->calls;
    stopwatch_->seconds += elapsed;
    stopwatch_ = nullptr;
    return elapsed;
  }

 private:
  Stopwatch* stopwatch_;
  std::chrono::steady_clock::time_point start_;
};

/// Plain-data image of one histogram for snapshots and JSON.
struct HistogramData {
  double low = 0.0;
  double high = 1.0;
  std::vector<std::uint64_t> counts;  ///< one entry per bin
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t nan = 0;
  std::uint64_t total = 0;
  double sum = 0.0;

  /// Binwise merge; shapes must match (throws InvalidArgument).
  void MergeFrom(const HistogramData& other);
};

/// Plain-data image of a whole registry: what a replication reports and
/// what merges across replications.  Maps are sorted by metric name, so
/// iteration (and the JSON rendering) is deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;  ///< merge: sum
  std::map<std::string, double> gauges;           ///< merge: max (high-water)
  std::map<std::string, double> sums;             ///< merge: sum (sim-time)
  std::map<std::string, HistogramData> histograms;  ///< merge: binwise sum
  /// Wall-clock sections — machine-dependent, excluded from determinism
  /// guarantees (see file comment).
  std::map<std::string, Stopwatch> timings;            ///< merge: sum
  std::map<std::string, HistogramData> timing_histograms;  ///< binwise sum

  bool Empty() const noexcept;

  /// Merge `other` into this snapshot under the per-kind rules above.
  /// Deterministic given a deterministic merge order (callers merge in
  /// replication order).
  void MergeFrom(const MetricsSnapshot& other);

  /// Emit the snapshot's sections as members of the currently open JSON
  /// object: "counters", "gauges", "sums", "histograms" always, plus
  /// "timings" and "timing_histograms" when `include_timings`.
  void WriteJson(util::JsonWriter& writer, bool include_timings = true) const;

  /// Whole snapshot as one JSON document.  With include_timings = false
  /// the result is byte-identical across thread counts and machines for
  /// a fixed (scenario, seed) — the property the determinism tests pin.
  std::string ToJson(int indent = 2, bool include_timings = true) const;
};

/// One replication's live metrics store.  Accessors create-on-first-use
/// and return stable handles (std::map nodes never move), so hot paths
/// resolve a name once and then record through a raw pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Monotonic counter (merge: sum).
  std::uint64_t* Counter(const std::string& name);
  /// High-water / level gauge (merge: max).
  double* Gauge(const std::string& name);
  /// Keep `name` at max(current, value) — the high-water idiom.
  void GaugeMax(const std::string& name, double value);
  /// Deterministic double accumulator, e.g. simulated seconds (merge: sum).
  double* Sum(const std::string& name);
  /// Wall-clock stopwatch (merge: sum; reported under "timings").
  Stopwatch* Timing(const std::string& name);
  /// Value-domain histogram with clamped edges (merge: binwise sum).
  /// Repeated calls with the same name must agree on the shape.
  util::Histogram* Hist(const std::string& name, double low, double high,
                        std::size_t bins);
  /// Wall-clock histogram (reported under "timing_histograms").
  util::Histogram* TimingHist(const std::string& name, double low, double high,
                              std::size_t bins);

  bool Empty() const noexcept;

  /// Plain-data copy for reports and merging.
  MetricsSnapshot Snapshot() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, double> sums_;
  std::map<std::string, Stopwatch> timings_;
  std::map<std::string, util::Histogram> histograms_;
  std::map<std::string, util::Histogram> timing_histograms_;
};

}  // namespace wsn::obs
