#include "obs/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/json.hpp"

namespace wsn::obs {

namespace {

/// util::Histogram -> plain snapshot data.
HistogramData ToData(const util::Histogram& h) {
  HistogramData d;
  d.low = h.Low();
  d.high = h.High();
  d.counts.reserve(h.Bins());
  for (std::size_t i = 0; i < h.Bins(); ++i) {
    d.counts.push_back(h.BinCount(i));
  }
  d.underflow = h.Underflow();
  d.overflow = h.Overflow();
  d.nan = h.Nan();
  d.total = h.TotalCount();
  d.sum = h.Sum();
  return d;
}

void WriteHistogram(util::JsonWriter& w, const HistogramData& d) {
  w.BeginObject();
  w.Key("low").Number(d.low);
  w.Key("high").Number(d.high);
  w.Key("total").UInt(d.total);
  w.Key("sum").Number(d.sum);
  w.Key("underflow").UInt(d.underflow);
  w.Key("overflow").UInt(d.overflow);
  w.Key("nan").UInt(d.nan);
  w.Key("counts").BeginArray();
  for (std::uint64_t c : d.counts) w.UInt(c);
  w.EndArray();
  w.EndObject();
}

void WriteHistogramMap(util::JsonWriter& w, const std::string& key,
                       const std::map<std::string, HistogramData>& m) {
  w.Key(key).BeginObject();
  for (const auto& [name, data] : m) {
    w.Key(name);
    WriteHistogram(w, data);
  }
  w.EndObject();
}

}  // namespace

void HistogramData::MergeFrom(const HistogramData& other) {
  util::Require(low == other.low && high == other.high &&
                    counts.size() == other.counts.size(),
                "cannot merge histogram snapshots with different shapes");
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  underflow += other.underflow;
  overflow += other.overflow;
  nan += other.nan;
  total += other.total;
  sum += other.sum;
}

bool MetricsSnapshot::Empty() const noexcept {
  return counters.empty() && gauges.empty() && sums.empty() &&
         histograms.empty() && timings.empty() && timing_histograms.empty();
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) {
    auto [it, inserted] = gauges.emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [name, value] : other.sums) sums[name] += value;
  for (const auto& [name, data] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, data);
    if (!inserted) it->second.MergeFrom(data);
  }
  for (const auto& [name, sw] : other.timings) timings[name].MergeFrom(sw);
  for (const auto& [name, data] : other.timing_histograms) {
    auto [it, inserted] = timing_histograms.emplace(name, data);
    if (!inserted) it->second.MergeFrom(data);
  }
}

void MetricsSnapshot::WriteJson(util::JsonWriter& w,
                                bool include_timings) const {
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) w.Key(name).UInt(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) w.Key(name).Number(value);
  w.EndObject();
  w.Key("sums").BeginObject();
  for (const auto& [name, value] : sums) w.Key(name).Number(value);
  w.EndObject();
  WriteHistogramMap(w, "histograms", histograms);
  if (!include_timings) return;
  w.Key("timings").BeginObject();
  for (const auto& [name, sw] : timings) {
    w.Key(name).BeginObject();
    w.Key("calls").UInt(sw.calls);
    w.Key("seconds").Number(sw.seconds);
    w.EndObject();
  }
  w.EndObject();
  WriteHistogramMap(w, "timing_histograms", timing_histograms);
}

std::string MetricsSnapshot::ToJson(int indent, bool include_timings) const {
  util::JsonWriter w(indent);
  w.BeginObject();
  WriteJson(w, include_timings);
  w.EndObject();
  return w.Str();
}

std::uint64_t* MetricsRegistry::Counter(const std::string& name) {
  return &counters_[name];
}

double* MetricsRegistry::Gauge(const std::string& name) {
  return &gauges_[name];
}

void MetricsRegistry::GaugeMax(const std::string& name, double value) {
  double* g = Gauge(name);
  *g = std::max(*g, value);
}

double* MetricsRegistry::Sum(const std::string& name) { return &sums_[name]; }

Stopwatch* MetricsRegistry::Timing(const std::string& name) {
  return &timings_[name];
}

util::Histogram* MetricsRegistry::Hist(const std::string& name, double low,
                                       double high, std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, util::Histogram(low, high, bins,
                                            util::HistogramEdgePolicy::kClamp))
             .first;
  } else {
    util::Require(it->second.Low() == low && it->second.High() == high &&
                      it->second.Bins() == bins,
                  "metrics histogram re-registered with a different shape");
  }
  return &it->second;
}

util::Histogram* MetricsRegistry::TimingHist(const std::string& name,
                                             double low, double high,
                                             std::size_t bins) {
  auto it = timing_histograms_.find(name);
  if (it == timing_histograms_.end()) {
    it = timing_histograms_
             .emplace(name, util::Histogram(low, high, bins,
                                            util::HistogramEdgePolicy::kClamp))
             .first;
  } else {
    util::Require(it->second.Low() == low && it->second.High() == high &&
                      it->second.Bins() == bins,
                  "metrics histogram re-registered with a different shape");
  }
  return &it->second;
}

bool MetricsRegistry::Empty() const noexcept {
  return counters_.empty() && gauges_.empty() && sums_.empty() &&
         timings_.empty() && histograms_.empty() && timing_histograms_.empty();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot s;
  s.counters = counters_;
  s.gauges = gauges_;
  s.sums = sums_;
  s.timings = timings_;
  for (const auto& [name, hist] : histograms_) {
    s.histograms.emplace(name, ToData(hist));
  }
  for (const auto& [name, hist] : timing_histograms_) {
    s.timing_histograms.emplace(name, ToData(hist));
  }
  return s;
}

}  // namespace wsn::obs
