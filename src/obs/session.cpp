#include "obs/session.hpp"

#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace wsn::obs {

Session::Session(SessionOptions options) : options_(std::move(options)) {
  options_.trace.enabled = TraceEnabled();
  if (options_.trace.enabled) options_.trace.Validate();
  // Fail on an unwritable destination before the scenario runs, not
  // after a long sweep has produced the data to write.
  if (MetricsEnabled()) {
    util::RequireWritableDir(options_.metrics_path, "--metrics");
  }
  if (TraceEnabled()) util::RequireWritableDir(options_.trace_path, "--trace");
}

ObsConfig Session::MakeConfig() const {
  ObsConfig config;
  config.metrics = MetricsEnabled();
  config.trace = options_.trace;
  return config;
}

void Session::Contribute(const MetricsSnapshot& snapshot,
                         const std::string& trace) {
  merged_.MergeFrom(snapshot);
  trace_ += trace;
}

std::string Session::MetricsJson() const {
  util::JsonWriter w(2);
  w.BeginObject();
  w.Key("schema").String("wsn-metrics-v1");
  merged_.WriteJson(w, /*include_timings=*/options_.metrics_timings);
  w.EndObject();
  return w.Str();
}

void Session::WriteFiles() const {
  // Atomic (tmp + fsync + rename): a crash mid-write never leaves a
  // truncated half-JSON artifact behind.
  if (MetricsEnabled()) {
    util::AtomicWriteFile(options_.metrics_path, MetricsJson() + "\n");
  }
  if (TraceEnabled()) util::AtomicWriteFile(options_.trace_path, trace_);
}

}  // namespace wsn::obs
