#include "obs/session.hpp"

#include <fstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace wsn::obs {

namespace {

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::Error("cannot open output file: " + path);
  out << content;
  out.flush();
  if (!out) throw util::Error("failed writing output file: " + path);
}

}  // namespace

Session::Session(SessionOptions options) : options_(std::move(options)) {
  options_.trace.enabled = TraceEnabled();
  if (options_.trace.enabled) options_.trace.Validate();
}

ObsConfig Session::MakeConfig() const {
  ObsConfig config;
  config.metrics = MetricsEnabled();
  config.trace = options_.trace;
  return config;
}

void Session::Contribute(const MetricsSnapshot& snapshot,
                         const std::string& trace) {
  merged_.MergeFrom(snapshot);
  trace_ += trace;
}

std::string Session::MetricsJson() const {
  util::JsonWriter w(2);
  w.BeginObject();
  w.Key("schema").String("wsn-metrics-v1");
  merged_.WriteJson(w, /*include_timings=*/options_.metrics_timings);
  w.EndObject();
  return w.Str();
}

void Session::WriteFiles() const {
  if (MetricsEnabled()) WriteFile(options_.metrics_path, MetricsJson() + "\n");
  if (TraceEnabled()) WriteFile(options_.trace_path, trace_);
}

}  // namespace wsn::obs
