/// \file
/// Opt-in structured packet-lifecycle trace sink (the generalization of
/// the kernel's test-only des::StateTrace): every accepted event becomes
/// one JSONL line with simulated time, node, event kind and optional
/// packet identity / drop cause.  Filtering by node set and time window
/// keeps traces of large runs tractable, and a hard line cap bounds
/// memory; when the cap trips the sink flags truncation instead of
/// growing without bound.
///
/// Determinism: each replication owns one sink (no sharing across
/// threads) and stamps its replication index into every line; the
/// summary layer concatenates the per-replication buffers in replication
/// order, so the final trace file is byte-identical across `--threads`
/// (pinned by tests/test_obs_trace.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace wsn::obs {

/// What to trace.  `enabled` off (the default) means no sink is ever
/// constructed and the instrumentation sites reduce to a null check.
struct TraceConfig {
  bool enabled = false;

  /// Only events at these node indices (sorted or not; empty = all).
  std::vector<std::size_t> nodes;

  /// Only events with from_s <= t < until_s.
  double from_s = 0.0;
  double until_s = std::numeric_limits<double>::infinity();

  /// Hard cap on recorded lines per replication; the sink drops further
  /// events and reports Truncated() once reached.
  std::uint64_t max_events = 1'000'000;

  /// Replication index stamped into every line ("rep").  Set by the
  /// replication runner, not by users.
  std::uint32_t replication = 0;

  /// Throws util::InvalidArgument on an empty time window or zero cap.
  void Validate() const;
};

/// One packet-lifecycle event.  `event` and `cause` must point at
/// string literals (the sink renders immediately, but keeping the
/// contract static avoids accidental dangling).
struct TraceEvent {
  double t = 0.0;            ///< simulated time
  const char* event = "";    ///< "gen", "enqueue", "tx", "rx", "deliver", "drop"
  std::size_t node = 0;      ///< node the event happened at
  std::uint64_t packet = 0;  ///< packet id (valid when has_packet)
  bool has_packet = false;
  std::size_t source = 0;  ///< originating node (valid when has_source)
  bool has_source = false;
  std::uint32_t payload = 0;  ///< application samples carried
  bool has_payload = false;
  const char* cause = nullptr;  ///< drop cause name, drop events only
};

/// Per-replication JSONL buffer.  Single-threaded by construction (one
/// sink per NetworkSimulator); see the file comment for how buffers
/// combine deterministically.
class TraceSink {
 public:
  explicit TraceSink(TraceConfig config);

  /// Is an event at (t, node) within the configured window and node
  /// set?  (Filter only — the line cap is Record's business.)
  bool Accepts(double t, std::size_t node) const noexcept;

  /// Append one line if the event passes the filters; once the line cap
  /// is reached further passing events are dropped and Truncated()
  /// turns true.
  void Record(const TraceEvent& event);

  std::uint64_t Events() const noexcept { return events_; }
  bool Truncated() const noexcept { return truncated_; }

  /// The JSONL buffer (one '\n'-terminated object per recorded event).
  const std::string& Text() const noexcept { return text_; }
  /// Move the buffer out (for the replication summary).
  std::string TakeText() noexcept { return std::move(text_); }

 private:
  TraceConfig config_;
  std::vector<std::size_t> nodes_;  ///< sorted copy of config_.nodes
  std::string text_;
  std::uint64_t events_ = 0;
  bool truncated_ = false;
};

/// The observability switches a simulation run consumes, carried inside
/// NetSimConfig.  Both default off, preserving the zero-overhead path.
struct ObsConfig {
  /// Collect a per-replication MetricsRegistry and attach its snapshot
  /// to the report.
  bool metrics = false;
  /// Packet-lifecycle tracing (enabled + filters).
  TraceConfig trace;

  bool Enabled() const noexcept { return metrics || trace.enabled; }
};

}  // namespace wsn::obs
