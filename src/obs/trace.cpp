#include "obs/trace.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/json.hpp"

namespace wsn::obs {

void TraceConfig::Validate() const {
  util::Require(until_s > from_s, "trace window must be non-empty");
  util::Require(max_events >= 1, "trace event cap must be at least 1");
}

TraceSink::TraceSink(TraceConfig config) : config_(std::move(config)) {
  config_.Validate();
  nodes_ = config_.nodes;
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
}

bool TraceSink::Accepts(double t, std::size_t node) const noexcept {
  if (t < config_.from_s || t >= config_.until_s) return false;
  if (!nodes_.empty() &&
      !std::binary_search(nodes_.begin(), nodes_.end(), node)) {
    return false;
  }
  return true;
}

void TraceSink::Record(const TraceEvent& event) {
  if (!Accepts(event.t, event.node)) return;
  if (events_ >= config_.max_events) {
    truncated_ = true;
    return;
  }
  ++events_;
  text_ += "{\"rep\":";
  text_ += std::to_string(config_.replication);
  text_ += ",\"t\":";
  text_ += util::JsonNumber(event.t);
  text_ += ",\"ev\":\"";
  text_ += event.event;  // literal event kinds need no escaping
  text_ += "\",\"node\":";
  text_ += std::to_string(event.node);
  if (event.has_packet) {
    text_ += ",\"pkt\":";
    text_ += std::to_string(event.packet);
  }
  if (event.has_source) {
    text_ += ",\"src\":";
    text_ += std::to_string(event.source);
  }
  if (event.has_payload) {
    text_ += ",\"payload\":";
    text_ += std::to_string(event.payload);
  }
  if (event.cause != nullptr) {
    text_ += ",\"cause\":\"";
    text_ += util::JsonEscape(event.cause);
    text_ += "\"";
  }
  text_ += "}\n";
}

}  // namespace wsn::obs
