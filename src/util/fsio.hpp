/// \file
/// Crash-safe file output helpers for everything the driver writes
/// (--metrics, --trace, fuzz repro dumps; the run journal has its own
/// append+fsync discipline in scenario/harness.cpp).
///
/// Policy: artifacts are written to `PATH.tmp`, fsync'd, then renamed
/// over `PATH`, so a crash at any instant leaves either the previous
/// complete file or the new complete file — never a truncated JSON
/// document.  Output directories are validated up front with an error
/// naming the flag, so a bad --metrics path fails before a multi-hour
/// sweep runs instead of after it.
#pragma once

#include <string>

namespace wsn::util {

/// Throw InvalidArgument("<what>: output directory '...' ...") unless
/// the directory that `path` will be created in exists and is writable.
/// `what` names the flag for the error message (e.g. "--metrics").
void RequireWritableDir(const std::string& path, const std::string& what);

/// Write `content` to `path` atomically: `path`.tmp + fsync + rename.
/// Throws util::Error naming `path` on any I/O failure (the temp file
/// is removed on the failure path).
void AtomicWriteFile(const std::string& path, const std::string& content);

}  // namespace wsn::util
