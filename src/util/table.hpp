// ASCII table / CSV emitters used by the benchmark harness so every
// reproduced table and figure prints in a uniform, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wsn::util {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  void AddNumericRow(const std::vector<double>& cells, int precision = 4);

  std::size_t Rows() const noexcept { return rows_.size(); }

  /// Render with a rule under the header, columns right-padded.
  std::string Render() const;

  /// Render as CSV (RFC-4180: cells containing commas, quotes or line
  /// breaks are quoted, embedded quotes doubled).
  std::string RenderCsv() const;

  /// Write Render() to `os`.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` fixed digits.
std::string FormatFixed(double v, int precision);

/// Format "mean +- hw" for confidence-interval cells.
std::string FormatInterval(double mean, double half_width, int precision = 4);

}  // namespace wsn::util
