#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace wsn::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  Require(!headers_.empty(), "table needs at least one column");
}

void TextTable::AddRow(std::vector<std::string> cells) {
  Require(cells.size() == headers_.size(),
          "row arity does not match header arity");
  rows_.push_back(std::move(cells));
}

void TextTable::AddNumericRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(FormatFixed(v, precision));
  AddRow(std::move(formatted));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total >= 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::RenderCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << quote(row[c]);
      if (c + 1 < row.size()) os << ",";
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.Render();
}

std::string FormatFixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string FormatInterval(double mean, double half_width, int precision) {
  return FormatFixed(mean, precision) + " +- " +
         FormatFixed(half_width, precision);
}

}  // namespace wsn::util
