// Error types shared by all wsn libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace wsn::util {

/// Base class for all errors thrown by this project.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user-provided parameters are outside their legal domain
/// (negative rates, empty nets, mismatched dimensions, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge or produces a
/// result outside its guaranteed tolerance.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Thrown when a model/state-space operation cannot proceed (unbounded
/// net during reachability, non-ergodic chain, ...).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Require `cond`; otherwise throw InvalidArgument with `msg`.
inline void Require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

/// Literal-message overload: the std::string (and for messages past the
/// SSO limit, its heap allocation) is only materialized on failure.
/// Without this, every Require on a hot path paid string construction
/// even when the condition held — measurable at DES-kernel event rates.
inline void Require(bool cond, const char* msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace wsn::util
