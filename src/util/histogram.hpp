// Fixed-bin histogram for distribution diagnostics (latency distributions,
// goodness-of-fit tests in the RNG test suite, workload validation).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wsn::util {

/// Equal-width histogram over [low, high) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double low, double high, std::size_t bins);

  void Add(double x) noexcept;

  std::size_t TotalCount() const noexcept { return total_; }
  std::size_t BinCount(std::size_t i) const;
  std::size_t Underflow() const noexcept { return underflow_; }
  std::size_t Overflow() const noexcept { return overflow_; }
  std::size_t Bins() const noexcept { return counts_.size(); }
  double BinLow(std::size_t i) const;
  double BinHigh(std::size_t i) const;
  double BinWidth() const noexcept { return width_; }

  /// Empirical density of bin i (count / (total * width)).
  double Density(std::size_t i) const;

  /// Pearson chi-square statistic against expected bin probabilities
  /// `expected` (same length as Bins(); must sum to ~1; under/overflow
  /// are folded into the first/last bin).
  double ChiSquare(const std::vector<double>& expected) const;

  /// ASCII sparkline-style rendering, for example programs.
  std::string Render(std::size_t max_width = 50) const;

 private:
  double low_;
  double high_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace wsn::util
