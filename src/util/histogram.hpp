// Fixed-bin histogram for distribution diagnostics (latency distributions,
// goodness-of-fit tests in the RNG test suite, workload validation) and
// the obs metrics layer's fixed-bucket latency/size histograms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wsn::util {

/// What Add does with a sample outside [low, high).
///
/// Out-of-range policy (pinned by tests/test_histogram.cpp):
///   * kOverflowBins — the historical behavior: the sample lands in a
///     dedicated underflow/overflow side bin and no interior bin moves;
///   * kClamp       — the sample is folded into the first/last interior
///     bin, so a fixed-range histogram never silently parks tail mass in
///     an unplotted side bin (the policy the obs metrics histograms use).
/// NaN samples are never binned under either policy: they increment the
/// dedicated Nan() counter (and TotalCount()) instead — previously a NaN
/// fell through both range checks into an undefined float->size_t cast.
enum class HistogramEdgePolicy {
  kOverflowBins,  ///< out-of-range samples go to Underflow()/Overflow()
  kClamp,         ///< out-of-range samples clamp into the edge bins
};

/// Equal-width histogram over [low, high) with overflow/underflow bins
/// (or edge clamping — see HistogramEdgePolicy).
class Histogram {
 public:
  Histogram(double low, double high, std::size_t bins,
            HistogramEdgePolicy policy = HistogramEdgePolicy::kOverflowBins);

  void Add(double x) noexcept;

  std::size_t TotalCount() const noexcept { return total_; }
  std::size_t BinCount(std::size_t i) const;
  std::size_t Underflow() const noexcept { return underflow_; }
  std::size_t Overflow() const noexcept { return overflow_; }
  /// NaN samples seen (counted in TotalCount, never binned).
  std::size_t Nan() const noexcept { return nan_; }
  std::size_t Bins() const noexcept { return counts_.size(); }
  double BinLow(std::size_t i) const;
  double BinHigh(std::size_t i) const;
  double BinWidth() const noexcept { return width_; }
  double Low() const noexcept { return low_; }
  double High() const noexcept { return high_; }
  HistogramEdgePolicy Policy() const noexcept { return policy_; }

  /// Sum of every finite sample added (including out-of-range ones) —
  /// lets consumers report a mean next to the bucketed shape.
  double Sum() const noexcept { return sum_; }

  /// Empirical density of bin i (count / (total * width)).
  double Density(std::size_t i) const;

  /// Pearson chi-square statistic against expected bin probabilities
  /// `expected` (same length as Bins(); must sum to ~1; under/overflow
  /// are folded into the first/last bin).
  double ChiSquare(const std::vector<double>& expected) const;

  /// Fold `other` into this histogram, bin by bin.  Both histograms must
  /// have identical range, bin count and edge policy (throws
  /// InvalidArgument otherwise) — the deterministic merge the obs layer
  /// uses to combine per-replication histograms.
  void Merge(const Histogram& other);

  /// ASCII sparkline-style rendering, for example programs.
  std::string Render(std::size_t max_width = 50) const;

 private:
  double low_;
  double high_;
  double width_;
  HistogramEdgePolicy policy_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t nan_ = 0;
  std::size_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace wsn::util
