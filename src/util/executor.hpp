// ParallelExecutor: the one fan-out primitive behind every sweep and
// replication grid in this project.
//
// Any experiment that evaluates N independent jobs — analytic sweep
// points (core::SweepPowerDownThreshold), packet-level replications
// (netsim::RunReplications), scenario grids — maps them through an
// executor.  The contract that makes results bit-reproducible:
//
//   * job i's result lands at index i of the output vector, regardless
//     of which thread ran it or when it finished;
//   * randomness comes only from the jump-separated stream handed to
//     job i (MapSeeded), which depends on (seed, i) alone — never on
//     thread identity or scheduling;
//   * if several jobs throw, the exception from the *lowest* index is
//     rethrown after all jobs finish, so failures are deterministic too.
//
// An executor either owns its pool (threads = 0 -> hardware concurrency,
// 1 -> strictly serial, no pool at all) or borrows a caller-managed one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wsn::util {

class ParallelExecutor {
 public:
  /// Own a pool of `threads` workers (0 = hardware concurrency).
  /// `threads == 1` runs jobs inline on the calling thread.
  explicit ParallelExecutor(std::size_t threads = 0);

  /// Borrow `pool` (not owned; must outlive the executor).
  explicit ParallelExecutor(ThreadPool& pool);

  /// Worker count (1 when serial).
  std::size_t ThreadCount() const noexcept;

  bool Serial() const noexcept { return pool_ == nullptr; }

  /// Run fn(i) for i in [0, n); results in index order.  R must be
  /// default-constructible and movable.
  template <typename Fn>
  auto Map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_same_v<R, bool>,
                  "Map cannot return bool: std::vector<bool> packs bits, so "
                  "concurrent per-index writes would race; return char/int");
    std::vector<R> results(n);
    RunIndexed(n, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  /// Run fn(i, rng_i) where rng_i is the i-th jump-separated stream of
  /// `seed` — the project-wide recipe for reproducible replications.
  template <typename Fn>
  auto MapSeeded(std::size_t n, std::uint64_t seed, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t, Rng>> {
    const Rng master(seed);
    return Map(n, [&](std::size_t i) { return fn(i, master.MakeStream(i)); });
  }

  /// Run fn(i) for side effects; same ordering/failure guarantees.
  void RunIndexed(std::size_t n,
                  const std::function<void(std::size_t)>& fn) const;

 private:
  ThreadPool* pool_ = nullptr;          ///< null when serial
  std::unique_ptr<ThreadPool> owned_;
};

}  // namespace wsn::util
