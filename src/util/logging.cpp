#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace wsn::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept { g_level.store(level); }

LogLevel GetLogLevel() noexcept { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard lock(g_mutex);
  std::clog << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace wsn::util
