#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "util/error.hpp"

namespace wsn::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept { g_level.store(level); }

LogLevel GetLogLevel() noexcept { return g_level.load(); }

const char* LogLevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel ParseLogLevel(const std::string& name) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    if (name == LogLevelName(level)) return level;
  }
  throw InvalidArgument("unknown log level '" + name +
                        "' (expected debug, info, warn, error or off)");
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard lock(g_mutex);
  std::clog << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace wsn::util
