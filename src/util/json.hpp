// Minimal JSON writer — just enough for the scenario engine's structured
// result sink (BENCH_*.json artifacts, CI consumption).  Streaming, no
// DOM: the caller opens objects/arrays and emits members in order, and
// the writer handles commas, indentation and string escaping.
//
// Policy decisions (pinned by tests/test_json_writer.cpp):
//   * strings are escaped per RFC 8259: `"`, `\`, and control characters
//     below 0x20 (as \uXXXX except the common \b \f \n \r \t); all other
//     bytes pass through untouched, so UTF-8 payloads survive round-trip;
//   * NaN and +-Inf have no JSON representation and serialize as `null`
//     (consumers must treat a null metric as "not observed");
//   * finite doubles render with up to 17 significant digits ("%.17g"),
//     enough to round-trip; integral values within 2^53 render without
//     an exponent or trailing ".0" so seeds and counts stay readable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wsn::util {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

/// Render a double per the policy above (`null` for NaN/Inf).
std::string JsonNumber(double v);

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 renders compact single-line.
  explicit JsonWriter(int indent = 2);

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Member key inside an object; must be followed by exactly one value.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document so far.  Valid once every container has been closed.
  const std::string& Str() const noexcept { return out_; }

 private:
  void BeforeValue();
  void NewlineIndent();

  std::string out_;
  int indent_;
  /// One entry per open container: true once it has at least one element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace wsn::util
