// Minimal JSON writer and its strict reader counterpart — the writer
// feeds the scenario engine's structured result sink (BENCH_*.json
// artifacts, CI consumption), the reader feeds the declarative scenario
// spec layer (`wsnctl run --file`).
//
// Writer policy decisions (pinned by tests/test_json_writer.cpp):
//   * strings are escaped per RFC 8259: `"`, `\`, and control characters
//     below 0x20 (as \uXXXX except the common \b \f \n \r \t); all other
//     bytes pass through untouched, so UTF-8 payloads survive round-trip;
//   * NaN and +-Inf have no JSON representation and serialize as `null`
//     (consumers must treat a null metric as "not observed");
//   * finite doubles render with up to 17 significant digits ("%.17g"),
//     enough to round-trip; integral values within 2^53 render without
//     an exponent or trailing ".0" so seeds and counts stay readable.
//
// Reader policy decisions (pinned by tests/test_json_reader.cpp):
//   * strict RFC 8259 grammar: no comments, no trailing commas, no
//     single quotes, no leading zeros or bare `.5`/`1.` numbers;
//   * duplicate object keys are rejected (a config file where the last
//     key silently wins is a debugging trap), naming the key and path;
//   * `NaN`/`Infinity` tokens are rejected with a named error pointing
//     at the writer's null convention — the round trip is
//     NaN -> (writer) null -> (reader) a null JsonValue;
//   * numbers whose magnitude overflows double are rejected (silent
//     +inf from strtod would re-introduce the non-finite values the
//     writer just refused to emit); denormal underflow to 0 is allowed;
//   * nesting is capped (default 64 levels) so a pathological file
//     fails with a named error instead of exhausting the stack;
//   * every error names its line, column and JSON path ("$.a.b[2]").
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wsn::util {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

/// Render a double per the policy above (`null` for NaN/Inf).
std::string JsonNumber(double v);

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 renders compact single-line.
  explicit JsonWriter(int indent = 2);

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Member key inside an object; must be followed by exactly one value.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document so far.  Valid once every container has been closed.
  const std::string& Str() const noexcept { return out_; }

 private:
  void BeforeValue();
  void NewlineIndent();

  std::string out_;
  int indent_;
  /// One entry per open container: true once it has at least one element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Parsed JSON document node.  Objects preserve insertion order (so a
/// re-serialized spec diffs cleanly against its source) and are stored
/// as a flat key/value vector — config files are small and order
/// matters more than lookup speed.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> v);
  static JsonValue MakeObject(std::vector<Member> v);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Accessors assume the matching kind; call sites validate first
  /// (the spec layer wraps them in typed, path-qualified errors).
  bool AsBool() const noexcept { return bool_; }
  double AsNumber() const noexcept { return number_; }
  const std::string& AsString() const noexcept { return string_; }
  const std::vector<JsonValue>& Items() const noexcept { return items_; }
  const std::vector<Member>& Members() const noexcept { return members_; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const noexcept;

  /// One human-readable word per kind ("number", "object", ...) for
  /// error messages.
  static const char* KindName(Kind kind) noexcept;
  const char* TypeName() const noexcept { return KindName(kind_); }

  friend bool operator==(const JsonValue& a, const JsonValue& b);
  friend bool operator!=(const JsonValue& a, const JsonValue& b) {
    return !(a == b);
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

struct JsonReaderOptions {
  /// Maximum container nesting before the parser refuses the document.
  int max_depth = 64;
};

/// Parse a complete JSON document per the reader policy above.  Throws
/// util::InvalidArgument with messages of the form
///   json: <what> at line L column C (at $.path)
/// on any violation (syntax error, duplicate key, trailing garbage,
/// NaN/Infinity token, number overflow, nesting deeper than
/// `options.max_depth`).
JsonValue ParseJson(const std::string& text,
                    const JsonReaderOptions& options = {});

}  // namespace wsn::util
