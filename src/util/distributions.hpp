// Delay distributions used by timed transitions (Petri nets), service and
// inter-arrival processes (DES), and phase-type approximations (Markov).
//
// A Distribution is a small value type (copyable, cheap) describing a
// non-negative random delay.  Sampling is explicit through Sample(rng) so
// the simulators control their own generators and streams.
#pragma once

#include <cmath>
#include <string>
#include <variant>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace wsn::util {

/// Exponential with rate `rate` (mean 1/rate).
struct Exponential {
  double rate;
};

/// Point mass at `value` (>= 0).  Used for the paper's Power Down Threshold
/// and Power Up Delay transitions.
struct Deterministic {
  double value;
};

/// Uniform on [low, high].
struct Uniform {
  double low;
  double high;
};

/// Erlang-k: sum of k iid Exponential(rate) phases; mean k/rate.
/// This is the method-of-stages building block for approximating
/// deterministic delays inside Markov chains.
struct Erlang {
  int k;
  double rate;
};

/// Weibull with shape `k` and scale `lambda`; mean lambda*Gamma(1+1/k).
struct Weibull {
  double shape;
  double scale;
};

/// Log-normal: exp(N(mu, sigma^2)).
struct LogNormal {
  double mu;
  double sigma;
};

/// Hyper-exponential: with probability p[i], Exponential(rate[i]).
/// Captures high-variance (CV > 1) service processes.
struct HyperExponential {
  std::vector<double> probabilities;
  std::vector<double> rates;
};

/// Tagged union of supported delay distributions.
class Distribution {
 public:
  using Variant = std::variant<Exponential, Deterministic, Uniform, Erlang,
                               Weibull, LogNormal, HyperExponential>;

  Distribution(Exponential d);        // NOLINT(google-explicit-constructor)
  Distribution(Deterministic d);      // NOLINT(google-explicit-constructor)
  Distribution(Uniform d);            // NOLINT(google-explicit-constructor)
  Distribution(Erlang d);             // NOLINT(google-explicit-constructor)
  Distribution(Weibull d);            // NOLINT(google-explicit-constructor)
  Distribution(LogNormal d);          // NOLINT(google-explicit-constructor)
  Distribution(HyperExponential d);   // NOLINT(google-explicit-constructor)

  /// Draw one variate.
  double Sample(Rng& rng) const;

  /// Analytical mean.
  double Mean() const;

  /// Analytical variance.
  double Variance() const;

  /// Squared coefficient of variation: Var/Mean^2 (0 for Deterministic,
  /// 1 for Exponential).
  double Scv() const;

  /// True iff the distribution is memoryless (Exponential).
  bool IsMemoryless() const noexcept {
    return std::holds_alternative<Exponential>(v_);
  }

  /// True iff the distribution is a point mass (Deterministic).
  bool IsDeterministic() const noexcept {
    return std::holds_alternative<Deterministic>(v_);
  }

  /// Human-readable description, e.g. "Exp(rate=2)".
  std::string Describe() const;

  const Variant& AsVariant() const noexcept { return v_; }

 private:
  Variant v_;
};

/// Sample a standard normal via Box–Muller (the cached-pair trick is
/// deliberately avoided: samplers must be stateless for reproducibility).
double SampleStandardNormal(Rng& rng);

/// Sample Exponential(rate) by inversion.
inline double SampleExponential(Rng& rng, double rate) {
  return -std::log(UniformDoubleOpenLow(rng)) / rate;
}

}  // namespace wsn::util
