#include "util/distributions.hpp"

#include <numbers>
#include <sstream>

namespace wsn::util {
namespace {

void CheckPositive(double x, const char* what) {
  Require(x > 0.0 && std::isfinite(x), std::string(what) + " must be positive");
}

void CheckNonNegative(double x, const char* what) {
  Require(x >= 0.0 && std::isfinite(x),
          std::string(what) + " must be non-negative");
}

double GammaOnePlusInverse(double k) {
  // Gamma(1 + 1/k) via lgamma.
  return std::exp(std::lgamma(1.0 + 1.0 / k));
}

}  // namespace

Distribution::Distribution(Exponential d) : v_(d) {
  CheckPositive(d.rate, "Exponential rate");
}

Distribution::Distribution(Deterministic d) : v_(d) {
  CheckNonNegative(d.value, "Deterministic value");
}

Distribution::Distribution(Uniform d) : v_(d) {
  Require(std::isfinite(d.low) && std::isfinite(d.high) && d.low <= d.high &&
              d.low >= 0.0,
          "Uniform bounds must satisfy 0 <= low <= high");
}

Distribution::Distribution(Erlang d) : v_(d) {
  Require(d.k >= 1, "Erlang k must be >= 1");
  CheckPositive(d.rate, "Erlang rate");
}

Distribution::Distribution(Weibull d) : v_(d) {
  CheckPositive(d.shape, "Weibull shape");
  CheckPositive(d.scale, "Weibull scale");
}

Distribution::Distribution(LogNormal d) : v_(d) {
  Require(std::isfinite(d.mu), "LogNormal mu must be finite");
  CheckPositive(d.sigma, "LogNormal sigma");
}

Distribution::Distribution(HyperExponential d) : v_(std::move(d)) {
  const auto& h = std::get<HyperExponential>(v_);
  Require(!h.probabilities.empty() &&
              h.probabilities.size() == h.rates.size(),
          "HyperExponential needs matching, non-empty prob/rate lists");
  double sum = 0.0;
  for (double p : h.probabilities) {
    Require(p >= 0.0, "HyperExponential probabilities must be >= 0");
    sum += p;
  }
  Require(std::abs(sum - 1.0) < 1e-9,
          "HyperExponential probabilities must sum to 1");
  for (double r : h.rates) CheckPositive(r, "HyperExponential rate");
}

double SampleStandardNormal(Rng& rng) {
  const double u1 = UniformDoubleOpenLow(rng);
  const double u2 = UniformDouble(rng);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Distribution::Sample(Rng& rng) const {
  return std::visit(
      [&rng](const auto& d) -> double {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          return SampleExponential(rng, d.rate);
        } else if constexpr (std::is_same_v<T, Deterministic>) {
          return d.value;
        } else if constexpr (std::is_same_v<T, Uniform>) {
          return d.low + (d.high - d.low) * UniformDouble(rng);
        } else if constexpr (std::is_same_v<T, Erlang>) {
          double sum = 0.0;
          for (int i = 0; i < d.k; ++i) sum += SampleExponential(rng, d.rate);
          return sum;
        } else if constexpr (std::is_same_v<T, Weibull>) {
          const double u = UniformDoubleOpenLow(rng);
          return d.scale * std::pow(-std::log(u), 1.0 / d.shape);
        } else if constexpr (std::is_same_v<T, LogNormal>) {
          return std::exp(d.mu + d.sigma * SampleStandardNormal(rng));
        } else {
          static_assert(std::is_same_v<T, HyperExponential>);
          double u = UniformDouble(rng);
          for (std::size_t i = 0; i < d.probabilities.size(); ++i) {
            if (u < d.probabilities[i] ||
                i + 1 == d.probabilities.size()) {
              return SampleExponential(rng, d.rates[i]);
            }
            u -= d.probabilities[i];
          }
          return SampleExponential(rng, d.rates.back());
        }
      },
      v_);
}

double Distribution::Mean() const {
  return std::visit(
      [](const auto& d) -> double {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          return 1.0 / d.rate;
        } else if constexpr (std::is_same_v<T, Deterministic>) {
          return d.value;
        } else if constexpr (std::is_same_v<T, Uniform>) {
          return 0.5 * (d.low + d.high);
        } else if constexpr (std::is_same_v<T, Erlang>) {
          return static_cast<double>(d.k) / d.rate;
        } else if constexpr (std::is_same_v<T, Weibull>) {
          return d.scale * GammaOnePlusInverse(d.shape);
        } else if constexpr (std::is_same_v<T, LogNormal>) {
          return std::exp(d.mu + 0.5 * d.sigma * d.sigma);
        } else {
          static_assert(std::is_same_v<T, HyperExponential>);
          double m = 0.0;
          for (std::size_t i = 0; i < d.rates.size(); ++i)
            m += d.probabilities[i] / d.rates[i];
          return m;
        }
      },
      v_);
}

double Distribution::Variance() const {
  return std::visit(
      [](const auto& d) -> double {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          return 1.0 / (d.rate * d.rate);
        } else if constexpr (std::is_same_v<T, Deterministic>) {
          return 0.0;
        } else if constexpr (std::is_same_v<T, Uniform>) {
          const double w = d.high - d.low;
          return w * w / 12.0;
        } else if constexpr (std::is_same_v<T, Erlang>) {
          return static_cast<double>(d.k) / (d.rate * d.rate);
        } else if constexpr (std::is_same_v<T, Weibull>) {
          const double g1 = std::exp(std::lgamma(1.0 + 1.0 / d.shape));
          const double g2 = std::exp(std::lgamma(1.0 + 2.0 / d.shape));
          return d.scale * d.scale * (g2 - g1 * g1);
        } else if constexpr (std::is_same_v<T, LogNormal>) {
          const double s2 = d.sigma * d.sigma;
          return (std::exp(s2) - 1.0) * std::exp(2.0 * d.mu + s2);
        } else {
          static_assert(std::is_same_v<T, HyperExponential>);
          // E[X^2] = sum p_i * 2/rate_i^2 for an exponential mixture.
          double m = 0.0, m2 = 0.0;
          for (std::size_t i = 0; i < d.rates.size(); ++i) {
            m += d.probabilities[i] / d.rates[i];
            m2 += d.probabilities[i] * 2.0 / (d.rates[i] * d.rates[i]);
          }
          return m2 - m * m;
        }
      },
      v_);
}

double Distribution::Scv() const {
  const double m = Mean();
  if (m == 0.0) return 0.0;
  return Variance() / (m * m);
}

std::string Distribution::Describe() const {
  std::ostringstream os;
  std::visit(
      [&os](const auto& d) {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Exponential>) {
          os << "Exp(rate=" << d.rate << ")";
        } else if constexpr (std::is_same_v<T, Deterministic>) {
          os << "Det(" << d.value << ")";
        } else if constexpr (std::is_same_v<T, Uniform>) {
          os << "Uniform[" << d.low << "," << d.high << "]";
        } else if constexpr (std::is_same_v<T, Erlang>) {
          os << "Erlang(k=" << d.k << ",rate=" << d.rate << ")";
        } else if constexpr (std::is_same_v<T, Weibull>) {
          os << "Weibull(shape=" << d.shape << ",scale=" << d.scale << ")";
        } else if constexpr (std::is_same_v<T, LogNormal>) {
          os << "LogNormal(mu=" << d.mu << ",sigma=" << d.sigma << ")";
        } else {
          static_assert(std::is_same_v<T, HyperExponential>);
          os << "HyperExp(k=" << d.rates.size() << ")";
        }
      },
      v_);
  return os.str();
}

}  // namespace wsn::util
