#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace wsn::util {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values within the double-exact range print as integers.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

JsonWriter::JsonWriter(int indent) : indent_(indent) {}

void JsonWriter::NewlineIndent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(static_cast<std::size_t>(indent_) * has_element_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (has_element_.empty()) return;
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  NewlineIndent();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  Require(!has_element_.empty(), "JsonWriter: no open container");
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) NewlineIndent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  Require(!has_element_.empty(), "JsonWriter: no open container");
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) NewlineIndent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  Require(!has_element_.empty(), "JsonWriter: key outside an object");
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  NewlineIndent();
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += indent_ > 0 ? "\": " : "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  out_ += JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace wsn::util
