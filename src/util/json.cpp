#include "util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/error.hpp"

namespace wsn::util {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values within the double-exact range print as integers.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

JsonWriter::JsonWriter(int indent) : indent_(indent) {}

void JsonWriter::NewlineIndent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(static_cast<std::size_t>(indent_) * has_element_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (has_element_.empty()) return;
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  NewlineIndent();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  Require(!has_element_.empty(), "JsonWriter: no open container");
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) NewlineIndent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  Require(!has_element_.empty(), "JsonWriter: no open container");
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) NewlineIndent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  Require(!has_element_.empty(), "JsonWriter: key outside an object");
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  NewlineIndent();
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += indent_ > 0 ? "\": " : "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  out_ += JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.items_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeObject(std::vector<Member> v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(v);
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const char* JsonValue::KindName(Kind kind) noexcept {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "bool";
    case Kind::kNumber:
      return "number";
    case Kind::kString:
      return "string";
    case Kind::kArray:
      return "array";
    case Kind::kObject:
      return "object";
  }
  return "unknown";
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return a.bool_ == b.bool_;
    case JsonValue::Kind::kNumber:
      return a.number_ == b.number_;
    case JsonValue::Kind::kString:
      return a.string_ == b.string_;
    case JsonValue::Kind::kArray:
      return a.items_ == b.items_;
    case JsonValue::Kind::kObject:
      return a.members_ == b.members_;
  }
  return false;
}

namespace {

/// Recursive-descent parser over the raw text.  Tracks line/column for
/// error positions and the member/index path for error context; both go
/// into every thrown message so a bad config file is a one-look fix.
class JsonParser {
 public:
  JsonParser(const std::string& text, const JsonReaderOptions& options)
      : text_(text), options_(options) {}

  JsonValue ParseDocument() {
    SkipWhitespace();
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing garbage after the document");
    }
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    std::string path = "$";
    for (const auto& step : path_) path += step;
    throw InvalidArgument("json: " + what + " at line " +
                          std::to_string(line_) + " column " +
                          std::to_string(Column()) + " (at " + path + ")");
  }

  std::size_t Column() const {
    // Columns are 1-based counts from the last newline before pos_.
    return pos_ - line_start_ + 1;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }

  char Next() {
    const char ch = text_[pos_++];
    if (ch == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return ch;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char ch = Peek();
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      Next();
    }
  }

  void Expect(char ch, const char* what) {
    if (AtEnd() || Peek() != ch) Fail(std::string("expected ") + what);
    Next();
  }

  bool ConsumeKeyword(const char* keyword) {
    std::size_t n = 0;
    while (keyword[n] != '\0') ++n;
    if (text_.compare(pos_, n, keyword) != 0) return false;
    for (std::size_t i = 0; i < n; ++i) Next();
    return true;
  }

  JsonValue ParseValue() {
    if (AtEnd()) Fail("unexpected end of input, expected a value");
    const char ch = Peek();
    switch (ch) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return JsonValue::MakeString(ParseString("string"));
      case 't':
        if (ConsumeKeyword("true")) return JsonValue::MakeBool(true);
        break;
      case 'f':
        if (ConsumeKeyword("false")) return JsonValue::MakeBool(false);
        break;
      case 'n':
        if (ConsumeKeyword("null")) return JsonValue::MakeNull();
        break;
      case 'N':
        if (ConsumeKeyword("NaN")) {
          Fail("NaN is not valid JSON (JsonWriter serializes it as null)");
        }
        break;
      case 'I':
        if (ConsumeKeyword("Infinity")) {
          Fail(
              "Infinity is not valid JSON (JsonWriter serializes it as null)");
        }
        break;
      default:
        if (ch == '-' || (ch >= '0' && ch <= '9')) return ParseNumber();
        break;
    }
    Fail(std::string("unexpected character '") + ch + "'");
  }

  JsonValue ParseObject() {
    EnterContainer();
    Next();  // '{'
    std::vector<JsonValue::Member> members;
    SkipWhitespace();
    if (Peek() == '}') {
      Next();
      LeaveContainer();
      return JsonValue::MakeObject(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') Fail("expected '\"' to start an object key");
      std::string key = ParseString("object key");
      for (const auto& member : members) {
        if (member.first == key) {
          Fail("duplicate object key '" + key + "'");
        }
      }
      path_.push_back("." + key);
      SkipWhitespace();
      Expect(':', "':' after object key");
      SkipWhitespace();
      JsonValue value = ParseValue();
      path_.pop_back();
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        Next();
        continue;
      }
      if (Peek() == '}') {
        Next();
        break;
      }
      Fail("expected ',' or '}' in object");
    }
    LeaveContainer();
    return JsonValue::MakeObject(std::move(members));
  }

  JsonValue ParseArray() {
    EnterContainer();
    Next();  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Peek() == ']') {
      Next();
      LeaveContainer();
      return JsonValue::MakeArray(std::move(items));
    }
    while (true) {
      SkipWhitespace();
      std::string step = "[";
      step += std::to_string(items.size());
      step += ']';
      path_.push_back(std::move(step));
      items.push_back(ParseValue());
      path_.pop_back();
      SkipWhitespace();
      if (Peek() == ',') {
        Next();
        continue;
      }
      if (Peek() == ']') {
        Next();
        break;
      }
      Fail("expected ',' or ']' in array");
    }
    LeaveContainer();
    return JsonValue::MakeArray(std::move(items));
  }

  void EnterContainer() {
    if (++depth_ > options_.max_depth) {
      Fail("nesting deeper than " + std::to_string(options_.max_depth) +
           " levels");
    }
  }

  void LeaveContainer() { --depth_; }

  std::string ParseString(const char* what) {
    Next();  // opening '"'
    std::string out;
    while (true) {
      if (AtEnd()) Fail(std::string("unterminated ") + what);
      const unsigned char ch = static_cast<unsigned char>(Next());
      if (ch == '"') return out;
      if (ch < 0x20) {
        char buf[48];
        std::snprintf(buf, sizeof(buf),
                      "unescaped control character 0x%02x in %s", ch, what);
        Fail(buf);
      }
      if (ch != '\\') {
        out += static_cast<char>(ch);
        continue;
      }
      if (AtEnd()) Fail(std::string("unterminated escape in ") + what);
      const char esc = Next();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          AppendUnicodeEscape(out, what);
          break;
        default:
          Fail(std::string("invalid escape '\\") + esc + "' in " + what);
      }
    }
  }

  unsigned ParseHex4(const char* what) {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) Fail(std::string("unterminated \\u escape in ") + what);
      const char ch = Next();
      code <<= 4;
      if (ch >= '0' && ch <= '9') {
        code |= static_cast<unsigned>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        code |= static_cast<unsigned>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        code |= static_cast<unsigned>(ch - 'A' + 10);
      } else {
        Fail(std::string("invalid hex digit '") + ch + "' in \\u escape");
      }
    }
    return code;
  }

  void AppendUnicodeEscape(std::string& out, const char* what) {
    unsigned code = ParseHex4(what);
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: must be followed by \uDC00..\uDFFF.
      if (AtEnd() || Peek() != '\\') {
        Fail("unpaired UTF-16 high surrogate in \\u escape");
      }
      Next();
      if (AtEnd() || Peek() != 'u') {
        Fail("unpaired UTF-16 high surrogate in \\u escape");
      }
      Next();
      const unsigned low = ParseHex4(what);
      if (low < 0xDC00 || low > 0xDFFF) {
        Fail("invalid UTF-16 low surrogate in \\u escape");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      Fail("unpaired UTF-16 low surrogate in \\u escape");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') Next();
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      Fail("expected a digit after '-'");
    }
    if (Peek() == '0') {
      Next();
      if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        Fail("leading zeros are not allowed in numbers");
      }
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') Next();
    }
    if (!AtEnd() && Peek() == '.') {
      Next();
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        Fail("expected a digit after the decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') Next();
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      Next();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Next();
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        Fail("expected a digit in the exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') Next();
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) {
      Fail("number '" + token + "' overflows double");
    }
    // strtod sets ERANGE both for overflow (caught above) and for
    // denormal underflow, which rounds toward zero and is acceptable.
    return JsonValue::MakeNumber(value);
  }

  const std::string& text_;
  const JsonReaderOptions& options_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
  int depth_ = 0;
  std::vector<std::string> path_;
};

}  // namespace

JsonValue ParseJson(const std::string& text, const JsonReaderOptions& options) {
  return JsonParser(text, options).ParseDocument();
}

}  // namespace wsn::util
