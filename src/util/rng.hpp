// Pseudo-random number generation.
//
// The simulators in this project (DES kernel, Petri net token game) burn a
// large number of variates and must support many statistically independent
// parallel streams, one per replication.  We provide:
//
//   * SplitMix64 — tiny generator used for seeding.
//   * Xoshiro256StarStar — the workhorse generator; passes BigCrush, has a
//     2^128 jump function so replications can share a seed and still use
//     provably non-overlapping subsequences.
//
// Both satisfy the C++ UniformRandomBitGenerator concept so they compose
// with <random>, but all hot-path sampling in this project goes through the
// explicit inline helpers below (uniform_double, exponential, ...) to keep
// behaviour identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace wsn::util {

/// SplitMix64: 64-bit state, used to expand one seed into many.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference code,
/// re-implemented).  State must never be all-zero; seeding via SplitMix64
/// guarantees that with probability 1 - 2^-256.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seed the full 256-bit state from a single 64-bit value.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Advance 2^128 steps. Calling jump() k times on copies of one generator
  /// yields k non-overlapping streams of length 2^128 each.
  void Jump() noexcept;

  /// Convenience: a generator `stream_index` jumps ahead of `*this`.
  Xoshiro256StarStar MakeStream(std::uint64_t stream_index) const noexcept;

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Default generator used across the project.
using Rng = Xoshiro256StarStar;

/// Uniform double in [0, 1) with 53-bit resolution.
template <typename Gen>
inline double UniformDouble(Gen& g) noexcept {
  return static_cast<double>(g() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1]; never returns 0, safe as a log() argument.
template <typename Gen>
inline double UniformDoubleOpenLow(Gen& g) noexcept {
  return (static_cast<double>(g() >> 11) + 1.0) * 0x1.0p-53;
}

/// Uniform integer in [0, n). n must be > 0.  Lemire-style rejection-free
/// multiply-shift; bias is < 2^-64 * n which is negligible for our n.
template <typename Gen>
inline std::uint64_t UniformBelow(Gen& g, std::uint64_t n) noexcept {
  // 128-bit multiply-high.
  __extension__ using Uint128 = unsigned __int128;
  const Uint128 m = static_cast<Uint128>(g()) * static_cast<Uint128>(n);
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace wsn::util
