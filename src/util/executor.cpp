#include "util/executor.hpp"

namespace wsn::util {

ParallelExecutor::ParallelExecutor(std::size_t threads) {
  if (threads == 1) return;  // serial: no pool
  owned_ = std::make_unique<ThreadPool>(threads);
  pool_ = owned_.get();
}

ParallelExecutor::ParallelExecutor(ThreadPool& pool) : pool_(&pool) {}

std::size_t ParallelExecutor::ThreadCount() const noexcept {
  return pool_ == nullptr ? 1 : pool_->ThreadCount();
}

void ParallelExecutor::RunIndexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  if (pool_ == nullptr) {
    // Serial: the first throw is by construction the lowest failing index.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Parallel: let every job run to completion, record failures per index,
  // then rethrow the lowest-index one — identical to what a serial run
  // would have surfaced first.
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool_->Submit([i, &fn, &errors] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }));
  }
  for (auto& f : futures) f.get();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace wsn::util
