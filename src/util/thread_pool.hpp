// Minimal fixed-size thread pool used to run independent simulation
// replications in parallel.
//
// Design notes (per the HPC guidance this project follows): work items are
// coarse (one whole replication each, seconds of CPU), so a single mutex-
// protected queue is the right tool — no work stealing, no lock-free
// cleverness, no false-sharing hazards.  Determinism is preserved because
// each replication owns an independent, jump-separated RNG stream keyed by
// its replication index, not by thread identity.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wsn::util {

class ThreadPool {
 public:
  /// Spawn `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t ThreadCount() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool is stopping");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run `fn(i)` for i in [0, n) across the pool, blocking until all finish.
/// Exceptions from tasks propagate (the first one encountered rethrows).
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Convenience for callers that don't manage a pool: run `fn(i)` for
/// i in [0, n) on up to `threads` threads (0 = hardware concurrency).
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 std::size_t threads = 0);

}  // namespace wsn::util
