#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace wsn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.Submit([i, &fn] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 std::size_t threads) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  ThreadPool pool(threads == 0 ? 0 : std::min(threads, n));
  ParallelFor(pool, n, fn);
}

}  // namespace wsn::util
