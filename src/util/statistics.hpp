// Streaming statistics for simulation output analysis.
//
// Simulation estimators in this project fall into two families:
//   * observation-based (job latencies, counts per replication) — use
//     RunningStats (Welford's numerically stable online algorithm);
//   * time-persistent (number of tokens in a place, CPU power state) — use
//     TimeWeightedStats which integrates a piecewise-constant signal.
//
// BatchMeans turns a single long correlated run into approximately
// independent batch averages; ConfidenceInterval converts either estimator
// into a Student-t interval.
#pragma once

#include <cstddef>
#include <vector>

namespace wsn::util {

/// Welford online mean/variance over scalar observations.
class RunningStats {
 public:
  void Add(double x) noexcept;

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void Merge(const RunningStats& other) noexcept;

  std::size_t Count() const noexcept { return n_; }
  double Mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two observations).
  double Variance() const noexcept;
  double StdDev() const noexcept;
  /// Standard error of the mean.
  double StdError() const noexcept;
  double Min() const noexcept { return min_; }
  double Max() const noexcept { return max_; }
  double Sum() const noexcept { return mean_ * static_cast<double>(n_); }

  void Reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time average of a piecewise-constant signal, e.g. tokens in a place.
///
/// Usage: call Update(t, value) whenever the signal changes to `value` at
/// time `t`; call Finish(t_end) once.  Mean() is then the time-weighted
/// average over [t_start, t_end).
class TimeWeightedStats {
 public:
  explicit TimeWeightedStats(double start_time = 0.0) noexcept
      : last_time_(start_time), start_time_(start_time) {}

  /// Record that the signal takes `value` from time `now` onward.
  void Update(double now, double value) noexcept;

  /// Close the observation window at `now` (signal keeps its last value).
  void Finish(double now) noexcept;

  /// Time-weighted mean over the observed window.
  double Mean() const noexcept;

  /// Time-weighted second moment -> variance of the signal.
  double Variance() const noexcept;

  double ElapsedTime() const noexcept { return total_time_; }
  double CurrentValue() const noexcept { return value_; }

  /// Restart the window at `now`, keeping the current signal value.
  /// Used to discard the warm-up transient.
  void ResetWindow(double now) noexcept;

 private:
  void Accumulate(double now) noexcept;

  double value_ = 0.0;
  double last_time_ = 0.0;
  double start_time_ = 0.0;
  double weighted_sum_ = 0.0;
  double weighted_sq_sum_ = 0.0;
  double total_time_ = 0.0;
  bool has_value_ = false;
};

/// Two-sided Student-t critical value for confidence `level` (e.g. 0.95)
/// with `dof` degrees of freedom.  Exact for the tabulated small dofs we
/// use; falls back to the normal quantile for large dof.
double StudentTCritical(double level, std::size_t dof);

/// A mean +- half-width interval.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double level = 0.95;

  double Low() const noexcept { return mean - half_width; }
  double High() const noexcept { return mean + half_width; }
  bool Contains(double x) const noexcept { return Low() <= x && x <= High(); }
};

/// Interval from independent replication means.
ConfidenceInterval IntervalFromStats(const RunningStats& s, double level = 0.95);

/// Batch-means output analysis for one long, autocorrelated run.
class BatchMeans {
 public:
  /// `batch_size` observations per batch.
  explicit BatchMeans(std::size_t batch_size);

  void Add(double x);

  std::size_t CompleteBatches() const noexcept { return batches_.Count(); }
  /// Grand mean over complete batches.
  double Mean() const noexcept { return batches_.Mean(); }
  /// CI treating batch means as iid.
  ConfidenceInterval Interval(double level = 0.95) const;

  /// Lag-1 autocorrelation between successive batch means; values near 0
  /// indicate the batch size is large enough.
  double BatchLag1Autocorrelation() const noexcept;

 private:
  std::size_t batch_size_;
  std::size_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  RunningStats batches_;
  std::vector<double> batch_means_;
};

}  // namespace wsn::util
