#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace wsn::util {

Histogram::Histogram(double low, double high, std::size_t bins,
                     HistogramEdgePolicy policy)
    : low_(low), high_(high), width_((high - low) / static_cast<double>(bins)),
      policy_(policy), counts_(bins, 0) {
  Require(bins >= 1, "histogram needs at least one bin");
  Require(high > low, "histogram range must be non-empty");
}

void Histogram::Add(double x) noexcept {
  ++total_;
  if (std::isnan(x)) {
    ++nan_;
    return;
  }
  sum_ += x;
  if (x < low_) {
    if (policy_ == HistogramEdgePolicy::kClamp) {
      ++counts_.front();
    } else {
      ++underflow_;
    }
    return;
  }
  if (x >= high_) {
    if (policy_ == HistogramEdgePolicy::kClamp) {
      ++counts_.back();
    } else {
      ++overflow_;
    }
    return;
  }
  auto idx = static_cast<std::size_t>((x - low_) / width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

std::size_t Histogram::BinCount(std::size_t i) const {
  Require(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::BinLow(std::size_t i) const {
  Require(i < counts_.size(), "histogram bin out of range");
  return low_ + static_cast<double>(i) * width_;
}

double Histogram::BinHigh(std::size_t i) const { return BinLow(i) + width_; }

double Histogram::Density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(BinCount(i)) /
         (static_cast<double>(total_) * width_);
}

double Histogram::ChiSquare(const std::vector<double>& expected) const {
  Require(expected.size() == counts_.size(),
          "expected probabilities must match bin count");
  double stat = 0.0;
  const double n = static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    double obs = static_cast<double>(counts_[i]);
    if (i == 0) obs += static_cast<double>(underflow_);
    if (i + 1 == counts_.size()) obs += static_cast<double>(overflow_);
    const double exp_count = expected[i] * n;
    if (exp_count <= 0.0) continue;
    const double d = obs - exp_count;
    stat += d * d / exp_count;
  }
  return stat;
}

void Histogram::Merge(const Histogram& other) {
  Require(low_ == other.low_ && high_ == other.high_ &&
              counts_.size() == other.counts_.size() &&
              policy_ == other.policy_,
          "cannot merge histograms with different ranges, bin counts or "
          "edge policies");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  nan_ += other.nan_;
  total_ += other.total_;
  sum_ += other.sum_;
}

std::string Histogram::Render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(max_width)));
    os << "[" << BinLow(i) << ", " << BinHigh(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace wsn::util
