/// \file
/// Fork-based worker sandboxing for crash-isolated sweep points.
///
/// RunInWorker forks a child, runs a callable there, and ships its
/// std::string result back over a pipe in a length- and FNV-checksummed
/// frame.  The parent enforces a wall-clock deadline (SIGKILL on
/// overrun) and an optional address-space limit (RLIMIT_AS in the
/// child), and classifies every way a worker can fail into a structured
/// taxonomy:
///
///   | failure          | cause                                          |
///   |------------------|------------------------------------------------|
///   | signal           | child terminated by a signal (crash, SIGKILL)  |
///   | nonzero-exit     | child exited != 0 (incl. a relayed exception)  |
///   | timeout          | child outlived the wall-clock deadline         |
///   | oom              | child hit the RSS limit (std::bad_alloc)       |
///   | malformed-result | exit 0 but a truncated/corrupt result frame    |
///
/// RunWithRetry layers an exponential-backoff retry policy on top; the
/// schedule is a pure function (BackoffSchedule) so tests can pin it
/// without sleeping.  The child pid currently being awaited is exported
/// through KillActiveWorker() so SIGINT/SIGTERM handlers can reap it
/// (async-signal-safe) before exiting.
///
/// See docs/robustness.md for how the scenario harness maps this
/// taxonomy onto retries, --keep-going error rows and obs counters.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wsn::util {

/// How a sandboxed worker failed (kNone = it did not).
enum class WorkerFailure {
  kNone = 0,
  kSignal,           ///< terminated by a signal (SIGSEGV, SIGKILL, ...)
  kNonZeroExit,      ///< exited with a nonzero status
  kTimeout,          ///< killed by the parent for outliving its deadline
  kOom,              ///< exhausted its address-space limit (std::bad_alloc)
  kMalformedResult,  ///< exited 0 but the result frame failed validation
};

/// Stable lowercase name ("signal", "nonzero-exit", "timeout", "oom",
/// "malformed-result", "none") — journal records and error rows use it.
const char* WorkerFailureName(WorkerFailure failure) noexcept;

/// util::Error carrying the taxonomy code — what a sweep aborts with
/// when a point exhausts its attempts without --keep-going.
class WorkerError : public Error {
 public:
  WorkerError(WorkerFailure failure, const std::string& what)
      : Error(what), failure_(failure) {}
  WorkerFailure Failure() const noexcept { return failure_; }

 private:
  WorkerFailure failure_;
};

/// Resource fence around one worker.
struct WorkerLimits {
  double deadline_s = 0.0;       ///< wall-clock deadline (0 = none)
  std::size_t rss_limit_mb = 0;  ///< address-space cap in MB (0 = none)
};

/// Outcome of one worker attempt.
struct WorkerResult {
  WorkerFailure failure = WorkerFailure::kNone;
  std::string payload;  ///< the callable's return value (failure == kNone)
  std::string detail;   ///< human-readable failure description otherwise
  int exit_code = 0;    ///< child exit status (when it exited)
  int term_signal = 0;  ///< terminating signal (when failure == kSignal)

  bool Ok() const noexcept { return failure == WorkerFailure::kNone; }
  /// "timeout: exceeded 2.0 s wall-clock deadline" — taxonomy name plus
  /// detail, for error rows and logs.
  std::string Describe() const;
};

/// Exponential-backoff retry policy.  max_attempts counts the first try:
/// max_attempts = 3 means up to 2 retries.
struct RetryPolicy {
  std::size_t max_attempts = 1;
  double base_backoff_s = 0.25;  ///< delay before the first retry
  double backoff_growth = 2.0;   ///< delay multiplier per further retry
  bool sleep = true;             ///< tests disable the actual sleeping
};

/// The exact delays slept between attempts: max_attempts - 1 entries,
/// delay[i] = base * growth^i.  Pure — this IS the schedule RunWithRetry
/// follows, pinned by tests/test_subproc.cpp.
std::vector<double> BackoffSchedule(const RetryPolicy& policy);

/// Run `fn` in a forked child under `limits`; never throws on worker
/// failure — inspect result.failure.  Throws util::Error only when the
/// sandbox itself cannot be set up (fork/pipe failure).
WorkerResult RunInWorker(const std::function<std::string()>& fn,
                         const WorkerLimits& limits);

/// Run `fn(attempt)` (attempt = 0, 1, ...) in a fresh worker until one
/// attempt succeeds or the policy is exhausted; returns the last
/// result.  `on_failure(attempt, result)` fires after every failed
/// attempt (retried or not) so callers can count and log.
WorkerResult RunWithRetry(
    const std::function<std::string(std::size_t)>& fn,
    const WorkerLimits& limits, const RetryPolicy& policy,
    const std::function<void(std::size_t, const WorkerResult&)>& on_failure =
        {});

/// SIGKILL the worker currently being awaited, if any.  Async-signal-
/// safe — this is what SIGINT/SIGTERM handlers call so an interrupted
/// sweep never leaves an orphan worker burning CPU.
void KillActiveWorker() noexcept;

}  // namespace wsn::util
