#include "util/subproc.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <exception>
#include <new>
#include <sstream>
#include <thread>

#include "util/hash.hpp"

namespace wsn::util {

namespace {

// Result frame on the child->parent pipe:
//   "WSNR" | status byte ('P' payload / 'E' error detail)
//   | u64 LE payload length | payload bytes | u64 LE FNV-1a(payload)
constexpr char kFrameMagic[4] = {'W', 'S', 'N', 'R'};
constexpr int kExitException = 112;  // child threw; detail in 'E' frame
constexpr int kExitOom = 113;        // child caught std::bad_alloc

// Pid of the worker the parent is currently awaiting; 0 = none.  Signal
// handlers read it via KillActiveWorker(), hence the bare atomic.
std::atomic<pid_t> g_active_worker{0};

bool WriteAllFd(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void PutU64Le(std::uint64_t v, char out[8]) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint64_t GetU64Le(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

/// Child side: emit one framed message.  Failure is ignored — if the
/// parent is gone there is nobody left to tell.
void ChildWriteFrame(int fd, char status, const std::string& payload) {
  char header[13];
  std::memcpy(header, kFrameMagic, 4);
  header[4] = status;
  PutU64Le(payload.size(), header + 5);
  char footer[8];
  PutU64Le(Fnv1a64(payload), footer);
  (void)(WriteAllFd(fd, header, sizeof header) &&
         WriteAllFd(fd, payload.data(), payload.size()) &&
         WriteAllFd(fd, footer, sizeof footer));
}

[[noreturn]] void RunChild(int write_fd, const std::function<std::string()>& fn,
                           const WorkerLimits& limits) {
  // The child must not inherit the parent's interactive-interrupt
  // handling: a Ctrl-C must look like a plain signal death to the
  // classifier, and a dead parent must not SIGPIPE-kill us mid-frame.
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGPIPE, SIG_IGN);
  if (limits.rss_limit_mb > 0) {
    struct rlimit rl;
    rl.rlim_cur = rl.rlim_max =
        static_cast<rlim_t>(limits.rss_limit_mb) * 1024u * 1024u;
    ::setrlimit(RLIMIT_AS, &rl);
  }
  try {
    const std::string payload = fn();
    ChildWriteFrame(write_fd, 'P', payload);
    ::_exit(0);
  } catch (const std::bad_alloc&) {
    ::_exit(kExitOom);
  } catch (const std::exception& e) {
    ChildWriteFrame(write_fd, 'E', e.what());
    ::_exit(kExitException);
  } catch (...) {
    ChildWriteFrame(write_fd, 'E', "unknown exception");
    ::_exit(kExitException);
  }
}

std::string FormatSeconds(double s) {
  std::ostringstream out;
  out.precision(3);
  out << s;
  return out.str();
}

/// Parse and validate one result frame out of the raw pipe bytes.
/// Returns false (with a reason in `detail`) on any corruption.
bool ParseFrame(const std::string& raw, char* status, std::string* payload,
                std::string* detail) {
  if (raw.size() < 21 || std::memcmp(raw.data(), kFrameMagic, 4) != 0) {
    *detail = "result frame missing or bad magic (" +
              std::to_string(raw.size()) + " bytes on pipe)";
    return false;
  }
  *status = raw[4];
  const std::uint64_t length = GetU64Le(raw.data() + 5);
  if (raw.size() != 21 + length) {
    *detail = "result frame truncated: header promises " +
              std::to_string(length) + " payload bytes, pipe carried " +
              std::to_string(raw.size() - 21);
    return false;
  }
  *payload = raw.substr(13, length);
  const std::uint64_t want = GetU64Le(raw.data() + 13 + length);
  const std::uint64_t got = Fnv1a64(*payload);
  if (want != got) {
    *detail = "result frame checksum mismatch (want " + HexU64(want) +
              ", got " + HexU64(got) + ")";
    return false;
  }
  return true;
}

}  // namespace

const char* WorkerFailureName(WorkerFailure failure) noexcept {
  switch (failure) {
    case WorkerFailure::kNone: return "none";
    case WorkerFailure::kSignal: return "signal";
    case WorkerFailure::kNonZeroExit: return "nonzero-exit";
    case WorkerFailure::kTimeout: return "timeout";
    case WorkerFailure::kOom: return "oom";
    case WorkerFailure::kMalformedResult: return "malformed-result";
  }
  return "unknown";
}

std::string WorkerResult::Describe() const {
  std::string out = WorkerFailureName(failure);
  if (!detail.empty()) out += ": " + detail;
  return out;
}

std::vector<double> BackoffSchedule(const RetryPolicy& policy) {
  std::vector<double> delays;
  if (policy.max_attempts <= 1) return delays;
  double delay = policy.base_backoff_s;
  for (std::size_t i = 0; i + 1 < policy.max_attempts; ++i) {
    delays.push_back(delay);
    delay *= policy.backoff_growth;
  }
  return delays;
}

WorkerResult RunInWorker(const std::function<std::string()>& fn,
                         const WorkerLimits& limits) {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw Error(std::string("worker sandbox: pipe() failed (") +
                std::strerror(errno) + ")");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const std::string detail = std::strerror(errno);
    ::close(fds[0]);
    ::close(fds[1]);
    throw Error("worker sandbox: fork() failed (" + detail + ")");
  }
  if (pid == 0) {
    ::close(fds[0]);
    RunChild(fds[1], fn, limits);  // never returns
  }
  ::close(fds[1]);
  g_active_worker.store(pid, std::memory_order_relaxed);

  const auto start = std::chrono::steady_clock::now();
  const bool has_deadline = limits.deadline_s > 0.0;
  bool timed_out = false;
  std::string raw;
  bool pipe_open = true;
  char buf[4096];
  // Drain the pipe while watching the clock.  After EOF we keep the
  // loop alive (poll on nothing, WNOHANG below via the time check) so a
  // child that closed its pipe and then hung still trips the deadline.
  int exit_status = 0;
  bool reaped = false;
  for (;;) {
    double remaining_ms = 50.0;
    if (has_deadline) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      remaining_ms = (limits.deadline_s - elapsed) * 1000.0;
      if (remaining_ms <= 0.0) {
        timed_out = true;
        ::kill(pid, SIGKILL);
        break;
      }
      if (remaining_ms > 50.0) remaining_ms = 50.0;
    }
    if (pipe_open) {
      struct pollfd pfd{fds[0], POLLIN, 0};
      const int rc = ::poll(&pfd, 1, static_cast<int>(remaining_ms) + 1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (rc > 0) {
        const ssize_t n = ::read(fds[0], buf, sizeof buf);
        if (n < 0) {
          if (errno == EINTR) continue;
          pipe_open = false;
        } else if (n == 0) {
          pipe_open = false;
        } else {
          raw.append(buf, static_cast<std::size_t>(n));
        }
      }
    } else {
      // Pipe closed: child is wrapping up (or hung).  Reap without
      // blocking so the deadline check above stays live.
      const pid_t w = ::waitpid(pid, &exit_status, WNOHANG);
      if (w == pid) {
        reaped = true;
        break;
      }
      if (w < 0 && errno != EINTR) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ::close(fds[0]);
  if (!reaped) {
    while (::waitpid(pid, &exit_status, 0) < 0 && errno == EINTR) {
    }
  }
  g_active_worker.store(0, std::memory_order_relaxed);

  WorkerResult result;
  if (timed_out) {
    result.failure = WorkerFailure::kTimeout;
    result.detail =
        "exceeded " + FormatSeconds(limits.deadline_s) + " s wall-clock deadline";
    return result;
  }
  if (WIFSIGNALED(exit_status)) {
    result.failure = WorkerFailure::kSignal;
    result.term_signal = WTERMSIG(exit_status);
    result.detail = std::string("terminated by signal ") +
                    std::to_string(result.term_signal) + " (" +
                    ::strsignal(result.term_signal) + ")";
    return result;
  }
  result.exit_code = WIFEXITED(exit_status) ? WEXITSTATUS(exit_status) : -1;
  char status = 0;
  std::string payload;
  std::string frame_detail;
  const bool frame_ok = ParseFrame(raw, &status, &payload, &frame_detail);
  if (result.exit_code == kExitOom) {
    result.failure = WorkerFailure::kOom;
    result.detail = "worker hit its address-space limit";
    if (limits.rss_limit_mb > 0) {
      result.detail += " (" + std::to_string(limits.rss_limit_mb) + " MB)";
    }
    return result;
  }
  if (result.exit_code != 0) {
    result.failure = WorkerFailure::kNonZeroExit;
    result.detail = "exit code " + std::to_string(result.exit_code);
    if (frame_ok && status == 'E' && !payload.empty()) {
      result.detail += ": " + payload;
    }
    return result;
  }
  if (!frame_ok || status != 'P') {
    result.failure = WorkerFailure::kMalformedResult;
    result.detail = frame_ok ? std::string("unexpected frame status byte")
                             : frame_detail;
    return result;
  }
  result.payload = std::move(payload);
  return result;
}

WorkerResult RunWithRetry(
    const std::function<std::string(std::size_t)>& fn,
    const WorkerLimits& limits, const RetryPolicy& policy,
    const std::function<void(std::size_t, const WorkerResult&)>& on_failure) {
  const std::vector<double> delays = BackoffSchedule(policy);
  const std::size_t attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  WorkerResult result;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    result = RunInWorker([&fn, attempt] { return fn(attempt); }, limits);
    if (result.Ok()) return result;
    if (on_failure) on_failure(attempt, result);
    if (attempt + 1 < attempts && policy.sleep) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(delays[attempt]));
    }
  }
  return result;
}

void KillActiveWorker() noexcept {
  const pid_t pid = g_active_worker.load(std::memory_order_relaxed);
  if (pid > 0) ::kill(pid, SIGKILL);
}

}  // namespace wsn::util
