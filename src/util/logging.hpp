// Leveled logging with a process-global threshold.  Deliberately minimal:
// simulators log at most a handful of lines per run, so no async sinks.
#pragma once

#include <sstream>
#include <string>

namespace wsn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

/// Emit a message (thread-safe; one line per call).
void LogMessage(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogLine LogDebug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine LogInfo() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine LogWarn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine LogError() { return detail::LogLine(LogLevel::kError); }

}  // namespace wsn::util
