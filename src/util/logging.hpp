// Leveled logging with a process-global threshold.  Deliberately minimal:
// simulators log at most a handful of lines per run, so no async sinks.
//
// Structured fields: append machine-parseable " key=value" pairs with
// Kv() after the human-readable message, e.g.
//   (LogWarn() << "scenario produced no metrics").Kv("scenario", name);
// String values containing spaces/quotes/'=' are double-quoted, so a
// line stays splittable on spaces outside quotes.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace wsn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

/// "debug" / "info" / "warn" / "error" / "off".
const char* LogLevelName(LogLevel level) noexcept;

/// Parse a LogLevelName (case-sensitive); throws InvalidArgument on
/// anything else.  Drives wsnctl's --log-level flag.
LogLevel ParseLogLevel(const std::string& name);

/// Emit a message (thread-safe; one line per call).
void LogMessage(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

  /// Structured " key=value" field (see the file comment for quoting).
  LogLine& Kv(const std::string& key, const std::string& value) {
    os_ << ' ' << key << '=';
    if (value.empty() ||
        value.find_first_of(" =\"") != std::string::npos) {
      os_ << '"' << value << '"';
    } else {
      os_ << value;
    }
    return *this;
  }
  LogLine& Kv(const std::string& key, const char* value) {
    return Kv(key, std::string(value));
  }
  LogLine& Kv(const std::string& key, bool value) {
    os_ << ' ' << key << '=' << (value ? "true" : "false");
    return *this;
  }
  template <typename T>
  LogLine& Kv(const std::string& key, T value) {
    os_ << ' ' << key << '=' << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogLine LogDebug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine LogInfo() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine LogWarn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine LogError() { return detail::LogLine(LogLevel::kError); }

}  // namespace wsn::util
