#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wsn::util {

void RunningStats::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::Variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::StdDev() const noexcept { return std::sqrt(Variance()); }

double RunningStats::StdError() const noexcept {
  if (n_ < 2) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(n_));
}

void TimeWeightedStats::Accumulate(double now) noexcept {
  if (!has_value_) return;
  const double dt = now - last_time_;
  if (dt > 0.0) {
    weighted_sum_ += value_ * dt;
    weighted_sq_sum_ += value_ * value_ * dt;
    total_time_ += dt;
  }
}

void TimeWeightedStats::Update(double now, double value) noexcept {
  Accumulate(now);
  value_ = value;
  last_time_ = now;
  has_value_ = true;
}

void TimeWeightedStats::Finish(double now) noexcept {
  Accumulate(now);
  last_time_ = now;
}

double TimeWeightedStats::Mean() const noexcept {
  if (total_time_ <= 0.0) return has_value_ ? value_ : 0.0;
  return weighted_sum_ / total_time_;
}

double TimeWeightedStats::Variance() const noexcept {
  if (total_time_ <= 0.0) return 0.0;
  const double m = Mean();
  return std::max(0.0, weighted_sq_sum_ / total_time_ - m * m);
}

void TimeWeightedStats::ResetWindow(double now) noexcept {
  weighted_sum_ = 0.0;
  weighted_sq_sum_ = 0.0;
  total_time_ = 0.0;
  last_time_ = now;
  start_time_ = now;
}

namespace {

// Normal quantile via Acklam's rational approximation (|error| < 1.15e-9).
double NormalQuantile(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

// Student-t quantile from the normal quantile using the Cornish–Fisher
// style expansion (Abramowitz & Stegun 26.7.5); accurate to ~1e-4 for
// dof >= 3, which is more than enough for CI reporting.
double StudentTQuantile(double p, double dof) {
  const double x = NormalQuantile(p);
  const double x3 = x * x * x;
  const double x5 = x3 * x * x;
  const double x7 = x5 * x * x;
  const double g1 = (x3 + x) / 4.0;
  const double g2 = (5.0 * x5 + 16.0 * x3 + 3.0 * x) / 96.0;
  const double g3 = (3.0 * x7 + 19.0 * x5 + 17.0 * x3 - 15.0 * x) / 384.0;
  return x + g1 / dof + g2 / (dof * dof) + g3 / (dof * dof * dof);
}

}  // namespace

double StudentTCritical(double level, std::size_t dof) {
  Require(level > 0.0 && level < 1.0, "confidence level must be in (0,1)");
  if (dof == 0) return 0.0;
  const double p = 0.5 + level / 2.0;
  // Exact-enough table for the very small dofs where the expansion is weak.
  if (std::abs(level - 0.95) < 1e-12) {
    static const double t95[] = {0.0,   12.706, 4.303, 3.182, 2.776,
                                 2.571, 2.447,  2.365, 2.306, 2.262,
                                 2.228, 2.201,  2.179, 2.160, 2.145,
                                 2.131, 2.120,  2.110, 2.101, 2.093, 2.086};
    if (dof <= 20) return t95[dof];
  }
  if (std::abs(level - 0.99) < 1e-12) {
    static const double t99[] = {0.0,   63.657, 9.925, 5.841, 4.604,
                                 4.032, 3.707,  3.499, 3.355, 3.250,
                                 3.169, 3.106,  3.055, 3.012, 2.977,
                                 2.947, 2.921,  2.898, 2.878, 2.861, 2.845};
    if (dof <= 20) return t99[dof];
  }
  if (dof < 3) {
    // Fall back to a conservative wide value for exotic levels at tiny dof.
    return StudentTQuantile(p, 3.0) * 2.0;
  }
  return StudentTQuantile(p, static_cast<double>(dof));
}

ConfidenceInterval IntervalFromStats(const RunningStats& s, double level) {
  ConfidenceInterval ci;
  ci.mean = s.Mean();
  ci.level = level;
  if (s.Count() >= 2) {
    ci.half_width = StudentTCritical(level, s.Count() - 1) * s.StdError();
  }
  return ci;
}

BatchMeans::BatchMeans(std::size_t batch_size) : batch_size_(batch_size) {
  Require(batch_size >= 1, "batch size must be >= 1");
}

void BatchMeans::Add(double x) {
  batch_sum_ += x;
  if (++in_batch_ == batch_size_) {
    const double mean = batch_sum_ / static_cast<double>(batch_size_);
    batches_.Add(mean);
    batch_means_.push_back(mean);
    in_batch_ = 0;
    batch_sum_ = 0.0;
  }
}

ConfidenceInterval BatchMeans::Interval(double level) const {
  return IntervalFromStats(batches_, level);
}

double BatchMeans::BatchLag1Autocorrelation() const noexcept {
  const std::size_t n = batch_means_.size();
  if (n < 3) return 0.0;
  const double mean = batches_.Mean();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = batch_means_[i] - mean;
    den += d * d;
    if (i + 1 < n) num += d * (batch_means_[i + 1] - mean);
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

}  // namespace wsn::util
