// FNV-1a 64-bit hashing, shared by the run journal (record/payload
// hashes, run-config ids), the subprocess result framing and the test
// pins.  Header-only: the algorithm is four lines and every user wants
// it inlined.
#pragma once

#include <cstdint>
#include <string>

namespace wsn::util {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over the bytes of `s`.
inline std::uint64_t Fnv1a64(const std::string& s,
                             std::uint64_t h = kFnvOffset) noexcept {
  for (const unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Mix one integer into an FNV-1a state (for composite keys).
inline std::uint64_t Fnv1a64Mix(std::uint64_t value,
                                std::uint64_t h = kFnvOffset) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

/// Fixed-width lowercase hex rendering ("0000a1b2c3d4e5f6") — the
/// journal's run-id / payload-hash format.
inline std::string HexU64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xfu];
    v >>= 4;
  }
  return out;
}

}  // namespace wsn::util
