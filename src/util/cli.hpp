// Tiny command-line flag parser for the examples and benchmark binaries.
// Supports `--name value`, `--name=value` and boolean `--name` flags.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace wsn::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  long GetInt(const std::string& name, long fallback) const;
  bool GetBool(const std::string& name, bool fallback = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& Positional() const noexcept {
    return positional_;
  }

  const std::string& ProgramName() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace wsn::util
