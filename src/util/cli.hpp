// Tiny command-line flag parser for the scenario engine, examples and
// benchmark binaries.  Supports `--name value`, `--name=value` and
// boolean `--name` flags.
//
// Callers that know their full flag vocabulary (every scenario does)
// should declare it as a list of FlagSpec and call RequireKnownFlags:
// a typo'd flag then fails loudly instead of silently falling back to
// its default — the historical footgun this guards against.  The same
// specs drive the auto-generated --help text (RenderHelp).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace wsn::util {

/// Declaration of one accepted flag, for validation and --help.
struct FlagSpec {
  std::string name;           ///< without the leading "--"
  std::string value_hint;     ///< e.g. "N", "SECONDS"; empty for booleans
  std::string default_value;  ///< rendered in --help; "" hides the default
  std::string help;           ///< one-line description
};

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  long GetInt(const std::string& name, long fallback) const;
  bool GetBool(const std::string& name, bool fallback = false) const;

  /// Non-negative integer with a lower bound — the safe front door for
  /// counts (replications, sweep points, seeds) that would otherwise be
  /// silently cast to unsigned.  Throws InvalidArgument when the flag
  /// parses negative or below `min_value`.
  std::size_t GetCount(const std::string& name, std::size_t fallback,
                       std::size_t min_value = 0) const;

  /// Names of every flag present on the command line (sorted).
  std::vector<std::string> FlagNames() const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& Positional() const noexcept {
    return positional_;
  }

  const std::string& ProgramName() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Throw InvalidArgument naming the first parsed flag not found in
/// `known` (and suggesting --help).  Flags named "help" are always
/// accepted.
void RequireKnownFlags(const CliArgs& args, const std::vector<FlagSpec>& known);

/// Auto-generated help text: usage line, description, one aligned row
/// per flag ("--name HINT   help (default: X)").
std::string RenderHelp(const std::string& usage, const std::string& description,
                       const std::vector<FlagSpec>& flags);

}  // namespace wsn::util
