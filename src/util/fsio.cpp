#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/error.hpp"

namespace wsn::util {

namespace {

/// write(2) the whole buffer, retrying on EINTR/short writes.
bool WriteAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void RequireWritableDir(const std::string& path, const std::string& what) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(path).parent_path();
  if (dir.empty()) dir = ".";
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw InvalidArgument(what + ": output directory '" + dir.string() +
                          "' does not exist (for '" + path + "')");
  }
  if (::access(dir.c_str(), W_OK | X_OK) != 0) {
    throw InvalidArgument(what + ": output directory '" + dir.string() +
                          "' is not writable (for '" + path + "')");
  }
}

void AtomicWriteFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error("cannot open output file: " + tmp + " (" +
                std::strerror(errno) + ")");
  }
  const bool wrote = WriteAll(fd, content.data(), content.size());
  const bool synced = wrote && ::fsync(fd) == 0;
  const int saved_errno = errno;
  ::close(fd);
  if (!wrote || !synced) {
    ::unlink(tmp.c_str());
    throw Error("failed writing output file: " + tmp + " (" +
                std::strerror(saved_errno) + ")");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string detail = std::strerror(errno);
    ::unlink(tmp.c_str());
    throw Error("failed renaming " + tmp + " over " + path + " (" + detail +
                ")");
  }
}

}  // namespace wsn::util
