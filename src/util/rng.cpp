#include "util/rng.hpp"

namespace wsn::util {

void Xoshiro256StarStar::Jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};

  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        acc[0] ^= state_[0];
        acc[1] ^= state_[1];
        acc[2] ^= state_[2];
        acc[3] ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = acc;
}

Xoshiro256StarStar Xoshiro256StarStar::MakeStream(
    std::uint64_t stream_index) const noexcept {
  Xoshiro256StarStar out = *this;
  for (std::uint64_t i = 0; i < stream_index; ++i) out.Jump();
  return out;
}

}  // namespace wsn::util
