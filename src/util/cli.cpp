#include "util/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace wsn::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself a flag (or absent),
    // in which case treat as boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::GetString(const std::string& name,
                               const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double CliArgs::GetDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(it->second.c_str(), &end);
  Require(end != it->second.c_str() && *end == '\0' && !it->second.empty(),
          "flag --" + name + " is not a number: '" + it->second + "'");
  // ERANGE also fires on underflow to a (representable) subnormal; only
  // overflow is an error.
  Require(!(errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)),
          "flag --" + name + " is out of range: '" + it->second + "'");
  return v;
}

long CliArgs::GetInt(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  // Partial parses ("3.9", "10x") are rejected, not truncated: a typo'd
  // sweep config must fail loudly rather than alter results.
  Require(end != it->second.c_str() && *end == '\0' && !it->second.empty(),
          "flag --" + name + " is not an integer: '" + it->second + "'");
  Require(errno != ERANGE,
          "flag --" + name + " is out of range: '" + it->second + "'");
  return v;
}

bool CliArgs::GetBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::size_t CliArgs::GetCount(const std::string& name, std::size_t fallback,
                              std::size_t min_value) const {
  if (!Has(name)) return fallback;
  const long v = GetInt(name, 0);
  Require(v >= 0, "flag --" + name + " must be non-negative, got " +
                      std::to_string(v));
  const auto u = static_cast<std::size_t>(v);
  Require(u >= min_value, "flag --" + name + " must be at least " +
                              std::to_string(min_value) + ", got " +
                              std::to_string(u));
  return u;
}

std::vector<std::string> CliArgs::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;  // std::map iterates sorted
}

void RequireKnownFlags(const CliArgs& args,
                       const std::vector<FlagSpec>& known) {
  for (const std::string& name : args.FlagNames()) {
    if (name == "help") continue;
    const bool found =
        std::any_of(known.begin(), known.end(),
                    [&](const FlagSpec& f) { return f.name == name; });
    if (!found) {
      throw InvalidArgument("unknown flag --" + name +
                            " (run with --help for the accepted flags)");
    }
  }
}

std::string RenderHelp(const std::string& usage, const std::string& description,
                       const std::vector<FlagSpec>& flags) {
  std::ostringstream os;
  os << "usage: " << usage << "\n";
  if (!description.empty()) os << "\n" << description << "\n";
  if (flags.empty()) return os.str();
  os << "\nflags:\n";
  std::size_t width = 0;
  auto lhs = [](const FlagSpec& f) {
    return "--" + f.name + (f.value_hint.empty() ? "" : " " + f.value_hint);
  };
  for (const FlagSpec& f : flags) width = std::max(width, lhs(f).size());
  for (const FlagSpec& f : flags) {
    std::string left = lhs(f);
    left.append(width - left.size(), ' ');
    os << "  " << left << "  " << f.help;
    if (!f.default_value.empty()) os << " (default: " << f.default_value << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace wsn::util
