#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace wsn::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself a flag (or absent),
    // in which case treat as boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::GetString(const std::string& name,
                               const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double CliArgs::GetDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  Require(end != it->second.c_str(), "flag --" + name + " is not a number");
  return v;
}

long CliArgs::GetInt(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  Require(end != it->second.c_str(), "flag --" + name + " is not an integer");
  return v;
}

bool CliArgs::GetBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace wsn::util
