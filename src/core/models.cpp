#include "core/models.hpp"

#include <algorithm>
#include <cmath>

#include "des/cpu_model.hpp"
#include "markov/stages.hpp"
#include "markov/supplementary.hpp"
#include "petri/ctmc_solver.hpp"
#include "petri/dspn_solver.hpp"
#include "petri/simulation.hpp"
#include "util/statistics.hpp"

namespace wsn::core {

ModelEvaluation SimulationCpuModel::Evaluate(const CpuParams& params) const {
  des::CpuModelConfig cfg;
  cfg.arrival_rate = params.arrival_rate;
  cfg.mean_service_time = params.MeanServiceTime();
  cfg.power_down_threshold = params.power_down_threshold;
  cfg.power_up_delay = params.power_up_delay;
  cfg.sim_time = config_.sim_time;
  cfg.warmup_time = config_.warmup;

  const des::CpuEnsembleResult agg = des::RunCpuEnsemble(
      cfg, config_.seed, config_.replications, config_.threads);

  ModelEvaluation out;
  out.shares.standby = agg.standby.Mean();
  out.shares.powerup = agg.powerup.Mean();
  out.shares.idle = agg.idle.Mean();
  out.shares.active = agg.active.Mean();
  out.mean_jobs = agg.mean_jobs.Mean();
  out.mean_latency = agg.mean_latency.Mean();
  out.share_ci_halfwidth = std::max(
      {util::IntervalFromStats(agg.standby).half_width,
       util::IntervalFromStats(agg.powerup).half_width,
       util::IntervalFromStats(agg.idle).half_width,
       util::IntervalFromStats(agg.active).half_width});
  return out;
}

ModelEvaluation MarkovCpuModel::Evaluate(const CpuParams& params) const {
  const markov::SupplementaryVariableModel model(
      params.arrival_rate, params.service_rate, params.power_down_threshold,
      params.power_up_delay);
  const markov::SupplementaryResult r = model.Evaluate();

  ModelEvaluation out;
  out.shares.standby = r.p_standby;
  out.shares.powerup = r.p_powerup;
  out.shares.idle = r.p_idle;
  out.shares.active = r.p_active;
  out.mean_jobs = r.mean_jobs;
  out.mean_latency = r.mean_latency;
  return out;
}

namespace {

/// Map Fig. 3 place statistics to the four state shares.
/// Active implies CPU_ON, so idle time is E[#CPU_ON] - E[#Active].
energy::StateShares SharesFromTokens(double standby, double powerup,
                                     double cpu_on, double active) {
  energy::StateShares s;
  s.standby = standby;
  s.powerup = powerup;
  s.active = active;
  s.idle = std::max(0.0, cpu_on - active);
  return s;
}

}  // namespace

ModelEvaluation PetriNetCpuModel::Evaluate(const CpuParams& params) const {
  CpuNetLayout layout;
  const petri::PetriNet net = BuildCpuPetriNet(params, &layout);

  petri::SimulationConfig cfg;
  cfg.horizon = config_.sim_time;
  cfg.warmup = config_.warmup;
  cfg.seed = config_.seed;

  const petri::EnsembleResult agg = petri::SimulateSpnEnsemble(
      net, cfg, config_.replications, config_.threads);

  const auto mean = [&](petri::PlaceId p) {
    return agg.mean_tokens[p].Mean();
  };
  const auto ci = [&](petri::PlaceId p) {
    return util::IntervalFromStats(agg.mean_tokens[p]).half_width;
  };

  ModelEvaluation out;
  out.shares = SharesFromTokens(mean(layout.standby), mean(layout.powerup),
                                mean(layout.cpu_on), mean(layout.active));
  out.mean_jobs = mean(layout.cpu_buffer) + mean(layout.active);
  out.mean_latency = out.mean_jobs / params.arrival_rate;  // Little's law
  out.share_ci_halfwidth =
      std::max({ci(layout.standby), ci(layout.powerup), ci(layout.cpu_on),
                ci(layout.active)});
  return out;
}

ModelEvaluation StagesMarkovCpuModel::Evaluate(const CpuParams& params) const {
  const markov::StagesCpuModel model(
      params.arrival_rate, params.service_rate, params.power_down_threshold,
      params.power_up_delay, stages_, stages_);
  const markov::StagesResult r = model.Evaluate();

  ModelEvaluation out;
  out.shares.standby = r.p_standby;
  out.shares.powerup = r.p_powerup;
  out.shares.idle = r.p_idle;
  out.shares.active = r.p_active;
  out.mean_jobs = r.mean_jobs;
  out.mean_latency = r.mean_jobs / params.arrival_rate;
  return out;
}

ModelEvaluation PetriSolverCpuModel::Evaluate(const CpuParams& params) const {
  CpuNetLayout layout;
  const petri::PetriNet net = BuildCpuPetriNet(params, &layout);

  petri::SolverOptions opts;
  opts.det_stages = stages_;
  // The Fig. 3 net is open (the buffer is unbounded); truncate generously
  // relative to the power-up pile-up and the queue's busy periods so the
  // lost probability mass is far below solver tolerance.
  const double rho = params.Rho();
  const double ld = params.arrival_rate * params.power_up_delay;
  opts.truncate_tokens = static_cast<std::uint32_t>(std::clamp(
      std::ceil(ld + 8.0 * std::sqrt(ld + 1.0) + 30.0 / (1.0 - rho)),
      40.0, 2000.0));
  const petri::SpnSteadyState ss = petri::SolveSteadyState(net, opts);

  ModelEvaluation out;
  out.shares = SharesFromTokens(
      ss.mean_tokens[layout.standby], ss.mean_tokens[layout.powerup],
      ss.mean_tokens[layout.cpu_on], ss.mean_tokens[layout.active]);
  out.mean_jobs =
      ss.mean_tokens[layout.cpu_buffer] + ss.mean_tokens[layout.active];
  out.mean_latency = out.mean_jobs / params.arrival_rate;
  return out;
}

ModelEvaluation DspnExactCpuModel::Evaluate(const CpuParams& params) const {
  CpuNetLayout layout;
  const petri::PetriNet net = BuildCpuPetriNet(params, &layout);

  petri::DspnOptions opts;
  const double rho = params.Rho();
  const double ld = params.arrival_rate * params.power_up_delay;
  opts.truncate_tokens = static_cast<std::uint32_t>(std::clamp(
      std::ceil(ld + 8.0 * std::sqrt(ld + 1.0) + 30.0 / (1.0 - rho)),
      40.0, 2000.0));
  const petri::SpnSteadyState ss = petri::SolveDspnExact(net, opts);

  ModelEvaluation out;
  out.shares = SharesFromTokens(
      ss.mean_tokens[layout.standby], ss.mean_tokens[layout.powerup],
      ss.mean_tokens[layout.cpu_on], ss.mean_tokens[layout.active]);
  out.mean_jobs =
      ss.mean_tokens[layout.cpu_buffer] + ss.mean_tokens[layout.active];
  out.mean_latency = out.mean_jobs / params.arrival_rate;
  return out;
}

std::vector<std::unique_ptr<CpuEnergyModel>> MakePaperModels(
    const EvalConfig& config) {
  std::vector<std::unique_ptr<CpuEnergyModel>> models;
  models.push_back(std::make_unique<SimulationCpuModel>(config));
  models.push_back(std::make_unique<MarkovCpuModel>());
  models.push_back(std::make_unique<PetriNetCpuModel>(config));
  return models;
}

}  // namespace wsn::core
