#include "core/experiment.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsn::core {

using util::Require;

std::vector<double> LinearSpace(double lo, double hi, std::size_t count) {
  Require(count >= 2, "need at least two sweep points");
  Require(hi > lo, "sweep range must be non-empty");
  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) /
                      static_cast<double>(count - 1);
  }
  return out;
}

std::vector<double> PaperPdtGrid(std::size_t count, double eps) {
  Require(count >= 2,
          "PaperPdtGrid needs at least two points to span [eps, 1]");
  Require(eps > 0.0 && eps < 1.0, "eps must lie strictly inside (0, 1)");
  std::vector<double> grid = LinearSpace(0.0, 1.0, count);
  if (grid[0] == 0.0) grid[0] = eps;
  return grid;
}

SweepSeries SweepPowerDownThreshold(const CpuEnergyModel& model,
                                    CpuParams base,
                                    const std::vector<double>& pdt_values,
                                    const energy::PowerStateTable& table,
                                    double energy_horizon,
                                    util::ParallelExecutor& executor) {
  SweepSeries series;
  series.model_name = model.Name();
  series.points = executor.Map(pdt_values.size(), [&](std::size_t i) {
    SweepPoint point;
    point.params = base;
    point.params.power_down_threshold = pdt_values[i];
    point.eval = model.Evaluate(point.params);
    point.energy_joules = EnergyJoules(point.eval, table, energy_horizon);
    return point;
  });
  return series;
}

SweepSeries SweepPowerDownThreshold(const CpuEnergyModel& model,
                                    CpuParams base,
                                    const std::vector<double>& pdt_values,
                                    const energy::PowerStateTable& table,
                                    double energy_horizon) {
  util::ParallelExecutor serial(1);
  return SweepPowerDownThreshold(model, base, pdt_values, table,
                                 energy_horizon, serial);
}

double MeanAbsoluteShareDeltaPct(const SweepSeries& a, const SweepSeries& b) {
  Require(a.points.size() == b.points.size() && !a.points.empty(),
          "series must align");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const auto& sa = a.points[i].eval.shares;
    const auto& sb = b.points[i].eval.shares;
    acc += std::abs(sa.standby - sb.standby) +
           std::abs(sa.powerup - sb.powerup) +
           std::abs(sa.idle - sb.idle) + std::abs(sa.active - sb.active);
  }
  // Average over points and the four states; scale to percentage points.
  return acc / (4.0 * static_cast<double>(a.points.size())) * 100.0;
}

double MeanAbsoluteEnergyDelta(const SweepSeries& a, const SweepSeries& b) {
  Require(a.points.size() == b.points.size() && !a.points.empty(),
          "series must align");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    acc += std::abs(a.points[i].energy_joules - b.points[i].energy_joules);
  }
  return acc / static_cast<double>(a.points.size());
}

DeltaTables ComputeDeltaTables(
    const CpuEnergyModel& sim, const CpuEnergyModel& markov,
    const CpuEnergyModel& pn, CpuParams base,
    const std::vector<double>& pud_values,
    const std::vector<double>& pdt_values,
    const energy::PowerStateTable& table, double energy_horizon,
    util::ParallelExecutor& executor) {
  DeltaTables tables;
  for (double pud : pud_values) {
    CpuParams params = base;
    params.power_up_delay = pud;
    const SweepSeries s_sim = SweepPowerDownThreshold(
        sim, params, pdt_values, table, energy_horizon, executor);
    const SweepSeries s_markov = SweepPowerDownThreshold(
        markov, params, pdt_values, table, energy_horizon, executor);
    const SweepSeries s_pn = SweepPowerDownThreshold(
        pn, params, pdt_values, table, energy_horizon, executor);

    DeltaRow shares;
    shares.power_up_delay = pud;
    shares.sim_markov = MeanAbsoluteShareDeltaPct(s_sim, s_markov);
    shares.sim_pn = MeanAbsoluteShareDeltaPct(s_sim, s_pn);
    shares.markov_pn = MeanAbsoluteShareDeltaPct(s_markov, s_pn);
    tables.share_deltas.push_back(shares);

    DeltaRow energy;
    energy.power_up_delay = pud;
    energy.sim_markov = MeanAbsoluteEnergyDelta(s_sim, s_markov);
    energy.sim_pn = MeanAbsoluteEnergyDelta(s_sim, s_pn);
    energy.markov_pn = MeanAbsoluteEnergyDelta(s_markov, s_pn);
    tables.energy_deltas.push_back(energy);
  }
  return tables;
}

DeltaTables ComputeDeltaTables(
    const CpuEnergyModel& sim, const CpuEnergyModel& markov,
    const CpuEnergyModel& pn, CpuParams base,
    const std::vector<double>& pud_values,
    const std::vector<double>& pdt_values,
    const energy::PowerStateTable& table, double energy_horizon) {
  util::ParallelExecutor serial(1);
  return ComputeDeltaTables(sim, markov, pn, base, pud_values, pdt_values,
                            table, energy_horizon, serial);
}

}  // namespace wsn::core
