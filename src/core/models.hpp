// The concrete CPU energy models the paper compares, all behind the
// CpuEnergyModel interface:
//
//   SimulationCpuModel  — discrete-event simulation (the paper's Matlab
//                         simulator, rebuilt on our DES kernel); treated
//                         as ground truth.
//   MarkovCpuModel      — closed-form supplementary-variable solution
//                         (paper Section 4.1).
//   PetriNetCpuModel    — token-game simulation of the Fig. 3 EDSPN
//                         (the paper's TimeNET run, rebuilt on our SPN
//                         engine).
//
// Two additional solvers beyond the paper (used in ablations):
//
//   StagesMarkovCpuModel — method-of-stages CTMC with Erlang-k expanded
//                          deterministic delays, solved numerically.
//   PetriSolverCpuModel  — the same Fig. 3 net, solved numerically by
//                          stage expansion instead of simulation.
#pragma once

#include <memory>
#include <vector>

#include "core/cpu_petri_net.hpp"
#include "core/model.hpp"

namespace wsn::core {

class SimulationCpuModel final : public CpuEnergyModel {
 public:
  explicit SimulationCpuModel(EvalConfig config) : config_(config) {}
  ModelEvaluation Evaluate(const CpuParams& params) const override;
  std::string Name() const override { return "simulation"; }

 private:
  EvalConfig config_;
};

class MarkovCpuModel final : public CpuEnergyModel {
 public:
  ModelEvaluation Evaluate(const CpuParams& params) const override;
  std::string Name() const override { return "markov"; }
};

class PetriNetCpuModel final : public CpuEnergyModel {
 public:
  explicit PetriNetCpuModel(EvalConfig config) : config_(config) {}
  ModelEvaluation Evaluate(const CpuParams& params) const override;
  std::string Name() const override { return "petri-net"; }

 private:
  EvalConfig config_;
};

class StagesMarkovCpuModel final : public CpuEnergyModel {
 public:
  /// `stages` = Erlang-k per deterministic delay (1 = naive exponential).
  explicit StagesMarkovCpuModel(std::size_t stages) : stages_(stages) {}
  ModelEvaluation Evaluate(const CpuParams& params) const override;
  std::string Name() const override {
    return "markov-stages-k" + std::to_string(stages_);
  }

 private:
  std::size_t stages_;
};

class PetriSolverCpuModel final : public CpuEnergyModel {
 public:
  explicit PetriSolverCpuModel(std::size_t stages) : stages_(stages) {}
  ModelEvaluation Evaluate(const CpuParams& params) const override;
  std::string Name() const override {
    return "petri-solver-k" + std::to_string(stages_);
  }

 private:
  std::size_t stages_;
};

/// Exact DSPN solution of the Fig. 3 net (embedded Markov chain with
/// subordinated-CTMC transients) — no Erlang approximation, no sampling
/// noise.  The strongest evaluation method in this library; the paper's
/// EDSPN satisfies the one-deterministic-at-a-time solvability condition.
class DspnExactCpuModel final : public CpuEnergyModel {
 public:
  ModelEvaluation Evaluate(const CpuParams& params) const override;
  std::string Name() const override { return "petri-dspn-exact"; }
};

/// The paper's three-way comparison set, in presentation order.
std::vector<std::unique_ptr<CpuEnergyModel>> MakePaperModels(
    const EvalConfig& config);

}  // namespace wsn::core
