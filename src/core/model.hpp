// The common interface all CPU energy models implement — the paper's
// comparison (simulation vs Markov vs Petri net) is a loop over these.
#pragma once

#include <memory>
#include <string>

#include "core/params.hpp"
#include "energy/energy_model.hpp"
#include "energy/power_state.hpp"

namespace wsn::core {

/// What each model predicts for one parameter point.
struct ModelEvaluation {
  energy::StateShares shares;   ///< steady-state fraction per power state
  double mean_jobs = 0.0;       ///< E[jobs in system] (0 when unavailable)
  double mean_latency = 0.0;    ///< E[sojourn] seconds (0 when unavailable)
  double share_ci_halfwidth = 0.0;  ///< 95% CI half-width (simulation only)
};

class CpuEnergyModel {
 public:
  virtual ~CpuEnergyModel() = default;

  /// Evaluate the model at `params`.  Implementations must be re-entrant
  /// (no mutable shared state): sweeps fan concurrent Evaluate calls on
  /// one instance across the ParallelExecutor.
  virtual ModelEvaluation Evaluate(const CpuParams& params) const = 0;

  /// Short identifier ("simulation", "markov", "petri-net", ...).
  virtual std::string Name() const = 0;
};

/// Paper Eq. 25 on a model's predicted shares.
inline double EnergyJoules(const ModelEvaluation& eval,
                           const energy::PowerStateTable& table,
                           double seconds) {
  return energy::TotalEnergyJoules(eval.shares, table, seconds);
}

}  // namespace wsn::core
