// Experiment framework: parameter sweeps and the Δ-metrics behind the
// paper's Tables 4 and 5.
//
// The paper sweeps the Power Down Threshold over [0, 1] s for three Power
// Up Delays {0.001, 0.3, 10} s, then reports, per PUD, the *average
// absolute difference* between each pair of models — over the sweep
// points, across the four state shares (Table 4, in percentage points)
// and over the predicted energies (Table 5, joules).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/params.hpp"
#include "energy/power_state.hpp"
#include "util/executor.hpp"

namespace wsn::core {

/// One (model, parameter-point) evaluation within a sweep.
struct SweepPoint {
  CpuParams params;
  ModelEvaluation eval;
  double energy_joules = 0.0;
};

/// All evaluations of one model across the sweep.
struct SweepSeries {
  std::string model_name;
  std::vector<SweepPoint> points;
};

/// Evenly spaced values in [lo, hi] inclusive.
std::vector<double> LinearSpace(double lo, double hi, std::size_t count);

/// The paper's default PDT grid: `count` evenly spaced points over
/// 0..1 s (the zero endpoint is nudged to `eps` so every model,
/// including the closed form with e^{lambda*T}, stays in its documented
/// domain).  Requires count >= 2 and eps in (0, 1); throws
/// InvalidArgument otherwise.
std::vector<double> PaperPdtGrid(std::size_t count = 11, double eps = 1e-9);

/// Run `model` over a PDT sweep at fixed base params, computing energy
/// over `energy_horizon` seconds via Eq. 25.  Sweep points fan out
/// across `executor` (point i's result lands at index i, so the series
/// is bit-identical whatever the thread count); `model.Evaluate` must be
/// re-entrant, which every model in this library is.
SweepSeries SweepPowerDownThreshold(const CpuEnergyModel& model,
                                    CpuParams base,
                                    const std::vector<double>& pdt_values,
                                    const energy::PowerStateTable& table,
                                    double energy_horizon,
                                    util::ParallelExecutor& executor);

/// Serial convenience overload.
SweepSeries SweepPowerDownThreshold(const CpuEnergyModel& model,
                                    CpuParams base,
                                    const std::vector<double>& pdt_values,
                                    const energy::PowerStateTable& table,
                                    double energy_horizon);

/// Mean absolute state-share difference between two series, in percentage
/// points, averaged over sweep points and the four states (Table 4 cell).
double MeanAbsoluteShareDeltaPct(const SweepSeries& a, const SweepSeries& b);

/// Mean absolute energy difference in joules (Table 5 cell).
double MeanAbsoluteEnergyDelta(const SweepSeries& a, const SweepSeries& b);

/// A rendered Table 4/5 row: PUD plus the three pairwise deltas
/// (sim-markov, sim-pn, markov-pn).
struct DeltaRow {
  double power_up_delay = 0.0;
  double sim_markov = 0.0;
  double sim_pn = 0.0;
  double markov_pn = 0.0;
};

/// Compute the full Table 4 (`share_deltas`) and Table 5
/// (`energy_deltas`) for the given PUD list.  The three series per PUD
/// are produced by the supplied models (paper order: sim, markov, pn).
struct DeltaTables {
  std::vector<DeltaRow> share_deltas;   // Table 4 (percentage points)
  std::vector<DeltaRow> energy_deltas;  // Table 5 (joules)
};

DeltaTables ComputeDeltaTables(
    const CpuEnergyModel& sim, const CpuEnergyModel& markov,
    const CpuEnergyModel& pn, CpuParams base,
    const std::vector<double>& pud_values,
    const std::vector<double>& pdt_values,
    const energy::PowerStateTable& table, double energy_horizon,
    util::ParallelExecutor& executor);

/// Serial convenience overload.
DeltaTables ComputeDeltaTables(
    const CpuEnergyModel& sim, const CpuEnergyModel& markov,
    const CpuEnergyModel& pn, CpuParams base,
    const std::vector<double>& pud_values,
    const std::vector<double>& pdt_values,
    const energy::PowerStateTable& table, double energy_horizon);

}  // namespace wsn::core
