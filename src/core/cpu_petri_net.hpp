// Programmatic construction of the paper's Fig. 3 EDSPN (with Table 1's
// transition parameters) for a given CpuParams.
//
// Places: P0 (workload cycle), P1, CPU_Buffer, P6, StandBy, PowerUp,
// CPU_ON, Idle, Active.  Initial marking: P0=1, StandBy=1, Idle=1.
//
// Transitions (type, priority per Table 1):
//   AR  exp(lambda)        P0 -> P1
//   T1  immediate pri 4    P1 -> P0 + P6 + CPU_Buffer
//   T6  immediate pri 3    P6 + StandBy -> PowerUp + P6
//   PUT det(D)             PowerUp + P6 -> CPU_ON
//   T5  immediate pri 2    P6 + CPU_ON -> CPU_ON
//   T2  immediate pri 1    CPU_Buffer + Idle + CPU_ON -> Active + CPU_ON
//   SR  exp(mu)            Active -> Idle
//   PDT det(T)             CPU_ON -> StandBy, inhibited by Active and
//                          CPU_Buffer (the paper's "inverse logic" arcs)
//
// State-share mapping: standby = E[#StandBy], powerup = E[#PowerUp],
// active = E[#Active], idle = E[#CPU_ON] - E[#Active] (Active implies
// CPU_ON, and StandBy + PowerUp + CPU_ON is a P-invariant of value 1).
#pragma once

#include "core/params.hpp"
#include "petri/net.hpp"

namespace wsn::core {

/// Place/transition ids of the constructed net, so callers can read
/// statistics without name lookups.
struct CpuNetLayout {
  petri::PlaceId p0, p1, cpu_buffer, p6, standby, powerup, cpu_on, idle,
      active;
  petri::TransitionId ar, t1, t6, put, t5, t2, sr, pdt;
};

/// Build the Fig. 3 net.  When `params.power_down_threshold` or
/// `params.power_up_delay` is zero the corresponding transition becomes
/// immediate with a priority *below* every Table 1 immediate transition,
/// preserving firing order.
petri::PetriNet BuildCpuPetriNet(const CpuParams& params,
                                 CpuNetLayout* layout = nullptr);

}  // namespace wsn::core
