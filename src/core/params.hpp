// Shared parameterization of the paper's CPU model (Tables 2-3 defaults).
#pragma once

#include <cstddef>
#include <cstdint>

namespace wsn::core {

/// The four model parameters of the paper's CPU.
///
/// Note on paper Table 2: "Arrival Rate 1 per sec, Service Rate .1 per
/// sec" is read as arrival rate lambda = 1/s with *mean service time*
/// 0.1 s (mu = 10/s).  A literal service rate of 0.1/s would make the
/// queue unstable (rho = 10) and contradicts every figure; see DESIGN.md
/// section 5.
struct CpuParams {
  double arrival_rate = 1.0;          ///< lambda (jobs/s)
  double service_rate = 10.0;         ///< mu (jobs/s); mean service 1/mu
  double power_down_threshold = 0.1;  ///< T (s)
  double power_up_delay = 0.001;      ///< D (s)

  double MeanServiceTime() const noexcept { return 1.0 / service_rate; }
  double Rho() const noexcept { return arrival_rate / service_rate; }
};

/// How simulation-based models are run (paper Table 2: 1000 s horizon).
struct EvalConfig {
  double sim_time = 1000.0;       ///< horizon per replication (s)
  double warmup = 0.0;            ///< discarded prefix (s)
  std::size_t replications = 16;  ///< independent replications
  std::uint64_t seed = 42;        ///< master seed
  std::size_t threads = 0;        ///< 0 = hardware concurrency
  std::size_t det_stages = 20;    ///< Erlang stages for numerical solvers
};

}  // namespace wsn::core
