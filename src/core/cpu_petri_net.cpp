#include "core/cpu_petri_net.hpp"

#include "util/error.hpp"

namespace wsn::core {

using petri::PetriNet;

PetriNet BuildCpuPetriNet(const CpuParams& params, CpuNetLayout* layout) {
  util::Require(params.arrival_rate > 0.0, "arrival rate must be positive");
  util::Require(params.service_rate > 0.0, "service rate must be positive");
  util::Require(params.power_down_threshold >= 0.0, "T must be >= 0");
  util::Require(params.power_up_delay >= 0.0, "D must be >= 0");

  PetriNet net;
  CpuNetLayout l;

  // Places (paper Fig. 3).  Initial marking: workload cycle armed, CPU in
  // standby, the idle/active state-machine token parked in Idle.
  l.p0 = net.AddPlace("P0", 1);
  l.p1 = net.AddPlace("P1", 0);
  l.cpu_buffer = net.AddPlace("CPU_Buffer", 0);
  l.p6 = net.AddPlace("P6", 0);
  l.standby = net.AddPlace("StandBy", 1);
  l.powerup = net.AddPlace("PowerUp", 0);
  l.cpu_on = net.AddPlace("CPU_ON", 0);
  l.idle = net.AddPlace("Idle", 1);
  l.active = net.AddPlace("Active", 0);

  // AR: open workload generator (Table 1: exponential, "Arrivals").
  l.ar = net.AddExponentialTransition("AR", params.arrival_rate);
  net.AddInputArc(l.ar, l.p0);
  net.AddOutputArc(l.ar, l.p1);

  // T1 (immediate, priority 4): fan a fresh job out to the workload
  // cycle, the wake-up path and the CPU buffer.
  l.t1 = net.AddImmediateTransition("T1", 4);
  net.AddInputArc(l.t1, l.p1);
  net.AddOutputArc(l.t1, l.p0);
  net.AddOutputArc(l.t1, l.p6);
  net.AddOutputArc(l.t1, l.cpu_buffer);

  // T6 (immediate, priority 3): a job found the CPU in standby; begin
  // powering up, keeping the P6 token for the power-up gate.
  l.t6 = net.AddImmediateTransition("T6", 3);
  net.AddInputArc(l.t6, l.p6);
  net.AddInputArc(l.t6, l.standby);
  net.AddOutputArc(l.t6, l.powerup);
  net.AddOutputArc(l.t6, l.p6);

  // PUT: deterministic Power Up Delay (Table 1: "PUD").
  if (params.power_up_delay > 0.0) {
    l.put = net.AddDeterministicTransition("PUT", params.power_up_delay);
  } else {
    // D == 0: power-up is instantaneous; lowest priority keeps Table 1's
    // immediate ordering intact.
    l.put = net.AddImmediateTransition("PUT", 0);
  }
  net.AddInputArc(l.put, l.powerup);
  net.AddInputArc(l.put, l.p6);
  net.AddOutputArc(l.put, l.cpu_on);

  // T5 (immediate, priority 2): CPU already on; drain the wake-up token
  // so P6 never accumulates unboundedly (paper step 7).
  l.t5 = net.AddImmediateTransition("T5", 2);
  net.AddInputArc(l.t5, l.p6);
  net.AddInputArc(l.t5, l.cpu_on);
  net.AddOutputArc(l.t5, l.cpu_on);

  // T2 (immediate, priority 1): admit a buffered job into service.
  l.t2 = net.AddImmediateTransition("T2", 1);
  net.AddInputArc(l.t2, l.cpu_buffer);
  net.AddInputArc(l.t2, l.idle);
  net.AddInputArc(l.t2, l.cpu_on);
  net.AddOutputArc(l.t2, l.active);
  net.AddOutputArc(l.t2, l.cpu_on);

  // SR: exponential service (Table 1: "ServiceRate").
  l.sr = net.AddExponentialTransition("SR", params.service_rate);
  net.AddInputArc(l.sr, l.active);
  net.AddOutputArc(l.sr, l.idle);

  // PDT: deterministic Power Down Threshold, inhibited while a job is in
  // service or buffered (the paper's small-circle "inverse logic" arcs).
  if (params.power_down_threshold > 0.0) {
    l.pdt = net.AddDeterministicTransition("PDT",
                                           params.power_down_threshold);
  } else {
    l.pdt = net.AddImmediateTransition("PDT", 0);
  }
  net.AddInputArc(l.pdt, l.cpu_on);
  net.AddOutputArc(l.pdt, l.standby);
  net.AddInhibitorArc(l.pdt, l.active);
  net.AddInhibitorArc(l.pdt, l.cpu_buffer);

  net.Validate();
  if (layout != nullptr) *layout = l;
  return net;
}

}  // namespace wsn::core
