#include "scenario/studies.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "core/models.hpp"
#include "des/bursty_workload.hpp"
#include "scenario/common.hpp"
#include "scenario/harness.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

namespace wsn::scenario {

namespace {

/// Replication effort implied by a study's params.
netsim::ReplicationConfig RepConfig(std::size_t replications,
                                    std::uint64_t seed) {
  netsim::ReplicationConfig rep;
  rep.replications = replications;
  rep.seed = seed;
  return rep;
}

/// Flat-study config shared by the lifetime and throughput studies: a
/// node grid reporting to the origin sink.
netsim::NetSimConfig FlatGridConfig(double rate_hz, double hop_m,
                                    std::size_t cols, std::size_t rows,
                                    double spacing_m) {
  netsim::NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = rate_hz;
  cfg.network.node.cpu.service_rate =
      10.0 * cfg.network.node.cpu.arrival_rate;
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = hop_m;
  cfg.positions = node::MakeGrid(cols, rows, spacing_m);
  return cfg;
}

}  // namespace

std::vector<node::Position> NearSquareGrid(std::size_t n, double spacing) {
  const std::size_t cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  std::vector<node::Position> positions = node::MakeGrid(cols, rows, spacing);
  positions.resize(n);
  return positions;
}

netsim::NetSimConfig BuildGridConfig(const GridStudyParams& p) {
  netsim::NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = p.rate_hz;
  cfg.network.node.cpu.service_rate =
      10.0 * cfg.network.node.cpu.arrival_rate;
  cfg.network.node.cpu_power = energy::Msp430();
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = p.battery_mah;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = p.hop_m;
  cfg.positions = node::MakeGrid(p.cols, p.rows, p.spacing_m);
  cfg.horizon_s = p.horizon_s;

  // Optional extra sinks at the deployment corners (the default single
  // sink sits at the origin corner).
  util::Require(p.sinks >= 1 && p.sinks <= 4, "flag --sinks must be in 1..4");
  const double x_max = (static_cast<double>(p.cols) + 1.0) * p.spacing_m;
  const double y_max = (static_cast<double>(p.rows) + 1.0) * p.spacing_m;
  if (p.sinks >= 2) cfg.sinks = {{0.0, 0.0}, {x_max, y_max}};
  if (p.sinks >= 3) cfg.sinks.push_back({x_max, 0.0});
  if (p.sinks >= 4) cfg.sinks.push_back({0.0, y_max});
  return cfg;
}

void ApplyClusterKnobs(netsim::NetSimConfig& cfg, const ClusterKnobs& knobs) {
  cfg.cluster.protocol = knobs.protocol;
  cfg.cluster.head_fraction = knobs.head_fraction;
  cfg.cluster.static_heads = knobs.static_heads;
  cfg.cluster.round_s = knobs.round_s;
  cfg.cluster.aggregation = knobs.aggregation;
}

void AddLifetimeRows(ResultTable& table, const std::string& label,
                     const netsim::ReplicationSummary& summary) {
  table.AddRow({label, "time to first death (s)",
                MetricCell(summary.first_death_s, 1),
                ObservedCell(summary.first_death_s.observed,
                             summary.replications)});
  table.AddRow({label, "time to partition (s)",
                MetricCell(summary.partition_s, 1),
                ObservedCell(summary.partition_s.observed,
                             summary.replications)});
  table.AddRow({label, "delivery ratio", MetricCell(summary.delivery_ratio, 4),
                ObservedCell(summary.replications, summary.replications)});
  table.AddRow({label, "samples delivered", MetricCell(summary.delivered, 1),
                ObservedCell(summary.replications, summary.replications)});
}

void RequireEqualReports(const netsim::NetSimReport& a,
                         const netsim::NetSimReport& b,
                         const std::string& where, std::size_t rep) {
  const auto fail = [&](const char* what) {
    throw util::Error(where + " diverged from its oracle at replication " +
                      std::to_string(rep) + " (" + what + ")");
  };
  if (a.events != b.events) fail("DES events");
  if (a.packets.generated != b.packets.generated) fail("generated");
  if (a.packets.delivered != b.packets.delivered) fail("delivered");
  if (a.packets.forwarded != b.packets.forwarded) fail("forwarded");
  if (a.packets.retransmissions != b.packets.retransmissions) {
    fail("retransmissions");
  }
  if (a.packets.dropped != b.packets.dropped) fail("drops by reason");
  if (a.crashes != b.crashes) fail("crashes");
  if (a.recoveries != b.recoveries) fail("recoveries");
  if (a.first_death_s != b.first_death_s) fail("first death");
  if (a.partition_s != b.partition_s) fail("partition instant");
  if (a.heal_s != b.heal_s) fail("heal instant");
  if (a.in_flight != b.in_flight) fail("in-flight payloads");
  if (a.end_s != b.end_s) fail("end instant");
}

void RequireConserved(const netsim::NetSimReport& report,
                      const std::string& where, std::size_t rep) {
  if (report.Conserved()) return;
  throw util::Error(
      where + " violated packet conservation at replication " +
      std::to_string(rep) + ": generated " +
      std::to_string(report.packets.generated) + " != delivered " +
      std::to_string(report.packets.delivered) + " + dropped " +
      std::to_string(report.packets.TotalDropped()) + " + in flight " +
      std::to_string(report.in_flight));
}

// ------------------------------------------------------------------------
// netsim-lifetime

ResultSet RunLifetimeStudy(const ScenarioContext& ctx,
                           const LifetimeStudyParams& p) {
  netsim::NetSimConfig cfg =
      FlatGridConfig(p.rate_hz, p.hop_m, p.cols, p.rows, p.spacing_m);
  cfg.network.node.cpu_power = energy::Msp430();
  cfg.network.node.battery_mah = p.battery_mah;
  cfg.horizon_s = p.horizon_s;
  cfg.stop_at_partition = true;  // measure the connected phase
  cfg.timeline_interval_s = cfg.horizon_s / 20.0;

  if (!p.steady) {
    // Event-storm traffic: mostly quiet at 20% of the nominal rate, with
    // occasional bursts at 10x (long-run mean close to the nominal rate).
    const double rate = cfg.network.node.cpu.arrival_rate;
    cfg.traffic_factory = [rate](std::size_t) {
      return std::make_unique<des::MmppWorkload>(
          std::vector<double>{0.2 * rate, 10.0 * rate},
          std::vector<std::vector<double>>{{-0.02, 0.02}, {0.2, -0.2}});
    };
  }

  netsim::ReplicationConfig rep = RepConfig(p.replications, p.seed);
  rep.keep_reports = true;
  ApplyObs(ctx, cfg);

  const core::MarkovCpuModel model;
  const netsim::ReplicationSummary summary =
      RunReplications(cfg, model, rep, ctx.Executor());
  ContributeObs(ctx, summary);

  ResultSet results("netsim lifetime study: deaths, re-routing, partition");
  results.SetMeta("nodes", std::to_string(cfg.positions.size()));
  results.SetMeta("traffic", p.steady ? "steady Poisson" : "bursty MMPP");
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("horizon", util::FormatFixed(cfg.horizon_s, 0) + " s");
  results.SetMeta("seed", std::to_string(rep.seed));

  ResultTable& lifetimes = results.AddTable(
      "summary", {"metric", "mean +- 95% CI", "observed in"});
  lifetimes.AddRow({"time to first death (s)",
                    MetricCell(summary.first_death_s, 1),
                    ObservedCell(summary.first_death_s.observed,
                                 summary.replications)});
  lifetimes.AddRow({"time to partition (s)",
                    MetricCell(summary.partition_s, 1),
                    ObservedCell(summary.partition_s.observed,
                                 summary.replications)});
  lifetimes.AddRow({"delivery ratio", MetricCell(summary.delivery_ratio, 4),
                    ObservedCell(summary.replications, summary.replications)});
  lifetimes.AddRow({"packets delivered", MetricCell(summary.delivered, 1),
                    ObservedCell(summary.replications, summary.replications)});

  // Zoom into replication 0: the hot path near the sink dies first.
  const netsim::NetSimReport& rep0 = summary.reports.front();
  ResultTable& nodes = results.AddTable(
      "replication-0-nodes", {"node", "pos", "generated", "forwarded",
                              "dropped", "energy (J)", "death (s)"});
  std::size_t shown = 0;
  for (std::size_t i = 0; i < rep0.nodes.size() && shown < 10; ++i) {
    const netsim::NodeSimStats& n = rep0.nodes[i];
    if (n.alive && shown >= 5) continue;  // highlight the casualties
    ++shown;
    nodes.AddRow({std::to_string(i),
                  "(" + util::FormatFixed(cfg.positions[i].x, 0) + "," +
                      util::FormatFixed(cfg.positions[i].y, 0) + ")",
                  std::to_string(n.generated), std::to_string(n.forwarded),
                  std::to_string(n.dropped),
                  util::FormatFixed(n.energy_used_j, 3),
                  std::isfinite(n.death_s) ? util::FormatFixed(n.death_s, 1)
                                           : std::string("alive")});
  }

  ResultTable& drops =
      results.AddTable("replication-0-drops", {"drop reason", "packets"});
  for (std::size_t r = 0; r < netsim::kDropReasonCount; ++r) {
    const auto reason = static_cast<netsim::DropReason>(r);
    drops.AddRow({netsim::DropReasonName(reason),
                  std::to_string(rep0.packets.Dropped(reason))});
  }

  results.AddNote(
      "replication 0: generated " + std::to_string(rep0.packets.generated) +
      ", delivered " + std::to_string(rep0.packets.delivered) +
      ", first death " +
      (std::isfinite(rep0.first_death_s)
           ? "at " + util::FormatFixed(rep0.first_death_s, 1) + " s (node " +
                 std::to_string(rep0.first_dead_node) + ")"
           : std::string("never")) +
      ", partition " +
      (std::isfinite(rep0.partition_s)
           ? "at " + util::FormatFixed(rep0.partition_s, 1) + " s"
           : std::string("never")) +
      ", " + std::to_string(rep0.events) + " events");
  return results;
}

// ------------------------------------------------------------------------
// netsim-throughput

ResultSet RunThroughputStudy(const ScenarioContext& ctx,
                             const ThroughputStudyParams& p) {
  netsim::NetSimConfig cfg =
      FlatGridConfig(p.rate_hz, p.hop_m, p.cols, p.rows, p.spacing_m);
  cfg.network.node.cpu_power = energy::Pxa271();
  cfg.horizon_s = p.horizon_s;
  // Clustered mode benchmarks the LEACH data path (elections,
  // aggregation) instead of flat greedy multi-hop.
  if (p.clustered) {
    cfg.cluster.protocol = netsim::ClusterProtocolKind::kLeach;
    cfg.cluster.round_s = cfg.horizon_s / 5.0;
    cfg.cluster.aggregation = 4;
  }

  const netsim::ReplicationConfig rep = RepConfig(p.replications, p.seed);
  const core::MarkovCpuModel model;

  ResultSet results("netsim replication throughput: serial vs executor");
  results.SetMeta("routing",
                  p.clustered ? "clustered (leach)" : "flat greedy");
  results.SetMeta("nodes", std::to_string(cfg.positions.size()));
  results.SetMeta("horizon", util::FormatFixed(cfg.horizon_s, 0) + " s");
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("hardware-threads",
                  std::to_string(std::thread::hardware_concurrency()));

  const auto timed = [&](util::ParallelExecutor& executor) {
    const auto start = std::chrono::steady_clock::now();
    const netsim::ReplicationSummary summary =
        RunReplications(cfg, model, rep, executor);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return std::make_pair(summary, wall);
  };

  util::ParallelExecutor serial_exec(1);
  const auto [serial, serial_s] = timed(serial_exec);
  // Observe only the executor leg: contributing both legs would double
  // every counter for what is conceptually one benchmarked workload.
  ApplyObs(ctx, cfg);
  const auto [parallel, parallel_s] = timed(ctx.Executor());
  ContributeObs(ctx, parallel);

  const double reps = static_cast<double>(rep.replications);
  ResultTable& table = results.AddTable(
      "throughput", {"mode", "threads", "wall (s)", "replications/s",
                     "speedup"});
  table.AddRow({"serial", "1", util::FormatFixed(serial_s, 3),
                util::FormatFixed(reps / serial_s, 2), "1.00"});
  table.AddRow({"executor", std::to_string(ctx.Executor().ThreadCount()),
                util::FormatFixed(parallel_s, 3),
                util::FormatFixed(reps / parallel_s, 2),
                util::FormatFixed(serial_s / parallel_s, 2)});

  results.AddNote("checks: delivery ratio " +
                  util::FormatInterval(serial.delivery_ratio.ci.mean,
                                       serial.delivery_ratio.ci.half_width,
                                       4) +
                  " (serial) vs " +
                  util::FormatInterval(parallel.delivery_ratio.ci.mean,
                                       parallel.delivery_ratio.ci.half_width,
                                       4) +
                  " (parallel) — identical streams, identical results");
  return results;
}

// ------------------------------------------------------------------------
// netsim-clustered

ResultSet RunClusteredStudy(const ScenarioContext& ctx,
                            const ClusteredStudyParams& p) {
  netsim::NetSimConfig cfg = BuildGridConfig(p.grid);
  ApplyClusterKnobs(cfg, p.cluster);

  netsim::ReplicationConfig rep = RepConfig(p.replications, p.seed);
  rep.keep_reports = true;  // the rotation/head tables read the reports
  ApplyObs(ctx, cfg);
  const core::MarkovCpuModel model;
  const netsim::ReplicationSummary summary =
      RunReplications(cfg, model, rep, ctx.Executor());
  ContributeObs(ctx, summary);

  ResultSet results(
      "clustered collection: rotating heads, aggregation, multi-sink");
  results.SetMeta("nodes", std::to_string(cfg.positions.size()));
  results.SetMeta("sinks",
                  std::to_string(netsim::EffectiveSinks(cfg).size()));
  results.SetMeta("protocol",
                  netsim::ClusterProtocolKindName(cfg.cluster.protocol));
  results.SetMeta("round", util::FormatFixed(cfg.cluster.round_s, 0) + " s");
  results.SetMeta("aggregation", std::to_string(cfg.cluster.aggregation));
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("seed", std::to_string(rep.seed));

  ResultTable& lifetimes = results.AddTable(
      "summary", {"protocol", "metric", "mean +- 95% CI", "observed in"});
  AddLifetimeRows(lifetimes,
                  netsim::ClusterProtocolKindName(cfg.cluster.protocol),
                  summary);
  ResultTable& rotation = results.AddTable(
      "rotation", {"metric", "mean over replications"});
  rotation.AddRow({"cluster rounds",
                   util::FormatFixed(
                       MeanOverReports(summary,
                                       [](const netsim::NetSimReport& r) {
                                         return static_cast<double>(r.rounds);
                                       }),
                       2)});
  rotation.AddRow(
      {"elections (rounds + repairs)",
       util::FormatFixed(
           MeanOverReports(summary,
                           [](const netsim::NetSimReport& r) {
                             return static_cast<double>(r.elections);
                           }),
           2)});
  rotation.AddRow(
      {"distinct nodes elected head",
       util::FormatFixed(
           MeanOverReports(
               summary,
               [](const netsim::NetSimReport& r) {
                 std::size_t distinct = 0;
                 for (const netsim::NodeSimStats& n : r.nodes) {
                   if (n.head_elections > 0) ++distinct;
                 }
                 return static_cast<double>(distinct);
               }),
           2)});

  // Zoom into replication 0: who served as head and what it cost them.
  const netsim::NetSimReport& rep0 = summary.reports.front();
  ResultTable& heads = results.AddTable(
      "replication-0-heads",
      {"node", "head elections", "samples aggregated", "energy (J)",
       "death (s)"});
  std::size_t shown = 0;
  for (std::size_t i = 0; i < rep0.nodes.size() && shown < 10; ++i) {
    const netsim::NodeSimStats& n = rep0.nodes[i];
    if (n.head_elections == 0) continue;
    ++shown;
    heads.AddRow({std::to_string(i), std::to_string(n.head_elections),
                  std::to_string(n.aggregated),
                  util::FormatFixed(n.energy_used_j, 3),
                  std::isfinite(n.death_s) ? util::FormatFixed(n.death_s, 1)
                                           : std::string("alive")});
  }

  ResultTable& drops =
      results.AddTable("replication-0-drops", {"drop reason", "samples"});
  for (std::size_t r = 0; r < netsim::kDropReasonCount; ++r) {
    const auto reason = static_cast<netsim::DropReason>(r);
    drops.AddRow({netsim::DropReasonName(reason),
                  std::to_string(rep0.packets.Dropped(reason))});
  }
  results.AddNote("replication 0: generated " +
                  std::to_string(rep0.packets.generated) + ", delivered " +
                  std::to_string(rep0.packets.delivered) + " samples over " +
                  std::to_string(rep0.rounds) + " rounds (" +
                  std::to_string(rep0.elections) + " elections), " +
                  std::to_string(rep0.events) + " events");
  return results;
}

// ------------------------------------------------------------------------
// netsim-heterogeneous

ResultSet RunHeterogeneousStudy(const ScenarioContext& ctx,
                                const HeterogeneousStudyParams& p) {
  util::Require(p.advanced_fraction >= 0.0 && p.advanced_fraction <= 1.0,
                "advanced fraction must be in [0, 1]");
  util::Require(p.battery_factor > 0.0, "battery factor must be positive");

  netsim::NetSimConfig cfg = BuildGridConfig(p.grid);
  cfg.rerouting = false;
  cfg.stop_at_first_death = true;

  // Named hardware profiles: "advanced" nodes carry battery_factor times
  // the standard battery.
  netsim::NodeClass standard;
  standard.name = "standard";
  standard.battery_mah = cfg.network.node.battery_mah;
  standard.battery_volts = cfg.network.node.battery_volts;
  standard.radio = cfg.network.node.radio;
  standard.listen_duty_cycle = cfg.network.node.listen_duty_cycle;
  netsim::NodeClass advanced = standard;
  advanced.name = "advanced";
  advanced.battery_mah = standard.battery_mah * p.battery_factor;

  cfg.classes = {standard, advanced};
  const std::size_t n = cfg.positions.size();
  const std::size_t advanced_count = static_cast<std::size_t>(
      std::lround(p.advanced_fraction * static_cast<double>(n)));
  cfg.node_class.assign(n, "standard");

  const core::MarkovCpuModel model;
  const node::Network analytic_net(cfg.network, cfg.positions);
  const node::NetworkReport analytic_homo = analytic_net.Evaluate(model);

  if (advanced_count > 0 && p.placement == "hotspot") {
    // Give the big batteries to the nodes the analytic estimator says
    // carry the most relay traffic — the hot path near the sink.  This
    // is where per-node hardware actually moves the first-death time.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double la = analytic_homo.nodes[a].relay_packets_per_second;
      const double lb = analytic_homo.nodes[b].relay_packets_per_second;
      if (la != lb) return la > lb;
      return a < b;
    });
    for (std::size_t j = 0; j < advanced_count; ++j) {
      cfg.node_class[order[j]] = "advanced";
    }
  } else if (advanced_count > 0 && p.placement == "spread") {
    // Evenly strided across the index order, blind to load.
    for (std::size_t j = 0; j < advanced_count; ++j) {
      const std::size_t pick = (j * n + n / 2) / advanced_count;
      cfg.node_class[std::min(pick, n - 1)] = "advanced";
    }
  } else {
    util::Require(p.placement == "hotspot" || p.placement == "spread",
                  "placement must be hotspot or spread");
  }

  netsim::NetSimConfig homogeneous = cfg;
  homogeneous.classes.clear();
  homogeneous.node_class.clear();

  const netsim::ReplicationConfig rep = RepConfig(p.replications, p.seed);
  ApplyObs(ctx, cfg);
  ApplyObs(ctx, homogeneous);
  const netsim::ReplicationSummary hetero =
      RunReplications(cfg, model, rep, ctx.Executor());
  const netsim::ReplicationSummary homo =
      RunReplications(homogeneous, model, rep, ctx.Executor());
  ContributeObs(ctx, hetero);
  ContributeObs(ctx, homo);

  // Analytic cross-check on the identical topology and per-node hardware.
  const node::NetworkReport analytic_hetero =
      analytic_net.Evaluate(model, netsim::PerNodeConfigs(cfg));

  ResultSet results(
      "heterogeneous node classes: mixed batteries vs the analytic "
      "estimator");
  results.SetMeta("nodes", std::to_string(n));
  results.SetMeta("advanced nodes", std::to_string(advanced_count));
  results.SetMeta("placement", p.placement);
  results.SetMeta("battery factor", util::FormatFixed(p.battery_factor, 2));
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("seed", std::to_string(rep.seed));

  ResultTable& table = results.AddTable(
      "first-death",
      {"deployment", "simulated first death (s)", "analytic first death (s)",
       "relative error"});
  const auto row = [&](const std::string& label,
                       const netsim::ReplicationSummary& summary,
                       const node::NetworkReport& analytic) {
    // No observed death before the horizon means there is nothing to
    // compare against the analytic lifetime.
    std::string error_cell = "n/a";
    if (summary.first_death_s.observed > 0) {
      const double mean = summary.first_death_s.ci.mean;
      const double rel = std::abs(mean - analytic.network_lifetime_seconds) /
                         analytic.network_lifetime_seconds;
      error_cell = util::FormatFixed(100.0 * rel, 2) + " %";
    }
    table.AddRow({label, MetricCell(summary.first_death_s, 1),
                  util::FormatFixed(analytic.network_lifetime_seconds, 1),
                  error_cell});
  };
  row("homogeneous (all standard)", homo, analytic_homo);
  row("heterogeneous (" + std::to_string(advanced_count) + " advanced)",
      hetero, analytic_hetero);

  ResultTable& verdict = results.AddTable(
      "lifetime-gain", {"metric", "value"});
  const bool both_died = hetero.first_death_s.observed > 0 &&
                         homo.first_death_s.observed > 0;
  verdict.AddRow(
      {"first-death gain (hetero / homo)",
       both_died ? util::FormatFixed(hetero.first_death_s.ci.mean /
                                         homo.first_death_s.ci.mean,
                                     3)
                 : std::string("n/a")});
  verdict.AddRow({"analytic bottleneck node (hetero)",
                  std::to_string(analytic_hetero.bottleneck_node)});
  results.AddNote(
      "rerouting is disabled and traffic is steady Poisson, so the "
      "simulated first death is directly comparable to the analytic "
      "per-node estimate — the heterogeneous counterpart of the "
      "test_netsim convergence anchor (the first death is a minimum over "
      "nodes, so with several near-tied lifetimes the simulated mean sits "
      "slightly below the analytic value)");
  return results;
}

// ------------------------------------------------------------------------
// netsim-faults

namespace {

struct CellOutcome {
  std::uint64_t crashes = 0;     ///< summed over replications
  std::uint64_t recoveries = 0;  ///< summed over replications
  std::uint64_t in_flight = 0;   ///< summed over replications
  std::size_t partitioned = 0;   ///< reps that partitioned
  std::size_t healed = 0;        ///< reps whose partition healed
};

}  // namespace

ResultSet RunFaultStudy(const ScenarioContext& ctx,
                        const FaultStudyParams& p) {
  const double jam_duration =
      p.jam_duration_s > 0.0 ? p.jam_duration_s : p.horizon_s / 10.0;
  const double sink_outage_s =
      p.sink_outage_s > 0.0 ? p.sink_outage_s : p.horizon_s / 10.0;
  netsim::ReplicationConfig rep = RepConfig(p.replications, p.seed);
  rep.keep_reports = true;

  ResultSet results(
      "fault injection: node churn, jam windows and sink outages with "
      "differential verification of the incremental repair paths");
  results.SetMeta("nodes", std::to_string(p.nodes));
  results.SetMeta("spacing", util::FormatFixed(p.spacing_m, 0) + " m");
  results.SetMeta("hop", util::FormatFixed(p.hop_m, 0) + " m");
  results.SetMeta("rate", util::FormatFixed(p.rate_hz, 3) + " /s per node");
  results.SetMeta("horizon", util::FormatFixed(p.horizon_s, 0) + " s");
  results.SetMeta("jam-windows", std::to_string(p.jam_windows));
  results.SetMeta("sink-outages", std::to_string(p.sink_outages));
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("seed", std::to_string(rep.seed));

  ResultTable& table = results.AddTable(
      "faults",
      {"config", "crash rate (1/s)", "outage (s)", "crashes", "recoveries",
       "delivery ratio", "delivered", "partitioned", "healed", "in flight",
       "conserved"});

  const core::MarkovCpuModel model;
  // `cctx` rather than the outer ctx: under the point harness each cell
  // runs in a sub-context whose executor may live inside a forked
  // worker (scenario/harness.hpp).
  const auto run_cell = [&](const ScenarioContext& cctx,
                            netsim::NetSimConfig cfg,
                            const std::string& label)
      -> std::pair<netsim::ReplicationSummary, CellOutcome> {
    ApplyObs(cctx, cfg);
    netsim::ReplicationSummary summary =
        RunReplications(cfg, model, rep, cctx.Executor());
    ContributeObs(cctx, summary);

    // Oracle twin: identical streams, full recompute after every fault
    // event.  The oracle batch contributes no observability output —
    // it exists only to be compared against.
    netsim::NetSimConfig oracle = cfg;
    oracle.obs = obs::ObsConfig{};
    if (oracle.cluster.protocol == netsim::ClusterProtocolKind::kNone) {
      oracle.routing_update = netsim::RoutingUpdateMode::kFull;
    } else {
      oracle.cluster.assign = netsim::HeadAssignMode::kAllPairs;
    }
    const netsim::ReplicationSummary shadow =
        RunReplications(oracle, model, rep, cctx.Executor());

    CellOutcome out;
    for (std::size_t r = 0; r < summary.reports.size(); ++r) {
      const netsim::NetSimReport& report = summary.reports[r];
      RequireEqualReports(report, shadow.reports[r],
                          "netsim-faults: " + label, r);
      RequireConserved(report, "netsim-faults: " + label, r);
      out.crashes += report.crashes;
      out.recoveries += report.recoveries;
      out.in_flight += report.in_flight;
      const double inf = std::numeric_limits<double>::infinity();
      if (report.partition_s != inf) ++out.partitioned;
      if (report.heal_s != inf) ++out.healed;
    }
    return {std::move(summary), out};
  };

  for (const double crash_rate : p.crash_rates) {
    for (const double outage : p.outages) {
      netsim::NetSimConfig cfg;
      cfg.network.node.cpu.arrival_rate = p.rate_hz;
      cfg.network.node.cpu.service_rate = 10.0 * std::max(p.rate_hz, 0.1);
      cfg.network.node.cpu_power = energy::Msp430();
      cfg.network.node.sample_bits = 1024;
      cfg.network.node.listen_duty_cycle = 0.01;
      cfg.network.sink = {0.0, 0.0};
      cfg.network.max_hop_m = p.hop_m;
      cfg.positions = NearSquareGrid(p.nodes, p.spacing_m);
      cfg.horizon_s = p.horizon_s;
      cfg.faults.crash_rate_hz = crash_rate;
      cfg.faults.mean_outage_s = outage;
      cfg.faults.jam_windows = p.jam_windows;
      cfg.faults.jam_radius_m = p.jam_radius_m;
      cfg.faults.jam_duration_s = jam_duration;
      cfg.faults.jam_p_loss = p.jam_p_loss;
      cfg.faults.sink_outages = p.sink_outages;
      cfg.faults.sink_outage_s = sink_outage_s;

      // One sweep point per (mode, crash rate, outage): each runs (or
      // replays) through the point harness, with the whole production-
      // vs-oracle differential inside the point.
      const auto point_row = [&](const ScenarioContext& cctx,
                                 netsim::NetSimConfig cell_cfg,
                                 const std::string& label)
          -> std::vector<std::string> {
        const auto [summary, out] = run_cell(cctx, std::move(cell_cfg), label);
        return {label,
                util::FormatFixed(crash_rate, 4),
                util::FormatFixed(outage, 0),
                std::to_string(out.crashes),
                std::to_string(out.recoveries),
                MetricCell(summary.delivery_ratio, 4),
                MetricCell(summary.delivered, 1),
                ObservedCell(out.partitioned, summary.replications),
                ObservedCell(out.healed, summary.replications),
                std::to_string(out.in_flight),
                "yes"};
      };
      const std::string suffix = " r=" + util::FormatFixed(crash_rate, 4) +
                                 " o=" + util::FormatFixed(outage, 0);

      cfg.routing_update = netsim::RoutingUpdateMode::kIncremental;
      RunPointRow(ctx, table, "faults:flat" + suffix, p.seed, "flat" + suffix,
                  [&](const ScenarioContext& cctx, const PointEnv&) {
                    return point_row(cctx, cfg, "flat" + suffix);
                  });

      netsim::NetSimConfig ccfg = cfg;
      ccfg.cluster.protocol = netsim::ClusterProtocolKind::kLeach;
      ccfg.cluster.head_fraction = 0.1;
      ccfg.cluster.round_s = p.horizon_s / 10.0;
      ccfg.cluster.aggregation = 4;
      ccfg.cluster.assign = netsim::HeadAssignMode::kGrid;
      RunPointRow(ctx, table, "faults:clustered" + suffix, p.seed,
                  "clustered" + suffix,
                  [&](const ScenarioContext& cctx, const PointEnv&) {
                    return point_row(cctx, ccfg, "clustered" + suffix);
                  });
    }
  }

  results.AddNote(
      "every replication ran twice: the production paths (incremental "
      "routing repair / grid head assignment) against their oracle "
      "(full recompute after every fault event / all-pairs assignment); "
      "the run aborts on any field divergence or packet-conservation "
      "violation, so a completed table doubles as a chaos-differential "
      "pass.  'healed' counts replications whose partition later closed "
      "when a crashed cut vertex recovered.  All columns are "
      "deterministic per seed: rerunning with any --threads value must "
      "produce byte-identical output.");
  return results;
}

}  // namespace wsn::scenario
