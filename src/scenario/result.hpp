/// \file
/// Structured result sink for the scenario engine.
///
/// Every scenario produces a ResultSet: an ordered list of named tables
/// plus free-form notes and (key, value) metadata.  One ResultSet renders
/// to all three supported sinks —
///
///   * text: the diff-friendly column-aligned format the paper-artifact
///     binaries have always printed (util::TextTable underneath);
///   * csv:  RFC-4180 rows, one block per table, each preceded by a
///     `# table: <name>` comment line so multi-table sets stay parseable;
///   * json: a single document {scenario, meta, notes, tables[...]} for
///     CI and BENCH_*.json consumers (util::JsonWriter underneath).
///
/// Cells are stored as already-formatted strings: formatting happens once,
/// in the scenario, so all three renderings agree byte-for-byte on the
/// numbers and the determinism tests can compare whole documents.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace wsn::scenario {

/// One named table of pre-formatted string cells.
struct ResultTable {
  std::string name;                           ///< table key ("summary", ...)
  std::vector<std::string> headers;           ///< column names
  std::vector<std::vector<std::string>> rows; ///< cells, one vector per row

  /// Append a row; arity must match the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: fixed-precision doubles.
  void AddNumericRow(const std::vector<double>& cells, int precision = 4);
};

/// The three rendering sinks a ResultSet supports.
enum class OutputFormat {
  kText,  ///< aligned, diff-friendly text
  kCsv,   ///< RFC-4180, one `# table:` block per table
  kJson,  ///< one JSON document
};

/// Parse "table" | "csv" | "json" (throws InvalidArgument otherwise).
OutputFormat ParseOutputFormat(const std::string& s);

/// Ordered collection of tables + metadata + notes a scenario returns.
class ResultSet {
 public:
  /// A result set for the scenario named `scenario_name`.
  explicit ResultSet(std::string scenario_name = "");

  /// The owning scenario's registry name.
  const std::string& ScenarioName() const noexcept { return scenario_; }

  /// Add a table and return a reference for row-filling (stable until the
  /// next AddTable call).
  ResultTable& AddTable(std::string name, std::vector<std::string> headers);

  /// Free-form commentary rendered after the tables (text), collected
  /// into a "notes" array (json), or emitted as `# note:` comment lines
  /// (csv).
  void AddNote(std::string note);

  /// Ordered metadata (effort knobs, seeds) for the json "meta" object;
  /// rendered as `# meta` comments in csv and a header block in text.
  void SetMeta(std::string key, std::string value);

  /// The tables in insertion order.
  const std::vector<ResultTable>& Tables() const noexcept { return tables_; }
  /// The notes in insertion order.
  const std::vector<std::string>& Notes() const noexcept { return notes_; }

  /// Render as aligned text (see file comment).
  std::string RenderText() const;
  /// Render as RFC-4180 CSV blocks (see file comment).
  std::string RenderCsv() const;
  /// Render as one JSON document (see file comment).
  std::string RenderJson() const;
  /// Render through the sink selected by `format`.
  std::string Render(OutputFormat format) const;

 private:
  std::string scenario_;
  std::vector<ResultTable> tables_;
  std::vector<std::string> notes_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

}  // namespace wsn::scenario
