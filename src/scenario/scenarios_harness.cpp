// harness-chaos: the execution-layer self-test (docs/robustness.md).
//
// For every seed in a matrix, and for worker executor widths 1 and 4,
// the scenario runs one small deterministic sweep three ways:
//
//   1. baseline — every point inline, no harness at all;
//   2. chaos — every point in a forked worker that kills itself with a
//      deterministically random signal (SIGKILL/SIGSEGV/SIGABRT/
//      SIGTERM) on early attempts, *after* computing its result, so the
//      retry machinery has to recover real mid-point crashes;
//   3. interrupted + resumed — chaos again, but the driver "dies" after
//      journaling half the points, then a second harness with --resume
//      replays the completed half and executes the rest.
//
// The rendered sweep output of (3) must be byte-identical to (1): a
// crash-riddled, interrupted-then-resumed run and a clean run are
// indistinguishable downstream.  A final check exercises --keep-going:
// a point whose worker dies on every attempt must yield an explicit
// error row, never a lost sweep.  Everything is deterministic per seed;
// the chaos schedule is a pure hash of (seed, point, attempt).
#include <signal.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "netsim/replication.hpp"
#include "scenario/common.hpp"
#include "scenario/harness.hpp"
#include "scenario/scenario.hpp"
#include "scenario/studies.hpp"
#include "util/error.hpp"
#include "util/executor.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace wsn::scenario {
namespace {

/// "11,17,23" -> {11, 17, 23}; throws InvalidArgument on junk or empty.
std::vector<std::uint64_t> ParseSeeds(const std::string& csv) {
  std::vector<std::uint64_t> seeds;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    try {
      std::size_t used = 0;
      const unsigned long long v = std::stoull(item, &used);
      util::Require(used == item.size() && !item.empty(), "trailing junk");
      seeds.push_back(v);
    } catch (const std::exception&) {
      throw util::InvalidArgument("--seeds: '" + item +
                                  "' is not a non-negative integer");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  util::Require(!seeds.empty(), "--seeds must name at least one seed");
  return seeds;
}

/// The chaos schedule: a pure hash of (seed, point, attempt).  Attempts
/// 0 and 1 may die (p = 1/2 and 1/4); attempt 2 always survives, so
/// with >= 2 retries every point eventually completes.
bool ShouldKill(std::uint64_t seed, std::size_t point, std::size_t attempt,
                int* signal_out) {
  std::uint64_t h = util::Fnv1a64Mix(seed);
  h = util::Fnv1a64Mix(point, h);
  h = util::Fnv1a64Mix(attempt, h);
  // FNV's low bits are parities of the input bits — finalize through
  // SplitMix64 so the kill decision actually avalanches per seed.
  h = util::SplitMix64(h)();
  const bool kill =
      attempt == 0 ? (h % 2 == 0) : (attempt == 1 && h % 4 == 0);
  if (!kill) return false;
  static const int kSignals[] = {SIGKILL, SIGSEGV, SIGABRT, SIGTERM};
  *signal_out = kSignals[(h >> 8) % 4];
  return true;
}

struct ChaosParams {
  std::size_t points = 5;
  std::size_t replications = 2;
  double horizon_s = 300.0;
};

/// One sweep point's real work: a small netsim replication batch whose
/// report rate varies per point.  Deterministic per (seed, point,
/// replications) and independent of the executor width — exactly the
/// contract the byte-identity checks lean on.
std::vector<std::string> PointCells(const ChaosParams& params,
                                    std::size_t point, std::uint64_t seed,
                                    util::ParallelExecutor& executor) {
  GridStudyParams grid;
  grid.cols = 4;
  grid.rows = 3;
  grid.rate_hz = 1.0 + 0.5 * static_cast<double>(point);
  grid.horizon_s = params.horizon_s;
  netsim::NetSimConfig cfg = BuildGridConfig(grid);
  netsim::ReplicationConfig rep;
  rep.replications = params.replications;
  rep.seed = seed;
  rep.keep_reports = true;
  const core::MarkovCpuModel model;
  const netsim::ReplicationSummary summary =
      netsim::RunReplications(cfg, model, rep, executor);
  const std::string label =
      "rate=" + util::FormatFixed(grid.rate_hz, 1);
  for (std::size_t r = 0; r < summary.reports.size(); ++r) {
    RequireConserved(summary.reports[r], "chaos point '" + label + "'", r);
  }
  return {label, MetricCell(summary.first_death_s, 1),
          MetricCell(summary.delivery_ratio, 4),
          MetricCell(summary.delivered, 1), "yes"};
}

const std::vector<std::string> kInnerHeaders = {
    "config", "first death (s)", "delivery ratio", "delivered", "conserved"};

/// Render the inner sweep table the way the comparison consumes it.
std::string RenderInner(const std::vector<std::vector<std::string>>& rows,
                        std::uint64_t seed, std::size_t width) {
  ResultSet inner("chaos inner sweep");
  inner.SetMeta("seed", std::to_string(seed));
  inner.SetMeta("width", std::to_string(width));
  ResultTable& table = inner.AddTable("sweep", kInnerHeaders);
  for (const std::vector<std::string>& row : rows) table.AddRow(row);
  return inner.Render(OutputFormat::kJson);
}

struct ChaosOutcome {
  std::size_t killed = 0;    ///< workers that died to a chaos signal
  std::size_t replayed = 0;  ///< points replayed from the journal
  bool identical = false;    ///< resumed render == baseline render
};

/// Run the full baseline / chaos / interrupt+resume exercise for one
/// (seed, executor width) cell.  Throws util::Error on any divergence.
ChaosOutcome RunChaosCell(const ChaosParams& params, std::uint64_t seed,
                          std::size_t width,
                          const std::filesystem::path& dir) {
  // ---- baseline: inline, no harness -------------------------------
  util::ParallelExecutor executor(width);
  std::vector<std::vector<std::string>> baseline_rows;
  for (std::size_t i = 0; i < params.points; ++i) {
    baseline_rows.push_back(PointCells(params, i, seed, executor));
  }
  const std::string baseline = RenderInner(baseline_rows, seed, width);

  const std::string journal =
      (dir / ("chaos_" + std::to_string(seed) + "_w" +
              std::to_string(width) + ".jsonl"))
          .string();
  HarnessOptions options;
  options.isolate = true;
  options.retries = 3;     // chaos never kills attempt 2: always enough
  options.backoff_s = 0.0; // the self-test does not really sleep
  options.journal_path = journal;
  options.threads = width;
  const std::string run_id = util::HexU64(util::Fnv1a64Mix(seed));

  const auto point_fn = [&params, seed](std::size_t i) {
    return [&params, seed, i](const PointEnv& env) {
      std::vector<std::string> cells;
      {
        // Fresh executor handed in by the harness (forked child).
        cells = PointCells(params, i, seed, *env.executor);
      }
      int sig = 0;
      if (env.isolated && ShouldKill(seed, i, env.attempt, &sig)) {
        // Mid-point death: the work is done but the result never
        // reaches the parent — the crash the retry layer must absorb.
        ::raise(sig);
      }
      return EncodeCells(cells);
    };
  };
  const auto key = [](std::size_t i) {
    return "chaos point " + std::to_string(i);
  };

  ChaosOutcome outcome;
  // ---- phase A: chaos run "killed" after half the points ----------
  const std::size_t half = params.points / 2;
  {
    PointHarness harness(options, run_id, executor);
    for (std::size_t i = 0; i < half; ++i) {
      harness.RunPoint(key(i), seed, point_fn(i));
    }
    outcome.killed += harness.Counters().at("harness.worker.retries");
    // The driver "dies" here (after the fsync of point half-1, before
    // point half starts) — the strongest legal interruption point.
  }
  {
    // Every journaled record up to the interruption must already be a
    // complete, well-formed line: that is the fsync contract.
    std::ifstream in(journal, std::ios::binary);
    std::string line;
    std::size_t records = 0;
    while (std::getline(in, line)) {
      const util::JsonValue record = util::ParseJson(line);
      util::Require(record.Find("schema") != nullptr &&
                        record.Find("schema")->AsString() == "wsn-journal-v1",
                    "chaos journal record with bad schema");
      ++records;
    }
    util::Require(records == half,
                  "chaos journal holds " + std::to_string(records) +
                      " records, expected " + std::to_string(half));
  }

  // ---- phase B: resume, replay the half, execute the rest ---------
  options.resume = true;
  std::vector<std::vector<std::string>> resumed_rows;
  {
    PointHarness harness(options, run_id, executor);
    for (std::size_t i = 0; i < params.points; ++i) {
      const PointOutcome point = harness.RunPoint(key(i), seed, point_fn(i));
      resumed_rows.push_back(DecodeCells(point.payload));
    }
    const auto counters = harness.Counters();
    outcome.killed += counters.at("harness.worker.retries");
    outcome.replayed = counters.at("harness.points.replayed");
    util::Require(outcome.replayed == half,
                  "resume replayed " + std::to_string(outcome.replayed) +
                      " points, expected " + std::to_string(half));
  }
  const std::string resumed = RenderInner(resumed_rows, seed, width);
  outcome.identical = resumed == baseline;
  if (!outcome.identical) {
    throw util::Error(
        "harness-chaos: interrupted-then-resumed output diverged from the "
        "clean run (seed " + std::to_string(seed) + ", width " +
        std::to_string(width) + ")");
  }
  return outcome;
}

/// The --keep-going degradation check: a worker that dies on every
/// attempt must produce an explicit error row and a recorded failure,
/// never an aborted sweep.
void CheckKeepGoing(const ChaosParams& params, std::uint64_t seed) {
  util::ParallelExecutor executor(1);
  HarnessOptions options;
  options.isolate = true;
  options.retries = 1;
  options.backoff_s = 0.0;
  options.keep_going = true;
  options.threads = 1;
  PointHarness harness(options, util::HexU64(util::Fnv1a64Mix(seed)),
                       executor);
  const char* const argv[] = {"harness-chaos"};
  const util::CliArgs args(1, argv);
  ScenarioContext ctx;
  ctx.args = &args;
  ctx.executor = &executor;
  ctx.harness = &harness;

  ResultSet results("keep-going");
  ResultTable& table = results.AddTable("sweep", kInnerHeaders);
  RunPointRow(ctx, table, "healthy point", seed, "healthy",
              [&params, seed](const ScenarioContext&, const PointEnv& env) {
                return PointCells(params, 0, seed, *env.executor);
              });
  RunPointRow(ctx, table, "doomed point", seed, "doomed",
              [](const ScenarioContext&,
                 const PointEnv&) -> std::vector<std::string> {
                // SIGKILL so the taxonomy stays "signal" even under
                // sanitizers, which intercept SIGSEGV and exit instead.
                ::raise(SIGKILL);
                return {};
              });
  util::Require(table.rows.size() == 2,
                "--keep-going lost rows: the sweep shape must survive");
  util::Require(table.rows[1][0] == "doomed" &&
                    table.rows[1][1] == "error: signal (2 attempts)" &&
                    table.rows[1][2] == "-",
                "--keep-going error row rendered unexpectedly: '" +
                    table.rows[1][1] + "'");
  util::Require(harness.Failures().size() == 1 &&
                    harness.Failures()[0].failure == "signal",
                "--keep-going failure bookkeeping is wrong");
}

ResultSet RunHarnessChaos(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  ChaosParams params;
  params.points = args.GetCount("points", 5, 2);
  params.replications = args.GetCount("replications", 2, 1);
  params.horizon_s = args.GetDouble("horizon", 300.0);
  util::Require(params.horizon_s > 0.0, "--horizon must be > 0");
  const std::vector<std::uint64_t> seeds =
      ParseSeeds(args.GetString("seeds", "11,17,23"));

  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("wsn_harness_chaos_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  ResultSet results(
      "execution-layer chaos self-test: crash / retry / journal / resume");
  results.SetMeta("seeds", args.GetString("seeds", "11,17,23"));
  results.SetMeta("points", std::to_string(params.points));
  ResultTable& table = results.AddTable(
      "chaos", {"seed", "worker threads", "points", "workers killed",
                "replayed", "identical"});

  std::size_t total_killed = 0;
  try {
    for (const std::uint64_t seed : seeds) {
      for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
        const ChaosOutcome out = RunChaosCell(params, seed, width, dir);
        total_killed += out.killed;
        table.AddRow({std::to_string(seed), std::to_string(width),
                      std::to_string(params.points),
                      std::to_string(out.killed),
                      std::to_string(out.replayed),
                      out.identical ? "yes" : "NO"});
      }
    }
    CheckKeepGoing(params, seeds.front());
  } catch (...) {
    std::error_code ec;
    fs::remove_all(dir, ec);
    throw;
  }
  std::error_code ec;
  fs::remove_all(dir, ec);

  // A chaos run that killed nobody tested nothing.  With the default
  // matrix the odds of this are 2^-30; a custom tiny matrix that lands
  // here should grow --points or add seeds.
  util::Require(total_killed > 0,
                "harness-chaos: the chaos schedule killed no workers; "
                "increase --points or the --seeds matrix");

  ResultTable& verdict = results.AddTable("checks", {"check", "result"});
  verdict.AddRow({"resumed output byte-identical to clean run",
                  "pass (all seeds, widths 1 and 4)"});
  verdict.AddRow({"journal records complete at interruption", "pass"});
  verdict.AddRow({"--keep-going yields explicit error row", "pass"});
  results.AddNote(
      "each seed runs a " + std::to_string(params.points) +
      "-point sweep three ways: clean inline, crash-riddled under "
      "fork isolation with retries, and interrupted after half the "
      "points then resumed from the journal.  Workers die to "
      "deterministically random SIGKILL/SIGSEGV/SIGABRT/SIGTERM after "
      "computing their result; the resumed render must equal the clean "
      "render byte for byte.  See docs/robustness.md.");
  return results;
}

const ScenarioRegistrar reg_harness_chaos(MakeScenario(
    "harness-chaos",
    "execution-layer self-test: workers killed by random signals "
    "mid-point, retried, interrupted and resumed from the journal — "
    "output pinned byte-identical to a clean run",
    "extension (robust experiment execution, docs/robustness.md)",
    {
        {"seeds", "CSV", "11,17,23", "seed matrix to exercise"},
        {"points", "N", "5", "sweep points per run (>= 2)"},
        {"replications", "N", "2", "netsim replications per point (>= 1)"},
        {"horizon", "S", "300", "simulated horizon per replication (s)"},
    },
    RunHarnessChaos));

}  // namespace
}  // namespace wsn::scenario
